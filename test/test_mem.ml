(* The memory-dynamics subsystem: mode enum, the Image.saved sizing
   math, determinism of the lazy page-state tracker, balloon policy,
   stream bookkeeping, and the end-to-end properties the ISSUE gates —
   off-mode is byte-identical to the static model, ballooning shrinks
   the saved image, streaming cuts saved-reboot downtime, and streamed
   restore with an infinitely fast disk is equivalent to
   stop-and-copy. *)
open Helpers
module Memdyn = Mem.Memdyn
module Pagestate = Mem.Pagestate
module Balloon = Mem.Balloon
module Stream = Mem.Stream
module Image = Xenvmm.Image
module Units = Simkit.Units
module Experiment = Rejuv.Experiment
module Strategy = Rejuv.Strategy

let invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* --- mode enum ----------------------------------------------------------- *)

let test_mode_enum () =
  List.iter
    (fun (name, mode) ->
      (match Simkit.Enum.of_string Memdyn.mode_enum name with
      | Ok m -> check_true ("parses " ^ name) (m = mode)
      | Error (`Msg m) -> Alcotest.fail m);
      Alcotest.(check string)
        ("round-trips " ^ name) name
        (Simkit.Enum.name Memdyn.mode_enum mode))
    [
      ("off", Memdyn.Off);
      ("balloon", Memdyn.Balloon);
      ("stream", Memdyn.Stream);
      ("balloon_stream", Memdyn.Balloon_stream);
    ];
  (match Simkit.Enum.of_string Memdyn.mode_enum "none" with
  | Ok m -> check_true "alias none = off" (m = Memdyn.Off)
  | Error _ -> Alcotest.fail "alias none rejected");
  (match Simkit.Enum.of_string Memdyn.mode_enum "full" with
  | Ok m -> check_true "alias full = balloon_stream" (m = Memdyn.Balloon_stream)
  | Error _ -> Alcotest.fail "alias full rejected");
  (match Simkit.Enum.of_string Memdyn.mode_enum "bogus" with
  | Error (`Msg _) -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  check_false "off disabled" (Memdyn.enabled Memdyn.off);
  check_true "stream enabled" (Memdyn.enabled (Memdyn.default Memdyn.Stream));
  check_false "stream does not balloon"
    (Memdyn.balloon_enabled (Memdyn.default Memdyn.Stream));
  check_true "balloon_stream does both"
    (Memdyn.balloon_enabled (Memdyn.default Memdyn.Balloon_stream)
    && Memdyn.stream_enabled (Memdyn.default Memdyn.Balloon_stream))

let test_memdyn_validate () =
  let d = Memdyn.default Memdyn.Balloon in
  check_true "default validates" (Memdyn.validate d == d);
  check_true "working set > 1 rejected"
    (invalid (fun () ->
         Memdyn.validate { d with Memdyn.working_set_fraction = 1.5 }));
  check_true "zero interval rejected"
    (invalid (fun () ->
         Memdyn.validate { d with Memdyn.sample_interval_s = 0.0 }));
  check_true "negative batch rejected"
    (invalid (fun () ->
         Memdyn.validate { d with Memdyn.stream_batch_bytes = -1 }))

(* --- Image.saved sizing (satellite 1) ------------------------------------ *)

let test_image_saved_math () =
  let s =
    Image.saved ~resident_bytes:(Units.mib 300)
      ~exec_state_bytes:(Units.mib 2)
      ~total_ram_bytes:(Units.gib 1)
  in
  check_int "saved = resident + exec" (Units.mib 302) (Image.saved_bytes s);
  check_int "hot clamps to saved" (Units.mib 302)
    (Image.hot_bytes s ~working_set_bytes:(Units.gib 2));
  check_int "hot = ws + exec" (Units.mib 102)
    (Image.hot_bytes s ~working_set_bytes:(Units.mib 100));
  check_int "hot floor is exec state" (Units.mib 2)
    (Image.hot_bytes s ~working_set_bytes:(-5));
  check_true "resident > total rejected"
    (invalid (fun () ->
         Image.saved ~resident_bytes:2 ~exec_state_bytes:0 ~total_ram_bytes:1));
  check_true "zero resident rejected"
    (invalid (fun () ->
         Image.saved ~resident_bytes:0 ~exec_state_bytes:0 ~total_ram_bytes:1))

(* With memdyn off the saved image is exactly the old stub's size —
   full RAM plus execution state — pinning pre-memdyn behaviour. *)
let test_image_off_mode_pin () =
  let vm_mem_bytes = Units.mib 512 in
  let r =
    Experiment.run_reboot ~strategy:Strategy.Saved ~vm_count:1 ~vm_mem_bytes ()
  in
  let exec =
    Rejuv.Calibration.default.Rejuv.Calibration.vmm_timing
      .Xenvmm.Timing.exec_state_bytes
  in
  check_float ~eps:1e-9 "image = RAM + exec state"
    (Units.bytes_to_mib (vm_mem_bytes + exec))
    r.Experiment.saved_image_mib;
  check_float ~eps:1e-9 "no streaming tail when off" 0.0
    r.Experiment.restore_lag_s

(* --- page-state tracker -------------------------------------------------- *)

let tracker ?(seed = 7) ?(mode = Memdyn.Balloon_stream) ?(mib = 256) name =
  Pagestate.create
    ~memdyn:{ (Memdyn.default mode) with Memdyn.seed }
    ~name ~total_bytes:(Units.mib mib) ~now:0.0

(* The tracker state at time t is a pure function of (seed, name, t):
   one refresh to t=50 equals fifty one-second refreshes, so gauges
   and save paths can observe it in any pattern without perturbing
   the process. *)
let test_pagestate_call_pattern_invariance () =
  let a = tracker "vm3" and b = tracker "vm3" in
  Pagestate.refresh a ~now:50.0;
  for i = 1 to 50 do
    Pagestate.refresh b ~now:(float_of_int i)
  done;
  check_int "working set" (Pagestate.working_set_pages a)
    (Pagestate.working_set_pages b);
  check_int "dirty" (Pagestate.dirty_pages a) (Pagestate.dirty_pages b);
  check_float ~eps:0.0 "rate factor" (Pagestate.dirty_rate_factor a)
    (Pagestate.dirty_rate_factor b);
  (* Creation order of other trackers cannot perturb a stream: the RNG
     is private, seeded from (memdyn.seed, name). *)
  let c = tracker "other" in
  Pagestate.refresh c ~now:123.0;
  let d = tracker "vm3" in
  Pagestate.refresh d ~now:50.0;
  check_int "order-invariant working set" (Pagestate.working_set_pages a)
    (Pagestate.working_set_pages d);
  check_int "order-invariant dirty" (Pagestate.dirty_pages a)
    (Pagestate.dirty_pages d)

let test_pagestate_balloon_accounting () =
  let t = tracker ~mib:64 "vm0" in
  let total = Pagestate.total_pages t in
  check_int "all resident at start" total (Pagestate.resident_pages t);
  Pagestate.refresh t ~now:10.0;
  check_true "epoch dirtied some pages" (Pagestate.dirty_pages t > 0);
  check_true "dirty <= resident" (Pagestate.dirty_pages t <= total);
  Pagestate.set_ballooned t ~pages:(total / 2);
  check_int "resident shrinks" (total - (total / 2))
    (Pagestate.resident_pages t);
  check_true "dirty bits beyond residency cleared"
    (Pagestate.dirty_pages t <= Pagestate.resident_pages t);
  check_true "ws clamped to resident"
    (Pagestate.working_set_pages t <= Pagestate.resident_pages t);
  Pagestate.clear_dirty t;
  check_int "clear_dirty empties the bitmap" 0 (Pagestate.dirty_pages t);
  check_true "ballooning everything rejected"
    (invalid (fun () -> Pagestate.set_ballooned t ~pages:total));
  check_true "negative balloon rejected"
    (invalid (fun () -> Pagestate.set_ballooned t ~pages:(-1)))

let test_balloon_policy () =
  let t = tracker ~mib:256 "vm1" in
  Pagestate.refresh t ~now:5.0;
  let keep = Balloon.keep_pages t in
  let floor_pages =
    Units.pages_of_bytes (Pagestate.cfg t).Memdyn.balloon_floor_bytes
  in
  check_true "keep >= floor" (keep >= floor_pages);
  check_true "keep <= total" (keep <= Pagestate.total_pages t);
  let reclaim = Balloon.reclaim_target t in
  check_true "reclaim in [0, resident)"
    (reclaim >= 0 && reclaim < Pagestate.resident_pages t);
  if reclaim > 0 then begin
    Pagestate.set_ballooned t ~pages:(Pagestate.ballooned_pages t + reclaim);
    check_int "at target, nothing further to reclaim" 0
      (Balloon.reclaim_target t)
  end

(* QCheck law (b): however the working-set process lands, the
   post-balloon image never exceeds the pre-balloon resident size, and
   residency never drops below the keep target (or one page). *)
let qcheck_balloon_image_bounded =
  qtest ~count:150 "balloon image <= resident pages (law b)"
    QCheck.(
      triple (int_range 0 9999) (float_range 0.05 0.9) (int_range 80 2000))
    (fun (seed, ws, mib) ->
      let t =
        Pagestate.create
          ~memdyn:
            {
              (Memdyn.default Memdyn.Balloon) with
              Memdyn.seed;
              working_set_fraction = ws;
            }
          ~name:(Printf.sprintf "vm%d" seed)
          ~total_bytes:(Units.mib mib) ~now:0.0
      in
      Pagestate.refresh t ~now:(float_of_int (seed mod 97) *. 5.0);
      let resident = Pagestate.resident_pages t in
      let reclaim = Balloon.reclaim_target t in
      let after = resident - reclaim in
      let exec = Units.mib 2 in
      let img =
        Image.saved
          ~resident_bytes:(after * Units.page_bytes)
          ~exec_state_bytes:exec
          ~total_ram_bytes:(Units.mib mib)
      in
      reclaim >= 0
      && after >= 1
      && after >= Stdlib.min (Balloon.keep_pages t) resident
      && Image.saved_bytes img <= (resident * Units.page_bytes) + exec)

(* --- stream bookkeeping -------------------------------------------------- *)

let test_stream_bookkeeping () =
  let md = Memdyn.default Memdyn.Stream in
  let s = Stream.create ~memdyn:md ~cold_bytes:(Units.mib 5) in
  check_int "cold" (Units.mib 5) (Stream.cold_bytes s);
  check_int "3 batches of 2 MiB" 3 (Stream.batches_outstanding s);
  check_int "first batch" (Units.mib 2) (Stream.next_batch_bytes s);
  check_float ~eps:1e-12 "full tax at start" md.Memdyn.fault_tax_s
    (Stream.fault_tax_s s);
  Stream.note_paged_in s ~bytes_:(Units.mib 2);
  Stream.note_paged_in s ~bytes_:(Units.mib 2);
  check_int "last batch is the remainder" (Units.mib 1)
    (Stream.next_batch_bytes s);
  check_float ~eps:1e-12 "tax decays linearly"
    (md.Memdyn.fault_tax_s /. 5.0)
    (Stream.fault_tax_s s);
  Stream.note_paged_in s ~bytes_:(Units.mib 9);
  check_true "complete" (Stream.complete s);
  check_int "no further batches" 0 (Stream.next_batch_bytes s);
  check_float ~eps:1e-12 "no tax when complete" 0.0 (Stream.fault_tax_s s);
  let empty = Stream.create ~memdyn:md ~cold_bytes:0 in
  check_true "zero cold set born complete" (Stream.complete empty);
  check_float ~eps:1e-12 "zero cold set taxes nothing" 0.0
    (Stream.fault_tax_s empty);
  check_true "negative cold rejected"
    (invalid (fun () -> Stream.create ~memdyn:md ~cold_bytes:(-1)))

(* --- end-to-end gates ---------------------------------------------------- *)

let run ?calibration ?memdyn () =
  Experiment.run_reboot ?calibration ?memdyn ~strategy:Strategy.Saved
    ~vm_count:1
    ~vm_mem_bytes:(Units.mib 512)
    ()

let test_balloon_shrinks_image () =
  let off = run () in
  let ballooned = run ~memdyn:(Memdyn.default Memdyn.Balloon) () in
  check_true "ballooned image strictly smaller"
    (ballooned.Experiment.saved_image_mib < off.Experiment.saved_image_mib);
  check_true "image still holds the working set"
    (ballooned.Experiment.saved_image_mib
    >= 0.35 *. Units.bytes_to_mib (Units.mib 512))

let test_stream_cuts_downtime () =
  let off = run () in
  let streamed = run ~memdyn:(Memdyn.default Memdyn.Stream) () in
  check_true "streamed restore resumes earlier on 2007 spindles"
    (streamed.Experiment.downtime_max_s < off.Experiment.downtime_max_s);
  check_true "cold pages keep arriving after resume"
    (streamed.Experiment.restore_lag_s > 0.0)

(* QCheck law (a): with an infinitely fast disk the streamed restore is
   indistinguishable from stop-and-copy — the hot/cold split only
   matters because cold reads take time. Seeks must be zero too: the
   streamed path issues extra random reads that otherwise each pay a
   seek. *)
let instant_disk =
  let c = Rejuv.Calibration.default in
  {
    c with
    Rejuv.Calibration.host =
      {
        c.Rejuv.Calibration.host with
        Hw.Host.disk_read_mib_per_s = 1e12;
        disk_write_mib_per_s = 1e12;
        disk_seek_ms = 0.0;
        disk_random_penalty = 1.0;
      };
  }

let qcheck_stream_equals_stop_and_copy =
  qtest ~count:3 "infinite-bandwidth stream = stop-and-copy (law a)"
    QCheck.(int_range 0 999)
    (fun seed ->
      let run memdyn =
        Experiment.run_reboot ~calibration:instant_disk ~seed ?memdyn
          ~strategy:Strategy.Saved ~vm_count:1
          ~vm_mem_bytes:(Units.mib 256)
          ()
      in
      let off = run None in
      let streamed = run (Some (Memdyn.default Memdyn.Stream)) in
      Float.abs
        (off.Experiment.downtime_max_s -. streamed.Experiment.downtime_max_s)
      < 1e-6
      && Float.abs
           (off.Experiment.downtime_mean_s
           -. streamed.Experiment.downtime_mean_s)
         < 1e-6)

(* Golden: a seeded fleet cell with memdyn off is byte-identical across
   partition counts and both event-queue backends — the ISSUE's
   off-mode inertness gate at fleet scale. Passing [Memdyn.off]
   explicitly must also equal not passing memdyn at all. *)
let test_fleet_off_mode_golden () =
  let cell ?memdyn ~partitions () =
    Experiment.Result.to_json
      (Experiment.Result.Fleet
         [
           Experiment.fleet_cell ?memdyn ~partitions ~load_rate_per_s:20.0
             ~seed:11 ~hosts:6 ~width:2 ~slo:0.5
             ~strategy:(Rejuv.Wave.Reboot Strategy.Warm)
             ();
         ])
  in
  List.iter
    (fun backend ->
      let name = Simkit.Eventq.backend_name backend in
      Simkit.Engine.with_default_queue backend (fun () ->
          let one = cell ~memdyn:Memdyn.off ~partitions:1 () in
          check_true (name ^ ": non-trivial payload") (String.length one > 100);
          Alcotest.(check string)
            (name ^ ": explicit off = absent") one
            (cell ~partitions:1 ());
          Alcotest.(check string)
            (name ^ ": partitions 1 = 2") one
            (cell ~memdyn:Memdyn.off ~partitions:2 ());
          Alcotest.(check string)
            (name ^ ": partitions 1 = 4") one
            (cell ~memdyn:Memdyn.off ~partitions:4 ())))
    [ Simkit.Eventq.Heap; Simkit.Eventq.Calendar ]

let suite =
  ( "mem",
    [
      Alcotest.test_case "mode enum round-trips" `Quick test_mode_enum;
      Alcotest.test_case "memdyn validation" `Quick test_memdyn_validate;
      Alcotest.test_case "Image.saved sizing math" `Quick test_image_saved_math;
      Alcotest.test_case "off-mode image pins old stub" `Slow
        test_image_off_mode_pin;
      Alcotest.test_case "tracker call-pattern invariance" `Quick
        test_pagestate_call_pattern_invariance;
      Alcotest.test_case "tracker balloon accounting" `Quick
        test_pagestate_balloon_accounting;
      Alcotest.test_case "balloon reclaim policy" `Quick test_balloon_policy;
      qcheck_balloon_image_bounded;
      Alcotest.test_case "stream bookkeeping and fault tax" `Quick
        test_stream_bookkeeping;
      Alcotest.test_case "balloon shrinks the saved image" `Slow
        test_balloon_shrinks_image;
      Alcotest.test_case "stream cuts saved-reboot downtime" `Slow
        test_stream_cuts_downtime;
      qcheck_stream_equals_stop_and_copy;
      Alcotest.test_case "fleet off-mode golden across backends" `Slow
        test_fleet_off_mode_golden;
    ] )
