(* Simkit.Enum — the one string<->value mapping every CLI-facing
   enumeration goes through — and the Scenario.Config record that
   replaced Scenario.create's optional-argument pile. *)
open Helpers
module Enum = Simkit.Enum

type fruit = Apple | Pear | Quince

let fruits =
  Enum.make ~what:"fruit"
    ~aliases:[ ("reinette", Apple) ]
    [ ("apple", Apple); ("pear", Pear); ("quince", Quince) ]

let test_names_and_values () =
  Alcotest.(check (list string))
    "canonical names, declaration order" [ "apple"; "pear"; "quince" ]
    (Enum.names fruits);
  check_int "three values" 3 (List.length (Enum.values fruits));
  Alcotest.(check string) "name of value" "pear" (Enum.name fruits Pear)

let test_of_string_case_and_aliases () =
  let ok s v =
    match Enum.of_string fruits s with
    | Ok got -> check_true (Printf.sprintf "%S parses" s) (got = v)
    | Error (`Msg m) -> Alcotest.failf "%S rejected: %s" s m
  in
  ok "apple" Apple;
  ok "APPLE" Apple;
  ok "Quince" Quince;
  (* aliases parse but never appear in listings *)
  ok "reinette" Apple;
  ok "ReInEtTe" Apple;
  check_false "alias not listed" (List.mem "reinette" (Enum.names fruits))

let test_rejection_message_shape () =
  (match Enum.of_string fruits "mango" with
  | Ok _ -> Alcotest.fail "mango accepted"
  | Error (`Msg m) ->
    Alcotest.(check string)
      "uniform error message"
      "unknown fruit \"mango\"; expected one of apple, pear, quince" m);
  check_true "of_string_opt" (Enum.of_string_opt fruits "mango" = None);
  (try
     ignore (Enum.of_string_exn fruits "mango");
     Alcotest.fail "of_string_exn did not raise"
   with Invalid_argument _ -> ());
  Alcotest.(check string)
    "expecting clause" "expected one of apple, pear, quince"
    (Enum.expecting fruits)

let test_make_validates () =
  let invalid f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_true "empty entries rejected"
    (invalid (fun () -> Enum.make ~what:"x" []));
  check_true "non-lowercase canonical rejected"
    (invalid (fun () -> Enum.make ~what:"x" [ ("Apple", Apple) ]));
  check_true "duplicate name rejected"
    (invalid (fun () -> Enum.make ~what:"x" [ ("a", Apple); ("a", Pear) ]));
  check_true "alias clashing with name rejected"
    (invalid (fun () ->
         Enum.make ~what:"x" ~aliases:[ ("a", Pear) ] [ ("a", Apple) ]))

(* The four shapes the tree used to parse by hand, now all wired to
   [Enum]: same spellings keep working, same error text everywhere. *)
let test_wired_enums () =
  check_true "strategy: cold-vm reboot alias"
    (Rejuv.Strategy.of_string "cold-vm reboot" = Some Rejuv.Strategy.Cold);
  check_true "strategy: SAVED"
    (Rejuv.Strategy.of_string "SAVED" = Some Rejuv.Strategy.Saved);
  check_true "strategy: tepid rejected" (Rejuv.Strategy.of_string "tepid" = None);
  Alcotest.(check (list string))
    "workloads" [ "ssh"; "jboss"; "web" ]
    (Enum.names Rejuv.Scenario.workload_enum);
  check_true "eventq backend"
    (Simkit.Eventq.backend_of_string "heap" = Ok Simkit.Eventq.Heap);
  check_true "metrics format alias"
    (Obs.Export.format_of_string "prometheus" = Ok Obs.Export.Prom);
  check_true "wave strategy alias"
    (Rejuv.Wave.strategy_of_string "migrate-then-reboot"
    = Ok Rejuv.Wave.Migrate);
  check_true "wave strategy reboot"
    (Rejuv.Wave.strategy_of_string "warm"
    = Ok (Rejuv.Wave.Reboot Rejuv.Strategy.Warm));
  Alcotest.(check string)
    "wave strategy id" "migrate"
    (Rejuv.Wave.strategy_id Rejuv.Wave.Migrate)

(* Scenario.Config: the record that replaced seven optional args. *)
let test_scenario_config_defaults () =
  let d = Rejuv.Scenario.Config.default in
  check_int "seed" 42 d.Rejuv.Scenario.Config.seed;
  check_int "one VM" 1 d.Rejuv.Scenario.Config.vm_count;
  check_int "1 GiB" (Simkit.Units.gib 1) d.Rejuv.Scenario.Config.vm_mem_bytes;
  check_int "no drivers" 0 d.Rejuv.Scenario.Config.driver_vm_count;
  check_true "ssh workload" (d.Rejuv.Scenario.Config.workload = Rejuv.Scenario.Ssh);
  check_true "no shared engine" (d.Rejuv.Scenario.Config.engine = None)

let test_scenario_config_combinators () =
  let open Rejuv.Scenario.Config in
  let c =
    default
    |> with_vms 4 ~mem_bytes:(Simkit.Units.gib 2)
    |> with_workload Rejuv.Scenario.Jboss
    |> with_seed 7 |> with_drivers 2 |> with_prefix "h1-"
  in
  check_int "vms" 4 c.vm_count;
  check_int "mem" (Simkit.Units.gib 2) c.vm_mem_bytes;
  check_true "workload" (c.workload = Rejuv.Scenario.Jboss);
  check_int "seed" 7 c.seed;
  check_int "drivers" 2 c.driver_vm_count;
  Alcotest.(check string) "prefix" "h1-" c.name_prefix;
  (* and the record builds a working scenario *)
  let s = Rejuv.Scenario.create { default with vm_count = 2 } in
  check_int "two VMs materialised" 2 (List.length (Rejuv.Scenario.vms s))

let suite =
  ( "enum",
    [
      Alcotest.test_case "names and values" `Quick test_names_and_values;
      Alcotest.test_case "case-insensitive + aliases" `Quick
        test_of_string_case_and_aliases;
      Alcotest.test_case "rejection message" `Quick test_rejection_message_shape;
      Alcotest.test_case "make validates" `Quick test_make_validates;
      Alcotest.test_case "wired enums" `Quick test_wired_enums;
      Alcotest.test_case "scenario config defaults" `Quick
        test_scenario_config_defaults;
      Alcotest.test_case "scenario config combinators" `Quick
        test_scenario_config_combinators;
    ] )
