(* The typed fault model and injection plane: stable fault ids,
   strategy name round-trips, deterministic Plan triggers, and the
   fault-campaign acceptance bar — every strategy survives every
   single-site injection with a reported recovery outcome, and the
   fault_matrix experiment is byte-reproducible under a fixed seed. *)
open Helpers
module Fault = Simkit.Fault
module Plan = Simkit.Fault.Plan
module Strategy = Rejuv.Strategy
module Fault_matrix = Rejuv.Fault_matrix
module Spec = Rejuv.Experiment.Spec
module Result = Rejuv.Experiment.Result

(* --- taxonomy ------------------------------------------------------------- *)

let test_strategy_round_trip () =
  List.iter
    (fun s ->
      check_true
        (Printf.sprintf "of_string (id %s) round-trips" (Strategy.id s))
        (Strategy.of_string (Strategy.id s) = Some s))
    Strategy.all;
  check_true "unknown strategy rejected" (Strategy.of_string "tepid" = None)

let test_fault_ids_distinct () =
  let samples =
    [
      Fault.Disk_full;
      Fault.Out_of_memory;
      Fault.Heap_exhausted;
      Fault.Vmm_down;
      Fault.Bad_domain_state "running";
      Fault.Image_lost "vm0";
      Fault.No_image_staged;
      Fault.Suspend_failed "vm0";
      Fault.Resume_failed "vm0";
      Fault.Reload_failed;
      Fault.Driver_timeout "drv0";
      Fault.Boot_failed "vm0";
      Fault.Not_recovered "vm0";
      Fault.Stalled "step";
      Fault.Timeout { what = "step"; deadline_s = 1.0 };
      Fault.Invariant "bug";
    ]
  in
  let ids = List.map Fault.id samples in
  check_int "one stable id per constructor"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun f -> check_true "to_string non-empty" (Fault.to_string f <> ""))
    samples

let test_injection_sites_sorted () =
  let sites = List.map fst Fault.injection_sites in
  check_true "sites sorted" (List.sort String.compare sites = sites);
  List.iter
    (fun s -> check_true (s ^ " recognised") (Fault.is_injection_site s))
    sites;
  check_false "unknown site rejected" (Fault.is_injection_site "vmm.explode")

(* --- the injection plan --------------------------------------------------- *)

let test_plan_on_nth () =
  let plan = Plan.create ~seed:7 () in
  Plan.arm plan ~site:"vmm.suspend" (Plan.On_nth 3);
  let fires = List.init 5 (fun _ -> Plan.fires plan ~site:"vmm.suspend") in
  Alcotest.(check (list bool))
    "fires on exactly the 3rd call"
    [ false; false; true; false; false ]
    fires;
  check_int "calls counted" 5 (Plan.calls plan ~site:"vmm.suspend");
  check_int "fired once" 1 (Plan.fired plan ~site:"vmm.suspend")

let test_plan_unarmed_never_fires () =
  let plan = Plan.create () in
  for _ = 1 to 10 do
    check_false "unarmed site quiet" (Plan.fires plan ~site:"disk.write")
  done;
  check_int "nothing fired" 0 (Plan.total_fired plan)

let test_plan_prob_deterministic () =
  let sequence seed =
    let plan = Plan.create ~seed () in
    Plan.arm plan ~site:"xend.resume" (Plan.Prob 0.5);
    List.init 64 (fun _ -> Plan.fires plan ~site:"xend.resume")
  in
  Alcotest.(check (list bool))
    "same seed, same firing sequence" (sequence 42) (sequence 42);
  let a = sequence 42 and b = sequence 43 in
  check_true "different seeds diverge" (a <> b);
  check_true "p=0.5 actually fires sometimes" (List.mem true a);
  check_true "p=0.5 actually skips sometimes" (List.mem false a)

let test_plan_arm_resets_and_validates () =
  let plan = Plan.create () in
  Plan.arm plan ~site:"vmm.reload" Plan.Always;
  ignore (Plan.fires plan ~site:"vmm.reload");
  Plan.arm plan ~site:"vmm.reload" Plan.Never;
  check_int "re-arming resets counters" 0 (Plan.calls plan ~site:"vmm.reload");
  check_false "Never holds fire" (Plan.fires plan ~site:"vmm.reload");
  Plan.disarm plan ~site:"vmm.reload";
  Alcotest.(check (list string)) "disarm removes the site" []
    (Plan.armed_sites plan);
  match Plan.arm plan ~site:"bogus.site" Plan.Always with
  | () -> Alcotest.fail "arming an unknown site must be rejected"
  | exception Fault.Error (Fault.Invariant _) -> ()

(* --- the fault campaign --------------------------------------------------- *)

let test_every_cell_recovers () =
  (* The acceptance bar: every strategy survives each single-site
     injection with a reported recovery outcome instead of an abort. *)
  List.iter
    (fun (cell : Fault_matrix.cell) ->
      let label =
        Printf.sprintf "%s x %s"
          (Strategy.id cell.Fault_matrix.fm_strategy)
          cell.Fault_matrix.fm_site
      in
      check_true (label ^ ": recovered") cell.Fault_matrix.recovered;
      check_true (label ^ ": injected at most once")
        (cell.Fault_matrix.injected <= 1);
      check_true (label ^ ": sensible downtime")
        (cell.Fault_matrix.downtime_s > 0.0))
    (Fault_matrix.run ())

let test_injected_cell_pays_for_recovery () =
  (* The smoke cell: xend.resume fails once under a warm reboot, the
     policy retries, and the retry both shows up in the outcome and
     costs extra downtime over the fault-free baseline. *)
  let cell = Fault_matrix.run_cell ~strategy:Strategy.Warm ~site:"xend.resume" () in
  check_int "fault injected exactly once" 1 cell.Fault_matrix.injected;
  check_true "recovered" cell.Fault_matrix.recovered;
  check_true "a retry was needed" (cell.Fault_matrix.retries >= 1);
  check_true "completed via some strategy"
    (List.mem cell.Fault_matrix.completed Strategy.all);
  check_true "recovery is not free"
    (cell.Fault_matrix.extra_downtime_s > 0.0)

let test_fault_matrix_byte_identical () =
  let spec = Spec.find_exn "fault_matrix" in
  let params = { Spec.default_params with seed = 1234; smoke = true } in
  let j1 = Result.to_json (spec.Spec.run params) in
  let j2 = Result.to_json (spec.Spec.run params) in
  check_true "json non-trivial" (String.length j1 > 2);
  check_true "same seed, byte-identical JSON" (String.equal j1 j2)

let suite =
  ( "fault",
    [
      Alcotest.test_case "strategy ids round-trip" `Quick
        test_strategy_round_trip;
      Alcotest.test_case "fault ids distinct and printable" `Quick
        test_fault_ids_distinct;
      Alcotest.test_case "injection sites canonical" `Quick
        test_injection_sites_sorted;
      Alcotest.test_case "plan: On_nth fires once" `Quick test_plan_on_nth;
      Alcotest.test_case "plan: unarmed never fires" `Quick
        test_plan_unarmed_never_fires;
      Alcotest.test_case "plan: Prob is seed-deterministic" `Quick
        test_plan_prob_deterministic;
      Alcotest.test_case "plan: arm resets, validates sites" `Quick
        test_plan_arm_resets_and_validates;
      Alcotest.test_case "matrix: every cell recovers" `Slow
        test_every_cell_recovers;
      Alcotest.test_case "matrix: injected cell pays for recovery" `Quick
        test_injected_cell_pays_for_recovery;
      Alcotest.test_case "matrix: same seed -> byte-identical JSON" `Quick
        test_fault_matrix_byte_identical;
    ] )
