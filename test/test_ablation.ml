(* Ablations of the design choices: scrub-skip, suspend ordering,
   restore parallelism, driver domains, and the load-aware policy. *)
open Helpers
module Scenario = Rejuv.Scenario
module Strategy = Rejuv.Strategy
module Experiment = Rejuv.Experiment
module Calibration = Rejuv.Calibration
module Load = Rejuv.Policy.Load

let gib = Simkit.Units.gib

let run ?calibration ?driver_vm_count strategy ~vm_count =
  ignore driver_vm_count;
  Experiment.run_reboot ?calibration ~strategy ~vm_count
    ~vm_mem_bytes:(gib 1) ()

let test_scrub_skip_gives_negative_slope () =
  (* With the scrub-skip (RootHammer): more suspended VMs mean less free
     memory to scrub, so the VMM reboot gets FASTER with n. Without it,
     the reboot time is flat in n (the full 12 GiB is always scrubbed). *)
  let reboot_time ~scrub_free_only n =
    let calibration = { Calibration.default with scrub_free_only } in
    (run ~calibration Strategy.Warm ~vm_count:n).Experiment.vmm_reboot_s
  in
  let with_skip_0 = reboot_time ~scrub_free_only:true 0 in
  let with_skip_11 = reboot_time ~scrub_free_only:true 11 in
  let without_skip_0 = reboot_time ~scrub_free_only:false 0 in
  let without_skip_11 = reboot_time ~scrub_free_only:false 11 in
  check_true "negative slope with skip" (with_skip_11 < with_skip_0 -. 4.0);
  check_true "flat without skip"
    (Float.abs (without_skip_11 -. without_skip_0) < 1.0);
  check_true "skip is never slower" (with_skip_11 <= without_skip_11)

let test_suspend_ordering_costs_downtime () =
  (* RootHammer suspends AFTER dom0's shutdown; the original ordering
     suspends first, putting dom0's ~14 s shutdown inside the outage. *)
  let downtime ~suspend_before_dom0_shutdown =
    let calibration =
      { Calibration.default with suspend_before_dom0_shutdown }
    in
    (run ~calibration Strategy.Warm ~vm_count:5).Experiment.downtime_mean_s
  in
  let roothammer = downtime ~suspend_before_dom0_shutdown:false in
  let original = downtime ~suspend_before_dom0_shutdown:true in
  check_in_band "ordering buys roughly dom0's shutdown" ~lo:10.0 ~hi:16.0
    (original -. roothammer)

let test_parallel_restore_is_not_faster () =
  (* Interleaved reads lose sequentiality on one spindle, so restoring
     in parallel does not beat xend's serial restore. *)
  let post ~parallel_restore =
    let calibration = { Calibration.default with parallel_restore } in
    (run ~calibration Strategy.Saved ~vm_count:5).Experiment.post_task_s
  in
  let serial = post ~parallel_restore:false in
  let parallel = post ~parallel_restore:true in
  check_true "parallel >= 90% of serial" (parallel >= serial *. 0.9)

let test_driver_domain_increases_warm_downtime () =
  (* Section 7: "the existence of driver domains increases the
     downtime" of the warm-VM reboot, because they are rebooted like the
     cold path. *)
  let scenario_downtime ~driver_vm_count =
    let s =
      Scenario.create
        { Scenario.Config.default with vm_count = 3; driver_vm_count }
    in
    Rejuv.Roothammer.start_and_run s;
    let probers = Scenario.attach_probers s () in
    ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Warm);
    Rejuv.Roothammer.settle s ~seconds:2.0;
    List.iter Netsim.Prober.stop probers;
    let by_name =
      List.map2
        (fun vm p ->
          ( Scenario.vm_name vm,
            Scenario.vm_is_driver vm,
            Option.value (Netsim.Prober.longest_outage p) ~default:0.0 ))
        (Scenario.vms s) probers
    in
    by_name
  in
  let plain = scenario_downtime ~driver_vm_count:0 in
  let with_driver = scenario_downtime ~driver_vm_count:1 in
  let mean l = Simkit.Stat.mean (List.map (fun (_, _, d) -> d) l) in
  let driver_outage =
    List.find_map
      (fun (_, is_driver, d) -> if is_driver then Some d else None)
      with_driver
  in
  (match driver_outage with
  | Some d ->
    (* The driver domain itself suffers a cold-style reboot: down for
       the whole shutdown + reload + reboot cycle. *)
    check_true "driver downtime much larger than suspended VMs'"
      (d > 1.5 *. mean plain)
  | None -> Alcotest.fail "driver VM missing");
  (* Suspended VMs still recover. *)
  List.iter
    (fun (name, is_driver, d) ->
      if not is_driver then
        check_in_band (name ^ " downtime") ~lo:30.0 ~hi:65.0 d)
    with_driver

let test_driver_domain_comes_back () =
  let s =
    Scenario.create
      { Scenario.Config.default with vm_count = 2; driver_vm_count = 1 }
  in
  Rejuv.Roothammer.start_and_run s;
  ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Warm);
  List.iter
    (fun vm ->
      check_true (Scenario.vm_name vm ^ " up") (Scenario.vm_is_up vm))
    (Scenario.vms s);
  (* The rebuilt driver domain is again non-suspendable. *)
  let driver = List.find Scenario.vm_is_driver (Scenario.vms s) in
  check_false "still a driver domain"
    (Xenvmm.Domain.suspendable (Scenario.vm_domain driver))

(* --- load-aware policy ---------------------------------------------------- *)

let diurnal : Load.profile =
  (* Busy day, quiet night. *)
  [ (0.0, 100.0); (8.0, 800.0); (20.0, 300.0); (23.0, 50.0) ]

let test_load_level_at () =
  check_float "start" 100.0 (Load.level_at diurnal 0.0);
  check_float "day" 800.0 (Load.level_at diurnal 12.0);
  check_float "night" 50.0 (Load.level_at diurnal 23.5)

let test_load_cost () =
  check_float ~eps:1e-9 "flat segment" 200.0
    (Load.cost diurnal ~start:1.0 ~duration:2.0);
  check_float ~eps:1e-9 "straddles breakpoint" (100.0 +. 800.0)
    (Load.cost diurnal ~start:7.0 ~duration:2.0)

let test_best_window_picks_the_night () =
  let start, cost = Load.best_window diurnal ~duration:1.0 ~horizon:24.0 in
  check_true "after the evening drop" (start >= 23.0);
  check_float ~eps:1e-9 "night cost" 50.0 cost

let test_best_window_respects_horizon () =
  let start, cost = Load.best_window diurnal ~duration:4.0 ~horizon:12.0 in
  (* Any 4 h window inside the quiet morning costs 400; nothing before
     noon beats it. *)
  check_true "fits" (start +. 4.0 <= 12.0);
  check_true "entirely before the morning ramp" (start +. 4.0 <= 8.0);
  check_float ~eps:1e-9 "cheapest pre-noon cost" 400.0 cost

let test_best_window_validation () =
  check_true "horizon too short"
    (try ignore (Load.best_window diurnal ~duration:30.0 ~horizon:24.0); false
     with Invalid_argument _ -> true)

let prop_best_window_is_optimal =
  qtest ~count:100 "best window beats random windows"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 6) (pair (float_range 0.0 24.0) (float_range 0.0 100.0)))
        (float_range 0.0 20.0))
    (fun (raw, s) ->
      let profile =
        (0.0, 10.0)
        :: List.sort (fun (a, _) (b, _) -> Float.compare a b) raw
      in
      let duration = 2.0 and horizon = 24.0 in
      let _, best_cost = Load.best_window profile ~duration ~horizon in
      let s = Float.min s (horizon -. duration) in
      best_cost <= Load.cost profile ~start:s ~duration +. 1e-9)

let suite =
  ( "ablation",
    [
      Alcotest.test_case "scrub skip: negative slope" `Slow
        test_scrub_skip_gives_negative_slope;
      Alcotest.test_case "suspend ordering" `Slow
        test_suspend_ordering_costs_downtime;
      Alcotest.test_case "parallel restore" `Slow
        test_parallel_restore_is_not_faster;
      Alcotest.test_case "driver domain downtime" `Slow
        test_driver_domain_increases_warm_downtime;
      Alcotest.test_case "driver domain recovery" `Quick
        test_driver_domain_comes_back;
      Alcotest.test_case "load: level_at" `Quick test_load_level_at;
      Alcotest.test_case "load: cost" `Quick test_load_cost;
      Alcotest.test_case "load: best window at night" `Quick
        test_best_window_picks_the_night;
      Alcotest.test_case "load: horizon respected" `Quick
        test_best_window_respects_horizon;
      Alcotest.test_case "load: validation" `Quick test_best_window_validation;
      prop_best_window_is_optimal;
    ] )
