(* The pluggable event queue: the calendar backend must be
   indistinguishable from the heap — same keys, same FIFO ties, same
   interleaving behaviour — because the engine's determinism guarantee
   rides on it. The headline properties drive both backends (and both
   compaction settings) with the same randomized schedules and demand
   identical pop/fire sequences; the golden test runs a registered
   experiment under each backend and compares Result JSON bytes. *)

open Helpers
module Eventq = Simkit.Eventq
module Engine = Simkit.Engine

let drain q =
  let rec go acc =
    match Eventq.pop q with
    | Some (k, v) -> go ((k, v) :: acc)
    | None -> List.rev acc
  in
  go []

(* --- calendar-backend unit behaviour ------------------------------------- *)

let cal () = Eventq.create ~backend:Eventq.Calendar ()

let test_calendar_empty () =
  let q = cal () in
  check_true "empty" (Eventq.is_empty q);
  check_true "min None" (Eventq.min q = None);
  check_true "pop None" (Eventq.pop q = None)

let test_calendar_ordering () =
  let q = cal () in
  List.iter
    (fun k -> Eventq.add q ~key:k k)
    [ 5.0; 1.0; 3.0; 2.0; 4.0; 0.5; 2.5 ];
  Alcotest.(check (list (float 1e-9)))
    "sorted"
    [ 0.5; 1.0; 2.0; 2.5; 3.0; 4.0; 5.0 ]
    (List.map fst (drain q))

let test_calendar_fifo_ties () =
  let q = cal () in
  List.iter (fun v -> Eventq.add q ~key:1.0 v) [ "first"; "second"; "third" ];
  Eventq.add q ~key:0.5 "early";
  check_true "early" (Eventq.pop q = Some (0.5, "early"));
  check_true "tie 1" (Eventq.pop q = Some (1.0, "first"));
  Eventq.add q ~key:1.0 "fourth";
  check_true "tie 2" (Eventq.pop q = Some (1.0, "second"));
  check_true "tie 3" (Eventq.pop q = Some (1.0, "third"));
  check_true "tie 4" (Eventq.pop q = Some (1.0, "fourth"))

let test_calendar_identical_keys () =
  (* Degenerate width input: every key equal. *)
  let q = cal () in
  for i = 1 to 500 do
    Eventq.add q ~key:7.0 i
  done;
  check_int "length" 500 (Eventq.length q);
  Alcotest.(check (list int))
    "fifo across resizes"
    (List.init 500 (fun i -> i + 1))
    (List.map snd (drain q))

let test_calendar_resizes () =
  let q = cal () in
  for i = 1 to 1000 do
    Eventq.add q ~key:(float_of_int i *. 0.25) i
  done;
  let s = Eventq.stats q in
  check_true "grew past the initial buckets" (s.Eventq.q_buckets > 8);
  check_true "resized at least once" (s.Eventq.q_resizes > 0);
  check_true "positive width" (s.Eventq.q_bucket_width > 0.0);
  ignore (drain q);
  let s = Eventq.stats q in
  check_int "shrank back when drained" 8 s.Eventq.q_buckets

let test_calendar_sparse_far_future () =
  (* Events many "years" apart force the direct-search fallback. *)
  let q = cal () in
  List.iter (fun k -> Eventq.add q ~key:k k) [ 1e6; 3.0; 7e4; 0.25 ];
  Alcotest.(check (list (float 1e-9)))
    "sorted across years" [ 0.25; 3.0; 7e4; 1e6 ]
    (List.map fst (drain q))

let test_calendar_interleaved_adds_pops () =
  let q = cal () in
  Eventq.add q ~key:1.0 "a";
  Eventq.add q ~key:2.0 "b";
  check_true "a" (Eventq.pop q = Some (1.0, "a"));
  (* insert behind the scan position *)
  Eventq.add q ~key:1.5 "c";
  check_true "c" (Eventq.pop q = Some (1.5, "c"));
  check_true "b" (Eventq.pop q = Some (2.0, "b"))

let test_calendar_clear () =
  let q = cal () in
  for i = 1 to 100 do
    Eventq.add q ~key:(float_of_int i) i
  done;
  Eventq.clear q;
  check_true "empty" (Eventq.is_empty q);
  Eventq.add q ~key:2.0 7;
  check_true "usable after clear" (Eventq.pop q = Some (2.0, 7))

let test_compact_preserves_fifo () =
  List.iter
    (fun backend ->
      let q = Eventq.create ~backend () in
      List.iter (fun v -> Eventq.add q ~key:1.0 v) [ 1; 2; 3; 4 ];
      (* drop the middle of a tie run, then add more of the same key *)
      let removed = Eventq.compact q ~live:(fun v -> v <> 2 && v <> 3) in
      check_int "removed" 2 removed;
      Eventq.add q ~key:1.0 5;
      Alcotest.(check (list int))
        ("fifo after compact, " ^ Eventq.backend_name backend)
        [ 1; 4; 5 ] (List.map snd (drain q)))
    [ Eventq.Heap; Eventq.Calendar ]

(* --- backend equivalence (the core property) ------------------------------ *)

(* One op stream drives both backends; [Cancel] is modelled the way the
   engine uses it — values are marked dead and compacted mid-stream. *)
type op = Add of float | Pop | Compact

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun k -> Add (float_of_int k /. 8.0)) (int_range 0 160));
        (3, return Pop);
        (1, return Compact);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Add k -> Printf.sprintf "add %g" k
             | Pop -> "pop"
             | Compact -> "compact")
           ops))
    QCheck.Gen.(list_size (int_range 1 300) op_gen)

let run_ops backend ops =
  let q = Eventq.create ~backend () in
  let trace = ref [] in
  let id = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Add k ->
        incr id;
        (* every 5th value is dead-on-arrival, awaiting compaction *)
        Eventq.add q ~key:k (!id, !id mod 5 <> 0)
      | Pop ->
        (match Eventq.pop q with
        | Some (k, (v, _)) -> trace := (k, v) :: !trace
        | None -> trace := (-1.0, -1) :: !trace)
      | Compact ->
        trace := (0.0, -Eventq.compact q ~live:snd) :: !trace)
    ops;
  List.rev_append !trace (List.map (fun (k, (v, _)) -> (k, v)) (drain q))

let prop_backends_identical =
  qtest "heap and calendar pop identical sequences" ops_arb (fun ops ->
      run_ops Eventq.Heap ops = run_ops Eventq.Calendar ops)

(* The same property at the engine level, with real cancels and nested
   scheduling, across both backends and both compaction settings. *)
let engine_fire_log ~queue ~compaction plan =
  let e = Engine.create ~queue ~compaction () in
  let log = ref [] in
  let handles =
    List.mapi
      (fun i (delay, cancel_it, nest) ->
        let h =
          Engine.schedule e ~delay (fun () ->
              log := (i, Engine.now e) :: !log;
              if nest then
                ignore
                  (Engine.schedule e ~delay:(delay /. 2.0) (fun () ->
                       log := (1000 + i, Engine.now e) :: !log)))
        in
        (h, cancel_it))
      plan
  in
  List.iter (fun (h, cancel_it) -> if cancel_it then Engine.cancel e h) handles;
  Engine.run e;
  List.rev !log

let plan_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map
           (fun (d, c, n) -> Printf.sprintf "(%g,%b,%b)" d c n)
           l))
    QCheck.Gen.(
      list_size (int_range 1 120)
        (triple
           (map (fun k -> float_of_int k /. 4.0) (int_range 0 100))
           bool bool))

let prop_engine_backends_identical =
  qtest ~count:100 "engines agree across backends and compaction settings"
    plan_arb (fun plan ->
      let reference =
        engine_fire_log ~queue:Eventq.Heap ~compaction:`Off plan
      in
      List.for_all
        (fun (queue, compaction) ->
          engine_fire_log ~queue ~compaction plan = reference)
        [
          (Eventq.Heap, `Auto);
          (Eventq.Calendar, `Off);
          (Eventq.Calendar, `Auto);
          (Eventq.Calendar, `Threshold 0.1);
        ])

(* --- engine tombstone compaction ------------------------------------------ *)

let test_compaction_bounds_tombstones () =
  let e = Engine.create ~compaction:`Auto () in
  let handles =
    List.init 1000 (fun i ->
        Engine.schedule e ~delay:(100.0 +. float_of_int i) (fun () -> ()))
  in
  List.iteri (fun i h -> if i mod 100 <> 0 then Engine.cancel e h) handles;
  let s = Engine.queue_stats e in
  check_true "compacted at least once" (s.Engine.qs_compactions > 0);
  (* Auto keeps tombstones under half the pending count, except below
     the 64-event floor where compaction deliberately stops bothering. *)
  check_true "tombstones bounded"
    (s.Engine.qs_tombstones <= Stdlib.max 63 ((s.Engine.qs_pending / 2) + 1));
  check_true "queue shrank" (Engine.pending e < 200);
  Engine.run e;
  check_int "survivors all fired" 10 (Engine.events_processed e)

let test_compaction_off_accumulates () =
  let e = Engine.create ~compaction:`Off () in
  let handles =
    List.init 1000 (fun i ->
        Engine.schedule e ~delay:(100.0 +. float_of_int i) (fun () -> ()))
  in
  List.iter (fun h -> Engine.cancel e h) handles;
  let s = Engine.queue_stats e in
  check_int "no compactions" 0 s.Engine.qs_compactions;
  check_int "every tombstone retained" 1000 (Engine.pending e);
  Engine.run e;
  check_int "nothing fired" 0 (Engine.events_processed e)

let test_queue_stats_backends () =
  let heap = Engine.create ~queue:Eventq.Heap () in
  let s = Engine.queue_stats heap in
  check_true "heap backend" (s.Engine.qs_backend = Eventq.Heap);
  check_int "heap has no buckets" 0 s.Engine.qs_buckets;
  let c = Engine.create ~queue:Eventq.Calendar () in
  ignore (Engine.schedule c ~delay:1.0 (fun () -> ()));
  let s = Engine.queue_stats c in
  check_true "calendar backend" (s.Engine.qs_backend = Eventq.Calendar);
  check_true "calendar has buckets" (s.Engine.qs_buckets > 0)

let test_default_queue_scoping () =
  let initial = Engine.default_queue () in
  Engine.with_default_queue Eventq.Heap (fun () ->
      check_true "scoped default" (Engine.default_queue () = Eventq.Heap);
      let e = Engine.create () in
      check_true "create follows the scope"
        ((Engine.queue_stats e).Engine.qs_backend = Eventq.Heap));
  check_true "restored" (Engine.default_queue () = initial)

(* --- golden: a registered experiment is backend-independent --------------- *)

let result_json_under backend id =
  Engine.with_default_queue backend (fun () ->
      Rejuv.Experiment.Result.to_json
        ((Rejuv.Experiment.Spec.find_exn id).Rejuv.Experiment.Spec.run
           Rejuv.Experiment.Spec.default_params))

let test_experiment_backend_independent () =
  List.iter
    (fun id ->
      Alcotest.(check string)
        (id ^ " bytes agree across backends")
        (result_json_under Eventq.Heap id)
        (result_json_under Eventq.Calendar id))
    [ "quick_reload"; "os_rejuvenation" ]

let suite =
  ( "eventq",
    [
      Alcotest.test_case "calendar: empty" `Quick test_calendar_empty;
      Alcotest.test_case "calendar: ordering" `Quick test_calendar_ordering;
      Alcotest.test_case "calendar: fifo ties" `Quick test_calendar_fifo_ties;
      Alcotest.test_case "calendar: 500 identical keys" `Quick
        test_calendar_identical_keys;
      Alcotest.test_case "calendar: resizes up and down" `Quick
        test_calendar_resizes;
      Alcotest.test_case "calendar: sparse far-future keys" `Quick
        test_calendar_sparse_far_future;
      Alcotest.test_case "calendar: interleaved adds/pops" `Quick
        test_calendar_interleaved_adds_pops;
      Alcotest.test_case "calendar: clear" `Quick test_calendar_clear;
      Alcotest.test_case "compact preserves FIFO" `Quick
        test_compact_preserves_fifo;
      prop_backends_identical;
      prop_engine_backends_identical;
      Alcotest.test_case "engine compaction bounds tombstones" `Quick
        test_compaction_bounds_tombstones;
      Alcotest.test_case "engine compaction off accumulates" `Quick
        test_compaction_off_accumulates;
      Alcotest.test_case "queue stats per backend" `Quick
        test_queue_stats_backends;
      Alcotest.test_case "default queue is scoped" `Quick
        test_default_queue_scoping;
      Alcotest.test_case "experiment JSON is backend-independent" `Slow
        test_experiment_backend_independent;
    ] )
