(* Breadth coverage: migration-plan properties, policy schedule
   properties, cluster timeline sanity, availability arithmetic and a
   few API corners not exercised elsewhere. *)
open Helpers
module Migration = Rejuv.Migration
module Policy = Rejuv.Policy
module Cluster = Rejuv.Cluster
module Availability = Rejuv.Availability
module Strategy = Rejuv.Strategy

let prop_migration_plan_sane =
  qtest ~count:200 "migration plans are internally consistent"
    QCheck.(pair (int_range 1 16) (float_range 0.5 30.0))
    (fun (mem_gib, dirty_mib) ->
      let config = Migration.default_config in
      let dirty = dirty_mib *. 1048576.0 in
      if dirty >= config.Migration.link_bytes_per_s then true
      else begin
        let p =
          Migration.plan ~config ~mem_bytes:(Simkit.Units.gib mem_gib)
            ~dirty_bytes_per_s:dirty ()
        in
        let rounds = List.length p.Migration.rounds in
        rounds <= config.Migration.max_rounds
        && p.Migration.downtime_s < p.Migration.total_s
        && p.Migration.downtime_s > 0.0
        && (rounds = config.Migration.max_rounds
           || p.Migration.stop_copy_bytes
              <= config.Migration.stop_threshold_bytes)
        && p.Migration.precopy_s
           = List.fold_left (fun a (_, d) -> a +. d) 0.0 p.Migration.rounds
      end)

let prop_policy_schedule_spacing =
  qtest ~count:100 "OS rejuvenations are never closer than the interval"
    QCheck.(pair (int_range 1 4) (float_range 1.1 8.0))
    (fun (vm_count, vmm_weeks) ->
      let week = Simkit.Units.weeks 1.0 in
      let events =
        Policy.schedule ~strategy:Strategy.Cold ~vm_count ~os_interval_s:week
          ~vmm_interval_s:(vmm_weeks *. week)
          ~horizon_s:(10.0 *. week)
      in
      let per_vm vm =
        List.filter_map
          (function
            | Policy.Os_rejuvenation { vm = v; at } when v = vm -> Some at
            | _ -> None)
          events
      in
      let rec spaced = function
        | a :: (b :: _ as rest) -> b -. a >= week -. 1.0 && spaced rest
        | _ -> true
      in
      List.for_all (fun vm -> spaced (per_vm vm))
        (List.init vm_count Fun.id)
      && List.for_all
           (fun e -> Policy.event_time e < 10.0 *. week)
           events)

let prop_cluster_timelines_bounded =
  qtest ~count:100 "cluster throughput stays within [0, m*p]"
    QCheck.(pair (int_range 2 12) (float_range 10.0 1000.0))
    (fun (m, reboot_at) ->
      let p = Cluster.paper_params ~m ~p:1.0 () in
      let full = float_of_int m in
      let check tl =
        List.for_all (fun (_, v) -> v >= 0.0 && v <= full +. 1e-9) tl
      in
      check (Cluster.warm_timeline p ~reboot_at)
      && check (Cluster.cold_timeline p ~reboot_at)
      && check (Cluster.migration_timeline p ~migrate_at:reboot_at)
      && Cluster.lost_capacity p (Cluster.warm_timeline p ~reboot_at)
           ~horizon_s:(reboot_at +. 1000.0)
         >= 0.0)

let prop_warm_always_cheapest_rolling =
  qtest ~count:50 "rolling warm never loses more capacity than rolling cold"
    QCheck.(pair (int_range 2 8) (float_range 50.0 400.0))
    (fun (m, gap_s) ->
      let p = Cluster.paper_params ~m ~p:1.0 () in
      let lost strategy =
        Cluster.lost_capacity p
          (Cluster.rolling_rejuvenation p ~strategy ~start_at:10.0 ~gap_s)
          ~horizon_s:10_000.0
      in
      lost Strategy.Warm <= lost Strategy.Cold)

let test_availability_downtime_breakdown () =
  let p = Availability.paper_example Strategy.Warm ~vmm_downtime_s:42.0 in
  (* 4 weekly OS rejuvenations + one warm reboot per 4-week interval. *)
  check_float ~eps:1e-6 "warm interval downtime"
    ((4.0 *. 33.6) +. 42.0)
    (Availability.downtime_per_vmm_interval p);
  let c = Availability.paper_example Strategy.Cold ~vmm_downtime_s:241.0 in
  check_float ~eps:1e-6 "cold absorbs alpha of one OS reboot"
    ((3.5 *. 33.6) +. 241.0)
    (Availability.downtime_per_vmm_interval c)

let test_workload_names () =
  check_true "ssh" (Rejuv.Scenario.workload_name Rejuv.Scenario.Ssh = "ssh");
  check_true "jboss"
    (Rejuv.Scenario.workload_name Rejuv.Scenario.Jboss = "jboss");
  check_true "web"
    (Rejuv.Scenario.workload_name
       (Rejuv.Scenario.Web { file_count = 1; file_bytes = 1; warm_cache = false })
    = "web")

let test_with_memory_scales_disk () =
  let c = Rejuv.Calibration.with_memory Rejuv.Calibration.default ~gib:128 in
  check_int "memory set" (Simkit.Units.gib 128) c.Rejuv.Calibration.host.Hw.Host.mem_bytes;
  check_true "disk can hold full-memory images"
    (c.Rejuv.Calibration.host.Hw.Host.disk_capacity_bytes
    >= 2 * Simkit.Units.gib 128)

let test_dirty_rates_ordered () =
  let r w = Migration.dirty_rate_of_workload w in
  check_true "ssh < jboss" (r Rejuv.Scenario.Ssh < r Rejuv.Scenario.Jboss);
  check_true "jboss < web"
    (r Rejuv.Scenario.Jboss
    < r (Rejuv.Scenario.Web { file_count = 1; file_bytes = 1; warm_cache = false }))

let test_image_pp () =
  let s = Format.asprintf "%a" Xenvmm.Image.pp Xenvmm.Image.default in
  check_true "mentions initrd" (String.length s > 10)

let test_warm_reboot_trace_has_expected_spans () =
  let s =
    Rejuv.Scenario.create { Rejuv.Scenario.Config.default with vm_count = 2 }
  in
  Rejuv.Roothammer.start_and_run s;
  ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Warm);
  let labels =
    List.map (fun (l, _, _) -> l) (Simkit.Trace.spans (Rejuv.Scenario.trace s))
  in
  List.iter
    (fun expected ->
      check_true (expected ^ " present") (List.mem expected labels))
    [
      "dom0 shutdown"; "on-memory suspend"; "quick reload (xexec)";
      "memory scrub (free only)"; "dom0 boot"; "vmm reboot";
      "pre-reboot tasks"; "post-reboot tasks";
    ];
  check_false "no hardware reset in the warm path"
    (List.mem "hardware reset (POST)" labels)

let suite =
  ( "misc",
    [
      prop_migration_plan_sane;
      prop_policy_schedule_spacing;
      prop_cluster_timelines_bounded;
      prop_warm_always_cheapest_rolling;
      Alcotest.test_case "availability breakdown" `Quick
        test_availability_downtime_breakdown;
      Alcotest.test_case "workload names" `Quick test_workload_names;
      Alcotest.test_case "with_memory scales disk" `Quick
        test_with_memory_scales_disk;
      Alcotest.test_case "dirty rates ordered" `Quick test_dirty_rates_ordered;
      Alcotest.test_case "image pp" `Quick test_image_pp;
      Alcotest.test_case "warm trace spans" `Quick
        test_warm_reboot_trace_has_expected_spans;
    ] )
