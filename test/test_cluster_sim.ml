(* The empirical cluster: rolling rejuvenation with measured loss —
   the paper's future work, tested end-to-end. *)
open Helpers
module Cs = Rejuv.Cluster_sim
module Strategy = Rejuv.Strategy

(* [blind_dispatch] by default: the loss-band tests below measure the
   paper's health-oblivious round-robin balancer. *)
let make ?(hosts = 3) ?(blind_dispatch = true) () =
  Cs.create { Cs.Config.default with hosts; blind_dispatch }

let test_start_brings_all_hosts_up () =
  let c = make () in
  Cs.start c;
  check_int "three hosts" 3 (Cs.host_count c);
  check_int "all healthy" 3 (Cs.healthy_hosts c);
  List.iteri
    (fun i _ -> check_true (Printf.sprintf "host %d" i) (Cs.host_healthy c i))
    (Cs.nodes c)

let test_load_all_served_when_healthy () =
  let c = make () in
  Cs.start c;
  let load = Cs.offer_load c ~rate_per_s:50.0 in
  Simkit.Engine.run
    ~until:(Simkit.Engine.now (Cs.engine c) +. 60.0)
    (Cs.engine c);
  Netsim.Poisson.stop load;
  check_true "requests flowed" (Netsim.Poisson.offered load > 2000);
  check_int "no losses" 0 (Netsim.Poisson.lost load)

let test_rolling_warm_small_losses () =
  let c = make () in
  Cs.start c;
  let r = Cs.rolling_rejuvenation c ~strategy:Strategy.Warm () in
  check_int "all hosts rebooted" 3 (List.length r.Cs.per_host_outage_s);
  List.iter
    (fun o -> check_in_band "per-host procedure" ~lo:40.0 ~hi:75.0 o)
    r.Cs.per_host_outage_s;
  (* Round-robin: 1/3 of requests hit the down host during its ~45 s
     outage. Over the whole run the loss ratio stays small. *)
  check_in_band "loss ratio" ~lo:0.05 ~hi:0.35 r.Cs.loss_ratio;
  check_int "cluster healthy after" 3 (Cs.healthy_hosts c)

let test_warm_loses_less_than_cold () =
  let loss strategy =
    let c = make () in
    Cs.start c;
    (Cs.rolling_rejuvenation c ~strategy ()).Cs.lost
  in
  let warm = loss Strategy.Warm in
  let cold = loss Strategy.Cold in
  check_true "warm loses far fewer requests"
    (float_of_int cold > 2.0 *. float_of_int warm)

let test_capacity_timeline_dips_one_host_at_a_time () =
  let c = make () in
  Cs.start c;
  let sampler = Cs.watch_capacity c ~interval_s:1.0 in
  let r = Cs.rolling_rejuvenation c ~strategy:Strategy.Warm () in
  Simkit.Sampler.stop sampler;
  let values = Simkit.Series.values (Simkit.Sampler.series sampler) in
  check_true "never below m-1" (List.for_all (fun v -> v >= 2.0) values);
  check_true "dipped during reboots" (List.exists (fun v -> v = 2.0) values);
  check_true "recovered" (List.exists (fun v -> v = 3.0) values);
  ignore r

let test_cluster_never_fully_dark () =
  (* Even a rolling COLD reboot keeps the cluster serving. *)
  let c = make () in
  Cs.start c;
  let sampler = Cs.watch_capacity c ~interval_s:1.0 in
  ignore (Cs.rolling_rejuvenation c ~strategy:Strategy.Cold ());
  Simkit.Sampler.stop sampler;
  check_true "always at least 2 hosts"
    (List.for_all
       (fun v -> v >= 2.0)
       (Simkit.Series.values (Simkit.Sampler.series sampler)))

let test_healthy_dispatch_avoids_down_hosts () =
  (* The default dispatcher skips rejuvenating hosts, so a rolling warm
     pass loses almost nothing — only requests already in flight. *)
  let c = make ~blind_dispatch:false () in
  Cs.start c;
  let r = Cs.rolling_rejuvenation c ~strategy:Strategy.Warm () in
  check_true "served nearly everything" (r.Cs.loss_ratio < 0.01);
  let blind = make () in
  Cs.start blind;
  let rb = Cs.rolling_rejuvenation blind ~strategy:Strategy.Warm () in
  check_true "blind dispatch loses more"
    (float_of_int rb.Cs.lost > 10.0 *. float_of_int (max r.Cs.lost 1))

let suite =
  ( "cluster_sim",
    [
      Alcotest.test_case "start brings hosts up" `Quick
        test_start_brings_all_hosts_up;
      Alcotest.test_case "load served when healthy" `Quick
        test_load_all_served_when_healthy;
      Alcotest.test_case "rolling warm" `Slow test_rolling_warm_small_losses;
      Alcotest.test_case "warm loses less than cold" `Slow
        test_warm_loses_less_than_cold;
      Alcotest.test_case "capacity timeline" `Slow
        test_capacity_timeline_dips_one_host_at_a_time;
      Alcotest.test_case "never fully dark" `Slow test_cluster_never_fully_dark;
      Alcotest.test_case "healthy dispatch avoids down hosts" `Slow
        test_healthy_dispatch_avoids_down_hosts;
    ] )
