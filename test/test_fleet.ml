(* The fleet control plane: wave planning, the SLO admission guard
   (as a QCheck law), migrate-then-reboot waves, and determinism of
   the fleet_rolling experiment output. *)
open Helpers
module Fleet = Rejuv.Fleet
module Wave = Rejuv.Wave
module Strategy = Rejuv.Strategy

(* --- Wave.plan ----------------------------------------------------------- *)

let test_plan_partitions_consecutively () =
  let p = Wave.plan_exn ~hosts:10 ~width:3 ~slo:0.5 in
  check_int "floor = ceil(0.5 * 10)" 5 p.Wave.slo_floor;
  check_int "width kept (below slack)" 3 p.Wave.width;
  Alcotest.(check (list (list int)))
    "consecutive waves"
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 6; 7; 8 ]; [ 9 ] ]
    p.Wave.waves;
  Alcotest.(check (list int))
    "covers every host exactly once"
    (List.init 10 Fun.id)
    (List.concat p.Wave.waves)

let test_plan_clamps_width_to_slack () =
  let p = Wave.plan_exn ~hosts:10 ~width:8 ~slo:0.7 in
  check_int "floor" 7 p.Wave.slo_floor;
  check_int "width clamped to hosts - floor" 3 p.Wave.width;
  check_true "no wave exceeds the clamp"
    (List.for_all (fun w -> List.length w <= 3) p.Wave.waves)

let test_plan_rejects_impossible_inputs () =
  let err ~hosts ~width ~slo =
    match Wave.plan ~hosts ~width ~slo with
    | Error (`Msg _) -> true
    | Ok _ -> false
  in
  check_true "no hosts" (err ~hosts:0 ~width:2 ~slo:0.5);
  check_true "no width" (err ~hosts:8 ~width:0 ~slo:0.5);
  check_true "no slack: every host needed" (err ~hosts:8 ~width:2 ~slo:1.0)

(* --- the control plane --------------------------------------------------- *)

let small_fleet ?(hosts = 6) ?(wave_width = 2) ?(slo = 0.5) ?(seed = 42) () =
  let f =
    Fleet.create
      {
        Fleet.Config.default with
        hosts;
        wave_width;
        slo;
        host = { Rejuv.Scenario.Config.default with seed };
        load_rate_per_s = 20.0;
        gap_s = 2.0;
        sample_interval_s = 2.0;
      }
  in
  Fleet.start f;
  f

let test_warm_pass_meets_slo_and_recovers () =
  let f = small_fleet () in
  let r = Fleet.run f ~strategy:(Wave.Reboot Strategy.Warm) in
  check_true "SLO met" r.Fleet.slo_met;
  check_true "no host skipped" (r.Fleet.skipped = []);
  check_int "all hosts rejuvenated" 6
    (List.length (List.concat_map (fun w -> w.Fleet.wave_hosts) r.Fleet.waves));
  check_int "fleet healthy after" 6 (Fleet.healthy_hosts f);
  check_true "some load served" (r.Fleet.offered > 100)

let test_migrate_waves_lose_no_capacity_headroom () =
  (* Migrating the guests away before the reboot keeps each host's VMs
     reachable; the pass still honours the floor and hosts come back. *)
  let f = small_fleet ~hosts:4 ~wave_width:1 () in
  let r = Fleet.run f ~strategy:Wave.Migrate in
  check_true "SLO met" r.Fleet.slo_met;
  check_true "nothing skipped" (r.Fleet.skipped = []);
  check_int "fleet healthy after" 4 (Fleet.healthy_hosts f)

(* QCheck law: whatever the (hosts, width, slo) cell, the admission
   guard never lets observed healthy capacity fall below the floor. *)
let qcheck_slo_guard =
  qtest ~count:6 "admission guard holds the SLO floor"
    QCheck.(
      triple (int_range 5 10) (int_range 1 4)
        (map (fun k -> 0.5 +. (0.1 *. float_of_int k)) (int_range 0 3)))
    (fun (hosts, width, slo) ->
      match Wave.plan ~hosts ~width ~slo with
      | Error _ -> QCheck.assume_fail () (* no slack: nothing to run *)
      | Ok _ ->
        let f = small_fleet ~hosts ~wave_width:width ~slo () in
        let r = Fleet.run f ~strategy:(Wave.Reboot Strategy.Warm) in
        r.Fleet.min_healthy >= r.Fleet.slo_floor)

(* --- determinism --------------------------------------------------------- *)

let fleet_json () =
  let r =
    Rejuv.Experiment.fleet_cell ~seed:7 ~hosts:8 ~width:3 ~slo:0.6
      ~strategy:(Wave.Reboot Strategy.Warm) ()
  in
  Rejuv.Experiment.Result.to_json (Rejuv.Experiment.Result.Fleet [ r ])

let test_same_seed_same_json () =
  let a = fleet_json () and b = fleet_json () in
  Alcotest.(check string) "byte-identical reports" a b;
  check_true "non-trivial payload" (String.length a > 100)

let suite =
  ( "fleet",
    [
      Alcotest.test_case "plan partitions consecutively" `Quick
        test_plan_partitions_consecutively;
      Alcotest.test_case "plan clamps width to slack" `Quick
        test_plan_clamps_width_to_slack;
      Alcotest.test_case "plan rejects impossible inputs" `Quick
        test_plan_rejects_impossible_inputs;
      Alcotest.test_case "warm pass meets SLO" `Slow
        test_warm_pass_meets_slo_and_recovers;
      Alcotest.test_case "migrate waves keep capacity" `Slow
        test_migrate_waves_lose_no_capacity_headroom;
      qcheck_slo_guard;
      Alcotest.test_case "same seed, same JSON" `Slow test_same_seed_same_json;
    ] )
