(* The observability plane: deterministic exports, histogram algebra,
   and the benchstat regression gate. The headline test re-runs a full
   fig6a experiment under two fresh registries and demands the JSON
   export be byte-identical — the property the whole plane is built
   around (sorted iteration, fixed float repr, sim-clock sampling). *)

open Obs

let check_float = Alcotest.(check (float 1e-9))

let contains ~needle haystack =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* --- deterministic export over a full experiment ----------------------- *)

(* Mirror of the CLI: the instrumented engine publishes its clock as a
   gauge, so the export's [now] comes back out of the registry. *)
let registry_now reg =
  match Registry.find reg "sim.engine.now_s" with
  | Some (Registry.Gauge g) -> Metric.gauge_value g
  | _ -> 0.0

let fig6a_export () =
  let reg = Registry.create () in
  with_registry reg (fun () ->
      ignore (Rejuv.Experiment.fig6 ~workload:Rejuv.Scenario.Ssh ()));
  Export.to_json ~now:(registry_now reg) reg

let test_fig6a_byte_identical () =
  let a = fig6a_export () in
  let b = fig6a_export () in
  Alcotest.(check string) "same seed, same bytes" a b;
  Alcotest.(check bool) "export is non-trivial" true (String.length a > 500)

let test_export_formats_deterministic () =
  let build () =
    let reg = Registry.create () in
    with_registry reg (fun () ->
        let c = Registry.counter reg "c" in
        Simkit.Series.Counter.record c ~time:1.0;
        Simkit.Series.Counter.record c ~time:2.0;
        observe "lat" 0.004;
        observe "lat" 0.021;
        Registry.set_gauge reg "depth" 3.0);
    reg
  in
  List.iter
    (fun fmt ->
      let a = Export.render fmt ~now:5.0 (build ()) in
      let b = Export.render fmt ~now:5.0 (build ()) in
      Alcotest.(check string) "render is a pure function of the data" a b)
    [ Export.Json; Export.Csv; Export.Prom ]

(* --- histogram determinism and merge algebra --------------------------- *)

let hist_of values =
  let h = Metric.Histogram.create () in
  List.iter (Metric.Histogram.observe h) values;
  h

(* No [sum] here: float addition is not associative, so the running sum
   is only reproducible for a fixed observation order (which is what the
   seeded-run export guarantee relies on). Buckets and extrema are
   order-free. *)
let hist_fingerprint h =
  ( Metric.Histogram.buckets h,
    Metric.Histogram.count h,
    Metric.Histogram.min_value h,
    Metric.Histogram.max_value h )

let values = [ 0.003; 0.011; 0.012; 0.4; 1.7; 1.7; 23.0; 0.0; 150.0 ]

let test_bucket_order_independence () =
  let a = hist_of values in
  let b = hist_of (List.rev values) in
  Alcotest.(check bool)
    "observation order does not change the buckets" true
    (hist_fingerprint a = hist_fingerprint b);
  check_float "sums agree to rounding" (Metric.Histogram.sum a)
    (Metric.Histogram.sum b);
  (* identical observation order ⇒ identical export bytes *)
  let export h =
    let reg = Registry.create () in
    Registry.register reg "h" (Registry.Histogram h);
    Export.to_json ~now:0.0 reg
  in
  Alcotest.(check string) "same export bytes" (export a)
    (export (hist_of values))

let test_merge_associative () =
  let a = hist_of [ 0.001; 0.05; 2.0 ] in
  let b = hist_of [ 0.004; 7.0 ] in
  let c = hist_of [ 0.0; 0.3; 0.3; 90.0 ] in
  let left = Metric.Histogram.merge (Metric.Histogram.merge a b) c in
  let right = Metric.Histogram.merge a (Metric.Histogram.merge b c) in
  Alcotest.(check bool)
    "merge is associative" true
    (hist_fingerprint left = hist_fingerprint right);
  let swapped = Metric.Histogram.merge b a in
  let ab = Metric.Histogram.merge a b in
  Alcotest.(check bool)
    "merge is commutative" true
    (hist_fingerprint swapped = hist_fingerprint ab);
  check_float "merged sum is the sum of parts"
    (Metric.Histogram.sum a +. Metric.Histogram.sum b +. Metric.Histogram.sum c)
    (Metric.Histogram.sum left)

let test_quantiles_within_range () =
  let h = hist_of values in
  let in_range name = function
    | None -> Alcotest.failf "%s: no quantile on a non-empty histogram" name
    | Some q ->
      Alcotest.(check bool)
        (name ^ " clamped to observed range")
        true
        (q >= 0.0 && q <= 150.0)
  in
  in_range "p50" (Metric.Histogram.p50 h);
  in_range "p95" (Metric.Histogram.p95 h);
  in_range "p99" (Metric.Histogram.p99 h)

let test_empty_histogram_exports_nulls () =
  let reg = Registry.create () in
  Registry.register reg "empty"
    (Registry.Histogram (Metric.Histogram.create ()));
  let json = Export.to_json ~now:0.0 reg in
  Alcotest.(check bool)
    "statistics render as nulls, not exceptions" true
    (contains ~needle:"\"mean\":null" json)

(* --- benchstat gate ----------------------------------------------------- *)

let bench_file pairs : Benchstat.Check.file =
  {
    metrics =
      List.map
        (fun (name, value, tol) ->
          (name, { Benchstat.Check.value; unit_ = "s"; tolerance_pct = tol }))
        pairs;
  }

let baseline =
  bench_file
    [
      ("fig6a.n10.warm_downtime_s", 5.0, Some 5.0);
      ("fig6a.n10.cold_downtime_s", 70.0, Some 5.0);
      ("self.bench.wall_s", 12.0, None);
    ]

let test_benchstat_green_on_identical () =
  let text = Benchstat.Check.to_json baseline in
  match Benchstat.Check.check ~old_text:text ~new_text:text with
  | Error r -> Alcotest.failf "identical files must pass: %s" r
  | Ok comparisons ->
    Alcotest.(check int)
      "both gated metrics counted" 2
      (Benchstat.Check.gated_count comparisons);
    Alcotest.(check int)
      "no failures" 0
      (List.length (Benchstat.Check.failures comparisons))

let test_benchstat_red_on_regression () =
  (* a 20% downtime regression against a 5% band must trip the gate *)
  let regressed =
    bench_file
      [
        ("fig6a.n10.warm_downtime_s", 6.0, Some 5.0);
        ("fig6a.n10.cold_downtime_s", 70.0, Some 5.0);
        ("self.bench.wall_s", 40.0, None);
      ]
  in
  match
    Benchstat.Check.check
      ~old_text:(Benchstat.Check.to_json baseline)
      ~new_text:(Benchstat.Check.to_json regressed)
  with
  | Ok _ -> Alcotest.fail "a 20% regression must fail the gate"
  | Error report ->
    Alcotest.(check bool)
      "report names the regressed metric" true
      (contains ~needle:"fig6a.n10.warm_downtime_s" report)

let test_benchstat_missing_metric_fails () =
  let pruned = bench_file [ ("fig6a.n10.warm_downtime_s", 5.0, Some 5.0) ] in
  match
    Benchstat.Check.check
      ~old_text:(Benchstat.Check.to_json baseline)
      ~new_text:(Benchstat.Check.to_json pruned)
  with
  | Ok _ -> Alcotest.fail "dropping a baseline metric must fail the gate"
  | Error _ -> ()

let test_benchstat_roundtrip () =
  let text = Benchstat.Check.to_json baseline in
  match Benchstat.Check.of_json text with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok file ->
    Alcotest.(check string) "canonical form is a fixed point" text
      (Benchstat.Check.to_json file)

let suite =
  ( "obs",
    [
      Alcotest.test_case "fig6a metrics export is byte-identical" `Slow
        test_fig6a_byte_identical;
      Alcotest.test_case "exports are deterministic in all formats" `Quick
        test_export_formats_deterministic;
      Alcotest.test_case "histogram buckets are order-independent" `Quick
        test_bucket_order_independence;
      Alcotest.test_case "histogram merge is associative" `Quick
        test_merge_associative;
      Alcotest.test_case "quantiles stay inside the observed range" `Quick
        test_quantiles_within_range;
      Alcotest.test_case "empty histogram exports nulls" `Quick
        test_empty_histogram_exports_nulls;
      Alcotest.test_case "benchstat passes identical files" `Quick
        test_benchstat_green_on_identical;
      Alcotest.test_case "benchstat rejects a 20% regression" `Quick
        test_benchstat_red_on_regression;
      Alcotest.test_case "benchstat rejects a vanished metric" `Quick
        test_benchstat_missing_metric_fails;
      Alcotest.test_case "bench file JSON roundtrips" `Quick
        test_benchstat_roundtrip;
    ] )
