open Helpers
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Engine = Simkit.Engine

let gib = Simkit.Units.gib

(* A powered-on VMM with dom0 up, on the paper's 12 GiB host. *)
let booted_vmm ?heap_capacity () =
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create ?heap_capacity host in
  run_task engine (Vmm.power_on vmm);
  (engine, host, vmm)

let create_domain_exn engine vmm ~name ~mem_bytes =
  let result = ref None in
  Vmm.create_domain vmm ~name ~mem_bytes (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok d) -> d
  | Some (Error e) -> Alcotest.fail (Vmm.error_message e)
  | None -> Alcotest.fail "create_domain never completed"

(* Boot-to-running shortcut: domains created by the VMM start in
   [Created]; experiments at this layer drive them to Running directly
   (the guest library owns the real boot path). *)
let run_domain d =
  Domain.set_state d Domain.Booting;
  Domain.set_state d Domain.Running

let save_exn engine vmm d =
  let r = ref None in
  Vmm.save_domain_to_disk vmm d (fun x -> r := Some x);
  Engine.run engine;
  match !r with
  | Some (Ok ()) -> ()
  | Some (Error e) -> Alcotest.fail (Vmm.error_message e)
  | None -> Alcotest.fail "save never completed"

let test_power_on () =
  let engine, host, vmm = booted_vmm () in
  check_true "running" (Vmm.is_running vmm);
  check_int "generation 1" 1 (Vmm.generation vmm);
  check_true "dom0 exists" (Vmm.dom0 vmm <> None);
  check_true "xenstore up" (Vmm.xenstore vmm <> None);
  check_int "no domUs" 0 (List.length (Vmm.domus vmm));
  (* POST 47 + load 4.7 + scrub 12 GiB * 0.55 + dom0 boot 32 = 90.3 *)
  check_close ~tolerance:0.02 "boot duration" 90.3 (Engine.now engine);
  ignore host

let test_create_domain_accounting () =
  let engine, host, vmm = booted_vmm () in
  let free_before = Hw.Memory.free_bytes host.Hw.Host.memory in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  check_int "one domU" 1 (List.length (Vmm.domus vmm));
  check_true "found by name"
    (match Vmm.find_domain vmm ~name:"vm01" with
     | Some d' -> d' == d
     | None -> false);
  check_int "p2m populated" (gib 1) (Xenvmm.P2m.mapped_bytes (Domain.p2m d));
  let used = free_before - Hw.Memory.free_bytes host.Hw.Host.memory in
  (* Guest memory + 2 MiB P2M-mapping table. *)
  check_int "memory + table" (gib 1 + Simkit.Units.mib 2) used;
  check_true "heap charged" (Xenvmm.Vmm_heap.used_bytes (Vmm.heap vmm) > 0);
  check_int "create hypercall" 1 (Vmm.hypercall_count vmm "domctl_create")

let test_destroy_domain_releases_everything () =
  let engine, host, vmm = booted_vmm () in
  let free0 = Hw.Memory.free_bytes host.Hw.Host.memory in
  let heap0 = Xenvmm.Vmm_heap.used_bytes (Vmm.heap vmm) in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 2) in
  run_task engine (Vmm.destroy_domain vmm d);
  check_int "memory restored" free0 (Hw.Memory.free_bytes host.Hw.Host.memory);
  check_int "heap restored" heap0 (Xenvmm.Vmm_heap.used_bytes (Vmm.heap vmm));
  check_int "no domUs" 0 (List.length (Vmm.domus vmm))

let test_out_of_machine_memory () =
  let engine, _host, vmm = booted_vmm () in
  (* 12 GiB installed, 0.5 GiB to dom0: a 13 GiB guest cannot fit. *)
  let result = ref None in
  Vmm.create_domain vmm ~name:"huge" ~mem_bytes:(gib 13) (fun r ->
      result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Error Simkit.Fault.Out_of_memory) -> ()
  | _ -> Alcotest.fail "expected Out_of_memory");
  check_int "no leak into table" 0 (List.length (Vmm.domus vmm))

let test_heap_exhaustion_on_create () =
  (* A heap too small for even one domain control structure. *)
  let engine, _host, vmm = booted_vmm ~heap_capacity:12000 () in
  (* dom0 already consumed 8 KiB; 12 KB heap leaves < 8 KiB. *)
  let result = ref None in
  Vmm.create_domain vmm ~name:"vm01" ~mem_bytes:(gib 1) (fun r ->
      result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error Simkit.Fault.Heap_exhausted) -> ()
  | _ -> Alcotest.fail "expected Heap_exhausted"

let test_balloon_up_down () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let p2m = Domain.p2m d in
  (match Vmm.balloon vmm d ~delta_bytes:(Simkit.Units.mib 256) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  check_int "grown" (gib 1 + Simkit.Units.mib 256) (Xenvmm.P2m.mapped_bytes p2m);
  (match Vmm.balloon vmm d ~delta_bytes:(-Simkit.Units.mib 512) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  check_int "shrunk" (gib 1 - Simkit.Units.mib 256) (Xenvmm.P2m.mapped_bytes p2m);
  check_true "table consistent"
    (Xenvmm.P2m.check_invariants p2m = Ok ());
  check_int "memory_op hypercalls" 2 (Vmm.hypercall_count vmm "memory_op")

let test_suspend_resume_on_memory () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "suspended" (Domain.state d = Domain.Suspended);
  (match Domain.exec_state d with
  | Some es ->
    check_int "16 KiB exec state" (16 * 1024) es.Domain.state_bytes;
    check_true "exec frames preserved" (es.Domain.state_frames <> [])
  | None -> Alcotest.fail "expected exec state");
  check_int "image still mapped" (gib 1)
    (Xenvmm.P2m.mapped_bytes (Domain.p2m d));
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  (match !resumed with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "resume failed");
  check_true "running again" (Domain.state d = Domain.Running);
  check_true "exec state released" (Domain.exec_state d = None)

let test_suspend_time_hardly_depends_on_memory () =
  (* The on-memory suspend property of Figure 4. *)
  let time_for mem_bytes =
    let engine, _host, vmm = booted_vmm () in
    let d = create_domain_exn engine vmm ~name:"vm" ~mem_bytes in
    run_domain d;
    task_duration engine (Vmm.suspend_all_on_memory vmm)
  in
  let t1 = time_for (gib 1) in
  let t11 = time_for (gib 11) in
  check_true "sub-second even at 11 GiB" (t11 < 1.0);
  (* Paper: 0.08 s at 11 GiB — four orders of magnitude under the
     save-to-disk path, and the absolute growth over 10 GiB is tiny. *)
  check_true "absolute growth under 100 ms" (t11 -. t1 < 0.1)

let test_resume_wrong_state () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  let result = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error (Simkit.Fault.Bad_domain_state "running")) -> ()
  | _ -> Alcotest.fail "expected Bad_domain_state"

let test_quick_reload_preserves_suspended () =
  let engine, host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  let p2m_extents_before = Xenvmm.P2m.machine_extents (Domain.p2m d) in
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  let reload_result = ref None in
  Vmm.quick_reload vmm (fun r -> reload_result := Some r);
  Engine.run engine;
  (match !reload_result with
  | Some (Ok ()) -> ()
  | _ -> Alcotest.fail "quick reload failed");
  check_int "generation bumped" 2 (Vmm.generation vmm);
  check_int "xexec hypercall" 1 (Vmm.hypercall_count vmm "xexec");
  check_true "domain still suspended" (Domain.state d = Domain.Suspended);
  check_true "same machine frames"
    (Xenvmm.P2m.machine_extents (Domain.p2m d) = p2m_extents_before);
  (* The frames holding the image must be allocated (reserved), not
     free, in the new VMM's view. *)
  let frames = Hw.Memory.frames host.Hw.Host.memory in
  List.iter
    (fun e ->
      check_false "image frame not free"
        (Hw.Frame.is_free frames ~mfn:e.Hw.Frame.first))
    p2m_extents_before;
  (* And the domain resumes fine afterwards. *)
  run_task engine (Vmm.boot_dom0 vmm);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  match !resumed with
  | Some (Ok ()) -> check_true "running" (Domain.state d = Domain.Running)
  | _ -> Alcotest.fail "resume after reload failed"

let test_quick_reload_clears_heap_leaks () =
  (* The whole point of rejuvenation: reboot clears accumulated leaks. *)
  let engine, _host, vmm = booted_vmm () in
  Xenvmm.Vmm_heap.leak (Vmm.heap vmm) ~bytes:(4 * 1024 * 1024);
  check_true "leaked" (Xenvmm.Vmm_heap.leaked_bytes (Vmm.heap vmm) > 0);
  run_task engine (Vmm.shutdown_dom0 vmm);
  let r = ref None in
  Vmm.quick_reload vmm (fun x -> r := Some x);
  Engine.run engine;
  check_true "reloaded" (!r = Some (Ok ()));
  check_int "leaks gone" 0 (Xenvmm.Vmm_heap.leaked_bytes (Vmm.heap vmm))

let test_quick_reload_crashes_running_domains () =
  (* A domain that cannot be suspended (e.g. a driver domain) does not
     survive the reload. *)
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"driver" ~mem_bytes:(gib 1) in
  run_domain d;
  run_task engine (Vmm.shutdown_dom0 vmm);
  let r = ref None in
  Vmm.quick_reload vmm (fun x -> r := Some x);
  Engine.run engine;
  check_true "reloaded" (!r = Some (Ok ()));
  check_true "running domain lost" (Domain.state d = Domain.Crashed);
  check_int "table empty" 0 (List.length (Vmm.domus vmm))

let test_hardware_reset_loses_frozen_images () =
  let engine, host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  run_task engine (Vmm.shutdown_vmm vmm);
  run_task engine (Vmm.hardware_reset vmm);
  check_true "frozen image destroyed" (Domain.state d = Domain.Crashed);
  check_int "all memory free again"
    (Hw.Memory.total_bytes host.Hw.Host.memory)
    (Hw.Memory.free_bytes host.Hw.Host.memory);
  check_true "vmm running" (Vmm.is_running vmm)

let test_save_restore_roundtrip () =
  let engine, host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  let free_before_save = Hw.Memory.free_bytes host.Hw.Host.memory in
  save_exn engine vmm d;
  check_true "saved state" (Domain.state d = Domain.Saved_to_disk);
  Alcotest.(check (list string)) "image listed" [ "vm01" ] (Vmm.saved_images vmm);
  check_true "frames released"
    (Hw.Memory.free_bytes host.Hw.Host.memory > free_before_save);
  check_true "disk written"
    (Hw.Disk.bytes_written host.Hw.Host.disk >= gib 1);
  let restored = ref None in
  Vmm.restore_domain_from_disk vmm ~name:"vm01" (fun r -> restored := Some r);
  Engine.run engine;
  (match !restored with
  | Some (Ok d') -> check_true "same domain object" (d' == d)
  | _ -> Alcotest.fail "restore failed");
  check_true "running" (Domain.state d = Domain.Running);
  check_int "image consumed" 0 (List.length (Vmm.saved_images vmm));
  check_true "disk read" (Hw.Disk.bytes_read host.Hw.Host.disk >= gib 1)

let test_save_survives_hardware_reset () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  save_exn engine vmm d;
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.shutdown_vmm vmm);
  run_task engine (Vmm.hardware_reset vmm);
  run_task engine (Vmm.boot_dom0 vmm);
  Alcotest.(check (list string)) "image survived" [ "vm01" ]
    (Vmm.saved_images vmm);
  let restored = ref None in
  Vmm.restore_domain_from_disk vmm ~name:"vm01" (fun r -> restored := Some r);
  Engine.run engine;
  match !restored with
  | Some (Ok _) -> check_true "running" (Domain.state d = Domain.Running)
  | _ -> Alcotest.fail "restore after reset failed"

let test_restore_unknown_image () =
  let engine, _host, vmm = booted_vmm () in
  let r = ref None in
  Vmm.restore_domain_from_disk vmm ~name:"ghost" (fun x -> r := Some x);
  Engine.run engine;
  match !r with
  | Some (Error (Simkit.Fault.Image_lost "ghost")) -> ()
  | _ -> Alcotest.fail "expected Image_lost"

let test_save_scales_with_memory () =
  (* Stock Xen's weakness (Figure 4): save time grows with memory. *)
  let save_time mem_bytes =
    let engine, _host, vmm = booted_vmm () in
    let d = create_domain_exn engine vmm ~name:"vm" ~mem_bytes in
    run_domain d;
    let t0 = Engine.now engine in
    save_exn engine vmm d;
    Engine.now engine -. t0
  in
  let t1 = save_time (gib 1) in
  let t4 = save_time (gib 4) in
  check_close ~tolerance:0.15 "roughly linear" 4.0 (t4 /. t1)

let test_domain_destroy_leak_hook () =
  (* Changeset 9392: heap lost on every VM reboot. *)
  let engine, _host, vmm = booted_vmm () in
  Vmm.set_leak_per_domain_destroy vmm ~bytes:65536;
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_task engine (Vmm.destroy_domain vmm d);
  check_int "leak recorded" 65536
    (Xenvmm.Vmm_heap.leaked_bytes (Vmm.heap vmm))

let test_event_stream () =
  let engine, _host, vmm = booted_vmm () in
  let events = ref [] in
  Vmm.on_event vmm (fun e -> events := e :: !events);
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_task engine (Vmm.destroy_domain vmm d);
  let saw p = List.exists p !events in
  check_true "created event" (saw (function Vmm.Domain_created _ -> true | _ -> false));
  check_true "destroyed event"
    (saw (function Vmm.Domain_destroyed _ -> true | _ -> false));
  check_true "hypercall events"
    (saw (function Vmm.Hypercall _ -> true | _ -> false))

let test_preserved_bytes () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  run_domain d;
  check_int "nothing preserved while running" 0 (Vmm.preserved_bytes vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  (* Image + 2 MiB table + 16 KiB exec state. *)
  check_int "preserved accounting"
    (gib 1 + Simkit.Units.mib 2 + (16 * 1024))
    (Vmm.preserved_bytes vmm)

let suite =
  ( "vmm",
    [
      Alcotest.test_case "power on" `Quick test_power_on;
      Alcotest.test_case "create domain accounting" `Quick
        test_create_domain_accounting;
      Alcotest.test_case "destroy releases everything" `Quick
        test_destroy_domain_releases_everything;
      Alcotest.test_case "out of machine memory" `Quick
        test_out_of_machine_memory;
      Alcotest.test_case "out of heap" `Quick test_heap_exhaustion_on_create;
      Alcotest.test_case "balloon" `Quick test_balloon_up_down;
      Alcotest.test_case "on-memory suspend/resume" `Quick
        test_suspend_resume_on_memory;
      Alcotest.test_case "suspend independent of memory size" `Quick
        test_suspend_time_hardly_depends_on_memory;
      Alcotest.test_case "resume wrong state" `Quick test_resume_wrong_state;
      Alcotest.test_case "quick reload preserves" `Quick
        test_quick_reload_preserves_suspended;
      Alcotest.test_case "quick reload rejuvenates heap" `Quick
        test_quick_reload_clears_heap_leaks;
      Alcotest.test_case "quick reload crashes running" `Quick
        test_quick_reload_crashes_running_domains;
      Alcotest.test_case "hardware reset loses images" `Quick
        test_hardware_reset_loses_frozen_images;
      Alcotest.test_case "save/restore roundtrip" `Quick
        test_save_restore_roundtrip;
      Alcotest.test_case "saved image survives reset" `Quick
        test_save_survives_hardware_reset;
      Alcotest.test_case "restore unknown image" `Quick
        test_restore_unknown_image;
      Alcotest.test_case "save scales with memory" `Quick
        test_save_scales_with_memory;
      Alcotest.test_case "destroy leak hook" `Quick test_domain_destroy_leak_hook;
      Alcotest.test_case "event stream" `Quick test_event_stream;
      Alcotest.test_case "preserved bytes" `Quick test_preserved_bytes;
    ] )
