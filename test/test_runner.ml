(* The parallel sweep runner: work-stealing pool semantics, key-ordered
   deterministic merges, the on-disk result cache, and the guarantee
   that every registered experiment serializes through Result.to_json. *)
open Helpers
module Experiment = Rejuv.Experiment
module Result = Rejuv.Experiment.Result
module Spec = Rejuv.Experiment.Spec
module Pool = Runner.Pool
module Sweep = Runner.Sweep
module Cache = Runner.Cache

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_order_and_domains () =
  (* 40 short tasks on 4 workers: results must come back in input
     order, and the work must actually have spread over >= 2 domains
     (jobs > 1 spawns workers even on a single-core host). *)
  let tasks = Array.init 40 Fun.id in
  let results =
    Pool.parallel_map ~jobs:4
      (fun i ->
        Unix.sleepf 0.002;
        (i * i, (Domain.self () :> int)))
      tasks
  in
  Array.iteri
    (fun i (sq, _) -> check_int (Printf.sprintf "result %d in place" i) (i * i) sq)
    results;
  let domains =
    Array.fold_left
      (fun acc (_, d) -> if List.mem d acc then acc else d :: acc)
      [] results
  in
  check_true "used at least 2 domains" (List.length domains >= 2)

let test_pool_jobs1_inline () =
  let self = (Domain.self () :> int) in
  let results =
    Pool.parallel_map ~jobs:1 (fun _ -> (Domain.self () :> int)) [| 0; 1; 2 |]
  in
  Array.iter (check_int "ran on the calling domain" self) results

let test_pool_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.parallel_map ~jobs:3
           (fun i -> if i = 17 then failwith "task 17 exploded" else i)
           (Array.init 32 Fun.id));
      false
    with Failure msg -> String.equal msg "task 17 exploded"
  in
  check_true "worker exception re-raised on the caller" raised

(* --- Sweep ---------------------------------------------------------------- *)

let test_sweep_key_order () =
  (* Tasks handed over unsorted, with the lexicographically-last key
     finishing first: outcomes must still come back in key order. *)
  let task key delay =
    { Sweep.key; cache_key = None; run = (fun () -> Unix.sleepf delay; key) }
  in
  let outcomes =
    Sweep.run ~jobs:3
      [ task "c" 0.0; task "a" 0.02; task "b" 0.01 ]
  in
  let keys = List.map (fun (o : _ Sweep.outcome) -> o.key) outcomes in
  Alcotest.(check (list string)) "ascending key order" [ "a"; "b"; "c" ] keys;
  List.iter
    (fun (o : _ Sweep.outcome) ->
      check_true "value matches key" (o.value = Ok o.key);
      check_true "wall clock measured" (o.metrics.wall_s >= 0.0);
      check_false "nothing cached" o.metrics.cached)
    outcomes

let cheap_params =
  {
    Spec.default_params with
    vm_counts = Some [ 1; 2 ];
    mem_gib = Some [ 1; 2 ];
    smoke = true;
  }

let merged_bytes ~jobs ids =
  let merged, _ = Experiment.sweep ~jobs ~params:cheap_params ids in
  Marshal.to_string (List.map snd merged) []

let test_sweep_parallel_equals_sequential () =
  (* The acceptance bar: fig4 and fig6 shards fanned across 4 domains
     must merge to bytes identical to the jobs=1 path. *)
  let seq = merged_bytes ~jobs:1 [ "fig4"; "fig6" ] in
  let par = merged_bytes ~jobs:4 [ "fig4"; "fig6" ] in
  check_true "parallel merge byte-identical to sequential" (String.equal seq par)

let test_sweep_isolation_check_passes () =
  let _, outcomes =
    Experiment.sweep ~jobs:2 ~verify_isolation:true ~params:cheap_params
      [ "fig4" ]
  in
  check_int "one outcome per shard" 2 (List.length outcomes);
  List.iter
    (fun (o : _ Sweep.outcome) ->
      check_true "simulated events attributed" (o.metrics.sim_events > 0))
    outcomes

(* --- Cache ---------------------------------------------------------------- *)

let with_temp_cache f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "roothammer-test-%d" (Unix.getpid ()))
  in
  let cache = Cache.create ~dir () in
  Fun.protect
    ~finally:(fun () ->
      Cache.clear cache;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f cache)

let test_cache_hit_skips_run () =
  with_temp_cache (fun cache ->
      let runs = Atomic.make 0 in
      let task =
        {
          Sweep.key = "t";
          cache_key = Some (Cache.key ~id:"t" ~params:"p" ~seed:42 ~calibration:"c");
          run =
            (fun () ->
              Atomic.incr runs;
              [ 1.5; 2.5 ]);
        }
      in
      let first = Sweep.run ~jobs:1 ~cache [ task ] in
      let second = Sweep.run ~jobs:1 ~cache [ task ] in
      check_int "ran exactly once" 1 (Atomic.get runs);
      match (first, second) with
      | [ f ], [ s ] ->
        check_false "first pass computed" f.Sweep.metrics.cached;
        check_true "second pass served from cache" s.Sweep.metrics.cached;
        check_int "cache hit costs no sim events" 0 s.Sweep.metrics.sim_events;
        check_true "identical value" (f.Sweep.value = s.Sweep.value)
      | _ -> Alcotest.fail "expected one outcome per pass")

let test_cache_key_identity () =
  let k ~seed ~calibration =
    Cache.key ~id:"fig4/mem=01" ~params:"p" ~seed ~calibration
  in
  check_true "stable for equal identity"
    (String.equal (k ~seed:42 ~calibration:"c") (k ~seed:42 ~calibration:"c"));
  check_false "seed changes the key"
    (String.equal (k ~seed:42 ~calibration:"c") (k ~seed:43 ~calibration:"c"));
  check_false "calibration changes the key"
    (String.equal (k ~seed:42 ~calibration:"c") (k ~seed:42 ~calibration:"d"))

(* --- Result.to_json ------------------------------------------------------- *)

(* A strict little JSON reader — enough to reject anything malformed
   without pulling in a parsing dependency. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Exit in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c = if peek () = c then advance () else raise Exit in
  let literal w = String.iter expect w in
  let digits () =
    if not (match peek () with '0' .. '9' -> true | _ -> false) then raise Exit;
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        advance ();
        go ()
      | _ ->
        advance ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          if peek () = ',' then (advance (); members ()) else expect '}'
        in
        members ()
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then advance ()
      else
        let rec elems () =
          value ();
          skip_ws ();
          if peek () = ',' then (advance (); elems ()) else expect ']'
        in
        elems ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | _ ->
      if peek () = '-' then advance ();
      digits ();
      if !pos < n && s.[!pos] = '.' then (advance (); digits ());
      if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
        advance ();
        if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
        digits ()
      end
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_validator_sanity () =
  check_true "object" (json_valid {|{"a":[1,-2.5e3,null,true],"b":"x\"y"}|});
  check_false "trailing garbage" (json_valid {|{"a":1} junk|});
  check_false "bare word" (json_valid "nonsense");
  check_false "unterminated" (json_valid {|{"a":|})

let test_every_experiment_round_trips_json () =
  (* Run every registered spec end-to-end (cheap sweep points where the
     experiment is parameterized) and check its merged Result renders
     as well-formed JSON with the right envelope. *)
  List.iter
    (fun id ->
      let merged, _ = Experiment.sweep ~jobs:1 ~params:cheap_params [ id ] in
      match merged with
      | [ (id', Ok result) ] ->
        check_true "id preserved" (String.equal id id');
        let json = Result.to_json result in
        check_true (id ^ ": valid JSON") (json_valid json);
        let prefix = Printf.sprintf {|{"kind":"%s"|} (Result.kind result) in
        check_true (id ^ ": kind envelope")
          (String.length json >= String.length prefix
          && String.equal (String.sub json 0 (String.length prefix)) prefix)
      | _ -> Alcotest.failf "%s: expected one merged result" id)
    (Spec.ids ())

let suite =
  ( "runner",
    [
      Alcotest.test_case "pool: input order, >=2 domains" `Quick
        test_pool_order_and_domains;
      Alcotest.test_case "pool: jobs=1 runs inline" `Quick
        test_pool_jobs1_inline;
      Alcotest.test_case "pool: exception propagates" `Quick
        test_pool_exception_propagates;
      Alcotest.test_case "sweep: outcomes in key order" `Quick
        test_sweep_key_order;
      Alcotest.test_case "sweep: parallel = sequential bytes" `Slow
        test_sweep_parallel_equals_sequential;
      Alcotest.test_case "sweep: isolation check and metrics" `Quick
        test_sweep_isolation_check_passes;
      Alcotest.test_case "cache: hit skips the run" `Quick
        test_cache_hit_skips_run;
      Alcotest.test_case "cache: key identity" `Quick test_cache_key_identity;
      Alcotest.test_case "json validator sanity" `Quick
        test_json_validator_sanity;
      Alcotest.test_case "every experiment -> valid JSON" `Slow
        test_every_experiment_round_trips_json;
    ] )
