(* End-to-end reboot scenarios on the full stack: scenario -> strategies
   -> probers, checking the paper's headline behaviours. These are the
   slowest tests in the suite ([`Slow] where heavy). *)
open Helpers
module Scenario = Rejuv.Scenario
module Strategy = Rejuv.Strategy
module Experiment = Rejuv.Experiment
module Vmm = Xenvmm.Vmm

let gib = Simkit.Units.gib

let scenario vm_count =
  Scenario.create { Scenario.Config.default with vm_count }

let test_scenario_starts_all_vms () =
  let s =
    scenario 3
  in
  Rejuv.Roothammer.start_and_run s;
  check_int "three VMs" 3 (List.length (Scenario.vms s));
  List.iter
    (fun vm -> check_true (Scenario.vm_name vm ^ " up") (Scenario.vm_is_up vm))
    (Scenario.vms s);
  check_int "domains in VMM" 3 (List.length (Vmm.domus (Scenario.vmm s)))

let test_zero_vm_scenario () =
  let s =
    scenario 0
  in
  Rejuv.Roothammer.start_and_run s;
  check_int "no VMs" 0 (List.length (Scenario.vms s))

let run_one strategy ~vm_count =
  Experiment.run_reboot ~strategy ~vm_count ~vm_mem_bytes:(gib 1) ()

let test_warm_reboot_downtime_band () =
  let r = run_one Strategy.Warm ~vm_count:11 in
  (* Paper: 42 s at 11 VMs. *)
  check_in_band "warm downtime" ~lo:35.0 ~hi:48.0 r.Experiment.downtime_mean_s

let test_warm_downtime_flat_in_vm_count () =
  let r1 = run_one Strategy.Warm ~vm_count:1 in
  let r11 = run_one Strategy.Warm ~vm_count:11 in
  (* "Hardly depended on the number of VMs" — within a few seconds. *)
  check_true "flat"
    (Float.abs (r11.Experiment.downtime_mean_s -. r1.Experiment.downtime_mean_s)
    < 8.0)

let test_cold_reboot_downtime_band () =
  let r = run_one Strategy.Cold ~vm_count:11 in
  (* Paper: 157 s at 11 VMs with sshd. *)
  check_in_band "cold downtime" ~lo:135.0 ~hi:180.0
    r.Experiment.downtime_mean_s

let test_saved_reboot_downtime_band () =
  let r = run_one Strategy.Saved ~vm_count:11 in
  (* Paper: 429 s; our serial-restore measurement sits somewhat lower
     but the ranking and order of magnitude must hold. *)
  check_in_band "saved downtime" ~lo:330.0 ~hi:470.0
    r.Experiment.downtime_mean_s

let test_strategy_ranking () =
  (* The paper's central comparison at n = 5. *)
  let warm = run_one Strategy.Warm ~vm_count:5 in
  let cold = run_one Strategy.Cold ~vm_count:5 in
  let saved = run_one Strategy.Saved ~vm_count:5 in
  check_true "warm < cold"
    (warm.Experiment.downtime_mean_s < cold.Experiment.downtime_mean_s);
  check_true "cold < saved"
    (cold.Experiment.downtime_mean_s < saved.Experiment.downtime_mean_s);
  check_true "warm at least 3x better than cold"
    (cold.Experiment.downtime_mean_s
    > 3.0 *. warm.Experiment.downtime_mean_s)

let test_warm_preserves_cache_cold_does_not () =
  let check_cache strategy expected_fraction =
    let s =
  scenario 1
    in
    Rejuv.Roothammer.start_and_run s;
    let vm = List.hd (Scenario.vms s) in
    let fs = Guest.Kernel.filesystem (Scenario.vm_kernel vm) in
    let f = Guest.Filesystem.create_file fs ~bytes:(Simkit.Units.mib 64) () in
    Guest.Filesystem.warm_file fs f;
    ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy);
    (* After a cold reboot the VM has a fresh kernel and cache. *)
    let fs' = Guest.Kernel.filesystem (Scenario.vm_kernel vm) in
    let fraction =
      match
        List.find_opt
          (fun f' -> Guest.Filesystem.file_name f' = Guest.Filesystem.file_name f)
          (Guest.Filesystem.files fs')
      with
      | Some f' -> Guest.Filesystem.cached_fraction fs' f'
      | None -> 0.0
    in
    check_float
      (Rejuv.Strategy.name strategy ^ " cache fraction")
      expected_fraction fraction
  in
  check_cache Strategy.Warm 1.0;
  check_cache Strategy.Cold 0.0

let test_saved_reboot_preserves_cache () =
  let s =
    scenario 1
  in
  Rejuv.Roothammer.start_and_run s;
  let vm = List.hd (Scenario.vms s) in
  let fs = Guest.Kernel.filesystem (Scenario.vm_kernel vm) in
  let f = Guest.Filesystem.create_file fs ~bytes:(Simkit.Units.mib 64) () in
  Guest.Filesystem.warm_file fs f;
  ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Saved);
  check_float "image preserved through disk" 1.0
    (Guest.Filesystem.cached_fraction fs f)

let test_warm_reboot_rejuvenates_vmm () =
  let s =
    scenario 2
  in
  Rejuv.Roothammer.start_and_run s;
  let vmm = Scenario.vmm s in
  Xenvmm.Vmm_heap.leak (Vmm.heap vmm) ~bytes:(8 * 1024 * 1024);
  let gen_before = Vmm.generation vmm in
  ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Warm);
  check_int "generation bumped" (gen_before + 1) (Vmm.generation vmm);
  check_int "heap leaks cleared" 0 (Xenvmm.Vmm_heap.leaked_bytes (Vmm.heap vmm));
  List.iter
    (fun vm -> check_true "vm back up" (Scenario.vm_is_up vm))
    (Scenario.vms s)

let test_warm_services_survive_without_restart () =
  (* Count service start transitions: the warm path must not restart
     services; the cold path must. *)
  let starting_count strategy =
    let s =
  scenario 1
    in
    Rejuv.Roothammer.start_and_run s;
    let vm = List.hd (Scenario.vms s) in
    ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy);
    let services = Scenario.vm_services vm in
    List.fold_left
      (fun acc svc ->
        acc
        + List.length
            (List.filter
               (fun (_, st) -> st = Guest.Service.Starting)
               (Guest.Service.transitions svc)))
      0 services
  in
  (* Warm: the service object survives and was started exactly once (at
     provision time). *)
  check_int "warm: one start ever" 1 (starting_count Strategy.Warm);
  (* Cold: the re-provisioned service was started once after the reboot
     (fresh object, so also one Starting transition — but on a NEW
     service object; the old object never restarts). *)
  check_int "cold: fresh service started once" 1 (starting_count Strategy.Cold)

let test_ssh_session_survival_matches_paper () =
  let outage strategy =
    (run_one strategy ~vm_count:11).Experiment.downtime_mean_s
  in
  let warm = outage Strategy.Warm in
  let saved = outage Strategy.Saved in
  check_true "session survives warm reboot (60 s client timeout)"
    (Netsim.Tcp.survives ~outage_s:warm ~client_timeout_s:60.0 ());
  check_false "session dies during saved reboot"
    (Netsim.Tcp.survives ~outage_s:saved ~client_timeout_s:60.0 ())

let test_consecutive_rejuvenations () =
  (* The system must survive repeated warm reboots (the steady-state
     usage pattern). *)
  let s =
    scenario 2
  in
  Rejuv.Roothammer.start_and_run s;
  for i = 1 to 3 do
    ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Strategy.Warm);
    List.iter
      (fun vm ->
        check_true
          (Printf.sprintf "round %d: %s up" i (Scenario.vm_name vm))
          (Scenario.vm_is_up vm))
      (Scenario.vms s)
  done;
  check_int "four generations" 4 (Vmm.generation (Scenario.vmm s))

let test_mixed_strategies_in_sequence () =
  let s =
    scenario 2
  in
  Rejuv.Roothammer.start_and_run s;
  List.iter
    (fun strategy ->
      ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy);
      List.iter
        (fun vm ->
          check_true
            (Rejuv.Strategy.name strategy ^ ": " ^ Scenario.vm_name vm ^ " up")
            (Scenario.vm_is_up vm))
        (Scenario.vms s))
    [ Strategy.Warm; Strategy.Cold; Strategy.Saved; Strategy.Warm ]

let test_aging_triggered_warm_reboot () =
  (* Proactive rejuvenation end-to-end: leaks accumulate, the trigger
     fires, a warm reboot clears them, services stay mostly up. *)
  let s =
    scenario 2
  in
  let vmm = Scenario.vmm s in
  let aging = Xenvmm.Aging.attach ~config:Xenvmm.Aging.no_aging vmm in
  Rejuv.Roothammer.start_and_run s;
  let engine = Scenario.engine s in
  (* Fast deterministic leak: 2 MiB every 50 s. *)
  let rejuvenated = ref false in
  let rec leak_loop () =
    if not !rejuvenated then begin
      Xenvmm.Vmm_heap.leak (Vmm.heap vmm) ~bytes:(2 * 1024 * 1024);
      Xenvmm.Aging.sample aging;
      (match
         Rejuv.Policy.Trigger.evaluate aging ~now:(Simkit.Engine.now engine)
           ~lead_time_s:200.0
       with
      | Rejuv.Policy.Trigger.Rejuvenate_now ->
        rejuvenated := true;
        Rejuv.Roothammer.rejuvenate s ~strategy:Strategy.Warm (fun _ -> ())
      | _ -> ());
      if not !rejuvenated then
        ignore (Simkit.Engine.schedule engine ~delay:50.0 leak_loop)
    end
  in
  leak_loop ();
  Simkit.Engine.run engine;
  check_true "trigger fired" !rejuvenated;
  check_false "never exhausted" (Xenvmm.Vmm_heap.exhausted (Vmm.heap vmm));
  check_int "leaks cleared" 0 (Xenvmm.Vmm_heap.leaked_bytes (Vmm.heap vmm));
  List.iter
    (fun vm -> check_true "vm up after proactive reboot" (Scenario.vm_is_up vm))
    (Scenario.vms s)

let test_run_os_rejuvenation_band () =
  (* Paper: 33.6 s for one JBoss VM. *)
  let d = Experiment.run_os_rejuvenation () in
  check_in_band "OS rejuvenation downtime" ~lo:28.0 ~hi:40.0 d

let test_quick_reload_vs_reset_times () =
  let r = Experiment.quick_reload_effect () in
  check_in_band "quick (paper: 11 s)" ~lo:9.0 ~hi:13.0 r.Experiment.quick_reload_s;
  check_in_band "reset (paper: 59 s)" ~lo:53.0 ~hi:65.0
    r.Experiment.hardware_reset_s

let test_jboss_cold_worse_than_ssh_cold () =
  let ssh = run_one Strategy.Cold ~vm_count:5 in
  let jboss =
    Experiment.run_reboot ~workload:Scenario.Jboss ~strategy:Strategy.Cold
      ~vm_count:5 ~vm_mem_bytes:(gib 1) ()
  in
  check_true "jboss adds downtime"
    (jboss.Experiment.downtime_mean_s
    > ssh.Experiment.downtime_mean_s +. 10.0)

let test_jboss_warm_same_as_ssh_warm () =
  (* Figure 6b: warm downtime is workload-independent (no restart). *)
  let ssh = run_one Strategy.Warm ~vm_count:5 in
  let jboss =
    Experiment.run_reboot ~workload:Scenario.Jboss ~strategy:Strategy.Warm
      ~vm_count:5 ~vm_mem_bytes:(gib 1) ()
  in
  check_true "within 2 s"
    (Float.abs
       (jboss.Experiment.downtime_mean_s -. ssh.Experiment.downtime_mean_s)
    < 2.0)

let test_report_holds_at_small_scale () =
  (* The full 11-VM report is the bench's job; the report machinery and
     the scale-independent bands are checked here at n=3. *)
  let r = Rejuv.Report.run ~vm_count:3 () in
  check_int "entries" 8 (List.length r.Rejuv.Report.entries);
  List.iter
    (fun e ->
      check_true (e.Rejuv.Report.metric ^ " holds") e.Rejuv.Report.holds)
    r.Rejuv.Report.entries;
  check_true "verdict" (Rejuv.Report.all_hold r)

let suite =
  ( "integration",
    [
      Alcotest.test_case "reproduction report (n=3)" `Slow
        test_report_holds_at_small_scale;
      Alcotest.test_case "scenario starts all VMs" `Quick
        test_scenario_starts_all_vms;
      Alcotest.test_case "zero-VM scenario" `Quick test_zero_vm_scenario;
      Alcotest.test_case "warm downtime band" `Slow
        test_warm_reboot_downtime_band;
      Alcotest.test_case "warm downtime flat in n" `Slow
        test_warm_downtime_flat_in_vm_count;
      Alcotest.test_case "cold downtime band" `Slow
        test_cold_reboot_downtime_band;
      Alcotest.test_case "saved downtime band" `Slow
        test_saved_reboot_downtime_band;
      Alcotest.test_case "strategy ranking" `Slow test_strategy_ranking;
      Alcotest.test_case "cache across warm vs cold" `Slow
        test_warm_preserves_cache_cold_does_not;
      Alcotest.test_case "cache across saved" `Slow
        test_saved_reboot_preserves_cache;
      Alcotest.test_case "warm rejuvenates VMM" `Quick
        test_warm_reboot_rejuvenates_vmm;
      Alcotest.test_case "services not restarted (warm)" `Slow
        test_warm_services_survive_without_restart;
      Alcotest.test_case "ssh session survival" `Slow
        test_ssh_session_survival_matches_paper;
      Alcotest.test_case "consecutive rejuvenations" `Quick
        test_consecutive_rejuvenations;
      Alcotest.test_case "mixed strategies" `Slow
        test_mixed_strategies_in_sequence;
      Alcotest.test_case "aging-triggered reboot" `Quick
        test_aging_triggered_warm_reboot;
      Alcotest.test_case "OS rejuvenation band" `Quick
        test_run_os_rejuvenation_band;
      Alcotest.test_case "quick reload vs reset" `Quick
        test_quick_reload_vs_reset_times;
      Alcotest.test_case "jboss cold worse" `Slow
        test_jboss_cold_worse_than_ssh_cold;
      Alcotest.test_case "jboss warm same" `Slow test_jboss_warm_same_as_ssh_warm;
    ] )
