(* Malformed suppressions are themselves findings (D000). *)
let a tbl = Hashtbl.iter f tbl (* simlint: allow D042 no such rule *)
let b tbl = Hashtbl.iter f tbl (* simlint: allow D003 *)
