(* A violation waived by a well-formed same-line suppression. *)
let singleton tbl =
  Hashtbl.fold (* simlint: allow D003 table holds at most one entry *)
    (fun _ v acc -> Some v)
    tbl None
