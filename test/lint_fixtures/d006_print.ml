(* D006 fixture: direct stdout output (linted as if under lib/). *)
let report x = Printf.printf "x = %d\n" x
let note () = print_endline "done"
