(* D011 toplevel-global cases: mutable, atomic and DLS globals are all
   flagged; immutable values and functions are not. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 8

let counter = ref 0

let slot = Domain.DLS.new_key (fun () -> ref 0)

let hits = Atomic.make 0

let limit = 42

let label = "lintdeep"

let succ_twice x = x + 2
