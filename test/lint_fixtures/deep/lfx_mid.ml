(* One wrapper deep: D009 flags [wrap_bad] and [reroll]; [wrap_ok]
   stays clean because its primitive was waived at the source. *)

let wrap_bad () = Lfx_clock.now_raw ()

let wrap_ok () = Lfx_clock.now_ok ()

let reroll () = Lfx_clock.roll ()
