(* D010 capture cases. Only [bad_tbl] and [bad_transitive] hand
   unsynchronized mutable state across the domain boundary. *)

let bad_tbl () =
  let tbl = Hashtbl.create 8 in
  let d = Domain.spawn (fun () -> Hashtbl.replace tbl 1 1) in
  Domain.join d;
  Hashtbl.length tbl

let good_atomic () =
  let hits = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr hits) in
  Domain.join d;
  Atomic.get hits

let good_fresh () =
  let d =
    Domain.spawn (fun () ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace tbl 1 1;
        Hashtbl.length tbl)
  in
  Domain.join d

let good_locked () =
  let total = ref 0 in
  let lock = Mutex.create () in
  let d =
    Domain.spawn (fun () ->
        Mutex.lock lock;
        incr total;
        Mutex.unlock lock)
  in
  Domain.join d;
  !total

let bad_transitive () =
  let buf = Buffer.create 8 in
  let bump () = Buffer.add_char buf 'x' in
  let d = Domain.spawn (fun () -> bump ()) in
  Domain.join d;
  Buffer.length buf
