(* D010 capture cases across the [Simkit.Par_engine.send] boundary: a
   cross-shard event executes on the destination shard's worker
   domain, so its captures cross domains exactly like a Domain.spawn
   closure's. Only [bad_send] hands unsynchronized mutable state
   across. *)

let par () =
  let p = Simkit.Par_engine.create ~shards:2 () in
  Simkit.Par_engine.connect p ~src:0 ~dst:1 ~lookahead:0.5;
  p

let bad_send () =
  let p = par () in
  let tbl = Hashtbl.create 8 in
  Simkit.Par_engine.send p ~src:0 ~dst:1 ~time:1.0 (fun () ->
      Hashtbl.replace tbl 1 1);
  Simkit.Par_engine.run p;
  Hashtbl.length tbl

let good_send_atomic () =
  let p = par () in
  let hits = Atomic.make 0 in
  Simkit.Par_engine.send p ~src:0 ~dst:1 ~time:1.0 (fun () ->
      Atomic.incr hits);
  Simkit.Par_engine.run p;
  Atomic.get hits

let good_send_fresh () =
  let p = par () in
  Simkit.Par_engine.send p ~src:0 ~dst:1 ~time:1.0 (fun () ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace tbl 1 1);
  Simkit.Par_engine.run p
