(* Two wrappers deep: the chain Lfx_sim.step -> Lfx_mid.wrap_bad ->
   Lfx_clock.now_raw -> Unix.gettimeofday is what [--why] prints. *)

let step () = Lfx_mid.wrap_bad () +. 1.0

let healthy () = Lfx_mid.wrap_ok () +. 1.0
