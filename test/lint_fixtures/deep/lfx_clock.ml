(* Direct primitive uses: D001/D002's territory, not D009's. The read
   in [now_ok] is waived at the source of taint, so nothing downstream
   of it gets poisoned. *)

let now_raw () = Unix.gettimeofday ()

let now_ok () = Unix.gettimeofday () (* simlint: allow D001 fixture: the sanctioned read *)

let roll () = Random.int 6
