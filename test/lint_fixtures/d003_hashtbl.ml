(* D003 fixture: hash-order traversals whose result escapes. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let dump tbl = Hashtbl.iter (fun k v -> record k v) tbl

(* Sorted-keys idiom and commutative accumulation: both clean. *)
let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
