(* D008 fixture: untyped aborts (linted as if under lib/). *)
let boom () = failwith "no"
let bang () = raise (Failure "no")
let quiet () = failwith "ok" (* simlint: allow D008 fixture shows the waiver *)
