(* A file the linter must accept untouched: engine-clock time, seeded
   RNG, sorted traversals, closed-data marshalling, named handlers. *)
let now engine = Simkit.Engine.now engine
let draw rng = Simkit.Rng.float rng 1.0

let by_key tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
let snapshot v = Marshal.to_string v []
let safe_div a b = try a / b with Division_by_zero -> 0
