(* D004 path-awareness fixture: here [Domain] is the VM-domain module
   (as in lib/rejuv and lib/guest), so bare Domain.* is NOT the stdlib
   and must not be flagged — but an explicit Stdlib.Domain must be. *)
module Domain = Xenvmm.Domain

let ok d = Domain.spawn d
let still_bad f = Stdlib.Domain.spawn f
