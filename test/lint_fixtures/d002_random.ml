(* D002 fixture: ambient randomness instead of Simkit.Rng. *)
let seed_somehow () = Random.self_init ()
let jitter () = Random.float 1.0
