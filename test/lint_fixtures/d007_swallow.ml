(* D007 fixture: exception-swallowing wildcard handler. *)
let quietly f = try f () with _ -> 0

(* Matching a named exception is clean. *)
let missing path = try Some (read path) with Not_found -> None
