(* D004 fixture: raw multicore primitives outside the runner. *)
let fork f = Stdlib.Domain.spawn f
let worker f = Domain.spawn f
let counter = Domain.DLS.new_key (fun () -> ref 0)
