(* D005 fixture: unsafe casts and closure-admitting marshalling. *)
let cast x = Obj.magic x
let persist v = Marshal.to_string v [ Marshal.Closures ]

(* Closed-data marshalling is clean. *)
let snapshot v = Marshal.to_string v []
