(* D001 fixture: wall-clock read in simulation code. *)
let start_of_run () = Unix.gettimeofday ()
let cpu_budget () = Sys.time ()
