(* D003's commutative-fold recognizer: min/max in every spelling is
   order-insensitive and accepted; a non-commutative combiner on the
   last line is still flagged. *)

let bare_min tbl = Hashtbl.fold (fun _ v acc -> min acc v) tbl max_int
let bare_max tbl = Hashtbl.fold (fun _ v acc -> max acc v) tbl min_int
let float_min tbl = Hashtbl.fold (fun _ v acc -> Float.min acc v) tbl infinity
let float_max tbl = Hashtbl.fold (fun _ v acc -> Float.max acc v) tbl 0.0
let int_min tbl = Hashtbl.fold (fun _ v acc -> Int.min acc v) tbl max_int
let int_max tbl = Hashtbl.fold (fun _ v acc -> Int.max acc v) tbl min_int
let subtraction tbl = Hashtbl.fold (fun _ v acc -> acc -. v) tbl 0.0
