(* Failure injection: disk exhaustion during saves, heap exhaustion
   under churn, and recovery behaviour around aborted operations. *)
open Helpers
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Engine = Simkit.Engine

let gib = Simkit.Units.gib
let mib = Simkit.Units.mib

(* A testbed whose disk only fits one-and-a-bit 1 GiB images. *)
let booted_with_small_disk () =
  let engine = Engine.create () in
  let config =
    { Hw.Host.default_config with Hw.Host.mem_bytes = Simkit.Units.gib 12 }
  in
  let host = Hw.Host.create ~config engine in
  (* Pre-fill the drive, leaving ~1.5 GiB free. *)
  let disk = host.Hw.Host.disk in
  let fill = Hw.Disk.capacity_bytes disk - (gib 1 + mib 512) in
  (match Hw.Disk.allocate_space disk ~bytes:fill with
  | Ok () -> ()
  | Error `Disk_full -> Alcotest.fail "setup fill failed");
  let vmm = Vmm.create host in
  run_task engine (Vmm.power_on vmm);
  (engine, host, vmm)

let running_domain engine vmm ~name ~mem_bytes =
  let result = ref None in
  Vmm.create_domain vmm ~name ~mem_bytes (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok d) ->
    Domain.set_state d Domain.Booting;
    Domain.set_state d Domain.Running;
    d
  | _ -> Alcotest.fail "create failed"

let save engine vmm d =
  let r = ref None in
  Vmm.save_domain_to_disk vmm d (fun x -> r := Some x);
  Engine.run engine;
  match !r with Some x -> x | None -> Alcotest.fail "save incomplete"

let test_disk_full_aborts_save () =
  let engine, host, vmm = booted_with_small_disk () in
  let d1 = running_domain engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let d2 = running_domain engine vmm ~name:"vm02" ~mem_bytes:(gib 1) in
  (* First image fits; the second does not. *)
  (match save engine vmm d1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  (match save engine vmm d2 with
  | Error Simkit.Fault.Disk_full -> ()
  | _ -> Alcotest.fail "expected Disk_full");
  (* The failed domain resumed in place and is fully functional. *)
  check_true "vm02 running again" (Domain.state d2 = Domain.Running);
  check_int "only one image on disk" 1 (List.length (Vmm.saved_images vmm));
  check_true "devices back" (Domain.devices d2 = Domain.devices d2);
  ignore host

let test_disk_space_released_on_restore () =
  let engine, host, vmm = booted_with_small_disk () in
  let d = running_domain engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let free0 = Hw.Disk.space_free_bytes host.Hw.Host.disk in
  (match save engine vmm d with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  check_true "space consumed"
    (Hw.Disk.space_free_bytes host.Hw.Host.disk < free0);
  let restored = ref None in
  Vmm.restore_domain_from_disk vmm ~name:"vm01" (fun r -> restored := Some r);
  Engine.run engine;
  check_true "restored"
    (match !restored with Some (Ok _) -> true | _ -> false);
  check_int "space released" free0
    (Hw.Disk.space_free_bytes host.Hw.Host.disk)

let test_save_retry_after_cleanup () =
  (* After a Disk_full abort, restoring (deleting) the first image makes
     room and the failed save succeeds on retry. *)
  let engine, _host, vmm = booted_with_small_disk () in
  let d1 = running_domain engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let d2 = running_domain engine vmm ~name:"vm02" ~mem_bytes:(gib 1) in
  (match save engine vmm d1 with Ok () -> () | Error _ -> Alcotest.fail "s1");
  (match save engine vmm d2 with
  | Error Simkit.Fault.Disk_full -> ()
  | _ -> Alcotest.fail "expected Disk_full");
  let restored = ref None in
  Vmm.restore_domain_from_disk vmm ~name:"vm01" (fun r -> restored := Some r);
  Engine.run engine;
  check_true "vm01 back"
    (match !restored with Some (Ok _) -> true | _ -> false);
  match save engine vmm d2 with
  | Ok () -> check_true "saved on retry" (Domain.state d2 = Domain.Saved_to_disk)
  | Error e -> Alcotest.fail (Vmm.error_message e)

let test_heap_exhaustion_under_churn () =
  (* The aging scenario the paper warns about, pushed to the failure:
     leaked heap eventually refuses new domains; a warm reboot clears
     it. *)
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create ~heap_capacity:60_000 host in
  Vmm.set_leak_per_domain_destroy vmm ~bytes:10_000;
  run_task engine (Vmm.power_on vmm);
  let churn_once i =
    let r = ref None in
    Vmm.create_domain vmm
      ~name:(Printf.sprintf "churn%d" i)
      ~mem_bytes:(mib 256) (fun x -> r := Some x);
    Engine.run engine;
    match !r with
    | Some (Ok d) ->
      run_task engine (Vmm.destroy_domain vmm d);
      true
    | Some (Error Simkit.Fault.Heap_exhausted) -> false
    | _ -> Alcotest.fail "unexpected churn result"
  in
  let rec churn_until_failure i =
    if i > 20 then Alcotest.fail "heap never exhausted"
    else if churn_once i then churn_until_failure (i + 1)
    else i
  in
  let failed_at = churn_until_failure 1 in
  check_true "failed after a few cycles" (failed_at >= 4 && failed_at <= 8);
  (* Rejuvenate and verify the churn works again. *)
  run_task engine (Vmm.shutdown_dom0 vmm);
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "reloaded" (!reloaded = Some (Ok ()));
  run_task engine (Vmm.boot_dom0 vmm);
  check_true "churn healthy after rejuvenation" (churn_once 99)

let test_domain_crash_during_suspend_settles () =
  (* A suspend that cannot allocate exec-state frames crashes the domain
     rather than wedging the reboot. *)
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create host in
  run_task engine (Vmm.power_on vmm);
  (* Fill machine memory completely so the 16 KiB exec-state allocation
     must fail. *)
  let d = running_domain engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let frames = Hw.Memory.frames host.Hw.Host.memory in
  (match Hw.Frame.alloc frames ~frames:(Hw.Frame.free_frames frames) with
  | Some _ -> ()
  | None -> Alcotest.fail "fill failed");
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "domain crashed, not wedged" (Domain.state d = Domain.Crashed)

let suite =
  ( "failure_injection",
    [
      Alcotest.test_case "disk full aborts save" `Quick
        test_disk_full_aborts_save;
      Alcotest.test_case "space released on restore" `Quick
        test_disk_space_released_on_restore;
      Alcotest.test_case "save retry after cleanup" `Quick
        test_save_retry_after_cleanup;
      Alcotest.test_case "heap exhaustion under churn" `Quick
        test_heap_exhaustion_under_churn;
      Alcotest.test_case "crash during suspend" `Quick
        test_domain_crash_during_suspend_settles;
    ] )
