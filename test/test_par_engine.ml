(* The conservative coordinator: lookahead/barrier protocol unit
   tests, partition-count invariance as a QCheck law, and the golden
   byte-identity of the fleet_rolling grid across partition counts and
   both Eventq backends. *)
open Helpers
module Par = Simkit.Par_engine
module Engine = Simkit.Engine
module Fault = Simkit.Fault
module Wave = Rejuv.Wave
module Strategy = Rejuv.Strategy

let invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let faults f =
  match f () with
  | exception Fault.Error (Fault.Invariant _) -> true
  | _ -> false

(* --- construction and channel registration ------------------------------- *)

let test_create_and_connect_validation () =
  check_true "shards must be >= 1" (invalid (fun () -> Par.create ~shards:0 ()));
  check_true "quantum must be positive"
    (invalid (fun () -> Par.create ~quantum:0.0 ~shards:2 ()));
  let p = Par.create ~shards:3 () in
  check_int "shard count" 3 (Par.shards p);
  check_true "self loop rejected"
    (invalid (fun () -> Par.connect p ~src:1 ~dst:1 ~lookahead:1.0));
  check_true "zero lookahead rejected"
    (invalid (fun () -> Par.connect p ~src:0 ~dst:1 ~lookahead:0.0));
  check_true "unconnected pair has no lookahead"
    (Par.lookahead p ~src:0 ~dst:1 = None);
  Par.connect p ~src:0 ~dst:1 ~lookahead:2.0;
  Par.connect p ~src:0 ~dst:1 ~lookahead:0.5;
  Par.connect p ~src:0 ~dst:1 ~lookahead:1.5;
  check_true "repeated connects keep the minimum"
    (Par.lookahead p ~src:0 ~dst:1 = Some 0.5);
  check_true "direction matters" (Par.lookahead p ~src:1 ~dst:0 = None);
  check_true "min lookahead exported"
    ((Par.stats p).Par.par_min_lookahead_s = 0.5)

let test_send_respects_lookahead () =
  let p = Par.create ~shards:2 () in
  Par.connect p ~src:0 ~dst:1 ~lookahead:1.0;
  check_true "under-lookahead send faults"
    (faults (fun () -> Par.send p ~src:0 ~dst:1 ~time:0.5 ignore));
  check_true "unconnected pair faults"
    (faults (fun () -> Par.send p ~src:1 ~dst:0 ~time:10.0 ignore));
  let hit = Atomic.make false in
  Par.send p ~src:0 ~dst:1 ~time:1.0 (fun () -> Atomic.set hit true);
  Par.run p;
  check_true "exactly-at-lookahead send delivers" (Atomic.get hit);
  check_true "channels drained" (Par.idle p);
  check_int "message counted" 1 (Par.stats p).Par.par_messages

(* Cross-shard deliveries merge in (time, sender shard, channel
   sequence) order — never arrival order. All four events land on
   shard 0, which runs inline on this (the coordinator's) domain, so a
   plain ref records the execution order race-free. *)
let test_merge_order_is_deterministic () =
  let p = Par.create ~shards:3 () in
  Par.connect p ~src:1 ~dst:0 ~lookahead:0.5;
  Par.connect p ~src:2 ~dst:0 ~lookahead:0.5;
  let order = ref [] in
  let tag s () = order := s :: !order in
  Par.send p ~src:2 ~dst:0 ~time:1.0 (tag "src2");
  Par.send p ~src:1 ~dst:0 ~time:1.0 (tag "src1-first");
  Par.send p ~src:1 ~dst:0 ~time:1.0 (tag "src1-second");
  Par.send p ~src:2 ~dst:0 ~time:0.8 (tag "earliest");
  Par.run p;
  Alcotest.(check (list string))
    "(time, src shard, sequence) order"
    [ "earliest"; "src1-first"; "src1-second"; "src2" ]
    (List.rev !order)

(* The protocol guarantee itself: a shard never executes an event
   earlier than a neighbor's unsent message could arrive. Shard 0
   sends at t = 6 from an event at t = 5; shard 1 — kept busy with a
   dense local schedule that would race far past 6 if it were ever
   released beyond its lower bound — must observe the message's effect
   from its own t = 6.5 event. *)
let test_no_shard_outruns_a_neighbors_message () =
  let p = Par.create ~shards:2 () in
  Par.connect p ~src:0 ~dst:1 ~lookahead:1.0;
  let flag = Atomic.make false and saw = Atomic.make false in
  ignore
    (Engine.schedule_at (Par.shard p 0) ~time:5.0 (fun () ->
         Par.send p ~src:0 ~dst:1 ~time:6.0 (fun () -> Atomic.set flag true)));
  for i = 0 to 19 do
    ignore
      (Engine.schedule_at (Par.shard p 1)
         ~time:((0.5 *. float_of_int i) +. 0.25)
         ignore)
  done;
  ignore
    (Engine.schedule_at (Par.shard p 1) ~time:6.5 (fun () ->
         Atomic.set saw (Atomic.get flag)));
  Par.run p;
  check_true "message delivered" (Atomic.get flag);
  check_true "shard 1's t=6.5 event ran after the t=6 message"
    (Atomic.get saw);
  let s = Par.stats p in
  check_true "took multiple barrier rounds" (s.Par.par_rounds > 1)

let test_quantum_grid_is_absolute_and_persistent () =
  let p = Par.create ~quantum:1.0 ~shards:2 () in
  Par.connect p ~src:0 ~dst:1 ~lookahead:0.25;
  ignore (Engine.schedule_at (Par.shard p 0) ~time:2.5 ignore);
  let qs = ref [] in
  let tick stop_at q =
    qs := q :: !qs;
    if q >= stop_at then `Stop else `Continue
  in
  Par.run p ~on_quantum:(tick 3.0);
  Alcotest.(check (list (float 1e-9)))
    "barriers on the absolute grid" [ 1.0; 2.0; 3.0 ] (List.rev !qs);
  check_int "ticks counted" 3 (Par.stats p).Par.par_quantum_ticks;
  (* A later run call continues the same grid — it never restarts. *)
  qs := [];
  ignore (Engine.schedule_at (Par.shard p 0) ~time:4.2 ignore);
  Par.run p ~on_quantum:(tick 5.0);
  Alcotest.(check (list (float 1e-9)))
    "grid persists across run calls" [ 4.0; 5.0 ] (List.rev !qs);
  check_true "last_quantum tracks the grid" (Par.last_quantum p = 5.0)

let test_until_is_inclusive_and_leaves_the_future () =
  let p = Par.create ~shards:2 () in
  Par.connect p ~src:0 ~dst:1 ~lookahead:0.25;
  let ran = Array.make 3 false in
  let e = Par.shard p 0 in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> ran.(0) <- true));
  ignore (Engine.schedule_at e ~time:2.0 (fun () -> ran.(1) <- true));
  ignore (Engine.schedule_at e ~time:3.0 (fun () -> ran.(2) <- true));
  Par.run p ~until:2.0;
  check_true "below until ran" ran.(0);
  check_true "exactly at until ran (inclusive)" ran.(1);
  check_true "beyond until still pending" (not ran.(2));
  check_true "not idle: the future remains" (not (Par.idle p));
  Par.run p;
  check_true "finished on the unbounded run" (ran.(2) && Par.idle p)

let test_cross_link_delivers_and_rejects_round_trips () =
  let p = Par.create ~shards:2 () in
  let l =
    Netsim.Link.create_cross p ~src:0 ~dst:1 ~latency_ms:10.0 ~gbit_per_s:1.0
      ()
  in
  check_true "latency registered as the pair's lookahead"
    (Par.lookahead p ~src:0 ~dst:1 = Some (Netsim.Link.latency_s l));
  let done_at = Atomic.make nan in
  Netsim.Link.send l ~bytes:125_000 (fun () ->
      Atomic.set done_at (Engine.now (Par.shard p 1)));
  Par.run p;
  (* 125 kB over 1 Gbit/s = 1 ms of wire, plus 10 ms of flight. *)
  Alcotest.(check (float 1e-6))
    "arrives at wire-exit + latency" 0.011 (Atomic.get done_at);
  check_true "round_trip is local-only"
    (invalid (fun () ->
         Netsim.Link.round_trip l ~request_bytes:1 ~response_bytes:1 ignore))

(* --- partition invariance ------------------------------------------------- *)

let fleet_json ~partitions ~seed ~hosts ~width =
  let r =
    Rejuv.Experiment.fleet_cell ~partitions ~load_rate_per_s:20.0 ~seed ~hosts
      ~width ~slo:0.5
      ~strategy:(Wave.Reboot Strategy.Warm)
      ()
  in
  Rejuv.Experiment.Result.to_json (Rejuv.Experiment.Result.Fleet [ r ])

(* QCheck law: a fleet cell's report is a function of its parameters
   alone — never of how many shards carried it. *)
let qcheck_partition_invariance =
  qtest ~count:4 "fleet cell is partition-invariant"
    QCheck.(triple (int_range 1 1000) (int_range 4 7) (int_range 1 2))
    (fun (seed, hosts, width) ->
      let run partitions = fleet_json ~partitions ~seed ~hosts ~width in
      let one = run 1 in
      String.length one > 100 && one = run 2 && one = run 4)

(* Golden: the fleet_rolling smoke cell, via the registry exactly as
   the sweep runner drives it, is byte-identical for partitions 1/2/4
   under both event-queue backends. This is the identity the sweep
   cache relies on when it serves a cell computed at a different
   partitioning (partitions is deliberately absent from params_key). *)
let test_fleet_rolling_golden_across_backends () =
  let module E = Rejuv.Experiment in
  let spec = E.Spec.find_exn "fleet_rolling" in
  let rolling ~partitions =
    let params = { E.Spec.default_params with smoke = true; partitions } in
    let shards = spec.E.Spec.shards params in
    check_true "smoke grid is non-empty" (shards <> []);
    E.Result.to_json
      (E.Result.merge (List.map (fun (_, p) -> spec.E.Spec.run p) shards))
  in
  List.iter
    (fun backend ->
      let name = Simkit.Eventq.backend_name backend in
      Engine.with_default_queue backend (fun () ->
          let one = rolling ~partitions:1 in
          check_true (name ^ ": non-trivial payload") (String.length one > 100);
          Alcotest.(check string) (name ^ ": partitions 1 = 2") one
            (rolling ~partitions:2);
          Alcotest.(check string) (name ^ ": partitions 1 = 4") one
            (rolling ~partitions:4)))
    [ Simkit.Eventq.Heap; Simkit.Eventq.Calendar ]

let suite =
  ( "par_engine",
    [
      Alcotest.test_case "create/connect validation" `Quick
        test_create_and_connect_validation;
      Alcotest.test_case "send respects lookahead" `Quick
        test_send_respects_lookahead;
      Alcotest.test_case "deterministic merge order" `Quick
        test_merge_order_is_deterministic;
      Alcotest.test_case "no shard outruns a message" `Quick
        test_no_shard_outruns_a_neighbors_message;
      Alcotest.test_case "absolute persistent quantum grid" `Quick
        test_quantum_grid_is_absolute_and_persistent;
      Alcotest.test_case "until is inclusive" `Quick
        test_until_is_inclusive_and_leaves_the_future;
      Alcotest.test_case "cross-partition link" `Quick
        test_cross_link_delivers_and_rejects_round_trips;
      qcheck_partition_invariance;
      Alcotest.test_case "fleet_rolling golden across backends" `Slow
        test_fleet_rolling_golden_across_backends;
    ] )
