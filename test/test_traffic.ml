(* The hybrid fluid-flow traffic model (Netsim.Fluid): closed-form
   steady state, outage/ramp dynamics, capacity sharing between the
   tracer cohort and the fluid bulk, the Hybrid = Per_request
   equivalence law, byte-identical experiment JSON across event-queue
   backends and fleet partitions, and the O(log n) httperf window
   queries it leans on. *)
open Helpers
module Engine = Simkit.Engine
module Fluid = Netsim.Fluid
module Httperf = Netsim.Httperf
module Experiment = Rejuv.Experiment
module Strategy = Rejuv.Strategy

let contains ~needle haystack =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

(* --- mode enum ----------------------------------------------------------- *)

let test_mode_enum () =
  check_true "hybrid parses"
    (Simkit.Enum.of_string Fluid.mode_enum "hybrid" = Ok Fluid.Hybrid);
  check_true "per-request parses"
    (Simkit.Enum.of_string Fluid.mode_enum "per-request" = Ok Fluid.Per_request);
  check_true "per_request alias"
    (Simkit.Enum.of_string Fluid.mode_enum "per_request" = Ok Fluid.Per_request);
  Alcotest.(check string) "round-trip" "fluid" (Fluid.mode_name Fluid.Fluid);
  (match Simkit.Enum.of_string Fluid.mode_enum "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus mode accepted");
  check_true "config label"
    (contains ~needle:"clients=7" (Fluid.config_label { Fluid.default_config with Fluid.clients = 7 }))

(* --- httperf window queries (binary search satellites) ------------------- *)

let test_throughput_between_closed_interval () =
  let e = Engine.create () in
  (* One connection, exactly 0.5 s per request: completions at
     0.5, 1.0, ..., 10.0. *)
  let request k = ignore (Engine.schedule e ~delay:0.5 (fun () -> k true)) in
  let load = Httperf.create e ~connections:1 ~request () in
  Httperf.start load;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> Httperf.stop load));
  Engine.run e;
  (* Closed interval: both endpoint completions (1.0 and 3.0) count. *)
  check_float "closed-interval count" 2.5
    (Httperf.throughput_between load ~lo:1.0 ~hi:3.0);
  (* The binary-searched result must equal the Counter's linear scan
     for arbitrary windows. *)
  List.iter
    (fun (lo, hi) ->
      check_float
        (Printf.sprintf "matches Counter.rate_between [%g, %g]" lo hi)
        (Simkit.Series.Counter.rate_between (Httperf.counter load) ~lo ~hi)
        (Httperf.throughput_between load ~lo ~hi))
    [ (0.0, 10.0); (0.4, 0.6); (2.25, 7.75); (9.9, 12.0); (10.5, 11.0) ];
  match Httperf.throughput_between load ~lo:3.0 ~hi:3.0 with
  | _ -> Alcotest.fail "empty interval accepted"
  | exception Invalid_argument _ -> ()

let test_mean_window_edge_behavior () =
  let e = Engine.create () in
  let request k = ignore (Engine.schedule e ~delay:1.0 (fun () -> k true)) in
  let load = Httperf.create e ~connections:1 ~request () in
  (* Contract: an empty generator yields [], never a nan sample. *)
  check_true "empty generator -> []"
    (Httperf.mean_window_throughput load ~every:5 = []);
  Httperf.start load;
  ignore (Engine.schedule e ~delay:12.5 (fun () -> Httperf.stop load));
  Engine.run e;
  (* Completions at 1, 2, ..., 12. Blocks of 5 close at t=5 and t=10;
     the trailing partial block (two completions) is dropped. *)
  (match Httperf.mean_window_throughput load ~every:5 with
  | [ (t1, r1); (t2, r2) ] ->
    check_float "first block closes at its 5th completion" 5.0 t1;
    check_float "first block rate" 1.25 r1;
    check_float "second block closes at t=10" 10.0 t2;
    check_float "second block rate" 1.0 r2
  | l -> Alcotest.failf "expected 2 blocks, got %d" (List.length l));
  match Httperf.mean_window_throughput load ~every:0 with
  | _ -> Alcotest.fail "every=0 accepted"
  | exception Invalid_argument _ -> ()

(* --- fluid core ---------------------------------------------------------- *)

let test_fluid_steady_closed_form () =
  (* 10 flows, 0.15 s think + 0.05 s service: X = 10 / 0.2 = 50 req/s,
     well under the 100 req/s capacity — the closed-loop asymptote,
     exact in the fluid model. *)
  let e = Engine.create () in
  let server =
    Fluid.static_server ~capacity_rps:100.0 ~service_time_s:0.05 ()
  in
  let cfg =
    {
      Fluid.default_config with
      Fluid.mode = Fluid.Fluid;
      clients = 10;
      think_time_s = 0.15;
    }
  in
  let load = Fluid.create e ~config:cfg ~request:(fun k -> k false) ~server () in
  Fluid.start load;
  Engine.run ~until:20.0 e;
  Fluid.stop load;
  check_float ~eps:1e-6 "X = N / (Z + S)" 50.0
    (Fluid.throughput_between load ~lo:5.0 ~hi:15.0);
  check_in_band "completed ~ X * t" ~lo:950.0 ~hi:1050.0
    (float_of_int (Fluid.completed load));
  check_true "no tracer events in pure fluid" (Fluid.tracer_requests load = 0);
  check_true "no tracer handle" (Fluid.tracer load = None)

let test_fluid_capacity_clamp () =
  let e = Engine.create () in
  let server =
    Fluid.static_server ~capacity_rps:100.0 ~service_time_s:0.05 ()
  in
  let cfg =
    { Fluid.default_config with Fluid.mode = Fluid.Fluid; clients = 1_000_000 }
  in
  let load = Fluid.create e ~config:cfg ~request:(fun k -> k false) ~server () in
  Fluid.start load;
  Engine.run ~until:20.0 e;
  Fluid.stop load;
  check_float ~eps:1e-6 "capacity bounds a million clients" 100.0
    (Fluid.throughput_between load ~lo:5.0 ~hi:15.0)

let test_fluid_outage_and_ramp () =
  let e = Engine.create () in
  let up = ref true in
  let server =
    Fluid.static_server ~up:(fun () -> !up) ~capacity_rps:1000.0
      ~service_time_s:0.1 ()
  in
  let cfg =
    { Fluid.default_config with Fluid.mode = Fluid.Fluid; clients = 50 }
  in
  let load = Fluid.create e ~config:cfg ~request:(fun k -> k false) ~server () in
  Fluid.start load;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> up := false));
  ignore (Engine.schedule e ~delay:30.0 (fun () -> up := true));
  ignore
    (Engine.schedule e ~delay:15.0 (fun () ->
         check_float ~eps:1e-6 "whole population backlogged while down" 50.0
           (Fluid.backlog load)));
  Engine.run ~until:60.0 e;
  Fluid.stop load;
  check_in_band "stall spans the outage" ~lo:19.5 ~hi:20.5
    (Fluid.longest_stall_s load);
  (* 50 flows x one attempt per 0.5 s backoff x 20 s down. *)
  check_in_band "failed retries through the outage" ~lo:1900.0 ~hi:2100.0
    (float_of_int (Fluid.failed load));
  check_float ~eps:1e-9 "nothing served while down" 0.0
    (Fluid.throughput_between load ~lo:11.0 ~hi:29.0);
  check_float ~eps:1e-9 "backlog cleared after the ramp" 0.0
    (Fluid.backlog load);
  (* M/G/1-PS latency view is live once traffic flows again. *)
  (match (Fluid.latency_mean_s load, Fluid.latency_quantile_s load ~p:0.99) with
  | Some m, Some q99 -> check_true "p99 above mean" (q99 > m)
  | _ -> Alcotest.fail "expected fluid latency estimates");
  match Fluid.latency_quantile_s load ~p:1.5 with
  | _ -> Alcotest.fail "quantile p outside (0,1) accepted"
  | exception Invalid_argument _ -> ()

let test_hybrid_capacity_shared () =
  (* 2 tracer connections at 0.02 s/request consume ~100 req/s of a
     200 req/s server; the 998 bulk flows must only get the remainder —
     the combined throughput saturates at capacity instead of
     double-counting the shared server. *)
  let e = Engine.create () in
  let request k = ignore (Engine.schedule e ~delay:0.02 (fun () -> k true)) in
  let server =
    Fluid.static_server ~capacity_rps:200.0 ~service_time_s:0.02 ()
  in
  let cfg =
    {
      Fluid.default_config with
      Fluid.mode = Fluid.Hybrid;
      clients = 1000;
      tracers = 2;
    }
  in
  let load = Fluid.create e ~config:cfg ~request ~server () in
  Fluid.start load;
  Engine.run ~until:30.0 e;
  Fluid.stop load;
  check_in_band "tracer + bulk saturate at capacity" ~lo:190.0 ~hi:206.0
    (Fluid.throughput_between load ~lo:5.0 ~hi:25.0);
  check_true "tracer cohort really runs per-request"
    (Fluid.tracer_requests load > 1000);
  check_float ~eps:1e-9 "flows gauge counts the population" 1000.0
    (Fluid.flows load)

(* --- the equivalence law ------------------------------------------------- *)

(* Hybrid with [tracers = clients] leaves the fluid bulk empty, so every
   observable must equal Per_request bit-for-bit — same completions,
   same failures, same windows, same stall — under an outage and
   recovery. *)
let run_mode_for_law mode ~clients ~service_s =
  let e = Engine.create () in
  let up = ref true in
  let request k =
    if !up then ignore (Engine.schedule e ~delay:service_s (fun () -> k true))
    else k false
  in
  let server =
    Fluid.static_server ~up:(fun () -> !up)
      ~capacity_rps:(2.0 *. float_of_int clients /. service_s)
      ~service_time_s:service_s ()
  in
  let cfg =
    { Fluid.default_config with Fluid.mode; clients; tracers = clients }
  in
  let load = Fluid.create e ~config:cfg ~request ~server () in
  Fluid.start load;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> up := false));
  ignore (Engine.schedule e ~delay:17.0 (fun () -> up := true));
  ignore (Engine.schedule e ~delay:40.0 (fun () -> Fluid.stop load));
  Engine.run e;
  ( Fluid.completed load,
    Fluid.failed load,
    Fluid.throughput_between load ~lo:1.0 ~hi:39.0,
    Fluid.mean_window_throughput load ~every:10,
    Fluid.longest_stall_s load )

let qcheck_hybrid_equals_per_request =
  qtest ~count:40 "hybrid = per-request when every flow is a tracer"
    QCheck.(pair (int_range 1 6) (float_range 0.02 0.3))
    (fun (clients, service_s) ->
      run_mode_for_law Fluid.Per_request ~clients ~service_s
      = run_mode_for_law Fluid.Hybrid ~clients ~service_s)

(* --- small-n cross-mode agreement ---------------------------------------- *)

let test_modes_agree_small_n () =
  (* The fig7 shape on a static server: 4 zero-think clients, outage at
     t=30..50. All three modes must agree on steady throughput and
     outage width within 5%. *)
  let run mode =
    let e = Engine.create () in
    let up = ref true in
    let request k =
      if !up then ignore (Engine.schedule e ~delay:0.02 (fun () -> k true))
      else k false
    in
    let server =
      Fluid.static_server ~up:(fun () -> !up) ~capacity_rps:250.0
        ~service_time_s:0.02 ()
    in
    let cfg = { Fluid.default_config with Fluid.mode; clients = 4 } in
    let load = Fluid.create e ~config:cfg ~request ~server () in
    Fluid.start load;
    ignore (Engine.schedule e ~delay:30.0 (fun () -> up := false));
    ignore (Engine.schedule e ~delay:50.0 (fun () -> up := true));
    ignore (Engine.schedule e ~delay:80.0 (fun () -> Fluid.stop load));
    Engine.run e;
    (Fluid.throughput_between load ~lo:5.0 ~hi:25.0, Fluid.longest_stall_s load)
  in
  let x_pr, o_pr = run Fluid.Per_request in
  let x_fl, o_fl = run Fluid.Fluid in
  let x_hy, o_hy = run Fluid.Hybrid in
  check_close ~tolerance:0.05 "fluid steady = per-request" x_pr x_fl;
  check_close ~tolerance:0.05 "hybrid steady = per-request" x_pr x_hy;
  check_close ~tolerance:0.05 "fluid outage = per-request" o_pr o_fl;
  check_close ~tolerance:0.05 "hybrid outage = per-request" o_pr o_hy

(* --- open-loop dispatcher stream ----------------------------------------- *)

let test_open_stream_loss_accounting () =
  let e = Engine.create () in
  let served = ref 1.0 in
  let s =
    Fluid.Open.create e ~rate_per_s:100.0 ~served_fraction:(fun () -> !served)
      ()
  in
  Fluid.Open.start s;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> served := 0.0));
  ignore (Engine.schedule e ~delay:20.05 (fun () -> Fluid.Open.stop s));
  Engine.run e;
  check_int "offered = rate x horizon" 2000 (Fluid.Open.offered s);
  check_int "lost only while unserved" 1000 (Fluid.Open.lost s);
  check_float ~eps:1e-9 "loss ratio" 0.5 (Fluid.Open.loss_ratio s);
  match Fluid.Open.create e ~rate_per_s:(-1.0) ~served_fraction:(fun () -> 1.0) () with
  | _ -> Alcotest.fail "negative rate accepted"
  | exception Invalid_argument _ -> ()

(* --- validation ----------------------------------------------------------- *)

let test_create_validation () =
  let e = Engine.create () in
  let server = Fluid.static_server ~capacity_rps:10.0 ~service_time_s:0.1 () in
  let mk cfg = Fluid.create e ~config:cfg ~request:(fun k -> k false) ~server () in
  let rejects name cfg =
    match mk cfg with
    | _ -> Alcotest.fail (name ^ " accepted")
    | exception Invalid_argument _ -> ()
  in
  rejects "clients = 0" { Fluid.default_config with Fluid.clients = 0 };
  rejects "epoch <= 0" { Fluid.default_config with Fluid.epoch_s = 0.0 };
  rejects "backoff <= 0" { Fluid.default_config with Fluid.retry_backoff_s = 0.0 };
  rejects "negative think" { Fluid.default_config with Fluid.think_time_s = -1.0 };
  rejects "hybrid tracers > clients"
    { Fluid.default_config with Fluid.mode = Fluid.Hybrid; clients = 2; tracers = 3 }

(* --- obs gauges ----------------------------------------------------------- *)

let test_traffic_gauges () =
  let e = Engine.create () in
  let request k = ignore (Engine.schedule e ~delay:0.1 (fun () -> k true)) in
  let server = Fluid.static_server ~capacity_rps:100.0 ~service_time_s:0.1 () in
  let cfg =
    {
      Fluid.default_config with
      Fluid.mode = Fluid.Hybrid;
      clients = 100;
      tracers = 2;
    }
  in
  let load = Fluid.create e ~name:"web" ~config:cfg ~request ~server () in
  let reg = Obs.Registry.create () in
  Fluid.observe reg load;
  Fluid.start load;
  Engine.run ~until:10.0 e;
  Fluid.stop load;
  let json = Obs.Export.to_json ~now:10.0 reg in
  List.iter
    (fun g ->
      check_true ("gauge " ^ g)
        (contains ~needle:("netsim.traffic.web." ^ g) json))
    [ "flows"; "offered_rps"; "backlog"; "tracer_requests" ];
  match Obs.Registry.find reg "netsim.traffic.web.flows" with
  | Some (Obs.Registry.Gauge g) ->
    check_float "flows gauge reads the population" 100.0
      (Obs.Metric.gauge_value g)
  | _ -> Alcotest.fail "flows gauge missing from registry"

(* --- golden experiment JSON ----------------------------------------------- *)

(* Every traffic mode must produce byte-identical elastic_traffic JSON
   on both event-queue backends for the same seed. *)
let test_traffic_cell_golden_backends () =
  List.iter
    (fun mode ->
      let cell () =
        Experiment.Result.to_json
          (Experiment.Result.Traffic
             [ Experiment.run_traffic_cell ~seed:7 (mode, 200, Strategy.Warm) ])
      in
      let heap = Simkit.Engine.with_default_queue Simkit.Eventq.Heap cell in
      let cal = Simkit.Engine.with_default_queue Simkit.Eventq.Calendar cell in
      check_true
        (Fluid.mode_name mode ^ ": non-trivial payload")
        (String.length heap > 100);
      Alcotest.(check string)
        (Fluid.mode_name mode ^ ": heap = calendar")
        heap cal)
    [ Fluid.Per_request; Fluid.Fluid; Fluid.Hybrid ]

(* A fleet cell carrying fluid/hybrid host traffic stays byte-identical
   across partition counts and both backends — the partitioned-time
   invariant extends to the new flow streams (which draw no RNG). *)
let test_fleet_traffic_golden_partitions () =
  let cell ~mode ~partitions () =
    Experiment.Result.to_json
      (Experiment.Result.Fleet
         [
           Experiment.fleet_cell
             ~traffic:{ Fluid.default_config with Fluid.mode }
             ~partitions ~load_rate_per_s:20.0 ~seed:11 ~hosts:6 ~width:2
             ~slo:0.5
             ~strategy:(Rejuv.Wave.Reboot Strategy.Warm)
             ();
         ])
  in
  List.iter
    (fun backend ->
      let bname = Simkit.Eventq.backend_name backend in
      Simkit.Engine.with_default_queue backend (fun () ->
          List.iter
            (fun mode ->
              let tag = bname ^ "/" ^ Fluid.mode_name mode in
              let one = cell ~mode ~partitions:1 () in
              check_true (tag ^ ": non-trivial payload")
                (String.length one > 100);
              Alcotest.(check string)
                (tag ^ ": partitions 1 = 2")
                one
                (cell ~mode ~partitions:2 ());
              Alcotest.(check string)
                (tag ^ ": partitions 1 = 4")
                one
                (cell ~mode ~partitions:4 ()))
            [ Fluid.Fluid; Fluid.Hybrid ]))
    [ Simkit.Eventq.Heap; Simkit.Eventq.Calendar ]

let suite =
  ( "traffic",
    [
      Alcotest.test_case "mode enum round-trips" `Quick test_mode_enum;
      Alcotest.test_case "httperf throughput_between is closed-interval"
        `Quick test_throughput_between_closed_interval;
      Alcotest.test_case "httperf mean_window edge behavior" `Quick
        test_mean_window_edge_behavior;
      Alcotest.test_case "fluid steady state matches closed form" `Quick
        test_fluid_steady_closed_form;
      Alcotest.test_case "capacity clamps a million clients" `Quick
        test_fluid_capacity_clamp;
      Alcotest.test_case "fluid outage, retries and recovery ramp" `Quick
        test_fluid_outage_and_ramp;
      Alcotest.test_case "hybrid shares capacity with the tracer" `Quick
        test_hybrid_capacity_shared;
      qcheck_hybrid_equals_per_request;
      Alcotest.test_case "all modes agree at small n" `Slow
        test_modes_agree_small_n;
      Alcotest.test_case "open stream loss accounting" `Quick
        test_open_stream_loss_accounting;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "traffic gauges registered" `Quick
        test_traffic_gauges;
      Alcotest.test_case "elastic_traffic golden across backends" `Slow
        test_traffic_cell_golden_backends;
      Alcotest.test_case "fleet traffic golden across partitions" `Slow
        test_fleet_traffic_golden_partitions;
    ] )
