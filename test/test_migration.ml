(* Live migration: analytic plans, event-driven transfers between two
   hosts, and the Section 6 comparison against the warm-VM reboot. *)
open Helpers
module Migration = Rejuv.Migration
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Engine = Simkit.Engine

let gib = Simkit.Units.gib
let mib = Simkit.Units.mib

(* Two powered-on hosts sharing one engine (and, implicitly, storage). *)
let two_hosts () =
  let engine = Engine.create () in
  let host_a = Hw.Host.create engine in
  let host_b = Hw.Host.create engine in
  let vmm_a = Vmm.create host_a in
  let vmm_b = Vmm.create host_b in
  let flag = ref 0 in
  Vmm.power_on vmm_a (fun () -> incr flag);
  Vmm.power_on vmm_b (fun () -> incr flag);
  Engine.run engine;
  check_int "both hosts up" 2 !flag;
  (engine, vmm_a, vmm_b)

let vm_on engine vmm ~name ~mem_bytes =
  let result = ref None in
  Vmm.create_domain vmm ~name ~mem_bytes (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok d) ->
    let kernel = Guest.Kernel.create vmm d () in
    let sshd = Guest.Sshd.install kernel in
    run_task engine (Guest.Kernel.boot kernel);
    (kernel, sshd)
  | _ -> Alcotest.fail "vm_on failed"

(* --- analytic plan -------------------------------------------------------- *)

let test_plan_idle_vm_converges_fast () =
  let p =
    Migration.plan ~mem_bytes:(gib 1)
      ~dirty_bytes_per_s:(1.0 *. 1048576.0) ()
  in
  check_true "few rounds" (List.length p.Migration.rounds <= 2);
  check_true "sub-second downtime" (p.Migration.downtime_s < 1.5);
  (* 1 GiB at 40 MiB/s is ~25.6 s for the first round. *)
  check_in_band "total ~27 s" ~lo:24.0 ~hi:32.0 p.Migration.total_s

let test_plan_matches_clark_for_busy_vm () =
  (* The paper cites 72 s for one busy ~800 MB VM (Clark et al.). *)
  let p =
    Migration.plan ~mem_bytes:(gib 1)
      ~dirty_bytes_per_s:(20.0 *. 1048576.0) ()
  in
  check_in_band "roughly Clark's 72 s" ~lo:60.0 ~hi:85.0 p.Migration.total_s;
  check_true "downtime stays ~1 s" (p.Migration.downtime_s < 2.0);
  check_true "several rounds" (List.length p.Migration.rounds >= 3)

let test_plan_rounds_shrink () =
  let p =
    Migration.plan ~mem_bytes:(gib 1)
      ~dirty_bytes_per_s:(16.0 *. 1048576.0) ()
  in
  let sizes = List.map fst p.Migration.rounds in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_true "monotone shrink" (decreasing sizes)

let test_plan_diverging_rate_rejected () =
  check_true "dirty >= link rejected"
    (try
       ignore
         (Migration.plan ~mem_bytes:(gib 1)
            ~dirty_bytes_per_s:(41.0 *. 1048576.0) ());
       false
     with Invalid_argument _ -> true)

let test_plan_stop_and_copy_only () =
  let config = { Migration.default_config with max_rounds = 0 } in
  let p =
    Migration.plan ~config ~mem_bytes:(gib 1)
      ~dirty_bytes_per_s:(1.0 *. 1048576.0) ()
  in
  check_int "whole image in the blackout" (gib 1) p.Migration.stop_copy_bytes;
  check_in_band "downtime = full copy" ~lo:25.0 ~hi:27.0 p.Migration.downtime_s

(* --- event-driven migration ---------------------------------------------- *)

let test_migrate_moves_vm () =
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernel, sshd = vm_on engine vmm_a ~name:"vm01" ~mem_bytes:(gib 1) in
  let result = ref None in
  Migration.migrate ~src:vmm_a ~dst:vmm_b ~kernel
    ~dirty_bytes_per_s:(1.0 *. 1048576.0)
    (fun r -> result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Ok new_dom) ->
    check_true "running on dst" (Domain.state new_dom = Domain.Running);
    check_true "kernel rebound" (Guest.Kernel.domain kernel == new_dom);
    check_int "gone from src" 0 (List.length (Vmm.domus vmm_a));
    check_int "present on dst" 1 (List.length (Vmm.domus vmm_b))
  | _ -> Alcotest.fail "migration failed");
  check_true "service survives" (Guest.Service.is_up sshd);
  check_true "reachable" (Guest.Kernel.service_reachable kernel sshd)

let test_migrate_downtime_negligible () =
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernel, _sshd = vm_on engine vmm_a ~name:"vm01" ~mem_bytes:(gib 1) in
  let vm_up () =
    Guest.Kernel.is_running kernel
    && List.for_all Guest.Service.is_up (Guest.Kernel.services kernel)
  in
  let prober = Netsim.Prober.create engine ~interval_s:0.05 ~is_up:vm_up () in
  Netsim.Prober.start prober;
  let finished = ref false in
  Migration.migrate ~src:vmm_a ~dst:vmm_b ~kernel
    ~dirty_bytes_per_s:(16.0 *. 1048576.0)
    (fun _ -> finished := true);
  run_until engine ~flag:finished
    ~deadline:(Engine.now engine +. 300.0);
  Engine.run ~until:(Engine.now engine +. 2.0) engine;
  Netsim.Prober.stop prober;
  match Netsim.Prober.longest_outage prober with
  | Some outage ->
    (* Paper's point: negligible next to the 42 s warm reboot. *)
    check_true "sub-2s blackout" (outage < 2.0)
  | None -> Alcotest.fail "expected a short blackout"

let test_migrate_preserves_page_cache () =
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernel, _ = vm_on engine vmm_a ~name:"vm01" ~mem_bytes:(gib 1) in
  let fs = Guest.Kernel.filesystem kernel in
  let f = Guest.Filesystem.create_file fs ~bytes:(mib 64) () in
  Guest.Filesystem.warm_file fs f;
  let finished = ref false in
  Migration.migrate ~src:vmm_a ~dst:vmm_b ~kernel
    ~dirty_bytes_per_s:(1.0 *. 1048576.0)
    (fun _ -> finished := true);
  run_until engine ~flag:finished ~deadline:(Engine.now engine +. 300.0);
  check_float "cache travelled with the image" 1.0
    (Guest.Filesystem.cached_fraction fs f)

let test_migrate_requires_running () =
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernel, _ = vm_on engine vmm_a ~name:"vm01" ~mem_bytes:(gib 1) in
  run_task engine (Guest.Kernel.shutdown kernel);
  let result = ref None in
  Migration.migrate ~src:vmm_a ~dst:vmm_b ~kernel
    ~dirty_bytes_per_s:1024.0
    (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error (Simkit.Fault.Bad_domain_state _)) -> ()
  | _ -> Alcotest.fail "expected Bad_domain_state"

let test_migrate_dst_out_of_memory () =
  let engine, vmm_a, vmm_b = two_hosts () in
  (* Fill the destination so the reservation fails. *)
  let hog = ref None in
  Vmm.create_domain vmm_b ~name:"hog" ~mem_bytes:(gib 11) (fun r ->
      hog := Some r);
  Engine.run engine;
  check_true "hog placed" (match !hog with Some (Ok _) -> true | _ -> false);
  let kernel, _ = vm_on engine vmm_a ~name:"vm01" ~mem_bytes:(gib 1) in
  let result = ref None in
  Migration.migrate ~src:vmm_a ~dst:vmm_b ~kernel
    ~dirty_bytes_per_s:1024.0
    (fun r -> result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Error Simkit.Fault.Out_of_memory) -> ()
  | _ -> Alcotest.fail "expected Out_of_memory");
  (* The source VM is untouched by the failure. *)
  check_true "still on src"
    (Domain.state (Guest.Kernel.domain kernel) = Domain.Running)

let test_evacuate_serializes () =
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernels =
    List.map
      (fun i ->
        fst (vm_on engine vmm_a ~name:(Printf.sprintf "vm%02d" i)
               ~mem_bytes:(gib 1)))
      [ 1; 2; 3 ]
  in
  let t0 = Engine.now engine in
  let result = ref None in
  Migration.evacuate ~src:vmm_a ~dst:vmm_b ~kernels
    ~dirty_bytes_per_s:(1.0 *. 1048576.0)
    (fun r -> result := Some r);
  Engine.run engine;
  check_true "all moved" (!result = Some (Ok ()));
  check_int "src empty" 0 (List.length (Vmm.domus vmm_a));
  check_int "dst has three" 3 (List.length (Vmm.domus vmm_b));
  let elapsed = Engine.now engine -. t0 in
  (* Three serial ~27 s migrations. *)
  check_in_band "serial duration" ~lo:70.0 ~hi:110.0 elapsed

let test_evacuation_slower_than_warm_reboot () =
  (* Section 6's comparison, executed: evacuating a host takes far
     longer than warm-rebooting it, even though per-VM downtime is
     tiny. *)
  let engine, vmm_a, vmm_b = two_hosts () in
  let kernels =
    List.map
      (fun i ->
        fst (vm_on engine vmm_a ~name:(Printf.sprintf "vm%02d" i)
               ~mem_bytes:(gib 1)))
      [ 1; 2; 3; 4; 5 ]
  in
  let t0 = Engine.now engine in
  let finished = ref false in
  Migration.evacuate ~src:vmm_a ~dst:vmm_b ~kernels
    ~dirty_bytes_per_s:(16.0 *. 1048576.0)
    (fun _ -> finished := true);
  run_until engine ~flag:finished ~deadline:(t0 +. 2000.0);
  let evacuation = Engine.now engine -. t0 in
  let warm =
    (Rejuv.Experiment.run_reboot ~strategy:Rejuv.Strategy.Warm ~vm_count:5
       ~vm_mem_bytes:(gib 1) ())
      .Rejuv.Experiment.downtime_mean_s
  in
  check_true "evacuation takes much longer than the warm outage"
    (evacuation > 5.0 *. warm)

let suite =
  ( "migration",
    [
      Alcotest.test_case "plan: idle VM" `Quick test_plan_idle_vm_converges_fast;
      Alcotest.test_case "plan: busy VM ~ Clark" `Quick
        test_plan_matches_clark_for_busy_vm;
      Alcotest.test_case "plan: rounds shrink" `Quick test_plan_rounds_shrink;
      Alcotest.test_case "plan: divergence rejected" `Quick
        test_plan_diverging_rate_rejected;
      Alcotest.test_case "plan: stop-and-copy only" `Quick
        test_plan_stop_and_copy_only;
      Alcotest.test_case "migrate moves VM" `Quick test_migrate_moves_vm;
      Alcotest.test_case "migrate downtime negligible" `Quick
        test_migrate_downtime_negligible;
      Alcotest.test_case "migrate preserves cache" `Quick
        test_migrate_preserves_page_cache;
      Alcotest.test_case "migrate requires running" `Quick
        test_migrate_requires_running;
      Alcotest.test_case "migrate dst OOM" `Quick test_migrate_dst_out_of_memory;
      Alcotest.test_case "evacuate serializes" `Quick test_evacuate_serializes;
      Alcotest.test_case "evacuation vs warm reboot" `Slow
        test_evacuation_slower_than_warm_reboot;
    ] )
