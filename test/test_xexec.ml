(* xexec image staging, toolstack bookkeeping in xenstored, and the
   balloon driver's interaction with the warm-VM reboot. *)
open Helpers
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Image = Xenvmm.Image
module Engine = Simkit.Engine

let gib = Simkit.Units.gib
let mib = Simkit.Units.mib

let booted_vmm () =
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create host in
  run_task engine (Vmm.power_on vmm);
  (engine, host, vmm)

let create_domain_exn engine vmm ~name ~mem_bytes =
  let result = ref None in
  Vmm.create_domain vmm ~name ~mem_bytes (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok d) -> d
  | _ -> Alcotest.fail "create_domain failed"

(* --- image ---------------------------------------------------------------- *)

let test_image_sizes () =
  let i = Image.default in
  check_true "plausible total"
    (Image.total_bytes i > mib 10 && Image.total_bytes i < mib 64);
  check_true "bad image rejected"
    (try ignore (Image.v ~vmm_bytes:0 ~dom0_kernel_bytes:1 ~initrd_bytes:0);
       false
     with Invalid_argument _ -> true)

let test_xexec_load_stages () =
  let engine, host, vmm = booted_vmm () in
  check_true "nothing staged" (Vmm.staged_image vmm = None);
  let free_before = Hw.Memory.free_bytes host.Hw.Host.memory in
  let ok = ref None in
  Vmm.xexec_load vmm (fun r -> ok := Some r);
  Engine.run engine;
  check_true "loaded" (!ok = Some (Ok ()));
  check_true "staged" (Vmm.staged_image vmm <> None);
  check_int "xexec hypercall" 1 (Vmm.hypercall_count vmm "xexec");
  let used = free_before - Hw.Memory.free_bytes host.Hw.Host.memory in
  check_true "frames held for the image"
    (used >= Image.total_bytes Image.default);
  check_true "image read from disk"
    (Hw.Disk.bytes_read host.Hw.Host.disk >= Image.total_bytes Image.default)

let test_xexec_reload_consumes_image () =
  let engine, host, vmm = booted_vmm () in
  let ok = ref None in
  Vmm.xexec_load vmm (fun r -> ok := Some r);
  Engine.run engine;
  run_task engine (Vmm.shutdown_dom0 vmm);
  let free_before_reload = Hw.Memory.free_bytes host.Hw.Host.memory in
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "reloaded" (!reloaded = Some (Ok ()));
  check_true "image consumed" (Vmm.staged_image vmm = None);
  check_true "staging frames released"
    (Hw.Memory.free_bytes host.Hw.Host.memory > free_before_reload);
  check_int "still one xexec (pre-staged)" 1 (Vmm.hypercall_count vmm "xexec")

let test_quick_reload_lazy_staging () =
  let engine, _host, vmm = booted_vmm () in
  run_task engine (Vmm.shutdown_dom0 vmm);
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "lazy staging works" (!reloaded = Some (Ok ()));
  check_int "xexec counted once" 1 (Vmm.hypercall_count vmm "xexec")

let test_restaging_replaces () =
  let engine, host, vmm = booted_vmm () in
  let free0 = Hw.Memory.free_bytes host.Hw.Host.memory in
  let load image =
    let ok = ref None in
    Vmm.xexec_load vmm ~image (fun r -> ok := Some r);
    Engine.run engine;
    check_true "load ok" (!ok = Some (Ok ()))
  in
  load Image.default;
  load Image.default;
  (* Only one image's worth of frames may be held. *)
  let held = free0 - Hw.Memory.free_bytes host.Hw.Host.memory in
  check_true "no frame leak on restage"
    (held <= Image.total_bytes Image.default + Simkit.Units.page_bytes)

let test_hardware_reset_drops_staged () =
  let engine, _host, vmm = booted_vmm () in
  let ok = ref None in
  Vmm.xexec_load vmm (fun r -> ok := Some r);
  Engine.run engine;
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.shutdown_vmm vmm);
  run_task engine (Vmm.hardware_reset vmm);
  check_true "staged image lost over a power cycle"
    (Vmm.staged_image vmm = None)

(* --- xenstore bookkeeping -------------------------------------------------- *)

let store_exn vmm =
  match Vmm.xenstore vmm with
  | Some s -> s
  | None -> Alcotest.fail "xenstore should be up"

let test_create_registers_in_store () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let store = store_exn vmm in
  let base = Printf.sprintf "/local/domain/%d" (Domain.id d) in
  check_true "name entry"
    (Xenvmm.Xenstore.read store ~path:(base ^ "/name") = Some "vm01");
  check_true "memory entry"
    (Xenvmm.Xenstore.read store ~path:(base ^ "/memory")
    = Some (string_of_int (gib 1)))

let test_destroy_unregisters () =
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  let base = Printf.sprintf "/local/domain/%d" (Domain.id d) in
  run_task engine (Vmm.destroy_domain vmm d);
  check_true "entry removed"
    (Xenvmm.Xenstore.read (store_exn vmm) ~path:(base ^ "/name") = None)

let test_store_rebuilt_after_warm_reboot () =
  (* xenstored dies with dom0; the fresh instance is repopulated with
     the resumed domains. *)
  let engine, _host, vmm = booted_vmm () in
  let d = create_domain_exn engine vmm ~name:"vm01" ~mem_bytes:(gib 1) in
  Domain.set_state d Domain.Booting;
  Domain.set_state d Domain.Running;
  let txns_before = Xenvmm.Xenstore.transactions (store_exn vmm) in
  run_task engine (Vmm.shutdown_dom0 vmm);
  check_true "store down with dom0" (Vmm.xenstore vmm = None);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "reloaded" (!reloaded = Some (Ok ()));
  run_task engine (Vmm.boot_dom0 vmm);
  let store = store_exn vmm in
  let base = Printf.sprintf "/local/domain/%d" (Domain.id d) in
  check_true "fresh store knows the frozen domain"
    (Xenvmm.Xenstore.read store ~path:(base ^ "/name") = Some "vm01");
  (* A fresh store also means the transaction-leak clock restarted. *)
  check_true "transaction count reset"
    (Xenvmm.Xenstore.transactions store < txns_before + 10)

(* --- ballooning ------------------------------------------------------------ *)

let kernel_on engine vmm ~name ~mem_bytes =
  let d = create_domain_exn engine vmm ~name ~mem_bytes in
  let kernel = Guest.Kernel.create vmm d () in
  run_task engine (Guest.Kernel.boot kernel);
  kernel

let test_balloon_resizes_cache () =
  let engine, _host, vmm = booted_vmm () in
  let kernel = kernel_on engine vmm ~name:"vm01" ~mem_bytes:(gib 2) in
  let cache = Guest.Kernel.page_cache kernel in
  let cap_before = Guest.Page_cache.capacity_bytes cache in
  (match Guest.Kernel.balloon kernel ~delta_bytes:(-gib 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  check_int "memory halved" (gib 1) (Guest.Kernel.current_mem_bytes kernel);
  check_true "cache shrank"
    (Guest.Page_cache.capacity_bytes cache < cap_before);
  (match Guest.Kernel.balloon kernel ~delta_bytes:(mib 512) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  check_int "memory grown" (gib 1 + mib 512)
    (Guest.Kernel.current_mem_bytes kernel)

let test_balloon_shrink_evicts () =
  let engine, _host, vmm = booted_vmm () in
  let kernel = kernel_on engine vmm ~name:"vm01" ~mem_bytes:(gib 2) in
  let fs = Guest.Kernel.filesystem kernel in
  let f = Guest.Filesystem.create_file fs ~bytes:(gib 1) () in
  Guest.Filesystem.warm_file fs f;
  check_float "resident" 1.0 (Guest.Filesystem.cached_fraction fs f);
  (match Guest.Kernel.balloon kernel ~delta_bytes:(-(gib 1 + mib 512)) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  (* 512 MiB VM -> ~435 MiB cache: most of the gigabyte file is out. *)
  check_true "cache partially evicted"
    (Guest.Filesystem.cached_fraction fs f < 0.5);
  check_true "cache invariants"
    (Guest.Page_cache.check_invariants (Guest.Kernel.page_cache kernel) = Ok ())

let test_ballooned_vm_survives_warm_reboot () =
  (* Section 4.1: the P2M-mapping table stays correct under ballooning,
     so a ballooned VM on-memory suspends and resumes exactly. *)
  let engine, _host, vmm = booted_vmm () in
  let kernel = kernel_on engine vmm ~name:"vm01" ~mem_bytes:(gib 2) in
  (match Guest.Kernel.balloon kernel ~delta_bytes:(-mib 512) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Vmm.error_message e));
  let mapped = Guest.Kernel.current_mem_bytes kernel in
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "reloaded with ballooned domain" (!reloaded = Some (Ok ()));
  run_task engine (Vmm.boot_dom0 vmm);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm (Guest.Kernel.domain kernel) (fun r ->
      resumed := Some r);
  Engine.run engine;
  check_true "resumed" (!resumed = Some (Ok ()));
  check_int "exact ballooned size preserved" mapped
    (Guest.Kernel.current_mem_bytes kernel);
  check_true "p2m invariants"
    (Xenvmm.P2m.check_invariants (Domain.p2m (Guest.Kernel.domain kernel))
    = Ok ())

let test_memory_overcommit_via_balloon () =
  (* Deflating running VMs frees machine memory for another domain even
     when nominal sizes would not fit. *)
  let engine, _host, vmm = booted_vmm () in
  let k1 = kernel_on engine vmm ~name:"vm01" ~mem_bytes:(gib 6) in
  let k2 = kernel_on engine vmm ~name:"vm02" ~mem_bytes:(gib 5) in
  (* ~11.5 GiB committed of 12; a 2 GiB guest cannot fit... *)
  let refused = ref None in
  Vmm.create_domain vmm ~name:"vm03" ~mem_bytes:(gib 2) (fun r ->
      refused := Some r);
  Engine.run engine;
  (match !refused with
  | Some (Error Simkit.Fault.Out_of_memory) -> ()
  | _ -> Alcotest.fail "expected OOM before ballooning");
  (* ...until the running guests balloon down. *)
  (match Guest.Kernel.balloon k1 ~delta_bytes:(-gib 1) with
  | Ok () -> () | Error e -> Alcotest.fail (Vmm.error_message e));
  (match Guest.Kernel.balloon k2 ~delta_bytes:(-(gib 1 + mib 512)) with
  | Ok () -> () | Error e -> Alcotest.fail (Vmm.error_message e));
  let placed = ref None in
  Vmm.create_domain vmm ~name:"vm03" ~mem_bytes:(gib 2) (fun r ->
      placed := Some r);
  Engine.run engine;
  match !placed with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "expected fit after ballooning"

let suite =
  ( "xexec_balloon",
    [
      Alcotest.test_case "image sizes" `Quick test_image_sizes;
      Alcotest.test_case "xexec stages image" `Quick test_xexec_load_stages;
      Alcotest.test_case "reload consumes image" `Quick
        test_xexec_reload_consumes_image;
      Alcotest.test_case "lazy staging" `Quick test_quick_reload_lazy_staging;
      Alcotest.test_case "restaging replaces" `Quick test_restaging_replaces;
      Alcotest.test_case "reset drops staged" `Quick
        test_hardware_reset_drops_staged;
      Alcotest.test_case "create registers in store" `Quick
        test_create_registers_in_store;
      Alcotest.test_case "destroy unregisters" `Quick test_destroy_unregisters;
      Alcotest.test_case "store rebuilt after warm reboot" `Quick
        test_store_rebuilt_after_warm_reboot;
      Alcotest.test_case "balloon resizes cache" `Quick
        test_balloon_resizes_cache;
      Alcotest.test_case "balloon shrink evicts" `Quick
        test_balloon_shrink_evicts;
      Alcotest.test_case "ballooned VM survives warm reboot" `Quick
        test_ballooned_vm_survives_warm_reboot;
      Alcotest.test_case "overcommit via balloon" `Quick
        test_memory_overcommit_via_balloon;
    ] )
