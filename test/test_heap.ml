open Helpers
module Heap = Simkit.Heap

let test_empty () =
  let h = Heap.create () in
  check_true "empty" (Heap.is_empty h);
  check_int "length" 0 (Heap.length h);
  check_true "min None" (Heap.min h = None);
  check_true "pop None" (Heap.pop h = None)

let test_single () =
  let h = Heap.create () in
  Heap.add h ~key:1.5 "a";
  check_int "length" 1 (Heap.length h);
  check_true "min" (Heap.min h = Some (1.5, "a"));
  check_true "pop" (Heap.pop h = Some (1.5, "a"));
  check_true "empty after" (Heap.is_empty h)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.add h ~key:k (string_of_float k))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      order := k :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !order)

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~key:1.0 v) [ "first"; "second"; "third" ];
  Heap.add h ~key:0.5 "early";
  check_true "early first" (Heap.pop h = Some (0.5, "early"));
  check_true "tie 1" (Heap.pop h = Some (1.0, "first"));
  check_true "tie 2" (Heap.pop h = Some (1.0, "second"));
  check_true "tie 3" (Heap.pop h = Some (1.0, "third"))

let test_interleaved_ties () =
  (* FIFO must hold even when equal keys are interleaved with pops. *)
  let h = Heap.create () in
  Heap.add h ~key:1.0 "a";
  Heap.add h ~key:1.0 "b";
  check_true "a" (Heap.pop h = Some (1.0, "a"));
  Heap.add h ~key:1.0 "c";
  check_true "b" (Heap.pop h = Some (1.0, "b"));
  check_true "c" (Heap.pop h = Some (1.0, "c"))

let test_min_does_not_remove () =
  let h = Heap.create () in
  Heap.add h ~key:2.0 "x";
  check_true "min" (Heap.min h = Some (2.0, "x"));
  check_int "still there" 1 (Heap.length h)

let test_clear () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.add h ~key:(float_of_int i) i
  done;
  Heap.clear h;
  check_true "empty" (Heap.is_empty h);
  Heap.add h ~key:1.0 7;
  check_true "usable after clear" (Heap.pop h = Some (1.0, 7))

let test_growth () =
  let h = Heap.create () in
  for i = 1000 downto 1 do
    Heap.add h ~key:(float_of_int i) i
  done;
  check_int "length" 1000 (Heap.length h);
  check_true "min is 1" (Heap.min h = Some (1.0, 1))

let test_negative_keys () =
  let h = Heap.create () in
  Heap.add h ~key:(-5.0) "neg";
  Heap.add h ~key:0.0 "zero";
  check_true "negative first" (Heap.pop h = Some (-5.0, "neg"))

let test_filter_inplace () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.add h ~key:(float_of_int (i mod 10)) i
  done;
  let dropped = Heap.filter_inplace h ~keep:(fun v -> v mod 3 = 0) in
  check_int "dropped" 67 dropped;
  check_int "kept" 33 (Heap.length h);
  (* Survivors keep their original keys and FIFO rank among ties. *)
  let rec drain acc =
    match Heap.pop h with Some kv -> drain (kv :: acc) | None -> List.rev acc
  in
  let expected =
    List.init 100 (fun i -> (float_of_int ((i + 1) mod 10), i + 1))
    |> List.filter (fun (_, v) -> v mod 3 = 0)
    |> List.stable_sort (fun (k1, _) (k2, _) -> Float.compare k1 k2)
  in
  check_true "order preserved" (drain [] = expected)

let test_filter_inplace_all_and_none () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.add h ~key:(float_of_int i) i
  done;
  check_int "keep all drops none" 0
    (Heap.filter_inplace h ~keep:(fun _ -> true));
  check_int "length intact" 10 (Heap.length h);
  check_int "keep none drops all" 10
    (Heap.filter_inplace h ~keep:(fun _ -> false));
  check_true "empty" (Heap.is_empty h)

let prop_pop_sorted =
  qtest "pop yields sorted keys"
    QCheck.(list (float_bound_inclusive 1000.0))
    @@ fun keys ->
    let h = Heap.create () in
    List.iter (fun k -> Heap.add h ~key:k k) keys;
    let rec drain acc =
      match Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
    in
    let popped = drain [] in
    popped = List.sort Float.compare keys

let prop_length =
  qtest "length tracks adds and pops"
    QCheck.(list (float_bound_inclusive 100.0))
    @@ fun keys ->
    let h = Heap.create () in
    List.iter (fun k -> Heap.add h ~key:k ()) keys;
    let n = List.length keys in
    Heap.length h = n
    &&
    (ignore (Heap.pop h);
     Heap.length h = Stdlib.max 0 (n - 1))

let suite =
  ( "heap",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "single element" `Quick test_single;
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
      Alcotest.test_case "interleaved ties" `Quick test_interleaved_ties;
      Alcotest.test_case "min does not remove" `Quick test_min_does_not_remove;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "growth to 1000" `Quick test_growth;
      Alcotest.test_case "negative keys" `Quick test_negative_keys;
      Alcotest.test_case "filter_inplace" `Quick test_filter_inplace;
      Alcotest.test_case "filter_inplace edge cases" `Quick
        test_filter_inplace_all_and_none;
      prop_pop_sorted;
      prop_length;
    ] )
