(* The simlint static checker: every rule fires on its known-bad
   fixture at the right location, clean code and well-formed
   suppressions pass, malformed suppressions are themselves findings,
   the repository lints clean, and the dynamic property the rules
   exist to protect holds — same seed, byte-identical results. *)
open Helpers
module Lint = Simlint.Lint
module Spec = Rejuv.Experiment.Spec
module Result = Rejuv.Experiment.Result

let fixture name = Filename.concat "lint_fixtures" name

(* (rule, line, col) triples, order-normalized. *)
let summarize findings =
  List.map (fun (f : Lint.finding) -> (f.rule, f.line, f.col)) findings

let check_findings msg expected actual =
  Alcotest.(check (list (triple string int int))) msg expected
    (summarize actual)

let test_d001 () =
  check_findings "wall-clock flagged"
    [ ("D001", 2, 22); ("D001", 3, 20) ]
    (Lint.lint_file (fixture "d001_wall_clock.ml"))

let test_d001_allowlisted_dir () =
  (* The same file linted as if under lib/runner/ is allowlisted. *)
  check_findings "lib/runner may read the clock" []
    (Lint.lint_file ~as_path:"lib/runner/fixture.ml"
       (fixture "d001_wall_clock.ml"))

let test_d002 () =
  check_findings "ambient randomness flagged"
    [ ("D002", 2, 22); ("D002", 3, 16) ]
    (Lint.lint_file (fixture "d002_random.ml"))

let test_d003_commutative () =
  (* min/max in every spelling is accepted; only the non-commutative
     combiner on the last line fires. *)
  check_findings "qualified min/max accepted"
    [ ("D003", 11, 22) ]
    (Lint.lint_file (fixture "d003_commutative.ml"))

let test_d003 () =
  (* Only the escaping fold and the iter fire; the sorted-keys idiom
     and the commutative count in the same file stay clean. *)
  check_findings "hash-order traversals flagged"
    [ ("D003", 2, 15); ("D003", 3, 15) ]
    (Lint.lint_file (fixture "d003_hashtbl.ml"))

let test_d004 () =
  check_findings "raw Domain primitives flagged"
    [ ("D004", 2, 13); ("D004", 3, 15); ("D004", 4, 14) ]
    (Lint.lint_file (fixture "d004_domain.ml"))

let test_d004_path_aware () =
  (* With [module Domain = Xenvmm.Domain] in scope, bare Domain.* is
     the VM-domain module: only the explicit Stdlib.Domain fires. *)
  check_findings "shadowed Domain not flagged"
    [ ("D004", 7, 18) ]
    (Lint.lint_file (fixture "d004_shadowed.ml"))

let test_d005 () =
  check_findings "Obj.magic and Marshal.Closures flagged"
    [ ("D005", 2, 13); ("D005", 3, 16) ]
    (Lint.lint_file (fixture "d005_unsafe.ml"))

let test_d006 () =
  check_findings "stdout printing flagged under lib/"
    [ ("D006", 2, 15); ("D006", 3, 14) ]
    (Lint.lint_file ~as_path:"lib/guest/fixture.ml" (fixture "d006_print.ml"));
  (* The rule is scoped to lib/: the same file elsewhere is fine. *)
  check_findings "printing outside lib/ not flagged" []
    (Lint.lint_file (fixture "d006_print.ml"))

let test_d007 () =
  check_findings "wildcard handler flagged"
    [ ("D007", 2, 30) ]
    (Lint.lint_file (fixture "d007_swallow.ml"))

let test_d008 () =
  (* Both the failwith and the explicit Failure raise fire (the
     suppressed one on line 4 does not); the rule is scoped to lib/. *)
  check_findings "untyped aborts flagged under lib/"
    [ ("D008", 2, 14); ("D008", 3, 14) ]
    (Lint.lint_file ~as_path:"lib/guest/fixture.ml"
       (fixture "d008_failwith.ml"));
  check_findings "failwith outside lib/ not flagged" []
    (Lint.lint_file (fixture "d008_failwith.ml"))

let test_clean () =
  check_findings "clean file passes" [] (Lint.lint_file (fixture "clean.ml"))

let test_suppression () =
  check_findings "well-formed suppression waives the finding" []
    (Lint.lint_file (fixture "suppressed.ml"))

let test_bad_suppression () =
  (* A malformed suppression is a D000 finding AND does not waive the
     violation it sits on. *)
  check_findings "malformed suppressions are findings"
    [ ("D003", 2, 12); ("D000", 2, 34); ("D003", 3, 12); ("D000", 3, 34) ]
    (Lint.lint_file (fixture "bad_suppression.ml"))

(* --- the deep (typedtree) pass ------------------------------------------- *)

module Typed = Simlint.Typed_lint

(* The lintdeep fixture library is linked into this test executable, so
   its cmts exist under the build tree by the time we run; tests execute
   with cwd = _build/default/test, making these paths relative. *)
let deep_input name =
  {
    Typed.cmt_path =
      Filename.concat "lint_fixtures/deep/.lintdeep.objs/byte"
        ("lintdeep__" ^ String.capitalize_ascii name ^ ".cmt");
    as_path = Some (Printf.sprintf "lib/lintdeep/%s.ml" name);
    source_path = Some (fixture (Filename.concat "deep" (name ^ ".ml")));
  }

let deep_analyze names = Typed.analyze_units (List.map deep_input names)

let summarize_deep findings =
  List.map
    (fun (f : Typed.deep_finding) -> (f.df.rule, f.df.line, f.df.col))
    findings

let test_d009_taint_chain () =
  let findings = deep_analyze [ "lfx_clock"; "lfx_mid"; "lfx_sim" ] in
  (* Direct primitive uses in lfx_clock are D001/D002's findings, not
     D009's; the waived-at-source read poisons nobody (wrap_ok and
     healthy stay clean); both wrappers over the raw read and the
     two-deep chain in lfx_sim fire. *)
  Alcotest.(check (list (triple string int int)))
    "indirect taint flagged at wrapper definitions"
    [ ("D009", 4, 4); ("D009", 8, 4); ("D009", 4, 4) ]
    (summarize_deep findings);
  let step =
    List.find
      (fun (f : Typed.deep_finding) -> f.df.file = "lib/lintdeep/lfx_sim.ml")
      findings
  in
  Alcotest.(check (list string))
    "--why chain walks wrapper -> wrapper -> primitive"
    [
      "Lintdeep.Lfx_sim.step";
      "Lintdeep.Lfx_mid.wrap_bad";
      "Lintdeep.Lfx_clock.now_raw";
      "Unix.gettimeofday";
    ]
    (List.map (fun (s : Simlint.Taint.chain_step) -> s.s_what) step.chain);
  check_true "chain is rendered by --why"
    (Simlint.Typed_lint.pp_deep ~why:true step
    |> String.split_on_char '\n' |> List.length = 5)

let test_d010_captures () =
  (* Captured Hashtbl (directly or through a local helper) fires;
     Atomic, fresh-alloc-inside-closure and Mutex-guarded cases do
     not. *)
  Alcotest.(check (list (triple string int int)))
    "only unsynchronized captures flagged"
    [ ("D010", 6, 10); ("D010", 40, 10) ]
    (summarize_deep (deep_analyze [ "lfx_races" ]))

let test_d010_par_send () =
  (* Par_engine.send is a registered domain boundary: its event runs on
     the destination shard's worker. The captured Hashtbl fires; the
     Atomic and fresh-alloc closures, and the Guarded coordinator
     handle itself, do not. *)
  let findings = deep_analyze [ "lfx_par" ] in
  Alcotest.(check (list (triple string int int)))
    "only the unsynchronized cross-shard capture flagged"
    [ ("D010", 15, 2) ]
    (summarize_deep findings);
  let f = List.hd findings in
  check_true "finding names the send boundary"
    (Simlint.Allow.contains ~sub:"Simkit.Par_engine.send" f.df.message);
  check_true "finding names the capture"
    (Simlint.Allow.contains ~sub:"tbl" f.df.message)

let test_d011_globals () =
  (* Hashtbl, ref, DLS key and Atomic globals fire; immutable values
     and functions do not. *)
  Alcotest.(check (list (triple string int int)))
    "mutable toplevel globals flagged"
    [ ("D011", 4, 4); ("D011", 6, 4); ("D011", 8, 4); ("D011", 10, 4) ]
    (summarize_deep (deep_analyze [ "lfx_globals" ]))

let test_sarif_output () =
  let findings = deep_analyze [ "lfx_globals" ] in
  let sarif = Typed.to_sarif findings in
  List.iter
    (fun frag ->
      check_true (Printf.sprintf "sarif contains %s" frag)
        (Simlint.Allow.contains ~sub:frag sarif))
    [
      "\"version\":\"2.1.0\"";
      "\"ruleId\":\"D011\"";
      "\"uri\":\"lib/lintdeep/lfx_globals.ml\"";
      "\"startLine\":4";
      "toplevel mutable global in lib/";
    ]

let test_json_titles () =
  let json = Lint.to_json (Lint.lint_file (fixture "d001_wall_clock.ml")) in
  check_true "json findings carry rule titles"
    (Simlint.Allow.contains
       ~sub:"\"title\":\"wall-clock read outside lib/runner/ and bench/\""
       json)

(* --- the repository itself ---------------------------------------------- *)

(* Tests run under _build/default/test; the checked-out tree is
   everything above the _build component. *)
let repo_root () =
  let rec strip acc = function
    | [] -> None
    | "_build" :: _ -> Some (String.concat Filename.dir_sep (List.rev acc))
    | part :: rest -> strip (part :: acc) rest
  in
  strip [] (String.split_on_char '/' (Sys.getcwd ()))

let test_repo_lints_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
    let dirs =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ]
    in
    let findings = Lint.lint_paths (List.filter Sys.file_exists dirs) in
    if findings <> [] then
      Alcotest.failf "repo has %d lint finding(s), first: %s"
        (List.length findings)
        (Lint.pp_finding (List.hd findings))

let test_repo_deep_lints_clean () =
  (* The audited tree under the interprocedural rules: lib/ carries no
     unwaived D009/D010/D011 — the same gate `dune build @lint-deep`
     applies in CI. *)
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
    let build = Filename.concat root (Filename.concat "_build" "default") in
    if not (Sys.file_exists build) then Alcotest.skip ()
    else
      let findings = Typed.analyze_build ~build ~prefixes:[ "lib" ] in
      if findings <> [] then
        Alcotest.failf "repo has %d deep lint finding(s), first: %s"
          (List.length findings)
          (Typed.pp_deep ~why:true (List.hd findings))

(* --- dynamic counterparts of the static rules ---------------------------- *)

let test_registry_listing_stable () =
  let ids = Spec.ids () in
  check_true "registry listing is sorted"
    (List.sort String.compare ids = ids);
  check_true "registry has experiments" (List.length ids >= 10)

let test_same_seed_byte_identical () =
  (* The property D001-D004 exist to protect: re-running a registered
     experiment with the same seed must reproduce the result down to
     the last byte of its JSON rendering. *)
  let spec = Spec.find_exn "fig4" in
  let params =
    { Spec.default_params with seed = 1234; mem_gib = Some [ 1; 2 ] }
  in
  let j1 = Result.to_json (spec.Spec.run params) in
  let j2 = Result.to_json (spec.Spec.run params) in
  check_true "json non-trivial" (String.length j1 > 2);
  check_true "same seed, byte-identical JSON" (String.equal j1 j2)

let suite =
  ( "simlint",
    [
      Alcotest.test_case "D001 wall clock" `Quick test_d001;
      Alcotest.test_case "D001 allowlisted dir" `Quick test_d001_allowlisted_dir;
      Alcotest.test_case "D002 ambient randomness" `Quick test_d002;
      Alcotest.test_case "D003 hash-order traversal" `Quick test_d003;
      Alcotest.test_case "D003 commutative min/max" `Quick test_d003_commutative;
      Alcotest.test_case "D004 raw domains" `Quick test_d004;
      Alcotest.test_case "D004 path-aware shadowing" `Quick test_d004_path_aware;
      Alcotest.test_case "D005 unsafe casts" `Quick test_d005;
      Alcotest.test_case "D006 stdout in lib" `Quick test_d006;
      Alcotest.test_case "D007 swallowed exceptions" `Quick test_d007;
      Alcotest.test_case "D008 untyped aborts in lib" `Quick test_d008;
      Alcotest.test_case "clean fixture passes" `Quick test_clean;
      Alcotest.test_case "suppression honored" `Quick test_suppression;
      Alcotest.test_case "bad suppression reported" `Quick test_bad_suppression;
      Alcotest.test_case "D009 taint through wrapper chain" `Quick
        test_d009_taint_chain;
      Alcotest.test_case "D010 domain-boundary captures" `Quick
        test_d010_captures;
      Alcotest.test_case "D010 cross-shard send captures" `Quick
        test_d010_par_send;
      Alcotest.test_case "D011 toplevel mutable globals" `Quick
        test_d011_globals;
      Alcotest.test_case "SARIF output" `Quick test_sarif_output;
      Alcotest.test_case "JSON carries rule titles" `Quick test_json_titles;
      Alcotest.test_case "repo lints clean" `Quick test_repo_lints_clean;
      Alcotest.test_case "repo deep-lints clean" `Quick
        test_repo_deep_lints_clean;
      Alcotest.test_case "registry listing stable" `Quick
        test_registry_listing_stable;
      Alcotest.test_case "same seed -> byte-identical result" `Quick
        test_same_seed_byte_identical;
    ] )
