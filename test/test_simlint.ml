(* The simlint static checker: every rule fires on its known-bad
   fixture at the right location, clean code and well-formed
   suppressions pass, malformed suppressions are themselves findings,
   the repository lints clean, and the dynamic property the rules
   exist to protect holds — same seed, byte-identical results. *)
open Helpers
module Lint = Simlint.Lint
module Spec = Rejuv.Experiment.Spec
module Result = Rejuv.Experiment.Result

let fixture name = Filename.concat "lint_fixtures" name

(* (rule, line, col) triples, order-normalized. *)
let summarize findings =
  List.map (fun (f : Lint.finding) -> (f.rule, f.line, f.col)) findings

let check_findings msg expected actual =
  Alcotest.(check (list (triple string int int))) msg expected
    (summarize actual)

let test_d001 () =
  check_findings "wall-clock flagged"
    [ ("D001", 2, 22); ("D001", 3, 20) ]
    (Lint.lint_file (fixture "d001_wall_clock.ml"))

let test_d001_allowlisted_dir () =
  (* The same file linted as if under lib/runner/ is allowlisted. *)
  check_findings "lib/runner may read the clock" []
    (Lint.lint_file ~as_path:"lib/runner/fixture.ml"
       (fixture "d001_wall_clock.ml"))

let test_d002 () =
  check_findings "ambient randomness flagged"
    [ ("D002", 2, 22); ("D002", 3, 16) ]
    (Lint.lint_file (fixture "d002_random.ml"))

let test_d003 () =
  (* Only the escaping fold and the iter fire; the sorted-keys idiom
     and the commutative count in the same file stay clean. *)
  check_findings "hash-order traversals flagged"
    [ ("D003", 2, 15); ("D003", 3, 15) ]
    (Lint.lint_file (fixture "d003_hashtbl.ml"))

let test_d004 () =
  check_findings "raw Domain primitives flagged"
    [ ("D004", 2, 13); ("D004", 3, 15); ("D004", 4, 14) ]
    (Lint.lint_file (fixture "d004_domain.ml"))

let test_d004_path_aware () =
  (* With [module Domain = Xenvmm.Domain] in scope, bare Domain.* is
     the VM-domain module: only the explicit Stdlib.Domain fires. *)
  check_findings "shadowed Domain not flagged"
    [ ("D004", 7, 18) ]
    (Lint.lint_file (fixture "d004_shadowed.ml"))

let test_d005 () =
  check_findings "Obj.magic and Marshal.Closures flagged"
    [ ("D005", 2, 13); ("D005", 3, 16) ]
    (Lint.lint_file (fixture "d005_unsafe.ml"))

let test_d006 () =
  check_findings "stdout printing flagged under lib/"
    [ ("D006", 2, 15); ("D006", 3, 14) ]
    (Lint.lint_file ~as_path:"lib/guest/fixture.ml" (fixture "d006_print.ml"));
  (* The rule is scoped to lib/: the same file elsewhere is fine. *)
  check_findings "printing outside lib/ not flagged" []
    (Lint.lint_file (fixture "d006_print.ml"))

let test_d007 () =
  check_findings "wildcard handler flagged"
    [ ("D007", 2, 30) ]
    (Lint.lint_file (fixture "d007_swallow.ml"))

let test_d008 () =
  (* Both the failwith and the explicit Failure raise fire (the
     suppressed one on line 4 does not); the rule is scoped to lib/. *)
  check_findings "untyped aborts flagged under lib/"
    [ ("D008", 2, 14); ("D008", 3, 14) ]
    (Lint.lint_file ~as_path:"lib/guest/fixture.ml"
       (fixture "d008_failwith.ml"));
  check_findings "failwith outside lib/ not flagged" []
    (Lint.lint_file (fixture "d008_failwith.ml"))

let test_clean () =
  check_findings "clean file passes" [] (Lint.lint_file (fixture "clean.ml"))

let test_suppression () =
  check_findings "well-formed suppression waives the finding" []
    (Lint.lint_file (fixture "suppressed.ml"))

let test_bad_suppression () =
  (* A malformed suppression is a D000 finding AND does not waive the
     violation it sits on. *)
  check_findings "malformed suppressions are findings"
    [ ("D003", 2, 12); ("D000", 2, 34); ("D003", 3, 12); ("D000", 3, 34) ]
    (Lint.lint_file (fixture "bad_suppression.ml"))

(* --- the repository itself ---------------------------------------------- *)

(* Tests run under _build/default/test; the checked-out tree is
   everything above the _build component. *)
let repo_root () =
  let rec strip acc = function
    | [] -> None
    | "_build" :: _ -> Some (String.concat Filename.dir_sep (List.rev acc))
    | part :: rest -> strip (part :: acc) rest
  in
  strip [] (String.split_on_char '/' (Sys.getcwd ()))

let test_repo_lints_clean () =
  match repo_root () with
  | None -> Alcotest.skip ()
  | Some root ->
    let dirs =
      List.map (Filename.concat root) [ "lib"; "bin"; "bench"; "test" ]
    in
    let findings = Lint.lint_paths (List.filter Sys.file_exists dirs) in
    if findings <> [] then
      Alcotest.failf "repo has %d lint finding(s), first: %s"
        (List.length findings)
        (Lint.pp_finding (List.hd findings))

(* --- dynamic counterparts of the static rules ---------------------------- *)

let test_registry_listing_stable () =
  let ids = Spec.ids () in
  check_true "registry listing is sorted"
    (List.sort String.compare ids = ids);
  check_true "registry has experiments" (List.length ids >= 10)

let test_same_seed_byte_identical () =
  (* The property D001-D004 exist to protect: re-running a registered
     experiment with the same seed must reproduce the result down to
     the last byte of its JSON rendering. *)
  let spec = Spec.find_exn "fig4" in
  let params =
    { Spec.default_params with seed = 1234; mem_gib = Some [ 1; 2 ] }
  in
  let j1 = Result.to_json (spec.Spec.run params) in
  let j2 = Result.to_json (spec.Spec.run params) in
  check_true "json non-trivial" (String.length j1 > 2);
  check_true "same seed, byte-identical JSON" (String.equal j1 j2)

let suite =
  ( "simlint",
    [
      Alcotest.test_case "D001 wall clock" `Quick test_d001;
      Alcotest.test_case "D001 allowlisted dir" `Quick test_d001_allowlisted_dir;
      Alcotest.test_case "D002 ambient randomness" `Quick test_d002;
      Alcotest.test_case "D003 hash-order traversal" `Quick test_d003;
      Alcotest.test_case "D004 raw domains" `Quick test_d004;
      Alcotest.test_case "D004 path-aware shadowing" `Quick test_d004_path_aware;
      Alcotest.test_case "D005 unsafe casts" `Quick test_d005;
      Alcotest.test_case "D006 stdout in lib" `Quick test_d006;
      Alcotest.test_case "D007 swallowed exceptions" `Quick test_d007;
      Alcotest.test_case "D008 untyped aborts in lib" `Quick test_d008;
      Alcotest.test_case "clean fixture passes" `Quick test_clean;
      Alcotest.test_case "suppression honored" `Quick test_suppression;
      Alcotest.test_case "bad suppression reported" `Quick test_bad_suppression;
      Alcotest.test_case "repo lints clean" `Quick test_repo_lints_clean;
      Alcotest.test_case "registry listing stable" `Quick
        test_registry_listing_stable;
      Alcotest.test_case "same seed -> byte-identical result" `Quick
        test_same_seed_byte_identical;
    ] )
