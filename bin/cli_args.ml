(* Shared Cmdliner plumbing: the strategy/workload converters (built on
   the library parsers, not inline lambdas) and the generic --csv/--json
   exporter that works for every Experiment.Result. *)

open Cmdliner

let strategy_conv =
  Arg.conv (Rejuv.Strategy.of_string_result, Rejuv.Strategy.pp)

let workload_conv =
  let print ppf w =
    Format.pp_print_string ppf (Rejuv.Scenario.workload_name w)
  in
  Arg.conv (Rejuv.Scenario.workload_of_string, print)

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Rejuv.Strategy.Warm
    & info [ "strategy" ] ~doc:"Reboot strategy: warm, saved or cold")

let workload_arg =
  Arg.(
    value
    & opt workload_conv Rejuv.Scenario.Ssh
    & info [ "workload" ] ~doc:"Service in each VM: ssh, jboss or web")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the data as CSV to $(docv)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the data as JSON to $(docv)")

let queue_conv =
  let print ppf b =
    Format.pp_print_string ppf (Simkit.Eventq.backend_name b)
  in
  Arg.conv (Simkit.Eventq.backend_of_string, print)

let queue_arg =
  Arg.(
    value
    & opt (some queue_conv) None
    & info [ "queue" ] ~docv:"BACKEND"
        ~doc:
          "Event-queue backend: calendar (default) or heap. Results are \
           byte-identical either way; this only affects engine speed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Runner.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel sweeps (1 = sequential)")

(* --- metrics plane --------------------------------------------------------- *)

let metrics_format_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Obs.Export.format_of_string s)
  in
  let print ppf (f : Obs.Export.format) =
    Format.pp_print_string ppf
      (match f with Json -> "json" | Csv -> "csv" | Prom -> "prom")
  in
  Arg.conv (parse, print)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some Obs.Export.Json) (some metrics_format_conv) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "After the run, print the collected metrics (engine, disk, VMM \
           heap, page caches, request latencies) as $(docv): json \
           (default), csv or prom")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the runner's sweep metrics as JSON to $(docv)")

(* The export's [now] (for counter rates): the instrumented engine
   publishes its clock as a gauge, so read it back from the registry. *)
let registry_now reg =
  match Obs.Registry.find reg "sim.engine.now_s" with
  | Some (Obs.Registry.Gauge g) -> Obs.Metric.gauge_value g
  | _ -> 0.0

let print_metrics ~registry fmt =
  Option.iter
    (fun f ->
      print_string (Obs.Export.render f ~now:(registry_now registry) registry))
    fmt

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Format.printf "wrote %s@." path

let csv_string ~header rows =
  let line cells = String.concat "," cells in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

(* One call exports a whole batch: a single result is written bare, a
   multi-experiment batch becomes a JSON object / sectioned CSV. *)
let export ~csv ~json (named : (string * Rejuv.Experiment.Result.t) list) =
  Option.iter
    (fun path ->
      let section (id, r) =
        let header, rows = Rejuv.Experiment.Result.csv r in
        match named with
        | [ _ ] -> csv_string ~header rows
        | _ -> Printf.sprintf "# %s\n%s" id (csv_string ~header rows)
      in
      write_file path (String.concat "\n" (List.map section named)))
    csv;
  Option.iter
    (fun path ->
      let body =
        match named with
        | [ (_, r) ] -> Rejuv.Experiment.Result.to_json r
        | _ ->
          "{"
          ^ String.concat ","
              (List.map
                 (fun (id, r) ->
                   Simkit.Jsonx.escape id ^ ":"
                   ^ Rejuv.Experiment.Result.to_json r)
                 named)
          ^ "}"
      in
      write_file path body)
    json
