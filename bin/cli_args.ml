(* Shared Cmdliner plumbing: the strategy/workload converters (built on
   the library parsers, not inline lambdas) and the generic --csv/--json
   exporter that works for every Experiment.Result. *)

open Cmdliner

(* Every enum-valued flag goes through one converter built on
   [Simkit.Enum]: uniform parsing, uniform "expected one of ..."
   rejections, and the doc string enumerates the same names. *)
let enum_conv e = Arg.conv (Simkit.Enum.of_string e, Simkit.Enum.pp e)

let enum_doc e what =
  Printf.sprintf "%s: %s" what
    (String.concat ", " (Simkit.Enum.names e))

let strategy_conv = enum_conv Rejuv.Strategy.enum

let workload_conv =
  let print ppf w =
    Format.pp_print_string ppf (Rejuv.Scenario.workload_name w)
  in
  Arg.conv (Rejuv.Scenario.workload_of_string, print)

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Rejuv.Strategy.Warm
    & info [ "strategy" ]
        ~doc:(enum_doc Rejuv.Strategy.enum "Reboot strategy"))

let workload_arg =
  Arg.(
    value
    & opt workload_conv Rejuv.Scenario.Ssh
    & info [ "workload" ]
        ~doc:(enum_doc Rejuv.Scenario.workload_enum "Service in each VM"))

let wave_strategy_conv = enum_conv Rejuv.Wave.strategy_enum

let wave_strategy_arg =
  Arg.(
    value
    & opt (some wave_strategy_conv) None
    & info [ "wave-strategy" ]
        ~doc:
          (enum_doc Rejuv.Wave.strategy_enum
             "Per-wave rejuvenation strategy (default: all)"))

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the data as CSV to $(docv)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the data as JSON to $(docv)")

let memdyn_conv = enum_conv Mem.Memdyn.mode_enum

let memdyn_arg =
  Arg.(
    value
    & opt memdyn_conv Mem.Memdyn.Off
    & info [ "memdyn" ] ~docv:"MODE"
        ~doc:
          (enum_doc Mem.Memdyn.mode_enum
             "Memory-dynamics mode (dirty-page tracking, pre-suspend \
              ballooning, streamed demand-paged restore); off is the exact \
              static-memory model"))

let traffic_conv = enum_conv Netsim.Fluid.mode_enum

let traffic_arg =
  Arg.(
    value
    & opt (some traffic_conv) None
    & info [ "traffic" ] ~docv:"MODE"
        ~doc:
          (enum_doc Netsim.Fluid.mode_enum
             "Client traffic model — per-request simulates every request \
              event-by-event, fluid integrates the whole population as a \
              flow at rate-change epochs, hybrid carries the bulk as fluid \
              plus a small per-request tracer cohort. Default: the \
              experiment's own axis/default"))

let clients_arg =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "clients" ] ~docv:"N,..."
        ~doc:
          "Client populations for the elastic_traffic grid (default \
           10,1000,100000; per-request cells cap at 1000)")

let queue_conv = enum_conv Simkit.Eventq.backend_enum

let queue_arg =
  Arg.(
    value
    & opt (some queue_conv) None
    & info [ "queue" ] ~docv:"BACKEND"
        ~doc:
          "Event-queue backend: calendar (default) or heap. Results are \
           byte-identical either way; this only affects engine speed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Runner.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel sweeps (1 = sequential)")

let partitions_arg =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"N"
        ~doc:
          "Shards (worker domains) a fleet simulation is partitioned \
           across. Results are byte-identical for every value; this only \
           spreads one run's hosts over cores. Migrate strategies require \
           1.")

(* --- metrics plane --------------------------------------------------------- *)

let metrics_format_conv = enum_conv Obs.Export.format_enum

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some Obs.Export.Json) (some metrics_format_conv) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "After the run, print the collected metrics (engine, disk, VMM \
           heap, page caches, request latencies) as $(docv): json \
           (default), csv or prom")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the runner's sweep metrics as JSON to $(docv)")

(* The export's [now] (for counter rates): the instrumented engine
   publishes its clock as a gauge, so read it back from the registry. *)
let registry_now reg =
  match Obs.Registry.find reg "sim.engine.now_s" with
  | Some (Obs.Registry.Gauge g) -> Obs.Metric.gauge_value g
  | _ -> 0.0

let print_metrics ~registry fmt =
  Option.iter
    (fun f ->
      print_string (Obs.Export.render f ~now:(registry_now registry) registry))
    fmt

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  Format.printf "wrote %s@." path

let csv_string ~header rows =
  let line cells = String.concat "," cells in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

(* One call exports a whole batch: a single result is written bare, a
   multi-experiment batch becomes a JSON object / sectioned CSV. *)
let export ~csv ~json (named : (string * Rejuv.Experiment.Result.t) list) =
  Option.iter
    (fun path ->
      let section (id, r) =
        let header, rows = Rejuv.Experiment.Result.csv r in
        match named with
        | [ _ ] -> csv_string ~header rows
        | _ -> Printf.sprintf "# %s\n%s" id (csv_string ~header rows)
      in
      write_file path (String.concat "\n" (List.map section named)))
    csv;
  Option.iter
    (fun path ->
      let body =
        match named with
        | [ (_, r) ] -> Rejuv.Experiment.Result.to_json r
        | _ ->
          "{"
          ^ String.concat ","
              (List.map
                 (fun (id, r) ->
                   Simkit.Jsonx.escape id ^ ":"
                   ^ Rejuv.Experiment.Result.to_json r)
                 named)
          ^ "}"
      in
      write_file path body)
    json
