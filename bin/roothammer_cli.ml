(* Command-line driver: run individual paper experiments through the
   experiment registry, export any of them as CSV/JSON, and batch them
   across CPU cores with `sweep --jobs`. `roothammer --help` lists
   commands. *)

open Cmdliner
module Experiment = Rejuv.Experiment
module Result = Rejuv.Experiment.Result
module Spec = Rejuv.Experiment.Spec

let pf = Format.printf

(* --- common options -------------------------------------------------------- *)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log VMM lifecycle events")

let cmd name ~doc term = Cmd.v (Cmd.info name ~doc) term

let run_spec id params = (Spec.find_exn id).Spec.run params

(* --- printing -------------------------------------------------------------- *)

let print_task_times rows ~x_label =
  pf "%-6s %12s %12s %12s %12s %12s %12s@." x_label "onmem-susp" "onmem-res"
    "xen-save" "xen-restore" "shutdown" "boot";
  List.iter
    (fun (r : Experiment.task_times) ->
      pf "%-6d %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f@." r.x
        r.onmem_suspend_s r.onmem_resume_s r.xen_save_s r.xen_restore_s
        r.shutdown_s r.boot_s)
    rows

let print_fig6 rows =
  pf "%-6s %10s %10s %10s@." "VMs" "warm" "saved" "cold";
  List.iter
    (fun (r : Experiment.fig6_row) ->
      pf "%-6d %10.1f %10.1f %10.1f@." r.n r.warm_downtime_s
        r.saved_downtime_s r.cold_downtime_s)
    rows

let print_availability rows =
  List.iter
    (fun (s, a) ->
      pf "%-16s %a (%d nines)@." (Rejuv.Strategy.name s)
        Rejuv.Availability.pp_percent a
        (Rejuv.Availability.nines a))
    rows

let print_fleet reports =
  pf "%-8s %6s %6s %5s %6s %10s %8s %8s %7s %7s %5s@." "strategy" "hosts"
    "width" "waves" "floor" "makespan-s" "offered" "lost" "loss-%" "min-up"
    "slo";
  List.iter
    (fun (r : Rejuv.Fleet.report) ->
      pf "%-8s %6d %6d %5d %6d %10.1f %8d %8d %7.2f %7d %5s%s@."
        (Rejuv.Wave.strategy_id r.fr_strategy)
        r.hosts r.wave_width (List.length r.waves) r.slo_floor r.makespan_s
        r.offered r.lost
        (100.0 *. r.loss_ratio)
        r.min_healthy
        (if r.slo_met then "met" else "MISS")
        (match r.skipped with
        | [] -> ""
        | s -> Printf.sprintf "  (%d skipped)" (List.length s)))
    reports

let print_timeline series =
  List.iter
    (fun (name, tl) ->
      pf "# %s@." name;
      List.iter (fun (t, v) -> pf "%8.0f %8.2f@." t v) tl)
    series

(* Generic human rendering, used by `sweep` for whatever was batched. *)
let print_result id = function
  | Result.Task_times rows ->
    pf "# %s@." id;
    print_task_times rows ~x_label:"x"
  | Result.Fig6 rows ->
    pf "# %s@." id;
    print_fig6 rows
  | Result.Reload r ->
    pf "# %s@.quick reload %.1f s, hardware reset %.1f s@." id
      r.quick_reload_s r.hardware_reset_s
  | Result.Fig7 r ->
    pf "# %s (%a): reboot at t=%.0f s, %d throughput windows@." id
      Rejuv.Strategy.pp r.f7_strategy r.reboot_command_at
      (List.length r.throughput)
  | Result.Before_after r ->
    pf "# %s@.before %.1f/%.1f after %.1f/%.1f  degradation %.0f%%@." id
      r.first_before r.second_before r.first_after r.second_after
      (100.0 *. r.degradation)
  | Result.Availability rows ->
    pf "# %s@." id;
    print_availability rows
  | Result.Fits f ->
    pf "# %s@.%a" id Rejuv.Downtime_model.pp f
  | Result.Timeline series ->
    pf "# %s@." id;
    print_timeline series
  | Result.Scalar { label; value } -> pf "# %s@.%s = %.2f@." id label value
  | Result.Fault_matrix cells ->
    pf "# %s@." id;
    pf "%-8s %-20s %5s %9s %-9s %7s %5s %8s@." "strategy" "site" "fired"
      "recovered" "completed" "retries" "lost" "extra-s";
    List.iter
      (fun (c : Rejuv.Fault_matrix.cell) ->
        pf "%-8s %-20s %5d %9b %-9s %7d %5d %8.1f@."
          (Rejuv.Strategy.id c.fm_strategy)
          c.fm_site c.injected c.recovered
          (Rejuv.Strategy.id c.completed)
          c.retries c.domains_lost c.extra_downtime_s)
      cells
  | Result.Fleet reports ->
    pf "# %s@." id;
    print_fleet reports
  | Result.Elastic rows ->
    pf "# %s@." id;
    pf "%-16s %6s %-8s %10s %10s %10s@." "memdyn" "ws" "disk" "downtime-s"
      "image-MiB" "lag-s";
    List.iter
      (fun (r : Experiment.elastic_row) ->
        pf "%-16s %6.2f %-8s %10.2f %10.1f %10.2f@."
          (Mem.Memdyn.mode_name r.er_mode)
          r.er_working_set r.er_disk r.er_downtime_s r.er_image_mib
          r.er_restore_lag_s)
      rows
  | Result.Traffic rows ->
    pf "# %s@." id;
    pf "%-12s %9s %-8s %10s %8s %10s %10s %8s@." "traffic" "clients"
      "strategy" "steady-rps" "outage-s" "completed" "failed" "tracer";
    List.iter
      (fun (r : Experiment.traffic_row) ->
        pf "%-12s %9d %-8s %10.1f %8.1f %10d %10d %8d@."
          (Netsim.Fluid.mode_name r.tw_mode)
          r.tw_clients
          (Rejuv.Strategy.id r.tw_strategy)
          r.tw_steady_rps r.tw_outage_s r.tw_completed r.tw_failed
          r.tw_tracer_requests)
      rows

(* --- figure commands -------------------------------------------------------- *)

let fig4_cmd =
  let run verbose csv json =
    setup_logs verbose;
    match run_spec "fig4" Spec.default_params with
    | Result.Task_times rows as r ->
      print_task_times rows ~x_label:"GiB";
      Cli_args.export ~csv ~json [ ("fig4", r) ]
    | _ -> assert false
  in
  cmd "fig4" ~doc:"Task times vs memory size of one VM"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

let fig5_cmd =
  let run verbose csv json =
    setup_logs verbose;
    match run_spec "fig5" Spec.default_params with
    | Result.Task_times rows as r ->
      print_task_times rows ~x_label:"VMs";
      Cli_args.export ~csv ~json [ ("fig5", r) ]
    | _ -> assert false
  in
  cmd "fig5" ~doc:"Task times vs number of VMs"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

let reload_cmd =
  let run verbose csv json =
    setup_logs verbose;
    match run_spec "quick_reload" Spec.default_params with
    | Result.Reload r as res ->
      pf "quick reload:   %6.1f s (paper: 11 s)@." r.quick_reload_s;
      pf "hardware reset: %6.1f s (paper: 59 s)@." r.hardware_reset_s;
      Cli_args.export ~csv ~json [ ("quick_reload", res) ]
    | _ -> assert false
  in
  cmd "reload" ~doc:"Section 5.2: effect of quick reload"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

let fig6_cmd =
  let run verbose workload csv json =
    setup_logs verbose;
    match run_spec "fig6" { Spec.default_params with workload } with
    | Result.Fig6 rows as r ->
      print_fig6 rows;
      Cli_args.export ~csv ~json [ ("fig6", r) ]
    | _ -> assert false
  in
  cmd "fig6" ~doc:"Downtime of networked services"
    Term.(
      const run $ verbose_arg $ Cli_args.workload_arg $ Cli_args.csv_arg
      $ Cli_args.json_arg)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's operation timeline as a Chrome trace \
           (chrome://tracing, ui.perfetto.dev) to $(docv)")

let fig7_cmd =
  let run verbose strategy csv json trace =
    setup_logs verbose;
    match run_spec "fig7" { Spec.default_params with strategy } with
    | Result.Fig7 r as res ->
      Option.iter
        (fun path -> Cli_args.write_file path r.Experiment.chrome_trace_json)
        trace;
      pf "# %a; reboot command at t=%.0f s@." Rejuv.Strategy.pp r.f7_strategy
        r.reboot_command_at;
      (match (r.web_down_at, r.web_up_at) with
      | Some d, Some u -> pf "# web server down %.1f .. %.1f s@." d u
      | _ -> ());
      List.iter
        (fun (l, a, b) -> pf "# span %-28s %8.1f .. %8.1f@." l a b)
        r.f7_spans;
      List.iter (fun (t, v) -> pf "%8.1f %10.1f@." t v) r.throughput;
      Cli_args.export ~csv ~json [ ("fig7", res) ]
    | _ -> assert false
  in
  cmd "fig7" ~doc:"Throughput timeline during the reboot"
    Term.(
      const run $ verbose_arg $ Cli_args.strategy_arg $ Cli_args.csv_arg
      $ Cli_args.json_arg $ trace_arg)

let fig8_cmd =
  let run verbose strategy csv json =
    setup_logs verbose;
    let params = { Spec.default_params with strategy } in
    match (run_spec "fig8_file" params, run_spec "fig8_web" params) with
    | (Result.Before_after file as rf), (Result.Before_after web as rw) ->
      pf
        "file read (MiB/s): before %.0f/%.0f after %.0f/%.0f  degradation \
         %.0f%%@."
        file.first_before file.second_before file.first_after
        file.second_after
        (100.0 *. file.degradation);
      pf
        "web (req/s):       before %.0f/%.0f after %.0f/%.0f  degradation \
         %.0f%%@."
        web.first_before web.second_before web.first_after web.second_after
        (100.0 *. web.degradation);
      Cli_args.export ~csv ~json [ ("fig8_file", rf); ("fig8_web", rw) ]
    | _ -> assert false
  in
  cmd "fig8" ~doc:"Throughput before/after the reboot"
    Term.(
      const run $ verbose_arg $ Cli_args.strategy_arg $ Cli_args.csv_arg
      $ Cli_args.json_arg)

let fits_cmd =
  let run verbose csv json =
    setup_logs verbose;
    match run_spec "section_5_6_fits" Spec.default_params with
    | Result.Fits f as r ->
      pf "%a" Rejuv.Downtime_model.pp f;
      Cli_args.export ~csv ~json [ ("section_5_6_fits", r) ]
    | _ -> assert false
  in
  cmd "fits" ~doc:"Section 5.6: fitted downtime model"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

let avail_cmd =
  let run verbose csv json =
    setup_logs verbose;
    (match run_spec "os_rejuvenation" Spec.default_params with
    | Result.Scalar { value; _ } ->
      pf "OS rejuvenation downtime: %.1f s (paper: 33.6 s)@." value
    | _ -> assert false);
    match run_spec "availability" Spec.default_params with
    | Result.Availability rows as r ->
      print_availability rows;
      Cli_args.export ~csv ~json [ ("availability", r) ]
    | _ -> assert false
  in
  cmd "avail" ~doc:"Section 5.3: availability"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

let fig9_cmd =
  let run verbose csv json =
    setup_logs verbose;
    match run_spec "fig9" Spec.default_params with
    | Result.Timeline series as r ->
      let p = Rejuv.Cluster.paper_params () in
      let horizon = 2400.0 in
      List.iter
        (fun (name, tl) ->
          pf "# %s@." name;
          List.iter (fun (t, v) -> pf "%8.0f %8.2f@." t v) tl;
          pf "# lost capacity over %.0f s: %.1f host-seconds@." horizon
            (Rejuv.Cluster.lost_capacity p tl ~horizon_s:horizon))
        series;
      Cli_args.export ~csv ~json [ ("fig9", r) ]
    | _ -> assert false
  in
  cmd "fig9" ~doc:"Cluster throughput model"
    Term.(const run $ verbose_arg $ Cli_args.csv_arg $ Cli_args.json_arg)

(* --- running by registry id -------------------------------------------------- *)

let experiment_conv =
  let parse s =
    match Spec.find s with
    | Some _ -> Ok s
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown experiment %s (known: %s)" s
             (String.concat ", " (Spec.ids ()))))
  in
  Arg.conv (parse, Format.pp_print_string)

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some experiment_conv) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "A registered experiment id (`roothammer list` shows all of \
             them)")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Shrink the run for CI: fault_matrix runs a single cell \
             (warm x xend.resume) and fleet_rolling a single small warm \
             cell instead of the full grid")
  in
  let run verbose id smoke partitions queue strategy workload memdyn traffic
      clients csv json metrics =
    setup_logs verbose;
    Option.iter Simkit.Engine.set_default_queue queue;
    (* Fresh ambient registry so --metrics reports this run only. *)
    let registry = Obs.reset_ambient () in
    let params =
      {
        Spec.default_params with
        smoke;
        partitions;
        strategy;
        workload;
        memdyn;
        traffic;
        clients;
      }
    in
    let r = run_spec id params in
    print_result id r;
    Cli_args.export ~csv ~json [ (id, r) ];
    Cli_args.print_metrics ~registry metrics
  in
  cmd "run" ~doc:"Run any registered experiment by id"
    Term.(
      const run $ verbose_arg $ id_arg $ smoke_arg $ Cli_args.partitions_arg
      $ Cli_args.queue_arg $ Cli_args.strategy_arg $ Cli_args.workload_arg
      $ Cli_args.memdyn_arg $ Cli_args.traffic_arg $ Cli_args.clients_arg
      $ Cli_args.csv_arg $ Cli_args.json_arg $ Cli_args.metrics_arg)

(* --- the parallel sweep ----------------------------------------------------- *)

let sweep_cmd =
  let ids_arg =
    Arg.(
      value
      & pos_all experiment_conv [ "fig4"; "fig5"; "fig6" ]
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "Registered experiments to run (default: fig4 fig5 fig6). \
             `roothammer list` shows all ids.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Result cache directory (default $(b,\\$ROOTHAMMER_CACHE) or \
             $(b,_cache))")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute everything; do not touch the cache")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "After the parallel pass, re-run one shard sequentially and \
             assert its bytes match (isolation check)")
  in
  let quiet_results_arg =
    Arg.(
      value & flag
      & info [ "metrics-only" ] ~doc:"Print runner metrics but not the data")
  in
  let run verbose ids jobs partitions workload strategy memdyn traffic clients
      cache_dir no_cache verify quiet_results csv json metrics_out =
    setup_logs verbose;
    let registry = Obs.reset_ambient () in
    (* partitions is intra-run parallelism (shards of one fleet cell);
       jobs is inter-run parallelism (cells at once). They multiply, so
       crank one at a time. *)
    let params =
      {
        Spec.default_params with
        workload;
        strategy;
        partitions;
        memdyn;
        traffic;
        clients;
      }
    in
    let cache =
      if no_cache then None else Some (Runner.Cache.create ?dir:cache_dir ())
    in
    let t0 = Unix.gettimeofday () in (* simlint: allow D001 user-facing elapsed-time display *)
    let merged, outcomes =
      Experiment.sweep ?cache ~jobs ~verify_isolation:verify ~params ids
    in
    let elapsed = Unix.gettimeofday () -. t0 in (* simlint: allow D001 user-facing elapsed-time display *)
    let hits =
      List.length
        (List.filter
           (fun (o : Result.t Runner.Sweep.outcome) -> o.metrics.cached)
           outcomes)
    in
    pf "sweep: %d experiment(s), %d run(s) (%d cached), jobs=%d@."
      (List.length ids) (List.length outcomes) hits jobs;
    List.iter
      (fun (o : Result.t Runner.Sweep.outcome) ->
        pf "  %-24s %8.3f s %12d events%s@." o.key o.metrics.wall_s
          o.metrics.sim_events
          (if o.metrics.cached then "  (cached)" else ""))
      outcomes;
    let work = Runner.Sweep.total_wall_s outcomes in
    if hits = List.length outcomes then
      pf "all runs served from cache in %.3f s@." elapsed
    else
      pf "run wall-clock %.3f s in %.3f s elapsed (parallel speedup %.2fx)@."
        work elapsed
        (if elapsed > 0.0 then work /. elapsed else 1.0);
    let ok, faulted =
      List.partition_map
        (fun (id, r) ->
          match r with Ok v -> Left (id, v) | Error f -> Right (id, f))
        merged
    in
    List.iter
      (fun (id, f) ->
        pf "# %s FAULTED: %s@." id (Simkit.Fault.to_string f))
      faulted;
    if not quiet_results then
      List.iter (fun (id, r) -> print_result id r) ok;
    Cli_args.export ~csv ~json ok;
    (* Runner-level observability: per-run wall-time histogram, cache
       hit rate and shard utilization for this batch. (The simulations
       themselves ran on worker domains, each with its own ambient
       registry — their metrics are reachable via `run --metrics`.) *)
    Option.iter
      (fun path ->
        Runner.Sweep.observe ~elapsed_s:elapsed registry outcomes;
        Cli_args.write_file path (Obs.Export.to_json ~now:0.0 registry))
      metrics_out;
    if faulted <> [] then exit 1
  in
  cmd "sweep"
    ~doc:
      "Run a batch of registered experiments in parallel across CPU cores, \
       with an on-disk result cache"
    Term.(
      const run $ verbose_arg $ ids_arg $ Cli_args.jobs_arg
      $ Cli_args.partitions_arg $ Cli_args.workload_arg
      $ Cli_args.strategy_arg $ Cli_args.memdyn_arg $ Cli_args.traffic_arg
      $ Cli_args.clients_arg $ cache_dir_arg $ no_cache_arg $ verify_arg
      $ quiet_results_arg $ Cli_args.csv_arg $ Cli_args.json_arg
      $ Cli_args.metrics_out_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (s : Spec.t) -> pf "%-18s %s@." s.id s.doc)
      (Spec.all ())
  in
  cmd "list" ~doc:"List the registered experiments" Term.(const run $ const ())

(* --- non-registry tools ----------------------------------------------------- *)

let migrate_cmd =
  let mem_arg =
    Arg.(value & opt int 1 & info [ "mem-gib" ] ~doc:"VM memory in GiB")
  in
  let dirty_arg =
    Arg.(
      value & opt float 20.0
      & info [ "dirty-mib" ] ~doc:"Dirty rate while running, MiB/s")
  in
  let run verbose mem_gib dirty_mib =
    setup_logs verbose;
    let p =
      Rejuv.Migration.plan
        ~mem_bytes:(Simkit.Units.gib mem_gib)
        ~dirty_bytes_per_s:(dirty_mib *. 1048576.0)
        ()
    in
    pf "pre-copy rounds:@.";
    List.iteri
      (fun i (bytes, duration) ->
        pf "  round %2d: %8.1f MiB in %6.2f s@." (i + 1)
          (Simkit.Units.bytes_to_mib bytes)
          duration)
      p.Rejuv.Migration.rounds;
    pf "stop-and-copy: %.1f MiB, blackout %.2f s@."
      (Simkit.Units.bytes_to_mib p.Rejuv.Migration.stop_copy_bytes)
      p.Rejuv.Migration.downtime_s;
    pf "total migration time: %.1f s@." p.Rejuv.Migration.total_s
  in
  cmd "migrate" ~doc:"Pre-copy live migration plan (Section 6)"
    Term.(const run $ verbose_arg $ mem_arg $ dirty_arg)

let schedule_cmd =
  let duration_arg =
    Arg.(
      value & opt float 42.0
      & info [ "duration" ] ~doc:"Rejuvenation outage length, seconds")
  in
  let run verbose duration =
    setup_logs verbose;
    (* A diurnal request-rate forecast, hour resolution. *)
    let profile =
      List.init 24 (fun h ->
          let load =
            if h < 7 then 80.0
            else if h < 9 then 400.0
            else if h < 18 then 900.0
            else if h < 22 then 500.0
            else 150.0
          in
          (float_of_int h *. 3600.0, load))
    in
    let start, cost =
      Rejuv.Policy.Load.best_window profile ~duration
        ~horizon:(24.0 *. 3600.0)
    in
    pf
      "best %.0f s rejuvenation window starts at %02d:%02d (displaces %.0f \
       requests)@."
      duration
      (int_of_float (start /. 3600.0))
      (int_of_float (Float.rem start 3600.0 /. 60.0))
      cost;
    pf "midday placement would displace %.0f@."
      (Rejuv.Policy.Load.cost profile ~start:(12.0 *. 3600.0) ~duration)
  in
  cmd "schedule" ~doc:"Load-aware placement of the rejuvenation window"
    Term.(const run $ verbose_arg $ duration_arg)

let blind_dispatch_arg =
  Arg.(
    value & flag
    & info [ "blind-dispatch" ]
        ~doc:
          "Round-robin requests ignoring host health (the paper's \
           lost-request model) instead of skipping unhealthy hosts")

let cluster_cmd =
  let hosts_arg =
    Arg.(value & opt int 4 & info [ "hosts" ] ~doc:"Cluster size")
  in
  let run verbose hosts strategy blind_dispatch =
    setup_logs verbose;
    let c =
      Rejuv.Cluster_sim.create
        {
          Rejuv.Cluster_sim.Config.hosts;
          host = Rejuv.Scenario.Config.(default |> with_vms 3);
          blind_dispatch;
        }
    in
    Rejuv.Cluster_sim.start c;
    pf "%d hosts up; rolling %s under 100 req/s...@." hosts
      (Rejuv.Strategy.name strategy);
    let r = Rejuv.Cluster_sim.rolling_rejuvenation c ~strategy () in
    pf "rolling cycle: %.1f s; per-host %s@."
      r.Rejuv.Cluster_sim.total_elapsed_s
      (String.concat " "
         (List.map
            (fun o -> Printf.sprintf "%.0fs" o)
            r.Rejuv.Cluster_sim.per_host_outage_s));
    pf "requests lost: %d of %d (%.1f %%)@." r.Rejuv.Cluster_sim.lost
      r.Rejuv.Cluster_sim.offered
      (100.0 *. r.Rejuv.Cluster_sim.loss_ratio)
  in
  cmd "cluster" ~doc:"Rolling rejuvenation across a simulated cluster"
    Term.(
      const run $ verbose_arg $ hosts_arg $ Cli_args.strategy_arg
      $ blind_dispatch_arg)

let fleet_cmd =
  let hosts_arg =
    Arg.(value & opt int 16 & info [ "hosts" ] ~doc:"Fleet size")
  in
  let width_arg =
    Arg.(
      value & opt int 4
      & info [ "wave-width" ]
          ~doc:"Hosts rejuvenated per wave (clamped to the SLO slack)")
  in
  let slo_arg =
    Arg.(
      value & opt float 0.7
      & info [ "slo" ] ~doc:"Fraction of hosts that must stay healthy")
  in
  let load_arg =
    Arg.(
      value & opt float 200.0
      & info [ "load" ] ~doc:"Poisson client stream, requests per second")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Shrink the pass for CI: a 12-host fleet in waves of 3 under \
             50 req/s, overriding --hosts/--wave-width/--load")
  in
  let run verbose hosts width slo load partitions smoke wave_strategy memdyn
      traffic blind_dispatch metrics =
    setup_logs verbose;
    let hosts = if smoke then 12 else hosts in
    let width = if smoke then 3 else width in
    let load = if smoke then 50.0 else load in
    let registry = Obs.reset_ambient () in
    let traffic_cfg =
      match traffic with
      | None -> Netsim.Fluid.default_config
      | Some mode -> { Netsim.Fluid.default_config with Netsim.Fluid.mode }
    in
    let fleet =
      Rejuv.Fleet.create
        {
          Rejuv.Fleet.Config.default with
          hosts;
          wave_width = width;
          slo;
          load_rate_per_s = load;
          blind_dispatch;
          partitions;
          host =
            {
              Rejuv.Fleet.Config.default.Rejuv.Fleet.Config.host with
              Rejuv.Scenario.Config.memdyn = Mem.Memdyn.default memdyn;
              traffic = traffic_cfg;
            };
        }
    in
    Rejuv.Fleet.start fleet;
    let strategy =
      Option.value wave_strategy ~default:(Rejuv.Wave.Reboot Rejuv.Strategy.Warm)
    in
    pf "%d hosts up (%d shard(s)); rolling %s waves of <= %d under %.0f \
        req/s...@."
      hosts
      (Simkit.Par_engine.shards (Rejuv.Fleet.par fleet))
      (Rejuv.Wave.strategy_id strategy)
      width load;
    let r = Rejuv.Fleet.run fleet ~strategy in
    print_fleet [ r ];
    Cli_args.print_metrics ~registry metrics
  in
  cmd "fleet"
    ~doc:
      "Fleet-scale rolling rejuvenation under an SLO guard (waves of hosts, \
       warm/saved/cold/migrate)"
    Term.(
      const run $ verbose_arg $ hosts_arg $ width_arg $ slo_arg $ load_arg
      $ Cli_args.partitions_arg $ smoke_arg $ Cli_args.wave_strategy_arg
      $ Cli_args.memdyn_arg $ Cli_args.traffic_arg $ blind_dispatch_arg
      $ Cli_args.metrics_arg)

let report_cmd =
  let n_arg =
    Arg.(value & opt int 11 & info [ "n"; "vm-count" ] ~doc:"Number of VMs")
  in
  let run verbose n =
    setup_logs verbose;
    let r = Rejuv.Report.run ~vm_count:n () in
    pf "%a" Rejuv.Report.pp r;
    if not (Rejuv.Report.all_hold r) then exit 1
  in
  cmd "report" ~doc:"One-page paper-vs-measured reproduction report"
    Term.(const run $ verbose_arg $ n_arg)

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "roothammer" ~version:Rejuv.Roothammer.version
      ~doc:"Warm-VM reboot experiments (Kourai & Chiba, DSN 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig4_cmd; fig5_cmd; reload_cmd; fig6_cmd; fig7_cmd; fig8_cmd;
            fits_cmd; avail_cmd; fig9_cmd; run_cmd; sweep_cmd; list_cmd;
            migrate_cmd; schedule_cmd; cluster_cmd; fleet_cmd; report_cmd;
          ]))
