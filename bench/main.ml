(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5 and the Section 6 model) and prints
   paper-vs-measured rows, then runs Bechamel micro-benchmarks of the
   core mechanisms.

   Usage: main.exe [-j N] [tag ...] where tag is one of
   fig4 fig5 reload fig6a fig6b avail fig7 fig8a fig8b fits policy fig9
   memdyn traffic
   migration ablation cluster fleet parfleet sensitivity faults sweep
   eventcore micro. No tags = everything. The swept
   figures (fig4/fig5/fig6) run their points through the parallel sweep
   runner on N domains (default: the machine's). *)

let pf = Format.printf

let header title =
  pf "@.=== %s ===@." title

let row4 a b c d = pf "%-10s %14s %14s %14s@." a b c d

let jobs = ref (Runner.Pool.default_jobs ())

(* --- structured bench output ----------------------------------------------

   Each section records its headline numbers; the driver adds simulator
   self-metrics (wall time, events, events/s) per section and writes the
   whole batch as a roothammer-bench/1 file (default BENCH_PR10.json).
   Simulation outputs get a tolerance band and are gated by
   `benchstat --check` against the committed BENCH_BASELINE.json;
   timing self-metrics are informational (tolerance null). *)

let bench_out = ref "BENCH_PR10.json"
let bench_metrics : (string * Benchstat.Check.metric) list ref = ref []

let record ?(unit_ = "s")
    ?(tolerance_pct = Some Benchstat.Check.default_tolerance_pct) name value =
  bench_metrics :=
    (name, { Benchstat.Check.value; unit_; tolerance_pct }) :: !bench_metrics

let record_info ?(unit_ = "s") name value =
  record ~unit_ ~tolerance_pct:None name value

let write_bench_file () =
  let json = Benchstat.Check.to_json { Benchstat.Check.metrics = !bench_metrics } in
  let oc = open_out !bench_out in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  pf "@.wrote %d metric(s) to %s@." (List.length !bench_metrics) !bench_out

(* Run one registered experiment's shards through the sweep runner and
   return the merged result (byte-identical to the sequential path). *)
let sweep_result ?(workload = Rejuv.Scenario.Ssh) id =
  let params = { Rejuv.Experiment.Spec.default_params with workload } in
  let merged, outcomes = Rejuv.Experiment.sweep ~jobs:!jobs ~params [ id ] in
  pf "(%d runs, %d domain(s), %.2f s of run wall-clock)@."
    (List.length outcomes) !jobs
    (Runner.Sweep.total_wall_s outcomes);
  match List.assoc id merged with
  | Ok r -> r
  | Error f -> Simkit.Fault.fail f

(* --- Figure 4 / Figure 5 ------------------------------------------------- *)

let print_task_times ~x_label rows =
  pf "%-6s | %10s %10s | %10s %10s | %10s %10s@." x_label "onm-susp"
    "onm-res" "xen-save" "xen-rest" "shutdown" "boot";
  List.iter
    (fun (r : Rejuv.Experiment.task_times) ->
      pf "%-6d | %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f@." r.x
        r.onmem_suspend_s r.onmem_resume_s r.xen_save_s r.xen_restore_s
        r.shutdown_s r.boot_s)
    rows

let task_times_of id ~workload =
  match sweep_result ~workload id with
  | Rejuv.Experiment.Result.Task_times rows -> rows
  | _ -> assert false

(* Headline: the largest sweep point (the paper reports 11 GiB / 11
   VMs), one metric per pre/post-reboot task. *)
let record_task_times tag rows =
  match List.rev rows with
  | [] -> ()
  | (last : Rejuv.Experiment.task_times) :: _ ->
    let r name v = record (Printf.sprintf "%s.at%02d.%s" tag last.x name) v in
    r "onmem_suspend_s" last.onmem_suspend_s;
    r "onmem_resume_s" last.onmem_resume_s;
    r "xen_save_s" last.xen_save_s;
    r "xen_restore_s" last.xen_restore_s;
    r "shutdown_s" last.shutdown_s;
    r "boot_s" last.boot_s

let fig4 () =
  header "Figure 4: pre/post-reboot task time vs VM memory size (1 VM)";
  pf "paper at 11 GiB: on-mem suspend 0.08 s, resume 0.9 s;@.";
  pf "                Xen save ~133 s, restore ~129 s (0.06%% / 0.7%%)@.";
  let rows = task_times_of "fig4" ~workload:Rejuv.Scenario.Ssh in
  print_task_times ~x_label:"GiB" rows;
  record_task_times "fig4" rows

let fig5 () =
  header "Figure 5: pre/post-reboot task time vs number of VMs (1 GiB each)";
  pf "paper at 11 VMs: on-mem suspend 0.04 s, resume 4.2 s;@.";
  pf "                Xen save ~200 s, restore ~156 s; boot grows 3.4n@.";
  let rows = task_times_of "fig5" ~workload:Rejuv.Scenario.Ssh in
  print_task_times ~x_label:"VMs" rows;
  record_task_times "fig5" rows

(* --- Section 5.2 --------------------------------------------------------- *)

let reload () =
  header "Section 5.2: effect of quick reload (VMM reboot, no domUs)";
  let r = Rejuv.Experiment.quick_reload_effect () in
  row4 "" "paper" "measured" "";
  row4 "quick" "11 s" (Printf.sprintf "%.1f s" r.quick_reload_s) "";
  row4 "hw reset" "59 s" (Printf.sprintf "%.1f s" r.hardware_reset_s) "";
  pf "speed-up: paper 48 s, measured %.1f s@."
    (r.hardware_reset_s -. r.quick_reload_s);
  record "reload.quick_reload_s" r.quick_reload_s;
  record "reload.hardware_reset_s" r.hardware_reset_s

(* --- Figure 6 ------------------------------------------------------------ *)

let print_fig6 rows =
  pf "%-6s %12s %12s %12s@." "VMs" "warm" "saved" "cold";
  List.iter
    (fun (r : Rejuv.Experiment.fig6_row) ->
      pf "%-6d %12.1f %12.1f %12.1f@." r.n r.warm_downtime_s
        r.saved_downtime_s r.cold_downtime_s)
    rows

let fig6_rows workload =
  match sweep_result ~workload "fig6" with
  | Rejuv.Experiment.Result.Fig6 rows -> rows
  | _ -> assert false

let record_fig6 tag rows =
  match List.rev rows with
  | [] -> ()
  | (last : Rejuv.Experiment.fig6_row) :: _ ->
    let r name v = record (Printf.sprintf "%s.n%02d.%s" tag last.n name) v in
    r "warm_downtime_s" last.warm_downtime_s;
    r "saved_downtime_s" last.saved_downtime_s;
    r "cold_downtime_s" last.cold_downtime_s

let fig6a () =
  header "Figure 6a: downtime of ssh (seconds)";
  pf "paper at 11 VMs: warm 42, saved 429, cold 157@.";
  let rows = fig6_rows Rejuv.Scenario.Ssh in
  print_fig6 rows;
  record_fig6 "fig6a" rows

let fig6b () =
  header "Figure 6b: downtime of JBoss (seconds)";
  pf "paper at 11 VMs: warm ~42 (same as ssh), cold 241@.";
  let rows = fig6_rows Rejuv.Scenario.Jboss in
  print_fig6 rows;
  record_fig6 "fig6b" rows

(* --- Section 5.3 --------------------------------------------------------- *)

let avail () =
  header "Section 5.3: availability (JBoss, 11 VMs, weekly OS rejuvenation)";
  let os_downtime = Rejuv.Experiment.run_os_rejuvenation () in
  pf "OS rejuvenation downtime: paper 33.6 s, measured %.1f s@." os_downtime;
  let rows =
    Rejuv.Experiment.fig6 ~vm_counts:[ 11 ] ~workload:Rejuv.Scenario.Jboss ()
  in
  let row = List.hd rows in
  let measured =
    Rejuv.Experiment.availability_table ~os_downtime_s:os_downtime
      ~vmm_downtimes:
        [
          (Rejuv.Strategy.Warm, row.warm_downtime_s);
          (Rejuv.Strategy.Cold, row.cold_downtime_s);
          (Rejuv.Strategy.Saved, row.saved_downtime_s);
        ]
      ()
  in
  let paper = function
    | Rejuv.Strategy.Warm -> "99.993 %"
    | Rejuv.Strategy.Cold -> "99.985 %"
    | Rejuv.Strategy.Saved -> "99.977 %"
  in
  row4 "strategy" "paper" "measured" "nines";
  record "avail.os_rejuvenation_downtime_s" os_downtime;
  List.iter
    (fun (s, a) ->
      (* Gate on unavailability: drift in the tiny complement is what a
         regression would actually move. *)
      record ~unit_:"fraction"
        (Printf.sprintf "avail.%s.unavailability" (Rejuv.Strategy.id s))
        (1.0 -. a);
      row4 (Rejuv.Strategy.name s) (paper s)
        (Format.asprintf "%a" Rejuv.Availability.pp_percent a)
        (string_of_int (Rejuv.Availability.nines a)))
    measured

(* --- Figure 7 ------------------------------------------------------------ *)

let fig7_one strategy =
  let r = Rejuv.Experiment.fig7 ~strategy () in
  pf "-- %a: reboot command at t=%.0f s@." Rejuv.Strategy.pp strategy
    r.reboot_command_at;
  (match (r.web_down_at, r.web_up_at) with
  | Some d, Some u ->
    pf "   web server down %.1f .. %.1f s (outage %.1f s)@." d u (u -. d);
    record
      (Printf.sprintf "fig7.%s.web_outage_s" (Rejuv.Strategy.id strategy))
      (u -. d)
  | _ -> pf "   web server never observed down@.");
  List.iter
    (fun (l, a, b) -> pf "   span %-28s %8.1f .. %8.1f s@." l a b)
    r.f7_spans;
  pf "   throughput (50-request windows resampled to 5 s, req/s):@.";
  (* The raw series has a window every ~0.2 s; bucket it for reading. *)
  let bucket = 5.0 in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun (t, v) ->
      let b = int_of_float (t /. bucket) in
      let sum, n = Option.value (Hashtbl.find_opt groups b) ~default:(0.0, 0) in
      Hashtbl.replace groups b (sum +. v, n + 1))
    r.throughput;
  Hashtbl.fold (fun b acc l -> (b, acc) :: l) groups []
  |> List.sort compare
  |> List.iter (fun (b, (sum, n)) ->
         pf "   t=%5.0f..%3.0f s  %8.1f req/s@."
           (float_of_int b *. bucket)
           (float_of_int (b + 1) *. bucket)
           (sum /. float_of_int n))

let fig7 () =
  header "Figure 7: downtime breakdown + web throughput during the reboot";
  pf "paper: warm stops web at t=34, cold at t=27; cold dips 8 s after@.";
  pf "       reboot (cache misses); warm shows a 25 s network artifact@.";
  fig7_one Rejuv.Strategy.Warm;
  fig7_one Rejuv.Strategy.Cold

(* --- Figure 8 ------------------------------------------------------------ *)

let print_before_after what unit_ paper_deg (r : Rejuv.Experiment.before_after) =
  pf "%-18s before %7.1f/%7.1f %s   after %7.1f/%7.1f %s   degradation %4.0f %% (paper %s)@."
    what r.first_before r.second_before unit_ r.first_after r.second_after
    unit_
    (100.0 *. r.degradation)
    paper_deg

let record_before_after tag (r : Rejuv.Experiment.before_after) =
  record ~unit_:"fraction" (tag ^ ".degradation") r.degradation;
  record ~unit_:"throughput" (tag ^ ".first_after") r.first_after

let fig8a () =
  header "Figure 8a: 512 MB file-read throughput before/after the reboot";
  let warm = Rejuv.Experiment.fig8_file ~strategy:Rejuv.Strategy.Warm () in
  let cold = Rejuv.Experiment.fig8_file ~strategy:Rejuv.Strategy.Cold () in
  print_before_after "warm (1st/2nd)" "MiB/s" "0 %" warm;
  print_before_after "cold (1st/2nd)" "MiB/s" "91 %" cold;
  record_before_after "fig8a.warm" warm;
  record_before_after "fig8a.cold" cold

let fig8b () =
  header "Figure 8b: web-server throughput before/after the reboot";
  let warm = Rejuv.Experiment.fig8_web ~strategy:Rejuv.Strategy.Warm () in
  let cold = Rejuv.Experiment.fig8_web ~strategy:Rejuv.Strategy.Cold () in
  print_before_after "warm (1st/2nd)" "req/s" "0 %" warm;
  print_before_after "cold (1st/2nd)" "req/s" "69 %" cold;
  record_before_after "fig8b.warm" warm;
  record_before_after "fig8b.cold" cold

(* --- Section 5.6 ---------------------------------------------------------- *)

let fits () =
  header "Section 5.6: fitted downtime model";
  pf "paper: reboot_vmm(n) = -0.55n + 43, resume(n) = 0.43n - 0.07,@.";
  pf "       reboot_os(n) = 3.8n + 13, boot(n) = 3.4n + 2.8, reset_hw = 47@.";
  pf "       => r(n) = 3.9n + 60 - 17 alpha@.";
  let f = Rejuv.Experiment.section_5_6_fits () in
  pf "measured:@.%a" Rejuv.Downtime_model.pp f;
  let rf = Rejuv.Downtime_model.reduction_as_formula f in
  record ~unit_:"s/vm" "fits.reduction.n_slope" rf.n_slope;
  record "fits.reduction.constant" rf.constant;
  record "fits.reduction.alpha_coefficient" rf.alpha_coefficient

(* --- Figure 2 (policy) ---------------------------------------------------- *)

let policy () =
  header "Figure 2: rejuvenation timing (8-week horizon, 1 VM shown)";
  let week = Simkit.Units.weeks 1.0 in
  let show strategy =
    let events =
      Rejuv.Policy.schedule ~strategy ~vm_count:1 ~os_interval_s:week
        ~vmm_interval_s:(4.0 *. week)
        ~horizon_s:(8.0 *. week +. 1.0)
    in
    pf "%-16s " (Rejuv.Strategy.name strategy);
    List.iter
      (fun e ->
        match e with
        | Rejuv.Policy.Os_rejuvenation { at; _ } ->
          pf "os@@%.1fw " (at /. week)
        | Rejuv.Policy.Vmm_rejuvenation { at } -> pf "VMM@@%.1fw " (at /. week))
      events;
    pf "@."
  in
  show Rejuv.Strategy.Warm;
  show Rejuv.Strategy.Cold

(* --- Figure 9 -------------------------------------------------------------- *)

let fig9 () =
  header "Figure 9: cluster total throughput (m=4 hosts, p=1)";
  let p = Rejuv.Cluster.paper_params ~m:4 ~p:1.0 () in
  let horizon_s = 3600.0 in
  let show name tl =
    pf "%-12s " name;
    List.iter (fun (t, v) -> pf "(%.0fs -> %.2f) " t v) tl;
    pf " | lost capacity %.1f host-s over %.0f s@."
      (Rejuv.Cluster.lost_capacity p tl ~horizon_s)
      horizon_s
  in
  show "warm" (Rejuv.Cluster.warm_timeline p ~reboot_at:600.0);
  show "cold" (Rejuv.Cluster.cold_timeline p ~reboot_at:600.0);
  show "migration" (Rejuv.Cluster.migration_timeline p ~migrate_at:600.0);
  pf "rolling rejuvenation of all 4 hosts (warm, 120 s apart):@.";
  show "rolling"
    (Rejuv.Cluster.rolling_rejuvenation p ~strategy:Rejuv.Strategy.Warm
       ~start_at:600.0 ~gap_s:120.0)

(* --- Section 6, executed: live migration vs warm reboot ------------------- *)

let migration () =
  header "Section 6 (executed): live migration vs the warm-VM reboot";
  pf "paper cites Clark et al.: ~72 s to migrate one busy ~1 GiB VM with@.";
  pf "negligible downtime; evacuating 11 such VMs ~ 17 minutes@.";
  let show_plan name dirty_mib =
    let p =
      Rejuv.Migration.plan ~mem_bytes:(Simkit.Units.gib 1)
        ~dirty_bytes_per_s:(dirty_mib *. 1048576.0) ()
    in
    pf "%-24s %2d rounds  precopy %6.1f s  blackout %5.2f s  total %6.1f s@."
      name
      (List.length p.Rejuv.Migration.rounds)
      p.Rejuv.Migration.precopy_s p.Rejuv.Migration.downtime_s
      p.Rejuv.Migration.total_s;
    p.Rejuv.Migration.total_s
  in
  let _ = show_plan "idle VM (1 MiB/s dirty)" 1.0 in
  let busy = show_plan "busy web VM (20 MiB/s)" 20.0 in
  pf "evacuating 11 busy VMs: %.1f min (paper estimate: ~17 min)@."
    (11.0 *. busy /. 60.0);
  let warm =
    (Rejuv.Experiment.run_reboot ~strategy:Rejuv.Strategy.Warm ~vm_count:11
       ~vm_mem_bytes:(Simkit.Units.gib 1) ())
      .Rejuv.Experiment.downtime_mean_s
  in
  pf "warm-VM reboot of the same host: one %.0f s outage, no spare host@."
    warm

(* --- Ablations of the design choices --------------------------------------- *)

let ablation () =
  header "Ablations: what each design choice buys";
  let base = Rejuv.Calibration.default in
  let downtime ?(calibration = base) ?(n = 5) strategy =
    (Rejuv.Experiment.run_reboot ~calibration ~strategy ~vm_count:n
       ~vm_mem_bytes:(Simkit.Units.gib 1) ())
      .Rejuv.Experiment.downtime_mean_s
  in
  let vmm_reboot ?(calibration = base) n =
    (Rejuv.Experiment.run_reboot ~calibration ~strategy:Rejuv.Strategy.Warm
       ~vm_count:n ~vm_mem_bytes:(Simkit.Units.gib 1) ())
      .Rejuv.Experiment.vmm_reboot_s
  in
  pf "1. scrub-skip at quick reload (why reboot_vmm(n) slopes down):@.";
  let no_skip = { base with Rejuv.Calibration.scrub_free_only = false } in
  pf "   reboot_vmm at n=0/11, with skip:    %5.1f / %5.1f s@."
    (vmm_reboot 0) (vmm_reboot 11);
  pf "   reboot_vmm at n=0/11, without skip: %5.1f / %5.1f s@."
    (vmm_reboot ~calibration:no_skip 0)
    (vmm_reboot ~calibration:no_skip 11);
  pf "2. suspend after (RootHammer) vs before dom0 shutdown:@.";
  let early =
    { base with Rejuv.Calibration.suspend_before_dom0_shutdown = true }
  in
  pf "   warm downtime, suspend after:  %5.1f s@."
    (downtime Rejuv.Strategy.Warm);
  pf "   warm downtime, suspend before: %5.1f s@."
    (downtime ~calibration:early Rejuv.Strategy.Warm);
  pf "3. xend's serial restore vs parallel restore (saved-VM reboot):@.";
  let par = { base with Rejuv.Calibration.parallel_restore = true } in
  pf "   saved downtime, serial:   %5.1f s@." (downtime Rejuv.Strategy.Saved);
  pf "   saved downtime, parallel: %5.1f s (interleaved reads)@."
    (downtime ~calibration:par Rejuv.Strategy.Saved);
  pf "4. driver domains (cannot be suspended; Section 7):@.";
  let driver_run ~driver_vm_count =
    let s =
      Rejuv.Scenario.create
        { Rejuv.Scenario.Config.default with vm_count = 3; driver_vm_count }
    in
    Rejuv.Roothammer.start_and_run s;
    let probers = Rejuv.Scenario.attach_probers s () in
    ignore (Rejuv.Roothammer.rejuvenate_blocking s ~strategy:Rejuv.Strategy.Warm);
    Rejuv.Roothammer.settle s ~seconds:2.0;
    List.iter Netsim.Prober.stop probers;
    List.map2
      (fun vm p ->
        ( Rejuv.Scenario.vm_name vm,
          Option.value (Netsim.Prober.longest_outage p) ~default:0.0 ))
      (Rejuv.Scenario.vms s) probers
  in
  List.iter
    (fun (name, d) -> pf "   %-10s downtime %5.1f s@." name d)
    (driver_run ~driver_vm_count:1);
  pf "5. load-aware scheduling of the rejuvenation window:@.";
  let diurnal =
    [ (0.0, 300.0); (9.0 *. 3600.0, 900.0); (21.0 *. 3600.0, 120.0) ]
  in
  let duration = downtime Rejuv.Strategy.Warm in
  let start, cost =
    Rejuv.Policy.Load.best_window diurnal ~duration
      ~horizon:(24.0 *. 3600.0)
  in
  pf "   warm outage %.0f s placed at %.1f h costs %.0f lost requests@."
    duration (start /. 3600.0) cost;
  pf "   (naive midday placement: %.0f)@."
    (Rejuv.Policy.Load.cost diurnal ~start:(12.0 *. 3600.0) ~duration)

(* --- Figure 9, measured: rolling rejuvenation of a real cluster ----------- *)

let cluster () =
  header
    "Figure 9, measured: rolling rejuvenation of 4 simulated hosts (the \
     paper's future work)";
  pf "4 hosts x 3 VMs, blind round-robin dispatch, open-loop 100 req/s@.";
  let run strategy =
    (* Blind dispatch on purpose: the measured form of the Figure 9
       model sprays requests at the rebooting host to count its drops. *)
    let c =
      Rejuv.Cluster_sim.create
        {
          Rejuv.Cluster_sim.Config.hosts = 4;
          host = Rejuv.Scenario.Config.(default |> with_vms 3);
          blind_dispatch = true;
        }
    in
    Rejuv.Cluster_sim.start c;
    let r = Rejuv.Cluster_sim.rolling_rejuvenation c ~strategy () in
    pf "%-16s elapsed %6.1f s  per-host outage %s  lost %d/%d (%.1f %%)@."
      (Rejuv.Strategy.name strategy)
      r.Rejuv.Cluster_sim.total_elapsed_s
      (String.concat "/"
         (List.map
            (fun o -> Printf.sprintf "%.0fs" o)
            r.Rejuv.Cluster_sim.per_host_outage_s))
      r.Rejuv.Cluster_sim.lost r.Rejuv.Cluster_sim.offered
      (100.0 *. r.Rejuv.Cluster_sim.loss_ratio)
  in
  List.iter run Rejuv.Strategy.all;
  pf "the cluster never goes dark; the strategies differ in how many@.";
  pf "requests the rebooting host drops — the measured form of Fig. 9@."

(* --- Fleet-scale rolling rejuvenation -------------------------------------- *)

let fleet () =
  header
    "Fleet: 200 hosts, rolling warm waves of 16 under a 0.75 SLO guard";
  pf "one grid cell of fleet_rolling, sharded through the sweep runner@.";
  let params =
    {
      Rejuv.Experiment.Spec.default_params with
      fleet_hosts = Some [ 200 ];
      wave_widths = Some [ 16 ];
      wave_strategy = Some (Rejuv.Wave.Reboot Rejuv.Strategy.Warm);
    }
  in
  let merged, outcomes =
    Rejuv.Experiment.sweep ~jobs:!jobs ~params [ "fleet_rolling" ]
  in
  let wall = Runner.Sweep.total_wall_s outcomes in
  let events =
    List.fold_left
      (fun acc (o : _ Runner.Sweep.outcome) -> acc + o.metrics.sim_events)
      0 outcomes
  in
  pf "(%d run(s), %d sim events, %.2f s of run wall-clock)@."
    (List.length outcomes) events wall;
  match List.assoc "fleet_rolling" merged with
  | Ok (Rejuv.Experiment.Result.Fleet [ r ]) ->
    pf
      "%d waves, makespan %.0f s; healthy hosts min %d / floor %d (SLO %s); \
       lost %d/%d@."
      (List.length r.Rejuv.Fleet.waves)
      r.Rejuv.Fleet.makespan_s r.Rejuv.Fleet.min_healthy
      r.Rejuv.Fleet.slo_floor
      (if r.Rejuv.Fleet.slo_met then "met" else "MISSED")
      r.Rejuv.Fleet.lost r.Rejuv.Fleet.offered;
    (* The acceptance gate: warm-wave rolling rejuvenation never drops
       projected capacity below the SLO floor. *)
    record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "fleet.warm.slo_met"
      (if r.Rejuv.Fleet.slo_met then 1.0 else 0.0);
    record ~unit_:"hosts" "fleet.warm.min_healthy"
      (float_of_int r.Rejuv.Fleet.min_healthy);
    record "fleet.warm.makespan_s" r.Rejuv.Fleet.makespan_s;
    record ~unit_:"fraction" "fleet.warm.loss_ratio" r.Rejuv.Fleet.loss_ratio;
    if wall > 0.0 && events > 0 then
      record_info ~unit_:"events/s" "fleet.events_per_s"
        (float_of_int events /. wall)
  | Ok _ -> assert false
  | Error f -> Simkit.Fault.fail f

(* --- Partitioned fleet: intra-run parallelism ------------------------------ *)

(* The same 200-host warm cell, run whole on 1 shard and spread over 4.
   Two machine-independent gates: the reports must agree to the byte
   (the property the sweep cache and the CLI lean on), and on real
   multicore hardware 4 shards must be at least 2x faster. The speedup
   gate holds vacuously below 4 effective cores — a 1-core CI runner
   can't parallelize anything — and says so. *)
let parfleet () =
  header "Partitioned fleet: the 200-host warm cell on 1 vs 4 shards";
  pf "same seed, same cell; partitions only spread its hosts over domains@.";
  let cell partitions =
    let t0 = Unix.gettimeofday () in
    let ev0 = Simkit.Engine.domain_events_processed () in
    let r =
      Rejuv.Experiment.fleet_cell ~partitions ~seed:42 ~hosts:200 ~width:16
        ~slo:0.75
        ~strategy:(Rejuv.Wave.Reboot Rejuv.Strategy.Warm)
        ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    let events = Simkit.Engine.domain_events_processed () - ev0 in
    (Rejuv.Experiment.Result.(to_json (Fleet [ r ])), wall, events)
  in
  let j1, w1, e1 = cell 1 in
  let j4, w4, e4 = cell 4 in
  let agree = j1 = j4 in
  let conserved = e1 = e4 in
  let speedup = if w4 > 0.0 then w1 /. w4 else 0.0 in
  let cores = Runner.Pool.default_jobs () in
  pf "partitions=1: %8.2f s  %9d events@." w1 e1;
  pf "partitions=4: %8.2f s  %9d events  (worker counts credited back)@." w4
    e4;
  pf "reports %s; speedup %.2fx on %d effective core(s)@."
    (if agree then "byte-identical" else "DIVERGED")
    speedup cores;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "parfleet.partitions_agree"
    (if agree then 1.0 else 0.0);
  (* Partition-aware event accounting: the four shards' executed-event
     counts, summed into this domain's charge, must equal the 1-shard
     run's — same simulation, same events, wherever they ran. *)
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "parfleet.events_conserved"
    (if conserved then 1.0 else 0.0);
  let vacuous = cores < 4 in
  if vacuous then
    pf "(< 4 effective cores: the speedup gate holds vacuously)@.";
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "parfleet.speedup_ge_2x"
    (if speedup >= 2.0 || vacuous then 1.0 else 0.0);
  record_info ~unit_:"x" "parfleet.speedup" speedup;
  if w4 > 0.0 && e4 > 0 then
    record_info ~unit_:"events/s" "parfleet.events_per_s"
      (float_of_int e4 /. w4)

(* --- Sensitivity: does the warm reboot still win on modern hardware? ------ *)

let sensitivity () =
  header "Sensitivity: 2007 testbed vs a 2020s server (8 GiB VMs, n=11)";
  pf "modern profile: 128 GiB RAM, NVMe (3 GB/s), 25 GbE, 0.05 s/GiB scrub,@.";
  pf "long server POST (~95 s), fast dom0 boot; guest timings unchanged@.";
  let run calibration strategy =
    (Rejuv.Experiment.run_reboot ~calibration ~strategy ~vm_count:11
       ~vm_mem_bytes:(Simkit.Units.gib 8) ~horizon_s:3600.0 ())
      .Rejuv.Experiment.downtime_mean_s
  in
  (* The 2007 host cannot hold 11 x 8 GiB; scale its memory up but keep
     every other 2007 characteristic. *)
  let old_big =
    Rejuv.Calibration.with_memory Rejuv.Calibration.default ~gib:128
  in
  pf "%-22s %10s %10s %10s@." "profile" "warm" "saved" "cold";
  let show name calibration =
    pf "%-22s %10.1f %10.1f %10.1f@." name
      (run calibration Rejuv.Strategy.Warm)
      (run calibration Rejuv.Strategy.Saved)
      (run calibration Rejuv.Strategy.Cold)
  in
  show "2007 disk, 128 GiB" old_big;
  show "2020s server" Rejuv.Calibration.modern;
  pf "reading: NVMe shrinks the saved-VM penalty dramatically, but the@.";
  pf "warm reboot still wins everywhere — and on big-memory hosts the@.";
  pf "full-scrub cost it skips grows with installed RAM.@."

(* --- Memory dynamics: ballooning + streamed restore ------------------------ *)

let memdyn () =
  header "Memory dynamics: ballooning and streamed demand-paged restore";
  pf "saved reboot of one 1 GiB VM on the 2007 testbed, per memdyn mode@.";
  let run memdyn =
    Rejuv.Experiment.run_reboot ?memdyn ~strategy:Rejuv.Strategy.Saved
      ~vm_count:1
      ~vm_mem_bytes:(Simkit.Units.gib 1)
      ()
  in
  let off = run None in
  let ballooned = run (Some (Mem.Memdyn.default Mem.Memdyn.Balloon)) in
  let streamed = run (Some (Mem.Memdyn.default Mem.Memdyn.Stream)) in
  pf "%-16s %12s %12s %10s@." "mode" "image-MiB" "downtime-s" "lag-s";
  List.iter
    (fun (name, (r : Rejuv.Experiment.reboot_run)) ->
      pf "%-16s %12.1f %12.1f %10.1f@." name r.saved_image_mib
        r.downtime_max_s r.restore_lag_s)
    [ ("off", off); ("balloon", ballooned); ("stream", streamed) ];
  (* Gate: the balloon driver reclaims idle pages before suspend, so
     the saved image must come out strictly smaller than full RAM. *)
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0)
    "memdyn.balloon_shrinks_image"
    (if
       ballooned.Rejuv.Experiment.saved_image_mib
       < off.Rejuv.Experiment.saved_image_mib
     then 1.0
     else 0.0);
  (* Gate: restoring only the hot pages before resume must beat
     stop-and-copy on 2007 spindles. *)
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0)
    "memdyn.stream_cuts_downtime"
    (if
       streamed.Rejuv.Experiment.downtime_max_s
       < off.Rejuv.Experiment.downtime_max_s
     then 1.0
     else 0.0);
  record ~unit_:"MiB" "memdyn.off.image_mib"
    off.Rejuv.Experiment.saved_image_mib;
  record ~unit_:"MiB" "memdyn.balloon.image_mib"
    ballooned.Rejuv.Experiment.saved_image_mib;
  record "memdyn.off.downtime_s" off.Rejuv.Experiment.downtime_max_s;
  record "memdyn.stream.downtime_s"
    streamed.Rejuv.Experiment.downtime_max_s;
  record "memdyn.stream.restore_lag_s"
    streamed.Rejuv.Experiment.restore_lag_s;
  (* Gate: off-mode inertness — a seeded fleet cell's JSON is
     byte-identical with memdyn absent vs explicitly off, for
     partitions 1 and 4, under both event-queue backends. *)
  let cell ?memdyn ~partitions backend =
    Simkit.Engine.with_default_queue backend (fun () ->
        Rejuv.Experiment.Result.to_json
          (Rejuv.Experiment.Result.Fleet
             [
               Rejuv.Experiment.fleet_cell ?memdyn ~partitions
                 ~load_rate_per_s:20.0 ~seed:11 ~hosts:6 ~width:2 ~slo:0.5
                 ~strategy:(Rejuv.Wave.Reboot Rejuv.Strategy.Warm)
                 ();
             ]))
  in
  let reference = cell ~memdyn:Mem.Memdyn.off ~partitions:1 Simkit.Eventq.Heap in
  let identical =
    String.length reference > 100
    && List.for_all
         (fun backend ->
           String.equal reference (cell ~partitions:1 backend)
           && String.equal reference
                (cell ~memdyn:Mem.Memdyn.off ~partitions:4 backend))
         [ Simkit.Eventq.Heap; Simkit.Eventq.Calendar ]
  in
  pf "off-mode fleet cell byte-identical across modes/partitions/backends: \
      %b@."
    identical;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "memdyn.off_identical"
    (if identical then 1.0 else 0.0)

(* --- The fault-injection campaign ------------------------------------------ *)

let faults () =
  header "Fault matrix: recovery per strategy x injection site";
  pf "each site armed to fire on its first call during the reboot;@.";
  pf "policy: 1 retry, fallback allowed, abandon failed domains@.";
  match sweep_result "fault_matrix" with
  | Rejuv.Experiment.Result.Fault_matrix cells ->
    pf "%-8s %-20s %5s %9s %-9s %7s %5s %8s@." "strategy" "site" "fired"
      "recovered" "completed" "retries" "lost" "extra-s";
    List.iter
      (fun (c : Rejuv.Fault_matrix.cell) ->
        pf "%-8s %-20s %5d %9b %-9s %7d %5d %8.1f@."
          (Rejuv.Strategy.id c.fm_strategy)
          c.fm_site c.injected c.recovered
          (Rejuv.Strategy.id c.completed)
          c.retries c.domains_lost c.extra_downtime_s)
      cells;
    let recovered =
      List.length (List.filter (fun (c : Rejuv.Fault_matrix.cell) -> c.recovered) cells)
    in
    record ~unit_:"fraction" "faults.recovered_fraction"
      (float_of_int recovered /. float_of_int (List.length cells))
  | _ -> assert false

(* --- The parallel sweep runner itself -------------------------------------- *)

let sweep () =
  header "Sweep runner: fig4 + fig5 + fig6 batched across domains";
  let ids = [ "fig4"; "fig5"; "fig6" ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let (seq, _), t_seq = time (fun () -> Rejuv.Experiment.sweep ~jobs:1 ids) in
  let (par, outcomes), t_par =
    time (fun () ->
        Rejuv.Experiment.sweep ~jobs:!jobs ~verify_isolation:true ids)
  in
  let bytes merged = Marshal.to_string (List.map snd merged) [] in
  let run_wall = Runner.Sweep.total_wall_s outcomes in
  let events =
    List.fold_left
      (fun acc (o : _ Runner.Sweep.outcome) -> acc + o.metrics.sim_events)
      0 outcomes
  in
  pf "%d runs, %d sim events; sequential elapsed %.3f s@."
    (List.length outcomes) events t_seq;
  pf "%d domain(s): %.3f s of run wall-clock in %.3f s elapsed (overlap %.2fx)@."
    !jobs run_wall t_par
    (if t_par > 0.0 then run_wall /. t_par else 1.0);
  let cores = Domain.recommended_domain_count () in
  if cores <= 1 then
    pf "(host reports %d core — domains interleave, elapsed cannot drop)@."
      cores;
  let identical = String.equal (bytes seq) (bytes par) in
  pf "merged results byte-identical to the sequential path: %b@." identical;
  record ~unit_:"bool" "sweep.merged_identical" (if identical then 1.0 else 0.0);
  record_info ~unit_:"x" "sweep.overlap" (if t_par > 0.0 then run_wall /. t_par else 1.0);
  (* The runner's own observability: record the batch into the ambient
     registry and surface shard utilization informationally. *)
  Runner.Sweep.observe ~elapsed_s:t_par (Obs.ambient ()) outcomes

(* --- Event-core microbenchmark --------------------------------------------

   Events/sec of the engine's event queue under the two workload shapes
   that motivated the calendar queue + tombstone compaction: a
   cancel-heavy synthetic (the timeout idiom — schedule a far-future
   timeout, cancel it almost immediately — that used to drown the heap
   in tombstones) and an httperf-style closed loop. Wall-clock numbers
   are informational; the gates are shape facts that hold on any
   machine: compaction must make the cancel-heavy workload at least 2x
   faster than the uncompacted heap, and both backends must agree
   byte-for-byte on the httperf results. *)

let cancel_heavy_iters = 300_000
let cancel_heavy_actors = 64

(* Each round: one far-future timeout (cancelled 10 ms later, so it
   always dies a tombstone) plus one work event that re-arms the actor.
   Sim time stays well short of the 1000 s timeouts, so with compaction
   [`Off] every cancelled handle lingers in the queue until the final
   drain. *)
let run_cancel_heavy ~queue ~compaction () =
  let e = Simkit.Engine.create ~queue ~compaction () in
  let remaining = ref cancel_heavy_iters in
  let rec arm () =
    if !remaining > 0 then begin
      decr remaining;
      let timeout = Simkit.Engine.schedule e ~delay:1000.0 (fun () -> ()) in
      ignore
        (Simkit.Engine.schedule e ~delay:0.01 (fun () ->
             Simkit.Engine.cancel e timeout;
             arm ()))
    end
  in
  for _ = 1 to cancel_heavy_actors do
    arm ()
  done;
  Simkit.Engine.run e;
  e

let httperf_heavy_horizon_s = 600.0

let run_httperf_heavy ~queue () =
  let e = Simkit.Engine.create ~queue () in
  let rng = Simkit.Rng.create 7 in
  let gen =
    Netsim.Httperf.create e ~name:"bench" ~connections:32
      ~request:(fun k ->
        let latency = 0.002 +. Simkit.Rng.float rng 0.05 in
        ignore (Simkit.Engine.schedule e ~delay:latency (fun () -> k true)))
      ()
  in
  Netsim.Httperf.start gen;
  Simkit.Engine.run ~until:httperf_heavy_horizon_s e;
  Netsim.Httperf.stop gen;
  (e, gen)

let wall_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* --- Elastic traffic model ------------------------------------------------- *)

(* The hybrid fluid-flow aggregation gates: (a) the aggregate modes must
   reproduce the per-request fig7 observables at small n (steady
   throughput and outage width within 5%), and (b) aggregation must cut
   engine events by at least 10x at 1000 clients — the O(flows) ->
   O(epochs) win that unlocks the 1M-client hybrid fleet cell closing
   the section. *)
let traffic () =
  header "Traffic model: fluid/hybrid client aggregation vs per-request";
  let cell ?(clients = 10) mode =
    let ev0 = Simkit.Engine.domain_events_processed () in
    let row, wall =
      wall_of (fun () ->
          Rejuv.Experiment.run_traffic_cell ~seed:7
            (mode, clients, Rejuv.Strategy.Warm))
    in
    (row, Simkit.Engine.domain_events_processed () - ev0, wall)
  in
  pf "fig7-shaped cell (warm reboot at t=20 s), 10 clients, seed 7:@.";
  pf "%-12s %10s %9s %10s %10s %12s@." "mode" "steady-rps" "outage-s"
    "completed" "failed" "sim-events";
  let small =
    List.map
      (fun mode ->
        let (row : Rejuv.Experiment.traffic_row), events, _ = cell mode in
        pf "%-12s %10.1f %9.1f %10d %10d %12d@."
          (Netsim.Fluid.mode_name mode)
          row.tw_steady_rps row.tw_outage_s row.tw_completed row.tw_failed
          events;
        (mode, row))
      [ Netsim.Fluid.Per_request; Netsim.Fluid.Fluid; Netsim.Fluid.Hybrid ]
  in
  let pr : Rejuv.Experiment.traffic_row =
    List.assoc Netsim.Fluid.Per_request small
  in
  let within pct a reference =
    Float.abs (a -. reference) <= pct *. Float.max (Float.abs reference) 1e-9
  in
  let equivalent =
    List.for_all
      (fun (_, (r : Rejuv.Experiment.traffic_row)) ->
        within 0.05 r.tw_steady_rps pr.tw_steady_rps
        && within 0.05 r.tw_outage_s pr.tw_outage_s)
      small
  in
  pf "aggregate modes within 5%% of per-request (steady + outage): %b@."
    equivalent;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "traffic.equivalence_ok"
    (if equivalent then 1.0 else 0.0);
  record ~unit_:"req/s" "traffic.per_request.steady_rps" pr.tw_steady_rps;
  record "traffic.per_request.outage_s" pr.tw_outage_s;
  (* A saturated cell barely rewards aggregation: with zero think time
     even the 4-connection tracer runs at server capacity, so hybrid
     still simulates ~capacity x horizon requests. Informational. *)
  let _, ev_pr_sat, wall_pr_sat = cell ~clients:1000 Netsim.Fluid.Per_request in
  let _, ev_hy_sat, wall_hy_sat = cell ~clients:1000 Netsim.Fluid.Hybrid in
  pf "1000 zero-think clients (saturated): per-request %d events (%.2f s), \
      hybrid %d events (%.2f s) — %.1fx@."
    ev_pr_sat wall_pr_sat ev_hy_sat wall_hy_sat
    (float_of_int ev_pr_sat /. float_of_int (max ev_hy_sat 1));
  record_info ~unit_:"x" "traffic.saturated.event_reduction_x"
    (float_of_int ev_pr_sat /. float_of_int (max ev_hy_sat 1));
  (* The O(flows) -> O(epochs) gate, on the population shape the model
     exists for: many flows, each individually slow. 10k closed-loop
     clients with 1 s think time offer ~10k req/s; per-request that is
     O(requests) engine events, hybrid is O(epochs) plus a 4-connection
     tracer (~4 req/s). *)
  let aggregation_clients = 10_000 in
  let aggregation_horizon_s = 60.0 in
  let run_aggregation mode =
    let e = Simkit.Engine.create () in
    let server =
      Netsim.Fluid.static_server ~capacity_rps:50_000.0 ~service_time_s:0.002
        ()
    in
    (* The per-request path has no separate think knob, so the request
       closure carries the whole cycle (1 s think + 2 ms service) —
       the same N / (Z + S) closed loop the fluid side integrates. *)
    let request k =
      ignore (Simkit.Engine.schedule e ~delay:1.002 (fun () -> k true))
    in
    let cfg =
      {
        Netsim.Fluid.default_config with
        Netsim.Fluid.mode;
        clients = aggregation_clients;
        tracers = 4;
        think_time_s = 1.0;
      }
    in
    let load = Netsim.Fluid.create e ~config:cfg ~request ~server () in
    Netsim.Fluid.start load;
    Simkit.Engine.run ~until:aggregation_horizon_s e;
    Netsim.Fluid.stop load;
    (load, Simkit.Engine.events_processed e)
  in
  let (load_pr, ev_pr), wall_pr = wall_of (fun () -> run_aggregation Netsim.Fluid.Per_request) in
  let (load_hy, ev_hy), wall_hy = wall_of (fun () -> run_aggregation Netsim.Fluid.Hybrid) in
  let x_pr = Netsim.Fluid.throughput_between load_pr ~lo:10.0 ~hi:50.0 in
  let x_hy = Netsim.Fluid.throughput_between load_hy ~lo:10.0 ~hi:50.0 in
  let speedup = float_of_int ev_pr /. float_of_int (max ev_hy 1) in
  let wall_speedup = wall_pr /. Float.max wall_hy 1e-9 in
  pf "%d clients, 1 s think, %.0f s horizon:@." aggregation_clients
    aggregation_horizon_s;
  pf "  per-request %9d events  %8.2f s wall  %8.0f req/s steady@." ev_pr
    wall_pr x_pr;
  pf "  hybrid      %9d events  %8.2f s wall  %8.0f req/s steady@." ev_hy
    wall_hy x_hy;
  pf "  %.0fx fewer events, %.1fx wall-clock, steady throughput within \
      %.2f%%@."
    speedup wall_speedup
    (100.0 *. Float.abs (x_hy -. x_pr) /. Float.max x_pr 1e-9);
  record_info ~unit_:"events" "traffic.per_request.sim_events"
    (float_of_int ev_pr);
  record_info ~unit_:"events" "traffic.hybrid.sim_events"
    (float_of_int ev_hy);
  record_info ~unit_:"x" "traffic.event_reduction_x" speedup;
  record_info ~unit_:"x" "traffic.wall_speedup_x" wall_speedup;
  record_info "traffic.per_request.wall_s" wall_pr;
  record_info "traffic.hybrid.wall_s" wall_hy;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "traffic.speedup_ge_10x"
    (if speedup >= 10.0 then 1.0 else 0.0);
  (* The scale this buys: a 200-host fleet cell with 1M modeled
     closed-loop clients per host (60 s think time, so ~16.7k req/s
     offered per host), rolled through a full warm rejuvenation pass.
     Per-request this would be ~10^10 events; hybrid completes in
     seconds. *)
  let hybrid_1m =
    {
      Netsim.Fluid.default_config with
      Netsim.Fluid.mode = Netsim.Fluid.Hybrid;
      clients = 1_000_000;
      tracers = 4;
      think_time_s = 60.0;
    }
  in
  let (report : Rejuv.Fleet.report), wall_fleet =
    wall_of (fun () ->
        Rejuv.Experiment.fleet_cell ~traffic:hybrid_1m ~partitions:4
          ~load_rate_per_s:50.0 ~seed:11 ~hosts:200 ~width:16 ~slo:0.75
          ~strategy:(Rejuv.Wave.Reboot Rejuv.Strategy.Warm)
          ())
  in
  pf "1M-client hybrid fleet (200 hosts, 4 partitions): %d waves, makespan \
      %.0f s, lost %d/%d, SLO %s — %.2f s wall@."
    (List.length report.Rejuv.Fleet.waves)
    report.Rejuv.Fleet.makespan_s report.Rejuv.Fleet.lost
    report.Rejuv.Fleet.offered
    (if report.Rejuv.Fleet.slo_met then "met" else "MISSED")
    wall_fleet;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0) "traffic.fleet_1m.completed"
    (if report.Rejuv.Fleet.offered > 0 then 1.0 else 0.0);
  record ~unit_:"fraction" "traffic.fleet_1m.loss_ratio"
    report.Rejuv.Fleet.loss_ratio;
  record_info "traffic.fleet_1m.wall_s" wall_fleet

let eventcore () =
  header "Event core (events/sec by queue backend and compaction)";
  let variants =
    [
      ("heap_off", Simkit.Eventq.Heap, `Off);
      ("heap_auto", Simkit.Eventq.Heap, `Auto);
      ("calendar_auto", Simkit.Eventq.Calendar, `Auto);
    ]
  in
  pf "cancel-heavy synthetic: %d rounds, %d actors@." cancel_heavy_iters
    cancel_heavy_actors;
  let rates =
    List.map
      (fun (tag, queue, compaction) ->
        let e, wall = wall_of (run_cancel_heavy ~queue ~compaction) in
        let events = Simkit.Engine.events_scheduled e in
        let rate = float_of_int events /. Float.max wall 1e-9 in
        let s = Simkit.Engine.queue_stats e in
        pf
          "  %-14s %8.2f s  %9.0f events/s  (%d compactions, %d resizes)@."
          tag wall rate s.Simkit.Engine.qs_compactions
          s.Simkit.Engine.qs_resizes;
        record_info ~unit_:"events/s"
          (Printf.sprintf "eventcore.cancel_heavy.%s.events_per_s" tag)
          rate;
        (tag, rate))
      variants
  in
  let rate tag = List.assoc tag rates in
  let speedup = rate "calendar_auto" /. rate "heap_off" in
  pf "  calendar+compaction vs uncompacted heap: %.2fx@." speedup;
  record_info ~unit_:"x" "eventcore.cancel_heavy.speedup_x" speedup;
  (* The ISSUE's acceptance gate, as a machine-independent boolean. *)
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0)
    "eventcore.cancel_heavy.speedup_ge_2x"
    (if speedup >= 2.0 then 1.0 else 0.0);
  pf "httperf-heavy closed loop: 32 connections, %.0f s horizon@."
    httperf_heavy_horizon_s;
  let runs =
    List.map
      (fun (tag, queue) ->
        let (e, gen), wall = wall_of (run_httperf_heavy ~queue) in
        let events = Simkit.Engine.events_processed e in
        let rate = float_of_int events /. Float.max wall 1e-9 in
        pf "  %-14s %8.2f s  %9.0f events/s  (%d requests)@." tag wall rate
          (Netsim.Httperf.completed gen);
        record_info ~unit_:"events/s"
          (Printf.sprintf "eventcore.httperf.%s.events_per_s" tag)
          rate;
        (tag, gen))
      [ ("heap", Simkit.Eventq.Heap); ("calendar", Simkit.Eventq.Calendar) ]
  in
  let summary gen =
    ( Netsim.Httperf.completed gen,
      Netsim.Httperf.failed gen,
      Netsim.Httperf.mean_window_throughput gen ~every:50 )
  in
  let agree =
    summary (List.assoc "heap" runs) = summary (List.assoc "calendar" runs)
  in
  pf "  backends agree on completions and throughput windows: %b@." agree;
  record ~unit_:"bool" ~tolerance_pct:(Some 0.0)
    "eventcore.httperf.backends_agree"
    (if agree then 1.0 else 0.0)

(* --- Bechamel micro-benchmarks -------------------------------------------- *)

let micro () =
  header "Micro-benchmarks (real time of the core mechanisms, Bechamel OLS)";
  let open Bechamel in
  let open Toolkit in
  let p2m_insert =
    Test.make ~name:"p2m: map 1 GiB (262k pages, one extent)"
      (Staged.stage (fun () ->
           let p2m = Xenvmm.P2m.create () in
           Xenvmm.P2m.add_extent p2m ~pfn_first:0
             ~mfns:{ Hw.Frame.first = 0; count = 262_144 }))
  in
  let p2m_lookup =
    let p2m = Xenvmm.P2m.create () in
    for i = 0 to 99 do
      Xenvmm.P2m.add_extent p2m ~pfn_first:(i * 512)
        ~mfns:{ Hw.Frame.first = (i * 1024); count = 512 }
    done;
    Test.make ~name:"p2m: lookup among 100 runs"
      (Staged.stage (fun () -> Xenvmm.P2m.lookup p2m ~pfn:25_000))
  in
  let frame_cycle =
    Test.make ~name:"frame: alloc+free 1 GiB"
      (Staged.stage
         (let t = Hw.Frame.of_bytes ~total_bytes:(Simkit.Units.gib 12) in
          fun () ->
            match Hw.Frame.alloc_bytes t ~bytes:(Simkit.Units.gib 1) with
            | Some e -> Hw.Frame.free t e
            | None -> assert false))
  in
  let cache_ops =
    let c =
      Guest.Page_cache.create ~capacity_bytes:(Simkit.Units.mib 64) ()
    in
    let i = ref 0 in
    Test.make ~name:"page cache: insert+touch"
      (Staged.stage (fun () ->
           incr i;
           Guest.Page_cache.insert c ~file:0 ~block:!i;
           ignore (Guest.Page_cache.touch c ~file:0 ~block:!i)))
  in
  let engine_events =
    Test.make ~name:"engine: schedule+run 100 events"
      (Staged.stage (fun () ->
           let e = Simkit.Engine.create () in
           for i = 1 to 100 do
             ignore
               (Simkit.Engine.schedule e ~delay:(float_of_int i) (fun () -> ()))
           done;
           Simkit.Engine.run e))
  in
  let simulated_warm_reboot =
    Test.make ~name:"simulate full warm reboot (2 VMs)"
      (Staged.stage (fun () ->
           let s =
             Rejuv.Scenario.create
               { Rejuv.Scenario.Config.default with vm_count = 2 }
           in
           Rejuv.Roothammer.start_and_run s;
           ignore
             (Rejuv.Roothammer.rejuvenate_blocking s
                ~strategy:Rejuv.Strategy.Warm)))
  in
  let tests =
    Test.make_grouped ~name:"mechanisms"
      [
        p2m_insert; p2m_lookup; frame_cycle; cache_ops; engine_events;
        simulated_warm_reboot;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name o acc -> (name, o) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) ->
        if est > 1e6 then pf "%-50s %12.2f ms/run@." name (est /. 1e6)
        else if est > 1e3 then pf "%-50s %12.2f us/run@." name (est /. 1e3)
        else pf "%-50s %12.1f ns/run@." name est
      | Some [] | None -> pf "%-50s (no estimate)@." name)
    rows

(* --- driver ---------------------------------------------------------------- *)

let sections =
  [
    ("fig4", fig4); ("fig5", fig5); ("reload", reload); ("fig6a", fig6a);
    ("fig6b", fig6b); ("avail", avail); ("fig7", fig7); ("fig8a", fig8a);
    ("fig8b", fig8b); ("fits", fits); ("policy", policy); ("fig9", fig9);
    ("migration", migration); ("ablation", ablation); ("cluster", cluster);
    ("fleet", fleet); ("parfleet", parfleet); ("memdyn", memdyn);
    ("traffic", traffic);
    ("sensitivity", sensitivity); ("faults", faults);
    ("sweep", sweep); ("eventcore", eventcore); ("micro", micro);
  ]

(* Simulator self-metrics per section: real wall time and the simulated
   events executed on this domain (sweep-based sections run their
   events in worker domains, so their count reflects only merge work —
   still a useful canary for accidental main-domain simulation). All
   informational: wall time is machine-dependent and never gated. *)
let timed tag f =
  let t0 = Unix.gettimeofday () in
  let ev0 = Simkit.Engine.domain_events_processed () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let events = Simkit.Engine.domain_events_processed () - ev0 in
  record_info (Printf.sprintf "self.%s.wall_s" tag) wall;
  record_info ~unit_:"events"
    (Printf.sprintf "self.%s.sim_events" tag)
    (float_of_int events);
  if wall > 0.0 && events > 0 then
    record_info ~unit_:"events/s"
      (Printf.sprintf "self.%s.events_per_s" tag)
      (float_of_int events /. wall)

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest ->
      jobs := max 1 (int_of_string n);
      parse acc rest
    | ("-o" | "--out") :: path :: rest ->
      bench_out := path;
      parse acc rest
    | tag :: rest -> parse (tag :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | tags -> tags
  in
  pf "RootHammer benchmark harness — Kourai & Chiba, DSN 2007 reproduction@.";
  List.iter
    (fun tag ->
      match List.assoc_opt tag sections with
      | Some f -> timed tag f
      | None ->
        pf "unknown section %S (available: %s)@." tag
          (String.concat ", " (List.map fst sections)))
    requested;
  write_bench_file ()
