(* Proactive rejuvenation driven by the aging model.

   Injects the Xen 3.0 heap-leak bugs the paper cites (changesets 9392,
   11752, 8640), monitors VMM heap usage, forecasts exhaustion with a
   linear fit, and triggers a warm-VM reboot before the heap runs out —
   while VM churn (domain create/destroy cycles) keeps aging the VMM.

   Run with: dune exec examples/aging_monitor.exe *)

let pf = Format.printf

let () =
  let scenario =
    Rejuv.Scenario.create { Rejuv.Scenario.Config.default with vm_count = 3 }
  in
  let vmm = Rejuv.Scenario.vmm scenario in
  let engine = Rejuv.Scenario.engine scenario in

  (* Aggressive aging so the demo converges quickly: 256 KiB lost per
     domain destroy, 64 KiB on error paths every ~2 minutes. *)
  let aging =
    Xenvmm.Aging.attach
      ~config:
        {
          Xenvmm.Aging.leak_per_domain_destroy_bytes = 256 * 1024;
          leak_per_error_path_bytes = 64 * 1024;
          error_path_mean_interval_s = 120.0;
          xenstore_leak_per_txn_bytes = 4096;
        }
      vmm
  in
  Rejuv.Roothammer.start_and_run scenario;
  pf "testbed up; VMM heap: %d KiB free@."
    (Xenvmm.Vmm_heap.free_bytes (Xenvmm.Vmm.heap vmm) / 1024);

  (* Background churn: a scratch VM is created and destroyed every
     5 minutes (each cycle triggers the changeset-9392 leak). *)
  let rec churn () =
    Xenvmm.Vmm.create_domain vmm ~name:"scratch"
      ~mem_bytes:(Simkit.Units.mib 256) (function
      | Error _ -> ()
      | Ok d ->
        ignore
          (Simkit.Engine.schedule engine ~delay:60.0 (fun () ->
               Xenvmm.Vmm.destroy_domain vmm d (fun () ->
                   Xenvmm.Aging.sample aging;
                   ignore
                     (Simkit.Engine.schedule engine ~delay:240.0 (fun () ->
                          churn ()))))))
  in
  churn ();

  (* The monitor: every 10 minutes, check the exhaustion forecast and
     rejuvenate when it comes within one hour. Routine forecast lines
     are throttled to one per half hour to keep the log readable. *)
  let rejuvenations = ref 0 in
  let last_report = ref neg_infinity in
  let report now line =
    if now -. !last_report >= 1800.0 then begin
      last_report := now;
      line ()
    end
  in
  let rec monitor () =
    let now = Simkit.Engine.now engine in
    let heap = Xenvmm.Vmm.heap vmm in
    let free_kib = Xenvmm.Vmm_heap.free_bytes heap / 1024 in
    (match
       Rejuv.Policy.Trigger.evaluate aging ~now
         ~lead_time_s:(Simkit.Units.hours 1.0)
     with
    | Rejuv.Policy.Trigger.No_action ->
      report now (fun () ->
          pf "t=%6.0f s  heap free %6d KiB  no aging trend@." now free_kib)
    | Rejuv.Policy.Trigger.Rejuvenate_within dt ->
      report now (fun () ->
          pf "t=%6.0f s  heap free %6d KiB  exhaustion forecast in %.0f min@."
            now free_kib (dt /. 60.0))
    | Rejuv.Policy.Trigger.Rejuvenate_now ->
      pf "t=%6.0f s  heap free %6d KiB  REJUVENATING (warm-VM reboot)@." now
        free_kib;
      incr rejuvenations;
      Rejuv.Roothammer.rejuvenate scenario ~strategy:Rejuv.Strategy.Warm
        (fun outcome ->
          match outcome.Rejuv.Recovery.fatal with
          | Some f ->
            pf "t=%6.0f s  rejuvenation FAILED: %s@."
              (Simkit.Engine.now engine)
              (Simkit.Fault.to_string f)
          | None ->
            pf "t=%6.0f s  rejuvenated: generation %d, heap free %d KiB@."
              (Simkit.Engine.now engine)
              (Xenvmm.Vmm.generation vmm)
              (Xenvmm.Vmm_heap.free_bytes (Xenvmm.Vmm.heap vmm) / 1024)));
    ignore (Simkit.Engine.schedule engine ~delay:600.0 monitor)
  in
  monitor ();
  Simkit.Engine.run ~until:(Simkit.Units.days 1.0) engine;

  pf "@.simulated %.1f days; %d proactive rejuvenations; heap never exhausted: %b@."
    (Simkit.Engine.now engine /. 86400.0)
    !rejuvenations
    (not (Xenvmm.Vmm_heap.exhausted (Xenvmm.Vmm.heap vmm)));
  List.iter
    (fun vm ->
      pf "%s up: %b@." (Rejuv.Scenario.vm_name vm) (Rejuv.Scenario.vm_is_up vm))
    (Rejuv.Scenario.vms scenario)
