(* Quickstart: build a consolidated host with two VMs, rejuvenate the
   VMM with a warm-VM reboot, and report the service downtime.

   Run with: dune exec examples/quickstart.exe *)

let () =
  Format.printf "RootHammer quickstart@.@.";

  (* A host modelled after the paper's testbed (12 GiB RAM, SCSI disk,
     GbE) running two 1 GiB VMs, each with an ssh server. *)
  let scenario =
    Rejuv.Scenario.create { Rejuv.Scenario.Config.default with vm_count = 2 }
  in
  Rejuv.Roothammer.start_and_run scenario;
  Format.printf "testbed up at t=%.1f s; VMs: %s@."
    (Simkit.Engine.now (Rejuv.Scenario.engine scenario))
    (String.concat ", "
       (List.map Rejuv.Scenario.vm_name (Rejuv.Scenario.vms scenario)));

  (* Watch each VM's service with a prober, as the paper measures
     downtime. *)
  let probers = Rejuv.Scenario.attach_probers scenario () in

  (* Rejuvenate the VMM: on-memory suspend, quick reload, on-memory
     resume. Guest OSes are not rebooted; page caches survive. *)
  let duration =
    Rejuv.Roothammer.rejuvenate_blocking scenario
      ~strategy:Rejuv.Strategy.Warm
  in
  (* Let the probers observe the recovered services. *)
  Rejuv.Roothammer.settle scenario ~seconds:2.0;
  List.iter Netsim.Prober.stop probers;
  Format.printf "warm-VM reboot completed in %.1f s@." duration;

  List.iter2
    (fun vm p ->
      let downtime =
        Option.value (Netsim.Prober.longest_outage p) ~default:0.0
      in
      Format.printf "  %s: downtime %.1f s, back up: %b@."
        (Rejuv.Scenario.vm_name vm) downtime (Rejuv.Scenario.vm_is_up vm))
    (Rejuv.Scenario.vms scenario)
    probers;

  let vmm = Rejuv.Scenario.vmm scenario in
  Format.printf "VMM generation: %d (heap leaks cleared: %b)@."
    (Xenvmm.Vmm.generation vmm)
    (Xenvmm.Vmm_heap.leaked_bytes (Xenvmm.Vmm.heap vmm) = 0)
