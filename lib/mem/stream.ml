type t = {
  cold : int;
  batch : int;
  tax_full_s : float;
  mutable remaining : int;
}

let create ~memdyn ~cold_bytes =
  let memdyn = Memdyn.validate memdyn in
  if cold_bytes < 0 then invalid_arg "Stream.create: cold_bytes must be >= 0";
  {
    cold = cold_bytes;
    batch = memdyn.Memdyn.stream_batch_bytes;
    tax_full_s = memdyn.Memdyn.fault_tax_s;
    remaining = cold_bytes;
  }

let cold_bytes t = t.cold
let remaining_bytes t = t.remaining
let next_batch_bytes t = min t.batch t.remaining

let note_paged_in t ~bytes_ =
  if bytes_ < 0 then invalid_arg "Stream.note_paged_in: bytes must be >= 0";
  t.remaining <- max 0 (t.remaining - bytes_)

let batches_outstanding t = (t.remaining + t.batch - 1) / t.batch
let complete t = t.remaining = 0

let fault_tax_s t =
  if t.cold = 0 || t.remaining = 0 then 0.0
  else t.tax_full_s *. float_of_int t.remaining /. float_of_int t.cold

let pp ppf t =
  Format.fprintf ppf "stream(%a of %a cold remaining, tax %a)"
    Simkit.Units.pp_bytes t.remaining Simkit.Units.pp_bytes t.cold
    Simkit.Units.pp_seconds (fault_tax_s t)
