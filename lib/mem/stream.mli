(** Bookkeeping for one in-flight streamed (demand-paged) restore.

    A streamed restore reads only the hot prefix of the saved image
    before resuming the domain; the remaining {e cold} pages fault in
    from disk in fixed-size batches while the guest already serves
    requests. Until the last batch lands, every guest request pays a
    latency tax that decays linearly with the cold fraction still on
    disk — the probability a request touches an unfaulted page.

    A value of this type hangs off the domain for the duration of the
    fault-in and is dropped when {!complete} turns true. It is pure
    bookkeeping: the actual disk reads are issued by the VMM's restore
    path against [Hw.Disk]. *)

type t

val create : memdyn:Memdyn.t -> cold_bytes:int -> t
(** [create ~memdyn ~cold_bytes] starts tracking a fault-in of
    [cold_bytes] (may be [0], in which case it is born complete). The
    fault-tax parameter is captured here so readers need no config. *)

val cold_bytes : t -> int
(** Total cold bytes at creation. *)

val remaining_bytes : t -> int
val next_batch_bytes : t -> int
(** Size of the next background read:
    [min stream_batch_bytes remaining]. [0] once complete. *)

val note_paged_in : t -> bytes_:int -> unit
(** Record that a batch landed. Clamps at zero remaining. *)

val batches_outstanding : t -> int
(** Batches still to be read ([ceil (remaining / batch)]); feeds the
    [restore.faults_outstanding] gauge. *)

val complete : t -> bool

val fault_tax_s : t -> float
(** Current per-request latency tax:
    [fault_tax_s × remaining / cold] — the cold-set miss probability
    times one disk fault. [0] when complete. *)

val pp : Format.formatter -> t -> unit
