(** Per-domain page-state model: a seeded working-set process plus a
    PML-style dirty bitmap, layered over the pfn space that
    [Xenvmm.P2m] maintains.

    Pages are in one of three states: {e resident} (backed by a machine
    frame), {e ballooned} (returned to the hypervisor by the balloon
    driver; always the tail of the pfn space, matching how
    [Vmm.balloon] shrinks the p2m), or {e cold-on-disk} during a
    streamed restore (tracked separately by {!Stream}).

    {b Determinism.} The tracker owns a private RNG seeded from
    [memdyn.seed] and a stable hash of the domain name — never from
    creation order or shard placement — so fleet partitioning cannot
    perturb the streams. Evolution is {e lazy and epoch-quantized}:
    nothing is scheduled on the engine (a perpetual sampler would stop
    [Engine.run] from ever draining); instead {!refresh} advances the
    process by exactly one fixed set of draws per elapsed
    [sample_interval_s], so the state at simulated time [t] is a pure
    function of [(seed, t)] regardless of how often or from where it
    was observed. All read accessors are draw-free and safe to call
    from metrics gauges. *)

type t

val create :
  memdyn:Memdyn.t -> name:string -> total_bytes:int -> now:float -> t
(** [create ~memdyn ~name ~total_bytes ~now] seeds the working-set
    process for a domain with [total_bytes] of configured RAM, anchored
    at simulated time [now]. Draws once to place the base working set
    within [working_set_fraction ± jitter]. *)

val refresh : t -> now:float -> unit
(** Advance the process to time [now]: one working-set draw, one
    dirty-rate draw and one dirty-run draw per whole elapsed sampling
    epoch. Idempotent within an epoch. *)

val cfg : t -> Memdyn.t
(** The configuration the tracker was created with. *)

val total_pages : t -> int
val resident_pages : t -> int
(** [total_pages - ballooned_pages]. *)

val resident_bytes : t -> int
val ballooned_pages : t -> int
val working_set_pages : t -> int
(** Current hot-set size, clamped to the resident range. *)

val working_set_bytes : t -> int

val dirty_pages : t -> int
(** Set bits in the dirty bitmap (pages touched since the last
    {!clear_dirty}). Saturates at the resident page count. *)

val clear_dirty : t -> unit
(** Reset the bitmap, as reading and clearing the PML log does. Called
    at suspend (the written image is the new clean snapshot) and after
    each migration pre-copy round. *)

val dirty_rate_factor : t -> float
(** Multiplicative modulation, in [[1 - 0.25, 1 + 0.25]], that the
    current epoch applies to the workload's static dirty rate. *)

val dirty_rate_pages_per_s : t -> float
(** Tracker-intrinsic dirty-rate estimate: the current working set is
    touched once per sampling epoch, modulated by
    {!dirty_rate_factor}. Feeds the [mem.dirty_rate] gauge. *)

val set_ballooned : t -> pages:int -> unit
(** Record that the tail [pages] of the pfn space are ballooned out.
    Shrinking residency clears dirty bits that fell off the end;
    re-inflating does not invent dirty pages.
    @raise Invalid_argument if [pages] is negative or >= total. *)

val pp : Format.formatter -> t -> unit
