type t = {
  cfg : Memdyn.t;
  total_pages : int;
  base_ws_pages : int;
  rng : Simkit.Rng.t;
  anchor : float;
  mutable epoch : int;
  mutable ws_pages : int;
  mutable rate_factor : float;
  mutable ballooned : int;
  bitmap : Bytes.t;
  mutable dirty : int;
}

(* Stable FNV-style string hash: the tracker seed must depend only on
   (memdyn seed, domain name), never on creation order or shard. *)
let hash_name s =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land max_int) s;
  !h

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let jittered rng ~base ~jitter =
  let u = Simkit.Rng.uniform rng in
  base *. (1.0 +. (jitter *. ((2.0 *. u) -. 1.0)))

let create ~memdyn ~name ~total_bytes ~now =
  let memdyn = Memdyn.validate memdyn in
  if total_bytes <= 0 then
    invalid_arg "Pagestate.create: total_bytes must be positive";
  let total_pages = Simkit.Units.pages_of_bytes total_bytes in
  let rng =
    Simkit.Rng.create ((memdyn.Memdyn.seed * 1_000_003) + hash_name name)
  in
  let base_fraction =
    clamp 0.01 0.99
      (jittered rng ~base:memdyn.Memdyn.working_set_fraction
         ~jitter:memdyn.Memdyn.working_set_jitter)
  in
  let base_ws_pages =
    clamp 1 total_pages
      (int_of_float (Float.round (base_fraction *. float_of_int total_pages)))
  in
  {
    cfg = memdyn;
    total_pages;
    base_ws_pages;
    rng;
    anchor = now;
    epoch = 0;
    ws_pages = base_ws_pages;
    rate_factor = 1.0;
    ballooned = 0;
    bitmap = Bytes.make ((total_pages + 7) / 8) '\000';
    dirty = 0;
  }

let cfg t = t.cfg
let total_pages t = t.total_pages
let resident_pages t = t.total_pages - t.ballooned
let resident_bytes t = resident_pages t * Simkit.Units.page_bytes
let ballooned_pages t = t.ballooned
let working_set_pages t = clamp 1 (resident_pages t) t.ws_pages
let working_set_bytes t = working_set_pages t * Simkit.Units.page_bytes
let dirty_pages t = t.dirty
let dirty_rate_factor t = t.rate_factor

let dirty_rate_pages_per_s t =
  t.rate_factor
  *. float_of_int (working_set_pages t)
  /. t.cfg.Memdyn.sample_interval_s

let bit_set t i = Char.code (Bytes.get t.bitmap (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i =
  if not (bit_set t i) then begin
    let byte = Char.code (Bytes.get t.bitmap (i lsr 3)) in
    Bytes.set t.bitmap (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))));
    t.dirty <- t.dirty + 1
  end

let clear_bit t i =
  if bit_set t i then begin
    let byte = Char.code (Bytes.get t.bitmap (i lsr 3)) in
    Bytes.set t.bitmap (i lsr 3) (Char.chr (byte land lnot (1 lsl (i land 7))));
    t.dirty <- t.dirty - 1
  end

let clear_dirty t =
  Bytes.fill t.bitmap 0 (Bytes.length t.bitmap) '\000';
  t.dirty <- 0

(* One sampling epoch: re-jitter the working set around its base, draw
   the epoch's dirty-rate modulation, and mark one contiguous run of
   working-set-many pages dirty at a random resident offset (wrapping).
   Exactly three RNG draws whatever the bitmap does, so the stream
   position is a pure function of the epoch count. *)
let advance_epoch t =
  let resident = resident_pages t in
  let factor =
    jittered t.rng ~base:1.0 ~jitter:t.cfg.Memdyn.working_set_jitter
  in
  t.ws_pages <-
    clamp 1 resident
      (int_of_float (Float.round (factor *. float_of_int t.base_ws_pages)));
  t.rate_factor <- 0.75 +. (0.5 *. Simkit.Rng.uniform t.rng);
  let start = Simkit.Rng.int t.rng (max 1 resident) in
  if t.dirty < resident then begin
    let run = min t.ws_pages resident in
    for i = 0 to run - 1 do
      set_bit t ((start + i) mod resident)
    done
  end;
  t.epoch <- t.epoch + 1

let refresh t ~now =
  let target =
    int_of_float ((now -. t.anchor) /. t.cfg.Memdyn.sample_interval_s)
  in
  while t.epoch < target do
    advance_epoch t
  done

let set_ballooned t ~pages =
  if pages < 0 || pages >= t.total_pages then
    invalid_arg "Pagestate.set_ballooned: pages outside [0, total)";
  if pages > t.ballooned then
    (* Shrinking residency: dirty bits past the new end fall off. *)
    for i = t.total_pages - pages to t.total_pages - t.ballooned - 1 do
      clear_bit t i
    done;
  t.ballooned <- pages

let pp ppf t =
  Format.fprintf ppf
    "pagestate(%d pages, %d resident, ws %d, %d dirty, %d ballooned)"
    t.total_pages (resident_pages t) (working_set_pages t) t.dirty t.ballooned
