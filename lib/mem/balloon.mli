(** Balloon-driver reclaim policy.

    Before a suspend, the balloon driver inflates to return idle pages
    to the hypervisor so the saved image shrinks from full RAM to
    O(resident − reclaimed). The policy keeps
    [working_set × balloon_headroom] pages resident — ballooning
    targets idle pages by definition, so the hot set (and with it the
    guest's page cache hit rate) is preserved — and never goes below
    [balloon_floor_bytes]. *)

val reclaim_target : Pagestate.t -> int
(** [reclaim_target ps] is how many {e additional} pages the driver
    should balloon out right now, given the tracker's current
    working-set estimate. Always in
    [[0, resident_pages ps - 1]]; [0] when the guest is already at or
    below its keep target. Draw-free: callers refresh the tracker
    first. *)

val keep_pages : Pagestate.t -> int
(** The resident size the policy aims for (working set × headroom,
    floored), in pages. *)
