type mode = Off | Balloon | Stream | Balloon_stream

let mode_enum =
  Simkit.Enum.make ~what:"memdyn"
    ~aliases:[ ("none", Off); ("full", Balloon_stream) ]
    [
      ("off", Off);
      ("balloon", Balloon);
      ("stream", Stream);
      ("balloon_stream", Balloon_stream);
    ]

let mode_name m = Simkit.Enum.name mode_enum m

type t = {
  mode : mode;
  working_set_fraction : float;
  working_set_jitter : float;
  sample_interval_s : float;
  balloon_floor_bytes : int;
  balloon_headroom : float;
  stream_batch_bytes : int;
  fault_tax_s : float;
  seed : int;
}

let off =
  {
    mode = Off;
    working_set_fraction = 0.35;
    working_set_jitter = 0.2;
    sample_interval_s = 5.0;
    balloon_floor_bytes = Simkit.Units.mib 64;
    balloon_headroom = 1.25;
    stream_batch_bytes = Simkit.Units.mib 2;
    fault_tax_s = 0.030;
    seed = 0;
  }

let default mode = { off with mode }

let validate t =
  let bad fmt = Format.kasprintf invalid_arg ("Memdyn.validate: " ^^ fmt) in
  if not (t.working_set_fraction > 0.0 && t.working_set_fraction < 1.0) then
    bad "working_set_fraction %g outside (0, 1)" t.working_set_fraction;
  if not (t.working_set_jitter >= 0.0 && t.working_set_jitter < 1.0) then
    bad "working_set_jitter %g outside [0, 1)" t.working_set_jitter;
  if t.sample_interval_s <= 0.0 then
    bad "sample_interval_s %g must be positive" t.sample_interval_s;
  if t.balloon_floor_bytes < 0 then
    bad "balloon_floor_bytes %d must be >= 0" t.balloon_floor_bytes;
  if t.balloon_headroom < 1.0 then
    bad "balloon_headroom %g must be >= 1" t.balloon_headroom;
  if t.stream_batch_bytes <= 0 then
    bad "stream_batch_bytes %d must be positive" t.stream_batch_bytes;
  if t.fault_tax_s < 0.0 then bad "fault_tax_s %g must be >= 0" t.fault_tax_s;
  t

let enabled t = t.mode <> Off

let balloon_enabled t =
  match t.mode with Balloon | Balloon_stream -> true | Off | Stream -> false

let stream_enabled t =
  match t.mode with Stream | Balloon_stream -> true | Off | Balloon -> false

let pp ppf t =
  Format.fprintf ppf "memdyn(%s, ws %.2f±%.2f, epoch %gs, floor %a)"
    (mode_name t.mode) t.working_set_fraction t.working_set_jitter
    t.sample_interval_s Simkit.Units.pp_bytes t.balloon_floor_bytes
