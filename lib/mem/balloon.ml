let keep_pages ps =
  let cfg_floor memdyn =
    Simkit.Units.pages_of_bytes memdyn.Memdyn.balloon_floor_bytes
  in
  let memdyn = Pagestate.cfg ps in
  let want =
    int_of_float
      (Float.round
         (memdyn.Memdyn.balloon_headroom
         *. float_of_int (Pagestate.working_set_pages ps)))
  in
  let keep = max want (cfg_floor memdyn) in
  (* Keep at least one page and never more than what exists. *)
  min (max 1 keep) (Pagestate.total_pages ps)

let reclaim_target ps =
  let resident = Pagestate.resident_pages ps in
  let keep = keep_pages ps in
  (* Leave at least one resident page so the domain stays viable. *)
  max 0 (min (resident - keep) (resident - 1))
