(** Memory-dynamics configuration: what the simulator assumes about
    guest memory between "every page always resident" (the paper's
    model) and the ballooning / demand-paged-streaming techniques of
    the follow-on literature.

    One value of {!t} is attached to a VMM ({!Xenvmm.Vmm.set_memdyn})
    and governs every domain it hosts. The default is {!off}, which
    must be — and is tested to be — behaviourally invisible: no
    trackers, no extra events, no RNG draws, byte-identical seeded
    output. *)

type mode =
  | Off  (** Saved image is the full RAM; restore is stop-and-copy. *)
  | Balloon
      (** Reclaim idle pages before suspend so the image shrinks to
          O(resident − reclaimed). *)
  | Stream
      (** Restore only the working set before resuming; cold pages
          fault in over disk bandwidth while the guest serves. *)
  | Balloon_stream  (** Both techniques combined. *)

val mode_enum : mode Simkit.Enum.t
(** CLI-facing names: [off], [balloon], [stream], [balloon_stream]
    (alias [none] for [off], [full] for [balloon_stream]). *)

val mode_name : mode -> string

type t = {
  mode : mode;
  working_set_fraction : float;
      (** Mean fraction of configured RAM that is hot (touched within a
          sampling epoch). Default 0.35 — a web/app guest keeps roughly
          a third of its RAM warm. *)
  working_set_jitter : float;
      (** Half-width of the per-epoch multiplicative jitter applied to
          the working set, in fractions of its base size. Default 0.2. *)
  sample_interval_s : float;
      (** Dirty-bitmap / working-set sampling epoch (the PML log-read
          cadence). Default 5 s. *)
  balloon_floor_bytes : int;
      (** Resident memory the balloon driver never reclaims below,
          whatever the working set says. Default 64 MiB. *)
  balloon_headroom : float;
      (** The balloon target keeps [working_set * headroom] resident.
          Default 1.25. *)
  stream_batch_bytes : int;
      (** Background fault-in granularity of the streamed restore.
          Default 2 MiB. *)
  fault_tax_s : float;
      (** Worst-case per-request latency tax while the whole cold set
          is still on disk; decays linearly as pages arrive. Default
          30 ms (one random read on 2007 spindles). *)
  seed : int;
      (** Base seed for the per-domain working-set processes; combined
          with a stable hash of the domain name so partitioning and
          creation order cannot change the streams. *)
}

val off : t
(** [mode = Off] with every knob at its default. *)

val default : mode -> t
(** Defaults with the given mode. *)

val validate : t -> t
(** Returns its argument.
    @raise Invalid_argument if a fraction is outside its range or a
    size/interval is non-positive. *)

val enabled : t -> bool
(** [mode <> Off]. *)

val balloon_enabled : t -> bool
val stream_enabled : t -> bool

val pp : Format.formatter -> t -> unit
