(** Time-series collection for experiment output.

    {!t} stores raw (time, value) samples; {!Counter} turns discrete
    events (e.g. completed HTTP requests) into a windowed rate series,
    which is how the paper reports web-server throughput over time. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> time:float -> float -> unit
val length : t -> int

val to_list : t -> (float * float) list
(** Samples in insertion (time) order. *)

val values : t -> float list
val last : t -> (float * float) option

val between : t -> lo:float -> hi:float -> (float * float) list
(** Samples with [lo <= time <= hi]. *)

val min_value : t -> float option
val max_value : t -> float option

(** Event counter with rate sampling. *)
module Counter : sig
  type nonrec t

  val create : ?name:string -> ?window:float -> unit -> t
  (** [window] (default 1 s, must be positive) sizes the streaming
      buckets behind {!last_window_rate}. *)

  val name : t -> string
  val window : t -> float

  val record : t -> time:float -> unit
  (** Note one event (e.g. one served request) at a timestamp.
      Timestamps must be non-decreasing for the streaming window
      tally to be meaningful (simulated time always is). *)

  val total : t -> int
  (** Events recorded so far. O(1). *)

  val last_window_rate : t -> now:float -> float
  (** Events per second over the last {e completed} [window]-sized
      bucket before [now] (buckets are aligned to multiples of
      [window]). O(1) — unlike {!rate_series}, nothing is rebuilt —
      which is what the metrics plane samples on every snapshot. A
      bucket with no events reads 0. *)

  val rate_series : t -> window:float -> ?until:float -> unit -> (float * float) list
  (** Events per second in consecutive windows of [window] seconds,
      starting at time 0 and covering through the last event (or
      [until]). Each sample is (window end time, rate). *)

  val rate_between : t -> lo:float -> hi:float -> float
  (** Average events per second over a closed interval. *)
end
