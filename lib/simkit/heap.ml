type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 16

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* [e1] sorts before [e2] when its key is smaller, with the insertion
   sequence number breaking ties so that equal-key entries stay FIFO. *)
let before e1 e2 =
  e1.key < e2.key || (e1.key = e2.key && e1.seq < e2.seq)

let grow t =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let new_capacity = if capacity = 0 then initial_capacity else 2 * capacity in
    let data = Array.make new_capacity t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && before t.data.(left) t.data.(!smallest) then
    smallest := left;
  if right < t.size && before t.data.(right) t.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then
    t.data <- Array.make initial_capacity entry
  else grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min t =
  if t.size = 0 then None
  else
    let e = t.data.(0) in
    Some (e.key, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (e.key, e.value)
  end

let clear t =
  t.size <- 0;
  t.data <- [||]

let drain t =
  let rec go acc =
    match pop t with Some kv -> go (kv :: acc) | None -> List.rev acc
  in
  go []

let filter_inplace t ~keep =
  let n = t.size in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let e = t.data.(i) in
    if keep e.value then begin
      t.data.(!kept) <- e;
      incr kept
    end
  done;
  t.size <- !kept;
  if t.size = 0 then t.data <- [||]
  else begin
    (* Release dropped values to the GC, then restore the heap shape.
       Entries keep their sequence numbers, so FIFO tie-breaking against
       both surviving and future entries is unchanged. *)
    for i = t.size to n - 1 do
      t.data.(i) <- t.data.(0)
    done;
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done
  end;
  n - !kept
