(** Conservative parallel coordinator: N {!Engine} shards on N domains.

    A partitioned simulation places mutually-independent component
    stacks on separate shards (each a full {!Engine} with its own clock
    and queue) and declares the cross-shard couplings as directed
    channels, each with a positive {e lookahead} — a lower bound on how
    far in the future anything sent over it must land (for a network
    link, its minimum latency).

    Time then advances in barrier-synchronized rounds in the
    YAWNS/Chandy–Misra style: between rounds the coordinator drains the
    channels, and each shard is released to execute events strictly
    below

    {v min over inbound channels (sender's next event + lookahead) v}

    optionally capped at the next {e quantum} barrier — a fixed
    absolute time grid on which the caller's [on_quantum] callback runs
    with every worker parked, the hook for a global control plane
    ([Rejuv.Fleet]'s admission guard).

    {b Determinism.} Cross-shard events are merged into the destination
    sorted by (timestamp, sender shard, per-channel sequence), never by
    arrival order, and the 1-shard case runs the very same round loop
    inline — a seeded simulation whose shards share no mutable state
    and whose cross-shard coupling flows through [send]/[on_quantum]
    produces byte-identical results for any shard count and any worker
    interleaving.

    {b Threading.} [create], [connect], [run] and everything else here
    belong to one owning domain (the coordinator). [send] alone may
    also be called from within a shard's events during a round. All
    shard engines are plain single-domain {!Engine} values; the round
    barrier provides the happens-before edges between their worker and
    the coordinator. *)

type t

val create :
  ?seed:int ->
  ?queue:Eventq.backend ->
  ?compaction:Engine.compaction ->
  ?quantum:float ->
  shards:int ->
  unit ->
  t
(** [shards] engines (each seeded with the same [seed] — derive
    per-component streams from stable component identities, not from
    shard-local split order, to keep runs partition-invariant).
    [quantum], when given, must be positive and fixes the absolute
    barrier grid [quantum, 2*quantum, ...] for the engine's whole life.
    Raises [Invalid_argument] on [shards < 1] or a non-positive
    quantum. *)

val shards : t -> int
val shard : t -> int -> Engine.t
(** The shard engines. Between [run] calls (and inside [on_quantum])
    the coordinator may freely schedule on and read any of them. *)

val quantum : t -> float option

val last_quantum : t -> float
(** Time of the most recent quantum barrier crossed (0 before the
    first); the coordinator's "now", stable across {!run} calls. *)

val connect : t -> src:int -> dst:int -> lookahead:float -> unit
(** Declare the directed coupling [src -> dst]. Repeated connects keep
    the {e minimum} lookahead, so a channel carrying several links ends
    up with the tightest bound. Raises [Invalid_argument] when
    [src = dst] or [lookahead <= 0]. *)

val lookahead : t -> src:int -> dst:int -> float option
(** Registered lookahead of the pair, if connected. *)

val send : t -> src:int -> dst:int -> time:float -> (unit -> unit) -> unit
(** Deliver an event to shard [dst] at absolute [time]. With
    [src = dst] this is a plain [Engine.schedule_at]. Across shards the
    pair must be {!connect}ed and [time >= now(src) + lookahead] must
    hold (fails with [Fault.Invariant] otherwise) — the guarantee the
    whole protocol rests on. Delivery is deferred to the next round
    boundary and ordered by (time, sender shard, channel sequence). *)

val run :
  ?until:float -> ?on_quantum:(float -> [ `Continue | `Stop ]) -> t -> unit
(** Drive the shards, spawning one worker domain per shard beyond the
    first (the first runs inline on the caller). Stops when every queue
    and channel is drained — or, with [until], when nothing at or below
    [until] remains (shard clocks are {e not} advanced to [until]); or
    when [on_quantum] returns [`Stop].

    [on_quantum q] fires on the caller's domain at every grid point [q]
    once all shards have drained up to it, with all workers parked.
    With [on_quantum] present the loop keeps crossing barriers even
    when all queues are empty — pair it with {!idle} (or [`Stop]) so a
    wedged simulation terminates. An exception raised by any shard's
    event stops the run at the next barrier and is re-raised on the
    caller after the workers are joined.

    Worker domains' executed-event counts are credited back to the
    caller via {!Engine.add_domain_events}, so per-run accounting (the
    sweep runner) sees the whole partitioned run. May be called
    repeatedly; the quantum grid does not restart. *)

val idle : t -> bool
(** No live event pending on any shard and no message in any channel.
    Coordinator-only (call it between runs or inside [on_quantum]). *)

type stats = {
  par_shards : int;
  par_rounds : int;  (** barrier rounds driven so far *)
  par_quantum_ticks : int;  (** [on_quantum] barrier times reached *)
  par_messages : int;  (** cross-shard events delivered *)
  par_barrier_waits : int;  (** worker parks on the round barrier *)
  par_max_skew_s : float;  (** max inter-shard clock spread observed *)
  par_min_lookahead_s : float;  (** [infinity] when nothing is connected *)
}

val stats : t -> stats
(** Protocol counters, exported as gauges by
    [Obs.instrument_par_engine]. *)
