(** Growable float vector: amortized O(1) append, O(1) indexed read.

    The hot-path replacement for "accumulate a [float list] newest-first
    and [List.rev] it on every query": appends never rebuild anything
    and readers walk the samples in insertion order for free. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty vector; [capacity] (default 16) pre-sizes the backing array. *)

val length : t -> int

val push : t -> float -> unit
(** Append one value. Amortized O(1) (the backing array doubles). *)

val get : t -> int -> float
(** [get t i] is the [i]-th value pushed (0-based). Raises
    [Invalid_argument] out of bounds. *)

val iter : t -> f:(float -> unit) -> unit
(** In insertion order. *)

val to_list : t -> float list
(** In insertion order. *)

val clear : t -> unit
(** Drop all values; capacity is retained. *)
