(** Typed fault taxonomy and deterministic fault-injection plane.

    Every layer of the simulator reports failures as a [Fault.t] value
    carried on a [('a, Fault.t) result] CPS channel instead of aborting
    the process with an untyped [Failure].  Faults are plain immutable
    data:
    they marshal, compare structurally, and render to stable ids for
    CSV/JSON export.

    The {!Plan} sub-module is a seeded registry of named injection
    points ("vmm.suspend", "disk.write", ...) armed with per-site
    triggers.  Components consult their scenario's plan at each site;
    a fired trigger makes the component return the corresponding fault
    through its ordinary error channel, so recovery paths can be
    exercised deterministically. *)

type t =
  | Disk_full  (** Backing store has no room for a saved image. *)
  | Out_of_memory  (** Machine memory exhausted. *)
  | Heap_exhausted  (** VMM heap cannot hold the bookkeeping. *)
  | Vmm_down  (** Operation needs a running VMM. *)
  | Bad_domain_state of string  (** Domain is in the wrong state. *)
  | Image_lost of string  (** Preserved/saved image vanished across reboot. *)
  | No_image_staged  (** Quick reload with nothing staged. *)
  | Suspend_failed of string  (** Named domain failed to suspend. *)
  | Resume_failed of string  (** Named domain failed to resume/restore. *)
  | Reload_failed  (** The quick reload of the VMM image failed. *)
  | Driver_timeout of string  (** Driver VM did not reprovision in time. *)
  | Boot_failed of string  (** A boot step did not come back. *)
  | Not_recovered of string  (** Recovery policy exhausted; subject lost. *)
  | Stalled of string  (** Simulation drained with the step incomplete. *)
  | Timeout of { what : string; deadline_s : float }
      (** Step missed an explicit simulated-time deadline. *)
  | Invariant of string  (** Internal invariant violated (a bug). *)

exception Error of t
(** Escape hatch for contexts with no result channel (drivers, test
    harnesses).  Library code raises it only via {!fail}. *)

val fail : t -> 'a
(** [fail f] raises {!Error}. *)

val id : t -> string
(** Stable machine-readable tag, e.g. ["resume_failed"]. Suitable for
    CSV columns and JSON discriminators. *)

val to_string : t -> string
(** Human-readable one-liner including the payload. *)

val pp : Format.formatter -> t -> unit

val injection_sites : (string * string) list
(** Canonical named injection points as [(site, doc)] pairs, in stable
    (sorted) order:
    ["disk.write"], ["driver.reprovision"], ["vmm.reload"],
    ["vmm.suspend"], ["xend.resume"]. *)

val is_injection_site : string -> bool

(** A deterministic, seeded schedule of faults to inject. *)
module Plan : sig
  type t

  type trigger =
    | Never
    | Always
    | On_nth of int  (** Fire on exactly the [n]-th call (1-based). *)
    | Prob of float  (** Fire each call with probability [p]. *)

  val create : ?seed:int -> unit -> t
  (** A plan with no armed sites. [seed] (default 0) feeds the per-site
      RNG streams used by [Prob] triggers. *)

  val arm : t -> site:string -> trigger -> unit
  (** Arms [site] with [trigger], resetting its call/fired counters.
      Each armed site gets its own split RNG stream at arm time, so
      firing decisions are independent of call interleaving across
      sites. Raises {!Error} [(Invariant _)] if [site] is not one of
      {!injection_sites}. *)

  val disarm : t -> site:string -> unit

  val fires : t -> site:string -> bool
  (** Consulted by components at the injection point. Counts the call
      and evaluates the trigger. Unarmed sites never fire. *)

  val calls : t -> site:string -> int
  (** Times [fires] was consulted for [site] since it was armed. *)

  val fired : t -> site:string -> int
  (** Times [fires] returned [true] for [site] since it was armed. *)

  val total_fired : t -> int

  val armed_sites : t -> string list
  (** Sorted. *)
end
