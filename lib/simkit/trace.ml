type span = {
  label : string;
  start : float;
  mutable stop : float option;
}

type t = {
  engine : Engine.t;
  mutable all_spans : span list; (* newest first *)
  mutable marks : (string * float) list; (* newest first *)
}

let create engine = { engine; all_spans = []; marks = [] }

let engine t = t.engine

let begin_span t label =
  let s = { label; start = Engine.now t.engine; stop = None } in
  t.all_spans <- s :: t.all_spans;
  s

let end_span t s =
  match s.stop with
  | Some _ -> ()
  | None -> s.stop <- Some (Engine.now t.engine)

let instant t label = t.marks <- (label, Engine.now t.engine) :: t.marks

let spans t =
  List.rev_map
    (fun s ->
      match s.stop with
      | Some stop -> Some (s.label, s.start, stop)
      | None -> None)
    t.all_spans
  |> List.filter_map Fun.id

let instants t = List.rev t.marks

(* duration / find_span answer point queries; walking the raw span
   list once per query avoids rebuilding the full completed-span view
   (and, previously, walking it a second time just to learn whether
   the label occurred at all). *)

let duration t label =
  let total, found =
    List.fold_left
      (fun ((total, _) as acc) s ->
        match s.stop with
        | Some stop when String.equal s.label label ->
          (total +. (stop -. s.start), true)
        | _ -> acc)
      (0.0, false) t.all_spans
  in
  if found then Some total else None

let find_span t label =
  (* [all_spans] is newest-first; keep overwriting so the last match
     seen — the oldest, i.e. first in start order — wins. *)
  List.fold_left
    (fun acc s ->
      match s.stop with
      | Some stop when String.equal s.label label -> Some (s.start, stop)
      | _ -> acc)
    None t.all_spans

let clear t =
  t.all_spans <- [];
  t.marks <- []

let pp ppf t =
  List.iter
    (fun (label, start, stop) ->
      Format.fprintf ppf "%8.2f .. %8.2f  (%6.2f s)  %s@." start stop
        (stop -. start) label)
    (spans t)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun (label, start, stop) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"X","ts":%.0f,"dur":%.0f,"pid":1,"tid":1}|}
           (json_escape label) (start *. 1e6)
           ((stop -. start) *. 1e6)))
    (spans t);
  List.iter
    (fun (label, time) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"i","ts":%.0f,"pid":1,"tid":1,"s":"g"}|}
           (json_escape label) (time *. 1e6)))
    (instants t);
  Buffer.add_string buf "]";
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kind,label,start_s,stop_s\n";
  List.iter
    (fun (label, start, stop) ->
      Buffer.add_string buf
        (Printf.sprintf "span,%s,%.3f,%.3f\n" (csv_escape label) start stop))
    (spans t);
  List.iter
    (fun (label, time) ->
      Buffer.add_string buf
        (Printf.sprintf "instant,%s,%.3f,%.3f\n" (csv_escape label) time time))
    (instants t);
  Buffer.contents buf
