(** Stable binary min-heap keyed by a float priority.

    Entries with equal keys are returned in insertion order, which the
    simulation engine relies on to make event execution deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of entries currently in the heap. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** [add t ~key v] inserts [v] with priority [key]. O(log n). *)

val min : 'a t -> (float * 'a) option
(** Smallest entry without removing it, or [None] if empty. O(1). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest entry. Ties are popped in insertion
    order. O(log n). *)

val clear : 'a t -> unit
(** Remove every entry. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything: the heap's remaining entries in (key, FIFO) order,
    leaving it empty. O(n log n). *)

val filter_inplace : 'a t -> keep:('a -> bool) -> int
(** [filter_inplace t ~keep] drops every entry whose value fails [keep]
    and returns how many were dropped. O(n). Surviving entries keep
    their insertion sequence numbers, so FIFO ordering of equal keys —
    including against entries added later — is preserved. *)
