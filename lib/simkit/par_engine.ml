(* Conservative parallel coordinator over an array of Engine shards.

   Classic null-message-free PDES in the YAWNS/Chandy–Misra family:
   time advances in rounds. At a round boundary every shard is parked,
   the coordinator drains the cross-shard channels in a deterministic
   order, computes for each shard a lower bound on the timestamp of
   anything a neighbour could still send it

     lbts(dst) = min over connected src of
                   (src's next event time + lookahead(src -> dst))

   and then releases each shard to execute events strictly below
   min(lbts, next quantum barrier, until). With every lookahead > 0
   the globally-earliest shard always makes progress, so the protocol
   cannot deadlock.

   Determinism: messages crossing shards carry (timestamp, sender
   shard, per-channel sequence) and are merged into the destination
   queue sorted by exactly that triple — never by arrival order — so a
   seeded run is byte-identical for any worker interleaving. The
   1-shard case runs fully inline through the *same* round loop, which
   is what lets callers (Rejuv.Fleet) promise byte-identical output
   for partitions=1 vs partitions=N.

   Threading: shard i is touched only by its worker during a round and
   only by the coordinator between rounds; the barrier mutex provides
   the happens-before edges, so no other synchronization is needed on
   the engines themselves. The [on_quantum] callback always runs on
   the coordinator's domain with every worker parked — it may freely
   read and schedule on any shard. *)

(* One directed cross-shard mailbox. [ch_seq] is written only by the
   sending shard (inside the lock), and the queue is drained only by
   the coordinator between rounds. *)
type channel = {
  ch_lock : Mutex.t;
  ch_q : (float * int * (unit -> unit)) Queue.t;  (* time, seq, event *)
  mutable ch_seq : int;
  mutable ch_lookahead : float;
}

type stats = {
  par_shards : int;
  par_rounds : int;  (** barrier rounds driven so far *)
  par_quantum_ticks : int;  (** [on_quantum] barrier times reached *)
  par_messages : int;  (** cross-shard events delivered *)
  par_barrier_waits : int;  (** worker parks on the round barrier *)
  par_max_skew_s : float;  (** max inter-shard clock spread observed *)
  par_min_lookahead_s : float;  (** [infinity] when nothing is connected *)
}

type t = {
  shards : Engine.t array;
  chans : channel option array array;  (* chans.(src).(dst) *)
  quantum : float option;
  lock : Mutex.t;
  work : Condition.t;  (* coordinator -> workers: new round *)
  donec : Condition.t;  (* workers -> coordinator: round finished *)
  bounds : float array;  (* per-shard exclusive bound for this round *)
  seen : int array;  (* worker i's last completed epoch *)
  mutable epoch : int;
  mutable live : bool;  (* false parks workers permanently *)
  mutable done_count : int;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable next_q : float;  (* next quantum barrier (absolute grid) *)
  mutable rounds : int;
  mutable ticks : int;
  mutable messages : int;
  mutable barrier_waits : int;
  mutable max_skew : float;
}

let create ?(seed = 42) ?queue ?compaction ?quantum ~shards () =
  if shards < 1 then invalid_arg "Par_engine.create: shards < 1";
  (match quantum with
  | Some q when q <= 0.0 -> invalid_arg "Par_engine.create: quantum <= 0"
  | _ -> ());
  {
    shards =
      Array.init shards (fun _ -> Engine.create ~seed ?queue ?compaction ());
    chans = Array.make_matrix shards shards None;
    quantum;
    lock = Mutex.create ();
    work = Condition.create ();
    donec = Condition.create ();
    bounds = Array.make shards infinity;
    seen = Array.make shards 0;
    epoch = 0;
    live = false;
    done_count = 0;
    failure = None;
    next_q = (match quantum with Some q -> q | None -> infinity);
    rounds = 0;
    ticks = 0;
    messages = 0;
    barrier_waits = 0;
    max_skew = 0.0;
  }

let shards t = Array.length t.shards

let check_rank t what i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg (Printf.sprintf "Par_engine.%s: shard %d out of range" what i)

let shard t i =
  check_rank t "shard" i;
  t.shards.(i)

let quantum t = t.quantum

(* Time of the last quantum barrier crossed — the coordinator's notion
   of "now", stable across [run] calls because the grid is absolute. *)
let last_quantum t =
  match t.quantum with None -> 0.0 | Some q -> t.next_q -. q

let connect t ~src ~dst ~lookahead =
  check_rank t "connect" src;
  check_rank t "connect" dst;
  if src = dst then invalid_arg "Par_engine.connect: src = dst";
  if not (lookahead > 0.0) then
    invalid_arg "Par_engine.connect: lookahead must be positive";
  match t.chans.(src).(dst) with
  | Some c -> c.ch_lookahead <- Float.min c.ch_lookahead lookahead
  | None ->
    t.chans.(src).(dst) <-
      Some
        {
          ch_lock = Mutex.create ();
          ch_q = Queue.create ();
          ch_seq = 0;
          ch_lookahead = lookahead;
        }

let lookahead t ~src ~dst =
  check_rank t "lookahead" src;
  check_rank t "lookahead" dst;
  Option.map (fun c -> c.ch_lookahead) t.chans.(src).(dst)

let min_lookahead t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc -> function
          | None -> acc
          | Some c -> Float.min acc c.ch_lookahead)
        acc row)
    infinity t.chans

let send t ~src ~dst ~time f =
  check_rank t "send" src;
  check_rank t "send" dst;
  if src = dst then ignore (Engine.schedule_at t.shards.(src) ~time f)
  else
    match t.chans.(src).(dst) with
    | None ->
      Fault.fail
        (Fault.Invariant
           (Printf.sprintf "Par_engine.send: shards %d -> %d not connected"
              src dst))
    | Some c ->
      let now = Engine.now t.shards.(src) in
      if time < now +. c.ch_lookahead then
        Fault.fail
          (Fault.Invariant
             (Printf.sprintf
                "Par_engine.send: time %g under lookahead (now %g + %g)" time
                now c.ch_lookahead));
      Mutex.lock c.ch_lock;
      let seq = c.ch_seq in
      c.ch_seq <- seq + 1;
      Queue.push (time, seq, f) c.ch_q;
      Mutex.unlock c.ch_lock

(* Coordinator-only, workers parked: drain every inbound channel of
   [dst] and schedule the messages sorted by (time, sender, sequence).
   Sorting here — not at send time — is what erases arrival order. *)
let merge t =
  let s = Array.length t.shards in
  for dst = 0 to s - 1 do
    let batch = ref [] in
    for src = 0 to s - 1 do
      match t.chans.(src).(dst) with
      | None -> ()
      | Some c ->
        Mutex.lock c.ch_lock;
        while not (Queue.is_empty c.ch_q) do
          let time, seq, f = Queue.pop c.ch_q in
          batch := (time, src, seq, f) :: !batch
        done;
        Mutex.unlock c.ch_lock
    done;
    if !batch <> [] then
      List.sort
        (fun (ta, sa, qa, _) (tb, sb, qb, _) ->
          compare (ta, sa, qa) (tb, sb, qb))
        !batch
      |> List.iter (fun (time, _, _, f) ->
             t.messages <- t.messages + 1;
             ignore (Engine.schedule_at t.shards.(dst) ~time f))
  done

let channels_empty t =
  Array.for_all
    (fun row ->
      Array.for_all
        (function
          | None -> true
          | Some c ->
            Mutex.lock c.ch_lock;
            let e = Queue.is_empty c.ch_q in
            Mutex.unlock c.ch_lock;
            e)
        row)
    t.chans

let idle t =
  channels_empty t
  && Array.for_all (fun e -> Engine.next_event_time e = None) t.shards

let lbts t ~next dst =
  let s = Array.length t.shards in
  let b = ref infinity in
  for src = 0 to s - 1 do
    if src <> dst then
      match t.chans.(src).(dst) with
      | None -> ()
      | Some c -> b := Float.min !b (next.(src) +. c.ch_lookahead)
  done;
  !b

let record_failure t e =
  let bt = Printexc.get_raw_backtrace () in
  Mutex.lock t.lock;
  if t.failure = None then t.failure <- Some (e, bt);
  Mutex.unlock t.lock

(* Worker loop for shard [i]: park on the barrier, run the assigned
   window, report back; returns the domain's event counter so the
   coordinator can credit the events to the calling domain. *)
let worker t i =
  let continue = ref true in
  while !continue do
    Mutex.lock t.lock;
    while t.live && t.epoch = t.seen.(i) do
      t.barrier_waits <- t.barrier_waits + 1;
      Condition.wait t.work t.lock
    done;
    if not t.live then begin
      continue := false;
      Mutex.unlock t.lock
    end
    else begin
      let ep = t.epoch and b = t.bounds.(i) in
      Mutex.unlock t.lock;
      (try Engine.run_before t.shards.(i) ~bound:b
       with e -> record_failure t e);
      Mutex.lock t.lock;
      t.seen.(i) <- ep;
      t.done_count <- t.done_count + 1;
      Condition.signal t.donec;
      Mutex.unlock t.lock
    end
  done;
  Engine.domain_events_processed ()

let observe_skew t =
  if Array.length t.shards > 1 then begin
    let mn = ref infinity and mx = ref neg_infinity in
    Array.iter
      (fun e ->
        let c = Engine.now e in
        if c < !mn then mn := c;
        if c > !mx then mx := c)
      t.shards;
    t.max_skew <- Float.max t.max_skew (!mx -. !mn)
  end

(* One synchronized round: publish bounds, run shard 0 inline on the
   coordinator, wait for the workers, observe. *)
let drive_round t bounds =
  let s = Array.length t.shards in
  t.rounds <- t.rounds + 1;
  if s = 1 then Engine.run_before t.shards.(0) ~bound:bounds.(0)
  else begin
    Mutex.lock t.lock;
    Array.blit bounds 0 t.bounds 0 s;
    t.epoch <- t.epoch + 1;
    t.done_count <- 0;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (try Engine.run_before t.shards.(0) ~bound:bounds.(0)
     with e -> record_failure t e);
    Mutex.lock t.lock;
    while t.done_count < s - 1 do
      Condition.wait t.donec t.lock
    done;
    Mutex.unlock t.lock
  end;
  observe_skew t

let run ?until ?on_quantum t =
  let s = Array.length t.shards in
  (* Inclusive [until]: the next float above it is the exclusive bound. *)
  let until_bound =
    match until with None -> infinity | Some u -> Float.succ u
  in
  t.live <- true;
  t.epoch <- 0;
  Array.fill t.seen 0 s 0;
  t.done_count <- 0;
  t.failure <- None;
  let doms =
    Array.init (s - 1) (fun k ->
        Domain.spawn (fun () -> worker t (k + 1)))
  in
  let finish () =
    Mutex.lock t.lock;
    t.live <- false;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter (fun d -> Engine.add_domain_events (Domain.join d)) doms;
    match t.failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  in
  Fun.protect ~finally:finish @@ fun () ->
  let stop = ref false in
  while not !stop do
    merge t;
    let next =
      Array.map
        (fun e -> Option.value (Engine.next_event_time e) ~default:infinity)
        t.shards
    in
    let global_min = Array.fold_left Float.min infinity next in
    let tickable = Option.is_some on_quantum && t.next_q < until_bound in
    if global_min >= until_bound && not tickable then stop := true
    else if global_min >= t.next_q then begin
      (* Every shard has drained up to the barrier: cross it. *)
      let q = t.next_q in
      t.next_q <- t.next_q +. Option.value t.quantum ~default:infinity;
      if q < until_bound then begin
        t.ticks <- t.ticks + 1;
        match on_quantum with
        | Some f when f q = `Stop -> stop := true
        | Some _ | None -> ()
      end
    end
    else begin
      let bounds =
        Array.init s (fun i ->
            Float.min (lbts t ~next i) (Float.min t.next_q until_bound))
      in
      drive_round t bounds;
      if t.failure <> None then stop := true
    end
  done

let stats t =
  {
    par_shards = Array.length t.shards;
    par_rounds = t.rounds;
    par_quantum_ticks = t.ticks;
    par_messages = t.messages;
    par_barrier_waits = t.barrier_waits;
    par_max_skew_s = t.max_skew;
    par_min_lookahead_s = min_lookahead t;
  }
