type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (Stdlib.max capacity 1) 0.0; len = 0 }

let length t = t.len

let push t v =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get: index out of bounds";
  t.data.(i)

let iter t ~f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))

let clear t = t.len <- 0
