(* The whole single-clock engine lives in [Shard]: a partitioned
   simulation (Par_engine) owns one shard per domain, while the
   classic single-threaded simulation is simply the 1-shard case —
   [include Shard] below keeps every existing call site compiling
   against the top-level names. *)
module Shard = struct
  type handle = {
    mutable cancelled : bool;
    mutable fired : bool;
    action : unit -> unit;
  }

  type compaction = [ `Auto | `Threshold of float | `Off ]

  type t = {
    mutable clock : float;
    queue : handle Eventq.t;
    mutable processed : int;
    mutable scheduled : int;
    mutable tombstones : int;
    mutable compactions : int;
    compact_above : float option;  (* tombstone/pending ratio; None = off *)
    root_rng : Rng.t;
  }

  (* Per-domain default backend, so whole-program runs (experiments build
     their own engines deep inside Scenario) can be steered onto one
     backend without threading a parameter through every layer. *)
  let default_queue_key = Domain.DLS.new_key (fun () -> ref Eventq.Calendar)

  let default_queue () = !(Domain.DLS.get default_queue_key)
  let set_default_queue b = Domain.DLS.get default_queue_key := b

  let with_default_queue b f =
    let cell = Domain.DLS.get default_queue_key in
    let saved = !cell in
    cell := b;
    Fun.protect ~finally:(fun () -> cell := saved) f

  let auto_compact_ratio = 0.5

  (* Below this many pending entries compaction cannot pay for itself. *)
  let compact_min_pending = 64

  let create ?(seed = 42) ?queue ?(compaction = `Auto) () =
    let backend = match queue with Some b -> b | None -> default_queue () in
    let compact_above =
      match compaction with
      | `Auto -> Some auto_compact_ratio
      | `Threshold r ->
        if r <= 0.0 then invalid_arg "Engine.create: compaction threshold <= 0";
        Some r
      | `Off -> None
    in
    {
      clock = 0.0;
      queue = Eventq.create ~backend ();
      processed = 0;
      scheduled = 0;
      tombstones = 0;
      compactions = 0;
      compact_above;
      root_rng = Rng.create seed;
    }

  let now t = t.clock

  let rng t = t.root_rng

  let schedule_at t ~time action =
    if time < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
           t.clock);
    let h = { cancelled = false; fired = false; action } in
    Eventq.add t.queue ~key:time h;
    t.scheduled <- t.scheduled + 1;
    h

  let schedule t ~delay action =
    if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
    schedule_at t ~time:(t.clock +. delay) action

  (* Lazy deletion with bounded garbage: cancellation only marks the
     handle, but once tombstones dominate the queue we filter them out in
     one O(n) pass. Timeout-heavy workloads (TCP, probers, recovery
     retries) cancel nearly everything they schedule, and without this
     the queue holds every dead timeout until its original expiry. *)
  let maybe_compact t =
    match t.compact_above with
    | None -> ()
    | Some ratio ->
      let pending = Eventq.length t.queue in
      if
        pending >= compact_min_pending
        && float_of_int t.tombstones > ratio *. float_of_int pending
      then begin
        let removed =
          Eventq.compact t.queue ~live:(fun h -> not h.cancelled)
        in
        t.tombstones <- t.tombstones - removed;
        t.compactions <- t.compactions + 1
      end

  let cancel t h =
    if not (h.cancelled || h.fired) then begin
      h.cancelled <- true;
      t.tombstones <- t.tombstones + 1;
      maybe_compact t
    end

  let pending t = Eventq.length t.queue

  let events_processed t = t.processed

  let events_scheduled t = t.scheduled

  type queue_stats = {
    qs_backend : Eventq.backend;
    qs_pending : int;
    qs_tombstones : int;
    qs_compactions : int;
    qs_buckets : int;
    qs_bucket_width : float;
    qs_resizes : int;
  }

  let queue_stats t =
    let s = Eventq.stats t.queue in
    {
      qs_backend = Eventq.backend t.queue;
      qs_pending = Eventq.length t.queue;
      qs_tombstones = t.tombstones;
      qs_compactions = t.compactions;
      qs_buckets = s.Eventq.q_buckets;
      qs_bucket_width = s.Eventq.q_bucket_width;
      qs_resizes = s.Eventq.q_resizes;
    }

  (* Cumulative event count of every engine stepped on the current domain.
     Each domain owns its counter, so parallel sweep runners can attribute
     simulated work to a task by reading the delta around it without any
     cross-domain synchronization. *)
  let domain_events = Domain.DLS.new_key (fun () -> ref 0)

  let domain_events_processed () = !(Domain.DLS.get domain_events)

  let add_domain_events n =
    if n < 0 then invalid_arg "Engine.add_domain_events: negative count";
    let c = Domain.DLS.get domain_events in
    c := !c + n

  let rec step t =
    match Eventq.pop t.queue with
    | None -> false
    | Some (time, h) ->
      if h.cancelled then begin
        t.tombstones <- t.tombstones - 1;
        step t
      end
      else begin
        h.fired <- true;
        t.clock <- time;
        t.processed <- t.processed + 1;
        incr (Domain.DLS.get domain_events);
        h.action ();
        true
      end

  (* Discard cancelled entries sitting at the head so that [Eventq.min]
     reflects the next event that will actually fire. *)
  let rec next_live t =
    match Eventq.min t.queue with
    | Some (_, h) when h.cancelled ->
      ignore (Eventq.pop t.queue);
      t.tombstones <- t.tombstones - 1;
      next_live t
    | other -> other

  let next_event_time t = Option.map fst (next_live t)

  (* The conservative-protocol workhorse: execute everything strictly
     below [bound] and leave the clock at the last executed event, so a
     later round (or a coordinator merge) may still schedule work at
     [bound] or beyond without time running backwards. *)
  let rec run_before t ~bound =
    match next_live t with
    | Some (time, _) when time < bound ->
      ignore (step t);
      run_before t ~bound
    | Some _ | None -> ()

  let run ?until t =
    match until with
    | None -> while step t do () done
    | Some limit ->
      let continue = ref true in
      while !continue do
        match next_live t with
        | Some (time, _) when time <= limit ->
          if not (step t) then continue := false
        | Some _ | None -> continue := false
      done;
      if limit > t.clock then t.clock <- limit
end

include Shard
