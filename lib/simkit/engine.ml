type handle = { mutable cancelled : bool; action : unit -> unit }

type t = {
  mutable clock : float;
  queue : handle Heap.t;
  mutable processed : int;
  mutable scheduled : int;
  root_rng : Rng.t;
}

let create ?(seed = 42) () =
  {
    clock = 0.0;
    queue = Heap.create ();
    processed = 0;
    scheduled = 0;
    root_rng = Rng.create seed;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let h = { cancelled = false; action } in
  Heap.add t.queue ~key:time h;
  t.scheduled <- t.scheduled + 1;
  h

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel _t h = h.cancelled <- true

let pending t = Heap.length t.queue

let events_processed t = t.processed

let events_scheduled t = t.scheduled

(* Cumulative event count of every engine stepped on the current domain.
   Each domain owns its counter, so parallel sweep runners can attribute
   simulated work to a task by reading the delta around it without any
   cross-domain synchronization. *)
let domain_events = Domain.DLS.new_key (fun () -> ref 0)

let domain_events_processed () = !(Domain.DLS.get domain_events)

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, h) ->
    if h.cancelled then step t
    else begin
      t.clock <- time;
      t.processed <- t.processed + 1;
      incr (Domain.DLS.get domain_events);
      h.action ();
      true
    end

(* Discard cancelled entries sitting at the head so that [Heap.min]
   reflects the next event that will actually fire. *)
let rec next_live t =
  match Heap.min t.queue with
  | Some (_, h) when h.cancelled ->
    ignore (Heap.pop t.queue);
    next_live t
  | other -> other

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    let continue = ref true in
    while !continue do
      match next_live t with
      | Some (time, _) when time <= limit ->
        if not (step t) then continue := false
      | Some _ | None -> continue := false
    done;
    if limit > t.clock then t.clock <- limit
