type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stat.mean: empty sample"
  | _ ->
    let total = List.fold_left ( +. ) 0.0 xs in
    total /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sq /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let summarize_opt xs =
  match xs with
  | [] -> None
  | x :: rest ->
    let min_v = List.fold_left Float.min x rest in
    let max_v = List.fold_left Float.max x rest in
    Some
      {
        count = List.length xs;
        mean = mean xs;
        stddev = stddev xs;
        min = min_v;
        max = max_v;
      }

let summarize xs =
  match summarize_opt xs with
  | Some s -> s
  | None -> invalid_arg "Stat.summarize: empty sample"

let percentile_opt xs ~p =
  if p < 0.0 || p > 100.0 then
    invalid_arg "Stat.percentile: p outside [0, 100]";
  match xs with
  | [] -> None
  | _ ->
    let sorted = List.sort Float.compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then Some arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      Some (arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo))))

let percentile xs ~p =
  match percentile_opt xs ~p with
  | Some v -> v
  | None -> invalid_arg "Stat.percentile: empty sample"

type linear = { slope : float; intercept : float; r2 : float }

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stat.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sum_x = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sum_y = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let mean_x = sum_x /. fn and mean_y = sum_y /. fn in
  let sxx =
    List.fold_left (fun a (x, _) -> a +. ((x -. mean_x) ** 2.0)) 0.0 points
  in
  let sxy =
    List.fold_left
      (fun a (x, y) -> a +. ((x -. mean_x) *. (y -. mean_y)))
      0.0 points
  in
  if sxx = 0.0 then invalid_arg "Stat.linear_fit: all x values identical";
  let slope = sxy /. sxx in
  let intercept = mean_y -. (slope *. mean_x) in
  let ss_tot =
    List.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.0)) 0.0 points
  in
  let ss_res =
    List.fold_left
      (fun a (x, y) ->
        let fitted = (slope *. x) +. intercept in
        a +. ((y -. fitted) ** 2.0))
      0.0 points
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let eval_linear { slope; intercept; _ } x = (slope *. x) +. intercept

let pp_linear ?(var = "n") ppf { slope; intercept; _ } =
  if intercept >= 0.0 then
    Format.fprintf ppf "%.2f%s + %.1f" slope var intercept
  else Format.fprintf ppf "%.2f%s - %.1f" slope var (Float.abs intercept)

module Online = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    let delta2 = x -. t.mean in
    t.m2 <- t.m2 +. (delta *. delta2)

  let count t = t.n
  let mean t = t.mean

  let variance t =
    if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)
end
