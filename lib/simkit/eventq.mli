(** Pluggable event queue for the simulation engine.

    Two backends behind one interface, both stable: entries with equal
    keys pop in insertion order, so the engine's execution order — and
    therefore every seeded run — is byte-identical whichever backend is
    selected.

    - {!Heap}: the classic binary min-heap ({!Simkit.Heap}). O(log n)
      insert and pop, no tuning, no pathological cases.
    - {!Calendar}: a calendar queue (Brown 1988). Events hash into
      day-buckets of an adaptive year; for the clustered timestamps a
      simulation produces, insert and pop are O(1) amortized. The
      bucket count doubles/halves with occupancy and the bucket width
      is resampled from observed inter-event gaps on each resize. Day
      buckets are themselves stable mini-heaps, so the exact-key-tie
      storms a simulator generates (and any badly-sampled width) cost
      O(log bucket-depth), never a linear list walk. See [doc/perf.md]. *)

type backend = Heap | Calendar

val backend_enum : backend Enum.t
(** ["heap"] / ["calendar"] — the {!Enum} behind the two functions
    below, exposed for CLI converters. *)

val backend_name : backend -> string
(** ["heap"] / ["calendar"]. *)

val backend_of_string : string -> (backend, [ `Msg of string ]) result

type 'a t

val create : ?backend:backend -> unit -> 'a t
(** An empty queue (default backend {!Calendar}). *)

val backend : 'a t -> backend

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** Insert with priority [key] (must be finite). Equal keys preserve
    insertion order across any interleaving of adds and pops. *)

val min : 'a t -> (float * 'a) option
(** Smallest entry without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest entry; ties pop FIFO. *)

val clear : 'a t -> unit

val compact : 'a t -> live:('a -> bool) -> int
(** [compact t ~live] drops every entry whose value fails [live] and
    returns how many were dropped. Surviving entries keep their
    insertion ranks, so FIFO tie-breaking against both old and future
    entries is unchanged — this is what makes lazy deletion safe for a
    deterministic engine. *)

type stats = {
  q_buckets : int;  (** calendar bucket count; 0 for the heap *)
  q_bucket_width : float;  (** current day width in key units *)
  q_resizes : int;  (** cumulative calendar resizes *)
}

val stats : 'a t -> stats
