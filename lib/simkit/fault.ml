type t =
  | Disk_full
  | Out_of_memory
  | Heap_exhausted
  | Vmm_down
  | Bad_domain_state of string
  | Image_lost of string
  | No_image_staged
  | Suspend_failed of string
  | Resume_failed of string
  | Reload_failed
  | Driver_timeout of string
  | Boot_failed of string
  | Not_recovered of string
  | Stalled of string
  | Timeout of { what : string; deadline_s : float }
  | Invariant of string

exception Error of t

let fail f = raise (Error f)

let id = function
  | Disk_full -> "disk_full"
  | Out_of_memory -> "out_of_memory"
  | Heap_exhausted -> "heap_exhausted"
  | Vmm_down -> "vmm_down"
  | Bad_domain_state _ -> "bad_domain_state"
  | Image_lost _ -> "image_lost"
  | No_image_staged -> "no_image_staged"
  | Suspend_failed _ -> "suspend_failed"
  | Resume_failed _ -> "resume_failed"
  | Reload_failed -> "reload_failed"
  | Driver_timeout _ -> "driver_timeout"
  | Boot_failed _ -> "boot_failed"
  | Not_recovered _ -> "not_recovered"
  | Stalled _ -> "stalled"
  | Timeout _ -> "timeout"
  | Invariant _ -> "invariant"

let to_string = function
  | Disk_full -> "backing store is full"
  | Out_of_memory -> "out of machine memory"
  | Heap_exhausted -> "VMM heap exhausted"
  | Vmm_down -> "VMM is not running"
  | Bad_domain_state s -> Printf.sprintf "domain in unexpected state %s" s
  | Image_lost name -> Printf.sprintf "preserved image for %s lost" name
  | No_image_staged -> "no VMM image staged for quick reload"
  | Suspend_failed name -> Printf.sprintf "suspend of %s failed" name
  | Resume_failed name -> Printf.sprintf "resume of %s failed" name
  | Reload_failed -> "quick reload of the VMM image failed"
  | Driver_timeout name -> Printf.sprintf "driver VM %s timed out" name
  | Boot_failed what -> Printf.sprintf "boot of %s failed" what
  | Not_recovered name -> Printf.sprintf "%s not recovered" name
  | Stalled what -> Printf.sprintf "simulation stalled during %s" what
  | Timeout { what; deadline_s } ->
    Printf.sprintf "%s missed its %.1fs deadline" what deadline_s
  | Invariant what -> Printf.sprintf "internal invariant violated: %s" what

let pp ppf f = Format.pp_print_string ppf (to_string f)

let injection_sites =
  [
    ("disk.write", "disk space allocation while saving a VM image");
    ("driver.reprovision", "re-creation of a driver VM after reboot");
    ("vmm.reload", "quick reload of the preserved VMM image");
    ("vmm.suspend", "on-memory suspend / save-time suspend of a domain");
    ("xend.resume", "resume or restore of a suspended domain");
  ]

let is_injection_site site = List.mem_assoc site injection_sites

module Plan = struct
  type trigger = Never | Always | On_nth of int | Prob of float

  type site_state = {
    mutable strigger : trigger;
    mutable calls : int;
    mutable fired : int;
    srng : Rng.t;
  }

  type t = {
    rng : Rng.t;
    mutable sites : (string * site_state) list; (* sorted by site name *)
  }

  let create ?(seed = 0) () = { rng = Rng.create seed; sites = [] }

  let arm t ~site trigger =
    if not (is_injection_site site) then
      fail (Invariant (Printf.sprintf "unknown injection site %s" site));
    match List.assoc_opt site t.sites with
    | Some st ->
      st.strigger <- trigger;
      st.calls <- 0;
      st.fired <- 0
    | None ->
      let st = { strigger = trigger; calls = 0; fired = 0; srng = Rng.split t.rng } in
      t.sites <-
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          ((site, st) :: t.sites)

  let disarm t ~site =
    t.sites <- List.filter (fun (s, _) -> not (String.equal s site)) t.sites

  let fires t ~site =
    match List.assoc_opt site t.sites with
    | None -> false
    | Some st ->
      st.calls <- st.calls + 1;
      let hit =
        match st.strigger with
        | Never -> false
        | Always -> true
        | On_nth n -> st.calls = n
        | Prob p -> Rng.uniform st.srng < p
      in
      if hit then st.fired <- st.fired + 1;
      hit

  let calls t ~site =
    match List.assoc_opt site t.sites with None -> 0 | Some st -> st.calls

  let fired t ~site =
    match List.assoc_opt site t.sites with None -> 0 | Some st -> st.fired

  let total_fired t =
    List.fold_left (fun acc (_, st) -> acc + st.fired) 0 t.sites

  let armed_sites t = List.map fst t.sites
end
