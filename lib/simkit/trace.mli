(** Timestamped span and event tracing.

    Records named operation intervals (e.g. "suspend domUs", "quick
    reload", "boot OSes") so the harness can print the Figure 7
    breakdown of a reboot, and instantaneous markers for point events. *)

type t

type span

val create : Engine.t -> t

val engine : t -> Engine.t
(** The engine whose clock timestamps this trace. *)

val begin_span : t -> string -> span
(** Opens a named interval starting now. *)

val end_span : t -> span -> unit
(** Closes the interval at the current time. Idempotent. *)

val instant : t -> string -> unit
(** Records a point event at the current time. *)

val spans : t -> (string * float * float) list
(** Completed spans as (label, start, stop), in start order. *)

val instants : t -> (string * float) list
(** Point events in time order. *)

val duration : t -> string -> float option
(** Total duration of all completed spans with the given label. *)

val find_span : t -> string -> (float * float) option
(** First completed span with the given label. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Renders spans as an indented timeline, for reports. *)

val to_chrome_json : t -> string
(** Serialize completed spans and instants in the Chrome trace-event
    format (load via chrome://tracing or https://ui.perfetto.dev).
    Simulated seconds are encoded as microseconds of trace time. *)

val to_csv : t -> string
(** ["kind,label,start_s,stop_s"] rows: spans then instants. *)
