type backend = Heap | Calendar

let backend_enum =
  Enum.make ~what:"queue backend" [ ("heap", Heap); ("calendar", Calendar) ]

let backend_name = Enum.name backend_enum
let backend_of_string s = Enum.of_string backend_enum s

(* --- calendar queue -------------------------------------------------------

   Brown's calendar queue: an array of [nbuckets] day-buckets covering a
   year of [nbuckets * width] key units; an event with key [k] lives in
   bucket [floor(k / width) mod nbuckets]. Dequeue scans forward from
   the current virtual day and takes the bucket whose head is due in
   that day; if a whole year is empty it jumps straight to the global
   minimum. Bucket count tracks occupancy (double above 2n, halve below
   n/2) and the width is resampled from the inter-event gaps near the
   head on every resize, which is what keeps buckets O(1) events deep
   for clustered timestamps.

   Departure from the textbook structure: each day-bucket is a stable
   binary min-heap, not a sorted list. Simulation schedules are full of
   exact key ties (everything armed "now + d" within one callback), and
   tied keys always land in the same bucket, so a sorted-list bucket
   degenerates to an O(depth) tail insert per event. Heap buckets make
   that O(log depth), keep FIFO order for ties (the bucket heap is
   stable, and ties can never straddle buckets), and mean that even a
   badly-sampled width — e.g. a bimodal schedule whose only positive
   gap is the jump between two tie clusters — degrades into "one big
   heap", never into quadratic list walks. *)

type 'a calendar = {
  mutable buckets : 'a Heap.t array;
  mutable width : float;  (* day length in key units *)
  mutable csize : int;
  mutable cur_vb : int;  (* virtual (un-wrapped) day the scan is on *)
  mutable cresizes : int;
}

let min_buckets = 8

let fresh_buckets n = Array.init n (fun _ -> Heap.create ())

let cal_create () =
  {
    buckets = fresh_buckets min_buckets;
    width = 1.0;
    csize = 0;
    cur_vb = 0;
    cresizes = 0;
  }

(* Virtual day of a key: exact integer comparison against [cur_vb], so
   insert and dequeue agree on day membership with no accumulated
   float error. *)
let vday c key = int_of_float (Float.floor (key /. c.width))

let bucket_index vb n =
  let i = vb mod n in
  if i < 0 then i + n else i

(* Rebuild with [new_count] buckets, resampling the width from the
   inter-event gaps of the (up to) 32 earliest entries. Each old bucket
   drains in (key, FIFO) order and equal keys never straddle buckets,
   so re-adding drained runs preserves the tie order. *)
let cal_resize c new_count =
  let drained = Array.map Heap.drain c.buckets in
  let keys =
    Array.fold_left
      (fun acc l -> List.fold_left (fun a (k, _) -> k :: a) acc l)
      [] drained
    |> List.sort Float.compare
  in
  (match keys with
  | [] | [ _ ] -> ()
  | first :: rest ->
    let rec gaps sum n last i = function
      | k :: tl when i < 32 ->
        let d = k -. last in
        if d > 0.0 then gaps (sum +. d) (n + 1) k (i + 1) tl
        else gaps sum n last (i + 1) tl
      | _ ->
        if n > 0 then
          c.width <- Float.max (2.0 *. (sum /. float_of_int n)) 1e-9
    in
    gaps 0.0 0 first 1 rest);
  c.buckets <- fresh_buckets new_count;
  c.cur_vb <- (match keys with [] -> 0 | k :: _ -> vday c k);
  Array.iter
    (List.iter (fun (k, v) ->
         Heap.add c.buckets.(bucket_index (vday c k) new_count) ~key:k v))
    drained;
  c.cresizes <- c.cresizes + 1

let cal_add c ~key value =
  if not (Float.is_finite key) then invalid_arg "Eventq.add: non-finite key";
  let n = Array.length c.buckets in
  let vb = vday c key in
  Heap.add c.buckets.(bucket_index vb n) ~key value;
  c.csize <- c.csize + 1;
  (* An insert behind the scan position pulls the scan back so the new
     minimum cannot be skipped. *)
  if vb < c.cur_vb then c.cur_vb <- vb;
  if c.csize > 2 * n then cal_resize c (2 * n)

(* Advance the scan to the bucket holding the next entry and return its
   index. Amortized O(1); a year of empty buckets falls back to a
   direct minimum search over the bucket heads. *)
let cal_find c =
  if c.csize = 0 then None
  else begin
    let n = Array.length c.buckets in
    let rec scan remaining =
      if remaining = 0 then direct ()
      else
        let i = bucket_index c.cur_vb n in
        match Heap.min c.buckets.(i) with
        | Some (k, _) when vday c k <= c.cur_vb -> Some i
        | _ ->
          c.cur_vb <- c.cur_vb + 1;
          scan (remaining - 1)
    and direct () =
      (* Equal keys share a bucket, so strict comparison cannot break a
         FIFO tie here. *)
      let best = ref None in
      Array.iteri
        (fun i h ->
          match (Heap.min h, !best) with
          | None, _ -> ()
          | Some (k, _), Some (_, bk) when bk <= k -> ()
          | Some (k, _), _ -> best := Some (i, k))
        c.buckets;
      match !best with
      | None -> None
      | Some (i, k) ->
        c.cur_vb <- vday c k;
        Some i
    in
    scan n
  end

let cal_maybe_shrink c =
  let n = Array.length c.buckets in
  let target = ref n in
  while !target > min_buckets && c.csize * 2 < !target do
    target := !target / 2
  done;
  if !target <> n then cal_resize c !target

let cal_pop c =
  match cal_find c with
  | None -> None
  | Some i ->
    let r = Heap.pop c.buckets.(i) in
    c.csize <- c.csize - 1;
    cal_maybe_shrink c;
    r

let cal_min c =
  match cal_find c with None -> None | Some i -> Heap.min c.buckets.(i)

let cal_clear c =
  c.buckets <- fresh_buckets min_buckets;
  c.width <- 1.0;
  c.csize <- 0;
  c.cur_vb <- 0

let cal_compact c ~live =
  let removed = ref 0 in
  Array.iter
    (fun h -> removed := !removed + Heap.filter_inplace h ~keep:live)
    c.buckets;
  c.csize <- c.csize - !removed;
  cal_maybe_shrink c;
  !removed

(* --- the dispatch wrapper ------------------------------------------------- *)

type 'a t = Heap_q of 'a Heap.t | Cal_q of 'a calendar

let create ?(backend = Calendar) () =
  match backend with
  | Heap -> Heap_q (Heap.create ())
  | Calendar -> Cal_q (cal_create ())

let backend = function Heap_q _ -> Heap | Cal_q _ -> Calendar

let length = function Heap_q h -> Heap.length h | Cal_q c -> c.csize
let is_empty t = length t = 0

let add t ~key v =
  match t with
  | Heap_q h -> Heap.add h ~key v
  | Cal_q c -> cal_add c ~key v

let min = function Heap_q h -> Heap.min h | Cal_q c -> cal_min c
let pop = function Heap_q h -> Heap.pop h | Cal_q c -> cal_pop c
let clear = function Heap_q h -> Heap.clear h | Cal_q c -> cal_clear c

let compact t ~live =
  match t with
  | Heap_q h -> Heap.filter_inplace h ~keep:live
  | Cal_q c -> cal_compact c ~live

type stats = { q_buckets : int; q_bucket_width : float; q_resizes : int }

let stats = function
  | Heap_q _ -> { q_buckets = 0; q_bucket_width = 0.0; q_resizes = 0 }
  | Cal_q c ->
    {
      q_buckets = Array.length c.buckets;
      q_bucket_width = c.width;
      q_resizes = c.cresizes;
    }
