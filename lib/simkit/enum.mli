(** Uniform string <-> value mapping for CLI-facing enumerations.

    Every user-facing enum in the tree (reboot strategy, workload,
    event-queue backend, metrics format, wave strategy) parses and
    prints through one of these, so they all share the same
    case-insensitive matching and the same rejection message shape:
    ["unknown <what> \"x\"; expected one of a, b, c"]. The [`Msg]
    error is exactly what a [Cmdliner.Arg.conv] parser wants. *)

type 'a t

val make : what:string -> ?aliases:(string * 'a) list -> (string * 'a) list -> 'a t
(** [make ~what entries] builds an enum from [(canonical_name, value)]
    pairs. [what] names the enum in error messages (e.g. ["strategy"]).
    [aliases] are extra accepted spellings that never appear in
    listings or error messages. Names are matched case-insensitively
    and must be given lowercase.

    @raise Invalid_argument on an empty entry list, a non-lowercase
    name, or a duplicate name/alias. *)

val names : 'a t -> string list
(** Canonical names, in declaration order. *)

val values : 'a t -> 'a list

val name : 'a t -> 'a -> string
(** Canonical name of a value (by structural equality).
    @raise Invalid_argument if the value was never registered. *)

val of_string : 'a t -> string -> ('a, [> `Msg of string ]) result
(** Case-insensitive lookup among names and aliases; the error is
    ["unknown <what> \"s\"; expected one of <names>"]. *)

val of_string_opt : 'a t -> string -> 'a option

val of_string_exn : 'a t -> string -> 'a
(** @raise Invalid_argument on unknown names. *)

val pp : 'a t -> Format.formatter -> 'a -> unit
(** Prints the canonical name. *)

val expecting : 'a t -> string
(** The ["expected one of a, b, c"] clause, for docstrings. *)
