(** Minimal hand-rolled JSON emitter (no external dependencies).

    Just enough to serialize experiment results: values are built as a
    tree and printed compactly. Floats that are not finite are emitted
    as [null] (JSON has no NaN/infinity). [Raw] splices a string that
    is already JSON — e.g. a pre-rendered Chrome trace — verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string  (** trusted, already-serialized JSON *)

val to_string : t -> string

val escape : string -> string
(** The quoted, escaped JSON form of a string (including the quotes). *)

val of_string : string -> (t, string) result
(** Parse strict JSON back into a tree ([Raw] is never produced;
    numbers containing ['.'], ['e'] or ['E'] become [Float], the rest
    [Int]). The error is a human-readable message with a byte offset.
    Used by [benchstat] to read baseline files back. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing keys and non-objects. *)

val to_float_opt : t -> float option
(** [Float] or [Int] as a float; [None] otherwise. *)

val to_string_opt : t -> string option
