type t = { series_name : string; mutable samples : (float * float) list }
(* Samples are kept newest-first and reversed on read. *)

let create ?(name = "series") () = { series_name = name; samples = [] }

let name t = t.series_name

let add t ~time value = t.samples <- (time, value) :: t.samples

let length t = List.length t.samples

let to_list t = List.rev t.samples

let values t = List.rev_map snd t.samples

let last t = match t.samples with [] -> None | s :: _ -> Some s

let between t ~lo ~hi =
  List.filter (fun (time, _) -> time >= lo && time <= hi) (to_list t)

let fold_values f init t =
  List.fold_left (fun acc (_, v) -> f acc v) init t.samples

let min_value t =
  match t.samples with
  | [] -> None
  | (_, v) :: _ -> Some (fold_values Float.min v t)

let max_value t =
  match t.samples with
  | [] -> None
  | (_, v) :: _ -> Some (fold_values Float.max v t)

module Counter = struct
  type t = {
    counter_name : string;
    window : float;
    mutable events : float list; (* timestamps, newest-first *)
    mutable count : int;
    (* Streaming per-window tally: [cur_*] is the window the latest
       event fell into, [prev_*] the most recently closed one. Keeping
       both makes the last-completed-window rate an O(1) read — metric
       snapshots never rebuild the event list. *)
    mutable cur_idx : int;
    mutable cur_count : int;
    mutable prev_idx : int;
    mutable prev_count : int;
  }

  let create ?(name = "counter") ?(window = 1.0) () =
    if window <= 0.0 then invalid_arg "Counter.create: window <= 0";
    {
      counter_name = name;
      window;
      events = [];
      count = 0;
      cur_idx = 0;
      cur_count = 0;
      prev_idx = -1;
      prev_count = 0;
    }

  let name t = t.counter_name
  let window t = t.window

  let record t ~time =
    t.events <- time :: t.events;
    t.count <- t.count + 1;
    let idx = int_of_float (time /. t.window) in
    if idx = t.cur_idx then t.cur_count <- t.cur_count + 1
    else begin
      t.prev_idx <- t.cur_idx;
      t.prev_count <- t.cur_count;
      t.cur_idx <- idx;
      t.cur_count <- 1
    end

  let total t = t.count

  let last_window_rate t ~now =
    let idx = int_of_float (now /. t.window) in
    let count =
      if idx = t.cur_idx then
        if t.prev_idx = idx - 1 then t.prev_count else 0
      else if t.cur_idx = idx - 1 then t.cur_count
      else 0
    in
    float_of_int count /. t.window

  let rate_series t ~window ?until () =
    if window <= 0.0 then invalid_arg "Counter.rate_series: window <= 0";
    let events = List.rev t.events in
    let horizon =
      match (until, t.events) with
      | Some u, _ -> u
      | None, latest :: _ -> latest
      | None, [] -> 0.0
    in
    let buckets = int_of_float (Float.ceil (horizon /. window)) in
    let counts = Array.make (Stdlib.max buckets 1) 0 in
    List.iter
      (fun time ->
        let idx = int_of_float (time /. window) in
        if idx >= 0 && idx < Array.length counts then
          counts.(idx) <- counts.(idx) + 1)
      events;
    Array.to_list
      (Array.mapi
         (fun i c ->
           let window_end = float_of_int (i + 1) *. window in
           (window_end, float_of_int c /. window))
         counts)

  let rate_between t ~lo ~hi =
    if hi <= lo then invalid_arg "Counter.rate_between: empty interval";
    let n =
      List.fold_left
        (fun acc time -> if time >= lo && time <= hi then acc + 1 else acc)
        0 t.events
    in
    float_of_int n /. (hi -. lo)
end
