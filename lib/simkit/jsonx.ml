type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_into buf s;
  Buffer.contents buf

let float_repr f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | Raw s -> Buffer.add_string buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------

   A recursive-descent parser for the values this module emits (strict
   JSON; no comments, no trailing commas). Numbers with a '.', 'e' or
   'E' become [Float], the rest [Int]. [Raw] is never produced. *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let parse_fail c msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some k when k = ch -> advance c
  | Some k -> parse_fail c (Printf.sprintf "expected %c, found %c" ch k)
  | None -> parse_fail c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c (Printf.sprintf "expected %s" word)

let parse_hex4 c =
  let code = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek c with
      | Some ('0' .. '9' as ch) -> Char.code ch - Char.code '0'
      | Some ('a' .. 'f' as ch) -> Char.code ch - Char.code 'a' + 10
      | Some ('A' .. 'F' as ch) -> Char.code ch - Char.code 'A' + 10
      | _ -> parse_fail c "bad \\u escape"
    in
    advance c;
    code := (!code * 16) + d
  done;
  !code

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        let code = parse_hex4 c in
        (* Escapes we emit are all < 0x20; decode the BMP generally as
           UTF-8 so round-trips of foreign documents stay lossless. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> parse_fail c "bad escape");
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_fail c (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* Integer syntax too large for an int still parses as a float. *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_fail c "expected a value, found end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_fail c "expected , or ] in array"
      in
      Arr (elems [])
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> parse_fail c "expected , or } in object"
      in
      Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- tree accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
