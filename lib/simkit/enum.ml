type 'a t = {
  what : string;
  entries : (string * 'a) list;  (* canonical names, declaration order *)
  aliases : (string * 'a) list;
}

let is_lowercase s = String.equal s (String.lowercase_ascii s)

let make ~what ?(aliases = []) entries =
  if entries = [] then invalid_arg "Enum.make: no entries";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if not (is_lowercase name) then
        invalid_arg ("Enum.make: name not lowercase: " ^ name);
      if Hashtbl.mem seen name then
        invalid_arg ("Enum.make: duplicate name " ^ name);
      Hashtbl.replace seen name ())
    (entries @ aliases);
  { what; entries; aliases }

let names e = List.map fst e.entries
let values e = List.map snd e.entries

let name e v =
  match List.find_opt (fun (_, v') -> v' = v) e.entries with
  | Some (n, _) -> n
  | None -> invalid_arg ("Enum.name: unregistered " ^ e.what ^ " value")

let expecting e = "expected one of " ^ String.concat ", " (names e)

let of_string e s =
  let key = String.lowercase_ascii s in
  match List.assoc_opt key e.entries with
  | Some v -> Ok v
  | None -> (
    match List.assoc_opt key e.aliases with
    | Some v -> Ok v
    | None ->
      Error
        (`Msg (Printf.sprintf "unknown %s %S; %s" e.what s (expecting e))))

let of_string_opt e s =
  match of_string e s with Ok v -> Some v | Error _ -> None

let of_string_exn e s =
  match of_string e s with
  | Ok v -> v
  | Error (`Msg m) -> invalid_arg ("Enum.of_string_exn: " ^ m)

let pp e ppf v = Format.pp_print_string ppf (name e v)
