(** Descriptive statistics and least-squares fitting.

    Used by the evaluation harness to summarise repeated runs and to
    reproduce the paper's Section 5.6 linear models. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample. Raises [Invalid_argument] on []. *)

val summarize_opt : float list -> summary option
(** Total variant of {!summarize}: [None] on the empty sample. Metric
    exporters use it so a zero-sample histogram renders as nulls
    instead of aborting the run. *)

val mean : float list -> float
val stddev : float list -> float

val percentile : float list -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks. Raises [Invalid_argument] on []. *)

val percentile_opt : float list -> p:float -> float option
(** Total variant of {!percentile}: [None] on the empty sample. Still
    raises [Invalid_argument] when [p] is outside [\[0, 100\]]. *)

type linear = { slope : float; intercept : float; r2 : float }
(** A fitted line [y = slope * x + intercept] with its coefficient of
    determination. *)

val linear_fit : (float * float) list -> linear
(** Ordinary least squares over at least two points with distinct x.
    Raises [Invalid_argument] otherwise. *)

val eval_linear : linear -> float -> float

val pp_linear : ?var:string -> Format.formatter -> linear -> unit
(** Prints e.g. ["-0.55n + 43.0"] using [var] (default ["n"]). *)

(** Streaming mean/variance accumulator (Welford's algorithm). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
