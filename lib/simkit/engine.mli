(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue. Every timed
    behaviour in the simulator — disk transfers, OS boots, rejuvenation
    steps, workload probes — is expressed as callbacks scheduled on an
    engine. Execution is fully deterministic: events fire in
    (time, insertion order). *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int -> unit -> t
(** Fresh engine with the clock at 0. [seed] (default 42) seeds the
    engine's root random stream. *)

val now : t -> float
(** Current simulated time in seconds. *)

val rng : t -> Rng.t
(** The engine's root random stream. Subsystems should [Rng.split] it. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Run a callback at an absolute time. Raises [Invalid_argument] when
    [time] is in the simulated past. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Run a callback [delay] seconds from now. Negative delays are
    rejected; a zero delay runs after already-pending events at the
    current time. *)

val cancel : t -> handle -> unit
(** Cancel a pending event. Cancelling an already-fired or cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled placeholders). *)

val events_processed : t -> int
(** Number of callbacks executed so far. *)

val events_scheduled : t -> int
(** Number of events ever enqueued (including cancelled ones). Together
    with {!events_processed} and {!pending} this is the engine's
    self-observability surface, sampled by the [Obs] metrics plane. *)

val domain_events_processed : unit -> int
(** Cumulative number of callbacks executed by {e every} engine stepped
    on the calling domain. Monotonic and domain-local: a parallel runner
    executing one simulation per domain can read the delta around a run
    to charge simulated-event counts to it. *)

val step : t -> bool
(** Execute the next event. [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue empties, or (with [until]) until the
    next event would fire strictly after [until]; the clock is then
    advanced to [until]. *)
