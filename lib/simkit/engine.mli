(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue. Every timed
    behaviour in the simulator — disk transfers, OS boots, rejuvenation
    steps, workload probes — is expressed as callbacks scheduled on an
    engine. Execution is fully deterministic: events fire in
    (time, insertion order), and both {!Eventq} backends preserve that
    order exactly, so a seeded run is byte-identical whichever queue
    it executes on.

    An engine is also the unit of {e partitioned} time: {!Par_engine}
    steps several of them (one per OCaml domain) under a conservative
    lookahead protocol, using {!next_event_time} and {!run_before} as
    its window primitives. The classic single-threaded simulation is
    the 1-shard case — see {!module-Shard} below. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

type compaction = [ `Auto | `Threshold of float | `Off ]
(** Tombstone hygiene for cancelled events (see {!create}). *)

val create :
  ?seed:int -> ?queue:Eventq.backend -> ?compaction:compaction -> unit -> t
(** Fresh engine with the clock at 0. [seed] (default 42) seeds the
    engine's root random stream.

    [queue] picks the event-queue backend (default: the ambient
    {!default_queue}, initially {!Eventq.Calendar}). Both backends
    execute a seeded run identically; they differ only in cost.

    [compaction] controls tombstone compaction: cancelled events are
    removed lazily, and once they exceed the given fraction of the
    pending queue (and the queue is non-trivially large) the queue is
    filtered in one O(n) pass. [`Auto] (default) compacts above a 0.5
    tombstone ratio, [`Threshold r] above [r] (must be positive),
    [`Off] never — cancelled entries then linger until their original
    expiry, as timeout-heavy workloads painfully demonstrate.
    Compaction never changes execution order or results. *)

val default_queue : unit -> Eventq.backend
(** The calling domain's default backend for {!create}. *)

val set_default_queue : Eventq.backend -> unit

val with_default_queue : Eventq.backend -> (unit -> 'a) -> 'a
(** Run [f] with the domain default swapped, restoring it afterwards —
    how the test suite and CLI pin a whole experiment (which builds its
    engines internally) onto one backend. *)

val now : t -> float
(** Current simulated time in seconds. *)

val rng : t -> Rng.t
(** The engine's root random stream. Subsystems should [Rng.split] it. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Run a callback at an absolute time. Raises [Invalid_argument] when
    [time] is in the simulated past. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Run a callback [delay] seconds from now. Negative delays are
    rejected; a zero delay runs after already-pending events at the
    current time. *)

val cancel : t -> handle -> unit
(** Cancel a pending event. Cancelling an already-fired or cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of events still queued, including cancelled placeholders
    that have not yet been compacted away. *)

val events_processed : t -> int
(** Number of callbacks executed so far. *)

val events_scheduled : t -> int
(** Number of events ever enqueued (including cancelled ones). Together
    with {!events_processed} and {!pending} this is the engine's
    self-observability surface, sampled by the [Obs] metrics plane. *)

type queue_stats = {
  qs_backend : Eventq.backend;
  qs_pending : int;  (** entries in the queue, tombstones included *)
  qs_tombstones : int;  (** cancelled entries awaiting compaction/expiry *)
  qs_compactions : int;  (** compaction passes run so far *)
  qs_buckets : int;  (** calendar bucket count (0 on the heap) *)
  qs_bucket_width : float;  (** calendar day width, seconds *)
  qs_resizes : int;  (** calendar resizes so far *)
}

val queue_stats : t -> queue_stats
(** Live internals of the event queue, exported as gauges by
    [Obs.instrument_engine]. *)

val domain_events_processed : unit -> int
(** Cumulative number of callbacks executed by {e every} engine stepped
    on the calling domain. Monotonic and domain-local: a parallel runner
    executing one simulation per domain can read the delta around a run
    to charge simulated-event counts to it. *)

val add_domain_events : int -> unit
(** Credit [n] already-executed events to the calling domain's counter.
    A run that is internally parallel ({!Par_engine}) executes part of
    its events on short-lived worker domains; summing those workers'
    counters back into the caller keeps per-run accounting (the sweep
    runner's [sim_events] charge) correct. Raises [Invalid_argument] on
    a negative count. *)

val step : t -> bool
(** Execute the next event. [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue empties, or (with [until]) until the
    next event would fire strictly after [until]; the clock is then
    advanced to [until]. *)

val next_event_time : t -> float option
(** Time of the next event that will actually fire (cancelled entries
    at the head are discarded on the way), or [None] on an empty queue.
    This is the engine's contribution to a conservative
    lower-bound-on-timestamp computation. *)

val run_before : t -> bound:float -> unit
(** Execute every event with time {e strictly below} [bound] and stop,
    leaving the clock at the last executed event (not at [bound] — a
    coordinator may still inject events at or after [bound]). The
    one-window primitive {!Par_engine} hands each shard per round. *)

(** The per-partition view of the engine: {!Par_engine} owns an array
    of shards, one per domain, and drives each through
    {!next_event_time}/{!run_before} windows. The top-level API of this
    module {e is} the 1-shard case — [Shard.t] and [Engine.t] are the
    same type, so existing single-engine code needs no changes. *)
module Shard : sig
  type nonrec t = t

  val now : t -> float
  val pending : t -> int
  val events_processed : t -> int
  val schedule_at : t -> time:float -> (unit -> unit) -> handle
  val schedule : t -> delay:float -> (unit -> unit) -> handle
  val cancel : t -> handle -> unit
  val step : t -> bool
  val run : ?until:float -> t -> unit

  val next_event_time : t -> float option
  (** See {!Engine.next_event_time}. *)

  val run_before : t -> bound:float -> unit
  (** See {!Engine.run_before}. *)
end
