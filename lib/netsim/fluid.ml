type mode = Per_request | Fluid | Hybrid

let mode_enum =
  Simkit.Enum.make ~what:"traffic"
    ~aliases:[ ("per_request", Per_request); ("request", Per_request) ]
    [ ("per-request", Per_request); ("fluid", Fluid); ("hybrid", Hybrid) ]

let mode_name m = Simkit.Enum.name mode_enum m

type server = {
  srv_is_up : unit -> bool;
  srv_capacity_rps : unit -> float;
  srv_service_time_s : unit -> float;
}

let static_server ?(up = fun () -> true) ~capacity_rps ~service_time_s () =
  {
    srv_is_up = up;
    srv_capacity_rps = (fun () -> if up () then capacity_rps else 0.0);
    srv_service_time_s = (fun () -> service_time_s);
  }

type config = {
  mode : mode;
  clients : int;
  tracers : int;
  think_time_s : float;
  retry_backoff_s : float;
  epoch_s : float;
}

let default_config =
  {
    mode = Per_request;
    clients = 10;
    tracers = 4;
    think_time_s = 0.0;
    retry_backoff_s = 0.5;
    epoch_s = 0.1;
  }

let config_label cfg =
  match cfg.mode with
  | Per_request -> Printf.sprintf "mode=per-request clients=%d" cfg.clients
  | Fluid -> Printf.sprintf "mode=fluid clients=%d" cfg.clients
  | Hybrid ->
    Printf.sprintf "mode=hybrid clients=%d tracers=%d" cfg.clients cfg.tracers

(* --- fluid integrator ----------------------------------------------------

   One self-rescheduling epoch tick (Prober-style). Over each epoch the
   closed-loop fluid throughput is the classical asymptotic bound

     X = min (active_flows / (Z + S), capacity)

   (Z think time, S service time) — exact in the fluid limit away from
   the queueing knee, where the [min] takes over. During an outage each
   flow retries once per backoff; after recovery flows re-enter
   uniformly over one backoff window, giving the linear ramp the
   per-request model shows. Everything here is pure float arithmetic in
   a fixed order: no RNG, so seeded runs are byte-identical across
   queue backends and fleet partitions. *)
type core = {
  c_engine : Simkit.Engine.t;
  c_cfg : config;
  c_server : server;
  c_flows : float;  (* bulk flows handled by the integrator *)
  c_external : lo:float -> hi:float -> float;
      (* throughput (req/s) the per-request tracer cohort already took
         out of the server over an epoch: the bulk only gets the
         {e remaining} capacity, so tracer + bulk never exceed what one
         shared server can do. Constantly 0 in pure fluid mode. *)
  mutable c_running : bool;
  mutable c_tick : Simkit.Engine.handle option;
  mutable c_started_at : float;
  mutable c_up_prev : bool;
  mutable c_came_up_at : float;  (* start of the current up-period ramp *)
  mutable c_completed : float;
  mutable c_failed : float;
  mutable c_rate : float;  (* throughput over the last epoch *)
  mutable c_stall_from : float option;
  mutable c_max_stall : float;
  c_epoch_end : Simkit.Fvec.t;  (* epoch end times, nondecreasing *)
  c_cum : Simkit.Fvec.t;  (* cumulative completions at those times *)
}

let core_create engine cfg server ~flows ~external_rps =
  {
    c_engine = engine;
    c_cfg = cfg;
    c_server = server;
    c_flows = flows;
    c_external = external_rps;
    c_running = false;
    c_tick = None;
    c_started_at = 0.0;
    c_up_prev = true;
    c_came_up_at = 0.0;
    c_completed = 0.0;
    c_failed = 0.0;
    c_rate = 0.0;
    c_stall_from = None;
    c_max_stall = 0.0;
    c_epoch_end = Simkit.Fvec.create ();
    c_cum = Simkit.Fvec.create ();
  }

let core_epoch_rate c ~interval_start ~interval_mid ~external_rps =
  if not (c.c_server.srv_is_up ()) then 0.0
  else begin
    let backoff = c.c_cfg.retry_backoff_s in
    (* Fraction of flows already back from their retry backoff,
       evaluated at the interval midpoint (midpoint rule). *)
    let ramp =
      let since_up = interval_mid -. c.c_came_up_at in
      if since_up >= backoff then 1.0
      else Float.max 0.0 (since_up /. backoff)
    in
    ignore interval_start;
    let active = ramp *. c.c_flows in
    let cycle = c.c_cfg.think_time_s +. c.c_server.srv_service_time_s () in
    let cap =
      Float.max 0.0 (c.c_server.srv_capacity_rps () -. external_rps)
    in
    if cycle <= 0.0 then cap else Float.min (active /. cycle) cap
  end

let rec core_tick c =
  if c.c_running then begin
    let dt = c.c_cfg.epoch_s in
    let t1 = Simkit.Engine.now c.c_engine in
    let t0 = t1 -. dt in
    let up = c.c_server.srv_is_up () in
    if up && not c.c_up_prev then c.c_came_up_at <- t0;
    c.c_up_prev <- up;
    let rate =
      core_epoch_rate c ~interval_start:t0
        ~interval_mid:(t1 -. (dt /. 2.0))
        ~external_rps:(c.c_external ~lo:t0 ~hi:t1)
    in
    c.c_rate <- rate;
    c.c_completed <- c.c_completed +. (rate *. dt);
    if not up then
      (* Each blocked flow burns one attempt per backoff interval. *)
      c.c_failed <- c.c_failed +. (c.c_flows /. c.c_cfg.retry_backoff_s *. dt);
    (* Stall = outage: track server-down spans, not zero-rate ones — a
       healthy server fully consumed by the tracer cohort is not an
       outage. *)
    (if not up then begin
       match c.c_stall_from with
       | None -> c.c_stall_from <- Some t0
       | Some _ -> ()
     end
     else
       match c.c_stall_from with
       | Some from ->
         c.c_max_stall <- Float.max c.c_max_stall (t0 -. from);
         c.c_stall_from <- None
       | None -> ());
    Simkit.Fvec.push c.c_epoch_end t1;
    Simkit.Fvec.push c.c_cum c.c_completed;
    c.c_tick <-
      Some (Simkit.Engine.schedule c.c_engine ~delay:dt (fun () -> core_tick c))
  end

let core_start c =
  if (not c.c_running) && c.c_flows > 0.0 then begin
    c.c_running <- true;
    let now = Simkit.Engine.now c.c_engine in
    c.c_started_at <- now;
    c.c_up_prev <- c.c_server.srv_is_up ();
    (* A server that is already up owes no ramp at t = 0. *)
    c.c_came_up_at <- now -. c.c_cfg.retry_backoff_s;
    c.c_tick <-
      Some
        (Simkit.Engine.schedule c.c_engine ~delay:c.c_cfg.epoch_s (fun () ->
             core_tick c))
  end

let core_stop c =
  if c.c_running then begin
    c.c_running <- false;
    (match c.c_tick with
    | Some h -> Simkit.Engine.cancel c.c_engine h
    | None -> ());
    c.c_tick <- None
  end

(* Backlog: flows whose next request is pinned behind the outage or
   still inside their post-recovery backoff. Piecewise from the same
   state the tick maintains, so reading it costs nothing. *)
let core_backlog c =
  if not c.c_running then 0.0
  else if not (c.c_server.srv_is_up ()) then c.c_flows
  else begin
    let since_up =
      Simkit.Engine.now c.c_engine -. c.c_came_up_at
    in
    if since_up >= c.c_cfg.retry_backoff_s then 0.0
    else c.c_flows *. (1.0 -. (since_up /. c.c_cfg.retry_backoff_s))
  end

let core_longest_stall c ~now =
  match c.c_stall_from with
  | Some from -> Float.max c.c_max_stall (now -. from)
  | None -> c.c_max_stall

(* Cumulative completions at [time], linear between epoch samples. *)
let core_cum_at c time =
  let n = Simkit.Fvec.length c.c_epoch_end in
  if n = 0 || time <= c.c_started_at then 0.0
  else begin
    let t_of i =
      if i < 0 then c.c_started_at else Simkit.Fvec.get c.c_epoch_end i
    in
    let cum_of i = if i < 0 then 0.0 else Simkit.Fvec.get c.c_cum i in
    if time >= t_of (n - 1) then cum_of (n - 1)
    else begin
      (* Largest i with epoch_end.(i) <= time; -1 if before the first. *)
      let lo = ref (-1) and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t_of mid <= time then lo := mid else hi := mid
      done;
      let i = !lo in
      let t0 = t_of i and t1 = t_of (i + 1) in
      let c0 = cum_of i and c1 = cum_of (i + 1) in
      if t1 <= t0 then c1
      else c0 +. ((c1 -. c0) *. ((time -. t0) /. (t1 -. t0)))
    end
  end

let core_throughput_between c ~lo ~hi =
  if hi <= lo then invalid_arg "Fluid.throughput_between: empty interval";
  (core_cum_at c hi -. core_cum_at c lo) /. (hi -. lo)

(* Figure 7 blocks from the cumulative curve: every time it crosses a
   multiple of [every], close a block at the interpolated crossing
   time. The first completion (cum crossing 1) opens block 1, matching
   the per-request convention; the trailing partial block is dropped. *)
let core_mean_window c ~every =
  let n = Simkit.Fvec.length c.c_epoch_end in
  if n = 0 then []
  else begin
    let acc = ref [] in
    let block_start = ref None in
    let target = ref 1.0 in
    let prev_t = ref c.c_started_at and prev_cum = ref 0.0 in
    for i = 0 to n - 1 do
      let t = Simkit.Fvec.get c.c_epoch_end i in
      let cum = Simkit.Fvec.get c.c_cum i in
      let continue = ref true in
      while !continue && cum >= !target do
        let cross =
          if cum <= !prev_cum then t
          else
            !prev_t
            +. ((t -. !prev_t) *. ((!target -. !prev_cum) /. (cum -. !prev_cum)))
        in
        (match !block_start with
        | None ->
          (* First completion: opens the first block. *)
          block_start := Some cross;
          target := float_of_int every
        | Some start ->
          let rate =
            float_of_int every /. Float.max (cross -. start) 1e-9
          in
          acc := (cross, rate) :: !acc;
          block_start := Some cross;
          target := !target +. float_of_int every);
        if !target > cum then continue := false
      done;
      prev_t := t;
      prev_cum := cum
    done;
    List.rev !acc
  end

(* --- the three-mode front ------------------------------------------------ *)

(* Hybrid semantics are {e additive}: the tracer cohort is simulated
   per-request against the live server, the remaining
   [clients - tracers] flows run through the fluid core with the
   capacity the tracers did not consume, and every observable is the
   sum of the two halves. With [tracers = clients] the core has zero
   flows, never ticks, contributes exact zeros — and every observable
   is bit-equal to [Per_request]. *)
type t = {
  f_name : string;
  f_cfg : config;
  f_tracer : Httperf.t option;
  f_core : core option;
  f_engine : Simkit.Engine.t;
}

let create engine ?(name = "traffic") ~config:cfg ~request ~server () =
  if cfg.clients <= 0 then invalid_arg "Fluid.create: clients <= 0";
  if cfg.epoch_s <= 0.0 then invalid_arg "Fluid.create: epoch_s <= 0";
  if cfg.retry_backoff_s <= 0.0 then
    invalid_arg "Fluid.create: retry_backoff_s <= 0";
  if cfg.think_time_s < 0.0 then invalid_arg "Fluid.create: think_time_s < 0";
  if cfg.mode = Hybrid && (cfg.tracers <= 0 || cfg.tracers > cfg.clients) then
    invalid_arg "Fluid.create: hybrid tracers outside 1..clients";
  let tracer ~connections =
    Httperf.create engine ~name ~connections
      ~retry_backoff_s:cfg.retry_backoff_s ~request ()
  in
  match cfg.mode with
  | Per_request ->
    {
      f_name = name;
      f_cfg = cfg;
      f_tracer = Some (tracer ~connections:cfg.clients);
      f_core = None;
      f_engine = engine;
    }
  | Fluid ->
    {
      f_name = name;
      f_cfg = cfg;
      f_tracer = None;
      f_core =
        Some
          (core_create engine cfg server ~flows:(float_of_int cfg.clients)
             ~external_rps:(fun ~lo:_ ~hi:_ -> 0.0));
      f_engine = engine;
    }
  | Hybrid ->
    let h = tracer ~connections:cfg.tracers in
    {
      f_name = name;
      f_cfg = cfg;
      f_tracer = Some h;
      f_core =
        Some
          (core_create engine cfg server
             ~flows:(float_of_int (cfg.clients - cfg.tracers))
             ~external_rps:(fun ~lo ~hi ->
               Httperf.throughput_between h ~lo ~hi));
      f_engine = engine;
    }

let start t =
  Option.iter Httperf.start t.f_tracer;
  Option.iter core_start t.f_core

let stop t =
  Option.iter Httperf.stop t.f_tracer;
  Option.iter core_stop t.f_core

let mode t = t.f_cfg.mode
let clients t = t.f_cfg.clients
let tracer t = t.f_tracer
let flows t = float_of_int t.f_cfg.clients

let completed t =
  match (t.f_cfg.mode, t.f_tracer, t.f_core) with
  | Per_request, Some h, _ -> Httperf.completed h
  | Fluid, _, Some c -> int_of_float (Float.round c.c_completed)
  | Hybrid, Some h, Some c ->
    Httperf.completed h + int_of_float (Float.round c.c_completed)
  | _ -> 0

let failed t =
  match (t.f_cfg.mode, t.f_tracer, t.f_core) with
  | Per_request, Some h, _ -> Httperf.failed h
  | Fluid, _, Some c -> int_of_float (Float.round c.c_failed)
  | Hybrid, Some h, Some c ->
    Httperf.failed h + int_of_float (Float.round c.c_failed)
  | _ -> 0

let offered_rps t =
  let bulk = match t.f_core with Some c -> c.c_rate | None -> 0.0 in
  let traced =
    match t.f_tracer with
    | Some h ->
      Simkit.Series.Counter.last_window_rate (Httperf.counter h)
        ~now:(Simkit.Engine.now t.f_engine)
    | None -> 0.0
  in
  bulk +. traced

let backlog t = match t.f_core with Some c -> core_backlog c | None -> 0.0

let tracer_requests t =
  match t.f_tracer with
  | Some h -> Httperf.completed h + Httperf.failed h
  | None -> 0

let throughput_between t ~lo ~hi =
  match (t.f_cfg.mode, t.f_tracer, t.f_core) with
  | Per_request, Some h, _ -> Httperf.throughput_between h ~lo ~hi
  | Fluid, _, Some c -> core_throughput_between c ~lo ~hi
  | Hybrid, Some h, Some c ->
    (* Additive: tracer completions + fluid bulk over the same window.
       An empty core contributes literal 0.0, keeping the
       [tracers = clients] case bit-equal to per-request. *)
    Httperf.throughput_between h ~lo ~hi +. core_throughput_between c ~lo ~hi
  | _ -> 0.0

(* Tracer completions at or before [time] (binary search). *)
let count_upto times time =
  let n = Simkit.Fvec.length times in
  let lo = ref (-1) and hi = ref n in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if Simkit.Fvec.get times mid <= time then lo := mid else hi := mid
  done;
  !lo + 1

(* Hybrid Figure 7 blocks: the combined cumulative curve is the
   tracer's step function plus the core's piecewise-linear fluid curve.
   Walk their merged breakpoints and close a block at every crossing of
   a multiple of [every], exactly like [core_mean_window]. Between
   breakpoints the step part is linearised — a sub-epoch smear on block
   boundaries, nothing more. *)
let hybrid_mean_window h c ~every =
  let times = Httperf.completion_times h in
  let nt = Simkit.Fvec.length times in
  let ne = Simkit.Fvec.length c.c_epoch_end in
  if ne = 0 then
    (* Bulk never ticked (zero flows): pure per-request computation. *)
    Httperf.mean_window_throughput h ~every
  else begin
    let pts = Array.make (nt + ne) 0.0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < nt || !j < ne do
      let take_tracer =
        !j >= ne
        || !i < nt
           && Simkit.Fvec.get times !i <= Simkit.Fvec.get c.c_epoch_end !j
      in
      if take_tracer then begin
        pts.(!k) <- Simkit.Fvec.get times !i;
        incr i
      end
      else begin
        pts.(!k) <- Simkit.Fvec.get c.c_epoch_end !j;
        incr j
      end;
      incr k
    done;
    let cum_at time =
      core_cum_at c time +. float_of_int (count_upto times time)
    in
    let acc = ref [] in
    let block_start = ref None in
    let target = ref 1.0 in
    let prev_t = ref c.c_started_at and prev_cum = ref 0.0 in
    Array.iter
      (fun time ->
        let cum = cum_at time in
        let continue = ref true in
        while !continue && cum >= !target do
          let cross =
            if cum <= !prev_cum then time
            else
              !prev_t
              +. (time -. !prev_t)
                 *. ((!target -. !prev_cum) /. (cum -. !prev_cum))
          in
          (match !block_start with
          | None ->
            block_start := Some cross;
            target := float_of_int every
          | Some start ->
            let rate = float_of_int every /. Float.max (cross -. start) 1e-9 in
            acc := (cross, rate) :: !acc;
            block_start := Some cross;
            target := !target +. float_of_int every);
          if !target > cum then continue := false
        done;
        prev_t := time;
        prev_cum := cum)
      pts;
    List.rev !acc
  end

let mean_window_throughput t ~every =
  if every <= 0 then invalid_arg "Fluid.mean_window_throughput: every <= 0";
  match (t.f_cfg.mode, t.f_tracer, t.f_core) with
  | Per_request, Some h, _ -> Httperf.mean_window_throughput h ~every
  | Fluid, _, Some c -> core_mean_window c ~every
  | Hybrid, Some h, Some c -> hybrid_mean_window h c ~every
  | _ -> []

let tracer_longest_gap h =
  let times = Httperf.completion_times h in
  let n = Simkit.Fvec.length times in
  if n < 2 then 0.0
  else begin
    let worst = ref 0.0 in
    for i = 1 to n - 1 do
      let gap = Simkit.Fvec.get times i -. Simkit.Fvec.get times (i - 1) in
      if gap > !worst then worst := gap
    done;
    !worst
  end

let longest_stall_s t =
  match (t.f_cfg.mode, t.f_tracer, t.f_core) with
  | Per_request, Some h, _ -> tracer_longest_gap h
  | Fluid, _, Some c ->
    core_longest_stall c ~now:(Simkit.Engine.now t.f_engine)
  | Hybrid, Some h, Some c ->
    (* Prefer the core's exact outage window when the bulk is live; an
       empty bulk (tracers = clients) falls back to the per-request
       completion-gap measure. *)
    if c.c_flows > 0.0 then
      core_longest_stall c ~now:(Simkit.Engine.now t.f_engine)
    else tracer_longest_gap h
  | _ -> 0.0

let fluid_sojourn c =
  let cap = c.c_server.srv_capacity_rps () in
  if c.c_rate <= 0.0 || cap <= 0.0 then None
  else begin
    let s = c.c_server.srv_service_time_s () in
    let rho = Float.min 0.999 (c.c_rate /. cap) in
    Some (s /. (1.0 -. rho))
  end

let latency_mean_s t =
  let from_hist h = Obs.Metric.Histogram.mean (Httperf.latency_histogram h) in
  match (t.f_tracer, t.f_core) with
  | Some h, _ when Obs.Metric.Histogram.count (Httperf.latency_histogram h) > 0
    ->
    from_hist h
  | _, Some c -> fluid_sojourn c
  | Some h, None -> from_hist h
  | None, None -> None

let latency_quantile_s t ~p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Fluid.latency_quantile_s: p outside (0, 1)";
  let from_hist h =
    Obs.Metric.Histogram.quantile (Httperf.latency_histogram h) ~p
  in
  match (t.f_tracer, t.f_core) with
  | Some h, _ when Obs.Metric.Histogram.count (Httperf.latency_histogram h) > 0
    ->
    from_hist h
  | _, Some c ->
    Option.map (fun mean -> mean *. -.Float.log (1.0 -. p)) (fluid_sojourn c)
  | Some h, None -> from_hist h
  | None, None -> None

let observe ?(prefix = "netsim.traffic") reg t =
  let p = prefix ^ "." ^ t.f_name in
  Obs.Registry.gauge reg (p ^ ".flows") (fun () -> flows t);
  Obs.Registry.gauge reg (p ^ ".offered_rps") (fun () -> offered_rps t);
  Obs.Registry.gauge reg (p ^ ".backlog") (fun () -> backlog t);
  Obs.Registry.gauge reg (p ^ ".tracer_requests") (fun () ->
      float_of_int (tracer_requests t))

(* --- open-loop dispatcher stream ----------------------------------------- *)

module Open = struct
  type t = {
    o_engine : Simkit.Engine.t;
    o_rate : float;
    o_epoch : float;
    o_served : unit -> float;
    mutable o_running : bool;
    mutable o_tick : Simkit.Engine.handle option;
    mutable o_offered : float;
    mutable o_lost : float;
  }

  let create engine ~rate_per_s ?(epoch_s = 0.1) ~served_fraction () =
    if rate_per_s < 0.0 then invalid_arg "Fluid.Open.create: negative rate";
    if epoch_s <= 0.0 then invalid_arg "Fluid.Open.create: epoch_s <= 0";
    {
      o_engine = engine;
      o_rate = rate_per_s;
      o_epoch = epoch_s;
      o_served = served_fraction;
      o_running = false;
      o_tick = None;
      o_offered = 0.0;
      o_lost = 0.0;
    }

  let rec tick t =
    if t.o_running then begin
      let served = Float.min 1.0 (Float.max 0.0 (t.o_served ())) in
      let slice = t.o_rate *. t.o_epoch in
      t.o_offered <- t.o_offered +. slice;
      t.o_lost <- t.o_lost +. (slice *. (1.0 -. served));
      t.o_tick <-
        Some
          (Simkit.Engine.schedule t.o_engine ~delay:t.o_epoch (fun () ->
               tick t))
    end

  let start t =
    if (not t.o_running) && t.o_rate > 0.0 then begin
      t.o_running <- true;
      t.o_tick <-
        Some
          (Simkit.Engine.schedule t.o_engine ~delay:t.o_epoch (fun () ->
               tick t))
    end

  let stop t =
    if t.o_running then begin
      t.o_running <- false;
      (match t.o_tick with
      | Some h -> Simkit.Engine.cancel t.o_engine h
      | None -> ());
      t.o_tick <- None
    end

  let offered t = int_of_float (Float.round t.o_offered)
  let lost t = int_of_float (Float.round t.o_lost)

  let loss_ratio t =
    if t.o_offered <= 0.0 then 0.0 else t.o_lost /. t.o_offered
end
