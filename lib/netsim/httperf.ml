type t = {
  engine : Simkit.Engine.t;
  gen_name : string;
  connections : int;
  retry_backoff_s : float;
  request : (bool -> unit) -> unit;
  mutable running : bool;
  mutable ok : int;
  mutable errors : int;
  events : Simkit.Series.Counter.t;
  latency : Obs.Metric.Histogram.t;
  completion_times : Simkit.Fvec.t; (* insertion order; O(1) append *)
}

let create engine ?(name = "httperf") ?(connections = 10)
    ?(retry_backoff_s = 0.5) ~request () =
  if connections <= 0 then invalid_arg "Httperf.create: connections <= 0";
  {
    engine;
    gen_name = name;
    connections;
    retry_backoff_s;
    request;
    running = false;
    ok = 0;
    errors = 0;
    events = Simkit.Series.Counter.create ~name ();
    latency = Obs.Metric.Histogram.create ();
    completion_times = Simkit.Fvec.create ();
  }

let rec connection_loop t =
  if t.running then begin
    let issued_at = Simkit.Engine.now t.engine in
    t.request (fun success ->
        let now = Simkit.Engine.now t.engine in
        if success then begin
          t.ok <- t.ok + 1;
          Simkit.Series.Counter.record t.events ~time:now;
          (* Latency of the successful attempt only: a retried request
             restarts the clock after its backoff. *)
          Obs.Metric.Histogram.observe t.latency (now -. issued_at);
          Simkit.Fvec.push t.completion_times now;
          connection_loop t
        end
        else begin
          t.errors <- t.errors + 1;
          ignore
            (Simkit.Engine.schedule t.engine ~delay:t.retry_backoff_s
               (fun () -> connection_loop t))
        end)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    for _ = 1 to t.connections do
      connection_loop t
    done
  end

let stop t = t.running <- false

let completed t = t.ok
let failed t = t.errors
let counter t = t.events
let latency_histogram t = t.latency

let observe ?(prefix = "netsim.httperf") reg t =
  let p = prefix ^ "." ^ t.gen_name in
  Obs.Registry.register reg (p ^ ".latency_s")
    (Obs.Registry.Histogram t.latency);
  Obs.Registry.gauge reg (p ^ ".completed") (fun () ->
      float_of_int t.ok);
  Obs.Registry.gauge reg (p ^ ".failed") (fun () -> float_of_int t.errors)

let completion_times t = t.completion_times

(* Completion timestamps are pushed in nondecreasing simulated-time
   order, so window endpoints are found by binary search: repeated
   windowed queries (bench fig8, fleet sampling) cost O(log n) each
   instead of a full pass over every completion. *)

(* Index of the first element >= [x] (n if none). *)
let lower_bound times n x =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Simkit.Fvec.get times mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the first element > [x] (n if none). *)
let upper_bound times n x =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Simkit.Fvec.get times mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let throughput_between t ~lo ~hi =
  (* Same contract as [Simkit.Series.Counter.rate_between]: closed
     interval [lo <= time <= hi], [Invalid_argument] on an empty one. *)
  if hi <= lo then invalid_arg "Counter.rate_between: empty interval";
  let times = t.completion_times in
  let n = Simkit.Fvec.length times in
  let count = upper_bound times n hi - lower_bound times n lo in
  float_of_int count /. (hi -. lo)

let mean_window_throughput t ~every =
  if every <= 0 then invalid_arg "Httperf.mean_window_throughput: every <= 0";
  let times = t.completion_times in
  let n = Simkit.Fvec.length times in
  (* Edge cases are part of the contract (see the .mli): an empty
     generator yields [] — never a nan-carrying sample — and the
     trailing block is reported only when complete. *)
  if n = 0 then []
  else begin
    (* One pass over the vector — nothing is rebuilt per query. The
       first completion both opens the first block and counts into it,
       matching the historical list-based fold exactly. *)
    let acc = ref [] in
    let start_time = ref (Simkit.Fvec.get times 0) in
    let count = ref 0 in
    for i = 0 to n - 1 do
      let time = Simkit.Fvec.get times i in
      incr count;
      if !count = every then begin
        let rate = float_of_int every /. Float.max (time -. !start_time) 1e-9 in
        acc := (time, rate) :: !acc;
        start_time := time;
        count := 0
      end
    done;
    (* [!count] completions (0 <= count < every) remain in an open
       block here; dropping them is deliberate — a partial block's
       average would be biased low while requests are in flight. *)
    List.rev !acc
  end
