(** Hybrid fluid-flow traffic model: O(flows) client aggregation.

    A client population is a piecewise-constant arrival-rate process and
    the server is a processor-sharing fluid queue: throughput, latency
    (via an M/G/1-PS approximation) and backlog evolve at rate-change
    {e epochs} and server state transitions, not per request. Driving a
    server with a million closed-loop clients costs O(epochs) engine
    events instead of O(requests) — the aggregation move that unlocks
    fleet scenarios with 1M+ modeled clients per host (doc/traffic.md).

    Three modes behind one interface:

    - {!Per_request} — today's {!Httperf} closed-loop generator,
      unchanged semantics (every request is a simulated event).
    - {!Fluid} — pure aggregate: no per-request events at all; the
      throughput timeline is reconstructed from the cumulative fluid
      completion curve.
    - {!Hybrid} — fluid bulk for [clients - tracers] flows plus a small
      per-request "tracer" cohort of [tracers] real {!Httperf}
      connections that preserves the Figure 7 throughput-timeline and
      retry-through-outage observables. The split is {e additive}: the
      bulk runs on the capacity the tracers measurably did not consume,
      and every observable is the sum of the two halves. With
      [tracers = clients] the bulk has zero flows, never schedules an
      event, contributes exact zeros — so every observable equals
      {!Per_request} bit-for-bit (the equivalence law in
      test/test_traffic.ml).

    The fluid path draws no random numbers and schedules only a fixed
    epoch tick, so seeded runs are byte-identical across event-queue
    backends and fleet partition counts. *)

type mode = Per_request | Fluid | Hybrid

val mode_enum : mode Simkit.Enum.t
(** ["per-request"], ["fluid"], ["hybrid"] (alias ["per_request"]) —
    the [--traffic] CLI flag and config files parse through this. *)

val mode_name : mode -> string

(** The server side of the fluid queue, as draw-free closures so the
    model tracks live state (reboots, fault tax, NIC degradation)
    without being coupled to any particular guest stack. *)
type server = {
  srv_is_up : unit -> bool;  (** service reachable right now *)
  srv_capacity_rps : unit -> float;
      (** saturation throughput (requests/s) of the bottleneck
          resource; 0 while down. Must be finite. *)
  srv_service_time_s : unit -> float;
      (** no-contention service time of one request, including any
          current fault tax *)
}

val static_server :
  ?up:(unit -> bool) ->
  capacity_rps:float ->
  service_time_s:float ->
  unit ->
  server
(** Fixed-rate server; [up] defaults to always-up. For tests and
    benches that do not need a live guest behind the queue. *)

type config = {
  mode : mode;
  clients : int;  (** total modeled closed-loop clients (flows) *)
  tracers : int;
      (** per-request tracer cohort size in {!Hybrid}; ignored by the
          other modes. Must satisfy [1 <= tracers <= clients]. *)
  think_time_s : float;  (** per-flow think time between requests *)
  retry_backoff_s : float;
      (** retry delay after a failed request — also the fluid ramp
          length after an outage, matching {!Httperf}'s backoff *)
  epoch_s : float;  (** fluid integration step (simulated seconds) *)
}

val default_config : config
(** [Per_request], 10 clients (the paper's 10 httperf processes),
    4 tracers, zero think time, 0.5 s backoff, 0.1 s epochs. *)

val config_label : config -> string
(** Compact ["mode=hybrid clients=1000000 tracers=8"]-style tag for
    experiment params and cache keys. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  config:config ->
  request:((bool -> unit) -> unit) ->
  server:server ->
  unit ->
  t
(** [request] drives the per-request path ({!Per_request} fully, the
    tracer cohort in {!Hybrid}; unused by {!Fluid}); [server] drives
    the fluid path (unused by {!Per_request}). Raises
    [Invalid_argument] on a non-positive [clients]/[epoch_s]/
    [retry_backoff_s], a negative [think_time_s], or a {!Hybrid}
    tracer count outside [1..clients]. *)

val start : t -> unit
val stop : t -> unit
(** Stops the epoch tick (cancelling the pending event) and the tracer
    generator; in-flight tracer requests complete. *)

val mode : t -> mode
val clients : t -> int

val completed : t -> int
(** Population-scale successful requests: raw count in {!Per_request},
    rounded fluid integral in {!Fluid}, tracer count plus rounded bulk
    integral in {!Hybrid}. *)

val failed : t -> int
(** Population-scale failed attempts (one per flow per backoff while
    the server is down), same composition as {!completed}. *)

val flows : t -> float
(** Total modeled flows — [float_of_int clients] in every mode. *)

val offered_rps : t -> float
(** Instantaneous offered request rate actually being simulated: the
    fluid bulk rate plus the tracer generator's last completed
    1 s-window rate. O(1). *)

val backlog : t -> float
(** Flows whose request is blocked on the outage (or still ramping
    back through their retry backoff after recovery). 0 when healthy
    and in {!Per_request}. *)

val tracer_requests : t -> int
(** Requests simulated individually: all of them in {!Per_request},
    the tracer cohort's in {!Hybrid}, 0 in {!Fluid}. *)

val throughput_between : t -> lo:float -> hi:float -> float
(** Population-scale completed requests per second over a closed
    window. Fluid side interpolates the cumulative completion curve
    (two O(log epochs) searches); tracer side binary-searches
    completion timestamps; {!Hybrid} is their sum. Raises
    [Invalid_argument] when [hi <= lo]. *)

val mean_window_throughput : t -> every:int -> (float * float) list
(** Figure 7 reporting: average throughput of each consecutive block
    of [every] completed {e population-scale} requests, as (block end
    time, requests/s). {!Fluid} synthesizes block boundaries where the
    cumulative curve crosses multiples of [every]; {!Hybrid} walks the
    combined curve (tracer steps + fluid bulk), degrading to the
    per-request computation verbatim when the bulk is empty
    ([tracers = clients]). Empty generator yields [[]]; a trailing
    partial block is dropped (see
    {!Httperf.mean_window_throughput}). *)

val longest_stall_s : t -> float
(** Longest outage observed so far — the Figure 7 outage width.
    Per-request: the largest gap between consecutive completions (0
    with fewer than two completions). Fluid (and {!Hybrid} with a live
    bulk): the longest contiguous run of server-down epochs, including
    a still-open one. *)

val latency_mean_s : t -> float option
(** Mean response time. Per-request/hybrid: the (tracer) latency
    histogram. Fluid: M/G/1-PS [S / (1 - rho)] at the current
    utilisation; [None] while idle or down. *)

val latency_quantile_s : t -> p:float -> float option
(** [p]-quantile response time. Fluid mode uses the exponential
    sojourn approximation [T * ln (1 / (1 - p))]. *)

val tracer : t -> Httperf.t option
(** The underlying per-request generator ({!Per_request} and
    {!Hybrid}); [None] in {!Fluid}. *)

val observe : ?prefix:string -> Obs.Registry.t -> t -> unit
(** Attach the four traffic gauges under ["<prefix>.<name>."] (default
    prefix ["netsim.traffic"]): [flows], [offered_rps], [backlog] and
    [tracer_requests]. All readers are draw-free. *)

(** Open-loop fluid arrival stream for dispatchers: a constant offered
    rate split across servers by a served-fraction closure, integrated
    at epochs. {!Cluster_sim} and [Rejuv.Fleet] use this in place of
    per-request Poisson routing when traffic mode is not
    {!Per_request} — no RNG, so partition-invariant by
    construction. *)
module Open : sig
  type t

  val create :
    Simkit.Engine.t ->
    rate_per_s:float ->
    ?epoch_s:float ->
    served_fraction:(unit -> float) ->
    unit ->
    t
  (** [served_fraction ()] is the instantaneous fraction of offered
      load that reaches a healthy server, clamped to [0..1] (e.g.
      healthy hosts / total hosts for the paper's blind balancer).
      [epoch_s] defaults to 0.1 s. Raises [Invalid_argument] on a
      negative rate or non-positive epoch. *)

  val start : t -> unit
  val stop : t -> unit

  val offered : t -> int
  (** Requests offered so far (rounded fluid integral). *)

  val lost : t -> int
  val loss_ratio : t -> float
  (** [lost / offered]; 0 before anything was offered. *)
end
