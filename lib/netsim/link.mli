(** Client-server network link.

    A latency + shared-bandwidth pipe between the client host and a
    server NIC, used by workload generators that want wire realism
    beyond the server NIC itself.

    A link can also span two shards of a partitioned simulation
    ({!create_cross}): the wire stays on the sending shard, and the
    propagation latency doubles as the shard pair's {e lookahead} in
    [Simkit.Par_engine]'s conservative protocol — the natural fit,
    since no delivery can undercut the speed of the wire. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  latency_ms:float ->
  gbit_per_s:float ->
  unit ->
  t

val create_cross :
  Simkit.Par_engine.t ->
  ?name:string ->
  src:int ->
  dst:int ->
  latency_ms:float ->
  gbit_per_s:float ->
  unit ->
  t
(** One-way link from shard [src] to shard [dst]. The wire (bandwidth
    contention) lives on [src]'s engine; completions are delivered
    through the coordinator at wire-exit time + latency, ordered by
    (time, sender shard, sequence). Registers [latency_ms] as the
    pair's lookahead, so the latency must be strictly positive (raises
    [Invalid_argument] otherwise). A reply path is simply a second
    cross link in the other direction. [src = dst] degrades to a local
    link on that shard. *)

val name : t -> string
val latency_s : t -> float

val send : t -> bytes:int -> (unit -> unit) -> unit
(** Deliver [bytes]: one propagation latency plus contended wire time.
    On a cross link the continuation runs on the destination shard. *)

val round_trip : t -> request_bytes:int -> response_bytes:int -> (unit -> unit) -> unit
(** Request out, response back: two latencies plus both transfers.
    Local links only — on a cross link the response would have to drive
    the wire from the far shard (raises [Invalid_argument]; use a pair
    of cross links instead). *)

val uncontended_time : t -> bytes:int -> float
