(* The wire (a shared-bandwidth Resource) always lives on the sending
   side's engine; what varies is where the far end of the propagation
   delay lands. [Local] completes on the same engine; [Remote] crosses
   a shard boundary through the partitioned coordinator, whose
   conservative protocol is safe here exactly because the channel's
   lookahead was registered as the link's propagation latency — no
   delivery can undercut it. *)
type far_end =
  | Local
  | Remote of { par : Simkit.Par_engine.t; src : int; dst : int }

type t = {
  engine : Simkit.Engine.t;
  link_name : string;
  latency : float;
  wire : Simkit.Resource.t;
  bytes_per_s : float;
  far_end : far_end;
}

let make engine ~name ~latency_ms ~gbit_per_s ~far_end =
  if latency_ms < 0.0 then invalid_arg "Link.create: negative latency";
  if gbit_per_s <= 0.0 then invalid_arg "Link.create: non-positive bandwidth";
  let bytes_per_s = gbit_per_s *. 1e9 /. 8.0 in
  {
    engine;
    link_name = name;
    latency = latency_ms /. 1000.0;
    wire = Simkit.Resource.create engine ~name ~capacity:bytes_per_s;
    bytes_per_s;
    far_end;
  }

let create engine ?(name = "link") ~latency_ms ~gbit_per_s () =
  make engine ~name ~latency_ms ~gbit_per_s ~far_end:Local

let create_cross par ?(name = "xlink") ~src ~dst ~latency_ms ~gbit_per_s () =
  if latency_ms <= 0.0 then
    invalid_arg "Link.create_cross: cross-partition latency must be positive";
  if src <> dst then
    (* The propagation latency is this pair's lookahead: every delivery
       is scheduled at send-completion time + latency, so nothing can
       arrive closer than that. Repeated registrations keep the pair's
       minimum, so many links may share one channel. *)
    Simkit.Par_engine.connect par ~src ~dst ~lookahead:(latency_ms /. 1000.0);
  make
    (Simkit.Par_engine.shard par src)
    ~name ~latency_ms ~gbit_per_s
    ~far_end:(Remote { par; src; dst })

let name t = t.link_name
let latency_s t = t.latency

let send t ~bytes k =
  if bytes < 0 then invalid_arg "Link.send: negative size";
  ignore
    (Simkit.Resource.submit t.wire ~work:(float_of_int bytes) (fun () ->
         match t.far_end with
         | Local -> Simkit.Process.delay t.engine t.latency k
         | Remote { par; src; dst } ->
           Simkit.Par_engine.send par ~src ~dst
             ~time:(Simkit.Engine.now t.engine +. t.latency)
             k))

let round_trip t ~request_bytes ~response_bytes k =
  (* On a cross link the response continuation runs on the far shard,
     where this link's wire must not be touched — a reply needs its own
     dst -> src link driven from over there. *)
  (match t.far_end with
  | Local -> ()
  | Remote _ ->
    invalid_arg "Link.round_trip: cross-partition link is one-way");
  send t ~bytes:request_bytes (fun () -> send t ~bytes:response_bytes k)

let uncontended_time t ~bytes =
  t.latency +. (float_of_int bytes /. t.bytes_per_s)
