(** httperf-style closed-loop load generator.

    Runs a fixed number of concurrent connections; each issues a request,
    waits for the full response, and immediately issues the next. Failed
    requests (server unreachable) are retried after a short backoff, so
    the generator rides through reboots and the throughput series shows
    the outage and the post-reboot recovery — Figure 7's methodology. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  ?connections:int ->
  ?retry_backoff_s:float ->
  request:((bool -> unit) -> unit) ->
  unit ->
  t
(** [request k] must eventually call [k success]. [connections]
    defaults to 10 (the paper's 10 httperf processes). *)

val start : t -> unit
val stop : t -> unit
(** In-flight requests complete but no new ones are issued. *)

val completed : t -> int
val failed : t -> int

val counter : t -> Simkit.Series.Counter.t
(** Completion events; use [rate_series] for the throughput timeline. *)

val latency_histogram : t -> Obs.Metric.Histogram.t
(** Response-time distribution of successful requests (simulated
    seconds from issue to completion; a retried request restarts the
    clock after its backoff). Percentiles via
    [Obs.Metric.Histogram.p95] etc. *)

val observe : ?prefix:string -> Obs.Registry.t -> t -> unit
(** Attach the latency histogram and completed/failed gauges under
    ["<prefix>.<generator name>."] (default prefix
    ["netsim.httperf"]). *)

val throughput_between : t -> lo:float -> hi:float -> float
(** Completed requests per second over a window. *)

val mean_window_throughput :
  t -> every:int -> (float * float) list
(** Average throughput of each consecutive block of [every] completed
    requests, as (block end time, requests/s) — the paper's "average
    throughput of 50 requests" reporting. Completion timestamps are
    kept in a growable vector ([Simkit.Fvec]): recording is O(1) and a
    query is one pass, with no per-query list rebuild. *)
