(** httperf-style closed-loop load generator.

    Runs a fixed number of concurrent connections; each issues a request,
    waits for the full response, and immediately issues the next. Failed
    requests (server unreachable) are retried after a short backoff, so
    the generator rides through reboots and the throughput series shows
    the outage and the post-reboot recovery — Figure 7's methodology. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  ?connections:int ->
  ?retry_backoff_s:float ->
  request:((bool -> unit) -> unit) ->
  unit ->
  t
(** [request k] must eventually call [k success]. [connections]
    defaults to 10 (the paper's 10 httperf processes). *)

val start : t -> unit
val stop : t -> unit
(** In-flight requests complete but no new ones are issued. *)

val completed : t -> int
val failed : t -> int

val counter : t -> Simkit.Series.Counter.t
(** Completion events; use [rate_series] for the throughput timeline. *)

val latency_histogram : t -> Obs.Metric.Histogram.t
(** Response-time distribution of successful requests (simulated
    seconds from issue to completion; a retried request restarts the
    clock after its backoff). Percentiles via
    [Obs.Metric.Histogram.p95] etc. *)

val observe : ?prefix:string -> Obs.Registry.t -> t -> unit
(** Attach the latency histogram and completed/failed gauges under
    ["<prefix>.<generator name>."] (default prefix
    ["netsim.httperf"]). *)

val completion_times : t -> Simkit.Fvec.t
(** Timestamps of successful completions in nondecreasing simulated
    time — one O(1) append per request. Read-only for callers (the
    fluid traffic layer measures outage gaps from it); mutating it
    corrupts the throughput queries. *)

val throughput_between : t -> lo:float -> hi:float -> float
(** Completed requests per second over the closed window
    [lo <= time <= hi]. Binary-searches the sorted completion
    timestamps for both endpoints, so each query is O(log
    completions) — repeated windowed queries (bench fig8, fleet
    sampling) no longer pay a full pass. Raises [Invalid_argument]
    when [hi <= lo] (same contract as
    [Simkit.Series.Counter.rate_between]). *)

val mean_window_throughput :
  t -> every:int -> (float * float) list
(** Average throughput of each consecutive block of [every] completed
    requests, as (block end time, requests/s) — the paper's "average
    throughput of 50 requests" reporting. Completion timestamps are
    kept in a growable vector ([Simkit.Fvec]): recording is O(1) and a
    query is one pass, with no per-query list rebuild.

    Edge behaviour, by contract: an empty generator returns [[]] (no
    nan-prone sentinel sample), and a trailing {e partial} block
    (fewer than [every] completions since the last full block) is
    dropped — its average would be biased low while requests are
    still in flight. Raises [Invalid_argument] when [every <= 0]. *)
