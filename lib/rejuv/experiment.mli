(** Runners for every experiment in the paper's Section 5 (and the
    Figure 9 model of Section 6). Each returns plain data; printing
    lives in the bench harness and the CLI.

    All runs are deterministic given the seed (default 42). *)

type reboot_run = {
  strategy : Strategy.t;
  vm_count : int;
  vm_mem_bytes : int;
  pre_task_s : float;  (** suspend / save / guest shutdown duration *)
  vmm_reboot_s : float;  (** VMM-only reboot portion *)
  post_task_s : float;  (** resume / restore / guest boot duration *)
  downtimes : float list;  (** per-VM longest service outage *)
  downtime_mean_s : float;
  downtime_max_s : float;
  spans : (string * float * float) list;  (** full trace *)
  saved_image_mib : float;
      (** size of the last saved VMM image (resident pages + execution
          state); 0 when the strategy never saved one *)
  restore_lag_s : float;
      (** how long after resume the last streamed restore kept paging
          cold pages in; 0 under stop-and-copy restore *)
}

val run_reboot :
  ?calibration:Calibration.t ->
  ?workload:Scenario.workload ->
  ?seed:int ->
  ?memdyn:Mem.Memdyn.t ->
  ?settle_s:float ->
  ?horizon_s:float ->
  strategy:Strategy.t ->
  vm_count:int ->
  vm_mem_bytes:int ->
  unit ->
  reboot_run
(** Boot the testbed, attach probers, run one VMM rejuvenation with the
    given strategy, and measure. [memdyn] (default off) enables the
    memory-dynamics subsystem — dirty-page tracking, pre-suspend
    ballooning, streamed restore — on every VM. Raises
    [Simkit.Fault.Error] if any VM fails to come back before the
    horizon ([Not_recovered]) or the run misses its deadline
    ([Timeout]). *)

(** {1 Figure 4/5: pre- and post-reboot task times} *)

type task_times = {
  x : int;  (** memory in GiB (fig 4) or VM count (fig 5) *)
  onmem_suspend_s : float;
  onmem_resume_s : float;
  xen_save_s : float;
  xen_restore_s : float;
  shutdown_s : float;
  boot_s : float;
}

val fig4 :
  ?mem_gib:int list -> ?memdyn:Mem.Memdyn.t -> unit -> task_times list
(** One VM, memory swept 1–11 GiB (paper default). *)

val fig5 :
  ?vm_counts:int list -> ?memdyn:Mem.Memdyn.t -> unit -> task_times list
(** 1 GiB per VM, count swept 1–11. *)

(** {1 Section 5.2: effect of quick reload} *)

type reload_times = { quick_reload_s : float; hardware_reset_s : float }

val quick_reload_effect : unit -> reload_times
(** VMM reboot duration, dom0-shutdown-complete to reboot-complete,
    with no domain Us. *)

(** {1 Figure 6: downtime of networked services} *)

type fig6_row = {
  n : int;
  warm_downtime_s : float;
  saved_downtime_s : float;
  cold_downtime_s : float;
}

val fig6 :
  ?vm_counts:int list ->
  ?memdyn:Mem.Memdyn.t ->
  workload:Scenario.workload ->
  unit ->
  fig6_row list

(** {1 Section 5.3: availability} *)

val run_os_rejuvenation :
  ?workload:Scenario.workload -> unit -> float
(** Downtime of rebooting one guest OS (the paper's 33.6 s with
    JBoss). *)

val availability_table :
  ?os_downtime_s:float ->
  vmm_downtimes:(Strategy.t * float) list ->
  unit ->
  (Strategy.t * float) list
(** Section 5.3's availability figures from measured downtimes. *)

(** {1 Figure 7: downtime breakdown with a live web workload} *)

type fig7_result = {
  f7_strategy : Strategy.t;
  reboot_command_at : float;
  throughput : (float * float) list;
      (** mean throughput of consecutive 50-request windows *)
  f7_spans : (string * float * float) list;
  web_down_at : float option;
  web_up_at : float option;
  chrome_trace_json : string;
      (** the run's operation timeline in Chrome trace-event format
          (viewable at ui.perfetto.dev) *)
}

val fig7 : strategy:Strategy.t -> unit -> fig7_result

(** {1 Figure 8: throughput before/after the reboot} *)

type before_after = {
  first_before : float;
  second_before : float;
  first_after : float;
  second_after : float;
  degradation : float;
      (** 1 - first_after/first_before; the paper's 91 % / 69 % *)
}

val fig8_file : strategy:Strategy.t -> unit -> before_after
(** 512 MB file read throughput (MiB/s), 11 GiB VM. *)

val fig8_web : strategy:Strategy.t -> unit -> before_after
(** Web throughput (req/s) serving 10,000 x 512 KiB cached files.
    [second_*] report the steady window after the first. *)

(** {1 Section 5.6: fitted model} *)

val section_5_6_fits : ?vm_counts:int list -> unit -> Downtime_model.fits
(** Re-measure the model's component functions on the simulator and
    fit lines, as the paper does from its testbed. *)

(** {1 Elastic restore: memdyn mode x working set x disk} *)

type elastic_row = {
  er_mode : Mem.Memdyn.mode;
  er_working_set : float;  (** working-set fraction of RAM *)
  er_disk : string;  (** calibration name: "hdd2007" or "nvme" *)
  er_downtime_s : float;  (** longest service outage (saved reboot) *)
  er_image_mib : float;  (** saved VMM image size *)
  er_restore_lag_s : float;
      (** post-resume cold-page streaming duration *)
}

val run_elastic_cell :
  ?seed:int ->
  workload:Scenario.workload ->
  Mem.Memdyn.mode * float * (string * Calibration.t) ->
  elastic_row
(** One ["elastic_restore"] grid cell: a 1 GiB VM under the saved
    reboot with the given memdyn mode, working-set fraction, and named
    disk calibration. *)

val fleet_cell :
  ?partitions:int ->
  ?load_rate_per_s:float ->
  ?memdyn:Mem.Memdyn.t ->
  ?traffic:Netsim.Fluid.config ->
  seed:int ->
  hosts:int ->
  width:int ->
  slo:float ->
  strategy:Wave.strategy ->
  unit ->
  Fleet.report
(** One cell of the ["fleet_rolling"] grid: build a fresh {!Fleet} on
    its own engine — spread over [partitions] shards/domains (default
    1; Migrate cells always pin to 1) — boot it, roll one full
    rejuvenation pass. The report is byte-identical for every
    [partitions] value, so partitioning is a performance knob, not a
    cache-key ingredient ([load_rate_per_s], default 50, {e is} one).
    [traffic] (default {!Netsim.Fluid.default_config}, i.e.
    [Per_request]) selects the client-stream model on every host — see
    {!Fleet.Config.t}. *)

(** {1 Elastic traffic: model mode x client population x strategy} *)

type traffic_row = {
  tw_mode : Netsim.Fluid.mode;
  tw_clients : int;  (** closed-loop client population *)
  tw_strategy : Strategy.t;
  tw_steady_rps : float;
      (** pre-reboot steady throughput (5 s .. 20 s after boot) *)
  tw_outage_s : float;  (** longest zero-throughput stall *)
  tw_completed : int;  (** modeled completions (scaled in hybrid) *)
  tw_failed : int;  (** modeled failures through the outage *)
  tw_tracer_requests : int;
      (** actual per-request completions simulated (0 in pure fluid) *)
}

val traffic_cell_key : Netsim.Fluid.mode * int * Strategy.t -> string
(** Stable shard-key suffix, e.g. ["m=hybrid/c=0001000/s=warm"]. *)

val run_traffic_cell :
  ?seed:int -> Netsim.Fluid.mode * int * Strategy.t -> traffic_row
(** One ["elastic_traffic"] grid cell: a fig7-shaped scenario (Web
    workload, 500 x 512 KiB warm) whose client stream runs under the
    given {!Netsim.Fluid.mode}, rebooted at t=20 s with the given
    strategy. *)

(** {1 Uniform results}

    Every experiment's result, wrapped in one sum type so generic
    tooling — the CLI's [--csv]/[--json] exporters, the sweep runner's
    cache — can handle all of them uniformly. The typed records above
    remain the primary API; [Result.t] is the transport. *)

module Result : sig
  type t =
    | Task_times of task_times list  (** figures 4 and 5 *)
    | Reload of reload_times  (** section 5.2 *)
    | Fig6 of fig6_row list
    | Fig7 of fig7_result
    | Before_after of before_after  (** figure 8 *)
    | Availability of (Strategy.t * float) list  (** section 5.3 *)
    | Fits of Downtime_model.fits  (** section 5.6 *)
    | Timeline of (string * (float * float) list) list
        (** named (time, value) series — the figure 9 cluster model *)
    | Scalar of { label : string; value : float }
    | Fault_matrix of Fault_matrix.cell list
        (** the fault-injection campaign *)
    | Fleet of Fleet.report list
        (** the fleet-scale rolling-rejuvenation grid *)
    | Elastic of elastic_row list
        (** the memory-dynamics restore grid *)
    | Traffic of traffic_row list
        (** the traffic-model grid (["elastic_traffic"]) *)

  val kind : t -> string
  (** Constructor name, for dispatch and the JSON envelope. *)

  val to_json : t -> string
  (** Compact JSON: [{"kind": ..., "data": ...}]. Hand-rolled, no
      external dependencies. *)

  val csv : t -> string list * string list list
  (** [(header, rows)] for the generic CSV exporter. *)

  val merge : t list -> t
  (** Combine the shard results of one experiment (concatenating row
      lists, in the given order). Raises [Invalid_argument] on an empty
      list or on structurally incompatible results. *)
end

(** {1 The experiment registry}

    Every entry point above is also registered as a {!Spec.t} under a
    stable id — ["fig4"], ["fig5"], ["fig6"], ["quick_reload"],
    ["os_rejuvenation"], ["availability"], ["fig7"], ["fig8_file"],
    ["fig8_web"], ["section_5_6_fits"], ["fig9"], ["fault_matrix"],
    ["fleet_rolling"], ["elastic_restore"], ["elastic_traffic"] — so
    the CLI, the bench harness and the sweep
    runner can enumerate and run them uniformly. *)

module Spec : sig
  type params = {
    seed : int;  (** engine seed; all runs are deterministic given it *)
    workload : Scenario.workload;  (** used by fig6 *)
    strategy : Strategy.t;  (** used by fig7 / fig8_* / fault_matrix *)
    vm_counts : int list option;
        (** [None] = the experiment's paper-default sweep *)
    mem_gib : int list option;  (** [None] = paper default (fig4) *)
    site : string option;
        (** pins [fault_matrix] to one injection site; [None] = grid *)
    smoke : bool;
        (** shrink [fault_matrix] / [fleet_rolling] to a single small
            cell (CI smoke runs) *)
    fleet_hosts : int list option;
        (** [fleet_rolling] fleet sizes; [None] = [[50; 200]] *)
    wave_widths : int list option;
        (** [fleet_rolling] wave widths; [None] = [[4; 16]] *)
    wave_strategy : Wave.strategy option;
        (** pins [fleet_rolling] to one strategy; [None] = all four *)
    slo : float;
        (** [fleet_rolling] healthy-host fraction target; default 0.75 *)
    partitions : int;
        (** shards each [fleet_rolling] cell runs on; default 1.
            Deliberately not part of {!params_key}: a fleet cell is
            byte-identical for every partition count, so the sweep
            cache may serve it computed at any partitioning. *)
    memdyn : Mem.Memdyn.mode;
        (** memory-dynamics mode for [fig4] / [fig5] /
            [fleet_rolling]; default [Off], the exact pre-memdyn code
            path. The remaining memdyn knobs stay at
            [Mem.Memdyn.default]. *)
    cell : string option;
        (** pins [elastic_restore] / [elastic_traffic] to one grid
            cell (the shard-key suffix, e.g.
            ["m=stream/ws=035/d=hdd2007"]); [None] = the full grid. *)
    traffic : Netsim.Fluid.mode option;
        (** traffic model for [elastic_traffic] (pins the mode axis)
            and [fleet_rolling] (selects the per-host stream model);
            [None] = the experiment default — the full mode axis for
            [elastic_traffic], [Per_request] for [fleet_rolling]. *)
    clients : int list option;
        (** [elastic_traffic] client populations;
            [None] = [[10; 1000; 100000]] (per-request cells cap at
            1000). *)
  }

  val default_params : params

  val params_key : params -> string
  (** Canonical one-line rendering, used in cache keys: equal params
      always produce equal strings. *)

  type t = {
    id : string;
    doc : string;
    shards : params -> (string * params) list;
        (** Independent, embarrassingly parallel units of this
            experiment — one per swept point — each with a unique key
            whose lexicographic order is the merge order. Single-run
            experiments return one shard keyed by [id]. *)
    run : params -> Result.t;
        (** Execute one shard. Self-contained: builds its own engine
            and RNG from [params.seed]; safe to call from any domain. *)
  }

  val register : t -> unit
  (** Raises [Invalid_argument] on duplicate ids. *)

  val find : string -> t option
  val find_exn : string -> t

  val all : unit -> t list
  (** All registered specs, sorted by id. *)

  val ids : unit -> string list
end

(** {1 Parallel sweeps} *)

val calibration_hash : Calibration.t -> string
(** Digest of a calibration's timing constants — part of every cache
    key, so recalibrating the simulated testbed invalidates cached
    results. *)

val sweep_tasks :
  ?params:Spec.params -> string list -> Result.t Runner.Sweep.task list
(** Expand experiment ids into their shards as runner tasks, with cache
    keys derived from (shard key, params, seed, calibration hash). *)

val sweep :
  ?jobs:int ->
  ?cache:Runner.Cache.t ->
  ?verify_isolation:bool ->
  ?params:Spec.params ->
  string list ->
  (string * (Result.t, Simkit.Fault.t) result) list
  * Result.t Runner.Sweep.outcome list
(** Run the named experiments' shards through {!Runner.Sweep.run} —
    across [jobs] domains, consulting [cache] when given — and merge
    the shard results back into one value per experiment id (in the
    order requested). An experiment whose shard faulted merges to
    [Error] (the first fault in key order) instead of aborting the
    whole sweep; the other experiments still report [Ok]. Also returns
    the raw per-shard outcomes with their wall-clock / simulated-event
    metrics. The merged results are byte-identical to a sequential
    run: shard order is fixed by key, never by completion. *)
