(** The warm-VM reboot — the paper's contribution.

    Sequence (Sections 3.1 and 4):

    + dom0 runs its shutdown script — guest services keep answering,
      which alone buys several seconds of uptime over the cold path;
    + the VMM (not dom0) sends suspend events to every domain U and
      freezes each memory image in place (on-memory suspend);
    + the VMM reboots itself through the xexec quick-reload path — no
      hardware reset, frozen images re-reserved before the scrub;
    + dom0 boots; the toolstack resumes each domain U from its frozen
      image (on-memory resume); page caches and processes are intact;
    + optionally, the transient network degradation Xen shows after
      creating many domains at once is modelled for
      [warm_artifact_duration_s].

    Faults along the way are handled per the {!Recovery.policy}: a
    failed suspend abandons that domain (rebuilt fresh after the
    reload), a failed resume is retried and then abandoned, a failed
    quick reload falls back to finishing the reboot cold (hardware
    reset — every frozen image is lost), and a failed xexec staging
    proceeds with an in-outage image load.

    Trace spans emitted (on the host trace): ["pre-reboot tasks"],
    ["vmm reboot"], ["post-reboot tasks"] plus the finer-grained spans
    from the VMM layer. *)

val execute :
  ?policy:Recovery.policy -> Scenario.t -> (Recovery.outcome -> unit) -> unit
(** Run one warm-VM reboot of the scenario's host. The continuation
    receives the {!Recovery.outcome}; unless [outcome.fatal] is set,
    every surviving VM answers again when it fires (and any artifact
    window has been set up — the artifact outlives the task).
    [policy] defaults to {!Recovery.default}. *)
