module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Fault = Simkit.Fault

let apply_network_artifact scenario =
  let cal = Scenario.calibration scenario in
  if
    cal.Calibration.enable_warm_artifact
    && List.length (Scenario.vms scenario) > 1
  then
    Scenario.arm_network_artifact scenario
      (Scenario.host scenario).Hw.Host.nic
      ~factor:cal.Calibration.warm_artifact_factor
      ~duration_s:cal.Calibration.warm_artifact_duration_s

(* Driver domains cannot be suspended (Section 7): like the cold path,
   they are shut down before the reload and re-provisioned after. *)
let shutdown_drivers scenario drivers k =
  let vmm = Scenario.vmm scenario in
  Simkit.Process.par
    (List.map (fun v -> Guest.Kernel.shutdown (Scenario.vm_kernel v)) drivers)
    (fun () ->
      Simkit.Process.par
        (List.map
           (fun v k -> Vmm.destroy_domain vmm (Scenario.vm_domain v) k)
           drivers)
        k)

(* Rebuild a set of VMs from scratch under the run's policy: retries
   per VM, then either abandon (the VM is lost for good) or declare the
   run fatal. *)
let reprovision run scenario vms k =
  let policy = run.Recovery.run_policy in
  let provision_one v k =
    Recovery.with_retries run ~step:"reprovision"
      (fun k -> Scenario.provision_vm scenario v k)
      (function
        | `Ok -> k ()
        | `Gave_up f ->
          if policy.Recovery.abandon_failed_domains then
            Recovery.abandon run (Scenario.vm_name v)
          else Recovery.set_fatal run f;
          k ())
  in
  Simkit.Process.par (List.map provision_one vms) k

let execute ?(policy = Recovery.default) scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let tr = Scenario.trace scenario in
  let run = Recovery.start ~policy Strategy.Warm in
  let finish () = k (Recovery.finish run) in
  Simkit.Trace.instant tr "reboot command (warm)";
  let drivers = List.filter Scenario.vm_is_driver (Scenario.vms scenario) in
  let guests =
    List.filter (fun v -> not (Scenario.vm_is_driver v)) (Scenario.vms scenario)
  in
  let suspend k =
    let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
    Vmm.suspend_all_on_memory vmm (fun () ->
        Simkit.Trace.end_span tr pre;
        k ())
  in
  let dom0_down k = Vmm.shutdown_dom0 vmm k in
  (* RootHammer delays the suspend until after dom0's shutdown so the
     services answer as long as possible; the ablation knob restores the
     original-Xen ordering where dom0 drives the suspends while it is
     itself going down. *)
  let preamble k =
    if cal.Calibration.suspend_before_dom0_shutdown then
      suspend (fun () -> dom0_down k)
    else dom0_down (fun () -> suspend k)
  in
  (* dom0 stages the new executable image (xexec) while it is still up,
     so the image's disk read stays outside the outage. *)
  let stage_image k =
    Vmm.xexec_load vmm (function
      | Ok () -> k ()
      | Error e ->
        Recovery.note run ~step:"xexec" e;
        if policy.Recovery.fallback then
          (* Proceed without a staged image: quick reload stages a
             default one on the fly, moving its disk read into the
             outage — slower, not fatal. *)
          k ()
        else begin
          Recovery.set_fatal run e;
          finish ()
        end)
  in
  (* A failed quick reload leaves the machine wedged with every frozen
     image stranded in RAM: fall back to finishing the reboot cold —
     hardware reset (the images are lost), then rebuild everything. *)
  let cold_finish k =
    Recovery.fell_back run Strategy.Cold;
    List.iter (fun v -> Recovery.abandon run (Scenario.vm_name v)) guests;
    Vmm.hardware_reset vmm (fun () ->
        Vmm.boot_dom0 vmm (fun () ->
            reprovision run scenario (Scenario.vms scenario) k))
  in
  (* xend resumes the suspended domains one at a time; a resume failure
     leaves the image frozen, so it can be retried before the domain is
     given up and rebuilt from scratch. *)
  let resume_all k =
    let engine = Scenario.engine scenario in
    let suspended =
      List.filter
        (fun v -> Domain.state (Scenario.vm_domain v) = Domain.Suspended)
        guests
    in
    let rebuilds = ref [] in
    let resume_one v k =
      Recovery.with_retries run ~step:"resume"
        (fun k ->
          Simkit.Process.delay engine cal.Calibration.resume_dispatch_s
            (fun () ->
              Vmm.resume_domain_on_memory vmm (Scenario.vm_domain v) k))
        (function
          | `Ok -> k ()
          | `Gave_up f ->
            if policy.Recovery.abandon_failed_domains then begin
              Recovery.abandon run (Scenario.vm_name v);
              (* Tear the frozen carcass down; rebuilt fresh below. *)
              Vmm.destroy_domain vmm (Scenario.vm_domain v) (fun () ->
                  rebuilds := v :: !rebuilds;
                  k ())
            end
            else begin
              Recovery.set_fatal run f;
              k ()
            end)
    in
    Simkit.Process.seq (List.map resume_one suspended) (fun () ->
        k (List.rev !rebuilds))
  in
  stage_image (fun () ->
  shutdown_drivers scenario drivers (fun () ->
      preamble (fun () ->
          (* Guests whose suspend failed are already [Crashed]; their
             images will not survive the reload. *)
          let crashed =
            List.filter
              (fun v -> Domain.state (Scenario.vm_domain v) = Domain.Crashed)
              guests
          in
          List.iter
            (fun v ->
              Recovery.note run ~step:"suspend"
                (Fault.Suspend_failed (Scenario.vm_name v));
              if policy.Recovery.abandon_failed_domains then
                Recovery.abandon run (Scenario.vm_name v)
              else
                Recovery.set_fatal run
                  (Fault.Suspend_failed (Scenario.vm_name v)))
            crashed;
          if run.Recovery.run_fatal <> None then finish ()
          else
          let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
          Vmm.quick_reload vmm (function
            | Error e ->
              Recovery.note run ~step:"quick_reload" e;
              if policy.Recovery.fallback then
                cold_finish (fun () ->
                    Simkit.Trace.end_span tr reboot;
                    finish ())
              else begin
                Recovery.set_fatal run e;
                finish ()
              end
            | Ok () ->
              Vmm.boot_dom0 vmm (fun () ->
                  Simkit.Trace.end_span tr reboot;
                  let post = Simkit.Trace.begin_span tr "post-reboot tasks" in
                  resume_all (fun rebuilds ->
                      if run.Recovery.run_fatal <> None then finish ()
                      else
                        reprovision run scenario (drivers @ crashed @ rebuilds)
                          (fun () ->
                            Simkit.Trace.end_span tr post;
                            if run.Recovery.run_fatal = None then
                              apply_network_artifact scenario;
                            finish ())))))))
