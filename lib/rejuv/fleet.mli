(** Fleet-scale rolling rejuvenation control plane.

    Scales the {!Cluster_sim} pair-of-hosts picture up to a consolidated
    {e fleet}: hundreds of hosts — each a full {!Scenario} stack — in
    one simulation, plus one spare host kept empty as a migration
    target. A {!Wave.plan} partitions the fleet into rolling waves; the
    control plane walks the waves, rejuvenating each wave's hosts
    concurrently (or migrating their guests away first), under an
    open-loop Poisson client stream dispatched across the fleet.

    {b Partitioned time.} Host stacks share no mutable simulation
    state, so the fleet can spread them over
    [Config.partitions] shards of a [Simkit.Par_engine] (host [i] on
    shard [i mod partitions]; the spare pinned to shard 0) and run them
    on as many domains. All cross-host coupling — SLO admission,
    redirect freshness, task launches, capacity sampling — happens on
    the coordinator at the fixed [sync_quantum_s] barrier grid, and
    per-host load streams are seeded from (fleet seed, host index):
    together these make a seeded run {e byte-identical for every
    partition count}, 1 included (which runs the same barrier loop
    inline). Migrate waves funnel through the shared spare, so they
    require [partitions = 1].

    The SLO guard is enforced twice. Statically, {!Wave.plan} caps the
    wave width at the capacity slack above the SLO floor. Dynamically,
    before each host is admitted into its wave the control plane checks
    that the {e projected} healthy-host count — current healthy hosts
    minus those the wave is about to take down — stays at or above the
    floor; a host that would breach it is deferred (bounded retries)
    and ultimately skipped rather than admitted.

    Instrumented through [Obs]: [fleet.healthy_hosts] and
    [fleet.capacity_fraction] pull gauges, a [fleet.wave_index] push
    gauge, a [fleet.hosts_rejuvenated] counter, and a capacity sampler
    whose series backs the [min_healthy]/[mean_healthy] report fields. *)

module Config : sig
  type t = {
    hosts : int;  (** fleet size; default 16 *)
    host : Scenario.Config.t;
        (** per-host template, as in {!Cluster_sim.Config} *)
    wave_width : int;
        (** requested hosts per wave — clamped to the SLO slack by
            {!Wave.plan}; default 4 *)
    slo : float;
        (** fraction of hosts that must stay healthy; default 0.7 *)
    gap_s : float;  (** idle time between waves; default 10 s *)
    load_rate_per_s : float;
        (** client stream offered across the fleet; default 200 req/s.
            With [host.traffic] mode [Per_request] this is the
            historical per-host Poisson split. [Fluid]/[Hybrid] carry
            the bulk as one epoch-integrated flow stream per host
            ({!Netsim.Fluid.Open}) — O(epochs) events and no RNG, so a
            host can model 1M+ flows; when [host.traffic] has a
            positive think time the per-host rate becomes
            [clients / think_time_s] (each closed-loop flow offers
            ~1/think req/s), otherwise this knob split as before.
            [Hybrid] additionally keeps a tracer-sized Poisson cohort
            per-request, seeded exactly like the per-request
            streams. *)
    blind_dispatch : bool;
        (** health-oblivious dispatch (see {!Cluster_sim.Config}) *)
    sample_interval_s : float;  (** capacity sampling period; default 5 s *)
    partitions : int;
        (** shards the host stacks are spread over (clamped to the
            fleet size); default 1 — the classic single-domain run *)
    sync_quantum_s : float;
        (** control-plane barrier period: admission checks, deferral
            retries and wave starts all happen on this grid; default
            2 s (the old admission retry period) *)
  }

  val default : t
end

type t

val create : Config.t -> t
(** Build the fleet (and its spare host) on a partitioned engine seeded
    from [host.seed], and register the fleet and [par.*] shard gauges
    into the ambient [Obs] registry. Raises [Invalid_argument] on a
    non-positive fleet size, partition count or quantum. *)

val config : t -> Config.t

val par : t -> Simkit.Par_engine.t
(** The partitioned engine; [Par_engine.shard] exposes the per-shard
    engines (shard 0 doubles as the control/spare shard). *)

val spare : t -> Scenario.t
val healthy_hosts : t -> int

val start : t -> unit
(** Boot every fleet host and the spare, driving the shards until all
    are up. *)

type wave_report = {
  wave_index : int;
  wave_hosts : int list;  (** hosts actually admitted *)
  started_at_s : float;
  wave_makespan_s : float;  (** admission start to last host recovered *)
  deferred : int;  (** admission retries taken by this wave *)
}

type report = {
  fr_strategy : Wave.strategy;
  hosts : int;
  wave_width : int;  (** effective width, after the SLO clamp *)
  slo : float;
  slo_floor : int;
  waves : wave_report list;
  makespan_s : float;  (** first wave start to last wave settled *)
  offered : int;
  lost : int;
  loss_ratio : float;
  min_healthy : int;  (** over capacity samples during the run *)
  mean_healthy : float;
  slo_met : bool;  (** [min_healthy >= slo_floor] *)
  skipped : int list;
      (** hosts never admitted — SLO guard exhausted its retries *)
}

val run : t -> strategy:Wave.strategy -> report
(** Execute one full rolling pass over a started fleet: plan the waves,
    start the per-host load streams, walk the waves one quantum barrier
    at a time (admission, launches and sampling all happen at barriers,
    on the coordinator, with every shard parked), settle, stop the
    load, and report. [Reboot] waves rejuvenate their hosts
    concurrently — across domains when partitioned; [Migrate] waves go
    host by host, because the spare's memory and the migration link are
    shared (and therefore fail with [Fault.Invariant] when
    [partitions > 1]). Per-host faults are traced and do not wedge the
    pass — an unrecovered host simply stays unhealthy (and counts
    against [min_healthy]). *)
