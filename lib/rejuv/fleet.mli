(** Fleet-scale rolling rejuvenation control plane.

    Scales the {!Cluster_sim} pair-of-hosts picture up to a consolidated
    {e fleet}: hundreds of hosts — each a full {!Scenario} stack — in
    one simulation, plus one spare host kept empty as a migration
    target. A {!Wave.plan} partitions the fleet into rolling waves; the
    control plane walks the waves, rejuvenating each wave's hosts
    concurrently (or migrating their guests away first), under an
    open-loop Poisson client stream dispatched across the fleet.

    The SLO guard is enforced twice. Statically, {!Wave.plan} caps the
    wave width at the capacity slack above the SLO floor. Dynamically,
    before each host is admitted into its wave the control plane checks
    that the {e projected} healthy-host count — current healthy hosts
    minus those the wave is about to take down — stays at or above the
    floor; a host that would breach it is deferred (bounded retries)
    and ultimately skipped rather than admitted.

    Instrumented through [Obs]: [fleet.healthy_hosts] and
    [fleet.capacity_fraction] pull gauges, a [fleet.wave_index] push
    gauge, a [fleet.hosts_rejuvenated] counter, and a capacity sampler
    whose series backs the [min_healthy]/[mean_healthy] report fields. *)

module Config : sig
  type t = {
    hosts : int;  (** fleet size; default 16 *)
    host : Scenario.Config.t;
        (** per-host template, as in {!Cluster_sim.Config} *)
    wave_width : int;
        (** requested hosts per wave — clamped to the SLO slack by
            {!Wave.plan}; default 4 *)
    slo : float;
        (** fraction of hosts that must stay healthy; default 0.7 *)
    gap_s : float;  (** idle time between waves; default 10 s *)
    load_rate_per_s : float;  (** Poisson client stream; default 200 req/s *)
    blind_dispatch : bool;
        (** health-oblivious dispatch (see {!Cluster_sim.Config}) *)
    sample_interval_s : float;  (** capacity sampling period; default 5 s *)
  }

  val default : t
end

type t

val create : Config.t -> t
(** Build the fleet (and its spare host) on one engine seeded from
    [host.seed], and register the fleet gauges into the ambient [Obs]
    registry. Raises [Invalid_argument] on a non-positive fleet size. *)

val config : t -> Config.t
val engine : t -> Simkit.Engine.t
val cluster : t -> Cluster_sim.t
val spare : t -> Scenario.t
val healthy_hosts : t -> int

val start : t -> unit
(** Boot every fleet host and the spare, driving the engine until all
    are up. *)

type wave_report = {
  wave_index : int;
  wave_hosts : int list;  (** hosts actually admitted *)
  started_at_s : float;
  wave_makespan_s : float;  (** admission start to last host recovered *)
  deferred : int;  (** admission retries taken by this wave *)
}

type report = {
  fr_strategy : Wave.strategy;
  hosts : int;
  wave_width : int;  (** effective width, after the SLO clamp *)
  slo : float;
  slo_floor : int;
  waves : wave_report list;
  makespan_s : float;  (** first wave start to last wave settled *)
  offered : int;
  lost : int;
  loss_ratio : float;
  min_healthy : int;  (** over capacity samples during the run *)
  mean_healthy : float;
  slo_met : bool;  (** [min_healthy >= slo_floor] *)
  skipped : int list;
      (** hosts never admitted — SLO guard exhausted its retries *)
}

val run : t -> strategy:Wave.strategy -> report
(** Execute one full rolling pass over a started fleet: plan the waves,
    start the load, walk the waves (driving the engine to completion),
    settle, stop the load, and report. [Reboot] waves rejuvenate their
    hosts concurrently; [Migrate] waves go host by host, because the
    spare's memory and the migration link are shared. Per-host faults
    are traced and do not wedge the pass — an unrecovered host simply
    stays unhealthy (and counts against [min_healthy]). *)
