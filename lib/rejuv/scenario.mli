(** The consolidated-server testbed: one host, one VMM, [n] domain Us
    each running one workload.

    A {!vm} keeps a stable identity across VMM reboots even when the
    underlying domain is destroyed and re-created (the cold path), so
    probers and experiments can measure "the service in VM 3" across the
    whole timeline. *)

type workload =
  | Ssh
  | Jboss
  | Web of { file_count : int; file_bytes : int; warm_cache : bool }

val workload_name : workload -> string

val workload_enum : workload Simkit.Enum.t
(** ["ssh"], ["jboss"], ["web"] — ["web"] carries the Figure 7
    cached-file defaults. Non-default [Web] payloads print through
    {!workload_name}, not [Simkit.Enum.name]. *)

val workload_of_string : string -> (workload, [> `Msg of string ]) result
(** {!Simkit.Enum.of_string} on {!workload_enum}; the error message is
    CLI-ready, so this doubles as a [Cmdliner.Arg.conv] parser. *)

type vm

val vm_name : vm -> string
val vm_mem_bytes : vm -> int
val vm_workload : vm -> workload

(** [vm_is_driver vm]: driver domains run device drivers and cannot be
    suspended; a warm-VM reboot shuts them down and reboots them
    (Section 7). *)
val vm_is_driver : vm -> bool
val vm_kernel : vm -> Guest.Kernel.t
val vm_domain : vm -> Xenvmm.Domain.t
val vm_services : vm -> Guest.Service.t list
val vm_httpd : vm -> Guest.Httpd.t option

val vm_is_up : vm -> bool
(** All of the VM's services reachable — the prober predicate. *)

type t

(** Everything {!create} needs, as one overridable record. Start from
    {!Config.default} and override fields — record update syntax
    ([{ Config.default with vm_count = 3 }]) or the [with_*]
    combinators, which pipeline:

    {[
      Scenario.Config.(default |> with_vms 3 |> with_workload Jboss)
      |> Scenario.create
    ]}

    This replaces the old seven-optional-argument [create]; every knob
    now has a name, a documented default, and travels as a value
    (through {!Cluster_sim} and [Fleet], which stamp per-host prefixes
    and engines onto a shared template). *)
module Config : sig
  type scenario_workload := workload

  type t = {
    calibration : Calibration.t;  (** timings; default {!Calibration.default} *)
    seed : int;  (** engine + fault-plan seed when none passed; default 42 *)
    vm_count : int;  (** ordinary (suspendable) VMs; default 1 *)
    vm_mem_bytes : int;  (** per-VM memory; default 1 GiB *)
    workload : scenario_workload;  (** installed in every VM; default [Ssh] *)
    driver_vm_count : int;
        (** extra non-suspendable driver domains (Section 7); default 0 *)
    name_prefix : string;
        (** prepended to VM names — keeps hosts distinct in a cluster *)
    engine : Simkit.Engine.t option;
        (** pass to place several scenarios (hosts) in one simulation *)
    plan : Simkit.Fault.Plan.t option;
        (** fault-injection plan wired into VMM and disk; default a
            fresh plan seeded from [seed] with nothing armed *)
    memdyn : Mem.Memdyn.t;
        (** memory dynamics (ballooning / streamed restore) for every
            VM on this host; default {!Mem.Memdyn.off}, which is
            behaviourally invisible. The scenario seed is folded into
            [memdyn.seed] at {!create}. *)
    traffic : Netsim.Fluid.config;
        (** traffic model for load offered against this host; default
            {!Netsim.Fluid.default_config} ([Per_request]), which is
            behaviourally identical to the historical per-request
            path. Consumed by {!Cluster_sim}, [Fleet] and the traffic
            experiments — the scenario itself schedules nothing for
            it. *)
  }

  val default : t

  val with_vms : ?mem_bytes:int -> int -> t -> t
  val with_workload : scenario_workload -> t -> t
  val with_seed : int -> t -> t
  val with_calibration : Calibration.t -> t -> t
  val with_drivers : int -> t -> t
  val with_prefix : string -> t -> t
  val on_engine : Simkit.Engine.t -> t -> t
  val with_memdyn : Mem.Memdyn.t -> t -> t
  val with_traffic : Netsim.Fluid.config -> t -> t

  val with_traffic_mode : Netsim.Fluid.mode -> t -> t
  (** Override only the mode, keeping the other traffic knobs. *)
end

val create : Config.t -> t
(** Builds engine, host and powered-off VMM plus VM descriptors, per
    the config. Raises [Invalid_argument] on negative VM counts. *)

val engine : t -> Simkit.Engine.t
val host : t -> Hw.Host.t
val vmm : t -> Xenvmm.Vmm.t
val calibration : t -> Calibration.t
val vms : t -> vm list
val rng : t -> Simkit.Rng.t
val trace : t -> Simkit.Trace.t

val fault_plan : t -> Simkit.Fault.Plan.t
(** The injection plan shared by this scenario's VMM, disk and
    provisioning path. Arm sites on it ({!Simkit.Fault.Plan.arm}) to
    inject faults into a subsequent reboot. *)

val start : t -> Simkit.Process.task
(** Power the machine on, build every domain, boot every guest OS and
    start its services; optionally warm web caches. After this task
    completes, every VM answers. *)

val provision_vm :
  t -> vm -> ((unit, Simkit.Fault.t) result -> unit) -> unit
(** (Re)build a VM from scratch: fresh domain, fresh kernel, fresh
    services, then boot — used at start-up and by the cold-VM reboot.
    Reports [Driver_timeout] when the ["driver.reprovision"] injection
    site fires for a driver VM, and propagates VMM faults; nothing is
    half-built on error, so a retry starts from scratch. *)

val arm_network_artifact :
  t -> Hw.Nic.t -> factor:float -> duration_s:float -> unit
(** Degrade [nic] by [factor] and schedule the restoration after
    [duration_s] (the paper's transient post-reboot network artifact).
    At most one artifact is live; re-arming restarts the window. *)

val cancel_network_artifact : t -> unit
(** Cancel a pending artifact window and restore the NIC now — called
    on early teardown so a short run cannot leak a degraded NIC. *)

val attach_probers : t -> ?interval_s:float -> unit -> Netsim.Prober.t list
(** One started prober per VM, probing {!vm_is_up}. *)

(** {1 Observability}

    {!create} instruments every new scenario into the ambient
    [Obs] registry: engine self-metrics, disk gauges, VMM heap gauges
    and one gauge set per VM page cache. Gauges read through getters,
    so they follow components rebuilt by reboots; when several
    scenarios run in one process the newest registration wins.

    When memdyn is enabled, four more gauges appear (and only then, so
    the default metric set is unchanged): [mem.resident_pages],
    [mem.dirty_rate] (pages/s), [balloon.reclaimed] (pages) and
    [restore.faults_outstanding] (cold batches still to page in),
    each summed over this scenario's VMs. *)

val observe : Obs.Registry.t -> t -> unit
(** Re-register this scenario's components into [reg] (e.g. a fresh
    registry created after {!create}). *)

val attach_timeline :
  ?registry:Obs.Registry.t ->
  ?every_s:float ->
  ?until:float ->
  t ->
  Obs.Timeline.t
(** Periodic metric snapshots on this scenario's simulation clock
    (default registry: ambient; default period 1 s). Pass [until]
    whenever the run ends with an unbounded [Engine.run] — see
    {!Obs.Timeline.attach}. *)
