(** The consolidated-server testbed: one host, one VMM, [n] domain Us
    each running one workload.

    A {!vm} keeps a stable identity across VMM reboots even when the
    underlying domain is destroyed and re-created (the cold path), so
    probers and experiments can measure "the service in VM 3" across the
    whole timeline. *)

type workload =
  | Ssh
  | Jboss
  | Web of { file_count : int; file_bytes : int; warm_cache : bool }

val workload_name : workload -> string

val workload_of_string : string -> (workload, [> `Msg of string ]) result
(** Parses ["ssh"], ["jboss"] or ["web"] (the Figure 7 cached-file web
    workload with its defaults); the error message is CLI-ready, so
    this doubles as a [Cmdliner.Arg.conv] parser. *)

type vm

val vm_name : vm -> string
val vm_mem_bytes : vm -> int
val vm_workload : vm -> workload

(** [vm_is_driver vm]: driver domains run device drivers and cannot be
    suspended; a warm-VM reboot shuts them down and reboots them
    (Section 7). *)
val vm_is_driver : vm -> bool
val vm_kernel : vm -> Guest.Kernel.t
val vm_domain : vm -> Xenvmm.Domain.t
val vm_services : vm -> Guest.Service.t list
val vm_httpd : vm -> Guest.Httpd.t option

val vm_is_up : vm -> bool
(** All of the VM's services reachable — the prober predicate. *)

type t

val create :
  ?calibration:Calibration.t ->
  ?seed:int ->
  ?engine:Simkit.Engine.t ->
  ?plan:Simkit.Fault.Plan.t ->
  ?name_prefix:string ->
  ?driver_vm_count:int ->
  vm_count:int ->
  vm_mem_bytes:int ->
  workload:workload ->
  unit ->
  t
(** Builds engine, host and powered-off VMM plus VM descriptors.
    [driver_vm_count] (default 0) adds that many non-suspendable driver
    domains on top of the ordinary VMs. Pass [engine] to place several
    scenarios (hosts) in one simulation — a cluster; [name_prefix]
    keeps their VM names distinct. [plan] is the fault-injection plan
    wired into the VMM and the disk (default: a fresh plan seeded from
    [seed] with nothing armed). *)

val engine : t -> Simkit.Engine.t
val host : t -> Hw.Host.t
val vmm : t -> Xenvmm.Vmm.t
val calibration : t -> Calibration.t
val vms : t -> vm list
val rng : t -> Simkit.Rng.t
val trace : t -> Simkit.Trace.t

val fault_plan : t -> Simkit.Fault.Plan.t
(** The injection plan shared by this scenario's VMM, disk and
    provisioning path. Arm sites on it ({!Simkit.Fault.Plan.arm}) to
    inject faults into a subsequent reboot. *)

val start : t -> Simkit.Process.task
(** Power the machine on, build every domain, boot every guest OS and
    start its services; optionally warm web caches. After this task
    completes, every VM answers. *)

val provision_vm :
  t -> vm -> ((unit, Simkit.Fault.t) result -> unit) -> unit
(** (Re)build a VM from scratch: fresh domain, fresh kernel, fresh
    services, then boot — used at start-up and by the cold-VM reboot.
    Reports [Driver_timeout] when the ["driver.reprovision"] injection
    site fires for a driver VM, and propagates VMM faults; nothing is
    half-built on error, so a retry starts from scratch. *)

val arm_network_artifact :
  t -> Hw.Nic.t -> factor:float -> duration_s:float -> unit
(** Degrade [nic] by [factor] and schedule the restoration after
    [duration_s] (the paper's transient post-reboot network artifact).
    At most one artifact is live; re-arming restarts the window. *)

val cancel_network_artifact : t -> unit
(** Cancel a pending artifact window and restore the NIC now — called
    on early teardown so a short run cannot leak a degraded NIC. *)

val attach_probers : t -> ?interval_s:float -> unit -> Netsim.Prober.t list
(** One started prober per VM, probing {!vm_is_up}. *)

(** {1 Observability}

    {!create} instruments every new scenario into the ambient
    [Obs] registry: engine self-metrics, disk gauges, VMM heap gauges
    and one gauge set per VM page cache. Gauges read through getters,
    so they follow components rebuilt by reboots; when several
    scenarios run in one process the newest registration wins. *)

val observe : Obs.Registry.t -> t -> unit
(** Re-register this scenario's components into [reg] (e.g. a fresh
    registry created after {!create}). *)

val attach_timeline :
  ?registry:Obs.Registry.t ->
  ?every_s:float ->
  ?until:float ->
  t ->
  Obs.Timeline.t
(** Periodic metric snapshots on this scenario's simulation clock
    (default registry: ambient; default period 1 s). Pass [until]
    whenever the run ends with an unbounded [Engine.run] — see
    {!Obs.Timeline.attach}. *)
