module Jsonx = Simkit.Jsonx

type reboot_run = {
  strategy : Strategy.t;
  vm_count : int;
  vm_mem_bytes : int;
  pre_task_s : float;
  vmm_reboot_s : float;
  post_task_s : float;
  downtimes : float list;
  downtime_mean_s : float;
  downtime_max_s : float;
  spans : (string * float * float) list;
  saved_image_mib : float;
  restore_lag_s : float;
}

(* Paper-reproduction experiments run with nothing armed on the fault
   plan, so a fault here is a genuine failure: surface it as a raised
   [Fault.Error] for the sweep runner to capture. *)
let strategy_task strategy scenario k =
  Roothammer.rejuvenate scenario ~strategy (fun outcome ->
      match outcome.Recovery.fatal with
      | Some f -> Simkit.Fault.fail f
      | None -> k ())

let span_duration spans label =
  List.fold_left
    (fun acc (l, start, stop) ->
      if String.equal l label then acc +. (stop -. start) else acc)
    0.0 spans

(* Step the engine until the flag is set; stop (and fail) once simulated
   time passes the deadline. Stepping — rather than draining to the
   deadline — stops immediately on completion even with perpetual
   processes (probers, workload generators) in flight. *)
let run_until_done engine ~flag ~deadline =
  while
    (not !flag)
    && Simkit.Engine.now engine <= deadline
    && Simkit.Engine.step engine
  do
    ()
  done;
  if not !flag then
    Simkit.Fault.fail
      (Simkit.Fault.Timeout { what = "experiment"; deadline_s = deadline })

let boot_testbed scenario =
  let started = ref false in
  Scenario.start scenario (fun () -> started := true);
  Simkit.Engine.run (Scenario.engine scenario);
  if not !started then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Experiment testbed start")

(* Experiment entry points keep optional [calibration]/[seed] (absent
   means "the config default"), folded into a [Scenario.Config] here. *)
let scenario_config ?calibration ?seed ?memdyn ~vm_count ~vm_mem_bytes
    ~workload () =
  let cfg =
    { Scenario.Config.default with vm_count; vm_mem_bytes; workload }
  in
  let cfg =
    match calibration with
    | None -> cfg
    | Some calibration -> { cfg with Scenario.Config.calibration }
  in
  let cfg =
    match memdyn with
    | None -> cfg
    | Some memdyn -> { cfg with Scenario.Config.memdyn }
  in
  match seed with None -> cfg | Some seed -> { cfg with Scenario.Config.seed }

let run_reboot ?calibration ?(workload = Scenario.Ssh) ?seed ?memdyn
    ?(settle_s = 20.0) ?(horizon_s = 1200.0) ~strategy ~vm_count
    ~vm_mem_bytes () =
  let scenario =
    Scenario.create
      (scenario_config ?calibration ?seed ?memdyn ~vm_count ~vm_mem_bytes
         ~workload ())
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let probers = Scenario.attach_probers scenario () in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:settle_s (fun () ->
         strategy_task strategy scenario (fun () -> finished := true)));
  run_until_done engine ~flag:finished
    ~deadline:(Simkit.Engine.now engine +. settle_s +. horizon_s);
  (* Let the probers observe the recovered services. *)
  Simkit.Engine.run
    ~until:(Simkit.Engine.now engine +. 2.0)
    engine;
  List.iter Netsim.Prober.stop probers;
  List.iter
    (fun v ->
      if not (Scenario.vm_is_up v) then
        Simkit.Fault.fail (Simkit.Fault.Not_recovered (Scenario.vm_name v)))
    (Scenario.vms scenario);
  (* A streamed restore keeps paging cold pages in after the services
     are already answering; drain until every stream completes so
     [restore_lag_s] reports the full demand-paging tail. With memdyn
     off no VM ever has a stream, so this adds zero steps. *)
  let stream_pending () =
    List.exists
      (fun v ->
        Option.is_some (Xenvmm.Domain.mem_stream (Scenario.vm_domain v)))
      (Scenario.vms scenario)
  in
  while stream_pending () && Simkit.Engine.step engine do
    ()
  done;
  let downtimes =
    List.map
      (fun p -> Option.value (Netsim.Prober.longest_outage p) ~default:0.0)
      probers
  in
  let spans = Simkit.Trace.spans (Scenario.trace scenario) in
  let pre_task_s = span_duration spans "pre-reboot tasks" in
  let vmm_reboot_s = span_duration spans "vmm reboot" in
  let post_task_s = span_duration spans "post-reboot tasks" in
  let summary =
    match downtimes with
    | [] -> { Simkit.Stat.count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
    | _ -> Simkit.Stat.summarize downtimes
  in
  let vmm = Scenario.vmm scenario in
  {
    strategy;
    vm_count;
    vm_mem_bytes;
    pre_task_s;
    vmm_reboot_s;
    post_task_s;
    downtimes;
    downtime_mean_s = summary.Simkit.Stat.mean;
    downtime_max_s = summary.Simkit.Stat.max;
    spans;
    saved_image_mib =
      (match Xenvmm.Vmm.last_saved_image vmm with
      | Some img ->
        Simkit.Units.bytes_to_mib (Xenvmm.Image.saved_bytes img)
      | None -> 0.0);
    restore_lag_s = Xenvmm.Vmm.last_restore_lag_s vmm;
  }

(* --- Figures 4 and 5 ---------------------------------------------------- *)

type task_times = {
  x : int;
  onmem_suspend_s : float;
  onmem_resume_s : float;
  xen_save_s : float;
  xen_restore_s : float;
  shutdown_s : float;
  boot_s : float;
}

let task_times_of_runs ~x ~(warm : reboot_run) ~(saved : reboot_run)
    ~(cold : reboot_run) =
  {
    x;
    onmem_suspend_s = span_duration warm.spans "on-memory suspend";
    onmem_resume_s = warm.post_task_s;
    xen_save_s = saved.pre_task_s;
    xen_restore_s = saved.post_task_s;
    shutdown_s = cold.pre_task_s;
    boot_s = cold.post_task_s;
  }

let fig4 ?(mem_gib = [ 1; 3; 5; 7; 9; 11 ]) ?memdyn () =
  List.map
    (fun gib ->
      let run strategy =
        run_reboot ?memdyn ~strategy ~vm_count:1
          ~vm_mem_bytes:(Simkit.Units.gib gib) ()
      in
      task_times_of_runs ~x:gib ~warm:(run Strategy.Warm)
        ~saved:(run Strategy.Saved) ~cold:(run Strategy.Cold))
    mem_gib

let fig5 ?(vm_counts = [ 1; 3; 5; 7; 9; 11 ]) ?memdyn () =
  List.map
    (fun n ->
      let run strategy =
        run_reboot ?memdyn ~strategy ~vm_count:n
          ~vm_mem_bytes:(Simkit.Units.gib 1) ()
      in
      task_times_of_runs ~x:n ~warm:(run Strategy.Warm)
        ~saved:(run Strategy.Saved) ~cold:(run Strategy.Cold))
    vm_counts

(* --- Section 5.2 -------------------------------------------------------- *)

type reload_times = { quick_reload_s : float; hardware_reset_s : float }

(* Time from "shutdown script completed" (dom0 down) to "reboot of the
   VMM completed" (ready to boot dom0), with no domain Us. *)
let measure_vmm_reboot ~quick =
  let scenario =
    Scenario.create { Scenario.Config.default with vm_count = 0 }
  in
  let vmm = Scenario.vmm scenario in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let reboot_done = ref nan in
  let start = ref nan in
  Xenvmm.Vmm.shutdown_dom0 vmm (fun () ->
      start := Simkit.Engine.now engine;
      if quick then
        Xenvmm.Vmm.quick_reload vmm (function
          | Ok () -> reboot_done := Simkit.Engine.now engine
          | Error e -> Simkit.Fault.fail e)
      else
        Xenvmm.Vmm.shutdown_vmm vmm (fun () ->
            Xenvmm.Vmm.hardware_reset vmm (fun () ->
                reboot_done := Simkit.Engine.now engine)));
  Simkit.Engine.run engine;
  if Float.is_nan !reboot_done then
    Simkit.Fault.fail (Simkit.Fault.Stalled "VMM reboot");
  !reboot_done -. !start

let quick_reload_effect () =
  {
    quick_reload_s = measure_vmm_reboot ~quick:true;
    hardware_reset_s = measure_vmm_reboot ~quick:false;
  }

(* --- Figure 6 ----------------------------------------------------------- *)

type fig6_row = {
  n : int;
  warm_downtime_s : float;
  saved_downtime_s : float;
  cold_downtime_s : float;
}

let fig6 ?(vm_counts = [ 1; 3; 5; 7; 9; 11 ]) ?memdyn ~workload () =
  List.map
    (fun n ->
      let run strategy =
        (run_reboot ~workload ?memdyn ~strategy ~vm_count:n
           ~vm_mem_bytes:(Simkit.Units.gib 1) ())
          .downtime_mean_s
      in
      {
        n;
        warm_downtime_s = run Strategy.Warm;
        saved_downtime_s = run Strategy.Saved;
        cold_downtime_s = run Strategy.Cold;
      })
    vm_counts

(* --- Section 5.3 -------------------------------------------------------- *)

let run_os_rejuvenation ?(workload = Scenario.Jboss) () =
  let scenario =
    Scenario.create { Scenario.Config.default with vm_count = 1; workload }
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let probers = Scenario.attach_probers scenario () in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:10.0 (fun () ->
         match Scenario.vms scenario with
         | [ vm ] ->
           Guest.Kernel.reboot_os (Scenario.vm_kernel vm) (fun () ->
               finished := true)
         | _ -> assert false));
  run_until_done engine ~flag:finished
    ~deadline:(Simkit.Engine.now engine +. 300.0);
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 2.0) engine;
  List.iter Netsim.Prober.stop probers;
  match probers with
  | [ p ] -> Option.value (Netsim.Prober.longest_outage p) ~default:0.0
  | _ -> assert false

let availability_table ?(os_downtime_s = 33.6) ~vmm_downtimes () =
  List.map
    (fun (strategy, vmm_downtime_s) ->
      let params =
        {
          (Availability.paper_example strategy ~vmm_downtime_s) with
          Availability.os_rejuv_downtime_s = os_downtime_s;
        }
      in
      (strategy, Availability.availability params))
    vmm_downtimes

(* --- Figure 7 ----------------------------------------------------------- *)

type fig7_result = {
  f7_strategy : Strategy.t;
  reboot_command_at : float;
  throughput : (float * float) list;
  f7_spans : (string * float * float) list;
  web_down_at : float option;
  web_up_at : float option;
  chrome_trace_json : string;
}

let fig7 ~strategy () =
  let workload =
    Scenario.Web { file_count = 1000; file_bytes = Simkit.Units.kib 512;
                   warm_cache = true }
  in
  let scenario =
    Scenario.create { Scenario.Config.default with vm_count = 11; workload }
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let epoch = Simkit.Engine.now engine in
  let target_vm = List.hd (Scenario.vms scenario) in
  let rng = Scenario.rng scenario in
  let request k =
    match Scenario.vm_httpd target_vm with
    | Some httpd -> Guest.Httpd.handle_request httpd ~rng k
    | None -> k false
  in
  let load = Netsim.Httperf.create engine ~connections:4 ~request () in
  Netsim.Httperf.observe (Obs.ambient ()) load;
  let prober =
    Netsim.Prober.create engine ~name:"web"
      ~is_up:(fun () -> Scenario.vm_is_up target_vm)
      ()
  in
  Netsim.Prober.start prober;
  Netsim.Httperf.start load;
  let reboot_delay = 20.0 in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:reboot_delay (fun () ->
         strategy_task strategy scenario (fun () -> finished := true)));
  run_until_done engine ~flag:finished ~deadline:(epoch +. 600.0);
  (* Observe the post-reboot recovery (and the warm artifact window). *)
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 90.0) engine;
  Netsim.Httperf.stop load;
  Netsim.Prober.stop prober;
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 5.0) engine;
  let outage = List.rev (Netsim.Prober.outages prober) in
  let web_down_at, web_up_at =
    match outage with
    | (d, u) :: _ -> (Some (d -. epoch), Some (u -. epoch))
    | [] -> (None, None)
  in
  {
    f7_strategy = strategy;
    reboot_command_at = reboot_delay;
    throughput =
      List.map
        (fun (t, v) -> (t -. epoch, v))
        (Netsim.Httperf.mean_window_throughput load ~every:50);
    f7_spans =
      List.filter_map
        (fun (l, a, b) ->
          if b >= epoch then Some (l, a -. epoch, b -. epoch) else None)
        (Simkit.Trace.spans (Scenario.trace scenario));
    web_down_at;
    web_up_at;
    chrome_trace_json =
      Simkit.Trace.to_chrome_json (Scenario.trace scenario);
  }

(* --- Figure 8 ----------------------------------------------------------- *)

type before_after = {
  first_before : float;
  second_before : float;
  first_after : float;
  second_after : float;
  degradation : float;
}

let degradation_of ~before ~after =
  if before <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (after /. before))

(* Read a 512 MB file twice, returning MiB/s for each pass. *)
let timed_file_reads scenario vm k =
  let engine = Scenario.engine scenario in
  let kernel = Scenario.vm_kernel vm in
  let fs = Guest.Kernel.filesystem kernel in
  let file =
    Guest.Filesystem.create_file fs ~name:"bigfile" ~bytes:(Simkit.Units.mib 512)
      ()
  in
  (* The paper's setup has the file cached before the first pass. *)
  Guest.Filesystem.warm_file fs file;
  let mib = Simkit.Units.bytes_to_mib (Guest.Filesystem.file_bytes file) in
  let t0 = Simkit.Engine.now engine in
  Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential (fun () ->
      let t1 = Simkit.Engine.now engine in
      Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential
        (fun () ->
          let t2 = Simkit.Engine.now engine in
          k (mib /. Float.max (t1 -. t0) 1e-9, mib /. Float.max (t2 -. t1) 1e-9)))

let fig8_file ~strategy () =
  let scenario =
    Scenario.create
      Scenario.Config.(default |> with_vms 1 ~mem_bytes:(Simkit.Units.gib 11))
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let vm = List.hd (Scenario.vms scenario) in
  let result = ref None in
  timed_file_reads scenario vm (fun (b1, b2) ->
      strategy_task strategy scenario (fun () ->
          (* After a cold reboot the kernel (and its cache) is new; the
             file must be re-created on the fresh filesystem, not
             re-warmed — that is the degradation being measured. *)
          let fs = Guest.Kernel.filesystem (Scenario.vm_kernel vm) in
          let file =
            match
              List.find_opt
                (fun f -> Guest.Filesystem.file_name f = "bigfile")
                (Guest.Filesystem.files fs)
            with
            | Some f -> f
            | None ->
              Guest.Filesystem.create_file fs ~name:"bigfile"
                ~bytes:(Simkit.Units.mib 512) ()
          in
          let mib =
            Simkit.Units.bytes_to_mib (Guest.Filesystem.file_bytes file)
          in
          let t0 = Simkit.Engine.now engine in
          Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential
            (fun () ->
              let t1 = Simkit.Engine.now engine in
              Guest.Filesystem.read fs file
                ~access:Guest.Filesystem.Sequential (fun () ->
                  let t2 = Simkit.Engine.now engine in
                  result :=
                    Some
                      ( b1,
                        b2,
                        mib /. Float.max (t1 -. t0) 1e-9,
                        mib /. Float.max (t2 -. t1) 1e-9 )))));
  Simkit.Engine.run engine;
  match !result with
  | None -> Simkit.Fault.fail (Simkit.Fault.Stalled "fig8_file")
  | Some (first_before, second_before, first_after, second_after) ->
    {
      first_before;
      second_before;
      first_after;
      second_after;
      degradation = degradation_of ~before:first_before ~after:first_after;
    }

let fig8_web ~strategy () =
  let workload =
    Scenario.Web
      { file_count = 10_000; file_bytes = Simkit.Units.kib 512;
        warm_cache = true }
  in
  let scenario =
    Scenario.create
      Scenario.Config.(
        default
        |> with_vms 1 ~mem_bytes:(Simkit.Units.gib 11)
        |> with_workload workload)
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let vm = List.hd (Scenario.vms scenario) in
  let rng = Scenario.rng scenario in
  let request k =
    match Scenario.vm_httpd vm with
    | Some httpd -> Guest.Httpd.handle_request httpd ~rng k
    | None -> k false
  in
  let load = Netsim.Httperf.create engine ~connections:10 ~request () in
  Netsim.Httperf.observe (Obs.ambient ()) load;
  Netsim.Httperf.start load;
  let window = 20.0 in
  let epoch = Simkit.Engine.now engine in
  let marks = ref [] in
  (* Two measurement windows before the reboot, then the reboot, then
     two windows after it. *)
  ignore
    (Simkit.Engine.schedule engine ~delay:(2.0 *. window) (fun () ->
         let now = Simkit.Engine.now engine in
         marks := [ ("b1", epoch, epoch +. window); ("b2", epoch +. window, now) ];
         strategy_task strategy scenario (fun () ->
             let up = Simkit.Engine.now engine in
             marks :=
               !marks
               @ [ ("a1", up, up +. window); ("a2", up +. window, up +. (2.0 *. window)) ];
             ignore
               (Simkit.Engine.schedule engine ~delay:(2.0 *. window)
                  (fun () -> Netsim.Httperf.stop load)))));
  Simkit.Engine.run ~until:(epoch +. 1200.0) engine;
  let rate tag =
    match List.find_opt (fun (l, _, _) -> l = tag) !marks with
    | Some (_, lo, hi) -> Netsim.Httperf.throughput_between load ~lo ~hi
    | None ->
      Simkit.Fault.fail
        (Simkit.Fault.Invariant ("fig8_web window " ^ tag ^ " missing"))
  in
  let first_before = rate "b1"
  and second_before = rate "b2"
  and first_after = rate "a1"
  and second_after = rate "a2" in
  {
    first_before;
    second_before;
    first_after;
    second_after;
    degradation = degradation_of ~before:second_before ~after:first_after;
  }

(* --- Section 5.6 -------------------------------------------------------- *)

let section_5_6_fits ?(vm_counts = [ 0; 2; 4; 6; 8; 11 ]) () =
  let warm_points =
    List.map
      (fun n ->
        let r =
          run_reboot ~strategy:Strategy.Warm ~vm_count:n
            ~vm_mem_bytes:(Simkit.Units.gib 1) ()
        in
        (n, r))
      vm_counts
  in
  let cold_points =
    List.filter_map
      (fun n ->
        if n = 0 then None
        else
          Some
            ( n,
              run_reboot ~strategy:Strategy.Cold ~vm_count:n
                ~vm_mem_bytes:(Simkit.Units.gib 1) () ))
      vm_counts
  in
  let reboot_vmm =
    List.map (fun (n, r) -> (float_of_int n, r.vmm_reboot_s)) warm_points
  in
  let resume =
    List.map
      (fun (n, r) ->
        ( float_of_int n,
          r.post_task_s +. span_duration r.spans "on-memory suspend" ))
      warm_points
  in
  let reboot_os =
    List.map
      (fun (n, r) -> (float_of_int n, r.pre_task_s +. r.post_task_s))
      cold_points
  in
  let boot =
    List.map (fun (n, r) -> (float_of_int n, r.post_task_s)) cold_points
  in
  let reset_hw =
    let times = quick_reload_effect () in
    times.hardware_reset_s -. times.quick_reload_s
  in
  Downtime_model.fit ~reboot_vmm ~resume ~reboot_os ~boot ~reset_hw

(* --- Fleet-scale rolling rejuvenation (Section 6, at scale) -------------- *)

(* One grid cell: a fresh fleet on its own (possibly partitioned)
   engine, booted and rolled once. 50 req/s keeps the load stream
   light enough for the largest cells while still measuring lost
   requests. Migrate cells pin to one shard — the spare host and the
   migration link are shared, and the fleet run rejects anything
   else. The report is partition-invariant by construction, so a
   cell's JSON (and its sweep-cache entry) is byte-identical for any
   [partitions]. *)
let fleet_cell ?(partitions = 1) ?(load_rate_per_s = 50.0)
    ?(memdyn = Mem.Memdyn.off) ?(traffic = Netsim.Fluid.default_config) ~seed
    ~hosts ~width ~slo ~strategy () =
  let partitions =
    match (strategy : Wave.strategy) with
    | Wave.Migrate -> 1
    | Wave.Reboot _ -> partitions
  in
  let fleet =
    Fleet.create
      {
        Fleet.Config.default with
        hosts;
        wave_width = width;
        slo;
        host = { Scenario.Config.default with seed; memdyn; traffic };
        load_rate_per_s;
        partitions;
      }
  in
  Fleet.start fleet;
  Fleet.run fleet ~strategy

(* --- Elastic restore: strategy x working set x disk ---------------------- *)

type elastic_row = {
  er_mode : Mem.Memdyn.mode;
  er_working_set : float;
  er_disk : string;
  er_downtime_s : float;
  er_image_mib : float;
  er_restore_lag_s : float;
}

(* The memory-dynamics grid: restore strategy (off / streamed /
   balloon+streamed) x working-set size x disk generation. One VM with
   1 GiB under the saved-reboot strategy isolates the image-size and
   restore-path effects; the 2007 HDD vs modern NVMe axis shows where
   streaming stops mattering. *)
let elastic_cell_key (mode, ws, (disk_name, _)) =
  Printf.sprintf "m=%s/ws=%03d/d=%s"
    (Mem.Memdyn.mode_name mode)
    (int_of_float ((ws *. 100.0) +. 0.5))
    disk_name

let elastic_grid ~smoke ~cell =
  let disks = [ ("hdd2007", Calibration.default); ("nvme", Calibration.modern) ] in
  let all =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun ws -> List.map (fun d -> (mode, ws, d)) disks)
          [ 0.2; 0.35; 0.6 ])
      [ Mem.Memdyn.Off; Mem.Memdyn.Stream; Mem.Memdyn.Balloon_stream ]
  in
  match cell with
  | Some key ->
    List.filter (fun c -> String.equal (elastic_cell_key c) key) all
  | None ->
    if smoke then
      [ (Mem.Memdyn.Stream, 0.35, ("hdd2007", Calibration.default)) ]
    else all

let run_elastic_cell ?seed ~workload (mode, ws, (disk_name, calibration)) =
  let memdyn =
    match (mode : Mem.Memdyn.mode) with
    | Mem.Memdyn.Off -> None
    | m ->
      Some { (Mem.Memdyn.default m) with Mem.Memdyn.working_set_fraction = ws }
  in
  let r =
    run_reboot ~calibration ~workload ?seed ?memdyn ~strategy:Strategy.Saved
      ~vm_count:1
      ~vm_mem_bytes:(Simkit.Units.gib 1)
      ()
  in
  {
    er_mode = mode;
    er_working_set = ws;
    er_disk = disk_name;
    er_downtime_s = r.downtime_max_s;
    er_image_mib = r.saved_image_mib;
    er_restore_lag_s = r.restore_lag_s;
  }

(* --- Elastic traffic: mode x client count x strategy ---------------------- *)

type traffic_row = {
  tw_mode : Netsim.Fluid.mode;
  tw_clients : int;
  tw_strategy : Strategy.t;
  tw_steady_rps : float;
  tw_outage_s : float;
  tw_completed : int;
  tw_failed : int;
  tw_tracer_requests : int;
}

(* The traffic grid: model mode x client population x reboot strategy
   on a Figure 7-shaped cell (Web workload, reboot at t=20s under
   closed-loop load, observe the outage and the recovery). Per-request
   cells stop at 1000 clients — past that, per-request simulation is
   exactly the cost this subsystem exists to avoid; fluid and hybrid
   cells run the same populations and beyond at O(epochs). *)
let traffic_cell_key (mode, clients, strategy) =
  Printf.sprintf "m=%s/c=%07d/s=%s"
    (Netsim.Fluid.mode_name mode)
    clients (Strategy.id strategy)

let traffic_grid ~smoke ~cell ~mode ~clients =
  let modes =
    match mode with
    | Some m -> [ m ]
    | None -> [ Netsim.Fluid.Per_request; Netsim.Fluid.Fluid; Netsim.Fluid.Hybrid ]
  in
  let counts = Option.value clients ~default:[ 10; 1000; 100_000 ] in
  let strategies = [ Strategy.Warm; Strategy.Cold ] in
  let all =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun c ->
            List.filter_map
              (fun s ->
                if m = Netsim.Fluid.Per_request && c > 1000 then None
                else Some (m, c, s))
              strategies)
          counts)
      modes
  in
  match cell with
  | Some key ->
    List.filter (fun c -> String.equal (traffic_cell_key c) key) all
  | None ->
    if smoke then [ (Netsim.Fluid.Hybrid, 1000, Strategy.Warm) ] else all

let run_traffic_cell ?seed (mode, clients, strategy) =
  let workload =
    Scenario.Web
      { file_count = 500; file_bytes = Simkit.Units.kib 512; warm_cache = true }
  in
  let traffic =
    {
      Netsim.Fluid.default_config with
      Netsim.Fluid.mode;
      clients;
      tracers = Int.min clients 4;
    }
  in
  let scenario =
    Scenario.create
      {
        Scenario.Config.default with
        vm_count = 2;
        workload;
        traffic;
        seed =
          Option.value seed
            ~default:Scenario.Config.default.Scenario.Config.seed;
      }
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let epoch = Simkit.Engine.now engine in
  let target_vm = List.hd (Scenario.vms scenario) in
  let rng = Scenario.rng scenario in
  let request k =
    match Scenario.vm_httpd target_vm with
    | Some httpd -> Guest.Httpd.handle_request httpd ~rng k
    | None -> k false
  in
  (* Server closures re-resolve the httpd through the scenario, so the
     fluid queue follows the fresh instance a cold reboot builds. *)
  let with_httpd f default =
    match Scenario.vm_httpd target_vm with Some h -> f h | None -> default
  in
  let server =
    {
      Netsim.Fluid.srv_is_up = (fun () -> Scenario.vm_is_up target_vm);
      srv_capacity_rps = (fun () -> with_httpd Guest.Httpd.capacity_rps 0.0);
      srv_service_time_s =
        (fun () -> with_httpd Guest.Httpd.service_time_s 0.0);
    }
  in
  let load =
    Netsim.Fluid.create engine ~name:"elastic" ~config:traffic ~request
      ~server ()
  in
  Netsim.Fluid.observe (Obs.ambient ()) load;
  Netsim.Fluid.start load;
  let reboot_delay = 20.0 in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:reboot_delay (fun () ->
         strategy_task strategy scenario (fun () -> finished := true)));
  run_until_done engine ~flag:finished ~deadline:(epoch +. 600.0);
  (* Observe the post-reboot recovery, then settle. *)
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 60.0) engine;
  Netsim.Fluid.stop load;
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 5.0) engine;
  {
    tw_mode = mode;
    tw_clients = clients;
    tw_strategy = strategy;
    tw_steady_rps =
      Netsim.Fluid.throughput_between load ~lo:(epoch +. 5.0)
        ~hi:(epoch +. reboot_delay);
    tw_outage_s = Netsim.Fluid.longest_stall_s load;
    tw_completed = Netsim.Fluid.completed load;
    tw_failed = Netsim.Fluid.failed load;
    tw_tracer_requests = Netsim.Fluid.tracer_requests load;
  }

(* --- Uniform results ----------------------------------------------------- *)

module Result = struct
  type t =
    | Task_times of task_times list
    | Reload of reload_times
    | Fig6 of fig6_row list
    | Fig7 of fig7_result
    | Before_after of before_after
    | Availability of (Strategy.t * float) list
    | Fits of Downtime_model.fits
    | Timeline of (string * (float * float) list) list
    | Scalar of { label : string; value : float }
    | Fault_matrix of Fault_matrix.cell list
    | Fleet of Fleet.report list
    | Elastic of elastic_row list
    | Traffic of traffic_row list

  let kind = function
    | Task_times _ -> "task_times"
    | Reload _ -> "reload"
    | Fig6 _ -> "fig6"
    | Fig7 _ -> "fig7"
    | Before_after _ -> "before_after"
    | Availability _ -> "availability"
    | Fits _ -> "fits"
    | Timeline _ -> "timeline"
    | Scalar _ -> "scalar"
    | Fault_matrix _ -> "fault_matrix"
    | Fleet _ -> "fleet"
    | Elastic _ -> "elastic"
    | Traffic _ -> "traffic"

  let jf f = Jsonx.Float f

  let json_task_times (r : task_times) =
    Jsonx.Obj
      [
        ("x", Jsonx.Int r.x);
        ("onmem_suspend_s", jf r.onmem_suspend_s);
        ("onmem_resume_s", jf r.onmem_resume_s);
        ("xen_save_s", jf r.xen_save_s);
        ("xen_restore_s", jf r.xen_restore_s);
        ("shutdown_s", jf r.shutdown_s);
        ("boot_s", jf r.boot_s);
      ]

  let json_linear (l : Simkit.Stat.linear) =
    Jsonx.Obj
      [ ("slope", jf l.slope); ("intercept", jf l.intercept); ("r2", jf l.r2) ]

  let json_pairs ps =
    Jsonx.Arr (List.map (fun (a, b) -> Jsonx.Arr [ jf a; jf b ]) ps)

  let json_span (l, a, b) =
    Jsonx.Obj [ ("label", Jsonx.Str l); ("start_s", jf a); ("stop_s", jf b) ]

  let json_fault_cell (c : Fault_matrix.cell) =
    Jsonx.Obj
      [
        ("strategy", Jsonx.Str (Strategy.id c.Fault_matrix.fm_strategy));
        ("site", Jsonx.Str c.Fault_matrix.fm_site);
        ("injected", Jsonx.Int c.Fault_matrix.injected);
        ("recovered", Jsonx.Bool c.Fault_matrix.recovered);
        ("completed", Jsonx.Str (Strategy.id c.Fault_matrix.completed));
        ("retries", Jsonx.Int c.Fault_matrix.retries);
        ("domains_lost", Jsonx.Int c.Fault_matrix.domains_lost);
        ("baseline_downtime_s", jf c.Fault_matrix.baseline_downtime_s);
        ("downtime_s", jf c.Fault_matrix.downtime_s);
        ("extra_downtime_s", jf c.Fault_matrix.extra_downtime_s);
      ]

  let json_wave (w : Fleet.wave_report) =
    Jsonx.Obj
      [
        ("index", Jsonx.Int w.Fleet.wave_index);
        ("hosts", Jsonx.Arr (List.map (fun i -> Jsonx.Int i) w.Fleet.wave_hosts));
        ("started_at_s", jf w.Fleet.started_at_s);
        ("makespan_s", jf w.Fleet.wave_makespan_s);
        ("deferred", Jsonx.Int w.Fleet.deferred);
      ]

  let json_fleet (r : Fleet.report) =
    Jsonx.Obj
      [
        ("strategy", Jsonx.Str (Wave.strategy_id r.Fleet.fr_strategy));
        ("hosts", Jsonx.Int r.Fleet.hosts);
        ("wave_width", Jsonx.Int r.Fleet.wave_width);
        ("slo", jf r.Fleet.slo);
        ("slo_floor", Jsonx.Int r.Fleet.slo_floor);
        ("waves", Jsonx.Arr (List.map json_wave r.Fleet.waves));
        ("makespan_s", jf r.Fleet.makespan_s);
        ("offered", Jsonx.Int r.Fleet.offered);
        ("lost", Jsonx.Int r.Fleet.lost);
        ("loss_ratio", jf r.Fleet.loss_ratio);
        ("min_healthy", Jsonx.Int r.Fleet.min_healthy);
        ("mean_healthy", jf r.Fleet.mean_healthy);
        ("slo_met", Jsonx.Bool r.Fleet.slo_met);
        ( "skipped",
          Jsonx.Arr (List.map (fun i -> Jsonx.Int i) r.Fleet.skipped) );
      ]

  let json_elastic (r : elastic_row) =
    Jsonx.Obj
      [
        ("memdyn", Jsonx.Str (Mem.Memdyn.mode_name r.er_mode));
        ("working_set", jf r.er_working_set);
        ("disk", Jsonx.Str r.er_disk);
        ("downtime_s", jf r.er_downtime_s);
        ("image_mib", jf r.er_image_mib);
        ("restore_lag_s", jf r.er_restore_lag_s);
      ]

  let json_traffic (r : traffic_row) =
    Jsonx.Obj
      [
        ("traffic", Jsonx.Str (Netsim.Fluid.mode_name r.tw_mode));
        ("clients", Jsonx.Int r.tw_clients);
        ("strategy", Jsonx.Str (Strategy.id r.tw_strategy));
        ("steady_rps", jf r.tw_steady_rps);
        ("outage_s", jf r.tw_outage_s);
        ("completed", Jsonx.Int r.tw_completed);
        ("failed", Jsonx.Int r.tw_failed);
        ("tracer_requests", Jsonx.Int r.tw_tracer_requests);
      ]

  let to_json_tree t =
    let payload =
      match t with
      | Task_times rows -> Jsonx.Arr (List.map json_task_times rows)
      | Reload r ->
        Jsonx.Obj
          [
            ("quick_reload_s", jf r.quick_reload_s);
            ("hardware_reset_s", jf r.hardware_reset_s);
          ]
      | Fig6 rows ->
        Jsonx.Arr
          (List.map
             (fun (r : fig6_row) ->
               Jsonx.Obj
                 [
                   ("vm_count", Jsonx.Int r.n);
                   ("warm_s", jf r.warm_downtime_s);
                   ("saved_s", jf r.saved_downtime_s);
                   ("cold_s", jf r.cold_downtime_s);
                 ])
             rows)
      | Fig7 r ->
        Jsonx.Obj
          [
            ("strategy", Jsonx.Str (Strategy.id r.f7_strategy));
            ("reboot_command_at", jf r.reboot_command_at);
            ( "web_down_at",
              Option.fold ~none:Jsonx.Null ~some:jf r.web_down_at );
            ("web_up_at", Option.fold ~none:Jsonx.Null ~some:jf r.web_up_at);
            ("throughput", json_pairs r.throughput);
            ("spans", Jsonx.Arr (List.map json_span r.f7_spans));
            ("chrome_trace", Jsonx.Raw r.chrome_trace_json);
          ]
      | Before_after r ->
        Jsonx.Obj
          [
            ("first_before", jf r.first_before);
            ("second_before", jf r.second_before);
            ("first_after", jf r.first_after);
            ("second_after", jf r.second_after);
            ("degradation", jf r.degradation);
          ]
      | Availability rows ->
        Jsonx.Arr
          (List.map
             (fun (s, a) ->
               Jsonx.Obj
                 [
                   ("strategy", Jsonx.Str (Strategy.id s));
                   ("availability", jf a);
                 ])
             rows)
      | Fits f ->
        Jsonx.Obj
          [
            ("reboot_vmm", json_linear f.Downtime_model.reboot_vmm);
            ("resume", json_linear f.Downtime_model.resume);
            ("reboot_os", json_linear f.Downtime_model.reboot_os);
            ("boot", json_linear f.Downtime_model.boot);
            ("reset_hw", jf f.Downtime_model.reset_hw);
          ]
      | Timeline series ->
        Jsonx.Obj
          (List.map (fun (name, tl) -> (name, json_pairs tl)) series)
      | Scalar { label; value } ->
        Jsonx.Obj [ ("label", Jsonx.Str label); ("value", jf value) ]
      | Fault_matrix cells -> Jsonx.Arr (List.map json_fault_cell cells)
      | Fleet reports -> Jsonx.Arr (List.map json_fleet reports)
      | Elastic rows -> Jsonx.Arr (List.map json_elastic rows)
      | Traffic rows -> Jsonx.Arr (List.map json_traffic rows)
    in
    Jsonx.Obj [ ("kind", Jsonx.Str (kind t)); ("data", payload) ]

  let to_json t = Jsonx.to_string (to_json_tree t)

  let fl v = Printf.sprintf "%.6g" v

  let csv = function
    | Task_times rows ->
      ( [
          "x"; "onmem_suspend_s"; "onmem_resume_s"; "xen_save_s";
          "xen_restore_s"; "shutdown_s"; "boot_s";
        ],
        List.map
          (fun (r : task_times) ->
            [
              string_of_int r.x; fl r.onmem_suspend_s; fl r.onmem_resume_s;
              fl r.xen_save_s; fl r.xen_restore_s; fl r.shutdown_s;
              fl r.boot_s;
            ])
          rows )
    | Reload r ->
      ( [ "quick_reload_s"; "hardware_reset_s" ],
        [ [ fl r.quick_reload_s; fl r.hardware_reset_s ] ] )
    | Fig6 rows ->
      ( [ "vm_count"; "warm_s"; "saved_s"; "cold_s" ],
        List.map
          (fun (r : fig6_row) ->
            [
              string_of_int r.n; fl r.warm_downtime_s; fl r.saved_downtime_s;
              fl r.cold_downtime_s;
            ])
          rows )
    | Fig7 r ->
      ( [ "time_s"; "req_per_s" ],
        List.map (fun (t, v) -> [ fl t; fl v ]) r.throughput )
    | Before_after r ->
      ( [
          "first_before"; "second_before"; "first_after"; "second_after";
          "degradation";
        ],
        [
          [
            fl r.first_before; fl r.second_before; fl r.first_after;
            fl r.second_after; fl r.degradation;
          ];
        ] )
    | Availability rows ->
      ( [ "strategy"; "availability" ],
        List.map (fun (s, a) -> [ Strategy.id s; Printf.sprintf "%.8f" a ]) rows
      )
    | Fits f ->
      let line name (l : Simkit.Stat.linear) =
        [ name; fl l.slope; fl l.intercept; fl l.r2 ]
      in
      ( [ "component"; "slope"; "intercept"; "r2" ],
        [
          line "reboot_vmm" f.Downtime_model.reboot_vmm;
          line "resume" f.Downtime_model.resume;
          line "reboot_os" f.Downtime_model.reboot_os;
          line "boot" f.Downtime_model.boot;
          [ "reset_hw"; ""; fl f.Downtime_model.reset_hw; "" ];
        ] )
    | Timeline series ->
      ( [ "series"; "time_s"; "value" ],
        List.concat_map
          (fun (name, tl) ->
            List.map (fun (t, v) -> [ name; fl t; fl v ]) tl)
          series )
    | Scalar { label; value } ->
      ([ "label"; "value" ], [ [ label; fl value ] ])
    | Fault_matrix cells ->
      ( [
          "strategy"; "site"; "injected"; "recovered"; "completed"; "retries";
          "domains_lost"; "baseline_downtime_s"; "downtime_s";
          "extra_downtime_s";
        ],
        List.map
          (fun (c : Fault_matrix.cell) ->
            [
              Strategy.id c.Fault_matrix.fm_strategy;
              c.Fault_matrix.fm_site;
              string_of_int c.Fault_matrix.injected;
              string_of_bool c.Fault_matrix.recovered;
              Strategy.id c.Fault_matrix.completed;
              string_of_int c.Fault_matrix.retries;
              string_of_int c.Fault_matrix.domains_lost;
              fl c.Fault_matrix.baseline_downtime_s;
              fl c.Fault_matrix.downtime_s;
              fl c.Fault_matrix.extra_downtime_s;
            ])
          cells )
    | Fleet reports ->
      ( [
          "strategy"; "hosts"; "wave_width"; "slo"; "slo_floor"; "waves";
          "makespan_s"; "offered"; "lost"; "loss_ratio"; "min_healthy";
          "mean_healthy"; "slo_met"; "skipped";
        ],
        List.map
          (fun (r : Fleet.report) ->
            [
              Wave.strategy_id r.Fleet.fr_strategy;
              string_of_int r.Fleet.hosts;
              string_of_int r.Fleet.wave_width;
              fl r.Fleet.slo;
              string_of_int r.Fleet.slo_floor;
              string_of_int (List.length r.Fleet.waves);
              fl r.Fleet.makespan_s;
              string_of_int r.Fleet.offered;
              string_of_int r.Fleet.lost;
              fl r.Fleet.loss_ratio;
              string_of_int r.Fleet.min_healthy;
              fl r.Fleet.mean_healthy;
              string_of_bool r.Fleet.slo_met;
              string_of_int (List.length r.Fleet.skipped);
            ])
          reports )
    | Elastic rows ->
      ( [
          "memdyn"; "working_set"; "disk"; "downtime_s"; "image_mib";
          "restore_lag_s";
        ],
        List.map
          (fun (r : elastic_row) ->
            [
              Mem.Memdyn.mode_name r.er_mode;
              fl r.er_working_set;
              r.er_disk;
              fl r.er_downtime_s;
              fl r.er_image_mib;
              fl r.er_restore_lag_s;
            ])
          rows )
    | Traffic rows ->
      ( [
          "traffic"; "clients"; "strategy"; "steady_rps"; "outage_s";
          "completed"; "failed"; "tracer_requests";
        ],
        List.map
          (fun (r : traffic_row) ->
            [
              Netsim.Fluid.mode_name r.tw_mode;
              string_of_int r.tw_clients;
              Strategy.id r.tw_strategy;
              fl r.tw_steady_rps;
              fl r.tw_outage_s;
              string_of_int r.tw_completed;
              string_of_int r.tw_failed;
              string_of_int r.tw_tracer_requests;
            ])
          rows )

  (* Shard results of one experiment concatenate; scalar-like results
     only "merge" when the batch produced exactly one of them. *)
  let merge = function
    | [] -> invalid_arg "Experiment.Result.merge: empty"
    | first :: rest ->
      List.fold_left
        (fun acc r ->
          match (acc, r) with
          | Task_times a, Task_times b -> Task_times (a @ b)
          | Fig6 a, Fig6 b -> Fig6 (a @ b)
          | Timeline a, Timeline b -> Timeline (a @ b)
          | Availability a, Availability b -> Availability (a @ b)
          | Fault_matrix a, Fault_matrix b -> Fault_matrix (a @ b)
          | Fleet a, Fleet b -> Fleet (a @ b)
          | Elastic a, Elastic b -> Elastic (a @ b)
          | Traffic a, Traffic b -> Traffic (a @ b)
          | _ ->
            invalid_arg
              (Printf.sprintf "Experiment.Result.merge: cannot merge %s + %s"
                 (kind acc) (kind r)))
        first rest
end

(* --- The experiment registry --------------------------------------------- *)

module Spec = struct
  type params = {
    seed : int;
    workload : Scenario.workload;
    strategy : Strategy.t;
    vm_counts : int list option;
    mem_gib : int list option;
    site : string option;
    smoke : bool;
    fleet_hosts : int list option;
    wave_widths : int list option;
    wave_strategy : Wave.strategy option;
    slo : float;
    partitions : int;
        (* shards a fleet cell runs on. Deliberately absent from
           [params_key]: a fleet run is byte-identical for every
           partition count (that invariant is test-gated), so the
           sweep cache may serve a cell computed at any partitioning. *)
    memdyn : Mem.Memdyn.mode;
        (* memory-dynamics mode for fig4 / fig5 / fleet_rolling; the
           other knobs stay at [Mem.Memdyn.default]. *)
    cell : string option;
        (* pins [elastic_restore] / [elastic_traffic] to one grid cell
           (the shard key suffix); [None] = the full grid. *)
    traffic : Netsim.Fluid.mode option;
        (* traffic model for [elastic_traffic] / [fleet_rolling];
           [None] = the experiment's own default axis. *)
    clients : int list option;
        (* client-population axis for [elastic_traffic]. *)
  }

  let default_params =
    {
      seed = 42;
      workload = Scenario.Ssh;
      strategy = Strategy.Warm;
      vm_counts = None;
      mem_gib = None;
      site = None;
      smoke = false;
      fleet_hosts = None;
      wave_widths = None;
      wave_strategy = None;
      slo = 0.75;
      partitions = 1;
      memdyn = Mem.Memdyn.Off;
      cell = None;
      traffic = None;
      clients = None;
    }

  let ints_key = function
    | None -> "default"
    | Some xs -> String.concat "," (List.map string_of_int xs)

  let params_key p =
    Printf.sprintf
      "seed=%d;workload=%s;strategy=%s;vm_counts=%s;mem_gib=%s;site=%s;smoke=%b;fleet_hosts=%s;wave_widths=%s;wave_strategy=%s;slo=%g;memdyn=%s;cell=%s;traffic=%s;clients=%s"
      p.seed
      (Scenario.workload_name p.workload)
      (Strategy.id p.strategy) (ints_key p.vm_counts) (ints_key p.mem_gib)
      (Option.value p.site ~default:"none")
      p.smoke
      (ints_key p.fleet_hosts)
      (ints_key p.wave_widths)
      (Option.fold ~none:"default" ~some:Wave.strategy_id p.wave_strategy)
      p.slo
      (Mem.Memdyn.mode_name p.memdyn)
      (Option.value p.cell ~default:"none")
      (Option.fold ~none:"default" ~some:Netsim.Fluid.mode_name p.traffic)
      (ints_key p.clients)

  type nonrec t = {
    id : string;
    doc : string;
    shards : params -> (string * params) list;
    run : params -> Result.t;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16 (* simlint: allow D011 populated once at module init; read-only during runs *)

  let register spec =
    if Hashtbl.mem registry spec.id then
      invalid_arg ("Experiment.Spec.register: duplicate id " ^ spec.id);
    Hashtbl.replace registry spec.id spec

  let find id = Hashtbl.find_opt registry id

  let all () =
    Hashtbl.fold (fun _ s acc -> s :: acc) registry []
    |> List.sort (fun a b -> String.compare a.id b.id)

  let ids () = List.map (fun s -> s.id) (all ())

  let find_exn id =
    match find id with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "unknown experiment %S (known: %s)" id
           (String.concat ", " (ids ())))
end

let default_sweep_counts = [ 1; 3; 5; 7; 9; 11 ]

(* The fleet grid: fleet size x wave width x wave strategy. [smoke]
   shrinks it to one small warm cell for CI; pinned params (from a
   shard, or a CLI override) shrink the corresponding axis. *)
let fleet_grid (p : Spec.params) =
  let hosts =
    if p.Spec.smoke then [ 12 ]
    else Option.value p.Spec.fleet_hosts ~default:[ 50; 200 ]
  in
  let widths =
    if p.Spec.smoke then [ 3 ]
    else Option.value p.Spec.wave_widths ~default:[ 4; 16 ]
  in
  let strategies =
    if p.Spec.smoke then [ Wave.Reboot Strategy.Warm ]
    else
      match p.Spec.wave_strategy with
      | Some s -> [ s ]
      | None -> Wave.all_strategies
  in
  List.concat_map
    (fun h ->
      List.concat_map
        (fun w -> List.map (fun s -> (h, w, s)) strategies)
        widths)
    hosts

(* Spec params carry only the memdyn [mode]; the remaining knobs are
   the defaults. [Off] maps to [None] so an off-mode run is the exact
   pre-memdyn code path. *)
let memdyn_of_params (p : Spec.params) =
  match p.Spec.memdyn with
  | Mem.Memdyn.Off -> None
  | mode -> Some (Mem.Memdyn.default mode)

let () =
  let single id run =
    {
      Spec.id;
      doc = "";
      shards = (fun p -> [ (id, p) ]);
      run;
    }
  in
  let with_doc doc spec = { spec with Spec.doc } in
  (* Swept figures shard one point per key, zero-padded so lexicographic
     key order is numeric order; the merged result is then byte-identical
     to the sequential sweep. *)
  List.iter Spec.register
    [
      {
        Spec.id = "fig4";
        doc = "Task times vs memory size of one VM (Figure 4)";
        shards =
          (fun p ->
            List.map
              (fun g ->
                ( Printf.sprintf "fig4/mem=%02d" g,
                  { p with Spec.mem_gib = Some [ g ] } ))
              (Option.value p.Spec.mem_gib ~default:default_sweep_counts));
        run =
          (fun p ->
            Result.Task_times
              (fig4 ?mem_gib:p.Spec.mem_gib ?memdyn:(memdyn_of_params p) ()));
      };
      {
        Spec.id = "fig5";
        doc = "Task times vs number of VMs (Figure 5)";
        shards =
          (fun p ->
            List.map
              (fun n ->
                ( Printf.sprintf "fig5/vms=%02d" n,
                  { p with Spec.vm_counts = Some [ n ] } ))
              (Option.value p.Spec.vm_counts ~default:default_sweep_counts));
        run =
          (fun p ->
            Result.Task_times
              (fig5 ?vm_counts:p.Spec.vm_counts ?memdyn:(memdyn_of_params p)
                 ()));
      };
      {
        Spec.id = "fig6";
        doc = "Downtime of networked services (Figure 6)";
        shards =
          (fun p ->
            List.map
              (fun n ->
                ( Printf.sprintf "fig6/vms=%02d" n,
                  { p with Spec.vm_counts = Some [ n ] } ))
              (Option.value p.Spec.vm_counts ~default:default_sweep_counts));
        run =
          (fun p ->
            Result.Fig6
              (fig6 ?vm_counts:p.Spec.vm_counts
                 ?memdyn:(memdyn_of_params p)
                 ~workload:p.Spec.workload ()));
      };
      with_doc "Effect of quick reload (Section 5.2)"
        (single "quick_reload" (fun _ -> Result.Reload (quick_reload_effect ())));
      with_doc "Downtime of one guest-OS rejuvenation (Section 5.3)"
        (single "os_rejuvenation" (fun _ ->
             Result.Scalar
               {
                 label = "os_rejuvenation_downtime_s";
                 value = run_os_rejuvenation ();
               }));
      with_doc "Availability table (Section 5.3)"
        (single "availability" (fun _ ->
             let os_downtime_s = run_os_rejuvenation () in
             match fig6 ~vm_counts:[ 11 ] ~workload:Scenario.Jboss () with
             | [ row ] ->
               Result.Availability
                 (availability_table ~os_downtime_s
                    ~vmm_downtimes:
                      [
                        (Strategy.Warm, row.warm_downtime_s);
                        (Strategy.Cold, row.cold_downtime_s);
                        (Strategy.Saved, row.saved_downtime_s);
                      ]
                    ())
             | _ -> assert false));
      with_doc "Web throughput timeline during the reboot (Figure 7)"
        (single "fig7" (fun p ->
             Result.Fig7 (fig7 ~strategy:p.Spec.strategy ())));
      with_doc "File-read throughput before/after the reboot (Figure 8a)"
        (single "fig8_file" (fun p ->
             Result.Before_after (fig8_file ~strategy:p.Spec.strategy ())));
      with_doc "Web throughput before/after the reboot (Figure 8b)"
        (single "fig8_web" (fun p ->
             Result.Before_after (fig8_web ~strategy:p.Spec.strategy ())));
      with_doc "Fitted downtime model (Section 5.6)"
        (single "section_5_6_fits" (fun p ->
             Result.Fits (section_5_6_fits ?vm_counts:p.Spec.vm_counts ())));
      with_doc "Cluster throughput model (Figure 9 / Section 6)"
        (single "fig9" (fun _ ->
             let p = Cluster.paper_params () in
             Result.Timeline
               [
                 ("warm", Cluster.warm_timeline p ~reboot_at:600.0);
                 ("cold", Cluster.cold_timeline p ~reboot_at:600.0);
                 ("migration", Cluster.migration_timeline p ~migrate_at:600.0);
               ]));
      {
        Spec.id = "fault_matrix";
        doc =
          "Recovery success per strategy x injection site (fault campaign)";
        (* One shard per cell; [site] pins a shard to its cell, so the
           shard keys (strategy id then site, both already in stable
           string order) merge back into grid order. [smoke] shrinks
           the grid to one cell for CI. *)
        shards =
          (fun p ->
            match p.Spec.site with
            | Some _ -> [ ("fault_matrix", p) ]
            | None ->
              let cells =
                if p.Spec.smoke then Fault_matrix.smoke_grid
                else Fault_matrix.grid
              in
              List.map
                (fun (s, site) ->
                  ( Printf.sprintf "fault_matrix/s=%s/site=%s" (Strategy.id s)
                      site,
                    { p with Spec.strategy = s; site = Some site } ))
                cells);
        run =
          (fun p ->
            let cells =
              match p.Spec.site with
              | Some site -> [ (p.Spec.strategy, site) ]
              | None ->
                if p.Spec.smoke then Fault_matrix.smoke_grid
                else Fault_matrix.grid
            in
            Result.Fault_matrix
              (Fault_matrix.run ~seed:p.Spec.seed ~cells ()));
      };
      {
        Spec.id = "fleet_rolling";
        doc =
          "Fleet-scale rolling rejuvenation: fleet size x wave width x \
           strategy";
        (* One shard per grid cell; zero-padded sizes keep lexicographic
           key order equal to grid order, so the merged result is
           byte-identical to the sequential run. *)
        shards =
          (fun p ->
            List.map
              (fun (h, w, s) ->
                ( Printf.sprintf "fleet_rolling/h=%04d/w=%03d/s=%s" h w
                    (Wave.strategy_id s),
                  {
                    p with
                    Spec.smoke = false;
                    fleet_hosts = Some [ h ];
                    wave_widths = Some [ w ];
                    wave_strategy = Some s;
                  } ))
              (fleet_grid p));
        run =
          (fun p ->
            Result.Fleet
              (List.map
                 (fun (hosts, width, strategy) ->
                   fleet_cell ~partitions:p.Spec.partitions
                     ~memdyn:
                       (Option.value (memdyn_of_params p)
                          ~default:Mem.Memdyn.off)
                     ~traffic:
                       (match p.Spec.traffic with
                       | None -> Netsim.Fluid.default_config
                       | Some mode ->
                         { Netsim.Fluid.default_config with Netsim.Fluid.mode })
                     ~seed:p.Spec.seed ~hosts ~width ~slo:p.Spec.slo ~strategy
                     ())
                 (fleet_grid p)));
      };
      {
        Spec.id = "elastic_restore";
        doc =
          "Saved-reboot restore: memdyn mode x working-set size x disk \
           generation";
        (* One shard per grid cell, pinned by its own key suffix. Key
           order is mode, then working set (zero-padded percent), then
           disk — the grid enumeration order — so the merged rows come
           back in grid order. *)
        shards =
          (fun p ->
            List.map
              (fun c ->
                let key = elastic_cell_key c in
                ( "elastic_restore/" ^ key,
                  { p with Spec.cell = Some key } ))
              (elastic_grid ~smoke:p.Spec.smoke ~cell:p.Spec.cell));
        run =
          (fun p ->
            Result.Elastic
              (List.map
                 (run_elastic_cell ~seed:p.Spec.seed ~workload:p.Spec.workload)
                 (elastic_grid ~smoke:p.Spec.smoke ~cell:p.Spec.cell)));
      };
      {
        Spec.id = "elastic_traffic";
        doc =
          "Traffic-model grid: per-request / fluid / hybrid x client \
           population x reboot strategy on a fig7-shaped cell";
        shards =
          (fun p ->
            List.map
              (fun c ->
                let key = traffic_cell_key c in
                ( "elastic_traffic/" ^ key,
                  { p with Spec.cell = Some key } ))
              (traffic_grid ~smoke:p.Spec.smoke ~cell:p.Spec.cell
                 ~mode:p.Spec.traffic ~clients:p.Spec.clients));
        run =
          (fun p ->
            Result.Traffic
              (List.map
                 (run_traffic_cell ~seed:p.Spec.seed)
                 (traffic_grid ~smoke:p.Spec.smoke ~cell:p.Spec.cell
                    ~mode:p.Spec.traffic ~clients:p.Spec.clients)));
      };
    ]

(* --- Parallel sweeps ------------------------------------------------------ *)

let calibration_hash c = Digest.to_hex (Digest.string (Marshal.to_string c []))

let sweep_tasks ?(params = Spec.default_params) ids =
  (* Registered runs execute under [Calibration.default]; hashing the
     value (not the name) makes the cache key track any recalibration
     of the simulated testbed. *)
  let calibration = calibration_hash Calibration.default in
  List.concat_map
    (fun id ->
      let spec = Spec.find_exn id in
      List.map
        (fun (key, p) ->
          {
            Runner.Sweep.key;
            cache_key =
              Some
                (Runner.Cache.key ~id:key ~params:(Spec.params_key p)
                   ~seed:p.Spec.seed ~calibration);
            run = (fun () -> spec.Spec.run p);
          })
        (spec.Spec.shards params))
    ids

let sweep ?jobs ?cache ?verify_isolation ?(params = Spec.default_params) ids =
  let outcomes =
    Runner.Sweep.run ?jobs ?cache ?verify_isolation (sweep_tasks ~params ids)
  in
  let merged =
    List.map
      (fun id ->
        let mine =
          List.filter
            (fun (o : Result.t Runner.Sweep.outcome) ->
              String.equal o.key id
              || String.starts_with ~prefix:(id ^ "/") o.key)
            outcomes
        in
        (* A faulted shard poisons its experiment (first fault in key
           order wins); the other experiments still merge normally. *)
        let faults =
          List.filter_map
            (fun (o : Result.t Runner.Sweep.outcome) ->
              match o.Runner.Sweep.value with
              | Error f -> Some f
              | Ok _ -> None)
            mine
        in
        match faults with
        | f :: _ -> (id, Error f)
        | [] ->
          ( id,
            Ok
              (Result.merge
                 (List.filter_map
                    (fun (o : Result.t Runner.Sweep.outcome) ->
                      Stdlib.Result.to_option o.Runner.Sweep.value)
                    mine)) ))
      ids
  in
  (merged, outcomes)
