module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain

type workload =
  | Ssh
  | Jboss
  | Web of { file_count : int; file_bytes : int; warm_cache : bool }

let default_web =
  Web { file_count = 1000; file_bytes = 512 * 1024; warm_cache = true }

let workload_name = function
  | Ssh -> "ssh"
  | Jboss -> "jboss"
  | Web _ -> "web"

(* ["web"] parses to the Figure 7 cached-file defaults; [name] on a
   non-default [Web] payload would raise, so printing goes through the
   total [workload_name] instead. *)
let workload_enum =
  Simkit.Enum.make ~what:"workload"
    [ ("ssh", Ssh); ("jboss", Jboss); ("web", default_web) ]

let workload_of_string s = Simkit.Enum.of_string workload_enum s

type vm = {
  vname : string;
  vmem : int;
  vworkload : workload;
  vdriver : bool;
  mutable vdomain : Domain.t;
  mutable vkernel : Guest.Kernel.t;
  mutable vhttpd : Guest.Httpd.t option;
}

let vm_name v = v.vname
let vm_mem_bytes v = v.vmem
let vm_workload v = v.vworkload
let vm_is_driver v = v.vdriver
let vm_kernel v = v.vkernel
let vm_domain v = v.vdomain
let vm_services v = Guest.Kernel.services v.vkernel
let vm_httpd v = v.vhttpd

let vm_is_up v =
  let services = vm_services v in
  services <> []
  && List.for_all (Guest.Kernel.service_reachable v.vkernel) services

type t = {
  cal : Calibration.t;
  eng : Simkit.Engine.t;
  hw_host : Hw.Host.t;
  hypervisor : Vmm.t;
  mutable vm_list : vm list;
  scenario_rng : Simkit.Rng.t;
  plan : Simkit.Fault.Plan.t;
  mutable artifact : (Hw.Nic.t * Simkit.Engine.handle) option;
}

let engine t = t.eng
let host t = t.hw_host
let vmm t = t.hypervisor
let calibration t = t.cal
let vms t = t.vm_list
let rng t = t.scenario_rng
let trace t = t.hw_host.Hw.Host.trace
let fault_plan t = t.plan

(* --- transient network-degradation artifact ----------------------------- *)

let cancel_network_artifact t =
  match t.artifact with
  | None -> ()
  | Some (nic, handle) ->
    Simkit.Engine.cancel t.eng handle;
    Hw.Nic.clear_degradation nic;
    t.artifact <- None

let arm_network_artifact t nic ~factor ~duration_s =
  (* At most one artifact at a time; re-arming restarts the window. *)
  cancel_network_artifact t;
  Hw.Nic.set_degradation nic ~factor;
  let handle =
    Simkit.Engine.schedule t.eng ~delay:duration_s (fun () ->
        Hw.Nic.clear_degradation nic;
        t.artifact <- None)
  in
  t.artifact <- Some (nic, handle)

(* Build kernel + services for a VM whose domain exists. *)
let outfit_vm t v =
  let kernel =
    Guest.Kernel.create t.hypervisor v.vdomain
      ~timing:t.cal.Calibration.kernel_timing ()
  in
  v.vkernel <- kernel;
  v.vhttpd <- None;
  match v.vworkload with
  | Ssh -> ignore (Guest.Sshd.install kernel)
  | Jboss -> ignore (Guest.Jboss.install kernel)
  | Web { file_count; file_bytes; warm_cache = _ } ->
    (* "All files cached on memory" is established by [warm_web_caches]
       after the OS has booted (boot clears the cache). *)
    let httpd = Guest.Httpd.install kernel ~nic:t.hw_host.Hw.Host.nic () in
    ignore (Guest.Httpd.populate httpd ~file_count ~file_bytes);
    v.vhttpd <- Some httpd

let warm_web_caches t =
  List.iter
    (fun v ->
      match (v.vworkload, v.vhttpd) with
      | Web { warm_cache = true; _ }, Some httpd -> Guest.Httpd.warm_all httpd
      | _ -> ())
    t.vm_list

let provision_vm t v k =
  if v.vdriver && Simkit.Fault.Plan.fires t.plan ~site:"driver.reprovision"
  then
    (* The driver VM's devices never come back: xend gives up on the
       timeout. Nothing was built, so a retry starts from scratch. *)
    k (Error (Simkit.Fault.Driver_timeout v.vname))
  else
    Vmm.create_domain t.hypervisor ~name:v.vname ~mem_bytes:v.vmem (function
      | Error e -> k (Error e)
      | Ok domain ->
        if v.vdriver then Domain.set_suspendable domain false;
        v.vdomain <- domain;
        outfit_vm t v;
        Guest.Kernel.boot v.vkernel (fun () -> k (Ok ())))

(* --- observability -------------------------------------------------------

   Components register through getters (kernel, hypervisor heap) so
   gauges keep reading the live instance across reboots and quick
   reloads. Successive scenarios re-register under the same names:
   gauges follow the newest scenario, while counters and histograms
   accumulate process-wide (see Obs.Registry). *)

let observe reg t =
  Obs.instrument_engine reg t.eng;
  Hw.Disk.observe reg t.hw_host.Hw.Host.disk;
  Xenvmm.Vmm_heap.observe reg (fun () -> Vmm.heap t.hypervisor);
  List.iter
    (fun v ->
      Guest.Page_cache.observe
        ~prefix:("guest.page_cache." ^ v.vname)
        reg
        (fun () -> Guest.Kernel.page_cache v.vkernel))
    t.vm_list;
  (* Memory-dynamics gauges exist only when memdyn is on, so the
     exported metric set (and with it any seeded output) is untouched
     in the default configuration. All readers are draw-free. *)
  if Mem.Memdyn.enabled (Vmm.memdyn t.hypervisor) then begin
    let sum_trackers f () =
      List.fold_left
        (fun acc v ->
          match Domain.mem_tracker v.vdomain with
          | Some ps -> acc +. f ps
          | None -> acc)
        0.0 t.vm_list
    in
    Obs.Registry.gauge reg "mem.resident_pages"
      (sum_trackers (fun ps -> float_of_int (Mem.Pagestate.resident_pages ps)));
    Obs.Registry.gauge reg "mem.dirty_rate"
      (sum_trackers Mem.Pagestate.dirty_rate_pages_per_s);
    Obs.Registry.gauge reg "balloon.reclaimed"
      (sum_trackers (fun ps -> float_of_int (Mem.Pagestate.ballooned_pages ps)));
    Obs.Registry.gauge reg "restore.faults_outstanding" (fun () ->
        List.fold_left
          (fun acc v ->
            match Domain.mem_stream v.vdomain with
            | Some s -> acc +. float_of_int (Mem.Stream.batches_outstanding s)
            | None -> acc)
          0.0 t.vm_list)
  end

let attach_timeline ?(registry : Obs.Registry.t option) ?(every_s = 1.0) ?until
    t =
  let reg = match registry with Some r -> r | None -> Obs.ambient () in
  Obs.Timeline.attach reg t.eng ~every_s ?until ()

module Config = struct
  type scenario_workload = workload

  type t = {
    calibration : Calibration.t;
    seed : int;
    vm_count : int;
    vm_mem_bytes : int;
    workload : scenario_workload;
    driver_vm_count : int;
    name_prefix : string;
    engine : Simkit.Engine.t option;
    plan : Simkit.Fault.Plan.t option;
    memdyn : Mem.Memdyn.t;
    traffic : Netsim.Fluid.config;
  }

  let default = (* simlint: allow D011 immutable template; engine and plan are None here *)
    {
      calibration = Calibration.default;
      seed = 42;
      vm_count = 1;
      vm_mem_bytes = Simkit.Units.gib 1;
      workload = Ssh;
      driver_vm_count = 0;
      name_prefix = "";
      engine = None;
      plan = None;
      memdyn = Mem.Memdyn.off;
      traffic = Netsim.Fluid.default_config;
    }

  let with_vms ?mem_bytes vm_count t =
    {
      t with
      vm_count;
      vm_mem_bytes = Option.value mem_bytes ~default:t.vm_mem_bytes;
    }

  let with_workload workload t = { t with workload }
  let with_seed seed t = { t with seed }
  let with_calibration calibration t = { t with calibration }
  let with_drivers driver_vm_count t = { t with driver_vm_count }
  let with_prefix name_prefix t = { t with name_prefix }
  let on_engine engine t = { t with engine = Some engine }
  let with_memdyn memdyn t = { t with memdyn }
  let with_traffic traffic t = { t with traffic }

  let with_traffic_mode mode t =
    { t with traffic = { t.traffic with Netsim.Fluid.mode } }
end

let create (cfg : Config.t) =
  let {
    Config.calibration;
    seed;
    vm_count;
    vm_mem_bytes;
    workload;
    driver_vm_count;
    name_prefix;
    engine;
    plan;
    memdyn;
    traffic = _;
  } =
    cfg
  in
  if vm_count < 0 then invalid_arg "Scenario.create: negative vm_count";
  if driver_vm_count < 0 then
    invalid_arg "Scenario.create: negative driver_vm_count";
  let eng =
    match engine with
    | Some e -> e
    | None -> Simkit.Engine.create ~seed ()
  in
  let hw_host = Hw.Host.create ~config:calibration.Calibration.host eng in
  let scrub_policy =
    if calibration.Calibration.scrub_free_only then `Free_only else `All
  in
  let hypervisor =
    Vmm.create ~timing:calibration.Calibration.vmm_timing ~scrub_policy
      hw_host
  in
  let plan =
    match plan with
    | Some p -> p
    | None -> Simkit.Fault.Plan.create ~seed ()
  in
  Vmm.set_fault_plan hypervisor (Some plan);
  Hw.Disk.set_fault_plan hw_host.Hw.Host.disk (Some plan);
  (* Fold the scenario seed into the memdyn seed so different seeds get
     different working sets; per-domain streams still hash the domain
     name on top, keeping them stable across fleet partitioning. *)
  Vmm.set_memdyn hypervisor
    { memdyn with Mem.Memdyn.seed = (memdyn.Mem.Memdyn.seed * 1_000_003) + seed };
  let t =
    {
      cal = calibration;
      eng;
      hw_host;
      hypervisor;
      vm_list = [];
      scenario_rng = Simkit.Rng.split (Simkit.Engine.rng eng);
      plan;
      artifact = None;
    }
  in
  let make_vm ~vname ~vdriver i =
    (* Placeholder domain/kernel; provisioned for real at [start]. *)
    let vdomain =
      Domain.create ~id:(-1 - i) ~name:vname ~kind:Domain.DomU
        ~mem_bytes:vm_mem_bytes
    in
    let vkernel =
      Guest.Kernel.create hypervisor vdomain
        ~timing:calibration.Calibration.kernel_timing ()
    in
    { vname; vmem = vm_mem_bytes; vworkload = workload; vdriver; vdomain;
      vkernel; vhttpd = None }
  in
  let ordinary =
    List.init vm_count (fun i ->
        make_vm
          ~vname:(Printf.sprintf "%svm%02d" name_prefix (i + 1))
          ~vdriver:false i)
  in
  let drivers =
    List.init driver_vm_count (fun i ->
        make_vm
          ~vname:(Printf.sprintf "%sdriver%02d" name_prefix (i + 1))
          ~vdriver:true (vm_count + i))
  in
  t.vm_list <- ordinary @ drivers;
  observe (Obs.ambient ()) t;
  t

let start t k =
  Vmm.power_on t.hypervisor (fun () ->
      Simkit.Process.par
        (List.map
           (fun v k ->
             provision_vm t v (function
               (* Initial bring-up has no recovery policy to consult:
                  a boot-time fault is a broken testbed. *)
               | Error f -> Simkit.Fault.fail f
               | Ok () -> k ()))
           t.vm_list)
        (fun () ->
          warm_web_caches t;
          k ()))

let attach_probers t ?interval_s () =
  List.map
    (fun v ->
      let p =
        Netsim.Prober.create t.eng ~name:v.vname ?interval_s
          ~is_up:(fun () -> vm_is_up v)
          ()
      in
      Netsim.Prober.start p;
      p)
    t.vm_list
