module Vmm = Xenvmm.Vmm

module Config = struct
  type t = {
    hosts : int;
    host : Scenario.Config.t;
    wave_width : int;
    slo : float;
    gap_s : float;
    load_rate_per_s : float;
    blind_dispatch : bool;
    sample_interval_s : float;
  }

  let default = (* simlint: allow D011 immutable template; the host config's engine/plan slots are None *)
    {
      hosts = 16;
      host = Scenario.Config.default;
      wave_width = 4;
      slo = 0.7;
      gap_s = 10.0;
      load_rate_per_s = 200.0;
      blind_dispatch = false;
      sample_interval_s = 5.0;
    }
end

type t = {
  cfg : Config.t;
  eng : Simkit.Engine.t;
  cluster : Cluster_sim.t;
  spare : Scenario.t;
}

let config t = t.cfg
let engine t = t.eng
let cluster t = t.cluster
let spare t = t.spare
let healthy_hosts t = Cluster_sim.healthy_hosts t.cluster

let create (cfg : Config.t) =
  let eng = Simkit.Engine.create ~seed:cfg.Config.host.Scenario.Config.seed () in
  let cluster =
    Cluster_sim.create ~engine:eng
      {
        Cluster_sim.Config.hosts = cfg.Config.hosts;
        host = cfg.Config.host;
        blind_dispatch = cfg.Config.blind_dispatch;
      }
  in
  (* The spare host: powered VMM, no guests — a migration target only. *)
  let spare =
    Scenario.create
      {
        cfg.Config.host with
        Scenario.Config.engine = Some eng;
        vm_count = 0;
        driver_vm_count = 0;
        name_prefix = "spare-";
      }
  in
  let t = { cfg; eng; cluster; spare } in
  Obs.gauge "fleet.healthy_hosts" (fun () -> float_of_int (healthy_hosts t));
  Obs.gauge "fleet.capacity_fraction" (fun () ->
      float_of_int (healthy_hosts t) /. float_of_int cfg.Config.hosts);
  t

let start t =
  let spare_up = ref false in
  Scenario.start t.spare (fun () -> spare_up := true);
  Cluster_sim.start t.cluster;
  while (not !spare_up) && Simkit.Engine.step t.eng do () done;
  if not !spare_up then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Fleet.start: spare host")

(* --- per-host actions ---------------------------------------------------- *)

let trace_host t i fmt =
  Printf.ksprintf
    (fun msg ->
      Simkit.Trace.instant
        (Scenario.trace (List.nth (Cluster_sim.nodes t.cluster) i))
        (Printf.sprintf "fleet host %d: %s" (i + 1) msg))
    fmt

let rejuvenate_host t i ~strategy k =
  let node = List.nth (Cluster_sim.nodes t.cluster) i in
  Roothammer.rejuvenate node ~strategy (fun outcome ->
      (match outcome.Recovery.fatal with
      | Some f -> trace_host t i "not recovered: %s" (Simkit.Fault.to_string f)
      | None -> ());
      Obs.incr ~time:(Simkit.Engine.now t.eng) "fleet.hosts_rejuvenated";
      k ())

(* Evacuate the guests to the spare, warm-reboot the emptied VMM, bring
   the guests home. Any failure is traced and the host abandoned in
   whatever state it reached — the wave must not wedge, and the health
   gauges already account for it. *)
let migrate_then_reboot t i k =
  let node = List.nth (Cluster_sim.nodes t.cluster) i in
  let src = Scenario.vmm node in
  let dst = Scenario.vmm t.spare in
  let kernels = List.map Scenario.vm_kernel (Scenario.vms node) in
  let dirty_bytes_per_s =
    Migration.dirty_rate_of_workload
      t.cfg.Config.host.Scenario.Config.workload
  in
  let give_up what e =
    trace_host t i "%s failed: %s" what (Vmm.error_message e);
    Obs.incr ~time:(Simkit.Engine.now t.eng) "fleet.hosts_rejuvenated";
    k ()
  in
  Migration.evacuate ~src ~dst ~kernels ~dirty_bytes_per_s (function
    | Error e -> give_up "evacuation" e
    | Ok () ->
      Vmm.shutdown_dom0 src (fun () ->
          Vmm.quick_reload src (function
            | Error e -> give_up "quick reload" e
            | Ok () ->
              Vmm.boot_dom0 src (fun () ->
                  Migration.evacuate ~src:dst ~dst:src ~kernels
                    ~dirty_bytes_per_s (function
                    | Error e -> give_up "migration back" e
                    | Ok () ->
                      Obs.incr
                        ~time:(Simkit.Engine.now t.eng)
                        "fleet.hosts_rejuvenated";
                      k ())))))

let host_task t i ~strategy k =
  match (strategy : Wave.strategy) with
  | Wave.Reboot s -> rejuvenate_host t i ~strategy:s k
  | Wave.Migrate -> migrate_then_reboot t i k

(* --- the rolling pass ---------------------------------------------------- *)

type wave_report = {
  wave_index : int;
  wave_hosts : int list;
  started_at_s : float;
  wave_makespan_s : float;
  deferred : int;
}

type report = {
  fr_strategy : Wave.strategy;
  hosts : int;
  wave_width : int;
  slo : float;
  slo_floor : int;
  waves : wave_report list;
  makespan_s : float;
  offered : int;
  lost : int;
  loss_ratio : float;
  min_healthy : int;
  mean_healthy : float;
  slo_met : bool;
  skipped : int list;
}

let admission_retries = 25
let admission_retry_s = 2.0

(* Partition a wave's pending hosts into the ones the SLO guard admits
   right now and the ones it defers. Taking down a healthy host costs
   one unit of capacity; an already-unhealthy host costs none. All
   checks happen in one simulated instant, so [taken] tracks the
   healthy hosts this same decision is about to remove. *)
let admit t ~slo_floor pending =
  let healthy = healthy_hosts t in
  let taken = ref 0 in
  List.partition
    (fun i ->
      let cost = if Cluster_sim.host_healthy t.cluster i then 1 else 0 in
      if healthy - !taken - cost >= slo_floor then begin
        taken := !taken + cost;
        true
      end
      else false)
    pending

let run t ~strategy =
  let cfg = t.cfg in
  let plan =
    match
      Wave.plan ~hosts:cfg.Config.hosts ~width:cfg.Config.wave_width
        ~slo:cfg.Config.slo
    with
    | Ok p -> p
    | Error (`Msg m) -> Simkit.Fault.fail (Simkit.Fault.Invariant m)
  in
  let load =
    Cluster_sim.offer_load t.cluster ~rate_per_s:cfg.Config.load_rate_per_s
  in
  let min_healthy = ref (healthy_hosts t) in
  let healthy_sum = ref 0.0 in
  let healthy_n = ref 0 in
  let sampler =
    Simkit.Sampler.start t.eng ~name:"fleet-capacity"
      ~interval_s:cfg.Config.sample_interval_s
      ~gauge:(fun () ->
        let h = healthy_hosts t in
        if h < !min_healthy then min_healthy := h;
        healthy_sum := !healthy_sum +. float_of_int h;
        incr healthy_n;
        float_of_int h)
      ()
  in
  let t0 = Simkit.Engine.now t.eng in
  let wave_reports = ref [] in
  let skipped = ref [] in
  let finished = ref false in
  (* One wave: admit under the SLO guard, run the admitted hosts
     (concurrently for reboots, serially for migrations — the spare and
     the migration link are shared), then retry the deferred ones. *)
  let rec run_wave idx pending ~admitted ~deferrals ~started_at k =
    match admit t ~slo_floor:plan.Wave.slo_floor pending with
    | [], [] ->
      wave_reports :=
        {
          wave_index = idx;
          wave_hosts = List.rev admitted;
          started_at_s = started_at;
          wave_makespan_s = Simkit.Engine.now t.eng -. started_at;
          deferred = deferrals;
        }
        :: !wave_reports;
      k ()
    | [], waiting when deferrals >= admission_retries ->
      List.iter (fun i -> trace_host t i "skipped: SLO guard") waiting;
      skipped := !skipped @ waiting;
      run_wave idx [] ~admitted ~deferrals ~started_at k
    | [], waiting ->
      Simkit.Process.delay t.eng admission_retry_s (fun () ->
          run_wave idx waiting ~admitted ~deferrals:(deferrals + 1)
            ~started_at k)
    | now, waiting ->
      let finish () =
        run_wave idx waiting ~admitted:(List.rev_append now admitted)
          ~deferrals ~started_at k
      in
      (match (strategy : Wave.strategy) with
      | Wave.Reboot _ ->
        Simkit.Process.par
          (List.map (fun i k -> host_task t i ~strategy k) now)
          finish
      | Wave.Migrate ->
        let rec serial = function
          | [] -> finish ()
          | i :: rest -> host_task t i ~strategy (fun () -> serial rest)
        in
        serial now)
  in
  let rec run_waves idx = function
    | [] -> finished := true
    | wave :: rest ->
      Obs.set_gauge "fleet.wave_index" (float_of_int idx);
      run_wave idx wave ~admitted:[] ~deferrals:0
        ~started_at:(Simkit.Engine.now t.eng) (fun () ->
          if rest = [] then finished := true
          else
            Simkit.Process.delay t.eng cfg.Config.gap_s (fun () ->
                run_waves (idx + 1) rest))
  in
  run_waves 0 plan.Wave.waves;
  while (not !finished) && Simkit.Engine.step t.eng do () done;
  if not !finished then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Fleet.run");
  (* Let probes and in-flight requests settle, then stop the plumbing. *)
  Simkit.Engine.run ~until:(Simkit.Engine.now t.eng +. 5.0) t.eng;
  Netsim.Poisson.stop load;
  Simkit.Sampler.stop sampler;
  let mean_healthy =
    if !healthy_n = 0 then float_of_int (healthy_hosts t)
    else !healthy_sum /. float_of_int !healthy_n
  in
  {
    fr_strategy = strategy;
    hosts = cfg.Config.hosts;
    wave_width = plan.Wave.width;
    slo = cfg.Config.slo;
    slo_floor = plan.Wave.slo_floor;
    waves = List.rev !wave_reports;
    makespan_s = Simkit.Engine.now t.eng -. t0;
    offered = Netsim.Poisson.offered load;
    lost = Netsim.Poisson.lost load;
    loss_ratio = Netsim.Poisson.loss_ratio load;
    min_healthy = !min_healthy;
    mean_healthy;
    slo_met = !min_healthy >= plan.Wave.slo_floor;
    skipped = !skipped;
  }
