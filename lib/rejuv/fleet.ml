module Vmm = Xenvmm.Vmm

module Config = struct
  type t = {
    hosts : int;
    host : Scenario.Config.t;
    wave_width : int;
    slo : float;
    gap_s : float;
    load_rate_per_s : float;
    blind_dispatch : bool;
    sample_interval_s : float;
    partitions : int;
    sync_quantum_s : float;
  }

  let default = (* simlint: allow D011 immutable template; the host config's engine/plan slots are None *)
    {
      hosts = 16;
      host = Scenario.Config.default;
      wave_width = 4;
      slo = 0.7;
      gap_s = 10.0;
      load_rate_per_s = 200.0;
      blind_dispatch = false;
      sample_interval_s = 5.0;
      partitions = 1;
      sync_quantum_s = 2.0;
    }
end

(* One fleet host. The cell is the only state shared across the shard
   boundary, and the protocol keeps it race-free by phase: [up], [busy]
   and [done_at] are written by the owning shard's events during a
   round and read by the coordinator only at quantum barriers (workers
   parked); [redirect_ok] flows the other way — written at barriers,
   read by the shard's load events during rounds. [counted] is
   coordinator-only. The round barrier provides the happens-before
   edges. *)
type cell = {
  idx : int;
  shard : int;
  node : Scenario.t;
  mutable up : bool;
  mutable busy : bool;  (* a rejuvenation task is in flight *)
  mutable done_at : float;  (* completion time of the last task *)
  mutable counted : bool;  (* completion folded into the obs counter *)
  mutable redirect_ok : bool;  (* some *other* host was healthy at the
                                  last barrier *)
}

type t = {
  cfg : Config.t;
  par : Simkit.Par_engine.t;
  members : cell array;
  fleet_spare : Scenario.t;
  mutable spare_up : bool;
}

let config t = t.cfg
let par t = t.par
let spare t = t.fleet_spare

let host_healthy c =
  Scenario.vms c.node <> []
  && List.for_all Scenario.vm_is_up (Scenario.vms c.node)

let healthy_hosts t =
  Array.fold_left (fun n c -> if host_healthy c then n + 1 else n) 0 t.members

let create (cfg : Config.t) =
  if cfg.Config.hosts <= 0 then invalid_arg "Fleet.create: hosts <= 0";
  if cfg.Config.partitions <= 0 then
    invalid_arg "Fleet.create: partitions <= 0";
  if cfg.Config.sync_quantum_s <= 0.0 then
    invalid_arg "Fleet.create: sync_quantum_s <= 0";
  let shards = min cfg.Config.partitions cfg.Config.hosts in
  (* Hosts share no mutable simulation state, so any cross-host event
     coupling flows through the coordinator at barrier times — that,
     plus per-host seeds derived from stable host indices (not from
     shard-local split order), is what makes the run byte-identical
     for every partition count. *)
  let par =
    Simkit.Par_engine.create ~seed:cfg.Config.host.Scenario.Config.seed
      ~quantum:cfg.Config.sync_quantum_s ~shards ()
  in
  let members =
    Array.init cfg.Config.hosts (fun i ->
        let shard = i mod shards in
        let node =
          Scenario.create
            {
              cfg.Config.host with
              Scenario.Config.engine = Some (Simkit.Par_engine.shard par shard);
              name_prefix =
                Printf.sprintf "%sh%d-"
                  cfg.Config.host.Scenario.Config.name_prefix (i + 1);
            }
        in
        {
          idx = i;
          shard;
          node;
          up = false;
          busy = false;
          done_at = 0.0;
          counted = true;
          redirect_ok = false;
        })
  in
  (* The spare host: powered VMM, no guests — a migration target only.
     It is pinned to shard 0, where migration traffic stays local. *)
  let fleet_spare =
    Scenario.create
      {
        cfg.Config.host with
        Scenario.Config.engine = Some (Simkit.Par_engine.shard par 0);
        vm_count = 0;
        driver_vm_count = 0;
        name_prefix = "spare-";
      }
  in
  let t = { cfg; par; members; fleet_spare; spare_up = false } in
  Obs.gauge "fleet.healthy_hosts" (fun () -> float_of_int (healthy_hosts t));
  Obs.gauge "fleet.capacity_fraction" (fun () ->
      float_of_int (healthy_hosts t) /. float_of_int cfg.Config.hosts);
  Obs.instrument_par_engine (Obs.ambient ()) par;
  t

let all_up t = t.spare_up && Array.for_all (fun c -> c.up) t.members

let start t =
  Scenario.start t.fleet_spare (fun () -> t.spare_up <- true);
  Array.iter (fun c -> Scenario.start c.node (fun () -> c.up <- true)) t.members;
  Simkit.Par_engine.run t.par ~on_quantum:(fun _q ->
      if all_up t || Simkit.Par_engine.idle t.par then `Stop else `Continue);
  if not (all_up t) then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Fleet.start")

(* --- per-host actions ---------------------------------------------------- *)

let trace_host c fmt =
  Printf.ksprintf
    (fun msg ->
      Simkit.Trace.instant (Scenario.trace c.node)
        (Printf.sprintf "fleet host %d: %s" (c.idx + 1) msg))
    fmt

(* Host tasks run entirely on the host's own shard and report nothing
   but the cell flip; observability (the hosts_rejuvenated counter)
   happens on the coordinator when the completion is observed at a
   barrier, so the task body never touches another domain's state. *)
let rejuvenate_host c ~strategy k =
  Roothammer.rejuvenate c.node ~strategy (fun outcome ->
      (match outcome.Recovery.fatal with
      | Some f -> trace_host c "not recovered: %s" (Simkit.Fault.to_string f)
      | None -> ());
      k ())

(* Evacuate the guests to the spare, warm-reboot the emptied VMM, bring
   the guests home. Any failure is traced and the host abandoned in
   whatever state it reached — the wave must not wedge, and the health
   gauges already account for it. Migrate waves run with a single
   shard (enforced in [run]), so the spare is always local. *)
let migrate_then_reboot t c k =
  let src = Scenario.vmm c.node in
  let dst = Scenario.vmm t.fleet_spare in
  let kernels = List.map Scenario.vm_kernel (Scenario.vms c.node) in
  (* Conservative evacuation rate: the worst tracker-modulated dirty
     rate across the host's VMs (the static workload rate while memdyn
     is off — every domain then reports exactly that). *)
  let workload = t.cfg.Config.host.Scenario.Config.workload in
  let now = Simkit.Engine.now (Scenario.engine c.node) in
  let dirty_bytes_per_s =
    List.fold_left
      (fun acc v ->
        Float.max acc
          (Migration.dirty_rate_of_domain ~workload
             (Scenario.vm_domain v) ~now))
      (Migration.dirty_rate_of_workload workload)
      (Scenario.vms c.node)
  in
  let give_up what e =
    trace_host c "%s failed: %s" what (Vmm.error_message e);
    k ()
  in
  Migration.evacuate ~src ~dst ~kernels ~dirty_bytes_per_s (function
    | Error e -> give_up "evacuation" e
    | Ok () ->
      Vmm.shutdown_dom0 src (fun () ->
          Vmm.quick_reload src (function
            | Error e -> give_up "quick reload" e
            | Ok () ->
              Vmm.boot_dom0 src (fun () ->
                  Migration.evacuate ~src:dst ~dst:src ~kernels
                    ~dirty_bytes_per_s (function
                    | Error e -> give_up "migration back" e
                    | Ok () -> k ())))))

let host_task t c ~strategy k =
  match (strategy : Wave.strategy) with
  | Wave.Reboot s -> rejuvenate_host c ~strategy:s k
  | Wave.Migrate -> migrate_then_reboot t c k

(* --- the rolling pass ---------------------------------------------------- *)

type wave_report = {
  wave_index : int;
  wave_hosts : int list;
  started_at_s : float;
  wave_makespan_s : float;
  deferred : int;
}

type report = {
  fr_strategy : Wave.strategy;
  hosts : int;
  wave_width : int;
  slo : float;
  slo_floor : int;
  waves : wave_report list;
  makespan_s : float;
  offered : int;
  lost : int;
  loss_ratio : float;
  min_healthy : int;
  mean_healthy : float;
  slo_met : bool;
  skipped : int list;
}

let admission_retries = 25

(* Partition a wave's pending hosts into the ones the SLO guard admits
   right now and the ones it defers. Taking down a healthy host costs
   one unit of capacity; an already-unhealthy host costs none. All
   checks happen at one barrier instant, so [taken] tracks the healthy
   hosts this same decision is about to remove. *)
let admit t ~slo_floor pending =
  let healthy = healthy_hosts t in
  let taken = ref 0 in
  List.partition
    (fun i ->
      let cost = if host_healthy t.members.(i) then 1 else 0 in
      if healthy - !taken - cost >= slo_floor then begin
        taken := !taken + cost;
        true
      end
      else false)
    pending

(* The in-flight wave, advanced one quantum tick at a time. *)
type wave_state = {
  w_idx : int;
  mutable w_pending : int list;
  mutable w_admitted : int list;  (* admission order *)
  mutable w_deferrals : int;
  w_started : float;
}

let run t ~strategy =
  let cfg = t.cfg in
  if
    (match (strategy : Wave.strategy) with
    | Wave.Migrate -> true
    | Wave.Reboot _ -> false)
    && Simkit.Par_engine.shards t.par > 1
  then
    Simkit.Fault.fail
      (Simkit.Fault.Invariant
         "Fleet.run: migrate waves share the spare host and its \
          migration link; partitions must be 1");
  let plan =
    match
      Wave.plan ~hosts:cfg.Config.hosts ~width:cfg.Config.wave_width
        ~slo:cfg.Config.slo
    with
    | Ok p -> p
    | Error (`Msg m) -> Simkit.Fault.fail (Simkit.Fault.Invariant m)
  in
  (* Open-loop load, one generator per host so every arrival is shard-
     local. Streams are seeded from (fleet seed, host index): stable
     across partition counts, unlike anything split from a shard
     engine's root stream. A request succeeds on a healthy host, or —
     unless dispatch is blind — when the balancer could have sent it to
     some other host that was healthy as of the last barrier. *)
  let rate = cfg.Config.load_rate_per_s /. float_of_int cfg.Config.hosts in
  (* Traffic-mode split. [Per_request] keeps the historical Poisson
     streams event-for-event ([rate *. 1.0] is exact). [Fluid]/[Hybrid]
     carry the bulk as one epoch-integrated flow stream per host — no
     RNG and O(epochs) events however many clients are modeled, which
     is what lets a host carry 1M+ flows. When the template models an
     explicit client population with a positive think time, each of
     the [clients] closed-loop flows offers ~1/think requests/s;
     otherwise the fleet's [load_rate_per_s] knob is split as before. *)
  let traffic = cfg.Config.host.Scenario.Config.traffic in
  let tracer_fraction =
    match traffic.Netsim.Fluid.mode with
    | Netsim.Fluid.Per_request -> 1.0
    | Netsim.Fluid.Fluid -> 0.0
    | Netsim.Fluid.Hybrid ->
      float_of_int traffic.Netsim.Fluid.tracers
      /. float_of_int traffic.Netsim.Fluid.clients
  in
  let host_rate =
    if traffic.Netsim.Fluid.mode = Netsim.Fluid.Per_request then rate
    else if traffic.Netsim.Fluid.think_time_s > 0.0 then
      float_of_int traffic.Netsim.Fluid.clients
      /. traffic.Netsim.Fluid.think_time_s
    else rate
  in
  let host_served c () =
    if host_healthy c || ((not cfg.Config.blind_dispatch) && c.redirect_ok)
    then 1.0
    else 0.0
  in
  let gens =
    Array.map
      (fun c ->
        if tracer_fraction <= 0.0 then None
        else
          Some
            (Netsim.Poisson.create
               (Scenario.engine c.node)
               ~name:(Printf.sprintf "fleet-load-%d" (c.idx + 1))
               ~rate_per_s:(host_rate *. tracer_fraction)
               ~rng:
                 (Simkit.Rng.create
                    ((cfg.Config.host.Scenario.Config.seed * 1_000_003)
                    + c.idx + 1))
               ~request:(fun k ->
                 k
                   (host_healthy c
                   || ((not cfg.Config.blind_dispatch) && c.redirect_ok)))
               ()))
      t.members
  in
  let flow_gens =
    Array.map
      (fun c ->
        if tracer_fraction >= 1.0 then None
        else
          Some
            (Netsim.Fluid.Open.create
               (Scenario.engine c.node)
               ~rate_per_s:(host_rate *. (1.0 -. tracer_fraction))
               ~epoch_s:traffic.Netsim.Fluid.epoch_s
               ~served_fraction:(host_served c)
               ()))
      t.members
  in
  Array.iter (Option.iter Netsim.Poisson.start) gens;
  Array.iter (Option.iter Netsim.Fluid.Open.start) flow_gens;
  let t0 = Simkit.Par_engine.last_quantum t.par in
  let min_healthy = ref (healthy_hosts t) in
  let healthy_sum = ref 0.0 in
  let healthy_n = ref 0 in
  let next_sample = ref t0 in
  let wave_reports = ref [] in
  let skipped = ref [] in
  let queue = ref (List.mapi (fun i w -> (i, w)) plan.Wave.waves) in
  let cur = ref None in
  let next_wave_at = ref neg_infinity in
  let end_q = ref t0 in
  let finished = ref false in
  (* Everything the control plane does happens at barrier time [q],
     with every worker parked: sampling, redirect refresh, completion
     accounting, SLO-guarded admission, task launches. That is what
     keeps control decisions independent of the partitioning. *)
  let sample q =
    if q >= !next_sample then begin
      let h = healthy_hosts t in
      if h < !min_healthy then min_healthy := h;
      healthy_sum := !healthy_sum +. float_of_int h;
      incr healthy_n;
      next_sample := !next_sample +. cfg.Config.sample_interval_s
    end
  in
  let refresh_redirects () =
    let healthy = healthy_hosts t in
    Array.iter
      (fun c ->
        c.redirect_ok <- healthy - (if host_healthy c then 1 else 0) > 0)
      t.members
  in
  let count_completions q =
    Array.iter
      (fun c ->
        if (not c.counted) && not c.busy then begin
          c.counted <- true;
          Obs.incr ~time:q "fleet.hosts_rejuvenated"
        end)
      t.members
  in
  let launch q hosts =
    List.iter
      (fun i ->
        let c = t.members.(i) in
        c.busy <- true;
        c.counted <- false)
      hosts;
    match (strategy : Wave.strategy) with
    | Wave.Reboot _ ->
      (* Concurrent: each host's task is scheduled at the barrier time
         on its own shard. *)
      List.iter
        (fun i ->
          let c = t.members.(i) in
          let eng = Scenario.engine c.node in
          ignore
            (Simkit.Engine.schedule_at eng ~time:q (fun () ->
                 host_task t c ~strategy (fun () ->
                     c.done_at <- Simkit.Engine.now eng;
                     c.busy <- false))))
        hosts
    | Wave.Migrate ->
      (* Serial: the spare's memory and the migration link are shared. *)
      let rec serial time = function
        | [] -> ()
        | i :: rest ->
          let c = t.members.(i) in
          let eng = Scenario.engine c.node in
          ignore
            (Simkit.Engine.schedule_at eng ~time (fun () ->
                 host_task t c ~strategy (fun () ->
                     c.done_at <- Simkit.Engine.now eng;
                     c.busy <- false;
                     serial (Simkit.Engine.now eng) rest)))
      in
      serial q hosts
  in
  let rec tick_waves q =
    match !cur with
    | None -> (
      match !queue with
      | [] ->
        if not !finished then begin
          finished := true;
          end_q := q
        end
      | (idx, wave) :: rest ->
        if q >= !next_wave_at then begin
          queue := rest;
          Obs.set_gauge "fleet.wave_index" (float_of_int idx);
          cur :=
            Some
              {
                w_idx = idx;
                w_pending = wave;
                w_admitted = [];
                w_deferrals = 0;
                w_started = q;
              };
          tick_waves q
        end)
    | Some w ->
      let in_flight =
        List.exists (fun i -> t.members.(i).busy) w.w_admitted
      in
      (* Admission runs batch-by-batch, like the sequential control
         plane did: the deferred rest of a wave is reconsidered once
         the admitted batch has completed. *)
      if w.w_pending <> [] && not in_flight then begin
        match admit t ~slo_floor:plan.Wave.slo_floor w.w_pending with
        | [], waiting ->
          if w.w_deferrals >= admission_retries then begin
            List.iter
              (fun i -> trace_host t.members.(i) "skipped: SLO guard")
              waiting;
            skipped := !skipped @ waiting;
            w.w_pending <- []
          end
          else w.w_deferrals <- w.w_deferrals + 1
        | now, waiting ->
          w.w_pending <- waiting;
          w.w_admitted <- w.w_admitted @ now;
          launch q now
      end;
      if
        w.w_pending = []
        && List.for_all (fun i -> not t.members.(i).busy) w.w_admitted
      then begin
        let makespan =
          List.fold_left
            (fun acc i -> Float.max acc (t.members.(i).done_at -. w.w_started))
            0.0 w.w_admitted
        in
        wave_reports :=
          {
            wave_index = w.w_idx;
            wave_hosts = w.w_admitted;
            started_at_s = w.w_started;
            wave_makespan_s = makespan;
            deferred = w.w_deferrals;
          }
          :: !wave_reports;
        cur := None;
        next_wave_at := q +. cfg.Config.gap_s;
        tick_waves q
      end
  in
  Simkit.Par_engine.run t.par ~on_quantum:(fun q ->
      sample q;
      refresh_redirects ();
      count_completions q;
      tick_waves q;
      if !finished then `Stop
      else if Simkit.Par_engine.idle t.par then `Stop
      else `Continue);
  if not !finished then Simkit.Fault.fail (Simkit.Fault.Stalled "Fleet.run");
  (* Let probes and in-flight requests settle, then stop the plumbing. *)
  let settled = !end_q +. 5.0 in
  Simkit.Par_engine.run t.par ~until:settled;
  Array.iter (Option.iter Netsim.Poisson.stop) gens;
  Array.iter (Option.iter Netsim.Fluid.Open.stop) flow_gens;
  let mean_healthy =
    if !healthy_n = 0 then float_of_int (healthy_hosts t)
    else !healthy_sum /. float_of_int !healthy_n
  in
  let sum_over arr f =
    Array.fold_left
      (fun n g -> n + Option.fold ~none:0 ~some:f g)
      0 arr
  in
  let offered =
    sum_over gens Netsim.Poisson.offered
    + sum_over flow_gens Netsim.Fluid.Open.offered
  in
  let lost =
    sum_over gens Netsim.Poisson.lost
    + sum_over flow_gens Netsim.Fluid.Open.lost
  in
  {
    fr_strategy = strategy;
    hosts = cfg.Config.hosts;
    wave_width = plan.Wave.width;
    slo = cfg.Config.slo;
    slo_floor = plan.Wave.slo_floor;
    waves = List.rev !wave_reports;
    makespan_s = settled -. t0;
    offered;
    lost;
    loss_ratio =
      (if offered = 0 then 0.0
       else float_of_int lost /. float_of_int offered);
    min_healthy = !min_healthy;
    mean_healthy;
    slo_met = !min_healthy >= plan.Wave.slo_floor;
    skipped = !skipped;
  }
