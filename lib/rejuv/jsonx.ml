type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  escape_into buf s;
  Buffer.contents buf

let float_repr f =
  if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | Raw s -> Buffer.add_string buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf
