(** Recovery policies and outcomes for the rejuvenation strategies.

    A strategy run no longer aborts the process on the first fault: it
    consults a {!policy} and either retries the failing step, falls
    back to a heavier strategy (warm → saved → cold), or abandons the
    affected domain and continues. The {!outcome} records what
    actually happened so experiments can tabulate recovery success,
    extra downtime, and domains lost (à la ReHype). *)

type policy = {
  max_retries : int;
      (** Retries per failing step (resume, restore, reprovision). *)
  fallback : bool;
      (** Allow falling back to a heavier strategy when the current one
          cannot complete (e.g. warm reboot's quick reload fails →
          finish with a cold reboot). *)
  abandon_failed_domains : bool;
      (** After retries are exhausted, give the domain up (rebuild it
          fresh, losing its memory state) and continue, instead of
          declaring the whole run fatal. *)
}

val default : policy
(** [{ max_retries = 1; fallback = true; abandon_failed_domains = true }] —
    keep the consolidation server up at all costs. *)

val fail_fast : policy
(** [{ max_retries = 0; fallback = false; abandon_failed_domains = false }] —
    first fault is fatal; the pre-refactor behaviour, minus the abort. *)

type outcome = {
  requested : Strategy.t;  (** The strategy the caller asked for. *)
  completed : Strategy.t;
      (** The strategy that actually finished the reboot (differs from
          [requested] after a fallback). *)
  faults : (string * Simkit.Fault.t) list;
      (** Every fault observed, oldest first, tagged with the step that
          reported it (e.g. ["resume"], ["quick_reload"]). *)
  retries : int;  (** Total retry attempts across all steps. *)
  abandoned : string list;
      (** Domains whose memory state was lost and which were rebuilt
          fresh (or lost outright when rebuild also failed). *)
  fatal : Simkit.Fault.t option;
      (** [Some f] when the policy could not recover and the scenario
          was left without a completed reboot. *)
}

val clean : Strategy.t -> outcome
(** The all-went-well outcome for a given strategy. *)

val recovered : outcome -> bool
(** [fatal = None]: the reboot completed, possibly degraded. *)

val pp : Format.formatter -> outcome -> unit

(** {1 Run context}

    Mutable accumulator threaded through a strategy's CPS flow; the
    strategies share it so faults, retries and abandonments are
    recorded uniformly. *)

type run = {
  run_policy : policy;
  requested_strategy : Strategy.t;
  mutable run_completed : Strategy.t;
  mutable run_faults : (string * Simkit.Fault.t) list;  (** newest first *)
  mutable run_retries : int;
  mutable run_abandoned : string list;
  mutable run_fatal : Simkit.Fault.t option;
}

val start : policy:policy -> Strategy.t -> run

val note : run -> step:string -> Simkit.Fault.t -> unit
(** Record an observed fault under a step tag. *)

val abandon : run -> string -> unit
(** Record a domain as abandoned (idempotent per name). *)

val set_fatal : run -> Simkit.Fault.t -> unit
(** Record an unrecoverable fault; the first one wins. *)

val fell_back : run -> Strategy.t -> unit
(** Record that a fallback strategy finished the reboot. *)

val finish : run -> outcome

val with_retries :
  run ->
  step:string ->
  (((unit, Simkit.Fault.t) result -> unit) -> unit) ->
  ([ `Ok | `Gave_up of Simkit.Fault.t ] -> unit) ->
  unit
(** [with_retries run ~step attempt k] runs [attempt], re-running it up
    to [run.run_policy.max_retries] more times on [Error]. Every fault
    is {!note}d; each re-run counts one retry. [k `Ok] on success,
    [k (`Gave_up f)] with the last fault when retries are exhausted. *)
