module Vmm = Xenvmm.Vmm
module Fault = Simkit.Fault

let execute ?(policy = Recovery.default) scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let engine = Scenario.engine scenario in
  let tr = Scenario.trace scenario in
  let run = Recovery.start ~policy Strategy.Saved in
  let finish () = k (Recovery.finish run) in
  Simkit.Trace.instant tr "reboot command (saved)";
  (* VMs whose save (or restore) is given up on; rebuilt from scratch
     after the other restores — their memory state is lost. *)
  let rebuilds = ref [] in
  let give_up v fault k =
    if policy.Recovery.abandon_failed_domains then begin
      Recovery.abandon run (Scenario.vm_name v);
      rebuilds := v :: !rebuilds
    end
    else Recovery.set_fatal run fault;
    k ()
  in
  (* dom0 drives the suspends while it is still up (the original Xen
     design the paper contrasts with): all saves run concurrently and
     contend for the one disk. A failed save leaves the domain resumed
     in place, so it can be retried; a domain given up on keeps running
     until the hardware reset kills it. *)
  let save_one v k =
    Recovery.with_retries run ~step:"save"
      (fun k -> Vmm.save_domain_to_disk vmm (Scenario.vm_domain v) k)
      (function `Ok -> k () | `Gave_up f -> give_up v f k)
  in
  (* Restores run serially through the toolstack (each a sequential
     read of its image) — or concurrently under the ablation knob,
     where the interleaved reads contend for the spindle. An injected
     restore failure leaves the on-disk image intact, so it too can be
     retried before the domain is rebuilt fresh. *)
  let restore_one v k =
    Recovery.with_retries run ~step:"restore"
      (fun k ->
        Vmm.restore_domain_from_disk vmm ~name:(Scenario.vm_name v) (function
          | Ok _ -> k (Ok ())
          | Error e -> k (Error e)))
      (function `Ok -> k () | `Gave_up f -> give_up v f k)
  in
  Simkit.Process.delay engine cal.Calibration.save_dispatch_delay_s (fun () ->
      let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
      Simkit.Process.par
        (List.map save_one (Scenario.vms scenario))
        (fun () ->
          Simkit.Trace.end_span tr pre;
          if run.Recovery.run_fatal <> None then finish ()
          else
          let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
          Vmm.shutdown_dom0 vmm (fun () ->
              Vmm.shutdown_vmm vmm (fun () ->
                  Vmm.hardware_reset vmm (fun () ->
                      Vmm.boot_dom0 vmm (fun () ->
                          Simkit.Trace.end_span tr reboot;
                          let post =
                            Simkit.Trace.begin_span tr "post-reboot tasks"
                          in
                          let saved =
                            List.filter
                              (fun v -> not (List.memq v !rebuilds))
                              (Scenario.vms scenario)
                          in
                          let combine =
                            if cal.Calibration.parallel_restore then
                              Simkit.Process.par
                            else Simkit.Process.seq
                          in
                          combine (List.map restore_one saved) (fun () ->
                              if run.Recovery.run_fatal <> None then begin
                                Simkit.Trace.end_span tr post;
                                finish ()
                              end
                              else
                                (* Rebuild the given-up VMs from
                                   scratch: fresh domains, cold
                                   caches. *)
                                Simkit.Process.par
                                  (List.map
                                     (fun v k ->
                                       Recovery.with_retries run
                                         ~step:"reprovision"
                                         (fun k ->
                                           Scenario.provision_vm scenario v k)
                                         (function
                                           | `Ok -> k ()
                                           | `Gave_up f ->
                                             if
                                               policy
                                                 .Recovery
                                                  .abandon_failed_domains
                                             then
                                               Recovery.abandon run
                                                 (Scenario.vm_name v)
                                             else Recovery.set_fatal run f;
                                             k ()))
                                     (List.rev !rebuilds))
                                  (fun () ->
                                    Simkit.Trace.end_span tr post;
                                    finish ()))))))))
