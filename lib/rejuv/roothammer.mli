(** RootHammer: warm-VM reboot for VMM rejuvenation — top-level façade.

    Typical use:

    {[
      let scenario =
        Rejuv.Scenario.create
          { Rejuv.Scenario.Config.default with vm_count = 11 }
      in
      Rejuv.Roothammer.start_and_run scenario;
      let run =
        Rejuv.Experiment.run_reboot ~strategy:Rejuv.Strategy.Warm
          ~vm_count:11 ~vm_mem_bytes:(Simkit.Units.gib 1) ()
      in
      Format.printf "downtime: %.1f s@." run.Rejuv.Experiment.downtime_mean_s
    ]} *)

val version : string

val rejuvenate :
  ?policy:Recovery.policy ->
  Scenario.t ->
  strategy:Strategy.t ->
  (Recovery.outcome -> unit) ->
  unit
(** One VMM rejuvenation of a running scenario with the given strategy.
    Faults along the way are handled per [policy] (default
    {!Recovery.default}); the continuation receives the
    {!Recovery.outcome} describing what happened. *)

val start_and_run : Scenario.t -> unit
(** Boot the scenario's testbed and drive the engine until it is fully
    up. Convenience for examples and quick scripts. Raises
    [Simkit.Fault.Error (Stalled _)] if the queue drains first. *)

val rejuvenate_measured :
  ?policy:Recovery.policy ->
  Scenario.t ->
  strategy:Strategy.t ->
  float * Recovery.outcome
(** Run one rejuvenation to completion, driving the engine; returns the
    wall-clock (simulated) duration of the whole procedure together
    with its recovery outcome. Safe with perpetual background processes
    (probers, workloads): the engine is stepped, not drained. *)

val rejuvenate_blocking :
  ?policy:Recovery.policy -> Scenario.t -> strategy:Strategy.t -> float
(** [fst (rejuvenate_measured ...)], raising [Simkit.Fault.Error] when
    the outcome is fatal — for callers that only want the duration of a
    reboot that must succeed. *)

val settle : Scenario.t -> seconds:float -> unit
(** Advance the engine a fixed amount of simulated time — e.g. to let
    probers observe a recovery before reading their measurements. *)
