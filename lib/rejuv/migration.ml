module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain

type config = {
  link_bytes_per_s : float;
  round_overhead_s : float;
  stop_threshold_bytes : int;
  max_rounds : int;
  activation_s : float;
}

let default_config =
  {
    link_bytes_per_s = 40.0 *. 1048576.0;
    round_overhead_s = 1.0;
    stop_threshold_bytes = 32 * 1048576;
    max_rounds = 10;
    activation_s = 0.3;
  }

let dirty_rate_of_workload = function
  | Scenario.Ssh -> 1.0 *. 1048576.0
  | Scenario.Jboss -> 8.0 *. 1048576.0
  | Scenario.Web _ -> 20.0 *. 1048576.0

(* With memory dynamics on, the PML-style tracker modulates the
   workload's static dirty rate by its current epoch's factor; without
   a tracker this is exactly [dirty_rate_of_workload]. *)
let dirty_rate_of_domain ~workload dom ~now =
  let base = dirty_rate_of_workload workload in
  match Domain.mem_tracker dom with
  | None -> base
  | Some ps ->
    Mem.Pagestate.refresh ps ~now;
    base *. Mem.Pagestate.dirty_rate_factor ps

type plan = {
  rounds : (int * float) list;
  precopy_s : float;
  stop_copy_bytes : int;
  downtime_s : float;
  total_s : float;
}

let validate config ~dirty_bytes_per_s =
  if dirty_bytes_per_s >= config.link_bytes_per_s then
    invalid_arg
      "Migration: dirty rate >= link rate, pre-copy diverges (use \
       max_rounds = 0 for pure stop-and-copy)"

(* One pre-copy iteration: sending [bytes] takes
   [bytes/link + overhead]; meanwhile the guest dirties
   [rate * duration] bytes that the next round must resend. *)
let round_duration config bytes =
  (float_of_int bytes /. config.link_bytes_per_s) +. config.round_overhead_s

let plan ?(config = default_config) ~mem_bytes ~dirty_bytes_per_s () =
  validate config ~dirty_bytes_per_s;
  if mem_bytes <= 0 then invalid_arg "Migration.plan: mem_bytes <= 0";
  let rec go acc_rounds remaining round =
    if round >= config.max_rounds || remaining <= config.stop_threshold_bytes
    then (List.rev acc_rounds, remaining)
    else begin
      let duration = round_duration config remaining in
      let dirtied =
        Stdlib.min mem_bytes
          (int_of_float (dirty_bytes_per_s *. duration))
      in
      go ((remaining, duration) :: acc_rounds) dirtied (round + 1)
    end
  in
  let rounds, residual = go [] mem_bytes 0 in
  let precopy_s = List.fold_left (fun a (_, d) -> a +. d) 0.0 rounds in
  let stop_copy_s =
    float_of_int residual /. config.link_bytes_per_s
  in
  let downtime_s = stop_copy_s +. config.activation_s in
  {
    rounds;
    precopy_s;
    stop_copy_bytes = residual;
    downtime_s;
    total_s = precopy_s +. downtime_s;
  }

let migrate ?(config = default_config) ~src ~dst ~kernel ~dirty_bytes_per_s k =
  validate config ~dirty_bytes_per_s;
  let dom = Guest.Kernel.domain kernel in
  let engine = Vmm.engine src in
  let trace = (Vmm.host src).Hw.Host.trace in
  if Domain.state dom <> Domain.Running then
    k
      (Error
         (Simkit.Fault.Bad_domain_state (Domain.state_name (Domain.state dom))))
  else begin
    let mem_bytes = Domain.mem_bytes dom in
    let span = Simkit.Trace.begin_span trace ("migrate " ^ Domain.name dom) in
    (* Memory is reserved on the destination for the whole transfer. *)
    Vmm.create_domain dst ~name:(Domain.name dom) ~mem_bytes (function
      | Error e ->
        Simkit.Trace.end_span trace span;
        k (Error e)
      | Ok new_dom ->
        (* A ballooned source only has its resident pages to move; the
           first pre-copy round (and the dirtying cap) shrink with it.
           Without a tracker this is the full RAM, as before. *)
        let transfer_bytes =
          match Domain.mem_tracker dom with
          | Some ps -> Stdlib.min mem_bytes (Mem.Pagestate.resident_bytes ps)
          | None -> mem_bytes
        in
        let rec precopy remaining round kdone =
          if
            round >= config.max_rounds
            || remaining <= config.stop_threshold_bytes
          then kdone remaining
          else begin
            let duration = round_duration config remaining in
            Simkit.Process.delay engine duration (fun () ->
                let dirtied =
                  Stdlib.min transfer_bytes
                    (int_of_float (dirty_bytes_per_s *. duration))
                in
                precopy dirtied (round + 1) kdone)
          end
        in
        precopy transfer_bytes 0 (fun residual ->
            (* Stop-and-copy: the guest's suspend handler freezes the
               services; the residual dirty set and the execution state
               cross the link; the domain activates on the destination. *)
            Domain.set_state dom Domain.Suspending;
            Domain.suspend_handler dom (fun () ->
                Domain.set_state dom Domain.Suspended;
                let blackout =
                  (float_of_int residual /. config.link_bytes_per_s)
                  +. config.activation_s
                in
                Simkit.Process.delay engine blackout (fun () ->
                    Guest.Kernel.rebind kernel dst new_dom;
                    Domain.set_state new_dom Domain.Resuming;
                    Domain.resume_handler new_dom (fun () ->
                        Domain.set_state new_dom Domain.Running;
                        (* Release the source copy only after successful
                           activation. *)
                        Vmm.destroy_domain src dom (fun () ->
                            Simkit.Trace.end_span trace span;
                            k (Ok new_dom)))))))
  end

let evacuate ?config ~src ~dst ~kernels ~dirty_bytes_per_s k =
  let rec go = function
    | [] -> k (Ok ())
    | kernel :: rest ->
      migrate ?config ~src ~dst ~kernel ~dirty_bytes_per_s (function
        | Ok _ -> go rest
        | Error e -> k (Error e))
  in
  go kernels
