(** Pre-copy live migration (Clark et al., NSDI 2005) as an executable
    alternative to the warm-VM reboot.

    Section 6 of the paper compares the warm-VM reboot against
    migrating all VMs to a spare host before rejuvenating the VMM. This
    module implements the mechanism the paper only estimates: iterative
    pre-copy rounds over a migration link while the VM keeps running,
    then a short stop-and-copy of the residual dirty pages.

    Calibrated to the figures the paper cites from Clark et al.: one
    busy ~1 GiB VM migrates in roughly 70–90 s with sub-second downtime,
    so evacuating eleven VMs takes on the order of 15 minutes — far
    longer than the 42 s warm-VM reboot, which is the paper's argument,
    while needing a permanently reserved destination host. *)

type config = {
  link_bytes_per_s : float;
      (** Effective migration throughput (daemon + TCP overheads on
          GbE): 40 MiB/s default. *)
  round_overhead_s : float;  (** Control overhead per pre-copy round. *)
  stop_threshold_bytes : int;
      (** Residual dirty size at which the VM is stopped and the rest
          copied. *)
  max_rounds : int;  (** Pre-copy gives up iterating after this many. *)
  activation_s : float;  (** Activating the domain on the destination. *)
}

val default_config : config

val dirty_rate_of_workload : Scenario.workload -> float
(** Bytes dirtied per second while running: ssh is nearly idle, JBoss
    moderate, a loaded web server substantial. *)

val dirty_rate_of_domain :
  workload:Scenario.workload -> Xenvmm.Domain.t -> now:float -> float
(** The static workload rate, modulated by the domain's memory-dynamics
    tracker (refreshed to [now]) when one is attached — i.e. exactly
    {!dirty_rate_of_workload} while memdyn is off. *)

(** {1 Analytic plan} *)

type plan = {
  rounds : (int * float) list;
      (** Pre-copy rounds as (bytes sent, duration), in order. *)
  precopy_s : float;  (** Total time the VM keeps running while copying. *)
  stop_copy_bytes : int;  (** Residual copied during the blackout. *)
  downtime_s : float;  (** Stop-and-copy + activation blackout. *)
  total_s : float;  (** Whole migration, start to activation. *)
}

val plan :
  ?config:config -> mem_bytes:int -> dirty_bytes_per_s:float -> unit -> plan
(** Closed-form pre-copy iteration. Raises [Invalid_argument] when the
    dirty rate reaches the link rate (pre-copy would diverge; real
    implementations fall back to stop-and-copy — model that by calling
    with [max_rounds = 0]). *)

(** {1 Event-driven migration} *)

val migrate :
  ?config:config ->
  src:Xenvmm.Vmm.t ->
  dst:Xenvmm.Vmm.t ->
  kernel:Guest.Kernel.t ->
  dirty_bytes_per_s:float ->
  ((Xenvmm.Domain.t, Xenvmm.Vmm.error) result -> unit) ->
  unit
(** Live-migrate the kernel's domain from [src] to [dst] (same engine,
    shared storage). The destination domain is built up front (memory
    is reserved there for the whole migration); services stay reachable
    through the pre-copy rounds and blank out only for the
    stop-and-copy. On success the kernel is re-bound to the new domain
    and the old domain is destroyed. *)

val evacuate :
  ?config:config ->
  src:Xenvmm.Vmm.t ->
  dst:Xenvmm.Vmm.t ->
  kernels:Guest.Kernel.t list ->
  dirty_bytes_per_s:float ->
  ((unit, Xenvmm.Vmm.error) result -> unit) ->
  unit
(** Migrate every VM off [src], one at a time (migrations share the
    link, so serial transfer is what the daemon does anyway). *)
