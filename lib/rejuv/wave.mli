(** Rolling-rejuvenation wave planning for a fleet.

    A fleet rejuvenates in {e waves}: batches of hosts taken down
    together while the rest keep serving. The plan partitions the hosts
    into waves no wider than the capacity slack above the SLO floor, so
    that even with a full wave dark the fleet can still meet its target
    — the static half of the guarantee; {!Fleet} re-checks health
    dynamically before admitting each host. *)

(** What a wave does to each of its hosts. *)
type strategy =
  | Reboot of Strategy.t
      (** rejuvenate in place with one of the paper's three reboots *)
  | Migrate
      (** evacuate the guests to a spare host, warm-reboot the VMM
          underneath them, migrate them back (Clark-style pre-copy) *)

val all_strategies : strategy list

val strategy_enum : strategy Simkit.Enum.t
(** ["warm"], ["saved"], ["cold"], ["migrate"] (alias
    ["migrate-then-reboot"]). *)

val strategy_id : strategy -> string
val strategy_of_string : string -> (strategy, [> `Msg of string ]) result
val pp_strategy : Format.formatter -> strategy -> unit

type plan = {
  width : int;  (** effective wave width, after clamping to the slack *)
  slo_floor : int;
      (** minimum healthy hosts the SLO requires: [ceil (slo * hosts)] *)
  waves : int list list;
      (** host indices, partitioned into consecutive waves *)
}

val plan :
  hosts:int -> width:int -> slo:float -> (plan, [> `Msg of string ]) result
(** Partition hosts [0 .. hosts-1] into waves of at most
    [min width (hosts - slo_floor)] hosts. Errors when [hosts] or
    [width] is non-positive, or the SLO leaves no slack (every host is
    needed to meet it, so none may ever go down). *)

val plan_exn : hosts:int -> width:int -> slo:float -> plan
(** @raise Invalid_argument where {!plan} errors. *)
