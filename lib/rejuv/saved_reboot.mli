(** The saved-VM reboot baseline: stock Xen suspend/resume.

    Every domain's whole memory image is written to the (single,
    contended) disk before the reboot and read back afterwards, so both
    phases scale with total guest memory — the behaviour Figures 4 and 5
    show growing into hundreds of seconds. The reboot in the middle is a
    normal hardware reset. Services are not restarted (the images
    preserve them), but they are unreachable from the moment their VM
    starts saving.

    Fault handling per the {!Recovery.policy}: a failed save leaves the
    domain resumed in place and is retried; a failed restore leaves the
    on-disk image intact and is retried; a domain given up on is
    rebuilt from scratch after the other restores (memory state lost). *)

val execute :
  ?policy:Recovery.policy -> Scenario.t -> (Recovery.outcome -> unit) -> unit
(** [policy] defaults to {!Recovery.default}. *)
