type policy = {
  max_retries : int;
  fallback : bool;
  abandon_failed_domains : bool;
}

let default = { max_retries = 1; fallback = true; abandon_failed_domains = true }
let fail_fast = { max_retries = 0; fallback = false; abandon_failed_domains = false }

type outcome = {
  requested : Strategy.t;
  completed : Strategy.t;
  faults : (string * Simkit.Fault.t) list;
  retries : int;
  abandoned : string list;
  fatal : Simkit.Fault.t option;
}

let clean strategy =
  {
    requested = strategy;
    completed = strategy;
    faults = [];
    retries = 0;
    abandoned = [];
    fatal = None;
  }

let recovered o = o.fatal = None

(* --- mutable run context threaded through a strategy ------------------- *)

type run = {
  run_policy : policy;
  requested_strategy : Strategy.t;
  mutable run_completed : Strategy.t;
  mutable run_faults : (string * Simkit.Fault.t) list; (* newest first *)
  mutable run_retries : int;
  mutable run_abandoned : string list; (* oldest first *)
  mutable run_fatal : Simkit.Fault.t option;
}

let start ~policy strategy =
  {
    run_policy = policy;
    requested_strategy = strategy;
    run_completed = strategy;
    run_faults = [];
    run_retries = 0;
    run_abandoned = [];
    run_fatal = None;
  }

let note run ~step fault = run.run_faults <- (step, fault) :: run.run_faults

let abandon run name =
  if not (List.mem name run.run_abandoned) then
    run.run_abandoned <- run.run_abandoned @ [ name ]

let set_fatal run fault =
  if run.run_fatal = None then run.run_fatal <- Some fault

let fell_back run strategy = run.run_completed <- strategy

let finish run =
  {
    requested = run.requested_strategy;
    completed = run.run_completed;
    faults = List.rev run.run_faults;
    retries = run.run_retries;
    abandoned = run.run_abandoned;
    fatal = run.run_fatal;
  }

let with_retries run ~step attempt k =
  let rec go remaining =
    attempt (function
      | Ok () -> k `Ok
      | Error f ->
        note run ~step f;
        if remaining > 0 then begin
          run.run_retries <- run.run_retries + 1;
          go (remaining - 1)
        end
        else k (`Gave_up f))
  in
  go run.run_policy.max_retries

let pp ppf o =
  Format.fprintf ppf "%s" (Strategy.id o.requested);
  if o.completed <> o.requested then
    Format.fprintf ppf " (fell back to %s)" (Strategy.id o.completed);
  Format.fprintf ppf ": %d fault(s), %d retr%s, %d abandoned"
    (List.length o.faults) o.retries
    (if o.retries = 1 then "y" else "ies")
    (List.length o.abandoned);
  match o.fatal with
  | None -> ()
  | Some f -> Format.fprintf ppf ", FATAL: %a" Simkit.Fault.pp f
