let version = "1.0.0"

let rejuvenate ?policy scenario ~strategy =
  match strategy with
  | Strategy.Warm -> Warm_reboot.execute ?policy scenario
  | Strategy.Saved -> Saved_reboot.execute ?policy scenario
  | Strategy.Cold -> Cold_reboot.execute ?policy scenario

let start_and_run scenario =
  let engine = Scenario.engine scenario in
  let started = ref false in
  Scenario.start scenario (fun () -> started := true);
  (* Step, don't drain: perpetual processes (aging injectors, probers)
     keep the queue non-empty forever. *)
  while (not !started) && Simkit.Engine.step engine do () done;
  if not !started then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Roothammer.start_and_run")

let rejuvenate_measured ?policy scenario ~strategy =
  let engine = Scenario.engine scenario in
  let t0 = Simkit.Engine.now engine in
  let result = ref None in
  rejuvenate ?policy scenario ~strategy (fun o -> result := Some o);
  (* Step rather than drain: perpetual processes (probers, workload
     generators) keep the queue non-empty forever. *)
  while !result = None && Simkit.Engine.step engine do () done;
  match !result with
  | None ->
    Simkit.Fault.fail (Simkit.Fault.Stalled "Roothammer.rejuvenate_measured")
  | Some outcome -> (Simkit.Engine.now engine -. t0, outcome)

let rejuvenate_blocking ?policy scenario ~strategy =
  let duration, outcome = rejuvenate_measured ?policy scenario ~strategy in
  (match outcome.Recovery.fatal with
  | Some f -> Simkit.Fault.fail f
  | None -> ());
  duration

let settle scenario ~seconds =
  let engine = Scenario.engine scenario in
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. seconds) engine
