(** Empirical cluster rejuvenation — the paper's stated future work
    ("empirically evaluate the reduction of performance degradation by
    using the warm-VM reboot in a cluster environment"), implemented.

    [m] complete simulated hosts — each a full {!Scenario} with its own
    VMM and VMs — run behind a round-robin dispatcher in one simulation.
    An open-loop Poisson client stream offers load; requests landing on
    a host whose VMs are down (it is rejuvenating) are lost. Rolling the
    rejuvenation across the hosts yields the measured counterpart of the
    Figure 9 model: lost requests per strategy, and the cluster-capacity
    timeline.

    By default the dispatcher is health-aware: it round-robins over the
    {e healthy} hosts, so a rejuvenating host only drops the requests
    already in flight. Set [Config.blind_dispatch] to recover the
    original health-oblivious balancer (the paper's lost-request
    model). *)

module Config : sig
  type t = {
    hosts : int;  (** default 3 *)
    host : Scenario.Config.t;
        (** per-host template; [name_prefix] is extended and [engine]
            overwritten with the shared cluster engine (seeded from
            [host.seed] unless [create ?engine] supplies one) *)
    blind_dispatch : bool;
        (** dispatch round-robin ignoring host health; default [false] *)
  }

  val default : t
  (** 3 hosts × 2 [Ssh] VMs, health-aware dispatch. *)
end

type t

val create : ?engine:Simkit.Engine.t -> Config.t -> t
(** Pass [engine] to place the whole cluster inside an existing
    simulation (e.g. a fleet with hosts outside this cluster). *)

val engine : t -> Simkit.Engine.t
val nodes : t -> Scenario.t list
val host_count : t -> int

val host_healthy : t -> int -> bool
(** Every VM of host [i] answers. *)

val healthy_hosts : t -> int

val start : t -> unit
(** Boot every host (driving the engine until all are up). *)

val offer_load : t -> rate_per_s:float -> Netsim.Poisson.t
(** Start an open-loop client stream, dispatched round-robin across the
    hosts; a request fails iff its host is not healthy. *)

val offer_flows : t -> rate_per_s:float -> Netsim.Fluid.Open.t
(** Fluid counterpart of {!offer_load}: a flow split instead of
    per-request routing. With [blind_dispatch] the served fraction is
    healthy hosts / total hosts (the blind balancer keeps spraying a
    rejuvenating host's share); health-aware dispatch steers flow
    shares away and loses load only while {e no} host is healthy.
    O(epochs) events and no RNG, whatever the rate. *)

val watch_capacity : t -> interval_s:float -> Simkit.Sampler.t
(** Sample the number of healthy hosts over time. *)

type rolling_result = {
  strategy : Strategy.t;
  total_elapsed_s : float;  (** first reboot start to last recovery *)
  per_host_outage_s : float list;  (** healthy-to-healthy gap per host *)
  offered : int;
  lost : int;
  loss_ratio : float;
}

val rolling_rejuvenation :
  t ->
  strategy:Strategy.t ->
  ?gap_s:float ->
  ?load_rate_per_s:float ->
  unit ->
  rolling_result
(** Reboot each host in turn ([gap_s] idle time between hosts, default
    20 s) under load (default 100 req/s), driving the engine to
    completion. The cluster as a whole never goes dark — only the host
    being rejuvenated drops requests.

    The host template's [traffic] mode picks the load model:
    [Per_request] is the historical pure-Poisson stream,
    event-for-event; [Fluid] replaces it with one {!offer_flows}
    stream; [Hybrid] keeps a tracer-sized Poisson cohort
    ([tracers/clients] of the rate) per-request and aggregates the
    rest, summing both into [offered]/[lost]. *)
