module Config = struct
  type t = {
    hosts : int;
    host : Scenario.Config.t;
    blind_dispatch : bool;
  }

  let default = (* simlint: allow D011 immutable template; the host config's engine/plan slots are None *)
    {
      hosts = 3;
      host = Scenario.Config.(default |> with_vms 2);
      blind_dispatch = false;
    }
end

type t = {
  eng : Simkit.Engine.t;
  members : Scenario.t array;
  rng : Simkit.Rng.t;
  blind_dispatch : bool;
  traffic : Netsim.Fluid.config;
  mutable next_host : int;
}

let create ?engine (cfg : Config.t) =
  if cfg.Config.hosts <= 0 then invalid_arg "Cluster_sim.create: hosts <= 0";
  let template = cfg.Config.host in
  let eng =
    match engine with
    | Some e -> e
    | None -> Simkit.Engine.create ~seed:template.Scenario.Config.seed ()
  in
  let members =
    Array.init cfg.Config.hosts (fun i ->
        Scenario.create
          {
            template with
            Scenario.Config.engine = Some eng;
            name_prefix =
              Printf.sprintf "%sh%d-" template.Scenario.Config.name_prefix
                (i + 1);
          })
  in
  {
    eng;
    members;
    rng = Simkit.Rng.split (Simkit.Engine.rng eng);
    blind_dispatch = cfg.Config.blind_dispatch;
    traffic = template.Scenario.Config.traffic;
    next_host = 0;
  }

let engine t = t.eng
let nodes t = Array.to_list t.members
let host_count t = Array.length t.members

let host_healthy t i =
  let node = t.members.(i) in
  Scenario.vms node <> []
  && List.for_all Scenario.vm_is_up (Scenario.vms node)

let healthy_hosts t =
  let n = ref 0 in
  for i = 0 to host_count t - 1 do
    if host_healthy t i then incr n
  done;
  !n

let start t =
  let up = ref 0 in
  Array.iter
    (fun node -> Scenario.start node (fun () -> incr up))
    t.members;
  while !up < host_count t && Simkit.Engine.step t.eng do () done;
  if !up < host_count t then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Cluster_sim.start")

(* Round-robin over the healthy hosts: starting from the cursor, take
   the first healthy one. Only when every host is down does the request
   land on the (dead) cursor host and fail. [blind_dispatch] restores
   the original health-oblivious balancer, which sprays requests at
   rejuvenating hosts — the paper's lost-request model (Figure 9). *)
let dispatch t =
  let n = host_count t in
  let blind = t.next_host in
  t.next_host <- (blind + 1) mod n;
  if t.blind_dispatch then blind
  else
    let rec find k =
      if k >= n then blind
      else
        let i = (blind + k) mod n in
        if host_healthy t i then begin
          t.next_host <- (i + 1) mod n;
          i
        end
        else find (k + 1)
    in
    find 0

let offer_load t ~rate_per_s =
  let request k = k (host_healthy t (dispatch t)) in
  let gen =
    Netsim.Poisson.create t.eng ~name:"cluster-load" ~rate_per_s ~rng:t.rng
      ~request ()
  in
  Netsim.Poisson.start gen;
  gen

(* Flow split instead of per-request routing: the blind balancer sprays
   1/hosts of the stream at every host, so a rejuvenating host loses
   exactly its share — served fraction healthy/total. The health-aware
   dispatcher steers whole flow shares away from the down host and only
   loses load when no host is healthy at all. *)
let offer_flows t ~rate_per_s =
  let served_fraction () =
    let h = healthy_hosts t in
    if t.blind_dispatch then float_of_int h /. float_of_int (host_count t)
    else if h > 0 then 1.0
    else 0.0
  in
  let gen =
    Netsim.Fluid.Open.create t.eng ~rate_per_s
      ~epoch_s:t.traffic.Netsim.Fluid.epoch_s ~served_fraction ()
  in
  Netsim.Fluid.Open.start gen;
  gen

let watch_capacity t ~interval_s =
  Simkit.Sampler.start t.eng ~name:"healthy-hosts" ~interval_s
    ~gauge:(fun () -> float_of_int (healthy_hosts t))
    ()

type rolling_result = {
  strategy : Strategy.t;
  total_elapsed_s : float;
  per_host_outage_s : float list;
  offered : int;
  lost : int;
  loss_ratio : float;
}

let rolling_rejuvenation t ~strategy ?(gap_s = 20.0) ?(load_rate_per_s = 100.0)
    () =
  (* Traffic-mode split of the offered stream: Per_request keeps the
     historical pure-Poisson path event-for-event ([1.0 *. rate] is
     exact); Fluid is all aggregate; Hybrid keeps a tracer-sized
     Poisson cohort per-request and aggregates the rest. *)
  let per_request_fraction =
    match t.traffic.Netsim.Fluid.mode with
    | Netsim.Fluid.Per_request -> 1.0
    | Netsim.Fluid.Fluid -> 0.0
    | Netsim.Fluid.Hybrid ->
      float_of_int t.traffic.Netsim.Fluid.tracers
      /. float_of_int t.traffic.Netsim.Fluid.clients
  in
  let load =
    if per_request_fraction > 0.0 then
      Some (offer_load t ~rate_per_s:(load_rate_per_s *. per_request_fraction))
    else None
  in
  let flows =
    if per_request_fraction < 1.0 then
      Some
        (offer_flows t
           ~rate_per_s:(load_rate_per_s *. (1.0 -. per_request_fraction)))
    else None
  in
  let outages = Array.make (host_count t) 0.0 in
  let t0 = Simkit.Engine.now t.eng in
  let finished = ref false in
  let rec go i =
    if i >= host_count t then finished := true
    else begin
      let node = t.members.(i) in
      let down_at = Simkit.Engine.now t.eng in
      Roothammer.rejuvenate node ~strategy (fun outcome ->
          (* A fatal per-host outcome must not wedge the rolling wave:
             record the host as lost (its probers keep reporting it
             down) and move on to the next one. *)
          (match outcome.Recovery.fatal with
          | Some f ->
            Simkit.Trace.instant (Scenario.trace node)
              (Printf.sprintf "host %d not recovered: %s" (i + 1)
                 (Simkit.Fault.to_string f))
          | None -> ());
          outages.(i) <- Simkit.Engine.now t.eng -. down_at;
          Simkit.Process.delay t.eng gap_s (fun () -> go (i + 1)))
    end
  in
  go 0;
  while (not !finished) && Simkit.Engine.step t.eng do () done;
  if not !finished then
    Simkit.Fault.fail (Simkit.Fault.Stalled "Cluster_sim.rolling_rejuvenation");
  (* Let stragglers (probes, in-flight requests) settle briefly. *)
  Simkit.Engine.run ~until:(Simkit.Engine.now t.eng +. 5.0) t.eng;
  Option.iter Netsim.Poisson.stop load;
  Option.iter Netsim.Fluid.Open.stop flows;
  let offered =
    Option.fold ~none:0 ~some:Netsim.Poisson.offered load
    + Option.fold ~none:0 ~some:Netsim.Fluid.Open.offered flows
  in
  let lost =
    Option.fold ~none:0 ~some:Netsim.Poisson.lost load
    + Option.fold ~none:0 ~some:Netsim.Fluid.Open.lost flows
  in
  {
    strategy;
    total_elapsed_s = Simkit.Engine.now t.eng -. t0;
    per_host_outage_s = Array.to_list outages;
    offered;
    lost;
    loss_ratio =
      (if offered = 0 then 0.0
       else float_of_int lost /. float_of_int offered);
  }
