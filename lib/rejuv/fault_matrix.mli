(** The fault-injection campaign: strategy × injection-site grid.

    For every (strategy, site) cell, boot a small consolidation testbed
    (two ordinary VMs plus one driver domain), measure a clean
    rejuvenation as the baseline, then re-run it with the site armed to
    fire on its first call and record what the recovery machinery did:
    whether the reboot still completed, which strategy finished it,
    how many retries it took, how many domains lost their memory state,
    and how much extra downtime the fault cost.

    Deterministic: both runs of a cell derive everything from [seed],
    so the same seed always produces byte-identical cells. *)

type cell = {
  fm_strategy : Strategy.t;  (** The strategy the campaign requested. *)
  fm_site : string;  (** The armed injection site. *)
  injected : int;  (** Times the site actually fired (0 = never hit). *)
  recovered : bool;  (** The reboot completed despite the fault. *)
  completed : Strategy.t;
      (** The strategy that finished (differs after a fallback). *)
  retries : int;  (** Retry attempts spent recovering. *)
  domains_lost : int;
      (** Domains abandoned — memory state lost, rebuilt fresh. *)
  baseline_downtime_s : float;  (** Clean-run rejuvenation duration. *)
  downtime_s : float;  (** Faulted-run rejuvenation duration. *)
  extra_downtime_s : float;  (** [downtime_s -. baseline_downtime_s]. *)
}

val grid : (Strategy.t * string) list
(** The full campaign: every strategy crossed with every
    {!Simkit.Fault.injection_sites} site, in stable order. *)

val smoke_grid : (Strategy.t * string) list
(** A one-cell grid (warm × ["xend.resume"]) for CI smoke runs. *)

val run_cell : ?seed:int -> strategy:Strategy.t -> site:string -> unit -> cell
(** Run one cell (baseline + faulted run). Raises [Simkit.Fault.Error]
    [(Invariant _)] on an unknown site. *)

val run :
  ?seed:int -> ?cells:(Strategy.t * string) list -> unit -> cell list
(** [run ()] executes [grid] (or [cells]) cell by cell. *)
