type strategy = Reboot of Strategy.t | Migrate

let all_strategies =
  [ Reboot Strategy.Warm; Reboot Strategy.Saved; Reboot Strategy.Cold;
    Migrate ]

let strategy_enum =
  Simkit.Enum.make ~what:"wave strategy"
    ~aliases:[ ("migrate-then-reboot", Migrate) ]
    [
      ("warm", Reboot Strategy.Warm);
      ("saved", Reboot Strategy.Saved);
      ("cold", Reboot Strategy.Cold);
      ("migrate", Migrate);
    ]

let strategy_id = Simkit.Enum.name strategy_enum
let strategy_of_string s = Simkit.Enum.of_string strategy_enum s
let pp_strategy = Simkit.Enum.pp strategy_enum

type plan = { width : int; slo_floor : int; waves : int list list }

let plan ~hosts ~width ~slo =
  if hosts <= 0 then Error (`Msg "Wave.plan: hosts <= 0")
  else if width <= 0 then Error (`Msg "Wave.plan: width <= 0")
  else
    let slo_floor = int_of_float (Float.ceil (slo *. float_of_int hosts)) in
    let slack = hosts - slo_floor in
    if slack <= 0 then
      Error
        (`Msg
           (Printf.sprintf
              "Wave.plan: SLO %g needs %d/%d hosts healthy — no slack for a \
               wave"
              slo slo_floor hosts))
    else
      let width = min width slack in
      let rec chunk i =
        if i >= hosts then []
        else
          let w = min width (hosts - i) in
          List.init w (fun j -> i + j) :: chunk (i + w)
      in
      Ok { width; slo_floor; waves = chunk 0 }

let plan_exn ~hosts ~width ~slo =
  match plan ~hosts ~width ~slo with
  | Ok p -> p
  | Error (`Msg m) -> invalid_arg m
