(** The cold-VM reboot baseline: a normal reboot of the whole machine.

    Every guest OS is shut down in parallel (contending for the CPU
    complex), dom0 and the VMM follow, the hardware resets (BIOS POST),
    the VMM boots scrubbing all memory, dom0 boots, fresh domains are
    built and every guest OS boots and restarts its services. Page
    caches come back empty — the post-reboot degradation of Figures 7
    and 8.

    Fault handling per the {!Recovery.policy}: a provisioning failure
    after the reset is retried, then the VM is lost outright. *)

val execute :
  ?policy:Recovery.policy -> Scenario.t -> (Recovery.outcome -> unit) -> unit
(** [policy] defaults to {!Recovery.default}. *)
