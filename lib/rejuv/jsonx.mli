(** Minimal hand-rolled JSON emitter (no external dependencies).

    Just enough to serialize experiment results: values are built as a
    tree and printed compactly. Floats that are not finite are emitted
    as [null] (JSON has no NaN/infinity). [Raw] splices a string that
    is already JSON — e.g. a pre-rendered Chrome trace — verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string  (** trusted, already-serialized JSON *)

val to_string : t -> string

val escape : string -> string
(** The quoted, escaped JSON form of a string (including the quotes). *)
