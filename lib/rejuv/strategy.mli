(** The three VMM rejuvenation strategies the paper compares. *)

type t =
  | Warm  (** warm-VM reboot: on-memory suspend/resume + quick reload *)
  | Saved  (** saved-VM reboot: stock Xen suspend/resume through disk *)
  | Cold  (** cold-VM reboot: guest shutdown + hardware reset + boot *)

val all : t list

val name : t -> string
(** Long display name, e.g. ["warm-VM reboot"]. *)

val id : t -> string
(** Short machine name — ["warm"], ["saved"] or ["cold"] — stable for
    CSV/JSON output and cache keys; accepted back by {!of_string}. *)

val enum : t Simkit.Enum.t
(** The {!Simkit.Enum} behind {!id} and the parsers: canonical names
    ["warm"]/["saved"]/["cold"] plus the long spellings as aliases. *)

val of_string : string -> t option

val of_string_result : string -> (t, [> `Msg of string ]) result
(** [of_string] with the uniform [Simkit.Enum] rejection message —
    directly usable as the parser half of a [Cmdliner.Arg.conv]. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on unknown names. *)

val pp : Format.formatter -> t -> unit

val preserves_memory_images : t -> bool
(** Whether guest memory images (and hence page caches and running
    processes) survive the VMM reboot. *)

val requires_hardware_reset : t -> bool
val restarts_services : t -> bool
