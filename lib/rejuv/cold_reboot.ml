module Vmm = Xenvmm.Vmm

let execute ?(policy = Recovery.default) scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let engine = Scenario.engine scenario in
  let tr = Scenario.trace scenario in
  let run = Recovery.start ~policy Strategy.Cold in
  let finish () = k (Recovery.finish run) in
  Simkit.Trace.instant tr "reboot command (cold)";
  (* The cold path rebuilds every VM anyway, so the only faults it can
     see are provisioning failures after the reset: retried per the
     policy, then the VM is lost outright (there is nothing heavier to
     fall back to). *)
  let provision_one v k =
    Recovery.with_retries run ~step:"reprovision"
      (fun k -> Scenario.provision_vm scenario v k)
      (function
        | `Ok -> k ()
        | `Gave_up f ->
          if policy.Recovery.abandon_failed_domains then
            Recovery.abandon run (Scenario.vm_name v)
          else Recovery.set_fatal run f;
          k ())
  in
  Simkit.Process.delay engine cal.Calibration.xend_stop_delay_s (fun () ->
      let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
      (* Orderly shutdown of every guest OS, in parallel. *)
      Simkit.Process.par
        (List.map
           (fun v -> Guest.Kernel.shutdown (Scenario.vm_kernel v))
           (Scenario.vms scenario))
        (fun () ->
          (* The halted domains are then torn down by the toolstack. *)
          Simkit.Process.par
            (List.map
               (fun v k -> Vmm.destroy_domain vmm (Scenario.vm_domain v) k)
               (Scenario.vms scenario))
            (fun () ->
              Simkit.Trace.end_span tr pre;
              let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
              Vmm.shutdown_dom0 vmm (fun () ->
                  Vmm.shutdown_vmm vmm (fun () ->
                      Vmm.hardware_reset vmm (fun () ->
                          Vmm.boot_dom0 vmm (fun () ->
                              Simkit.Trace.end_span tr reboot;
                              let post =
                                Simkit.Trace.begin_span tr "post-reboot tasks"
                              in
                              Simkit.Process.par
                                (List.map provision_one
                                   (Scenario.vms scenario))
                                (fun () ->
                                  Simkit.Trace.end_span tr post;
                                  finish ()))))))))
