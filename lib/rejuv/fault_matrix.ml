module Fault = Simkit.Fault

type cell = {
  fm_strategy : Strategy.t;
  fm_site : string;
  injected : int;
  recovered : bool;
  completed : Strategy.t;
  retries : int;
  domains_lost : int;
  baseline_downtime_s : float;
  downtime_s : float;
  extra_downtime_s : float;
}

let grid =
  List.concat_map
    (fun strategy ->
      List.map (fun (site, _) -> (strategy, site)) Fault.injection_sites)
    Strategy.all

let smoke_grid = [ (Strategy.Warm, "xend.resume") ]

(* One rejuvenation of a small consolidated testbed: two ordinary VMs
   (so resume/restore paths carry real work) plus one driver domain (so
   the "driver.reprovision" site is reachable). [arm] runs after the
   boot settles and before the reboot, so an [On_nth 1] trigger hits
   the rejuvenation itself, never the initial provisioning. Returns
   the measured downtime, the recovery outcome and how many times the
   armed site actually fired. *)
let measure ~seed ~strategy ~arm =
  let scenario =
    Scenario.create
      { Scenario.Config.default with seed; vm_count = 2; driver_vm_count = 1 }
  in
  Roothammer.start_and_run scenario;
  let plan = Scenario.fault_plan scenario in
  let before = Fault.Plan.total_fired plan in
  arm plan;
  let duration, outcome = Roothammer.rejuvenate_measured scenario ~strategy in
  (* Settle briefly, then tear the warm artifact down so the short run
     cannot leak a degraded NIC. *)
  Roothammer.settle scenario ~seconds:5.0;
  Scenario.cancel_network_artifact scenario;
  (duration, outcome, Fault.Plan.total_fired plan - before)

let run_cell ?(seed = 42) ~strategy ~site () =
  if not (Fault.is_injection_site site) then
    Fault.fail (Fault.Invariant ("Fault_matrix: unknown site " ^ site));
  let baseline_downtime_s, _, _ =
    measure ~seed ~strategy ~arm:(fun _ -> ())
  in
  let downtime_s, outcome, injected =
    measure ~seed ~strategy ~arm:(fun plan ->
        Fault.Plan.arm plan ~site (Fault.Plan.On_nth 1))
  in
  {
    fm_strategy = strategy;
    fm_site = site;
    injected;
    recovered = Recovery.recovered outcome;
    completed = outcome.Recovery.completed;
    retries = outcome.Recovery.retries;
    domains_lost = List.length outcome.Recovery.abandoned;
    baseline_downtime_s;
    downtime_s;
    extra_downtime_s = downtime_s -. baseline_downtime_s;
  }

let run ?(seed = 42) ?(cells = grid) () =
  List.map (fun (strategy, site) -> run_cell ~seed ~strategy ~site ()) cells
