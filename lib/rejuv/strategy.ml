type t = Warm | Saved | Cold

let all = [ Warm; Saved; Cold ]

let name = function
  | Warm -> "warm-VM reboot"
  | Saved -> "saved-VM reboot"
  | Cold -> "cold-VM reboot"

let enum =
  Simkit.Enum.make ~what:"strategy"
    ~aliases:
      [
        ("warm-vm", Warm); ("warm-vm reboot", Warm);
        ("saved-vm", Saved); ("saved-vm reboot", Saved);
        ("cold-vm", Cold); ("cold-vm reboot", Cold);
      ]
    [ ("warm", Warm); ("saved", Saved); ("cold", Cold) ]

let id = Simkit.Enum.name enum
let of_string = Simkit.Enum.of_string_opt enum
let of_string_result s = Simkit.Enum.of_string enum s
let of_string_exn = Simkit.Enum.of_string_exn enum

let pp ppf t = Format.pp_print_string ppf (name t)

let preserves_memory_images = function Warm | Saved -> true | Cold -> false

let requires_hardware_reset = function Warm -> false | Saved | Cold -> true

let restarts_services = function Cold -> true | Warm | Saved -> false
