type t = Warm | Saved | Cold

let all = [ Warm; Saved; Cold ]

let name = function
  | Warm -> "warm-VM reboot"
  | Saved -> "saved-VM reboot"
  | Cold -> "cold-VM reboot"

let id = function Warm -> "warm" | Saved -> "saved" | Cold -> "cold"

let of_string s =
  match String.lowercase_ascii s with
  | "warm" | "warm-vm" | "warm-vm reboot" -> Some Warm
  | "saved" | "saved-vm" | "saved-vm reboot" -> Some Saved
  | "cold" | "cold-vm" | "cold-vm reboot" -> Some Cold
  | _ -> None

let of_string_result s =
  match of_string s with
  | Some t -> Ok t
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown strategy %S; expected warm, saved or cold" s))

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf
         "Strategy.of_string_exn: unknown strategy %S (expected warm, saved \
          or cold)"
         s)

let pp ppf t = Format.pp_print_string ppf (name t)

let preserves_memory_images = function Warm | Saved -> true | Cold -> false

let requires_hardware_reset = function Warm -> false | Saved | Cold -> true

let restarts_services = function Cold -> true | Warm | Saved -> false
