(** The VMM's internal heap.

    Xen's hypervisor heap is only 16 MiB by default regardless of
    installed memory, which is why heap leaks are the canonical VMM
    aging symptom: the paper cites real Xen bugs where heap was lost on
    every VM reboot (changeset 9392) and on error paths (changeset
    11752). This module models tagged allocations, permanent leaks, and
    exhaustion callbacks. A VMM reboot (rejuvenation) recreates the
    heap, clearing all leaks. *)

type t

type allocation

val default_capacity_bytes : int
(** 16 MiB, as in Xen 3.0. *)

val create : ?capacity_bytes:int -> unit -> t

val capacity_bytes : t -> int
val used_bytes : t -> int
val free_bytes : t -> int
val leaked_bytes : t -> int

val alloc : t -> tag:string -> bytes:int -> (allocation, [ `Out_of_memory ]) result
(** Allocate tagged heap memory; fails without side effects when the
    request exceeds free space. *)

val alloc_exn : t -> tag:string -> bytes:int -> allocation
(** Like {!alloc} but raises [Simkit.Fault.Error Heap_exhausted] on
    failure — for callers with no result channel (tests). *)

val free : t -> allocation -> unit
(** Release an allocation. Raises [Invalid_argument] on double free. *)

val allocation_bytes : allocation -> int

val leak : t -> bytes:int -> unit
(** Permanently lose heap space (an aging event). Leaking more than the
    remaining free space clamps to it and triggers exhaustion. *)

val usage_by_tag : t -> (string * int) list
(** Live bytes per tag, sorted by tag. *)

val on_exhaustion : t -> (unit -> unit) -> unit
(** Called once each time free space first reaches zero. *)

val leak_events : t -> int
(** Number of {!leak} calls — how many aging events hit this heap. *)

val observe : ?prefix:string -> Obs.Registry.t -> (unit -> t) -> unit
(** Register pull gauges (capacity/used/free/leaked bytes, leak event
    count) under [prefix] (default ["vmm.heap"]). The heap is fetched
    through the getter on every read, so gauges follow a heap rebuilt
    by a reboot or quick reload. *)

val exhausted : t -> bool
