type allocation = {
  tag : string;
  bytes : int;
  mutable live : bool;
}

type t = {
  capacity : int;
  mutable used : int;
  mutable leaked : int;
  mutable leak_events : int;
  mutable by_tag : (string, int) Hashtbl.t;
  mutable exhaustion_callbacks : (unit -> unit) list;
  mutable exhaustion_reported : bool;
}

let default_capacity_bytes = 16 * 1024 * 1024

let create ?(capacity_bytes = default_capacity_bytes) () =
  if capacity_bytes <= 0 then invalid_arg "Vmm_heap.create: capacity <= 0";
  {
    capacity = capacity_bytes;
    used = 0;
    leaked = 0;
    leak_events = 0;
    by_tag = Hashtbl.create 16;
    exhaustion_callbacks = [];
    exhaustion_reported = false;
  }

let capacity_bytes t = t.capacity
let used_bytes t = t.used + t.leaked
let free_bytes t = t.capacity - used_bytes t
let leaked_bytes t = t.leaked
let exhausted t = free_bytes t <= 0

let note_exhaustion t =
  if exhausted t && not t.exhaustion_reported then begin
    t.exhaustion_reported <- true;
    List.iter (fun f -> f ()) (List.rev t.exhaustion_callbacks)
  end;
  if not (exhausted t) then t.exhaustion_reported <- false

let bump_tag t tag delta =
  let current = Option.value (Hashtbl.find_opt t.by_tag tag) ~default:0 in
  let updated = current + delta in
  if updated = 0 then Hashtbl.remove t.by_tag tag
  else Hashtbl.replace t.by_tag tag updated

let alloc t ~tag ~bytes =
  if bytes < 0 then invalid_arg "Vmm_heap.alloc: negative size";
  if bytes > free_bytes t then Error `Out_of_memory
  else begin
    t.used <- t.used + bytes;
    bump_tag t tag bytes;
    note_exhaustion t;
    Ok { tag; bytes; live = true }
  end

let alloc_exn t ~tag ~bytes =
  match alloc t ~tag ~bytes with
  | Ok a -> a
  | Error `Out_of_memory -> Simkit.Fault.fail Simkit.Fault.Heap_exhausted

let free t a =
  if not a.live then invalid_arg "Vmm_heap.free: double free";
  a.live <- false;
  t.used <- t.used - a.bytes;
  bump_tag t a.tag (-a.bytes);
  note_exhaustion t

let allocation_bytes a = a.bytes

let leak t ~bytes =
  if bytes < 0 then invalid_arg "Vmm_heap.leak: negative size";
  let actual = Stdlib.min bytes (free_bytes t) in
  t.leaked <- t.leaked + actual;
  t.leak_events <- t.leak_events + 1;
  note_exhaustion t

let leak_events t = t.leak_events

let usage_by_tag t =
  Hashtbl.fold (fun tag bytes acc -> (tag, bytes) :: acc) t.by_tag []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let on_exhaustion t f =
  t.exhaustion_callbacks <- f :: t.exhaustion_callbacks

(* Takes a getter, not the heap itself: a quick reload rebuilds the
   heap, and gauges registered through the getter keep reading the
   current instance. *)
let observe ?(prefix = "vmm.heap") reg get =
  let g field read = Obs.Registry.gauge reg (prefix ^ "." ^ field) read in
  g "capacity_bytes" (fun () -> float_of_int (capacity_bytes (get ())));
  g "used_bytes" (fun () -> float_of_int (used_bytes (get ())));
  g "free_bytes" (fun () -> float_of_int (free_bytes (get ())));
  g "leaked_bytes" (fun () -> float_of_int (leaked_bytes (get ())));
  g "leak_events" (fun () -> float_of_int (get ()).leak_events)
