module Int_map = Map.Make (Int)

type t = {
  (* keyed by first PFN of the run; value = backing machine extent *)
  mutable runs : Hw.Frame.extent Int_map.t;
  mutable page_count : int;
}

let bytes_per_entry = 8

let create () = { runs = Int_map.empty; page_count = 0 }

let overlaps_existing t ~pfn_first ~count =
  (* A run [p, p+c) overlaps if the predecessor extends past p or the
     successor starts before p + c. *)
  let pred_overlaps =
    match Int_map.find_last_opt (fun k -> k <= pfn_first) t.runs with
    | Some (k, ext) -> k + ext.Hw.Frame.count > pfn_first
    | None -> false
  in
  let succ_overlaps =
    match Int_map.find_first_opt (fun k -> k > pfn_first) t.runs with
    | Some (k, _) -> k < pfn_first + count
    | None -> false
  in
  pred_overlaps || succ_overlaps

let add_extent t ~pfn_first ~mfns =
  let count = mfns.Hw.Frame.count in
  if count <= 0 then invalid_arg "P2m.add_extent: empty extent";
  if pfn_first < 0 then invalid_arg "P2m.add_extent: negative PFN";
  if overlaps_existing t ~pfn_first ~count then
    invalid_arg "P2m.add_extent: PFN range already mapped";
  t.runs <- Int_map.add pfn_first mfns t.runs;
  t.page_count <- t.page_count + count

(* Runs covering any part of [pfn_first, pfn_first + count), in
   ascending key order. Runs are disjoint and keyed by first PFN, so
   the candidates are the predecessor run (if it extends into the
   window) plus the in-order walk from [pfn_first] up to the window
   end — O(log n + hits) instead of a fold over every run, which
   matters because this sits on the suspend/resume path of every
   domain. *)
let runs_in_range t ~pfn_first ~count =
  let hi = pfn_first + count in
  let pred =
    match Int_map.find_last_opt (fun k -> k < pfn_first) t.runs with
    | Some (k, ext) when k + ext.Hw.Frame.count > pfn_first -> [ (k, ext) ]
    | Some _ | None -> []
  in
  let inside =
    Int_map.to_seq_from pfn_first t.runs
    |> Seq.take_while (fun (k, _) -> k < hi)
    |> List.of_seq
  in
  pred @ inside

let remove_range t ~pfn_first ~count =
  if count <= 0 then invalid_arg "P2m.remove_range: empty range";
  let covering = runs_in_range t ~pfn_first ~count in
  let covered =
    List.fold_left
      (fun acc (k, ext) ->
        let lo = Stdlib.max k pfn_first in
        let hi = Stdlib.min (k + ext.Hw.Frame.count) (pfn_first + count) in
        acc + (hi - lo))
      0 covering
  in
  if covered <> count then
    invalid_arg "P2m.remove_range: range not entirely mapped";
  let released = ref [] in
  List.iter
    (fun (k, ext) ->
      let ext_count = ext.Hw.Frame.count in
      let lo = Stdlib.max k pfn_first in
      let hi = Stdlib.min (k + ext_count) (pfn_first + count) in
      t.runs <- Int_map.remove k t.runs;
      (* Keep the parts of the run outside the removed window. *)
      if k < lo then
        t.runs <-
          Int_map.add k
            { ext with Hw.Frame.count = lo - k }
            t.runs;
      if hi < k + ext_count then
        t.runs <-
          Int_map.add hi
            {
              Hw.Frame.first = ext.Hw.Frame.first + (hi - k);
              count = k + ext_count - hi;
            }
            t.runs;
      released :=
        { Hw.Frame.first = ext.Hw.Frame.first + (lo - k); count = hi - lo }
        :: !released;
      t.page_count <- t.page_count - (hi - lo))
    covering;
  List.rev !released

let lookup t ~pfn =
  match Int_map.find_last_opt (fun k -> k <= pfn) t.runs with
  | Some (k, ext) when pfn < k + ext.Hw.Frame.count ->
    Some (ext.Hw.Frame.first + (pfn - k))
  | Some _ | None -> None

let pages t = t.page_count

let mapped_bytes t = t.page_count * Simkit.Units.page_bytes

let table_bytes t = t.page_count * bytes_per_entry

let machine_extents t =
  Int_map.fold (fun _ ext acc -> ext :: acc) t.runs [] |> List.rev

let fold t ~init ~f =
  Int_map.fold (fun pfn_first mfns acc -> f acc ~pfn_first ~mfns) t.runs init

let remove_all t =
  let extents = machine_extents t in
  t.runs <- Int_map.empty;
  t.page_count <- 0;
  extents

let check_invariants t =
  (* PFN runs disjoint & sorted comes from the map; re-verify counts and
     that backing machine extents do not overlap each other. *)
  let runs = Int_map.bindings t.runs in
  let rec check_pfns = function
    | (k1, e1) :: ((k2, _) :: _ as rest) ->
      if k1 + e1.Hw.Frame.count > k2 then Error "PFN runs overlap"
      else check_pfns rest
    | _ -> Ok ()
  in
  let total = List.fold_left (fun a (_, e) -> a + e.Hw.Frame.count) 0 runs in
  if total <> t.page_count then Error "page_count mismatch"
  else
    match check_pfns runs with
    | Error _ as e -> e
    | Ok () ->
      let mfn_sorted =
        List.sort
          (fun e1 e2 -> compare e1.Hw.Frame.first e2.Hw.Frame.first)
          (List.map snd runs)
      in
      let rec check_mfns = function
        | e1 :: (e2 :: _ as rest) ->
          if e1.Hw.Frame.first + e1.Hw.Frame.count > e2.Hw.Frame.first then
            Error "machine extents overlap"
          else check_mfns rest
        | _ -> Ok ()
      in
      check_mfns mfn_sorted
