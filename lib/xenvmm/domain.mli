(** Virtual machine (domain) bookkeeping.

    Mirrors Xen's terminology: domain 0 is the privileged VM running the
    toolstack; domain Us are the guests. A domain's identity within the
    VMM is its numeric id; its memory is described by its P2M-mapping
    table; its frozen execution state (when on-memory suspended) lives in
    preserved machine frames.

    The guest OS layer plugs its suspend/resume handlers in via
    {!set_suspend_handler}/{!set_resume_handler} — the VMM invokes them
    exactly where real Xen sends the suspend event to the guest kernel
    and where the resumed kernel re-attaches its devices. *)

type id = int

type kind = Dom0 | DomU

type state =
  | Created  (** built, OS not booted *)
  | Booting
  | Running
  | Suspending
  | Suspended  (** frozen on memory, image preserved *)
  | Saving  (** traditional Xen suspend: writing image to disk *)
  | Saved_to_disk
  | Resuming
  | Shutting_down
  | Halted
  | Crashed

val state_name : state -> string

type exec_state = {
  saved_at : float;
  channels : (Event_channel.port * Event_channel.status) list;
  devices : string list;
  state_bytes : int;  (** 16 KiB in RootHammer *)
  state_frames : Hw.Frame.extent list;
      (** preserved frames holding the saved execution state *)
}

type t

val create :
  id:id -> name:string -> kind:kind -> mem_bytes:int -> t
(** Domains start suspendable; see {!set_suspendable}. *)

val suspendable : t -> bool
(** Driver domains — domain Us that run device drivers — cannot be
    suspended (the paper's Section 7 discussion): a warm-VM reboot must
    shut them down and reboot them like the cold path does. *)

val set_suspendable : t -> bool -> unit

val id : t -> id
val name : t -> string
val kind : t -> kind
val mem_bytes : t -> int
val p2m : t -> P2m.t

val p2m_frames : t -> Hw.Frame.extent list
(** Machine frames holding the P2M-mapping table itself. *)

val set_p2m_frames : t -> Hw.Frame.extent list -> unit

val state : t -> state

val set_state : t -> state -> unit
(** Transitions the lifecycle state and notifies observers. Raises
    [Invalid_argument] on transitions the lifecycle forbids (e.g.
    resuming a domain that was never suspended). *)

val transition_allowed : from:state -> to_:state -> bool

val on_state_change : t -> (state -> unit) -> unit

val exec_state : t -> exec_state option
val set_exec_state : t -> exec_state option -> unit

val devices : t -> string list
val attach_device : t -> string -> unit
val detach_device : t -> string -> unit
val detach_all_devices : t -> string list
(** Detach everything, returning what was attached (saved into the
    execution state by the suspend path). *)

val suspend_port : t -> Event_channel.port option
(** The event-channel port the guest kernel bound for suspend requests;
    the VMM notifies it when it wants the domain to suspend. *)

val set_suspend_port : t -> Event_channel.port option -> unit

val set_suspend_handler : t -> Simkit.Process.task -> unit
(** Guest kernel's suspend handler (device detach etc.). *)

val suspend_handler : t -> Simkit.Process.task

val set_resume_handler : t -> Simkit.Process.task -> unit
(** Guest kernel's resume handler (re-bind channels, re-attach
    devices). *)

val resume_handler : t -> Simkit.Process.task

val mem_tracker : t -> Mem.Pagestate.t option
(** The memory-dynamics tracker the VMM attached when memdyn is
    enabled; [None] whenever memdyn is off (the byte-identity
    guarantee rides on that). Travels with the domain through
    suspend/save/restore. *)

val set_mem_tracker : t -> Mem.Pagestate.t option -> unit

val mem_stream : t -> Mem.Stream.t option
(** The in-flight streamed-restore bookkeeping, present only between a
    demand-paged resume and the arrival of the last cold batch. Guest
    request paths read it for the page-fault latency tax. *)

val set_mem_stream : t -> Mem.Stream.t option -> unit

val is_domu : t -> bool

val pp : Format.formatter -> t -> unit
