(** The virtual machine monitor.

    Owns machine memory, the VMM heap, domains, event channels and (once
    domain 0 is up) xenstored. Provides the timed building blocks that
    the rejuvenation strategies compose:

    - domain construction/destruction,
    - on-memory suspend/resume (RootHammer's mechanism),
    - traditional save/restore through the disk (stock Xen),
    - quick reload (xexec) and hardware reset.

    All timed operations are CPS {!Simkit.Process.task}s driven by the
    host's engine. The [Vmm.t] value itself survives simulated reboots —
    a reboot bumps {!generation}, rebuilds internal state, and either
    preserves or loses domain memory images depending on the path
    taken. *)

type t

type event =
  | Booted of [ `Cold | `Quick_reload ]
  | Shutdown
  | Domain_created of Domain.id
  | Domain_destroyed of Domain.id
  | Hypercall of Hypercall.t
  | Heap_exhausted

type error = Simkit.Fault.t
(** Every VMM operation reports failures as a typed {!Simkit.Fault.t}
    through its result channel. *)

val error_message : error -> string

val set_fault_plan : t -> Simkit.Fault.Plan.t option -> unit
(** Attach (or detach) the scenario's fault-injection plan. Armed
    sites consulted by the VMM: ["vmm.suspend"] (on-memory freeze and
    save-time suspend), ["vmm.reload"] (quick reload), ["xend.resume"]
    (resume and restore). *)

val set_memdyn : t -> Mem.Memdyn.t -> unit
(** Configure memory dynamics for every domain this VMM creates from
    now on. With the default {!Mem.Memdyn.off} nothing changes:
    domains get no tracker, saves size images at full RAM, restores
    are stop-and-copy, and no extra events or RNG draws occur — seeded
    runs stay byte-identical.
    @raise Invalid_argument on an invalid configuration. *)

val memdyn : t -> Mem.Memdyn.t

val last_saved_image : t -> Image.saved option
(** The most recent image {!save_domain_to_disk} wrote, for
    introspection by experiments and benchmarks. *)

val last_restore_lag_s : t -> float
(** How long the most recent streamed restore kept faulting cold pages
    in after the domain resumed ([0] until a streamed restore
    completes). *)

val create :
  ?timing:Timing.t ->
  ?heap_capacity:int ->
  ?dom0_mem_bytes:int ->
  ?scrub_policy:[ `Free_only | `All ] ->
  Hw.Host.t ->
  t
(** A powered-off VMM on the given host. [dom0_mem_bytes] defaults to
    512 MiB (the paper's configuration). [scrub_policy] selects what the
    quick-reload init scrubs: [`Free_only] (RootHammer — preserved
    frames are skipped, giving [reboot_vmm(n)] its negative slope) or
    [`All] (ablation: scrub every frame not strictly reserved... i.e.
    treat the machine as if nothing could be skipped). *)

(** {1 Accessors} *)

val host : t -> Hw.Host.t
val engine : t -> Simkit.Engine.t
val timing : t -> Timing.t
val heap : t -> Vmm_heap.t
val channels : t -> Event_channel.t

(** [grants t] is the grant table for inter-domain page sharing (I/O
    rings). Reset on every VMM boot; a domain with active foreign
    mappings of its pages cannot be frozen — its suspend handler must
    tear its rings down first. *)
val grants : t -> Grant_table.t

(** [scheduler t] is the credit scheduler arbitrating guest CPU work
    (boot, shutdown). Configure per-domain weights/caps with
    {!Scheduler.set_params}; parameters are dropped when the domain is
    destroyed. *)
val scheduler : t -> Scheduler.t
val xenstore : t -> Xenstore.t option
(** [Some] only while dom0 is running. *)

val generation : t -> int
(** Number of times this VMM instance has booted. *)

val is_running : t -> bool
val dom0 : t -> Domain.t option
val domus : t -> Domain.t list
(** Live domain Us (any state except destroyed), in id order. *)

val find_domain : t -> name:string -> Domain.t option
val hypercall_count : t -> string -> int
val on_event : t -> (event -> unit) -> unit

val set_leak_per_domain_destroy : t -> bytes:int -> unit
(** Model the Xen changeset-9392 bug: heap lost on every VM reboot. *)

val set_xenstore_leak_per_txn : t -> bytes:int -> unit
(** Model the changeset-8640 xenstored leak (applies from the next
    dom0 boot). *)

(** {1 Power-on and dom0} *)

val power_on : t -> Simkit.Process.task
(** Full cold power-on: BIOS POST, VMM image load, scrub of all machine
    memory, dom0 construction and boot. Requires the VMM to be down. *)

val shutdown_dom0 : t -> Simkit.Process.task
(** Run dom0's shutdown script (services in domain Us keep running —
    the property the warm-VM reboot exploits). Frees dom0's memory and
    stops xenstored. *)

val boot_dom0 : t -> Simkit.Process.task
(** (Re)build and boot dom0 with a fresh xenstored. *)

(** {1 Domain construction} *)

val create_domain :
  t ->
  name:string ->
  mem_bytes:int ->
  ((Domain.t, error) result -> unit) ->
  unit
(** Build a domain U: allocate machine frames, populate its P2M-mapping
    table (including the table's own frames), charge the VMM heap.
    Timed by [domain_create_s]. *)

val destroy_domain : t -> Domain.t -> Simkit.Process.task
(** Release a domain's frames, P2M table and heap charge. *)

val balloon : t -> Domain.t -> delta_bytes:int -> (unit, error) result
(** Grow (+) or shrink (−) a running domain's memory, updating the
    P2M-mapping table — exercises the paper's claim that the table
    stays correct under ballooning. Instantaneous. *)

(** {1 On-memory suspend/resume (RootHammer)} *)

val suspend_all_on_memory : t -> Simkit.Process.task
(** The VMM sends a suspend event to every running, suspendable domain
    U (guest suspend handlers run), then freezes each image in place:
    per-domain serialized hypercall cost, per-GiB walks overlapped
    across domains. Saves each domain's 16 KiB execution state into
    preserved frames. Driver domains ([suspendable = false]) are
    skipped — they do not survive the reload. *)

val resume_domain_on_memory :
  t -> Domain.t -> ((unit, error) result -> unit) -> unit
(** Unfreeze one suspended domain: re-adopt its P2M-mapped frames,
    restore the execution state, run the guest resume handler. *)

(** {1 Traditional save/restore (stock Xen)} *)

val save_domain_to_disk :
  t -> Domain.t -> ((unit, error) result -> unit) -> unit
(** Guest suspend handler, then write the whole memory image plus
    execution state to the host disk; the domain's machine frames are
    then released (that is why stock Xen's path scales with memory
    size). Fails with [`Disk_full] when the drive cannot hold the
    image — the domain is then resumed in place, services intact. *)

val restore_domain_from_disk :
  t -> name:string -> ((Domain.t, error) result -> unit) -> unit
(** Re-create a saved domain: allocate frames, read the image back from
    disk, restore state, run the guest resume handler. *)

val saved_images : t -> string list
(** Names of domains currently saved on disk. *)

val saved_image_bytes : t -> name:string -> int option
(** On-disk size of the named saved image
    ({!Image.saved_bytes}: resident memory + execution state). *)

(** {1 VMM reboot paths} *)

val xexec_load :
  t -> ?image:Image.t -> ((unit, error) result -> unit) -> unit
(** The xexec hypercall: read the new executable image (VMM + dom0
    kernel + initrd) from storage into machine frames that will be
    preserved across the reload. Normally issued from dom0 before the
    reboot; a previously staged image is replaced. *)

val staged_image : t -> Image.t option
(** The image a quick reload would boot, if one is staged. *)

val shutdown_vmm : t -> Simkit.Process.task
(** Orderly VMM shutdown (after dom0 is down). Suspended domain images
    remain frozen in RAM — only quick reload can preserve them. *)

val quick_reload : t -> ((unit, error) result -> unit) -> unit
(** The xexec reboot path: jump to the staged image without a hardware
    reset (staging a default image on the fly — including its disk
    read — when none was staged). The new instance rebuilds its heap
    (clearing all leaks — this is the rejuvenation), re-reserves the
    staged image, the P2M-mapping tables, every suspended domain's
    frames and execution-state frames, and scrubs only what is
    genuinely free. Does not boot dom0. *)

val hardware_reset : t -> Simkit.Process.task
(** Power-cycle path: all memory content is lost (frozen images are
    destroyed — their domains become [Crashed]), BIOS POST runs, the
    VMM scrubs all memory. Does not boot dom0. *)

(** {1 Introspection for experiments} *)

val preserved_bytes : t -> int
(** Bytes currently pinned by frozen domain images + their metadata. *)

val scrub_free_estimate : t -> float
(** Time the next quick reload will spend scrubbing. *)
