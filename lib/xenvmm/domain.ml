type id = int

type kind = Dom0 | DomU

type state =
  | Created
  | Booting
  | Running
  | Suspending
  | Suspended
  | Saving
  | Saved_to_disk
  | Resuming
  | Shutting_down
  | Halted
  | Crashed

let state_name = function
  | Created -> "created"
  | Booting -> "booting"
  | Running -> "running"
  | Suspending -> "suspending"
  | Suspended -> "suspended"
  | Saving -> "saving"
  | Saved_to_disk -> "saved-to-disk"
  | Resuming -> "resuming"
  | Shutting_down -> "shutting-down"
  | Halted -> "halted"
  | Crashed -> "crashed"

type exec_state = {
  saved_at : float;
  channels : (Event_channel.port * Event_channel.status) list;
  devices : string list;
  state_bytes : int;
  state_frames : Hw.Frame.extent list;
}

type t = {
  dom_id : id;
  dom_name : string;
  dom_kind : kind;
  mutable dom_suspendable : bool;
  dom_mem_bytes : int;
  dom_p2m : P2m.t;
  mutable dom_p2m_frames : Hw.Frame.extent list;
  mutable dom_state : state;
  mutable dom_exec_state : exec_state option;
  mutable dom_devices : string list;
  mutable observers : (state -> unit) list;
  mutable on_suspend : Simkit.Process.task;
  mutable on_resume : Simkit.Process.task;
  mutable dom_suspend_port : Event_channel.port option;
  mutable dom_mem_tracker : Mem.Pagestate.t option;
  mutable dom_mem_stream : Mem.Stream.t option;
}

let create ~id ~name ~kind ~mem_bytes =
  if mem_bytes <= 0 then invalid_arg "Domain.create: mem_bytes <= 0";
  {
    dom_id = id;
    dom_name = name;
    dom_kind = kind;
    dom_suspendable = true;
    dom_mem_bytes = mem_bytes;
    dom_p2m = P2m.create ();
    dom_p2m_frames = [];
    dom_state = Created;
    dom_exec_state = None;
    dom_devices = [];
    observers = [];
    on_suspend = Simkit.Process.now;
    on_resume = Simkit.Process.now;
    dom_suspend_port = None;
    dom_mem_tracker = None;
    dom_mem_stream = None;
  }

let id t = t.dom_id
let name t = t.dom_name
let kind t = t.dom_kind
let suspendable t = t.dom_suspendable
let set_suspendable t v = t.dom_suspendable <- v
let mem_bytes t = t.dom_mem_bytes
let p2m t = t.dom_p2m
let p2m_frames t = t.dom_p2m_frames
let set_p2m_frames t extents = t.dom_p2m_frames <- extents
let state t = t.dom_state

let transition_allowed ~from ~to_ =
  match (from, to_) with
  | _, Crashed -> true
  | Created, (Booting | Resuming) -> true
  | Booting, Running -> true
  | Running, (Suspending | Saving | Shutting_down) -> true
  | Suspending, Suspended -> true
  | Saving, Saved_to_disk -> true
  (* An aborted save (e.g. disk full) resumes the domain in place. *)
  | Saving, Resuming -> true
  | Suspended, Resuming -> true
  | Saved_to_disk, Resuming -> true
  | Resuming, Running -> true
  | Shutting_down, Halted -> true
  | Halted, Booting -> true
  | Crashed, Booting -> true
  | _ -> false

let set_state t to_ =
  if not (transition_allowed ~from:t.dom_state ~to_) then
    invalid_arg
      (Printf.sprintf "Domain %s: illegal transition %s -> %s" t.dom_name
         (state_name t.dom_state) (state_name to_));
  t.dom_state <- to_;
  List.iter (fun f -> f to_) (List.rev t.observers)

let on_state_change t f = t.observers <- f :: t.observers

let exec_state t = t.dom_exec_state
let set_exec_state t e = t.dom_exec_state <- e

let devices t = t.dom_devices

let attach_device t d =
  if not (List.mem d t.dom_devices) then t.dom_devices <- d :: t.dom_devices

let detach_device t d =
  t.dom_devices <- List.filter (fun x -> not (String.equal x d)) t.dom_devices

let detach_all_devices t =
  let had = t.dom_devices in
  t.dom_devices <- [];
  had

let suspend_port t = t.dom_suspend_port
let set_suspend_port t p = t.dom_suspend_port <- p

let set_suspend_handler t task = t.on_suspend <- task
let suspend_handler t = t.on_suspend
let set_resume_handler t task = t.on_resume <- task
let resume_handler t = t.on_resume

let mem_tracker t = t.dom_mem_tracker
let set_mem_tracker t v = t.dom_mem_tracker <- v
let mem_stream t = t.dom_mem_stream
let set_mem_stream t v = t.dom_mem_stream <- v

let is_domu t = match t.dom_kind with DomU -> true | Dom0 -> false

let pp ppf t =
  Format.fprintf ppf "domain %d (%s, %a, %s)" t.dom_id t.dom_name
    Simkit.Units.pp_bytes t.dom_mem_bytes
    (state_name t.dom_state)
