type t = {
  vmm_bytes : int;
  dom0_kernel_bytes : int;
  initrd_bytes : int;
}

let v ~vmm_bytes ~dom0_kernel_bytes ~initrd_bytes =
  if vmm_bytes <= 0 || dom0_kernel_bytes <= 0 || initrd_bytes < 0 then
    invalid_arg "Image.v: non-positive component";
  { vmm_bytes; dom0_kernel_bytes; initrd_bytes }

let default =
  v
    ~vmm_bytes:(800 * 1024)
    ~dom0_kernel_bytes:(4 * 1024 * 1024)
    ~initrd_bytes:(16 * 1024 * 1024)

let total_bytes t = t.vmm_bytes + t.dom0_kernel_bytes + t.initrd_bytes

let pp ppf t =
  Format.fprintf ppf "image(vmm %a, kernel %a, initrd %a)"
    Simkit.Units.pp_bytes t.vmm_bytes Simkit.Units.pp_bytes
    t.dom0_kernel_bytes Simkit.Units.pp_bytes t.initrd_bytes

type saved = {
  resident_bytes : int;
  exec_state_bytes : int;
  total_ram_bytes : int;
}

let saved ~resident_bytes ~exec_state_bytes ~total_ram_bytes =
  if resident_bytes <= 0 then
    invalid_arg "Image.saved: resident_bytes must be positive";
  if resident_bytes > total_ram_bytes then
    invalid_arg "Image.saved: resident_bytes exceeds total_ram_bytes";
  if exec_state_bytes < 0 then
    invalid_arg "Image.saved: exec_state_bytes must be >= 0";
  { resident_bytes; exec_state_bytes; total_ram_bytes }

let saved_bytes s = s.resident_bytes + s.exec_state_bytes

let hot_bytes s ~working_set_bytes =
  min (saved_bytes s) (max 0 working_set_bytes + s.exec_state_bytes)

let pp_saved ppf s =
  Format.fprintf ppf "saved(%a resident of %a RAM, %a exec state)"
    Simkit.Units.pp_bytes s.resident_bytes Simkit.Units.pp_bytes
    s.total_ram_bytes Simkit.Units.pp_bytes s.exec_state_bytes
