type grant_ref = int

type access = Read_only | Read_write

type error = [ `Bad_ref | `Wrong_domain | `Revoked | `Still_mapped ]

let error_message = function
  | `Bad_ref -> "no such grant reference"
  | `Wrong_domain -> "domain is neither owner nor grantee of this grant"
  | `Revoked -> "grant has been revoked"
  | `Still_mapped -> "grant is still mapped"

type entry = {
  owner : Domain.id;
  grantee : Domain.id;
  pfn : int;
  access : access;
  mutable mapped : bool;
  mutable revoked : bool;
}

type t = { mutable next_ref : grant_ref; table : (grant_ref, entry) Hashtbl.t }

let create () = { next_ref = 1; table = Hashtbl.create 64 }

let grant t ~owner ~grantee ~pfn ?(access = Read_write) () =
  if owner = grantee then invalid_arg "Grant_table.grant: self-grant";
  if pfn < 0 then invalid_arg "Grant_table.grant: negative pfn";
  let r = t.next_ref in
  t.next_ref <- r + 1;
  Hashtbl.replace t.table r
    { owner; grantee; pfn; access; mapped = false; revoked = false };
  r

let find t r = Hashtbl.find_opt t.table r

let map t r ~by =
  match find t r with
  | None -> Error `Bad_ref
  | Some e ->
    if e.revoked then Error `Revoked
    else if e.grantee <> by then Error `Wrong_domain
    else if e.mapped then Error `Still_mapped
    else begin
      e.mapped <- true;
      Ok ()
    end

let unmap t r ~by =
  match find t r with
  | None -> Error `Bad_ref
  | Some e ->
    if e.grantee <> by then Error `Wrong_domain
    else begin
      e.mapped <- false;
      Ok ()
    end

let revoke t r ~by =
  match find t r with
  | None -> Error `Bad_ref
  | Some e ->
    if e.owner <> by then Error `Wrong_domain
    else if e.mapped then Error `Still_mapped
    else begin
      e.revoked <- true;
      Hashtbl.remove t.table r;
      Ok ()
    end

let is_mapped t r =
  match find t r with Some e -> e.mapped | None -> false

let grants_owned_by t domid =
  Hashtbl.fold
    (fun r e acc -> if e.owner = domid then r :: acc else acc)
    t.table []
  |> List.sort compare

let mappings_held_by t domid =
  Hashtbl.fold
    (fun r e acc -> if e.grantee = domid && e.mapped then r :: acc else acc)
    t.table []
  |> List.sort compare

let foreign_mappings_of t domid =
  Hashtbl.fold
    (fun _ e acc -> if e.owner = domid && e.mapped then acc + 1 else acc)
    t.table 0

let release_domain t domid =
  (* Unmap everything the domain holds... *)
  Hashtbl.iter (* simlint: allow D003 independent per-entry unmap flags commute *)
    (fun _ e -> if e.grantee = domid && e.mapped then e.mapped <- false)
    t.table;
  (* ...then drop every grant it owns (force-unmapping stragglers, as
     the toolstack's teardown does). *)
  let owned =
    Hashtbl.fold (* simlint: allow D003 removing a grant set commutes *)
      (fun r e acc -> if e.owner = domid then r :: acc else acc)
      t.table []
  in
  List.iter
    (fun r ->
      (match find t r with Some e -> e.mapped <- false | None -> ());
      Hashtbl.remove t.table r)
    owned

let entries t = Hashtbl.length t.table

let check_invariants t =
  Hashtbl.fold (* simlint: allow D003 any violation fails the check; which one is reported is immaterial *)
    (fun r e acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if e.revoked then
          Error (Printf.sprintf "revoked entry %d still present" r)
        else if e.owner = e.grantee then Error "self-grant in table"
        else Ok ())
    t.table (Ok ())
