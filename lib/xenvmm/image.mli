(** The executable image that the xexec hypercall stages for a quick
    reload: "a VMM, a kernel for domain 0, and an initial RAM disk for
    domain 0" (Section 4.3).

    The image is read from dom0's filesystem into machine frames that
    the reloading VMM must treat as preserved (it copies the image to
    the boot address before jumping to it). *)

type t = {
  vmm_bytes : int;
  dom0_kernel_bytes : int;
  initrd_bytes : int;
}

val default : t
(** Xen 3.0-era sizes: ~0.8 MiB hypervisor, ~4 MiB dom0 kernel,
    ~16 MiB initrd. *)

val total_bytes : t -> int

val v : vmm_bytes:int -> dom0_kernel_bytes:int -> initrd_bytes:int -> t

val pp : Format.formatter -> t -> unit

(** {1 Saved-domain images}

    What [xm save] writes for one domain: its resident memory pages
    plus the execution state (event-channel table, device state,
    registers). Historically the simulator sized this as the full
    configured RAM; with memory dynamics enabled the resident part is
    [O(resident − reclaimed)] because the balloon driver returns idle
    pages before the suspend. *)

type saved = {
  resident_bytes : int;  (** Memory pages actually written. *)
  exec_state_bytes : int;  (** Channels, devices, registers. *)
  total_ram_bytes : int;
      (** The domain's configured RAM — what a restore must be able to
          re-inflate to; not part of the on-disk size. *)
}

val saved :
  resident_bytes:int -> exec_state_bytes:int -> total_ram_bytes:int -> saved
(** @raise Invalid_argument unless
    [0 < resident_bytes <= total_ram_bytes] and
    [exec_state_bytes >= 0]. *)

val saved_bytes : saved -> int
(** On-disk size: [resident_bytes + exec_state_bytes]. This is the byte
    count a suspend writes and a stop-and-copy restore reads, so it is
    what suspend/resume timing is driven by. *)

val hot_bytes : saved -> working_set_bytes:int -> int
(** The prefix a streamed restore reads before resuming: the working
    set plus the execution state, clamped to {!saved_bytes}. *)

val pp_saved : Format.formatter -> saved -> unit
