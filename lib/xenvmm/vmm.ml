type event =
  | Booted of [ `Cold | `Quick_reload ]
  | Shutdown
  | Domain_created of Domain.id
  | Domain_destroyed of Domain.id
  | Hypercall of Hypercall.t
  | Heap_exhausted

module Fault = Simkit.Fault

type error = Fault.t

let error_message = Fault.to_string

type saved_image = {
  img_domain : Domain.t;
  img_image : Image.saved;
}

type vmm_state = Powered_off | Vmm_running

(* Heap charge for the hypervisor's per-domain control structures. *)
let domain_struct_bytes = 8192

type t = {
  hw : Hw.Host.t;
  timing : Timing.t;
  heap_capacity : int;
  dom0_mem_bytes : int;
  mutable heap : Vmm_heap.t;
  mutable chans : Event_channel.t;
  mutable store : Xenstore.t option;
  domains : (Domain.id, Domain.t) Hashtbl.t;
  domain_heap : (Domain.id, Vmm_heap.allocation) Hashtbl.t;
  saved : (string, saved_image) Hashtbl.t;
  mutable next_domid : int;
  mutable vmm_state : vmm_state;
  mutable gen : int;
  mutable observers : (event -> unit) list;
  hypercalls : (string, int) Hashtbl.t;
  (* Serializes per-domain hypercall work inside the VMM. *)
  vmm_lock : Simkit.Resource.t;
  mutable leak_per_destroy : int;
  mutable xenstore_leak_per_txn : int;
  scrub_policy : [ `Free_only | `All ];
  mutable staged : (Image.t * Hw.Frame.extent list) option;
  sched : Scheduler.t;
  mutable grant_table : Grant_table.t;
  mutable fault_plan : Fault.Plan.t option;
  mutable memdyn : Mem.Memdyn.t;
  mutable last_saved_image : Image.saved option;
  mutable last_restore_lag_s : float;
}

let create ?(timing = Timing.default) ?(heap_capacity = Vmm_heap.default_capacity_bytes)
    ?(dom0_mem_bytes = Simkit.Units.mib 512) ?(scrub_policy = `Free_only) hw =
  {
    hw;
    timing;
    heap_capacity;
    dom0_mem_bytes;
    heap = Vmm_heap.create ~capacity_bytes:heap_capacity ();
    chans = Event_channel.create ();
    store = None;
    domains = Hashtbl.create 16;
    domain_heap = Hashtbl.create 16;
    saved = Hashtbl.create 8;
    next_domid = 0;
    vmm_state = Powered_off;
    gen = 0;
    observers = [];
    hypercalls = Hashtbl.create 16;
    vmm_lock =
      Simkit.Resource.create hw.Hw.Host.engine ~name:"vmm-lock" ~capacity:1.0;
    leak_per_destroy = 0;
    xenstore_leak_per_txn = 0;
    scrub_policy;
    staged = None;
    (* Two dual-core Opterons in the paper's testbed. *)
    sched = Scheduler.create hw.Hw.Host.engine ~physical_cpus:4 ();
    grant_table = Grant_table.create ();
    fault_plan = None;
    memdyn = Mem.Memdyn.off;
    last_saved_image = None;
    last_restore_lag_s = 0.0;
  }

let set_fault_plan t plan = t.fault_plan <- plan
let set_memdyn t m = t.memdyn <- Mem.Memdyn.validate m
let memdyn t = t.memdyn
let last_saved_image t = t.last_saved_image
let last_restore_lag_s t = t.last_restore_lag_s

(* Consult the scenario's injection plan at a named site. *)
let injected t ~site =
  match t.fault_plan with
  | None -> false
  | Some plan -> Fault.Plan.fires plan ~site

let log_src = Logs.Src.create "roothammer.vmm" ~doc:"VMM lifecycle events"

module Log = (val Logs.src_log log_src)

let pp_event ppf = function
  | Booted `Cold -> Format.pp_print_string ppf "booted (cold)"
  | Booted `Quick_reload -> Format.pp_print_string ppf "booted (quick reload)"
  | Shutdown -> Format.pp_print_string ppf "shutdown"
  | Domain_created id -> Format.fprintf ppf "domain %d created" id
  | Domain_destroyed id -> Format.fprintf ppf "domain %d destroyed" id
  | Hypercall h -> Format.fprintf ppf "hypercall %a" Hypercall.pp h
  | Heap_exhausted -> Format.pp_print_string ppf "HEAP EXHAUSTED"

let host t = t.hw
let engine t = t.hw.Hw.Host.engine
let timing t = t.timing
let heap t = t.heap
let channels t = t.chans
let scheduler t = t.sched
let grants t = t.grant_table
let xenstore t = t.store
let generation t = t.gen
let is_running t = t.vmm_state = Vmm_running

let emit t e =
  Log.debug (fun m ->
      m "[t=%.2f gen=%d] %a"
        (Simkit.Engine.now t.hw.Hw.Host.engine)
        t.gen pp_event e);
  (match e with
  | Hypercall h ->
    let key = Hypercall.name h in
    let n = Option.value (Hashtbl.find_opt t.hypercalls key) ~default:0 in
    Hashtbl.replace t.hypercalls key (n + 1)
  | _ -> ());
  List.iter (fun f -> f e) (List.rev t.observers)

let on_event t f = t.observers <- f :: t.observers

let hypercall_count t name =
  Option.value (Hashtbl.find_opt t.hypercalls name) ~default:0

let set_leak_per_domain_destroy t ~bytes = t.leak_per_destroy <- bytes
let set_xenstore_leak_per_txn t ~bytes = t.xenstore_leak_per_txn <- bytes

let dom0 t =
  Hashtbl.fold (* simlint: allow D003 at most one Dom0 exists per host *)
    (fun _ d acc -> if Domain.kind d = Domain.Dom0 then Some d else acc)
    t.domains None

let domus t =
  Hashtbl.fold (fun _ d acc -> if Domain.is_domu d then d :: acc else acc)
    t.domains []
  |> List.sort (fun a b -> compare (Domain.id a) (Domain.id b))

let find_domain t ~name =
  (* Collect-and-sort rather than first-match-in-hash-order, so a
     (buggy) duplicate name still resolves deterministically. *)
  Hashtbl.fold
    (fun _ d acc -> if String.equal (Domain.name d) name then d :: acc else acc)
    t.domains []
  |> List.sort (fun a b -> compare (Domain.id a) (Domain.id b))
  |> function [] -> None | d :: _ -> Some d

let memory t = t.hw.Hw.Host.memory
let frames t = Hw.Memory.frames (memory t)
let trace t = t.hw.Hw.Host.trace

let fresh_heap t =
  t.heap <- Vmm_heap.create ~capacity_bytes:t.heap_capacity ();
  Vmm_heap.on_exhaustion t.heap (fun () -> emit t Heap_exhausted)

(* --- frame plumbing --------------------------------------------------- *)

let exec_state_frame_count t =
  Simkit.Units.pages_of_bytes t.timing.Timing.exec_state_bytes

(* Allocate machine memory for a domain: the P2M table's own frames plus
   the guest memory, and populate the mapping table. [mem_bytes]
   defaults to the domain's configured RAM; a restore of a ballooned
   image passes the smaller resident size instead. *)
let allocate_domain_memory ?mem_bytes t dom =
  let mem_bytes = Option.value mem_bytes ~default:(Domain.mem_bytes dom) in
  let p2m = Domain.p2m dom in
  let mem_pages = Simkit.Units.pages_of_bytes mem_bytes in
  let table_pages = Simkit.Units.pages_of_bytes (mem_pages * 8) in
  match Hw.Frame.alloc (frames t) ~frames:table_pages with
  | None -> Error Fault.Out_of_memory
  | Some table_extents -> (
    Domain.set_p2m_frames dom table_extents;
    match Hw.Frame.alloc (frames t) ~frames:mem_pages with
    | None ->
      Hw.Frame.free (frames t) table_extents;
      Domain.set_p2m_frames dom [];
      Error Fault.Out_of_memory
    | Some mem_extents ->
      let _ =
        List.fold_left
          (fun pfn ext ->
            P2m.add_extent p2m ~pfn_first:pfn ~mfns:ext;
            pfn + ext.Hw.Frame.count)
          0 mem_extents
      in
      Ok ())

let release_domain_memory t dom =
  let backing = P2m.remove_all (Domain.p2m dom) in
  if backing <> [] then Hw.Frame.free (frames t) backing;
  let table = Domain.p2m_frames dom in
  if table <> [] then Hw.Frame.free (frames t) table;
  Domain.set_p2m_frames dom [];
  match Domain.exec_state dom with
  | Some es ->
    if es.Domain.state_frames <> [] then
      Hw.Frame.free (frames t) es.Domain.state_frames;
    Domain.set_exec_state dom None
  | None -> ()

let charge_domain_heap t dom =
  match
    Vmm_heap.alloc t.heap
      ~tag:(Printf.sprintf "domain/%s" (Domain.name dom))
      ~bytes:domain_struct_bytes
  with
  | Error `Out_of_memory -> Error Fault.Heap_exhausted
  | Ok a ->
    Hashtbl.replace t.domain_heap (Domain.id dom) a;
    Ok ()

let release_domain_heap t dom =
  match Hashtbl.find_opt t.domain_heap (Domain.id dom) with
  | Some a ->
    Vmm_heap.free t.heap a;
    Hashtbl.remove t.domain_heap (Domain.id dom)
  | None -> ()

(* --- xenstore bookkeeping ---------------------------------------------- *)

(* The toolstack mirrors domain metadata into xenstored whenever the
   store is up (it is down while dom0 is down); this is what makes the
   changeset-8640 transaction leak grow with real activity. *)
let store_domain_entry t d =
  match t.store with
  | None -> ()
  | Some store ->
    let base = Printf.sprintf "/local/domain/%d" (Domain.id d) in
    Xenstore.write store ~path:(base ^ "/name") (Domain.name d);
    Xenstore.write store ~path:(base ^ "/memory")
      (string_of_int (Domain.mem_bytes d));
    Xenstore.write store ~path:(base ^ "/state")
      (Domain.state_name (Domain.state d))

let store_domain_state t d =
  match t.store with
  | None -> ()
  | Some store ->
    Xenstore.write store
      ~path:(Printf.sprintf "/local/domain/%d/state" (Domain.id d))
      (Domain.state_name (Domain.state d))

let store_remove_domain t id =
  match t.store with
  | None -> ()
  | Some store -> Xenstore.rm store ~path:(Printf.sprintf "/local/domain/%d" id)

(* --- xexec image staging ------------------------------------------------ *)

let staged_image t = Option.map fst t.staged

let drop_staged_image ~free_frames t =
  match t.staged with
  | None -> ()
  | Some (_, extents) ->
    if free_frames then Hw.Frame.free (frames t) extents;
    t.staged <- None

let xexec_load t ?(image = Image.default) k =
  emit t (Hypercall Hypercall.Xexec);
  (* Replacing a previously staged image releases its frames. *)
  drop_staged_image ~free_frames:true t;
  match Hw.Frame.alloc_bytes (frames t) ~bytes:(Image.total_bytes image) with
  | None -> k (Error Fault.Out_of_memory)
  | Some extents ->
    Hw.Disk.read t.hw.Hw.Host.disk ~bytes:(Image.total_bytes image)
      (fun () ->
        t.staged <- Some (image, extents);
        k (Ok ()))

(* --- dom0 ------------------------------------------------------------- *)

let build_dom0 t =
  let id = t.next_domid in
  t.next_domid <- id + 1;
  let d =
    Domain.create ~id ~name:"Domain-0" ~kind:Domain.Dom0
      ~mem_bytes:t.dom0_mem_bytes
  in
  match allocate_domain_memory t d with
  | Error _ -> Fault.fail (Fault.Invariant "cannot allocate dom0 memory")
  | Ok () ->
    (match charge_domain_heap t d with
    | Error _ -> Fault.fail (Fault.Invariant "cannot charge heap for dom0")
    | Ok () -> ());
    Hashtbl.replace t.domains id d;
    emit t (Domain_created id);
    d

let boot_dom0 t k =
  let span = Simkit.Trace.begin_span (trace t) "dom0 boot" in
  let d = build_dom0 t in
  Domain.set_state d Domain.Booting;
  Simkit.Process.delay (engine t) t.timing.Timing.dom0_boot_s (fun () ->
      Domain.set_state d Domain.Running;
      t.store <-
        Some
          (Xenstore.create
             ~leak_per_transaction_bytes:t.xenstore_leak_per_txn ());
      (* The toolstack re-registers every live domain in the fresh
         store. *)
      Hashtbl.iter (* simlint: allow D003 the store is keyed by path; registration order is invisible *)
        (fun _ dom -> store_domain_entry t dom)
        t.domains;
      Simkit.Trace.end_span (trace t) span;
      k ())

let shutdown_dom0 t k =
  match dom0 t with
  | None -> k ()
  | Some d ->
    let span = Simkit.Trace.begin_span (trace t) "dom0 shutdown" in
    Domain.set_state d Domain.Shutting_down;
    Simkit.Process.delay (engine t) t.timing.Timing.dom0_shutdown_s (fun () ->
        Domain.set_state d Domain.Halted;
        t.store <- None;
        release_domain_memory t d;
        release_domain_heap t d;
        Hashtbl.remove t.domains (Domain.id d);
        emit t (Domain_destroyed (Domain.id d));
        Simkit.Trace.end_span (trace t) span;
        k ())

(* --- power-on / reboot paths ------------------------------------------ *)

let power_on t k =
  if t.vmm_state = Vmm_running then invalid_arg "Vmm.power_on: already running";
  let tr = trace t in
  drop_staged_image ~free_frames:false t;
  Hw.Memory.wipe (memory t);
  Hashtbl.reset t.domains;
  Hashtbl.reset t.domain_heap;
  fresh_heap t;
  t.chans <- Event_channel.create ();
  t.grant_table <- Grant_table.create ();
  let post = Simkit.Trace.begin_span tr "BIOS POST" in
  Simkit.Process.delay (engine t) (Hw.Host.post_time t.hw) (fun () ->
      Simkit.Trace.end_span tr post;
      let load = Simkit.Trace.begin_span tr "VMM load+init" in
      Simkit.Process.delay (engine t) t.timing.Timing.vmm_load_s (fun () ->
          Simkit.Trace.end_span tr load;
          let scrub = Simkit.Trace.begin_span tr "memory scrub (all)" in
          Simkit.Process.delay (engine t)
            (Hw.Memory.scrub_all_time (memory t))
            (fun () ->
              Simkit.Trace.end_span tr scrub;
              t.vmm_state <- Vmm_running;
              t.gen <- t.gen + 1;
              emit t (Booted `Cold);
              boot_dom0 t k)))

let shutdown_vmm t k =
  if t.vmm_state <> Vmm_running then invalid_arg "Vmm.shutdown_vmm: not running";
  let span = Simkit.Trace.begin_span (trace t) "VMM shutdown" in
  Simkit.Process.delay (engine t) t.timing.Timing.vmm_shutdown_s (fun () ->
      t.vmm_state <- Powered_off;
      emit t Shutdown;
      Simkit.Trace.end_span (trace t) span;
      k ())

(* Domains that are not safely frozen when the VMM goes down are lost.
   [Saved_to_disk] survives on stable storage. *)
let crash_unpreserved t ~preserve_suspended =
  Hashtbl.iter (* simlint: allow D003 independent per-domain state writes commute *)
    (fun _ d ->
      match Domain.state d with
      | Domain.Suspended when preserve_suspended -> ()
      | Domain.Saved_to_disk -> ()
      | Domain.Halted | Domain.Crashed -> ()
      | _ -> Domain.set_state d Domain.Crashed)
    t.domains;
  (* Sorted by id: the per-domain teardown below emits observer-visible
     [Domain_destroyed] events, so its order must not depend on the
     hash layout of [t.domains]. *)
  let doomed =
    Hashtbl.fold
      (fun id d acc ->
        match Domain.state d with
        | Domain.Crashed | Domain.Halted -> (id, d) :: acc
        | _ -> acc)
      t.domains []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (id, d) ->
      (* Frames are either wiped (hardware reset) or rebuilt from scratch
         (quick reload reservation), so only drop the bookkeeping here. *)
      ignore (P2m.remove_all (Domain.p2m d));
      Domain.set_p2m_frames d [];
      Domain.set_exec_state d None;
      Hashtbl.remove t.domains id;
      Hashtbl.remove t.domain_heap id;
      emit t (Domain_destroyed id))
    doomed

let rec quick_reload t k =
  if t.vmm_state <> Vmm_running then k (Error Fault.Vmm_down)
  else
    match t.staged with
    | None ->
      (* dom0 normally stages the image with xexec before the reboot;
         stage a default one on the fly otherwise (its disk read then
         lands inside the outage). *)
      xexec_load t (function
        | Ok () -> quick_reload t k
        | Error e -> k (Error e))
    | Some (_, image_extents) -> quick_reload_staged t image_extents k

and quick_reload_staged t image_extents k =
  if injected t ~site:"vmm.reload" then begin
    (* The jump to the staged image goes wrong: the machine is wedged
       with no VMM running. Frozen images survive only in RAM, so a
       hardware reset (which loses them) is the way back. *)
    t.vmm_state <- Powered_off;
    k (Error Fault.Reload_failed)
  end
  else begin
    let tr = trace t in
    (* Anything still running (e.g. a driver domain that cannot be
       suspended) does not survive the reload. *)
    crash_unpreserved t ~preserve_suspended:true;
    (* Sorted by id: the re-adoption loop below lays the preserved
       regions back into the fresh memory view, and frame bookkeeping
       must not depend on hash order. *)
    let preserved =
      Hashtbl.fold (fun _ d acc -> d :: acc) t.domains []
      |> List.filter (fun d -> Domain.state d = Domain.Suspended)
      |> List.sort (fun a b -> compare (Domain.id a) (Domain.id b))
    in
    (* The new VMM instance starts from a blank view of machine memory
       and re-adopts the preserved regions: the staged executable image
       first, then each P2M-mapping table, the frames it records, and
       the execution state. *)
    Hw.Memory.wipe (memory t);
    let image_reserved =
      List.fold_left
        (fun acc e ->
          match acc with
          | Error _ as err -> err
          | Ok () -> Hw.Frame.reserve (frames t) e)
        (Ok ()) image_extents
    in
    (match image_reserved with
    | Ok () -> ()
    | Error _ ->
      Fault.fail (Fault.Invariant "quick_reload: staged image frames lost"));
    let reserve_all d =
      let reserve_list extents =
        List.fold_left
          (fun acc e ->
            match acc with
            | Error _ as err -> err
            | Ok () -> Hw.Frame.reserve (frames t) e)
          (Ok ()) extents
      in
      let exec_frames =
        match Domain.exec_state d with
        | Some es -> es.Domain.state_frames
        | None -> []
      in
      match reserve_list (Domain.p2m_frames d) with
      | Error _ -> Error (Fault.Image_lost (Domain.name d))
      | Ok () -> (
        match reserve_list (P2m.machine_extents (Domain.p2m d)) with
        | Error _ -> Error (Fault.Image_lost (Domain.name d))
        | Ok () -> (
          match reserve_list exec_frames with
          | Error _ -> Error (Fault.Image_lost (Domain.name d))
          | Ok () -> Ok ()))
    in
    let rec reserve_domains = function
      | [] -> Ok ()
      | d :: rest -> (
        match reserve_all d with
        | Error _ as e -> e
        | Ok () -> reserve_domains rest)
    in
    match reserve_domains preserved with
    | Error e ->
      t.vmm_state <- Powered_off;
      k (Error e)
    | Ok () ->
      (* Fresh internal state: the heap rebuild is the rejuvenation. *)
      fresh_heap t;
      Hashtbl.reset t.domain_heap;
      List.iter
        (fun d ->
          match charge_domain_heap t d with
          | Ok () -> ()
          | Error _ ->
            Fault.fail (Fault.Invariant "quick_reload: heap cannot hold domains"))
        preserved;
      t.chans <- Event_channel.create ();
      t.grant_table <- Grant_table.create ();
      t.store <- None;
      let load = Simkit.Trace.begin_span tr "quick reload (xexec)" in
      Simkit.Process.delay (engine t) t.timing.Timing.vmm_load_s (fun () ->
          Simkit.Trace.end_span tr load;
          let scrub_label, scrub_time =
            match t.scrub_policy with
            | `Free_only ->
              ("memory scrub (free only)", Hw.Memory.scrub_free_time (memory t))
            | `All ->
              ("memory scrub (all)", Hw.Memory.scrub_all_time (memory t))
          in
          let scrub = Simkit.Trace.begin_span tr scrub_label in
          Simkit.Process.delay (engine t) scrub_time
            (fun () ->
              Simkit.Trace.end_span tr scrub;
              (* The image has been copied to the boot address and
                 jumped to; its staging frames are released. *)
              drop_staged_image ~free_frames:true t;
              t.gen <- t.gen + 1;
              emit t (Booted `Quick_reload);
              k (Ok ())))
  end

let hardware_reset t k =
  if t.vmm_state = Vmm_running then
    invalid_arg "Vmm.hardware_reset: shut the VMM down first";
  let tr = trace t in
  (* A power cycle loses every frozen image, including any staged
     executable. *)
  drop_staged_image ~free_frames:false t;
  crash_unpreserved t ~preserve_suspended:false;
  Hw.Memory.wipe (memory t);
  fresh_heap t;
  Hashtbl.reset t.domain_heap;
  t.chans <- Event_channel.create ();
  t.grant_table <- Grant_table.create ();
  t.store <- None;
  let post = Simkit.Trace.begin_span tr "hardware reset (POST)" in
  Simkit.Process.delay (engine t) (Hw.Host.post_time t.hw) (fun () ->
      Simkit.Trace.end_span tr post;
      let load = Simkit.Trace.begin_span tr "VMM load+init" in
      Simkit.Process.delay (engine t) t.timing.Timing.vmm_load_s (fun () ->
          Simkit.Trace.end_span tr load;
          let scrub = Simkit.Trace.begin_span tr "memory scrub (all)" in
          Simkit.Process.delay (engine t)
            (Hw.Memory.scrub_all_time (memory t))
            (fun () ->
              Simkit.Trace.end_span tr scrub;
              t.vmm_state <- Vmm_running;
              t.gen <- t.gen + 1;
              emit t (Booted `Cold);
              k ())))

(* --- domain construction ---------------------------------------------- *)

let create_domain t ~name ~mem_bytes k =
  if t.vmm_state <> Vmm_running then k (Error Fault.Vmm_down)
  else begin
    let id = t.next_domid in
    t.next_domid <- id + 1;
    let d = Domain.create ~id ~name ~kind:Domain.DomU ~mem_bytes in
    match charge_domain_heap t d with
    | Error e -> k (Error e)
    | Ok () -> (
      match allocate_domain_memory t d with
      | Error e ->
        release_domain_heap t d;
        k (Error e)
      | Ok () ->
        if Mem.Memdyn.enabled t.memdyn then
          Domain.set_mem_tracker d
            (Some
               (Mem.Pagestate.create ~memdyn:t.memdyn ~name
                  ~total_bytes:mem_bytes
                  ~now:(Simkit.Engine.now (engine t))));
        Hashtbl.replace t.domains id d;
        emit t (Hypercall (Hypercall.Domctl_create id));
        Simkit.Process.delay (engine t) t.timing.Timing.domain_create_s
          (fun () ->
            store_domain_entry t d;
            emit t (Domain_created id);
            k (Ok d)))
  end

let destroy_domain t dom k =
  emit t (Hypercall (Hypercall.Domctl_destroy (Domain.id dom)));
  Simkit.Process.delay (engine t) t.timing.Timing.domain_destroy_s (fun () ->
      release_domain_memory t dom;
      release_domain_heap t dom;
      if t.leak_per_destroy > 0 then
        Vmm_heap.leak t.heap ~bytes:t.leak_per_destroy;
      Event_channel.close_all_of t.chans ~domid:(Domain.id dom);
      Grant_table.release_domain t.grant_table (Domain.id dom);
      Scheduler.remove_domain t.sched ~domid:(Domain.id dom);
      Hashtbl.remove t.domains (Domain.id dom);
      store_remove_domain t (Domain.id dom);
      emit t (Domain_destroyed (Domain.id dom));
      k ())

(* Keep the memory-dynamics tracker's ballooned count in step with the
   p2m whenever the balloon moves, whoever drove it (the guest's
   balloon driver or the pre-suspend reclaim). *)
let note_balloon_delta dom ~pages =
  match Domain.mem_tracker dom with
  | None -> ()
  | Some ps ->
    let total = Mem.Pagestate.total_pages ps in
    let target =
      min (total - 1) (max 0 (Mem.Pagestate.ballooned_pages ps + pages))
    in
    Mem.Pagestate.set_ballooned ps ~pages:target

let balloon t dom ~delta_bytes =
  if t.vmm_state <> Vmm_running then Error Fault.Vmm_down
  else if delta_bytes = 0 then Ok ()
  else begin
    emit t (Hypercall (Hypercall.Memory_op (Domain.id dom)));
    let p2m = Domain.p2m dom in
    if delta_bytes > 0 then begin
      let add_pages = Simkit.Units.pages_of_bytes delta_bytes in
      match Hw.Frame.alloc (frames t) ~frames:add_pages with
      | None -> Error Fault.Out_of_memory
      | Some extents ->
        let _ =
          List.fold_left
            (fun pfn ext ->
              P2m.add_extent p2m ~pfn_first:pfn ~mfns:ext;
              pfn + ext.Hw.Frame.count)
            (P2m.pages p2m) extents
        in
        note_balloon_delta dom ~pages:(-add_pages);
        Ok ()
    end
    else begin
      let remove_pages = Simkit.Units.pages_of_bytes (-delta_bytes) in
      if remove_pages > P2m.pages p2m then Error Fault.Out_of_memory
      else begin
        let released =
          P2m.remove_range p2m
            ~pfn_first:(P2m.pages p2m - remove_pages)
            ~count:remove_pages
        in
        Hw.Frame.free (frames t) released;
        note_balloon_delta dom ~pages:remove_pages;
        Ok ()
      end
    end
  end

(* --- on-memory suspend/resume ------------------------------------------ *)

let freeze_domain t d k =
  Domain.set_state d Domain.Suspending;
  (* The VMM sends the suspend event through the guest's bound event
     channel; the kernel's suspend handler then runs (device detach —
     which must tear down its grant mappings) and issues the suspend
     hypercall. *)
  (match Domain.suspend_port d with
  | Some port -> ignore (Event_channel.notify t.chans (engine t) port)
  | None -> ());
  Domain.suspend_handler d (fun () ->
      if injected t ~site:"vmm.suspend" then begin
        (* Injected suspend failure: the freeze walk corrupts the image
           and the domain is lost, exactly as if its suspend handler had
           left a foreign mapping behind. *)
        Domain.set_state d Domain.Crashed;
        k ()
      end
      else if Grant_table.foreign_mappings_of t.grant_table (Domain.id d) > 0 then begin
        (* A page of this domain is still mapped by another domain: its
           image cannot be frozen safely. *)
        Domain.set_state d Domain.Crashed;
        k ()
      end
      else begin
      emit t (Hypercall (Hypercall.Suspend (Domain.id d)));
      (* Serialized hypercall entry ... *)
      ignore
        (Simkit.Resource.submit t.vmm_lock
           ~work:t.timing.Timing.suspend_fixed_s (fun () ->
             (* ... then the per-GiB freeze walk, overlapped across
                domains. *)
             Simkit.Process.delay (engine t)
               (Timing.suspend_walk_time t.timing
                  ~mem_bytes:(Domain.mem_bytes d))
               (fun () ->
                 let state_pages = exec_state_frame_count t in
                 match Hw.Frame.alloc (frames t) ~frames:state_pages with
                 | None ->
                   Domain.set_state d Domain.Crashed;
                   k ()
                 | Some state_frames ->
                   let devices = Domain.detach_all_devices d in
                   Domain.set_exec_state d
                     (Some
                        {
                          Domain.saved_at = Simkit.Engine.now (engine t);
                          channels =
                            Event_channel.snapshot_of t.chans
                              ~domid:(Domain.id d);
                          devices;
                          state_bytes = t.timing.Timing.exec_state_bytes;
                          state_frames;
                        });
                   Event_channel.close_all_of t.chans ~domid:(Domain.id d);
                   Domain.set_state d Domain.Suspended;
                   store_domain_state t d;
                   k ())))
      end)

let suspend_all_on_memory t k =
  let targets =
    List.filter
      (fun d -> Domain.state d = Domain.Running && Domain.suspendable d)
      (domus t)
  in
  let span = Simkit.Trace.begin_span (trace t) "on-memory suspend" in
  Simkit.Process.par (List.map (fun d k -> freeze_domain t d k) targets)
    (fun () ->
      Simkit.Trace.end_span (trace t) span;
      k ())

let resume_domain_on_memory t d k =
  if t.vmm_state <> Vmm_running then k (Error Fault.Vmm_down)
  else
    match Domain.state d with
    | Domain.Suspended when injected t ~site:"xend.resume" ->
      (* Injected resume failure before any state is touched: the
         domain stays frozen, so the caller may retry. *)
      k (Error (Fault.Resume_failed (Domain.name d)))
    | Domain.Suspended -> (
      match Domain.exec_state d with
      | None ->
        k (Error (Fault.Bad_domain_state (Domain.state_name Domain.Suspended)))
      | Some es ->
        Domain.set_state d Domain.Resuming;
        emit t (Hypercall (Hypercall.Resume (Domain.id d)));
        let duration =
          Timing.resume_time t.timing ~mem_bytes:(Domain.mem_bytes d)
        in
        Simkit.Process.delay (engine t) duration (fun () ->
            Event_channel.restore_snapshot t.chans ~domid:(Domain.id d)
              es.Domain.channels;
            List.iter (Domain.attach_device d) es.Domain.devices;
            Hw.Frame.free (frames t) es.Domain.state_frames;
            Domain.set_exec_state d None;
            (* Guest resume handler: re-establish channels, re-attach
               devices, restart the kernel. *)
            Domain.resume_handler d (fun () ->
                Domain.set_state d Domain.Running;
                store_domain_state t d;
                k (Ok ()))))
    | s -> k (Error (Fault.Bad_domain_state (Domain.state_name s)))

(* --- traditional save/restore ------------------------------------------ *)

let save_domain_to_disk t d k =
  Domain.set_state d Domain.Saving;
  Domain.suspend_handler d (fun () ->
      emit t (Hypercall (Hypercall.Suspend (Domain.id d)));
      let devices = Domain.detach_all_devices d in
      (* Abort the save: reattach devices and resume in place; the
         frozen services come back without a restart. *)
      let abort_save fault =
        List.iter (Domain.attach_device d) devices;
        Domain.set_state d Domain.Resuming;
        Domain.resume_handler d (fun () ->
            Domain.set_state d Domain.Running;
            k (Error fault))
      in
      (* Pre-suspend balloon reclaim: inflate over the idle pages so
         the written image shrinks to the policy's keep target. The
         working set stays resident, so service times after the
         restore are unaffected. *)
      (match Domain.mem_tracker d with
      | Some ps when Mem.Memdyn.balloon_enabled t.memdyn ->
        Mem.Pagestate.refresh ps ~now:(Simkit.Engine.now (engine t));
        let reclaim = Mem.Balloon.reclaim_target ps in
        if reclaim > 0 then
          ignore
            (balloon t d
               ~delta_bytes:(-(reclaim * Simkit.Units.page_bytes)))
      | _ -> ());
      (* The frozen image on disk is the new clean snapshot. *)
      (match Domain.mem_tracker d with
      | Some ps -> Mem.Pagestate.clear_dirty ps
      | None -> ());
      let resident_bytes =
        match Domain.mem_tracker d with
        | Some ps -> Mem.Pagestate.resident_bytes ps
        | None -> Domain.mem_bytes d
      in
      let image =
        Image.saved ~resident_bytes
          ~exec_state_bytes:t.timing.Timing.exec_state_bytes
          ~total_ram_bytes:(Domain.mem_bytes d)
      in
      let image_bytes = Image.saved_bytes image in
      if injected t ~site:"vmm.suspend" then
        abort_save (Fault.Suspend_failed (Domain.name d))
      else
      match Hw.Disk.allocate_space t.hw.Hw.Host.disk ~bytes:image_bytes with
      | Error `Disk_full -> abort_save Fault.Disk_full
      | Ok () ->
      Simkit.Process.delay (engine t) t.timing.Timing.save_handler_s
        (fun () ->
          Hw.Disk.write t.hw.Hw.Host.disk ~bytes:image_bytes (fun () ->
              Domain.set_exec_state d
                (Some
                   {
                     Domain.saved_at = Simkit.Engine.now (engine t);
                     channels =
                       Event_channel.snapshot_of t.chans
                         ~domid:(Domain.id d);
                     devices;
                     state_bytes = t.timing.Timing.exec_state_bytes;
                     state_frames = [];
                   });
              Event_channel.close_all_of t.chans ~domid:(Domain.id d);
              (* The whole point of stock Xen's path: the frames are
                 given back, the image lives only on disk. *)
              let backing = P2m.remove_all (Domain.p2m d) in
              Hw.Frame.free (frames t) backing;
              Hw.Frame.free (frames t) (Domain.p2m_frames d);
              Domain.set_p2m_frames d [];
              release_domain_heap t d;
              t.last_saved_image <- Some image;
              Hashtbl.replace t.saved (Domain.name d)
                { img_domain = d; img_image = image };
              Domain.set_state d Domain.Saved_to_disk;
              store_domain_state t d;
              k (Ok ()))))

let restore_domain_from_disk t ~name k =
  if t.vmm_state <> Vmm_running then k (Error Fault.Vmm_down)
  else
    match Hashtbl.find_opt t.saved name with
    | None -> k (Error (Fault.Image_lost name))
    | Some _ when injected t ~site:"xend.resume" ->
      (* Injected restore failure before anything is read back: the
         on-disk image is intact, so the caller may retry. *)
      k (Error (Fault.Resume_failed name))
    | Some img -> (
      let d = img.img_domain in
      match charge_domain_heap t d with
      | Error e -> k (Error e)
      | Ok () -> (
        match
          allocate_domain_memory ~mem_bytes:img.img_image.Image.resident_bytes
            t d
        with
        | Error e ->
          release_domain_heap t d;
          k (Error e)
        | Ok () ->
          Domain.set_state d Domain.Resuming;
          emit t (Hypercall (Hypercall.Domctl_create (Domain.id d)));
          Hashtbl.replace t.domains (Domain.id d) d;
          let image_bytes = Image.saved_bytes img.img_image in
          (* A streamed restore reads only the hot prefix (working set
             + execution state) before resuming; the cold remainder
             faults in from disk while the guest already serves. *)
          let hot_bytes =
            match Domain.mem_tracker d with
            | Some ps when Mem.Memdyn.stream_enabled t.memdyn ->
              Mem.Pagestate.refresh ps ~now:(Simkit.Engine.now (engine t));
              Image.hot_bytes img.img_image
                ~working_set_bytes:(Mem.Pagestate.working_set_bytes ps)
            | _ -> image_bytes
          in
          let cold_bytes = image_bytes - hot_bytes in
          Hw.Disk.read t.hw.Hw.Host.disk ~bytes:hot_bytes (fun () ->
              Simkit.Process.delay (engine t)
                t.timing.Timing.restore_fixed_s (fun () ->
                  (match Domain.exec_state d with
                  | Some es ->
                    Event_channel.restore_snapshot t.chans
                      ~domid:(Domain.id d) es.Domain.channels;
                    List.iter (Domain.attach_device d) es.Domain.devices
                  | None -> ());
                  Domain.set_exec_state d None;
                  Hashtbl.remove t.saved name;
                  if cold_bytes = 0 then
                    (* The image file is deleted once the VM is back. *)
                    Hw.Disk.release_space t.hw.Hw.Host.disk
                      ~bytes:image_bytes;
                  Domain.resume_handler d (fun () ->
                      Domain.set_state d Domain.Running;
                      store_domain_entry t d;
                      if cold_bytes > 0 then begin
                        let s =
                          Mem.Stream.create ~memdyn:t.memdyn
                            ~cold_bytes
                        in
                        Domain.set_mem_stream d (Some s);
                        let resumed_at = Simkit.Engine.now (engine t) in
                        (* Background fault-in: demand-paged batches
                           charged as random reads; the image file
                           only goes away once the last one lands. *)
                        let rec pump () =
                          let batch = Mem.Stream.next_batch_bytes s in
                          if batch = 0 then begin
                            Domain.set_mem_stream d None;
                            t.last_restore_lag_s <-
                              Simkit.Engine.now (engine t) -. resumed_at;
                            Hw.Disk.release_space t.hw.Hw.Host.disk
                              ~bytes:image_bytes
                          end
                          else
                            Hw.Disk.read t.hw.Hw.Host.disk ~bytes:batch
                              ~random:true (fun () ->
                                Mem.Stream.note_paged_in s ~bytes_:batch;
                                pump ())
                        in
                        pump ()
                      end;
                      k (Ok d))))))

let saved_images t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.saved []
  |> List.sort String.compare

let saved_image_bytes t ~name =
  Option.map
    (fun img -> Image.saved_bytes img.img_image)
    (Hashtbl.find_opt t.saved name)

(* --- introspection ------------------------------------------------------ *)

let preserved_bytes t =
  List.fold_left
    (fun acc d ->
      if Domain.state d = Domain.Suspended then
        let exec =
          match Domain.exec_state d with
          | Some es ->
            Hw.Frame.extents_bytes es.Domain.state_frames
          | None -> 0
        in
        acc
        + P2m.mapped_bytes (Domain.p2m d)
        + Hw.Frame.extents_bytes (Domain.p2m_frames d)
        + exec
      else acc)
    0 (domus t)

let scrub_free_estimate t = Hw.Memory.scrub_free_time (memory t)
