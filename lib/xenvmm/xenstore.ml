type t = {
  store : (string, string) Hashtbl.t;
  mutable watches : (string * (string -> unit)) list;
  leak_per_transaction : int;
  budget : int;
  mutable txn_count : int;
  mutable leaked : int;
}

let create ?(leak_per_transaction_bytes = 0) ?(memory_budget_bytes = 64 * 1024 * 1024)
    () =
  if leak_per_transaction_bytes < 0 then
    invalid_arg "Xenstore.create: negative leak";
  if memory_budget_bytes <= 0 then
    invalid_arg "Xenstore.create: non-positive budget";
  {
    store = Hashtbl.create 64;
    watches = [];
    leak_per_transaction = leak_per_transaction_bytes;
    budget = memory_budget_bytes;
    txn_count = 0;
    leaked = 0;
  }

let is_prefix ~prefix path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let fire_watches t path =
  List.iter
    (fun (prefix, f) -> if is_prefix ~prefix path then f path)
    t.watches

let transaction t =
  t.txn_count <- t.txn_count + 1;
  t.leaked <- t.leaked + t.leak_per_transaction

let write t ~path value =
  transaction t;
  Hashtbl.replace t.store path value;
  fire_watches t path

let read t ~path =
  transaction t;
  Hashtbl.find_opt t.store path

let rm t ~path =
  transaction t;
  let doomed =
    Hashtbl.fold (* simlint: allow D003 removing a key set commutes *)
      (fun k _ acc -> if is_prefix ~prefix:path k then k :: acc else acc)
      t.store []
  in
  List.iter (Hashtbl.remove t.store) doomed;
  if doomed <> [] then fire_watches t path

let directory t ~path =
  transaction t;
  let prefix = if path = "" || path = "/" then "/" else path ^ "/" in
  Hashtbl.fold
    (fun k _ acc ->
      if is_prefix ~prefix k then begin
        let rest =
          String.sub k (String.length prefix)
            (String.length k - String.length prefix)
        in
        match String.index_opt rest '/' with
        | Some i -> String.sub rest 0 i :: acc
        | None -> rest :: acc
      end
      else acc)
    t.store []
  |> List.sort_uniq String.compare

let watch t ~path f = t.watches <- (path, f) :: t.watches

let transactions t = t.txn_count
let entries t = Hashtbl.length t.store

let memory_bytes t =
  let contents =
    Hashtbl.fold
      (fun k v acc -> acc + String.length k + String.length v + 64)
      t.store 0
  in
  contents + t.leaked

let io_slowdown t =
  let pressure = float_of_int (memory_bytes t) /. float_of_int t.budget in
  if pressure < 0.5 then 1.0
  else
    (* Slowdown ramps once the store passes half its budget; beyond the
       budget the privileged VM is effectively thrashing. *)
    1.0 +. (4.0 *. Float.max 0.0 (pressure -. 0.5) ** 2.0 *. 4.0)

let restartable = false
