(** On-disk result cache for deterministic experiment runs.

    A cache maps an opaque key — derived with {!key} from the
    experiment id, its canonical parameter string, the RNG seed and a
    hash of the timing calibration — to the serialized bytes of the
    run's result. Runs are deterministic, so a hit can stand in for the
    run itself; anything that could change the outcome must be folded
    into the key. Entries are one file each, written atomically
    (temp file + rename), so concurrent writers at worst waste work. *)

type t

val create : ?dir:string -> unit -> t
(** Open (creating directories as needed) the cache rooted at [dir].
    [dir] defaults to [$ROOTHAMMER_CACHE], or ["_cache"] under the
    current directory when the variable is unset. *)

val dir : t -> string

val key :
  id:string -> params:string -> seed:int -> calibration:string -> string
(** Digest of the full identity of a run. [params] must be a canonical
    rendering of the parameters (same params ⇒ same string);
    [calibration] is a hash of the timing-constant record the run
    executes under. *)

val find : t -> string -> string option
(** Stored bytes for a key, if present and readable. *)

val store : t -> string -> string -> unit
(** [store t key bytes] persists atomically; concurrent stores of the
    same key are safe (last rename wins, values are identical by
    construction). *)

val remove : t -> string -> unit

val clear : t -> unit
(** Delete every entry (but not the directory). *)
