type 'a task = { key : string; cache_key : string option; run : unit -> 'a }

type metrics = { wall_s : float; sim_events : int; cached : bool }

type 'a outcome = {
  key : string;
  value : ('a, Simkit.Fault.t) result;
  metrics : metrics;
}

type 'a codec = { encode : 'a -> string; decode : string -> 'a }

let marshal_codec () =
  {
    encode = (fun v -> Marshal.to_string v []);
    decode = (fun s -> Marshal.from_string s 0);
  }

(* A run that dies on a typed fault is a result, not a crash: the rest
   of the sweep proceeds and the caller sees the fault in its outcome.
   Any other exception still aborts the whole sweep via Pool. *)
let guarded run =
  match run () with
  | v -> Ok v
  | exception Simkit.Fault.Error f -> Error f

let execute ?cache ~(codec : 'a codec) (t : 'a task) =
  let t0 = Unix.gettimeofday () in
  let cached_bytes =
    match (cache, t.cache_key) with
    | Some c, Some k -> Cache.find c k
    | _ -> None
  in
  match cached_bytes with
  | Some bytes ->
    let value = codec.decode bytes in
    {
      key = t.key;
      value = Ok value;
      metrics =
        { wall_s = Unix.gettimeofday () -. t0; sim_events = 0; cached = true };
    }
  | None ->
    let ev0 = Simkit.Engine.domain_events_processed () in
    let value = guarded t.run in
    let sim_events = Simkit.Engine.domain_events_processed () - ev0 in
    (match (cache, t.cache_key, value) with
    (* Faulted runs are never cached: a fixed injection plan will
       reproduce them, and a changed one should not see stale faults. *)
    | Some c, Some k, Ok v -> Cache.store c k (codec.encode v)
    | _ -> ());
    {
      key = t.key;
      value;
      metrics =
        { wall_s = Unix.gettimeofday () -. t0; sim_events; cached = false };
    }

let run ?jobs ?cache ?codec ?(verify_isolation = false)
    (tasks : 'a task list) =
  let codec = match codec with Some c -> c | None -> marshal_codec () in
  let tasks =
    List.sort (fun (a : 'a task) b -> String.compare a.key b.key) tasks
    |> Array.of_list
  in
  let outcomes = Pool.parallel_map ?jobs (execute ?cache ~codec) tasks in
  if verify_isolation then begin
    (* Replay the first freshly computed task on this domain; a
       deterministic run can only differ if some mutable state was
       shared across domains during the parallel pass. *)
    let encode_result = function
      | Ok v -> "ok:" ^ codec.encode v
      | Error f -> "fault:" ^ Marshal.to_string (f : Simkit.Fault.t) []
    in
    let check i =
      let replay = encode_result (guarded tasks.(i).run) in
      let parallel = encode_result outcomes.(i).value in
      if not (String.equal replay parallel) then
        Simkit.Fault.fail
          (Simkit.Fault.Invariant
             (Printf.sprintf
                "Sweep.run: task %S is not reproducible — parallel and \
                 sequential results differ (shared mutable state leaked \
                 between domains?)"
                tasks.(i).key))
    in
    let rec first_fresh i =
      if i < Array.length outcomes then
        if outcomes.(i).metrics.cached then first_fresh (i + 1) else check i
    in
    first_fresh 0
  end;
  Array.to_list outcomes

let total_wall_s outcomes =
  List.fold_left (fun acc o -> acc +. o.metrics.wall_s) 0.0 outcomes

let observe ?(prefix = "runner.sweep") ?elapsed_s reg outcomes =
  let wall = Obs.Registry.histogram reg (prefix ^ ".run_wall_s") in
  let fresh = ref 0 and cached = ref 0 and faulted = ref 0 in
  let sim_events = ref 0 in
  List.iter
    (fun o ->
      Obs.Metric.Histogram.observe wall o.metrics.wall_s;
      sim_events := !sim_events + o.metrics.sim_events;
      if o.metrics.cached then incr cached else incr fresh;
      match o.value with Error _ -> incr faulted | Ok _ -> ())
    outcomes;
  let g field v = Obs.Registry.set_gauge reg (prefix ^ "." ^ field) v in
  g "runs" (float_of_int (List.length outcomes));
  g "cache_hits" (float_of_int !cached);
  g "fresh_runs" (float_of_int !fresh);
  g "faulted_runs" (float_of_int !faulted);
  let hits_over_total =
    let n = !cached + !fresh in
    if n = 0 then 0.0 else float_of_int !cached /. float_of_int n
  in
  g "cache_hit_rate" hits_over_total;
  g "sim_events" (float_of_int !sim_events);
  g "total_wall_s" (total_wall_s outcomes);
  Option.iter
    (fun elapsed ->
      g "elapsed_s" elapsed;
      (* Sequential-equivalent cost over real elapsed time: how many
         cores the batch kept busy on average. *)
      if elapsed > 0.0 then
        g "shard_utilization" (total_wall_s outcomes /. elapsed))
    elapsed_s
