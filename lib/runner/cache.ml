type t = { dir : string }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  let dir =
    match dir with
    | Some d -> d
    | None -> (
      match Sys.getenv_opt "ROOTHAMMER_CACHE" with
      | Some d when d <> "" -> d
      | _ -> "_cache")
  in
  mkdir_p dir;
  { dir }

let dir t = t.dir

let key ~id ~params ~seed ~calibration =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ id; params; string_of_int seed; calibration ]))

let path t key = Filename.concat t.dir (key ^ ".bin")

let find t k =
  let p = path t k in
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let store t k bytes =
  let final = path t k in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" final (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes);
  Sys.rename tmp final

let remove t k = try Sys.remove (path t k) with Sys_error _ -> ()

let clear t =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".bin" then
        try Sys.remove (Filename.concat t.dir f) with Sys_error _ -> ())
    (try Sys.readdir t.dir with Sys_error _ -> [||])
