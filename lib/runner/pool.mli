(** Work-stealing pool over OCaml 5 domains.

    Built for embarrassingly parallel batches of self-contained
    simulation runs: the input is a fixed array of independent tasks,
    each worker drains its own contiguous slice from the front and,
    when empty, steals single tasks from the {e tail} of the busiest
    neighbour's slice. Results are always delivered in input order —
    scheduling order never leaks into the output. *)

val default_jobs : unit -> int
(** A sensible worker count for this machine:
    [max 1 (Domain.recommended_domain_count () - 1)] (one domain is the
    caller's own). *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f tasks] applies [f] to every element of
    [tasks] on up to [jobs] domains (the calling domain included) and
    returns the results with [result.(i) = f tasks.(i)].

    [jobs] defaults to [min (default_jobs ()) (Array.length tasks)];
    [jobs <= 1] runs sequentially on the calling domain, spawning
    nothing. [f] must not rely on shared mutable state: each call runs
    on an arbitrary domain. If any call raises, the first exception
    (in completion order) is re-raised on the caller's domain after
    all workers have stopped. *)
