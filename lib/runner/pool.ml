(* Work-stealing over index ranges: worker [w] owns the slice
   [lo, hi) of the task array and pops from the front; an idle worker
   steals one index at a time from the *back* of a victim's slice.
   Single-task steals keep locking trivially deadlock-free (at most one
   range lock is ever held) and are cheap relative to the tasks this
   pool exists for — whole simulation runs. *)

type range = { mutable lo : int; mutable hi : int; lock : Mutex.t }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let take_front r =
  Mutex.lock r.lock;
  let i =
    if r.lo < r.hi then begin
      let i = r.lo in
      r.lo <- r.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock r.lock;
  i

let steal_back r =
  Mutex.lock r.lock;
  let i =
    if r.lo < r.hi then begin
      r.hi <- r.hi - 1;
      Some r.hi
    end
    else None
  in
  Mutex.unlock r.lock;
  i

let remaining r =
  Mutex.lock r.lock;
  let n = r.hi - r.lo in
  Mutex.unlock r.lock;
  n

let parallel_map ?jobs f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with
    | Some j -> min (max 1 j) (max 1 n)
    | None -> max 1 (min (default_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 then Array.map f tasks
  else begin
    (* One atomic cell per task: each index is claimed exactly once,
       but the claiming domain varies (stealing), so publish results
       through Atomic rather than plain array writes. *)
    let results = Array.init n (fun _ -> Atomic.make None) in
    let ranges =
      Array.init jobs (fun w ->
          { lo = w * n / jobs; hi = (w + 1) * n / jobs; lock = Mutex.create () })
    in
    (* First failure wins; everyone else drains out at the next check. *)
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let run_one i =
      match f tasks.(i) with
      | v -> Atomic.set results.(i) (Some v)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    in
    let ok () = Atomic.get failed = None in
    let worker w =
      let rec own () =
        if ok () then
          match take_front ranges.(w) with
          | Some i ->
            run_one i;
            own ()
          | None -> steal ()
      and steal () =
        if ok () then begin
          (* Victimize the worker with the most remaining work. Ranges
             only ever shrink, so a scan that finds nothing means the
             batch is fully claimed and this worker can retire. *)
          let victim = ref (-1) and best = ref 0 in
          for v = 0 to jobs - 1 do
            if v <> w then begin
              let left = remaining ranges.(v) in
              if left > !best then begin
                best := left;
                victim := v
              end
            end
          done;
          if !victim >= 0 then begin
            (match steal_back ranges.(!victim) with
            | Some i -> run_one i
            | None -> ());
            steal ()
          end
        end
      in
      own ()
    in
    let domains =
      Array.init (jobs - 1) (fun k ->
          Domain.spawn (fun () -> worker (k + 1)) (* simlint: allow D010 tasks is written before spawn and only read by workers *))
    in
    worker 0;
    Array.iter Domain.join domains;
    match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (fun cell ->
          match Atomic.get cell with
          | Some v -> v
          | None -> assert false (* every index claimed exactly once *))
        results
  end
