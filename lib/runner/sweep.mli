(** Parallel sweep runner: execute a batch of independent, deterministic
    simulation runs across domains, with per-run metrics, an optional
    on-disk cache, and a result order fixed by task key — never by
    completion order.

    Tasks must be self-contained: each [run] thunk builds its own
    engine and RNG from its seed and shares no mutable state with any
    other task (the experiment registry's runs are constructed this
    way). [run ~verify_isolation:true] re-executes one task after the
    parallel pass and asserts the bytes match — a cheap leak detector
    for accidentally shared state. *)

type 'a task = {
  key : string;
      (** Unique sort/merge key, e.g. ["fig4/mem=07"]. Results are
          returned in ascending key order. *)
  cache_key : string option;
      (** Full cache identity from {!Cache.key}; [None] disables
          caching for this task even when a cache is supplied. *)
  run : unit -> 'a;
}

type metrics = {
  wall_s : float;  (** real time spent producing this result *)
  sim_events : int;
      (** simulator callbacks executed for this run; [0] on cache hits *)
  cached : bool;
}

type 'a outcome = {
  key : string;
  value : ('a, Simkit.Fault.t) result;
      (** [Error f] when the run died on a typed fault ({!Simkit.Fault.Error});
          the rest of the sweep still completes. Any other exception
          aborts the whole sweep. *)
  metrics : metrics;
}

type 'a codec = { encode : 'a -> string; decode : string -> 'a }
(** Byte serialization used for the cache and for isolation checks. *)

val marshal_codec : unit -> 'a codec
(** [Marshal]-based codec — fine for plain-data results (no closures,
    no custom blocks). *)

val run :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?codec:'a codec ->
  ?verify_isolation:bool ->
  'a task list ->
  'a outcome list
(** Execute every task, [jobs] at a time ({!Pool.parallel_map}
    semantics; [jobs] defaults to {!Pool.default_jobs}). Outcomes are
    sorted by [key]. With [cache], tasks whose [cache_key] hits are not
    run at all; fresh results are stored back (faulted runs are never
    cached). [codec] defaults to {!marshal_codec}. [verify_isolation]
    (default [false]) re-runs the first non-cached task sequentially
    afterwards and raises [Simkit.Fault.Error (Invariant _)] if its
    bytes differ from the parallel result. *)

val total_wall_s : 'a outcome list -> float
(** Sum of per-run wall clocks — the sequential-equivalent cost, to
    compare against the batch's elapsed time. *)

val observe :
  ?prefix:string -> ?elapsed_s:float -> Obs.Registry.t -> 'a outcome list -> unit
(** Record a finished batch into [reg] under [prefix] (default
    ["runner.sweep"]): a per-run wall-time histogram plus gauges for
    run/cache-hit/fault counts, cache hit rate, simulated events and
    total wall time. With [elapsed_s] (the batch's real elapsed time)
    also records [shard_utilization] — average busy cores, i.e.
    {!total_wall_s} / elapsed. *)
