module Engine = Simkit.Engine

type snapshot = { at : float; values : (string * float) list }

type t = {
  registry : Registry.t;
  engine : Engine.t;
  every_s : float;
  until : float option;
  mutable snaps : snapshot list; (* newest first *)
  mutable stopped : bool;
}

let take t =
  let at = Engine.now t.engine in
  t.snaps <- { at; values = Registry.sample t.registry ~now:at } :: t.snaps

(* Self-rescheduling sampler on the simulation clock. [until] bounds
   the re-arming so a timeline never keeps an unbounded
   [Engine.run] from draining. *)
let rec arm t =
  let next = Engine.now t.engine +. t.every_s in
  let past_deadline =
    match t.until with None -> false | Some u -> next > u
  in
  if not past_deadline then
    ignore
      (Engine.schedule t.engine ~delay:t.every_s (fun () ->
           if not t.stopped then begin
             take t;
             arm t
           end))

let attach registry engine ~every_s ?until () =
  if every_s <= 0.0 then invalid_arg "Timeline.attach: every_s <= 0";
  let t = { registry; engine; every_s; until; snaps = []; stopped = false } in
  take t;
  arm t;
  t

let stop t = t.stopped <- true
let every_s t = t.every_s
let snapshots t = List.rev t.snaps
