(** Snapshot timeline: periodic registry samples on the {e simulation}
    clock.

    The sampler is an ordinary engine event that re-arms itself, so
    snapshots land at deterministic virtual times — never wall-clock —
    and replaying a seeded run reproduces the timeline exactly. *)

type snapshot = { at : float; values : (string * float) list }

type t

val attach :
  Registry.t -> Simkit.Engine.t -> every_s:float -> ?until:float -> unit -> t
(** Sample immediately, then every [every_s] simulated seconds. With
    [until] the sampler stops re-arming once the next sample would land
    after that absolute time — pass it whenever the surrounding code
    drains the engine with an unbounded [Engine.run], which would
    otherwise never terminate. Raises [Invalid_argument] when
    [every_s <= 0]. *)

val stop : t -> unit
(** Stop sampling; already-taken snapshots are kept. *)

val snapshots : t -> snapshot list
(** Oldest first. *)

val every_s : t -> float
