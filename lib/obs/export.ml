module Jsonx = Simkit.Jsonx
module Stat = Simkit.Stat

type format = Json | Csv | Prom

let format_enum =
  Simkit.Enum.make ~what:"metrics format"
    ~aliases:[ ("prometheus", Prom) ]
    [ ("json", Json); ("csv", Csv); ("prom", Prom) ]

let format_of_string s = Simkit.Enum.of_string format_enum s

let extension = function Json -> ".json" | Csv -> ".csv" | Prom -> ".prom"

let opt_float = function None -> Jsonx.Null | Some v -> Jsonx.Float v

let histogram_json h =
  let module H = Metric.Histogram in
  Jsonx.Obj
    [
      ("type", Str "histogram");
      ("count", Int (H.count h));
      ("sum", Float (H.sum h));
      ("min", opt_float (H.min_value h));
      ("max", opt_float (H.max_value h));
      ("mean", opt_float (H.mean h));
      ("p50", opt_float (H.p50 h));
      ("p95", opt_float (H.p95 h));
      ("p99", opt_float (H.p99 h));
      ( "buckets",
        Arr
          (List.map
             (fun (i, c) ->
               Jsonx.Obj
                 [
                   ("le", Float (H.bucket_upper h i)); ("count", Int c);
                 ])
             (H.buckets h)) );
    ]

let metric_json ~now = function
  | Registry.Counter c ->
    Jsonx.Obj
      [
        ("type", Str "counter");
        ("total", Int (Metric.Counter.total c));
        ("rate", Float (Metric.Counter.last_window_rate c ~now));
      ]
  | Registry.Gauge g ->
    Jsonx.Obj [ ("type", Str "gauge"); ("value", Float (Metric.gauge_value g)) ]
  | Registry.Histogram h -> histogram_json h

(* Per-metric descriptive statistics over the sampled timeline, via the
   total Stat variants: a metric that never got a sample renders as
   nulls rather than raising on the empty list. *)
let timeline_summary_json snaps =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (s : Timeline.snapshot) ->
      List.iter
        (fun (name, v) ->
          let prev = Option.value (Hashtbl.find_opt by_name name) ~default:[] in
          Hashtbl.replace by_name name (v :: prev))
        s.values)
    snaps;
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) by_name []
    |> List.sort String.compare
  in
  Jsonx.Obj
    (List.map
       (fun name ->
         let samples = List.rev (Hashtbl.find by_name name) in
         let stats =
           match Stat.summarize_opt samples with
           | None ->
             [
               ("samples", Jsonx.Int 0);
               ("mean", Jsonx.Null);
               ("min", Jsonx.Null);
               ("max", Jsonx.Null);
               ("p95", Jsonx.Null);
             ]
           | Some s ->
             [
               ("samples", Jsonx.Int s.count);
               ("mean", Jsonx.Float s.mean);
               ("min", Jsonx.Float s.min);
               ("max", Jsonx.Float s.max);
               ("p95", opt_float (Stat.percentile_opt samples ~p:95.0));
             ]
         in
         (name, Jsonx.Obj stats))
       names)

let timeline_json tl =
  let snaps = Timeline.snapshots tl in
  Jsonx.Obj
    [
      ("every_s", Float (Timeline.every_s tl));
      ( "snapshots",
        Arr
          (List.map
             (fun (s : Timeline.snapshot) ->
               Jsonx.Obj
                 [
                   ("t", Float s.at);
                   ( "values",
                     Obj (List.map (fun (n, v) -> (n, Jsonx.Float v)) s.values)
                   );
                 ])
             snaps) );
      ("summary", timeline_summary_json snaps);
    ]

let json_tree ?timeline ~now registry =
  let metrics =
    Jsonx.Obj
      (List.map
         (fun (name, m) -> (name, metric_json ~now m))
         (Registry.metrics registry))
  in
  let fields =
    [ ("schema", Jsonx.Str "roothammer-obs/1"); ("now", Jsonx.Float now);
      ("metrics", metrics) ]
  in
  let fields =
    match timeline with
    | None -> fields
    | Some tl -> fields @ [ ("timeline", timeline_json tl) ]
  in
  Jsonx.Obj fields

let to_json ?timeline ~now registry =
  Jsonx.to_string (json_tree ?timeline ~now registry)

(* CSV is the flat instrument view (one row per field); the timeline
   only travels in the JSON export. *)
let to_csv ~now registry =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "metric,type,field,value\n";
  let num v = Jsonx.to_string (Jsonx.Float v) in
  let row name kind field value =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s\n" name kind field value)
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Registry.Counter c ->
        row name "counter" "total" (string_of_int (Metric.Counter.total c));
        row name "counter" "rate"
          (num (Metric.Counter.last_window_rate c ~now))
      | Registry.Gauge g -> row name "gauge" "value" (num (Metric.gauge_value g))
      | Registry.Histogram h ->
        let module H = Metric.Histogram in
        let opt = function None -> "" | Some v -> num v in
        row name "histogram" "count" (string_of_int (H.count h));
        row name "histogram" "sum" (num (H.sum h));
        row name "histogram" "min" (opt (H.min_value h));
        row name "histogram" "max" (opt (H.max_value h));
        row name "histogram" "mean" (opt (H.mean h));
        row name "histogram" "p50" (opt (H.p50 h));
        row name "histogram" "p95" (opt (H.p95 h));
        row name "histogram" "p99" (opt (H.p99 h)))
    (Registry.metrics registry);
  Buffer.contents buf

let prom_name name =
  let b = Buffer.create (String.length name + 11) in
  Buffer.add_string b "roothammer_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prometheus ~now registry =
  let buf = Buffer.create 512 in
  let num v =
    if Float.is_finite v then Jsonx.to_string (Jsonx.Float v) else "NaN"
  in
  List.iter
    (fun (name, m) ->
      let p = prom_name name in
      match m with
      | Registry.Counter c ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s_total counter\n" p);
        Buffer.add_string buf
          (Printf.sprintf "%s_total %d\n" p (Metric.Counter.total c));
        Buffer.add_string buf (Printf.sprintf "# TYPE %s_rate gauge\n" p);
        Buffer.add_string buf
          (Printf.sprintf "%s_rate %s\n" p
             (num (Metric.Counter.last_window_rate c ~now)))
      | Registry.Gauge g ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" p);
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" p (num (Metric.gauge_value g)))
      | Registry.Histogram h ->
        let module H = Metric.Histogram in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" p);
        let cumulative = ref 0 in
        List.iter
          (fun (i, c) ->
            cumulative := !cumulative + c;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" p
                 (num (H.bucket_upper h i))
                 !cumulative))
          (H.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" p (H.count h));
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" p (num (H.sum h)));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" p (H.count h)))
    (Registry.metrics registry);
  Buffer.contents buf

let render fmt ?timeline ~now registry =
  match fmt with
  | Json -> to_json ?timeline ~now registry
  | Csv -> to_csv ~now registry
  | Prom -> to_prometheus ~now registry
