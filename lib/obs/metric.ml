(* Counters re-use Simkit.Series.Counter: its O(1) streaming total and
   last-window rate are exactly what the snapshot timeline samples. *)
module Counter = Simkit.Series.Counter

module Histogram = struct
  type t = {
    buckets_per_decade : int;
    counts : (int, int) Hashtbl.t; (* bucket index -> observation count *)
    mutable zero_count : int; (* observations <= 0 *)
    mutable total : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create ?(buckets_per_decade = 20) () =
    if buckets_per_decade <= 0 then
      invalid_arg "Histogram.create: buckets_per_decade <= 0";
    {
      buckets_per_decade;
      counts = Hashtbl.create 32;
      zero_count = 0;
      total = 0;
      sum = 0.0;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
    }

  let buckets_per_decade t = t.buckets_per_decade

  (* Bucket [i] covers [10^(i/bpd), 10^((i+1)/bpd)). The index is a
     pure function of the value, so same observations in any order
     always land in the same buckets. *)
  let bucket_index t v =
    int_of_float
      (Float.floor (Float.log10 v *. float_of_int t.buckets_per_decade))

  let bucket_lower t i =
    Float.pow 10.0 (float_of_int i /. float_of_int t.buckets_per_decade)

  let bucket_upper t i = bucket_lower t (i + 1)

  (* Geometric midpoint: the representative value reported for every
     observation that fell into bucket [i]. *)
  let bucket_mid t i =
    Float.pow 10.0
      ((float_of_int i +. 0.5) /. float_of_int t.buckets_per_decade)

  let observe t v =
    if Float.is_nan v then invalid_arg "Histogram.observe: NaN";
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    if v > 0.0 then begin
      let i = bucket_index t v in
      let c = Option.value (Hashtbl.find_opt t.counts i) ~default:0 in
      Hashtbl.replace t.counts i (c + 1)
    end
    else t.zero_count <- t.zero_count + 1

  let count t = t.total
  let sum t = t.sum
  let min_value t = if t.total = 0 then None else Some t.min_v
  let max_value t = if t.total = 0 then None else Some t.max_v

  let mean t =
    if t.total = 0 then None else Some (t.sum /. float_of_int t.total)

  let buckets t =
    Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let quantile t ~p =
    if p < 0.0 || p > 100.0 then
      invalid_arg "Histogram.quantile: p outside [0, 100]";
    if t.total = 0 then None
    else begin
      let rank =
        Stdlib.max 1
          (int_of_float
             (Float.ceil (p /. 100.0 *. float_of_int t.total)))
      in
      let result =
        if rank <= t.zero_count then 0.0
        else begin
          let remaining = ref (rank - t.zero_count) in
          let answer = ref t.max_v in
          (try
             List.iter
               (fun (i, c) ->
                 remaining := !remaining - c;
                 if !remaining <= 0 then begin
                   answer := bucket_mid t i;
                   raise Exit
                 end)
               (buckets t)
           with Exit -> ());
          !answer
        end
      in
      (* Bucket midpoints can overshoot the true extremes; the exact
         min/max are tracked, so clamp to them. *)
      Some (Float.min t.max_v (Float.max t.min_v result))
    end

  let p50 t = quantile t ~p:50.0
  let p95 t = quantile t ~p:95.0
  let p99 t = quantile t ~p:99.0

  let merge a b =
    if a.buckets_per_decade <> b.buckets_per_decade then
      invalid_arg "Histogram.merge: different buckets_per_decade";
    let m = create ~buckets_per_decade:a.buckets_per_decade () in
    let add_from src =
      List.iter
        (fun (i, c) ->
          let cur = Option.value (Hashtbl.find_opt m.counts i) ~default:0 in
          Hashtbl.replace m.counts i (cur + c))
        (buckets src);
      m.zero_count <- m.zero_count + src.zero_count;
      m.total <- m.total + src.total;
      m.sum <- m.sum +. src.sum;
      if src.total > 0 then begin
        if src.min_v < m.min_v then m.min_v <- src.min_v;
        if src.max_v > m.max_v then m.max_v <- src.max_v
      end
    in
    add_from a;
    add_from b;
    m
end

type gauge = { mutable read : unit -> float }

let gauge_make read = { read }
let gauge_const v = { read = (fun () -> v) }
let gauge_value g = g.read ()
let gauge_set g v = g.read <- (fun () -> v)
