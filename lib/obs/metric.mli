(** Metric instruments: counters, gauges and deterministic histograms.

    Counters are {!Simkit.Series.Counter} values verbatim — the O(1)
    streaming total and last-window rate make them cheap to sample from
    the snapshot timeline. Histograms use logarithmic buckets whose
    index is a pure function of the observed value, so the same
    observations produce byte-identical exports regardless of order. *)

module Counter = Simkit.Series.Counter

module Histogram : sig
  type t

  val create : ?buckets_per_decade:int -> unit -> t
  (** Log-bucketed histogram. [buckets_per_decade] (default 20, i.e.
      ~12% relative bucket width) fixes the bucket geometry; merging
      requires both sides to share it. Raises [Invalid_argument] when
      not positive. *)

  val observe : t -> float -> unit
  (** Record one observation. Values [<= 0] are kept in a dedicated
      underflow bucket (durations of zero happen); NaN raises. *)

  val count : t -> int
  val sum : t -> float

  val mean : t -> float option
  (** [None] when no observations have been recorded — callers never
      have to guard against division by zero. *)

  val min_value : t -> float option
  val max_value : t -> float option

  val quantile : t -> p:float -> float option
  (** Bucket-midpoint quantile estimate, clamped to the exact observed
      [min]/[max]. [None] on an empty histogram; raises
      [Invalid_argument] when [p] is outside [0, 100]. *)

  val p50 : t -> float option
  val p95 : t -> float option
  val p99 : t -> float option

  val merge : t -> t -> t
  (** Combine two histograms into a fresh one by adding bucket counts.
      Associative and commutative; raises [Invalid_argument] on a
      [buckets_per_decade] mismatch. *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(index, count)], sorted by index. Bucket
      [i] covers [10^(i/bpd), 10^((i+1)/bpd)). *)

  val buckets_per_decade : t -> int
  val bucket_lower : t -> int -> float
  val bucket_upper : t -> int -> float
  val bucket_mid : t -> int -> float
end

type gauge
(** A named read-out: either a pull callback over live simulation state
    or a plain stored value. *)

val gauge_make : (unit -> float) -> gauge
val gauge_const : float -> gauge
val gauge_value : gauge -> float

val gauge_set : gauge -> float -> unit
(** Replace the gauge's read-out with a constant. *)
