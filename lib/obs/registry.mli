(** Named metric registry.

    Counters and histograms are get-or-create: asking twice for the
    same name returns the same instrument, which is how metrics from
    successive scenarios in one process accumulate. Gauges read live
    component state and follow last-registration-wins, so a component
    rebuilt by a reboot simply re-registers its read-outs.

    Iteration is always sorted by metric name — exports and timeline
    snapshots are deterministic regardless of registration order. *)

type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.gauge
  | Histogram of Metric.Histogram.t

type t

val create : unit -> t

val counter : t -> ?window:float -> string -> Metric.Counter.t
(** Get or create. Raises [Invalid_argument] if [name] is already
    registered as a different kind of metric. *)

val histogram : t -> ?buckets_per_decade:int -> string -> Metric.Histogram.t

val gauge : t -> string -> (unit -> float) -> unit
(** Register (or replace) a pull gauge reading live state. *)

val set_gauge : t -> string -> float -> unit
(** Store a point value; creates the gauge when missing. *)

val register : t -> string -> metric -> unit
(** Attach an existing instrument (e.g. a histogram owned by a
    component) under [name], replacing any previous registration. *)

val find : t -> string -> metric option
val metrics : t -> (string * metric) list
(** All metrics sorted by name. *)

val cardinality : t -> int

val sample : t -> now:float -> (string * float) list
(** One scalar per instrument for timeline snapshots: counter totals
    and last-window rates, gauge values, histogram counts. Sorted by
    name; [now] is simulation time (for counter rates). *)
