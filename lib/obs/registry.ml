type metric =
  | Counter of Metric.Counter.t
  | Gauge of Metric.gauge
  | Histogram of Metric.Histogram.t

type t = { metrics : (string, metric) Hashtbl.t }

let create () = { metrics = Hashtbl.create 64 }

let kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find t name = Hashtbl.find_opt t.metrics name

let mismatch name ~want got =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %S already registered as a %s, not a %s"
       name (kind got) want)

let counter t ?window name =
  match find t name with
  | Some (Counter c) -> c
  | Some other -> mismatch name ~want:"counter" other
  | None ->
    let c = Metric.Counter.create ?window ~name () in
    Hashtbl.replace t.metrics name (Counter c);
    c

let histogram t ?buckets_per_decade name =
  match find t name with
  | Some (Histogram h) -> h
  | Some other -> mismatch name ~want:"histogram" other
  | None ->
    let h = Metric.Histogram.create ?buckets_per_decade () in
    Hashtbl.replace t.metrics name (Histogram h);
    h

(* Gauges read live component state, so re-registering after a reboot
   replaces the previous component's read-out: last registration wins. *)
let gauge t name read =
  Hashtbl.replace t.metrics name (Gauge (Metric.gauge_make read))

let set_gauge t name v =
  match find t name with
  | Some (Gauge g) -> Metric.gauge_set g v
  | Some other -> mismatch name ~want:"gauge" other
  | None -> Hashtbl.replace t.metrics name (Gauge (Metric.gauge_const v))

let register t name metric = Hashtbl.replace t.metrics name metric

let metrics t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let cardinality t = Hashtbl.length t.metrics

(* One scalar per instrument, suitable for the snapshot timeline:
   counters expose their streaming total plus the last-window rate
   (both O(1) reads), gauges their current value and histograms their
   running count. *)
let sample t ~now =
  List.concat_map
    (fun (name, m) ->
      match m with
      | Counter c ->
        [
          (name ^ ".total", float_of_int (Metric.Counter.total c));
          (name ^ ".rate", Metric.Counter.last_window_rate c ~now);
        ]
      | Gauge g -> [ (name, Metric.gauge_value g) ]
      | Histogram h -> [ (name ^ ".count", float_of_int (Metric.Histogram.count h)) ])
    (metrics t)
