module Metric = Metric
module Registry = Registry
module Timeline = Timeline
module Export = Export

(* The ambient registry is domain-local so parallel sweep workers never
   share (or race on) metric state; each Runner domain observes into
   its own registry. (D004-allowlisted: this is the sanctioned
   Domain.DLS user outside the engine.) *)
let ambient_key : Registry.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Registry.create ()))

let ambient () = !(Domain.DLS.get ambient_key)
let set_ambient r = Domain.DLS.get ambient_key := r

let reset_ambient () =
  let r = Registry.create () in
  set_ambient r;
  r

let with_registry r f =
  let cell = Domain.DLS.get ambient_key in
  let saved = !cell in
  cell := r;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* --- scoped instrumentation over the ambient registry --- *)

let incr ?window ~time name =
  Metric.Counter.record (Registry.counter (ambient ()) ?window name) ~time

let observe ?buckets_per_decade name v =
  Metric.Histogram.observe
    (Registry.histogram (ambient ()) ?buckets_per_decade name)
    v

let gauge name read = Registry.gauge (ambient ()) name read
let set_gauge name v = Registry.set_gauge (ambient ()) name v

let with_counter ~time name f =
  incr ~time name;
  f ()

let with_span trace name f =
  let span = Simkit.Trace.begin_span trace name in
  let engine = Simkit.Trace.engine trace in
  let t0 = Simkit.Engine.now engine in
  Fun.protect
    ~finally:(fun () ->
      Simkit.Trace.end_span trace span;
      observe (name ^ ".span_s") (Simkit.Engine.now engine -. t0))
    f

(* --- engine self-observability --- *)

let instrument_engine ?(prefix = "sim.engine") registry engine =
  Registry.gauge registry (prefix ^ ".events_processed") (fun () ->
      float_of_int (Simkit.Engine.events_processed engine));
  Registry.gauge registry (prefix ^ ".events_scheduled") (fun () ->
      float_of_int (Simkit.Engine.events_scheduled engine));
  Registry.gauge registry (prefix ^ ".queue_depth") (fun () ->
      float_of_int (Simkit.Engine.pending engine));
  Registry.gauge registry (prefix ^ ".now_s") (fun () ->
      Simkit.Engine.now engine);
  (* Event-queue internals: tombstone pressure, compaction passes, and
     the calendar backend's bucket structure (zeros on the heap). *)
  let stat read =
    fun () -> read (Simkit.Engine.queue_stats engine)
  in
  Registry.gauge registry (prefix ^ ".queue.tombstones")
    (stat (fun s -> float_of_int s.Simkit.Engine.qs_tombstones));
  Registry.gauge registry (prefix ^ ".queue.compactions")
    (stat (fun s -> float_of_int s.Simkit.Engine.qs_compactions));
  Registry.gauge registry (prefix ^ ".queue.buckets")
    (stat (fun s -> float_of_int s.Simkit.Engine.qs_buckets));
  Registry.gauge registry (prefix ^ ".queue.bucket_width_s")
    (stat (fun s -> s.Simkit.Engine.qs_bucket_width));
  Registry.gauge registry (prefix ^ ".queue.resizes")
    (stat (fun s -> float_of_int s.Simkit.Engine.qs_resizes))

let instrument_par_engine ?(prefix = "par") registry par =
  (* Protocol health of a partitioned run: how far shard clocks spread
     within the conservative windows, how often workers park, and the
     lookahead that bounds both. Gauges read through [stats], so they
     stay live across successive [Par_engine.run] calls. *)
  let stat read = fun () -> read (Simkit.Par_engine.stats par) in
  Registry.gauge registry (prefix ^ ".shards")
    (stat (fun s -> float_of_int s.Simkit.Par_engine.par_shards));
  Registry.gauge registry (prefix ^ ".shard_clock_skew_s")
    (stat (fun s -> s.Simkit.Par_engine.par_max_skew_s));
  Registry.gauge registry (prefix ^ ".barrier_waits")
    (stat (fun s -> float_of_int s.Simkit.Par_engine.par_barrier_waits));
  Registry.gauge registry (prefix ^ ".lookahead_s")
    (stat (fun s ->
         let la = s.Simkit.Par_engine.par_min_lookahead_s in
         if Float.is_finite la then la else 0.0));
  Registry.gauge registry (prefix ^ ".rounds")
    (stat (fun s -> float_of_int s.Simkit.Par_engine.par_rounds));
  Registry.gauge registry (prefix ^ ".quantum_ticks")
    (stat (fun s -> float_of_int s.Simkit.Par_engine.par_quantum_ticks));
  Registry.gauge registry (prefix ^ ".messages")
    (stat (fun s -> float_of_int s.Simkit.Par_engine.par_messages))
