(** Observability plane: metric registry, snapshot timeline, exporters
    and a scoped instrumentation API.

    Layers above simkit register gauges/counters/histograms into a
    {!Registry.t}; exporters render it as JSON, CSV or Prometheus text.
    All sampling happens on the simulation clock, and all iteration is
    name-sorted, so a seeded run exports byte-identical metrics.

    An {e ambient} registry (one per domain, so parallel sweep workers
    never share metric state) backs the scoped helpers below; scenario
    construction instruments into it by default. *)

module Metric = Metric
module Registry = Registry
module Timeline = Timeline
module Export = Export

val ambient : unit -> Registry.t
(** This domain's current ambient registry. *)

val set_ambient : Registry.t -> unit

val reset_ambient : unit -> Registry.t
(** Install and return a fresh ambient registry — e.g. before a run
    whose metrics should not include earlier runs. *)

val with_registry : Registry.t -> (unit -> 'a) -> 'a
(** Run [f] with [r] as the ambient registry, restoring the previous
    one afterwards (also on exceptions). *)

(** {1 Scoped helpers (ambient registry)} *)

val incr : ?window:float -> time:float -> string -> unit
(** Bump the named ambient counter at simulation time [time]. *)

val observe : ?buckets_per_decade:int -> string -> float -> unit
(** Record a value into the named ambient histogram. *)

val gauge : string -> (unit -> float) -> unit
val set_gauge : string -> float -> unit

val with_counter : time:float -> string -> (unit -> 'a) -> 'a
(** Count an invocation, then run it. *)

val with_span : Simkit.Trace.t -> string -> (unit -> 'a) -> 'a
(** Compose tracing with metrics: opens a trace span, runs [f], closes
    the span and records its simulated duration into the ambient
    histogram [name ^ ".span_s"]. The span closes even if [f] raises.
    Note the duration is simulated time elapsed {e during} [f] — for
    direct-style work (exports, analysis steps), not for intervals that
    end inside a later engine callback. *)

(** {1 Engine self-observability} *)

val instrument_engine : ?prefix:string -> Registry.t -> Simkit.Engine.t -> unit
(** Register pull gauges over the engine's own counters and event-queue
    internals — [queue.tombstones], [queue.compactions], and the
    calendar backend's [queue.buckets] / [queue.bucket_width_s] /
    [queue.resizes] — as well as the long-standing counters (events
    processed / scheduled, queue depth, clock) under [prefix] (default
    ["sim.engine"]). *)

val instrument_par_engine :
  ?prefix:string -> Registry.t -> Simkit.Par_engine.t -> unit
(** Register pull gauges over a partitioned run's protocol counters
    under [prefix] (default ["par"]): [shards], [shard_clock_skew_s]
    (max inter-shard clock spread observed at barriers),
    [barrier_waits] (worker parks), [lookahead_s] (minimum registered
    lookahead; 0 when nothing is connected), [rounds], [quantum_ticks]
    and [messages]. *)
