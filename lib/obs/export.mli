(** Exporters: render a registry (and optionally a timeline) to a
    string. Nothing here prints — callers decide where bytes go.

    Output is deterministic: metrics are sorted by name and floats use
    the fixed {!Simkit.Jsonx} representation, so a seeded run exports
    byte-identically every time. Empty histograms render their
    statistics as JSON nulls / empty CSV cells (via the total
    [Stat.*_opt] variants) instead of raising. *)

type format = Json | Csv | Prom

val format_enum : format Simkit.Enum.t
(** ["json"], ["csv"], ["prom"] (alias ["prometheus"]). *)

val format_of_string : string -> (format, [> `Msg of string ]) result
(** {!Simkit.Enum.of_string} on {!format_enum}; the [`Msg] error is
    CLI-ready, matching every other enum parser in the tree. *)

val extension : format -> string

val to_json : ?timeline:Timeline.t -> now:float -> Registry.t -> string
(** Schema ["roothammer-obs/1"]: a [metrics] object keyed by name plus,
    when a timeline is given, its snapshots and per-metric summary
    statistics. [now] is the simulation time of the export (counter
    rates are relative to it). *)

val to_csv : now:float -> Registry.t -> string
(** Long-form [metric,type,field,value] rows. The timeline is only
    carried by the JSON export. *)

val to_prometheus : now:float -> Registry.t -> string
(** Prometheus text exposition format; metric names are prefixed with
    [roothammer_] and sanitised. *)

val render : format -> ?timeline:Timeline.t -> now:float -> Registry.t -> string
