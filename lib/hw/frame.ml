type extent = { first : int; count : int }

type t = {
  total : int;
  mutable free_list : extent list; (* sorted by [first], coalesced *)
  mutable free_count : int;
}

let pp_extent ppf { first; count } =
  Format.fprintf ppf "[%#x..%#x)" first (first + count)

let extent_bytes { count; _ } = count * Simkit.Units.page_bytes

let extents_bytes extents =
  List.fold_left (fun acc e -> acc + extent_bytes e) 0 extents

let extents_frames extents =
  List.fold_left (fun acc e -> acc + e.count) 0 extents

let create ~total_frames =
  if total_frames <= 0 then invalid_arg "Frame.create: total_frames <= 0";
  {
    total = total_frames;
    free_list = [ { first = 0; count = total_frames } ];
    free_count = total_frames;
  }

let of_bytes ~total_bytes =
  create ~total_frames:(Simkit.Units.pages_of_bytes total_bytes)

let total_frames t = t.total
let free_frames t = t.free_count
let used_frames t = t.total - t.free_count
let free_bytes t = t.free_count * Simkit.Units.page_bytes
let used_bytes t = used_frames t * Simkit.Units.page_bytes

let alloc t ~frames =
  if frames <= 0 then invalid_arg "Frame.alloc: frames <= 0";
  if frames > t.free_count then None
  else begin
    let rec take needed acc = function
      | [] ->
        (* free_count guaranteed enough frames exist *)
        assert false
      | e :: rest ->
        if e.count <= needed then
          if e.count = needed then (List.rev (e :: acc), rest)
          else take (needed - e.count) (e :: acc) rest
        else
          let taken = { first = e.first; count = needed } in
          let left = { first = e.first + needed; count = e.count - needed } in
          (List.rev (taken :: acc), left :: rest)
    in
    let allocated, remaining = take frames [] t.free_list in
    t.free_list <- remaining;
    t.free_count <- t.free_count - frames;
    Some allocated
  end

let alloc_bytes t ~bytes =
  alloc t ~frames:(Simkit.Units.pages_of_bytes bytes)

(* Insert one extent into the sorted free list, coalescing with
   neighbours; fails on any overlap (double free). *)
let insert_free t e =
  if e.first < 0 || e.first + e.count > t.total then
    invalid_arg "Frame.free: extent out of range";
  let rec go = function
    | [] -> [ e ]
    | cur :: rest ->
      if e.first + e.count < cur.first then e :: cur :: rest
      else if e.first + e.count = cur.first then
        { first = e.first; count = e.count + cur.count } :: rest
      else if cur.first + cur.count < e.first then cur :: go rest
      else if cur.first + cur.count = e.first then begin
        (* coalesce left, may further coalesce right *)
        match rest with
        | next :: rest' when e.first + e.count = next.first ->
          { first = cur.first; count = cur.count + e.count + next.count }
          :: rest'
        | _ -> { first = cur.first; count = cur.count + e.count } :: rest
      end
      else invalid_arg "Frame.free: frame already free (double free?)"
  in
  t.free_list <- go t.free_list;
  t.free_count <- t.free_count + e.count

let free t extents =
  List.iter
    (fun e ->
      if e.count <= 0 then invalid_arg "Frame.free: empty extent";
      insert_free t e)
    extents

let reserve t e =
  if e.count <= 0 then Error "Frame.reserve: empty extent"
  else if e.first < 0 || e.first + e.count > t.total then
    Error
      (Format.asprintf "Frame.reserve: %a out of range" pp_extent e)
  else begin
    (* Find the free extent fully containing [e]. The free list is
       sorted and coalesced, so the only candidate is the last extent
       starting at or before [e.first]: once [cur.first] passes it we
       can fail without walking the rest, and an extent that contains
       [e.first] but ends short cannot be continued by a neighbour. *)
    let not_free =
      Error (Format.asprintf "Frame.reserve: %a not entirely free" pp_extent e)
    in
    let rec go acc = function
      | [] -> not_free
      | cur :: rest ->
        if cur.first > e.first then not_free
        else if cur.first + cur.count <= e.first then go (cur :: acc) rest
        else if e.first + e.count <= cur.first + cur.count then begin
          let before =
            if cur.first < e.first then
              [ { first = cur.first; count = e.first - cur.first } ]
            else []
          in
          let after_first = e.first + e.count in
          let after =
            if after_first < cur.first + cur.count then
              [ { first = after_first;
                  count = cur.first + cur.count - after_first } ]
            else []
          in
          t.free_list <- List.rev_append acc (before @ after @ rest);
          t.free_count <- t.free_count - e.count;
          Ok ()
        end
        else not_free
    in
    go [] t.free_list
  end

(* The free list is sorted by [first], so stop as soon as an extent
   starts past [mfn] instead of scanning every extent. *)
let rec free_in_sorted mfn = function
  | [] -> false
  | e :: rest ->
    if mfn < e.first then false
    else mfn < e.first + e.count || free_in_sorted mfn rest

let is_free t ~mfn = free_in_sorted mfn t.free_list

let check_invariants t =
  let rec go count = function
    | [] ->
      if count <> t.free_count then
        Error
          (Printf.sprintf "free_count mismatch: recorded %d, actual %d"
             t.free_count count)
      else Ok ()
    | e :: rest ->
      if e.count <= 0 then Error "empty extent in free list"
      else if e.first < 0 || e.first + e.count > t.total then
        Error "extent out of range"
      else begin
        match rest with
        | next :: _ when e.first + e.count >= next.first ->
          Error "free list not sorted/coalesced"
        | _ -> go (count + e.count) rest
      end
  in
  go 0 t.free_list
