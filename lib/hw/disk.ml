type t = {
  disk_name : string;
  spindle : Simkit.Resource.t;
  read_bytes_per_s : float;
  write_bytes_per_s : float;
  seek_s : float;
  random_penalty : float;
  capacity : int;
  mutable used : int;
  mutable total_read : int;
  mutable total_written : int;
  mutable fault_plan : Simkit.Fault.Plan.t option;
}

let mib = 1048576.0

let create engine ?(name = "disk0") ~read_mib_per_s ~write_mib_per_s ~seek_ms
    ?(random_penalty = 1.5) ?(capacity_bytes = 36_700_000_000) () =
  if read_mib_per_s <= 0.0 || write_mib_per_s <= 0.0 then
    invalid_arg "Disk.create: non-positive bandwidth";
  if capacity_bytes <= 0 then invalid_arg "Disk.create: non-positive capacity";
  {
    disk_name = name;
    (* Capacity 1.0: the resource serves one "disk second" per second. *)
    spindle = Simkit.Resource.create engine ~name ~capacity:1.0;
    read_bytes_per_s = read_mib_per_s *. mib;
    write_bytes_per_s = write_mib_per_s *. mib;
    seek_s = seek_ms /. 1000.0;
    random_penalty;
    capacity = capacity_bytes;
    used = 0;
    total_read = 0;
    total_written = 0;
    fault_plan = None;
  }

let name t = t.disk_name

let set_fault_plan t plan = t.fault_plan <- plan

let injected t ~site =
  match t.fault_plan with
  | None -> false
  | Some plan -> Simkit.Fault.Plan.fires plan ~site

let transfer_work t ~bytes ~rate ~random ~ops =
  (* A transfer loses sequentiality either because the access pattern is
     random or because other streams are interleaved on the spindle. *)
  let interleaved = Simkit.Resource.active_jobs t.spindle > 0 in
  let penalty = if random || interleaved then t.random_penalty else 1.0 in
  (float_of_int bytes *. penalty /. rate) +. (float_of_int ops *. t.seek_s)

let read t ~bytes ?(random = false) ?(ops = 1) k =
  if bytes < 0 then invalid_arg "Disk.read: negative size";
  let work =
    transfer_work t ~bytes ~rate:t.read_bytes_per_s ~random ~ops
  in
  t.total_read <- t.total_read + bytes;
  ignore (Simkit.Resource.submit t.spindle ~work k)

let write t ~bytes ?(random = false) ?(ops = 1) k =
  if bytes < 0 then invalid_arg "Disk.write: negative size";
  let work =
    transfer_work t ~bytes ~rate:t.write_bytes_per_s ~random ~ops
  in
  t.total_written <- t.total_written + bytes;
  ignore (Simkit.Resource.submit t.spindle ~work k)

let sequential_read_time t ~bytes =
  transfer_work t ~bytes ~rate:t.read_bytes_per_s ~random:false ~ops:1

let sequential_write_time t ~bytes =
  transfer_work t ~bytes ~rate:t.write_bytes_per_s ~random:false ~ops:1

let busy_time t = Simkit.Resource.busy_time t.spindle
let bytes_read t = t.total_read
let bytes_written t = t.total_written

let capacity_bytes t = t.capacity
let space_used_bytes t = t.used
let space_free_bytes t = t.capacity - t.used

let allocate_space t ~bytes =
  if bytes < 0 then invalid_arg "Disk.allocate_space: negative size";
  if injected t ~site:"disk.write" then Error `Disk_full
  else if bytes > space_free_bytes t then Error `Disk_full
  else begin
    t.used <- t.used + bytes;
    Ok ()
  end

let release_space t ~bytes =
  if bytes < 0 || bytes > t.used then
    invalid_arg "Disk.release_space: bad size";
  t.used <- t.used - bytes

let queue_depth t = Simkit.Resource.active_jobs t.spindle

let observe ?(prefix = "hw.disk") reg t =
  let g field read =
    Obs.Registry.gauge reg
      (prefix ^ "." ^ t.disk_name ^ "." ^ field)
      read
  in
  g "bytes_read" (fun () -> float_of_int t.total_read);
  g "bytes_written" (fun () -> float_of_int t.total_written);
  g "busy_s" (fun () -> busy_time t);
  g "queue_depth" (fun () -> float_of_int (queue_depth t));
  g "space_used_bytes" (fun () -> float_of_int t.used)
