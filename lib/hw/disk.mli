(** Disk device model.

    A single-spindle disk (the paper's 36.7 GB 15 krpm Ultra-320 SCSI
    drive) modelled as one processor-sharing resource whose unit of work
    is "disk seconds": a transfer of [b] bytes costs [b / rate + seek]
    disk seconds, and concurrent transfers share the spindle. This is
    what makes saving eleven 1 GiB memory images in parallel take the
    paper's ~200 seconds. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  read_mib_per_s:float ->
  write_mib_per_s:float ->
  seek_ms:float ->
  ?random_penalty:float ->
  ?capacity_bytes:int ->
  unit ->
  t
(** [random_penalty] divides throughput for transfers that lose
    sequentiality — random access patterns, or streams submitted while
    the spindle is already busy (interleaving); default 1.5.
    [capacity_bytes] defaults to 36.7 GB (the paper's SCSI drive). *)

val name : t -> string

val set_fault_plan : t -> Simkit.Fault.Plan.t option -> unit
(** Attach (or detach) the scenario's fault-injection plan. When the
    plan's ["disk.write"] site fires, {!allocate_space} reports
    [`Disk_full] even though physical space remains. *)

val read :
  t -> bytes:int -> ?random:bool -> ?ops:int -> (unit -> unit) -> unit
(** Read [bytes]; the continuation fires when the transfer completes.
    [ops] is the number of distinct requests (seeks) involved,
    default 1. [random] applies the random-access penalty. *)

val write :
  t -> bytes:int -> ?random:bool -> ?ops:int -> (unit -> unit) -> unit

val sequential_read_time : t -> bytes:int -> float
(** Uncontended duration of a sequential read — for analytic checks. *)

val sequential_write_time : t -> bytes:int -> float

val busy_time : t -> float
(** Total time the spindle has been busy. *)

val bytes_read : t -> int
val bytes_written : t -> int

(** {1 Space accounting} — persistent objects (e.g. saved VM images)
    occupying the drive. *)

val capacity_bytes : t -> int
val space_used_bytes : t -> int
val space_free_bytes : t -> int

val allocate_space : t -> bytes:int -> (unit, [ `Disk_full ]) result
(** Claim space before writing a persistent object; fails without side
    effects when the drive cannot hold it. *)

val release_space : t -> bytes:int -> unit
(** Give space back (object deleted / image consumed by a restore).
    Raises [Invalid_argument] when releasing more than is used. *)

(** {1 Observability} *)

val queue_depth : t -> int
(** Transfers currently queued or in flight on the spindle. *)

val observe : ?prefix:string -> Obs.Registry.t -> t -> unit
(** Register pull gauges (bytes read/written, busy seconds, queue
    depth, space used) under ["<prefix>.<disk name>."] (default prefix
    ["hw.disk"]). *)
