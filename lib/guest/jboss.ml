let spec =
  {
    Service.service_name = "jboss";
    start_shared_work = 7.0;
    start_private_s = 9.5;
    stop_private_s = 4.0;
  }

let install kernel = Kernel.make_service kernel spec

(* Aggregate service view for the fluid traffic model. The simulator
   has no per-request JBoss path, so the fluid queue runs against a
   nominal CPU-bound service time — enough for capacity planning in
   fleet scenarios without inventing a request model the paper never
   measures. *)
let nominal_service_time_s = 0.02

let fluid_server kernel svc =
  let reachable () = Kernel.service_reachable kernel svc in
  {
    Netsim.Fluid.srv_is_up = reachable;
    srv_capacity_rps =
      (fun () -> if reachable () then 1.0 /. nominal_service_time_s else 0.0);
    srv_service_time_s = (fun () -> nominal_service_time_s);
  }
