let spec =
  {
    Service.service_name = "httpd";
    start_shared_work = 0.2;
    start_private_s = 0.5;
    stop_private_s = 0.5;
  }

type t = {
  kernel : Kernel.t;
  svc : Service.t;
  nic : Hw.Nic.t;
  engine : Simkit.Engine.t;
  response_overhead_s : float;
  mutable docs : Filesystem.file array;
  mutable served : int;
}

let install kernel ~nic ?(response_overhead_s = 0.0005) () =
  let svc = Kernel.make_service kernel spec in
  {
    kernel;
    svc;
    nic;
    engine = Kernel.engine kernel;
    response_overhead_s;
    docs = [||];
    served = 0;
  }

let service t = t.svc

let populate t ~file_count ~file_bytes =
  let fs = Kernel.filesystem t.kernel in
  let files =
    List.init file_count (fun i ->
        Filesystem.create_file fs
          ~name:(Printf.sprintf "doc-%05d.html" i)
          ~bytes:file_bytes ())
  in
  t.docs <- Array.of_list files;
  files

let documents t = Array.to_list t.docs

let warm_all t =
  let fs = Kernel.filesystem t.kernel in
  Array.iter (fun f -> Filesystem.warm_file fs f) t.docs

(* While a streamed restore is still faulting cold pages in, every
   request pays the current page-fault tax: the chance of touching an
   unfaulted page times one disk fault. Zero (and event-free) once the
   working set is fully resident — and always when memdyn is off. *)
let fault_tax_s t =
  match Xenvmm.Domain.mem_stream (Kernel.domain t.kernel) with
  | Some s -> Mem.Stream.fault_tax_s s
  | None -> 0.0

let handle_request t ?file ~rng k =
  if not (Kernel.service_reachable t.kernel t.svc) then k false
  else if Array.length t.docs = 0 && file = None then k false
  else begin
    let f =
      match file with
      | Some f -> f
      | None -> t.docs.(Simkit.Rng.int rng (Array.length t.docs))
    in
    let fs = Kernel.filesystem t.kernel in
    let serve () =
      Filesystem.read fs f ~access:Filesystem.Random (fun () ->
          Simkit.Process.delay t.engine t.response_overhead_s (fun () ->
              Hw.Nic.transfer t.nic ~bytes:(Filesystem.file_bytes f)
                (fun () ->
                  t.served <- t.served + 1;
                  k true)))
    in
    let tax = fault_tax_s t in
    if tax > 0.0 then Simkit.Process.delay t.engine tax serve else serve ()
  end

let requests_served t = t.served

(* --- aggregate service view (fluid traffic model) ------------------------ *)

let mean_doc_bytes t =
  let n = Array.length t.docs in
  if n = 0 then 0.0
  else
    Array.fold_left
      (fun acc f -> acc +. float_of_int (Filesystem.file_bytes f))
      0.0 t.docs
    /. float_of_int n

let service_time_s t =
  (* No-contention cost of one request: the current page-fault tax, the
     document read (cache-hit fraction at memory speed, the rest from
     disk — read live, so a cold post-reboot cache shows up), the
     per-request server CPU, and the NIC transfer at the NIC's current
     (possibly degraded) rate. The document tree is uniform, so the
     first document is representative. *)
  if Array.length t.docs = 0 then fault_tax_s t +. t.response_overhead_s
  else begin
    let fs = Kernel.filesystem t.kernel in
    let doc = t.docs.(0) in
    let frac = Filesystem.cached_fraction fs doc in
    let read =
      (frac *. Filesystem.cached_read_time fs doc)
      +. ((1.0 -. frac) *. Filesystem.uncached_read_time fs doc)
    in
    let transfer =
      Hw.Nic.transfer_time t.nic ~bytes:(Filesystem.file_bytes doc)
    in
    fault_tax_s t +. read +. t.response_overhead_s +. transfer
  end

let capacity_rps t =
  if not (Kernel.service_reachable t.kernel t.svc) then 0.0
  else begin
    let bytes = mean_doc_bytes t in
    (* The wire serialises responses, so the NIC bounds saturation
       throughput; per-request CPU bounds it when documents are tiny. *)
    let nic_bound =
      if bytes <= 0.0 then infinity
      else Hw.Nic.effective_bytes_per_s t.nic /. bytes
    in
    let cpu_bound =
      if t.response_overhead_s <= 0.0 then infinity
      else 1.0 /. t.response_overhead_s
    in
    let cap = Float.min nic_bound cpu_bound in
    if Float.is_finite cap then cap else 0.0
  end

let fluid_server t =
  {
    Netsim.Fluid.srv_is_up =
      (fun () -> Kernel.service_reachable t.kernel t.svc);
    srv_capacity_rps = (fun () -> capacity_rps t);
    srv_service_time_s = (fun () -> service_time_s t);
  }
