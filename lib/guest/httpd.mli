(** Apache HTTP server model.

    Serves files from the guest filesystem through the page cache and
    ships responses over the host NIC. When every requested file is
    resident the server is network-bound; right after a cold reboot the
    cache is empty and every request pays a scattered disk read — the
    69 % throughput drop of Figure 8b. *)

val spec : Service.spec

type t

val install :
  Kernel.t -> nic:Hw.Nic.t -> ?response_overhead_s:float -> unit -> t
(** Create an Apache instance on the kernel, registered as a service.
    [response_overhead_s] models per-request server CPU (default
    0.5 ms). *)

val service : t -> Service.t

val populate :
  t -> file_count:int -> file_bytes:int -> Filesystem.file list
(** Create the document tree ("10,000 files of 512 KB"). *)

val documents : t -> Filesystem.file list

val warm_all : t -> unit
(** Preload every document into the page cache. *)

val handle_request :
  t -> ?file:Filesystem.file -> rng:Simkit.Rng.t -> (bool -> unit) -> unit
(** Serve one request for [file] (default: uniformly random document).
    The continuation receives [false] immediately when the server is
    unreachable (VM suspended / service down / no documents), [true]
    when the response has fully left the NIC. *)

val requests_served : t -> int

(** {1 Aggregate service view}

    The fluid traffic model ({!Netsim.Fluid}) needs the server as three
    scalars rather than a per-request callback. All readers are
    draw-free and track live state — reboots, streamed-restore fault
    tax, NIC degradation — through the same components
    {!handle_request} uses. *)

val mean_doc_bytes : t -> float
(** Mean document size over the populated tree; 0 before {!populate}. *)

val service_time_s : t -> float
(** No-contention service time of one request: current fault tax +
    document read (cache-hit fraction at memory speed, the rest at
    disk speed) + per-request CPU + NIC transfer at the current
    effective rate. Reads live state, so it tracks a cold post-reboot
    cache and streamed-restore fault tax. *)

val capacity_rps : t -> float
(** Saturation throughput: min of the NIC bound
    (effective bytes/s over mean document size) and the CPU bound
    (1 / response overhead); 0 while the service is unreachable or
    nothing is populated. *)

val fluid_server : t -> Netsim.Fluid.server
(** Package the three readers as a {!Netsim.Fluid.server}. *)
