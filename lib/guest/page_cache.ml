(* LRU cache over (file, block) keys: a hash index into an intrusive
   doubly-linked list ordered most-recently-used first. *)

type key = { file : int; block : int }

type node = {
  nkey : key;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutable capacity : int;
  block_size : int;
  index : (key, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity_bytes ?(block_bytes = Simkit.Units.page_bytes) () =
  if capacity_bytes < 0 then invalid_arg "Page_cache.create: negative capacity";
  if block_bytes <= 0 then invalid_arg "Page_cache.create: block_bytes <= 0";
  {
    capacity = capacity_bytes / block_bytes;
    block_size = block_bytes;
    index = Hashtbl.create 1024;
    head = None;
    tail = None;
    count = 0;
    hit_count = 0;
    miss_count = 0;
  }

let capacity_bytes t = t.capacity * t.block_size
let block_bytes t = t.block_size
let used_bytes t = t.count * t.block_size
let resident_blocks t = t.count
let hits t = t.hit_count
let misses t = t.miss_count

let hit_ratio t =
  let lookups = t.hit_count + t.miss_count in
  if lookups = 0 then 1.0
  else float_of_int t.hit_count /. float_of_int lookups

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let mem t ~file ~block = Hashtbl.mem t.index { file; block }

let touch t ~file ~block =
  match Hashtbl.find_opt t.index { file; block } with
  | Some node ->
    t.hit_count <- t.hit_count + 1;
    unlink t node;
    push_front t node;
    true
  | None ->
    t.miss_count <- t.miss_count + 1;
    false

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.index node.nkey;
    t.count <- t.count - 1

let insert t ~file ~block =
  if t.capacity = 0 then ()
  else
    let k = { file; block } in
    match Hashtbl.find_opt t.index k with
    | Some node ->
      unlink t node;
      push_front t node
    | None ->
      if t.count >= t.capacity then evict_lru t;
      let node = { nkey = k; prev = None; next = None } in
      Hashtbl.replace t.index k node;
      push_front t node;
      t.count <- t.count + 1

let resize t ~capacity_bytes =
  if capacity_bytes < 0 then invalid_arg "Page_cache.resize: negative capacity";
  t.capacity <- capacity_bytes / t.block_size;
  while t.count > t.capacity do
    evict_lru t
  done

let invalidate_file t ~file =
  let doomed =
    Hashtbl.fold (* simlint: allow D003 doubly-linked-list unlinks commute *)
      (fun k node acc -> if k.file = file then node :: acc else acc)
      t.index []
  in
  List.iter
    (fun node ->
      unlink t node;
      Hashtbl.remove t.index node.nkey;
      t.count <- t.count - 1)
    doomed

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.count <- 0;
  t.hit_count <- 0;
  t.miss_count <- 0

let resident_blocks_of t ~file =
  Hashtbl.fold (fun k _ acc -> if k.file = file then acc + 1 else acc) t.index 0

(* Getter-based for the same reason as [Vmm_heap.observe]: a cold
   reboot re-outfits the kernel with a fresh cache, and gauges should
   keep reading the live one. *)
let observe ?(prefix = "guest.page_cache") reg get =
  let g field read = Obs.Registry.gauge reg (prefix ^ "." ^ field) read in
  g "hits" (fun () -> float_of_int (hits (get ())));
  g "misses" (fun () -> float_of_int (misses (get ())));
  g "hit_ratio" (fun () -> hit_ratio (get ()));
  g "resident_bytes" (fun () -> float_of_int (used_bytes (get ())))

let check_invariants t =
  (* Walk the list forward, checking linkage and membership. *)
  let rec walk seen node =
    match node with
    | None -> Ok seen
    | Some n ->
      if not (Hashtbl.mem t.index n.nkey) then Error "list node not in index"
      else begin
        let back_link_ok =
          match n.next with
          | Some nx -> (match nx.prev with Some p -> p == n | None -> false)
          | None -> true
        in
        if not back_link_ok then Error "broken back-link"
        else walk (seen + 1) n.next
      end
  in
  match walk 0 t.head with
  | Error _ as e -> e
  | Ok seen ->
    if seen <> t.count then Error "list length <> count"
    else if Hashtbl.length t.index <> t.count then Error "index size <> count"
    else if t.count > t.capacity && t.capacity > 0 then Error "over capacity"
    else Ok ()
