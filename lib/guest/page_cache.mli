(** Guest file cache (page cache) with LRU replacement.

    An operating system keeps file contents in free memory; losing this
    cache is exactly why the paper's cold-VM reboot degrades throughput
    by 91 % (file reads) and 69 % (web serving) right after the reboot.
    The cache object survives on-memory suspend/resume — its contents
    are part of the preserved memory image — and is cleared by an OS
    boot. *)

type t

val create : capacity_bytes:int -> ?block_bytes:int -> unit -> t
(** [block_bytes] defaults to the 4 KiB page size. *)

val capacity_bytes : t -> int
val block_bytes : t -> int
val used_bytes : t -> int
val resident_blocks : t -> int

val mem : t -> file:int -> block:int -> bool
(** Presence test without promoting the entry or counting a hit. *)

val touch : t -> file:int -> block:int -> bool
(** Look a block up for a read: on hit, promote to most-recently-used
    and count a hit; on miss count a miss. *)

val insert : t -> file:int -> block:int -> unit
(** Add a block (after reading it from disk), evicting least-recently-
    used blocks if the cache is full. Re-inserting promotes. *)

val invalidate_file : t -> file:int -> unit
(** Drop every block of one file (truncate/unlink). *)

val clear : t -> unit
(** Drop everything and reset the counters — an OS reboot. *)

val resize : t -> capacity_bytes:int -> unit
(** Change the cache's capacity — what the balloon driver does to the
    page cache when the VM's memory is inflated or deflated. Shrinking
    evicts least-recently-used blocks immediately. *)

val hits : t -> int
val misses : t -> int

val hit_ratio : t -> float
(** Hits / lookups, 1.0 when no lookups were made. *)

val resident_blocks_of : t -> file:int -> int

val check_invariants : t -> (unit, string) result
(** LRU list and index agree; size within capacity. For tests. *)

val observe : ?prefix:string -> Obs.Registry.t -> (unit -> t) -> unit
(** Register pull gauges (hits, misses, hit ratio, resident bytes)
    under [prefix] (default ["guest.page_cache"]). The cache is fetched
    through the getter on every read, so gauges follow a cache replaced
    by a cold reboot. *)
