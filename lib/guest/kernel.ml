module Domain = Xenvmm.Domain
module Vmm = Xenvmm.Vmm

type timing = {
  boot_shared_work : float;
  boot_private_s : float;
  shutdown_shared_work : float;
  shutdown_private_s : float;
  suspend_handler_s : float;
  resume_handler_s : float;
  cache_fraction : float;
}

let default_timing =
  {
    boot_shared_work = 3.4;
    boot_private_s = 2.8;
    shutdown_shared_work = 0.4;
    shutdown_private_s = 10.2;
    suspend_handler_s = 0.03;
    resume_handler_s = 0.2;
    cache_fraction = 0.85;
  }

type t = {
  mutable vmm : Vmm.t;
  mutable dom : Domain.t;
  ktiming : timing;
  fs : Filesystem.t;
  pcache : Page_cache.t;
  mutable svc_list : Service.t list;
  mutable frozen_services : Service.t list;
  mutable ring_grants : Xenvmm.Grant_table.grant_ref list;
}

let engine t = Vmm.engine t.vmm
let cpu t = (Vmm.host t.vmm).Hw.Host.cpu

(* Boot/shutdown CPU work goes through the credit scheduler on behalf
   of this kernel's domain, so per-domain weights and caps apply. The
   work constants are per unit of aggregate capacity; scaling by the
   CPU count keeps the calibrated boot(n) = 3.4 n + 2.8 under default
   (equal) weights. *)
let scheduled_work t ~work k =
  let sched = Vmm.scheduler t.vmm in
  let scaled = work *. float_of_int (Xenvmm.Scheduler.physical_cpus sched) in
  Xenvmm.Scheduler.run_work sched ~domid:(Domain.id t.dom) ~work:scaled k

(* Split-driver I/O rings: the frontend grants ring pages to dom0's
   backend, which maps them. Device detach (suspend/shutdown) must tear
   this sharing down — a domain with foreign mappings of its pages
   cannot be frozen. *)
let establish_io_rings t =
  let g = Vmm.grants t.vmm in
  match Vmm.dom0 t.vmm with
  | Some dom0 when Domain.id dom0 <> Domain.id t.dom ->
    t.ring_grants <-
      List.init 4 (fun pfn ->
          let r =
            Xenvmm.Grant_table.grant g ~owner:(Domain.id t.dom)
              ~grantee:(Domain.id dom0) ~pfn ()
          in
          (match Xenvmm.Grant_table.map g r ~by:(Domain.id dom0) with
          | Ok () -> ()
          | Error e ->
            Simkit.Fault.fail
              (Simkit.Fault.Invariant
                 (Xenvmm.Grant_table.error_message e)));
          r)
  | Some _ | None -> ()

let teardown_io_rings t =
  Xenvmm.Grant_table.release_domain (Vmm.grants t.vmm) (Domain.id t.dom);
  t.ring_grants <- []

(* The guest binds an event-channel port through which the VMM delivers
   suspend requests (the "suspend event" of Section 4.2). *)
let bind_suspend_port t =
  let ec = Vmm.channels t.vmm in
  let port = Xenvmm.Event_channel.alloc_unbound ec ~domid:(Domain.id t.dom) in
  Xenvmm.Event_channel.bind ec port ~handler:(fun () -> ());
  Domain.set_suspend_port t.dom (Some port)

let install_handlers t =
  Domain.set_suspend_handler t.dom (fun k ->
      (* Freeze the services: from the network they are down, but they
         will come back without a restart. *)
      t.frozen_services <- List.filter Service.is_up t.svc_list;
      List.iter Service.kill t.frozen_services;
      teardown_io_rings t;
      Simkit.Process.delay (engine t) t.ktiming.suspend_handler_s k);
  Domain.set_resume_handler t.dom (fun k ->
      Simkit.Process.delay (engine t) t.ktiming.resume_handler_s (fun () ->
          establish_io_rings t;
          bind_suspend_port t;
          List.iter Service.force_up t.frozen_services;
          t.frozen_services <- [];
          k ()))

let create vmm dom ?(timing = default_timing) () =
  let host = Vmm.host vmm in
  let cache_bytes =
    int_of_float (timing.cache_fraction *. float_of_int (Domain.mem_bytes dom))
  in
  let pcache = Page_cache.create ~capacity_bytes:cache_bytes () in
  let fs =
    Filesystem.create host.Hw.Host.engine ~disk:host.Hw.Host.disk
      ~cache:pcache ()
  in
  let t =
    {
      vmm;
      dom;
      ktiming = timing;
      fs;
      pcache;
      svc_list = [];
      frozen_services = [];
      ring_grants = [];
    }
  in
  install_handlers t;
  t

let domain t = t.dom
let filesystem t = t.fs

let rebind t vmm dom =
  t.vmm <- vmm;
  t.dom <- dom;
  install_handlers t
let page_cache t = t.pcache
let timing t = t.ktiming

let add_service t s = t.svc_list <- t.svc_list @ [ s ]
let services t = t.svc_list

let make_service t spec =
  let s = Service.create (engine t) ~cpu:(cpu t) spec in
  add_service t s;
  s

let boot t k =
  Domain.set_state t.dom Domain.Booting;
  scheduled_work t ~work:t.ktiming.boot_shared_work (fun () ->
      Simkit.Process.delay (engine t) t.ktiming.boot_private_s (fun () ->
          (* Fresh memory: the file cache built up before the reboot is
             gone. *)
          Page_cache.clear t.pcache;
          Domain.set_state t.dom Domain.Running;
          establish_io_rings t;
          bind_suspend_port t;
          Simkit.Process.seq (List.map Service.start t.svc_list) k))

let shutdown t k =
  Domain.set_state t.dom Domain.Shutting_down;
  teardown_io_rings t;
  Simkit.Process.seq (List.map Service.stop t.svc_list) (fun () ->
      scheduled_work t ~work:t.ktiming.shutdown_shared_work (fun () ->
          Simkit.Process.delay (engine t) t.ktiming.shutdown_private_s
            (fun () ->
              Domain.set_state t.dom Domain.Halted;
              k ())))

let reboot_os t = Simkit.Process.seq [ shutdown t; boot t ]

let current_mem_bytes t = Xenvmm.P2m.mapped_bytes (Domain.p2m t.dom)

let io_ring_grants t = t.ring_grants

let balloon t ~delta_bytes =
  match Vmm.balloon t.vmm t.dom ~delta_bytes with
  | Error _ as e -> e
  | Ok () ->
    let capacity =
      int_of_float
        (t.ktiming.cache_fraction *. float_of_int (current_mem_bytes t))
    in
    Page_cache.resize t.pcache ~capacity_bytes:capacity;
    Ok ()

let is_running t = Domain.state t.dom = Domain.Running

let service_reachable t s = is_running t && Service.is_up s
