(** JBoss application server model.

    The paper's heavyweight service: starting it takes tens of seconds
    and contends with every other VM doing the same, which is why the
    cold-VM reboot's downtime grows so steeply with the number of VMs in
    Figure 6b while the warm-VM reboot (which never restarts it) does
    not. Calibrated so one OS rejuvenation with JBoss costs the paper's
    33.6 s and eleven parallel starts add ~84 s over sshd. *)

val spec : Service.spec

val install : Kernel.t -> Service.t

val nominal_service_time_s : float
(** Nominal CPU-bound service time (20 ms) behind {!fluid_server} —
    the simulator has no per-request JBoss path, so the fluid traffic
    model runs against this constant. *)

val fluid_server : Kernel.t -> Service.t -> Netsim.Fluid.server
(** Aggregate view for {!Netsim.Fluid}: up iff the service is
    reachable, capacity [1 / nominal_service_time_s] while up. *)
