(** Bench baseline comparison: parse [roothammer-bench/1] files and
    gate a new measurement against a committed baseline.

    Tolerances are read from the {e baseline}: each metric carries a
    [tolerance_pct] band, or [null] to mark it informational (wall
    times, event rates — machine-dependent numbers that are reported
    but never gated). *)

val schema : string
(** ["roothammer-bench/1"]. *)

type metric = {
  value : float;
  unit_ : string;
  tolerance_pct : float option;  (** [None] = informational *)
}

type file = { metrics : (string * metric) list }

val default_tolerance_pct : float
(** 5% — the band writers use for headline simulation outputs. *)

val to_json : file -> string
(** Canonical rendering: metrics sorted by name. *)

val of_json : string -> (file, string) result

type verdict =
  | Within of float  (** drift in percent of the baseline value *)
  | Regressed of { drift_pct : float; tolerance_pct : float }
  | Informational of float
  | Missing_in_new  (** baseline metric absent from the new file — a failure *)
  | New_metric  (** new metric absent from the baseline — allowed *)

type comparison = { name : string; verdict : verdict }

val compare_files : file -> file -> comparison list
(** One comparison per metric in either file, sorted by name. *)

val gated_count : comparison list -> int
(** How many metrics were actually held to a tolerance band. *)

val failures : comparison list -> comparison list

val pp_report : Format.formatter -> comparison list -> unit

val check : old_text:string -> new_text:string -> (comparison list, string) result
(** The whole gate: parse both files, compare, fail on any regression,
    on a baseline metric missing from the new file, or when no metric
    appears in both files (renaming every metric must not silently
    disarm the gate). The error string is a printable report. *)
