(* benchstat --check OLD NEW: compare a bench result file against a
   committed baseline; exit 1 on regression. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let usage () =
  prerr_endline "usage: benchstat --check BASELINE.json NEW.json";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | [ _; "--check"; old_path; new_path ] -> (
    let read path =
      try read_file path
      with Sys_error e ->
        Printf.eprintf "benchstat: %s\n" e;
        exit 2
    in
    let old_text = read old_path and new_text = read new_path in
    match Benchstat.Check.check ~old_text ~new_text with
    | Ok comparisons ->
      Format.printf "%a" Benchstat.Check.pp_report comparisons;
      Format.printf "benchstat: OK — %d gated metric(s) within tolerance@."
        (Benchstat.Check.gated_count comparisons)
    | Error reason ->
      Format.eprintf "benchstat: %s@." reason;
      exit 1)
  | _ -> usage ()
