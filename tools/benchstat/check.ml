module Jsonx = Simkit.Jsonx

(* A bench file is {"schema":"roothammer-bench/1","metrics":{name:
   {"value":v,"unit":u,"tolerance_pct":t|null}}}. [tolerance_pct] is a
   property of the *baseline*: it states how far a new measurement may
   drift before the gate fails; [null] marks an informational metric
   (wall times, event rates) that is reported but never gated. *)

let schema = "roothammer-bench/1"

type metric = {
  value : float;
  unit_ : string;
  tolerance_pct : float option;
}

type file = { metrics : (string * metric) list (* sorted by name *) }

let default_tolerance_pct = 5.0

(* --- emit ---------------------------------------------------------------- *)

let to_json (f : file) =
  let metric_json (m : metric) =
    Jsonx.Obj
      [
        ("value", Jsonx.Float m.value);
        ("unit", Jsonx.Str m.unit_);
        ( "tolerance_pct",
          match m.tolerance_pct with
          | None -> Jsonx.Null
          | Some t -> Jsonx.Float t );
      ]
  in
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("schema", Jsonx.Str schema);
         ( "metrics",
           Jsonx.Obj
             (List.map
                (fun (name, m) -> (name, metric_json m))
                (List.sort
                   (fun (a, _) (b, _) -> String.compare a b)
                   f.metrics)) );
       ])

(* --- parse --------------------------------------------------------------- *)

let parse_metric name v =
  match
    ( Option.bind (Jsonx.member "value" v) Jsonx.to_float_opt,
      Option.bind (Jsonx.member "unit" v) Jsonx.to_string_opt )
  with
  | Some value, Some unit_ ->
    let tolerance_pct =
      Option.bind (Jsonx.member "tolerance_pct" v) Jsonx.to_float_opt
    in
    Ok (name, { value; unit_; tolerance_pct })
  | _ -> Error (Printf.sprintf "metric %S: missing value or unit" name)

let of_json text =
  match Jsonx.of_string text with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok root -> (
    (match Option.bind (Jsonx.member "schema" root) Jsonx.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported schema %S" s)
    | None -> Error "missing \"schema\" field")
    |> function
    | Error _ as e -> e
    | Ok () -> (
      match Jsonx.member "metrics" root with
      | Some (Jsonx.Obj fields) ->
        let rec collect acc = function
          | [] ->
            Ok
              {
                metrics =
                  List.sort (fun (a, _) (b, _) -> String.compare a b)
                    (List.rev acc);
              }
          | (name, v) :: rest -> (
            match parse_metric name v with
            | Ok m -> collect (m :: acc) rest
            | Error _ as e -> e)
        in
        collect [] fields
      | _ -> Error "missing \"metrics\" object"))

(* --- compare ------------------------------------------------------------- *)

type verdict =
  | Within of float (* drift in percent *)
  | Regressed of { drift_pct : float; tolerance_pct : float }
  | Informational of float
  | Missing_in_new
  | New_metric

type comparison = { name : string; verdict : verdict }

let drift_pct ~old_v ~new_v =
  if old_v = 0.0 then if new_v = 0.0 then 0.0 else Float.infinity
  else (new_v -. old_v) /. Float.abs old_v *. 100.0

let compare_metric (old_m : metric) (new_m : metric) =
  let d = drift_pct ~old_v:old_m.value ~new_v:new_m.value in
  match old_m.tolerance_pct with
  | None -> Informational d
  | Some tol ->
    if Float.abs d <= tol then Within d
    else Regressed { drift_pct = d; tolerance_pct = tol }

let compare_files (old_f : file) (new_f : file) =
  let in_new = Hashtbl.create 64 in
  List.iter (fun (name, m) -> Hashtbl.replace in_new name m) new_f.metrics;
  let seen = Hashtbl.create 64 in
  let of_old =
    List.map
      (fun (name, old_m) ->
        Hashtbl.replace seen name ();
        match Hashtbl.find_opt in_new name with
        | None -> { name; verdict = Missing_in_new }
        | Some new_m -> { name; verdict = compare_metric old_m new_m })
      old_f.metrics
  in
  let fresh =
    List.filter_map
      (fun (name, _) ->
        if Hashtbl.mem seen name then None
        else Some { name; verdict = New_metric })
      new_f.metrics
  in
  List.sort (fun a b -> String.compare a.name b.name) (of_old @ fresh)

let gated_count comparisons =
  List.length
    (List.filter
       (fun c ->
         match c.verdict with
         | Within _ | Regressed _ -> true
         | Informational _ | Missing_in_new | New_metric -> false)
       comparisons)

let failures comparisons =
  List.filter
    (fun c ->
      match c.verdict with
      | Regressed _ | Missing_in_new -> true
      | Within _ | Informational _ | New_metric -> false)
    comparisons

(* --- report -------------------------------------------------------------- *)

let pp_verdict ppf = function
  | Within d -> Format.fprintf ppf "ok      %+.2f%%" d
  | Regressed { drift_pct; tolerance_pct } ->
    Format.fprintf ppf "FAIL    %+.2f%% (tolerance %.1f%%)" drift_pct
      tolerance_pct
  | Informational d -> Format.fprintf ppf "info    %+.2f%%" d
  | Missing_in_new -> Format.fprintf ppf "FAIL    missing in new file"
  | New_metric -> Format.fprintf ppf "new     (not in baseline)"

let pp_report ppf comparisons =
  List.iter
    (fun c -> Format.fprintf ppf "%-48s %a@." c.name pp_verdict c.verdict)
    comparisons

(* Exit-code semantics live here so main.ml stays a thin shell:
   Ok () = gate passed; Error = human-readable reason. An empty
   intersection fails: comparing disjoint files means someone renamed
   the metrics and the gate would otherwise silently pass forever. *)
let check ~old_text ~new_text =
  match (of_json old_text, of_json new_text) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("new file: " ^ e)
  | Ok old_f, Ok new_f ->
    let comparisons = compare_files old_f new_f in
    let compared =
      List.exists
        (fun c ->
          match c.verdict with
          | Within _ | Regressed _ | Informational _ -> true
          | Missing_in_new | New_metric -> false)
        comparisons
    in
    if not compared then
      Error "no metric appears in both files; nothing was compared"
    else
      let fails = failures comparisons in
      if fails = [] then Ok comparisons else Error (Format.asprintf "%d metric(s) regressed:@.%a" (List.length fails) pp_report fails)
