(* Per-directory allowlist: the places where a rule's target construct
   is the sanctioned implementation rather than a hazard. Inline
   `(* simlint: allow ... *)` comments are for one-off exceptions; an
   entry here blesses a whole directory (or a single file) and is the
   right tool when the exception *is* the module's job. *)

type entry = {
  rule : string;  (** e.g. ["D001"] *)
  prefix : string;
      (** repo-relative path prefix, ['/']-separated; a trailing ['/']
          makes it a directory, otherwise it names a file *)
  reason : string;
}

let entries =
  [
    {
      rule = "D001";
      prefix = "lib/runner/";
      reason = "sweep metrics measure real elapsed wall time per run";
    };
    {
      rule = "D001";
      prefix = "bench/";
      reason = "benchmarks exist to report wall time";
    };
    {
      rule = "D004";
      prefix = "lib/runner/";
      reason = "the multicore pool is the sanctioned Domain.spawn user";
    };
    {
      rule = "D004";
      prefix = "lib/simkit/engine.ml";
      reason = "per-domain event counters live in Domain.DLS";
    };
    {
      rule = "D004";
      prefix = "lib/simkit/par_engine.ml";
      reason =
        "the conservative coordinator is the sanctioned shard-worker \
         spawner; its barrier protocol is what keeps every other module \
         domain-free";
    };
    {
      rule = "D004";
      prefix = "lib/obs/obs.ml";
      reason = "ambient registry is Domain.DLS so sweep workers never share state";
    };
    {
      rule = "D002";
      prefix = "lib/simkit/rng.ml";
      reason = "the one sanctioned RNG; everything else draws through it";
    };
    {
      rule = "D011";
      prefix = "lib/obs/obs.ml";
      reason =
        "the ambient registry is deliberately Domain.DLS: each sweep \
         worker gets its own registry, reset per run by with_fresh";
    };
    {
      rule = "D011";
      prefix = "lib/simkit/engine.ml";
      reason =
        "per-domain event counters and the default-queue selector live in \
         Domain.DLS by design; both are read through delta accessors";
    };
  ]

let normalize path =
  let path = String.map (function '\\' -> '/' | c -> c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m > 0 && at 0

(* Matches both repo-relative paths (as the CLI passes them) and
   absolute paths (as the test suite passes them). *)
let under_prefix ~prefix path =
  let p = normalize path in
  String.starts_with ~prefix p || contains ~sub:("/" ^ prefix) p

let allowed ~rule ~path =
  List.exists (fun e -> e.rule = rule && under_prefix ~prefix:e.prefix path)
    entries
