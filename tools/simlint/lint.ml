(* Driver: parse a file, run the rules, then subtract inline
   suppressions and the directory allowlist.

   A suppression is a comment on the offending line:

     (* simlint: allow D003 removal order commutes *)

   The rule id must exist and the reason must be non-empty; a
   malformed suppression is itself reported (rule id D000) so stale or
   typo'd waivers cannot silently disable the checker. *)

type finding = Rules.finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let pp_finding f =
  Printf.sprintf "%s:%d:%d: %s %s" f.file f.line f.col f.rule f.message

let finding_to_jsonx (f : finding) =
  Simkit.Jsonx.(
    Obj
      [
        ("file", Str f.file);
        ("line", Int f.line);
        ("col", Int f.col);
        ("rule", Str f.rule);
        ("title", Str (Rules.rule_title f.rule));
        ("message", Str f.message);
      ])

let to_json findings =
  Simkit.Jsonx.(
    to_string
      (Obj
         [
           ("count", Int (List.length findings));
           ("findings", Arr (List.map finding_to_jsonx findings));
         ]))

(* --- suppression comments ----------------------------------------------- *)

type suppression = { on_line : int; srule : string }

let marker = "simlint:"

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec at i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else at (i + 1)
  in
  at from

(* Returns the suppressions of one line plus any D000 findings for
   malformed ones. *)
let parse_suppression ~file ~lnum line =
  match find_sub line marker 0 with
  | None -> ([], [])
  | Some i ->
    let bad message = ([], [ { file; line = lnum; col = i; rule = "D000"; message } ]) in
    let rest = String.sub line (i + String.length marker) (String.length line - i - String.length marker) in
    let rest =
      match find_sub rest "*)" 0 with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    (match String.split_on_char ' ' (String.trim rest) |> List.filter (( <> ) "") with
    | "allow" :: rule :: reason when String.length rule = 4 && rule.[0] = 'D' ->
      if not (Rules.known_rule rule) then
        bad (Printf.sprintf "suppression names unknown rule %s" rule)
      else if reason = [] then
        bad (Printf.sprintf "suppression of %s needs a reason" rule)
      else ([ { on_line = lnum; srule = rule } ], [])
    | _ -> bad "malformed simlint comment: expected `simlint: allow D00x <reason>`")

let scan_suppressions ~file source =
  let supps = ref [] and errs = ref [] in
  List.iteri
    (fun i line ->
      let s, e = parse_suppression ~file ~lnum:(i + 1) line in
      supps := s @ !supps;
      errs := e @ !errs)
    (String.split_on_char '\n' source);
  (!supps, List.rev !errs)

(* --- per-file entry point ------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

exception Parse_error of string

let parse ~name source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf name;
  try Parse.implementation lexbuf
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    raise (Parse_error (Printf.sprintf "%s: cannot parse: %s" name msg))

(* [as_path] lets callers lint a fixture as if it lived elsewhere in
   the tree, since several rules are directory-scoped (the fixture for
   D006 must pretend to be under lib/). *)
let lint_file ?as_path path =
  let name = Option.value as_path ~default:path in
  let source = read_file path in
  let structure = parse ~name source in
  let raw = Rules.check ~path:name structure in
  let supps, supp_errs = scan_suppressions ~file:name source in
  let suppressed f =
    List.exists (fun s -> s.on_line = f.line && s.srule = f.rule) supps
  in
  let kept =
    List.filter
      (fun (f : finding) ->
        (not (suppressed f)) && not (Allow.allowed ~rule:f.rule ~path:name))
      raw
  in
  List.sort
    (fun a b -> compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
    (kept @ supp_errs)

(* --- tree walk ----------------------------------------------------------- *)

(* Deliberately-bad lint fixtures live under test/lint_fixtures/ and
   are linted one by one from the test suite, never as part of the
   tree scan. *)
let skip_dirs = [ "lint_fixtures"; "_build"; ".git" ]

let rec collect acc path =
  if Sys.is_directory path then
    if List.mem (Filename.basename path) skip_dirs then acc
    else
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left (fun acc f -> collect acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files = List.rev (List.fold_left collect [] paths) in
  List.concat_map lint_file files
