(* simlint — determinism & simulation-hygiene checks for the tree.

   Usage: simlint [--json] [--list-rules] [PATH ...]

   With no paths, lints lib/ bin/ bench/ test/ relative to the current
   directory (what the root `dune build @lint` rule does). Exit code 0
   when clean, 1 with findings, 2 on usage or parse errors. *)

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

let () =
  let json = ref false and list_rules = ref false and paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue");
    ]
  in
  let usage = "simlint [--json] [--list-rules] [PATH ...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (id, title) -> Printf.printf "%s %s\n" id title)
      Simlint.Rules.catalogue;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> default_paths | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Printf.eprintf "simlint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  match Simlint.Lint.lint_paths paths with
  | exception Simlint.Lint.Parse_error msg ->
    Printf.eprintf "simlint: %s\n" msg;
    exit 2
  | [] ->
    if !json then print_string (Simlint.Lint.to_json []);
    exit 0
  | findings ->
    if !json then print_string (Simlint.Lint.to_json findings)
    else List.iter (fun f -> print_endline (Simlint.Lint.pp_finding f)) findings;
    Printf.eprintf "simlint: %d finding(s)\n" (List.length findings);
    exit 1
