(* simlint — determinism & simulation-hygiene checks for the tree.

   Two passes share this entry point:

     simlint [--json|--sarif] [PATH ...]
       the Parsetree pass: parse every .ml under the paths (default
       lib bin bench test) and run the syntactic rules D001-D008.

     simlint --deep [--build DIR] [--why] [--json|--sarif] [PREFIX ...]
       the typedtree pass: read every .cmt under the build directory
       (default _build/default; pass `.` when already running inside
       it, as the @lint-deep rule does), keep units whose source lives
       under one of the prefixes (default lib), and run the
       interprocedural rules D009-D011. --why appends the full call
       chain to each D009 finding.

   Exit code 0 when clean, 1 with findings, 2 on usage/parse errors.
   The deep pass reports its wall time on stderr either way, so the CI
   step's cost stays visible. *)

let default_paths = [ "lib"; "bin"; "bench"; "test" ]
let default_prefixes = [ "lib" ]

let () =
  let json = ref false
  and sarif = ref false
  and list_rules = ref false
  and deep = ref false
  and why = ref false
  and build = ref "_build/default"
  and paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as JSON");
      ("--sarif", Arg.Set sarif, " emit findings as SARIF 2.1.0");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue");
      ("--deep", Arg.Set deep, " run the typedtree (.cmt) pass instead");
      ("--why", Arg.Set why, " with --deep: print full call chains (D009)");
      ( "--build",
        Arg.Set_string build,
        "DIR with --deep: dune build directory holding the .cmt files \
         (default _build/default)" );
    ]
  in
  let usage =
    "simlint [--json|--sarif] [--list-rules] [PATH ...]\n\
     simlint --deep [--build DIR] [--why] [--json|--sarif] [PREFIX ...]"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (id, title) -> Printf.printf "%s %s\n" id title)
      Simlint.Rules.catalogue;
    exit 0
  end;
  if !json && !sarif then begin
    Printf.eprintf "simlint: --json and --sarif are mutually exclusive\n";
    exit 2
  end;
  if !deep then begin
    let prefixes =
      match List.rev !paths with [] -> default_prefixes | ps -> ps
    in
    if not (Sys.file_exists !build && Sys.is_directory !build) then begin
      Printf.eprintf "simlint: no such build directory: %s\n" !build;
      exit 2
    end;
    let t0 = Unix.gettimeofday () in
    let findings = Simlint.Typed_lint.analyze_build ~build:!build ~prefixes in
    let dt = Unix.gettimeofday () -. t0 in
    (if !json then print_string (Simlint.Typed_lint.to_json findings)
     else if !sarif then print_string (Simlint.Typed_lint.to_sarif findings)
     else
       List.iter
         (fun f -> print_endline (Simlint.Typed_lint.pp_deep ~why:!why f))
         findings);
    Printf.eprintf "simlint --deep: %d finding(s) in %.2fs\n"
      (List.length findings) dt;
    exit (if findings = [] then 0 else 1)
  end;
  let paths = match List.rev !paths with [] -> default_paths | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Printf.eprintf "simlint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  match Simlint.Lint.lint_paths paths with
  | exception Simlint.Lint.Parse_error msg ->
    Printf.eprintf "simlint: %s\n" msg;
    exit 2
  | [] ->
    if !json then print_string (Simlint.Lint.to_json [])
    else if !sarif then print_string (Simlint.Sarif.to_string []);
    exit 0
  | findings ->
    if !json then print_string (Simlint.Lint.to_json findings)
    else if !sarif then print_string (Simlint.Sarif.to_string findings)
    else List.iter (fun f -> print_endline (Simlint.Lint.pp_finding f)) findings;
    Printf.eprintf "simlint: %d finding(s)\n" (List.length findings);
    exit 1
