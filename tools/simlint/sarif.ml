(* SARIF 2.1.0 output, the minimal subset GitHub code scanning
   ingests: one run, the rule catalogue as the driver's rules, one
   result per finding with a physical location. Columns are 1-based in
   SARIF where our findings are 0-based, matching the compiler. *)

let rule_obj (id, title) =
  Simkit.Jsonx.(
    Obj
      [
        ("id", Str id);
        ("name", Str id);
        ("shortDescription", Obj [ ("text", Str title) ]);
      ])

let result_obj (f : Rules.finding) =
  Simkit.Jsonx.(
    Obj
      [
        ("ruleId", Str f.rule);
        ("level", Str "error");
        ("message", Obj [ ("text", Str f.message) ]);
        ( "locations",
          Arr
            [
              Obj
                [
                  ( "physicalLocation",
                    Obj
                      [
                        ("artifactLocation", Obj [ ("uri", Str f.file) ]);
                        ( "region",
                          Obj
                            [
                              ("startLine", Int f.line);
                              ("startColumn", Int (f.col + 1));
                            ] );
                      ] );
                ];
            ] );
      ])

let to_string findings =
  let rules =
    ("D000", Rules.rule_title "D000") :: Rules.catalogue |> List.map rule_obj
  in
  Simkit.Jsonx.(
    to_string
      (Obj
         [
           ( "$schema",
             Str
               "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
           );
           ("version", Str "2.1.0");
           ( "runs",
             Arr
               [
                 Obj
                   [
                     ( "tool",
                       Obj
                         [
                           ( "driver",
                             Obj
                               [
                                 ("name", Str "simlint");
                                 ("rules", Arr rules);
                               ] );
                         ] );
                     ("results", Arr (List.map result_obj findings));
                   ];
               ] );
         ]))
