(* D010/D011: the domain-race detector.

   The heart is a mutability oracle over [Types.type_expr]: does a
   value of this type contain structure that another domain could
   observe being mutated? Stdlib mutable containers are built in;
   repo-defined types are resolved through the type declarations
   collected from the cmts (records with mutable fields, variants
   carrying mutable payloads, abbreviations). Synchronized wrappers are
   distinguished from raw mutability:

     - [Atomic.t] is the sanctioned cross-domain cell: safe.
     - a record that pairs its mutable fields with a [Mutex.t] field is
       "self-guarded" (the Pool's work-stealing ranges);
     - an array whose elements are atomics or guarded records is
       treated as guarded (a fixed arena of synchronized cells);
     - [Domain.DLS.key] is per-domain by construction — safe to capture
       (D010) but still a toplevel global hazard (D011), because
       domain-local state persists across tasks scheduled onto the same
       worker and so can leak between runs.

   D010 fires per captured value at a domain-boundary closure site
   (Domain.spawn, Runner.Pool.parallel_map, Runner.Sweep.task). A
   closure that also captures a bare [Mutex.t] is assumed to use it —
   "Mutex-guarded in the same module" — and is not flagged. Values
   allocated inside the closure never appear: they are bound there, not
   captured (see Callgraph.free_vars).

   D011 fires on toplevel lib/ globals whose type is mutable, atomic,
   lock-guarded, or a DLS key: all of them are state that outlives a
   single run. The sanctioned instances (the obs ambient registry, the
   engine's DLS counters) carry reasoned entries in allow.ml. *)

type verdict =
  | Immut
  | Mut of string  (** witness: which mutable structure was found *)
  | Guarded  (** mutable but paired with its own lock / atomic cells *)
  | AtomicT
  | Dls
  | Sync  (** a bare synchronization primitive (Mutex, Condition, ...) *)

let rank = function
  | Mut _ -> 5
  | Dls -> 4
  | AtomicT -> 3
  | Guarded -> 2
  | Sync -> 1
  | Immut -> 0

let join a b = if rank a >= rank b then a else b
let join_all l = List.fold_left join Immut l

let builtin_mutable =
  [
    ("ref", "ref cell");
    ("array", "array");
    ("bytes", "bytes");
    ("Bytes.t", "bytes");
    ("Hashtbl.t", "Hashtbl.t");
    ("Buffer.t", "Buffer.t");
    ("Queue.t", "Queue.t");
    ("Stack.t", "Stack.t");
    ("lazy_t", "lazy thunk");
    ("Lazy.t", "lazy thunk");
  ]

let sync_prims =
  [ "Mutex.t"; "Condition.t"; "Semaphore.Counting.t"; "Semaphore.Binary.t" ]

type oracle = {
  decls : (string, Types.type_declaration * (Path.t -> string)) Hashtbl.t;
}

let oracle_of_units units =
  let decls = Hashtbl.create 128 in
  List.iter
    (fun (u : Callgraph.unit_info) ->
      List.iter
        (fun (name, decl) ->
          if not (Hashtbl.mem decls name) then
            Hashtbl.add decls name (decl, u.canon_of_path))
        u.decls)
    units;
  { decls }

let rec classify o ~canon ~visiting ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> Immut (* opaque: a closure's captures are its own *)
  | Types.Ttuple l -> join_all (List.map (classify o ~canon ~visiting) l)
  | Types.Tpoly (t, _) -> classify o ~canon ~visiting t
  | Types.Tconstr (p, args, _) -> (
    let name = canon p in
    if String.equal name "Atomic.t" then AtomicT
    else if String.equal name "Domain.DLS.key" then Dls
    else if List.mem name sync_prims then Sync
    else if String.equal name "array" || String.equal name "Array.t"
            || String.equal name "Float.Array.t" then
      match join_all (List.map (classify o ~canon ~visiting) args) with
      | AtomicT | Guarded | Sync -> Guarded
      | _ -> Mut "array"
    else
      match List.assoc_opt name builtin_mutable with
      | Some witness -> Mut witness
      | None -> (
        match Hashtbl.find_opt o.decls name with
        | Some (decl, dcanon) ->
          if List.mem name visiting then Immut (* recursive type: cycle *)
          else
            classify_decl o ~canon:dcanon ~visiting:(name :: visiting) name
              decl
        | None ->
          (* Unknown constructor (stdlib/external): assume a persistent
             spine but look through the arguments, so e.g. an
             [int ref list] still reads as mutable. *)
          join_all (List.map (classify o ~canon ~visiting) args)))
  | _ -> Immut

and classify_decl o ~canon ~visiting name decl =
  ignore name;
  match decl.Types.type_kind with
  | Types.Type_record (lds, _) -> classify_record o ~canon ~visiting lds
  | Types.Type_variant (cds, _) ->
    join_all
      (List.map
         (fun (cd : Types.constructor_declaration) ->
           match cd.Types.cd_args with
           | Types.Cstr_tuple tys ->
             join_all (List.map (classify o ~canon ~visiting) tys)
           | Types.Cstr_record lds -> classify_record o ~canon ~visiting lds)
         cds)
  | Types.Type_abstract | Types.Type_open -> (
    (* An abbreviation classifies as its manifest; a truly abstract
       type is opaque and read as immutable. *)
    match decl.Types.type_manifest with
    | Some t -> classify o ~canon ~visiting t
    | None -> Immut)

and classify_record o ~canon ~visiting lds =
  let has_mut_field =
    List.exists
      (fun (ld : Types.label_declaration) -> ld.Types.ld_mutable = Asttypes.Mutable)
      lds
  in
  let field_verdicts =
    List.map
      (fun (ld : Types.label_declaration) ->
        classify o ~canon ~visiting ld.Types.ld_type)
      lds
  in
  let has_sync =
    List.exists (fun v -> v = Sync || v = AtomicT) field_verdicts
  in
  if has_mut_field then
    if has_sync then Guarded
    else
      let witness =
        List.find_map
          (fun (ld : Types.label_declaration) ->
            if ld.Types.ld_mutable = Asttypes.Mutable then
              Some ("mutable field " ^ Ident.name ld.Types.ld_id)
            else None)
          lds
      in
      Mut (Option.value witness ~default:"mutable record field")
  else
    match join_all field_verdicts with
    | Mut w -> if has_sync then Guarded else Mut w
    | v -> v

let classify_ty o ~canon ty = classify o ~canon ~visiting:[] ty

(* --- D010 ---------------------------------------------------------------- *)

let mk ~file ~(loc : Location.t) rule message =
  let p = loc.loc_start in
  {
    Rules.file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
  }

let d010 o (u : Callgraph.unit_info) =
  List.concat_map
    (fun (s : Callgraph.spawn_site) ->
      let verdicts =
        List.map
          (fun (c : Callgraph.capture) ->
            (c, classify_ty o ~canon:u.canon_of_path c.cap_ty))
          s.captures
      in
      let lock_captured =
        List.exists (fun ((_ : Callgraph.capture), v) -> v = Sync) verdicts
      in
      if lock_captured then []
      else
        List.filter_map
          (fun ((c : Callgraph.capture), v) ->
            match v with
            | Mut witness ->
              Some
                (mk ~file:u.src ~loc:s.spawn_loc "D010"
                   (Printf.sprintf
                      "closure passed to %s captures `%s`, whose type \
                       contains unsynchronized mutable state (%s): share \
                       it as Atomic.t cells, guard it with a Mutex, or \
                       allocate it fresh inside the task"
                      s.spawn_what c.cap_name witness))
            | _ -> None)
          verdicts)
    u.spawns

(* --- D011 ---------------------------------------------------------------- *)

let d011 o (u : Callgraph.unit_info) =
  if not (Allow.under_prefix ~prefix:"lib/" u.src) then []
  else
    List.filter_map
      (fun (g : Callgraph.global) ->
        if Callgraph.is_arrow g.g_ty then None
        else
          let describe kind fix =
            Some
              (mk ~file:u.src ~loc:g.g_loc "D011"
                 (Printf.sprintf
                    "toplevel %s `%s` in lib/ is state that outlives a \
                     single run; %s"
                    kind g.g_key fix))
          in
          match classify_ty o ~canon:u.canon_of_path g.g_ty with
          | Mut witness ->
            describe
              (Printf.sprintf "mutable global (%s)" witness)
              "thread it through per-run state or add a reasoned allow.ml \
               entry"
          | AtomicT ->
            describe "Atomic.t global"
              "atomics are race-free but still shared across runs; prefer \
               per-run state"
          | Guarded ->
            describe "lock-guarded global"
              "locks serialize access but the state still leaks between \
               runs; prefer per-run state"
          | Dls ->
            describe "Domain.DLS key"
              "domain-local state persists across tasks scheduled onto \
               the same worker; sanctioned instances need a reasoned \
               allow.ml entry"
          | Sync | Immut -> None)
      u.globals

let analyze ~units =
  let o = oracle_of_units units in
  List.concat_map (fun u -> d010 o u @ d011 o u) units
