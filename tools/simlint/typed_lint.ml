(* Driver for the deep (typedtree) pass: discover .cmt files under the
   dune build directory, distill them (Callgraph), run the
   interprocedural analyses (Taint for D009, Races for D010/D011),
   then subtract inline suppressions and allow.ml entries exactly like
   the Parsetree pass does.

   The pass runs from the `@lint-deep` alias, whose rule depends on
   `(alias_rec check)` so every cmt exists before we look, and executes
   with the build directory as cwd — sources are copied there, so
   suppression comments are read from the same tree the cmts were
   compiled from. The test suite instead feeds fixture cmts directly
   with an [as_path] override, the same trick [Lint.lint_file] uses. *)

type deep_finding = { df : Rules.finding; chain : Taint.chain_step list }

type unit_input = {
  cmt_path : string;
  as_path : string option;  (** analyze as if the source lived here *)
  source_path : string option;  (** real file to read suppressions from *)
}

(* --- discovery ----------------------------------------------------------- *)

let rec collect_cmts acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc f -> collect_cmts acc (Filename.concat path f)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let discover ~build = List.rev (collect_cmts [] build)

(* --- analysis ------------------------------------------------------------ *)

let under_any ~prefixes src =
  List.exists
    (fun p ->
      let p = Allow.normalize p in
      let p =
        if String.length p > 0 && p.[String.length p - 1] = '/' then p
        else p ^ "/"
      in
      String.starts_with ~prefix:p src)
    prefixes

(* Read cmts, dropping interface-only/partial ones and duplicate
   compilations of the same module (dune can leave byte and native
   objs dirs). [pairs] carry the real path suppressions are read from. *)
let read_pairs inputs =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun i ->
      match Callgraph.read ?as_path:i.as_path i.cmt_path with
      | Some raw when not (Hashtbl.mem seen raw.Callgraph.r_modname) ->
        Hashtbl.add seen raw.Callgraph.r_modname ();
        Some (raw, Option.value i.source_path ~default:raw.Callgraph.r_src)
      | _ -> None)
    inputs

let analyze_pairs pairs =
  let sources = List.map (fun (r, sp) -> (r.Callgraph.r_src, sp)) pairs in
  let units = Callgraph.load ~units_raw:(List.map fst pairs) in
  (* Inline suppressions, read lazily per logical source file from the
     real file that was compiled. *)
  let supp_cache : (string, Lint.suppression list) Hashtbl.t =
    Hashtbl.create 16
  in
  let suppressions_of file =
    match Hashtbl.find_opt supp_cache file with
    | Some s -> s
    | None ->
      let s =
        match List.assoc_opt file sources with
        | Some real when Sys.file_exists real ->
          fst (Lint.scan_suppressions ~file (Lint.read_file real))
        | _ -> []
      in
      Hashtbl.add supp_cache file s;
      s
  in
  let suppressed ~file ~line ~rule =
    List.exists
      (fun (s : Lint.suppression) -> s.on_line = line && s.srule = rule)
      (suppressions_of file)
  in
  let d009 =
    Taint.analyze ~units ~suppressed
    |> List.map (fun (t : Taint.finding) -> { df = t.f; chain = t.chain })
  in
  let d010_11 =
    Races.analyze ~units
    |> List.filter (fun (f : Rules.finding) ->
           (not (suppressed ~file:f.file ~line:f.line ~rule:f.rule))
           && not (Allow.allowed ~rule:f.rule ~path:f.file))
    |> List.map (fun f -> { df = f; chain = [] })
  in
  List.sort
    (fun a b ->
      compare
        (a.df.file, a.df.line, a.df.col, a.df.rule, a.df.message)
        (b.df.file, b.df.line, b.df.col, b.df.rule, b.df.message))
    (d009 @ d010_11)

let analyze_units inputs = analyze_pairs (read_pairs inputs)

(* Whole-build scan: every cmt is read, but only units whose source
   sits under one of the requested prefixes take part, so fixture
   libraries under test/ and executables under bin/ never pollute a
   lib/ scan. *)
let analyze_build ~build ~prefixes =
  let inputs =
    discover ~build
    |> List.map (fun c -> { cmt_path = c; as_path = None; source_path = None })
  in
  let pairs =
    read_pairs inputs
    |> List.filter (fun (r, _) -> under_any ~prefixes r.Callgraph.r_src)
    (* Sources are copied into the build tree next to the cmts;
       resolve them relative to it so suppressions are found no matter
       where the process itself is running. *)
    |> List.map (fun (r, _) -> (r, Filename.concat build r.Callgraph.r_src))
  in
  analyze_pairs pairs

(* --- rendering ----------------------------------------------------------- *)

let pp_chain chain =
  List.mapi
    (fun i (s : Taint.chain_step) ->
      Printf.sprintf "    %s %s (%s:%d)"
        (if i = 0 then "why:" else "  ->")
        s.s_what s.s_file s.s_line)
    chain

let pp_deep ~why f =
  let head = Lint.pp_finding f.df in
  if why && f.chain <> [] then String.concat "\n" (head :: pp_chain f.chain)
  else head

let to_jsonx f =
  let base =
    match Lint.finding_to_jsonx f.df with
    | Simkit.Jsonx.Obj fields -> fields
    | j -> [ ("finding", j) ]
  in
  Simkit.Jsonx.Obj
    (base
    @
    if f.chain = [] then []
    else
      [
        ( "chain",
          Simkit.Jsonx.Arr
            (List.map
               (fun (s : Taint.chain_step) ->
                 Simkit.Jsonx.(
                   Obj
                     [
                       ("what", Str s.s_what);
                       ("file", Str s.s_file);
                       ("line", Int s.s_line);
                     ]))
               f.chain) );
      ])

let to_json findings =
  Simkit.Jsonx.(
    to_string
      (Obj
         [
           ("count", Int (List.length findings));
           ("findings", Arr (List.map to_jsonx findings));
         ]))

let to_sarif findings = Sarif.to_string (List.map (fun f -> f.df) findings)
