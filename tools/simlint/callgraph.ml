(* Distills compiled .cmt files (the typedtree dumps dune produces for
   every module it builds) into the facts the interprocedural passes
   need: per-unit toplevel value definitions with the canonicalized
   list of values each one references (the call graph), type
   declarations (for the mutability oracle), domain-boundary closure
   sites with their transitive capture sets, and toplevel globals.

   Unlike the Parsetree pass, everything here is name-resolved by the
   compiler itself: a one-line alias around [Random.int], an [open], or
   a [module R = Random] cannot hide the primitive, because the
   typedtree records the resolved [Path.t] of every identifier.

   Canonical names: a reference is rendered as a dot-separated path
   with dune's module mangling undone — unit [Runner__Pool] becomes
   [Runner.Pool], a [Stdlib.] head is dropped, and the generated alias
   module head [Obs__] collapses into [Obs]. Definitions use the same
   scheme, so cross-unit references and definitions meet on equal
   strings regardless of how the source spelled the access. *)

open Typedtree

type ref_site = { target : string; rloc : Location.t }

type def = {
  key : string;  (** canonical, e.g. ["Runner.Pool.parallel_map"] *)
  dloc : Location.t;
  refs : ref_site list;  (** every value reference in the body *)
}

type capture = {
  cap_name : string;
  cap_ty : Types.type_expr;
  cap_loc : Location.t;
}

type spawn_site = {
  spawn_what : string;  (** e.g. ["Domain.spawn"] *)
  spawn_loc : Location.t;
  captures : capture list;  (** transitive free variables of the closure *)
}

type global = { g_key : string; g_ty : Types.type_expr; g_loc : Location.t }

type unit_info = {
  modname : string;
  canon : string list;
  src : string;  (** logical '/'-separated repo-relative source path *)
  defs : def list;
  spawns : spawn_site list;
  globals : global list;
  decls : (string * Types.type_declaration) list;
  canon_of_path : Path.t -> string;
      (** canonicalize a [Path.t] (e.g. a type constructor inside one of
          this unit's [type_expr]s) with this unit's alias table *)
}

(* --- reading ------------------------------------------------------------- *)

type raw = { r_modname : string; r_src : string; r_str : structure }

(* [as_path] serves the same purpose as in [Lint.lint_file]: the test
   fixtures are compiled under test/ but must be analyzed as if they
   lived under lib/, since the deep rules are directory-scoped. *)
let read ?as_path path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let src =
        match as_path with
        | Some p -> p
        | None ->
          Option.value cmt.Cmt_format.cmt_sourcefile
            ~default:(Filename.basename path)
      in
      Some
        {
          r_modname = cmt.Cmt_format.cmt_modname;
          r_src = Allow.normalize src;
          r_str = str;
        }
    | _ -> None)

(* --- canonical names ----------------------------------------------------- *)

(* "Runner__Pool" -> ["Runner"; "Pool"]; "Obs__" -> ["Obs"] (dune's
   generated alias module); plain "Obs" -> ["Obs"]. *)
let split_mangled m =
  let n = String.length m in
  let rec go acc start i =
    if i + 1 >= n then
      let last = String.sub m start (n - start) in
      List.rev (if last = "" then acc else last :: acc)
    else if m.[i] = '_' && m.[i + 1] = '_' then
      go (String.sub m start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  if n = 0 then [] else go [] 0 0

let is_arrow ty =
  let rec go ty =
    match Types.get_desc ty with
    | Types.Tarrow _ -> true
    | Types.Tpoly (t, _) -> go t
    | _ -> false
  in
  go ty

(* --- distilling one unit ------------------------------------------------- *)

let distill ~units raw =
  let canon = split_mangled raw.r_modname in
  let lib = match canon with l :: _ -> l | [] -> raw.r_modname in
  (* Local [module X = Path] aliases, so references through them still
     canonicalize to the aliased module. *)
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  (* Type idents declared in nested modules are referenced as bare
     [Pident]s from inside their module; resolve them by identity so
     [Config.t] never collides with a toplevel [t]. *)
  let tydecls_by_ident : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let rec mod_path p =
    match p with
    | Path.Pident id ->
      let n = Ident.name id in
      if Ident.is_predef id then [ n ]
      else if Ident.global id then if n = "Stdlib" then [] else split_mangled n
      else (
        match Hashtbl.find_opt aliases (Ident.unique_name id) with
        | Some c -> c
        | None ->
        match Hashtbl.find_opt tydecls_by_ident (Ident.unique_name id) with
        | Some c -> c
        | None ->
          (* A sibling unit of the same library, or a module defined
             locally in this unit (canonical under the unit's path). *)
          if List.mem (lib ^ "__" ^ n) units then [ lib; n ] else canon @ [ n ])
    | Path.Pdot (p, s) -> mod_path p @ [ s ]
    | Path.Papply _ -> [ "<functor>" ]
    | Path.Pextra_ty (p, _) -> mod_path p
  in
  let canon_of_path p = String.concat "." (mod_path p) in

  (* Pass A: walk the structure (into nested modules) collecting
     toplevel value definitions, type declarations, module aliases and
     toplevel [;;]-style eval items. *)
  let defs_by_ident : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let def_sites = ref [] in
  let evals = ref [] in
  let globals = ref [] in
  let decls = ref [] in
  let rec unwrap_mod me =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> unwrap_mod me
    | d -> d
  in
  let rec items prefix strl =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
                let key = String.concat "." (prefix @ [ Ident.name id ]) in
                Hashtbl.replace defs_by_ident (Ident.unique_name id) key;
                def_sites := (key, vb.vb_pat.pat_loc, vb.vb_expr) :: !def_sites;
                globals :=
                  {
                    g_key = key;
                    g_ty = vb.vb_pat.pat_type;
                    g_loc = vb.vb_pat.pat_loc;
                  }
                  :: !globals
              | _ -> ())
            vbs
        | Tstr_type (_, tds) ->
          List.iter
            (fun td ->
              let path = prefix @ [ Ident.name td.typ_id ] in
              Hashtbl.replace tydecls_by_ident (Ident.unique_name td.typ_id)
                path;
              decls := (String.concat "." path, td.typ_type) :: !decls)
            tds
        | Tstr_module mb -> mod_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (mod_binding prefix) mbs
        | Tstr_eval (e, _) -> evals := e :: !evals
        | _ -> ())
      strl
  and mod_binding prefix mb =
    match (mb.mb_id, mb.mb_name.txt) with
    | Some id, Some name -> (
      match unwrap_mod mb.mb_expr with
      | Tmod_ident (p, _) ->
        Hashtbl.replace aliases (Ident.unique_name id) (mod_path p)
      | Tmod_structure s -> items (prefix @ [ name ]) s.str_items
      | _ -> ())
    | _ -> ()
  in
  items canon raw.r_str.str_items;

  (* The canonical name of a value reference, if it has one: a dotted
     path, or a bare ident that resolves to one of this unit's own
     toplevel definitions. Plain locals return [None]. *)
  let ref_target e =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id when (not (Ident.global id)) && not (Ident.is_predef id)
        ->
        Hashtbl.find_opt defs_by_ident (Ident.unique_name id)
      | Path.Pident _ -> None
      | _ -> Some (canon_of_path p))
    | _ -> None
  in

  (* Pass B: reference lists per definition. *)
  let refs_of_expr e0 =
    let acc = ref [] in
    let super = Tast_iterator.default_iterator in
    let expr sub e =
      (match ref_target e with
      | Some t -> acc := { target = t; rloc = e.exp_loc } :: !acc
      | None -> ());
      super.expr sub e
    in
    let it = { super with Tast_iterator.expr } in
    it.expr it e0;
    List.rev !acc
  in

  (* Pass C: domain-boundary closure sites. A "boundary" is a literal
     argument position whose value will run on (or be shared with)
     another domain: closures handed to Domain.spawn or
     Runner.Pool.parallel_map, the [run] field of a Runner.Sweep.task
     record (the pool's task submission format), and events handed to
     Simkit.Par_engine.send — a cross-shard send executes its closure
     on the destination shard's worker domain. *)
  let spawn_fns =
    [ "Domain.spawn"; "Runner.Pool.parallel_map"; "Simkit.Par_engine.send" ]
  in
  let is_task_type ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> String.equal (canon_of_path p) "Runner.Sweep.task"
    | _ -> false
  in
  let spawns = ref [] in
  let scan_item item_expr =
    (* All let-bindings inside this item, so a closure's free variables
       can be chased through locally-defined helper functions (the
       spawned closure [fun () -> worker w] really captures everything
       [worker] touches). *)
    let local_bindings : (string, expression) Hashtbl.t = Hashtbl.create 16 in
    let super = Tast_iterator.default_iterator in
    let collect_vb sub vb =
      (match vb.vb_pat.pat_desc with
      | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
        if not (Hashtbl.mem defs_by_ident (Ident.unique_name id)) then
          Hashtbl.replace local_bindings (Ident.unique_name id) vb.vb_expr
      | _ -> ());
      super.value_binding sub vb
    in
    let it = { super with Tast_iterator.value_binding = collect_vb } in
    it.expr it item_expr;

    (* Transitive free variables of [closure]: identifiers referenced
       but not bound within the closure or within any locally-bound
       function it (transitively) calls. Values allocated inside the
       closure are bound there, so fresh-per-task state never counts as
       captured. *)
    let free_vars closure =
      let refs : (string, capture) Hashtbl.t = Hashtbl.create 32 in
      let bound : (string, unit) Hashtbl.t = Hashtbl.create 32 in
      let expanded : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let scan e0 =
        let expr sub e =
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when (not (Ident.global id))
                 && (not (Ident.is_predef id))
                 && not (Hashtbl.mem defs_by_ident (Ident.unique_name id)) ->
            if not (Hashtbl.mem refs (Ident.unique_name id)) then
              Hashtbl.replace refs (Ident.unique_name id)
                {
                  cap_name = Ident.name id;
                  cap_ty = e.exp_type;
                  cap_loc = e.exp_loc;
                }
          | Texp_function { param; _ } ->
            Hashtbl.replace bound (Ident.unique_name param) ()
          | Texp_for (id, _, _, _, _, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          super.expr sub e
        in
        let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
         fun sub p ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
          | Tpat_alias (_, id, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          super.pat sub p
        in
        let it = { super with Tast_iterator.expr; pat } in
        it.expr it e0
      in
      let rec loop = function
        | [] -> ()
        | e :: rest ->
          scan e;
          let more =
            Hashtbl.fold
              (fun un cap acc ->
                if Hashtbl.mem expanded un then acc
                else
                  match Hashtbl.find_opt local_bindings un with
                  | Some be when is_arrow cap.cap_ty ->
                    Hashtbl.replace expanded un ();
                    be :: acc
                  | _ -> acc)
              refs []
          in
          loop (more @ rest)
      in
      loop [ closure ];
      Hashtbl.fold
        (fun un cap acc ->
          if Hashtbl.mem bound un || Hashtbl.mem expanded un then acc
          else cap :: acc)
        refs []
      |> List.sort (fun a b -> String.compare a.cap_name b.cap_name)
    in
    let site_expr sub e =
      (match e.exp_desc with
      | Texp_apply (f, args) -> (
        match ref_target f with
        | Some fp when List.mem fp spawn_fns ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some a when is_arrow a.exp_type ->
                spawns :=
                  {
                    spawn_what = fp;
                    spawn_loc = e.exp_loc;
                    captures = free_vars a;
                  }
                  :: !spawns
              | _ -> ())
            args
        | _ -> ())
      | Texp_record { fields; _ } when is_task_type e.exp_type ->
        Array.iter
          (fun (lbl, rdef) ->
            match rdef with
            | Overridden (_, a) when String.equal lbl.Types.lbl_name "run" ->
              spawns :=
                {
                  spawn_what = "Runner.Sweep.task";
                  spawn_loc = e.exp_loc;
                  captures = free_vars a;
                }
                :: !spawns
            | _ -> ())
          fields
      | _ -> ());
      super.expr sub e
    in
    let it = { super with Tast_iterator.expr = site_expr } in
    it.expr it item_expr
  in
  List.iter (fun (_, _, e) -> scan_item e) !def_sites;
  List.iter scan_item !evals;

  let defs =
    List.rev_map
      (fun (key, loc, expr) -> { key; dloc = loc; refs = refs_of_expr expr })
      !def_sites
  in
  {
    modname = raw.r_modname;
    canon;
    src = raw.r_src;
    defs;
    spawns = List.rev !spawns;
    globals = List.rev !globals;
    decls = List.rev !decls;
    canon_of_path;
  }

let load ~units_raw =
  let names = List.map (fun r -> r.r_modname) units_raw in
  List.map (distill ~units:names) units_raw
