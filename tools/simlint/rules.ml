(* The rule catalogue and the Parsetree walk that applies it.

   Everything here is purely syntactic: we parse each .ml with the
   host compiler's own parser (compiler-libs) and pattern-match on the
   Parsetree, so the checks survive code that does not typecheck (the
   test fixtures never do) and cost nothing at build time.

   Name resolution is approximated path-aware, not substring-grep:
   [Domain] in a file that aliases or opens the VM-domain module
   (lib/xenvmm siblings, `module Domain = Xenvmm.Domain`, `open
   Xenvmm`) is the simulated Xen domain, not Stdlib.Domain, and is
   never flagged there unless written [Stdlib.Domain.*] explicitly. *)

open Parsetree

type finding = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, like the compiler's own diagnostics *)
  rule : string;
  message : string;
}

let catalogue =
  [
    ("D001", "wall-clock read outside lib/runner/ and bench/");
    ("D002", "ambient randomness; draw through Simkit.Rng instead");
    ("D003", "order-sensitive Hashtbl traversal escapes unsorted");
    ("D004", "raw Domain primitive outside the sanctioned runner modules");
    ("D005", "unsafe cast or closure-admitting Marshal flags");
    ("D006", "direct stdout printing inside lib/; use Report/Trace");
    ("D007", "exception-swallowing wildcard handler");
    ("D008", "failwith/Failure raise inside lib/; report a typed Simkit.Fault");
    (* D009-D011 are produced by the typedtree (cmt) pass; they live in
       the same catalogue so inline suppressions validate uniformly. *)
    ("D009", "function transitively reaches wall-clock or ambient RNG");
    ("D010", "closure crossing a domain boundary captures mutable state");
    ("D011", "toplevel mutable global in lib/");
  ]

let known_rule id = List.mem_assoc id catalogue

(* D000 is the checker's own "malformed suppression" diagnostic; it is
   deliberately not suppressible, hence not in the catalogue. *)
let rule_title id =
  if String.equal id "D000" then "malformed simlint suppression comment"
  else Option.value (List.assoc_opt id catalogue) ~default:id

(* --- small helpers ------------------------------------------------------ *)

let flatten lid = Longident.flatten lid
let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let mk ~file ~loc rule message =
  let p = loc.Location.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; message }

let rec unparen e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> unparen e
  | _ -> e

(* The function position of a (possibly partial) application:
   [List.sort cmp] and [List.sort] both resolve to List.sort. *)
let rec head_path e =
  match (unparen e).pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (flatten txt))
  | Pexp_apply (f, _) -> head_path f
  | _ -> None

let sort_family =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

let is_sorting e =
  match head_path e with Some p -> List.mem p sort_family | None -> false

(* --- D003: is a fold combiner order-insensitive? ------------------------ *)

(* [fun k v acc -> body]: the accumulator is the last parameter. *)
let rec split_fun params e =
  match (unparen e).pexp_desc with
  | Pexp_fun (_, _, pat, body) -> split_fun (pat :: params) body
  | Pexp_newtype (_, body) -> split_fun params body
  | _ -> (params, e)

let commutative_ops =
  [ "+"; "+."; "*"; "*."; "land"; "lor"; "lxor"; "max"; "min"; "&&"; "||" ]

(* The module-qualified spellings of min/max are just as commutative
   and associative as the bare operators. *)
let commutative_qualified =
  [
    [ "Float"; "min" ];
    [ "Float"; "max" ];
    [ "Int"; "min" ];
    [ "Int"; "max" ];
  ]

(* True when every path through the body either returns the accumulator
   unchanged or combines it with a commutative, associative operator —
   sums, counts, maxima — so the traversal order cannot be observed.
   Conses, appends, first/last-match selection are all order-sensitive
   and fall through to [false]. *)
let order_insensitive ~acc body =
  let rec ok e =
    match (unparen e).pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } -> v = acc
    | Pexp_ifthenelse (_, a, Some b) -> ok a && ok b
    | Pexp_match (_, cases) -> List.for_all (fun c -> ok c.pc_rhs) cases
    | Pexp_let (_, _, body) -> ok body
    | Pexp_apply (f, [ (_, a); (_, b) ]) -> (
      match head_path f with
      | Some [ op ] when List.mem op commutative_ops -> ok a || ok b
      | Some p when List.mem p commutative_qualified -> ok a || ok b
      | _ -> false)
    | _ -> false
  in
  ok body

(* --- D004: Domain shadowing -------------------------------------------- *)

let shadows_domain ~path structure =
  Allow.contains ~sub:"lib/xenvmm/" (Allow.normalize path)
  || List.exists
       (fun item ->
         match item.pstr_desc with
         | Pstr_module { pmb_name = { txt = Some "Domain"; _ }; _ } -> true
         | Pstr_open
             { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; _ } -> (
           match flatten txt with
           | [ "Xenvmm" ] | [ "Rejuv" ] -> true
           | _ -> false)
         | _ -> false)
       structure

let domain_primitives = [ "spawn"; "join" ]

(* --- D005: Marshal flag literals ---------------------------------------- *)

let rec list_literal e =
  match (unparen e).pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ( { txt = Longident.Lident "::"; _ },
        Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ } ) ->
    Option.map (fun rest -> hd :: rest) (list_literal tl)
  | _ -> None

let is_closures_flag e =
  match (unparen e).pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
    match List.rev (flatten txt) with "Closures" :: _ -> true | _ -> false)
  | _ -> false

let marshal_writers = [ "to_string"; "to_bytes"; "to_channel"; "to_buffer" ]

(* --- D006 --------------------------------------------------------------- *)

let print_idents =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let in_lib path = Allow.under_prefix ~prefix:"lib/" path

(* --- the walk ----------------------------------------------------------- *)

let check ~path structure =
  let file = path in
  let findings = ref [] in
  let emit ~loc rule message = findings := mk ~file ~loc rule message :: !findings in
  let shadowed = shadows_domain ~path structure in
  (* > 0 while visiting the arguments of a List.sort-family call, i.e.
     where a Hashtbl fold's order is about to be normalized away. *)
  let sorted_depth = ref 0 in
  let in_sorted f =
    incr sorted_depth;
    Fun.protect ~finally:(fun () -> decr sorted_depth) f
  in

  let check_ident ~loc raw =
    let p = strip_stdlib raw in
    (match p with
    | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      emit ~loc "D001"
        (Printf.sprintf
           "wall-clock read (%s): simulation code must use the engine \
            clock; real time is allowed only in lib/runner/ and bench/"
           (String.concat "." p))
    | "Random" :: _ ->
      emit ~loc "D002"
        (Printf.sprintf
           "ambient randomness (%s): all stochastic draws must flow \
            through Simkit.Rng so runs replay bit-exactly from a seed"
           (String.concat "." p))
    | [ "Obj"; "magic" ] ->
      emit ~loc "D005" "Obj.magic defeats the type system"
    | "Domain" :: rest
      when (match rest with
           | prim :: _ when List.mem prim domain_primitives -> true
           | "DLS" :: _ -> true
           | _ -> false)
           (* Path-aware: in files where [Domain] is the VM-domain
              module, only an explicit Stdlib.Domain counts. *)
           && ((not shadowed) || List.hd raw = "Stdlib") ->
      emit ~loc "D004"
        (Printf.sprintf
           "%s: raw domains break run isolation; only lib/runner/ and \
            the engine's DLS counters may use them"
           (String.concat "." p))
    | _ -> ());
    if in_lib path && List.mem p print_idents then
      emit ~loc "D006"
        (Printf.sprintf
           "direct stdout output (%s) in lib/: route output through \
            Report or Trace"
           (String.concat "." p));
    if in_lib path && p = [ "failwith" ] then
      emit ~loc "D008"
        "failwith aborts the simulation with an untyped Failure; return \
         an [Error] carrying a Simkit.Fault.t (or Simkit.Fault.fail) so \
         recovery policies can handle it"
  in

  let is_failure_exn e =
    match (unparen e).pexp_desc with
    | Pexp_construct ({ txt; _ }, _) -> (
      match strip_stdlib (flatten txt) with
      | [ "Failure" ] -> true
      | _ -> false)
    | _ -> false
  in

  let check_apply ~loc fpath args =
    (match (fpath, args) with
    | [ "Hashtbl"; "iter" ], _ when !sorted_depth = 0 ->
      emit ~loc "D003"
        "Hashtbl.iter visits entries in hash order; iterate over sorted \
         keys or suppress with a reason if the effect provably commutes"
    | [ "Hashtbl"; "fold" ], (_, combiner) :: _ when !sorted_depth = 0 ->
      let flagged =
        match split_fun [] combiner with
        | acc_pat :: _, body -> (
          match acc_pat.ppat_desc with
          | Ppat_var { txt = acc; _ } -> not (order_insensitive ~acc body)
          | _ -> true)
        | [], _ -> true (* not a literal fun: cannot analyze *)
      in
      if flagged then
        emit ~loc "D003"
          "Hashtbl.fold result depends on hash order; sort it (|> \
           List.sort ...), accumulate commutatively, or suppress with a \
           reason"
    | "Marshal" :: [ writer ], _ when List.mem writer marshal_writers -> (
      match List.rev args with
      | (_, flags) :: _ -> (
        match list_literal flags with
        | Some l when List.exists is_closures_flag l ->
          emit ~loc "D005"
            "Marshal.Closures admits closures into serialized state; \
             cache entries must be closed data"
        | Some _ -> ()
        | None ->
          emit ~loc "D005"
            "Marshal flags are not a literal list; cannot verify \
             Closures is absent")
      | [] -> ())
    | [ ("raise" | "raise_notrace") ], [ (_, arg) ]
      when in_lib path && is_failure_exn arg ->
      emit ~loc "D008"
        "raising Failure aborts the simulation with an untyped \
         exception; return an [Error] carrying a Simkit.Fault.t (or \
         Simkit.Fault.fail) so recovery policies can handle it"
    | _ -> ())
  in

  let super = Ast_iterator.default_iterator in
  let expr iter e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> check_ident ~loc:e.pexp_loc (flatten txt)
    | Pexp_apply (f, args) -> (
      match (unparen f).pexp_desc with
      | Pexp_ident { txt; _ } ->
        check_apply ~loc:e.pexp_loc (strip_stdlib (flatten txt)) args
      | _ -> ())
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          match (c.pc_lhs.ppat_desc, c.pc_guard) with
          | Ppat_any, None ->
            emit ~loc:c.pc_lhs.ppat_loc "D007"
              "`with _ ->` swallows every exception, including the \
               engine's own invariant failures; match the exceptions you \
               mean to handle"
          | _ -> ())
        cases
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply (f, args) when is_sorting f ->
      iter.Ast_iterator.expr iter f;
      in_sorted (fun () ->
          List.iter (fun (_, a) -> iter.Ast_iterator.expr iter a) args)
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "|>"; _ }; _ },
          [ (_, lhs); (_, rhs) ] )
      when is_sorting rhs ->
      in_sorted (fun () -> iter.Ast_iterator.expr iter lhs);
      iter.Ast_iterator.expr iter rhs
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "@@"; _ }; _ },
          [ (_, lhs); (_, rhs) ] )
      when is_sorting lhs ->
      iter.Ast_iterator.expr iter lhs;
      in_sorted (fun () -> iter.Ast_iterator.expr iter rhs)
    | _ -> super.Ast_iterator.expr iter e
  in
  let iterator = { super with Ast_iterator.expr } in
  iterator.Ast_iterator.structure iterator structure;
  List.rev !findings
