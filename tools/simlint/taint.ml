(* D009: interprocedural determinism taint.

   Seeds are the D001/D002 primitives (wall-clock reads, ambient RNG)
   at their resolved names, so wrappers and aliases cannot hide them.
   The directory allowlist and inline suppressions are applied at the
   *source* of taint: a wall-clock read that D001 sanctions (lib/runner,
   bench) or that carries a reasoned suppression does not poison its
   callers. Taint then propagates up the call graph across modules; any
   function defined under lib/ whose body does not itself touch a
   primitive (that is direct use — D001/D002's job) but transitively
   reaches one is reported, with the full call chain retained for
   [--why]. *)

type chain_step = { s_what : string; s_file : string; s_line : int }

type finding = { f : Rules.finding; chain : chain_step list }

let seed_rule target =
  match target with
  | "Unix.gettimeofday" | "Unix.time" | "Sys.time" -> Some ("D001", "wall-clock")
  | t
    when String.starts_with ~prefix:"Random." t
         && not (String.starts_with ~prefix:"Random.State" t) ->
    (* Random.State draws are explicit-state; only the ambient global
       generator defeats seeded replay. *)
    Some ("D002", "ambient RNG")
  | t when String.equal t "Random.self_init" -> Some ("D002", "ambient RNG")
  | _ -> None

(* How a definition became tainted. *)
type trace =
  | Primitive of string * Location.t  (* directly touches the primitive *)
  | Via of string * Location.t  (* calls a tainted definition *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let analyze ~(units : Callgraph.unit_info list)
    ~(suppressed : file:string -> line:int -> rule:string -> bool) =
  let defs : (string, Callgraph.def * Callgraph.unit_info) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (u : Callgraph.unit_info) ->
      List.iter
        (fun (d : Callgraph.def) ->
          if not (Hashtbl.mem defs d.key) then Hashtbl.add defs d.key (d, u))
        u.defs)
    units;

  (* Reverse edges: callee key -> (caller key, call site). *)
  let callers : (string, (string * Location.t) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let add_caller callee caller loc =
    match Hashtbl.find_opt callers callee with
    | Some l -> l := (caller, loc) :: !l
    | None -> Hashtbl.add callers callee (ref [ (caller, loc) ])
  in

  let tainted : (string, trace) Hashtbl.t = Hashtbl.create 64 in
  let seeds = ref [] in
  List.iter
    (fun (u : Callgraph.unit_info) ->
      List.iter
        (fun (d : Callgraph.def) ->
          List.iter
            (fun (r : Callgraph.ref_site) ->
              (match Hashtbl.mem defs r.target with
              | true -> add_caller r.target d.key r.rloc
              | false -> ());
              match seed_rule r.target with
              | Some (rule, _) ->
                let waived =
                  Allow.allowed ~rule ~path:u.src
                  || suppressed ~file:u.src ~line:(line_of r.rloc) ~rule
                in
                if (not waived) && not (Hashtbl.mem tainted d.key) then begin
                  Hashtbl.replace tainted d.key (Primitive (r.target, r.rloc));
                  seeds := d.key :: !seeds
                end
              | None -> ())
            d.refs)
        u.defs)
    units;

  (* Breadth-first propagation along reverse call edges; deterministic
     because the frontier starts sorted and expansions are sorted. *)
  let queue = Queue.create () in
  List.iter (fun k -> Queue.add k queue) (List.sort String.compare !seeds);
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    let cs =
      match Hashtbl.find_opt callers g with
      | Some l -> List.sort compare !l
      | None -> []
    in
    List.iter
      (fun (caller, loc) ->
        if not (Hashtbl.mem tainted caller) then begin
          Hashtbl.replace tainted caller (Via (g, loc));
          Queue.add caller queue
        end)
      cs
  done;

  let rec chain_of key =
    match Hashtbl.find_opt defs key with
    | None -> []
    | Some (d, u) -> (
      let step = { s_what = key; s_file = u.src; s_line = line_of d.dloc } in
      match Hashtbl.find_opt tainted key with
      | Some (Via (callee, _)) -> step :: chain_of callee
      | Some (Primitive (prim, loc)) ->
        [ step; { s_what = prim; s_file = u.src; s_line = line_of loc } ]
      | None -> [ step ])
  in

  (* Report indirectly tainted definitions under lib/: direct uses are
     D001/D002 findings of the Parsetree pass, not D009's. *)
  Hashtbl.fold
    (fun key trace acc ->
      match trace with
      | Primitive _ -> acc
      | Via (callee, _) ->
        let d, u = Hashtbl.find defs key in
        if not (Allow.under_prefix ~prefix:"lib/" u.src) then acc
        else
          let chain = chain_of key in
          let prim =
            match List.rev chain with last :: _ -> last.s_what | [] -> "?"
          in
          let kind =
            match seed_rule prim with Some (_, k) -> k | None -> "primitive"
          in
          let loc = d.dloc.Location.loc_start in
          {
            f =
              {
                Rules.file = u.src;
                line = loc.pos_lnum;
                col = loc.pos_cnum - loc.pos_bol;
                rule = "D009";
                message =
                  Printf.sprintf
                    "%s transitively reaches %s (%s) via %s: simulation \
                     code must take time from the engine clock and \
                     randomness from Simkit.Rng; use --why for the full \
                     call chain"
                    key prim kind callee;
              };
            chain;
          }
          :: acc)
    tainted []
