(* Rejuvenation by evacuation: live-migrate every VM to a spare host,
   reboot the source VMM, and compare the cost against a warm-VM reboot
   — the Section 6 trade-off, executed rather than estimated.

   Run with: dune exec examples/live_migration.exe [vm_count] *)

let pf = Format.printf

let () =
  let vm_count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in
  pf "Rejuvenation by evacuation: %d VMs x 1 GiB, busy web workload@.@."
    vm_count;

  (* Two hosts on one engine: the production host and the spare. *)
  let engine = Simkit.Engine.create () in
  let host_a = Hw.Host.create engine in
  let host_b = Hw.Host.create engine in
  let vmm_a = Xenvmm.Vmm.create host_a in
  let vmm_b = Xenvmm.Vmm.create host_b in
  let up = ref 0 in
  Xenvmm.Vmm.power_on vmm_a (fun () -> incr up);
  Xenvmm.Vmm.power_on vmm_b (fun () -> incr up);
  Simkit.Engine.run engine;
  assert (!up = 2);

  let kernels =
    List.init vm_count (fun i ->
        let name = Printf.sprintf "vm%02d" (i + 1) in
        let d = ref None in
        Xenvmm.Vmm.create_domain vmm_a ~name
          ~mem_bytes:(Simkit.Units.gib 1) (fun r -> d := Some r);
        Simkit.Engine.run engine;
        match !d with
        | Some (Ok dom) ->
          let kernel = Guest.Kernel.create vmm_a dom () in
          ignore (Guest.Sshd.install kernel);
          let booted = ref false in
          Guest.Kernel.boot kernel (fun () -> booted := true);
          Simkit.Engine.run engine;
          assert !booted;
          kernel
        | _ -> failwith "provisioning failed")
  in
  pf "host A carries %d VMs; host B is the (idle) migration spare@."
    vm_count;

  (* Probers watch every VM through the evacuation. *)
  let probers =
    List.map
      (fun kernel ->
        let p =
          Netsim.Prober.create engine ~interval_s:0.05
            ~name:(Xenvmm.Domain.name (Guest.Kernel.domain kernel))
            ~is_up:(fun () ->
              Guest.Kernel.is_running kernel
              && List.for_all Guest.Service.is_up
                   (Guest.Kernel.services kernel))
            ()
        in
        Netsim.Prober.start p;
        p)
      kernels
  in

  let dirty = Rejuv.Migration.dirty_rate_of_workload
      (Rejuv.Scenario.Web
         { file_count = 0; file_bytes = 1; warm_cache = false })
  in
  let t0 = Simkit.Engine.now engine in
  let finished = ref false in
  Rejuv.Migration.evacuate ~src:vmm_a ~dst:vmm_b ~kernels
    ~dirty_bytes_per_s:dirty (function
    | Ok () ->
      (* Source host empty: rejuvenate its VMM with a plain reboot. *)
      Xenvmm.Vmm.shutdown_dom0 vmm_a (fun () ->
          Xenvmm.Vmm.shutdown_vmm vmm_a (fun () ->
              Xenvmm.Vmm.hardware_reset vmm_a (fun () ->
                  Xenvmm.Vmm.boot_dom0 vmm_a (fun () -> finished := true))))
    | Error e -> failwith (Xenvmm.Vmm.error_message e));
  while (not !finished) && Simkit.Engine.step engine do () done;
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 2.0) engine;
  List.iter Netsim.Prober.stop probers;
  let elapsed = Simkit.Engine.now engine -. t0 in

  pf "@.evacuation + source VMM reboot took %.1f min in total@."
    (elapsed /. 60.0);
  List.iter
    (fun p ->
      pf "  %s: blackout %.2f s (stop-and-copy only)@." (Netsim.Prober.name p)
        (Option.value (Netsim.Prober.longest_outage p) ~default:0.0))
    probers;
  pf "host A rejuvenated (generation %d); all VMs now on host B: %d@."
    (Xenvmm.Vmm.generation vmm_a)
    (List.length (Xenvmm.Vmm.domus vmm_b));

  (* The comparison the paper draws. *)
  let warm =
    Rejuv.Experiment.run_reboot ~strategy:Rejuv.Strategy.Warm ~vm_count
      ~vm_mem_bytes:(Simkit.Units.gib 1) ()
  in
  pf "@.for contrast, a warm-VM reboot of the same host: one %.1f s outage,@."
    warm.Rejuv.Experiment.downtime_mean_s;
  pf "no spare host needed — but migration's per-VM blackout is ~100x \
     smaller.@."
