examples/prioritized_recovery.mli:
