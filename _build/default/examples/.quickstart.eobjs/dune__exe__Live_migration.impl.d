examples/live_migration.ml: Array Format Guest Hw List Netsim Option Printf Rejuv Simkit Sys Xenvmm
