examples/aging_monitor.mli:
