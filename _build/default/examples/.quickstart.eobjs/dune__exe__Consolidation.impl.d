examples/consolidation.ml: Array Format List Netsim Rejuv Simkit Sys
