examples/cluster_rolling.ml: Array Float Format List Netsim Option Printf Rejuv Simkit Sys
