examples/live_migration.mli:
