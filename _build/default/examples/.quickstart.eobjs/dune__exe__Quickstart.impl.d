examples/quickstart.ml: Format List Netsim Option Rejuv Simkit String Xenvmm
