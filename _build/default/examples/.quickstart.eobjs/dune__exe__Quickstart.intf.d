examples/quickstart.mli:
