examples/prioritized_recovery.ml: Float Format Guest Hw List Printf Simkit Xenvmm
