examples/cluster_rolling.mli:
