examples/aging_monitor.ml: Format List Rejuv Simkit Xenvmm
