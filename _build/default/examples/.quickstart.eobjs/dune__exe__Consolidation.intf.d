examples/consolidation.mli:
