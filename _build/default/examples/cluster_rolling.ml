(* Rolling VMM rejuvenation across a load-balanced cluster (Section 6).

   Simulates m hosts behind a balancer, reboots them one at a time with
   the chosen strategy, and prints the cluster throughput timeline —
   the live version of Figure 9.

   Run with: dune exec examples/cluster_rolling.exe [m] [warm|saved|cold] *)

let pf = Format.printf

let () =
  let m = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let strategy =
    if Array.length Sys.argv > 2 then
      Option.value (Rejuv.Strategy.of_string Sys.argv.(2))
        ~default:Rejuv.Strategy.Warm
    else Rejuv.Strategy.Warm
  in
  pf "Rolling rejuvenation of %d hosts with the %s@.@." m
    (Rejuv.Strategy.name strategy);

  (* Measure the per-host outage once on the simulated testbed. *)
  let run =
    Rejuv.Experiment.run_reboot ~strategy ~vm_count:5
      ~vm_mem_bytes:(Simkit.Units.gib 1)
      ()
  in
  let outage = run.Rejuv.Experiment.downtime_mean_s in
  pf "per-host outage with 5 VMs: %.1f s@." outage;

  (* Drive a balancer-level simulation: hosts go down/up on that
     schedule, 60 s apart, while the balancer samples throughput. *)
  let engine = Simkit.Engine.create () in
  let balancer = Netsim.Balancer.create engine () in
  let hosts =
    List.init m (fun i ->
        Netsim.Balancer.add_host balancer
          ~name:(Printf.sprintf "host%d" i)
          ~capacity:100.0)
  in
  let series = Netsim.Balancer.start_sampling balancer ~interval_s:10.0 in
  let gap = Float.max 60.0 (outage +. 20.0) in
  List.iteri
    (fun i host ->
      let t0 = 100.0 +. (float_of_int i *. gap) in
      ignore
        (Simkit.Engine.schedule engine ~delay:t0 (fun () ->
             Netsim.Balancer.set_down host));
      ignore
        (Simkit.Engine.schedule engine ~delay:(t0 +. outage) (fun () ->
             Netsim.Balancer.set_up host;
             (* Cold reboots come back with empty caches. *)
             if not (Rejuv.Strategy.preserves_memory_images strategy) then begin
               Netsim.Balancer.set_degraded host ~factor:0.31;
               ignore
                 (Simkit.Engine.schedule engine ~delay:60.0 (fun () ->
                      Netsim.Balancer.set_up host))
             end)))
    hosts;
  let horizon = 100.0 +. (float_of_int m *. gap) +. 200.0 in
  ignore
    (Simkit.Engine.schedule engine ~delay:horizon (fun () ->
         Netsim.Balancer.stop_sampling balancer));
  Simkit.Engine.run engine;

  pf "@.cluster throughput (ideal %d x 100 = %d):@." m (m * 100);
  let samples = Simkit.Series.to_list series in
  let last_v = ref nan in
  List.iter
    (fun (t, v) ->
      if v <> !last_v then begin
        pf "  t=%7.0f s  throughput %6.0f@." t v;
        last_v := v
      end)
    samples;

  (* Compare against the analytic Section 6 model (p = 1 host). *)
  let params = Rejuv.Cluster.paper_params ~m ~p:1.0 () in
  let timeline =
    Rejuv.Cluster.rolling_rejuvenation params ~strategy ~start_at:100.0
      ~gap_s:gap
  in
  pf "@.analytic model lost capacity: %.0f host-seconds over %.0f s@."
    (Rejuv.Cluster.lost_capacity params timeline ~horizon_s:horizon)
    horizon
