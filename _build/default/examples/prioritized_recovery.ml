(* Prioritized recovery: when a cold reboot (or any mass boot) is
   unavoidable, credit-scheduler weights decide who comes back first.
   A critical VM with 4x weight gets most of the CPU complex during the
   parallel boot storm and answers well before the batch VMs.

   Run with: dune exec examples/prioritized_recovery.exe *)

let pf = Format.printf

let () =
  let vm_count = 6 in
  pf "Boot-storm recovery with credit-scheduler weights (%d VMs)@.@."
    vm_count;
  let engine = Simkit.Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Xenvmm.Vmm.create host in
  let booted = ref false in
  Xenvmm.Vmm.power_on vmm (fun () -> booted := true);
  Simkit.Engine.run engine;
  assert !booted;

  let make name =
    let r = ref None in
    Xenvmm.Vmm.create_domain vmm ~name ~mem_bytes:(Simkit.Units.gib 1)
      (fun x -> r := Some x);
    Simkit.Engine.run engine;
    match !r with
    | Some (Ok d) ->
      let kernel = Guest.Kernel.create vmm d () in
      ignore (Guest.Sshd.install kernel);
      (d, kernel)
    | _ -> failwith "provision failed"
  in
  let vms =
    List.init vm_count (fun i ->
        let name =
          if i = 0 then "critical" else Printf.sprintf "batch%d" i
        in
        (name, make name))
  in
  (* The critical VM gets 4x the scheduler weight (xm sched-credit -w). *)
  let critical_dom = fst (snd (List.hd vms)) in
  Xenvmm.Scheduler.set_params (Xenvmm.Vmm.scheduler vmm)
    ~domid:(Xenvmm.Domain.id critical_dom)
    { Xenvmm.Scheduler.weight = 1024; cap_percent = None };

  (* The boot storm: everyone boots at once (post-cold-reboot shape). *)
  let t0 = Simkit.Engine.now engine in
  let results = ref [] in
  List.iter
    (fun (name, (_, kernel)) ->
      Guest.Kernel.boot kernel (fun () ->
          results := (name, Simkit.Engine.now engine -. t0) :: !results))
    vms;
  Simkit.Engine.run engine;

  pf "%-10s %12s@." "VM" "up after";
  List.iter
    (fun (name, t) -> pf "%-10s %10.1f s@." name t)
    (List.sort (fun (_, a) (_, b) -> Float.compare a b) !results);
  let critical_t = List.assoc "critical" !results in
  let worst =
    List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 !results
  in
  pf "@.critical VM recovered %.1fx sooner than the slowest batch VM@."
    (worst /. critical_t);
  pf "(default weights would have everyone up together at ~%.1f s)@."
    ((3.4 *. float_of_int vm_count) +. 2.8 +. 0.4)
