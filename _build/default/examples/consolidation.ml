(* Server consolidation scenario: the paper's 11-VM testbed, comparing
   all three rejuvenation strategies on downtime and on what survives
   the reboot.

   Run with: dune exec examples/consolidation.exe [vm_count] *)

let pf = Format.printf

let describe (run : Rejuv.Experiment.reboot_run) =
  pf "%-16s  pre %7.1f s   vmm reboot %7.1f s   post %7.1f s   downtime %7.1f s@."
    (Rejuv.Strategy.name run.strategy)
    run.pre_task_s run.vmm_reboot_s run.post_task_s run.downtime_mean_s

let () =
  let vm_count =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11
  in
  pf "Consolidated host: %d VMs x 1 GiB, JBoss application server in each@.@."
    vm_count;

  let runs =
    List.map
      (fun strategy ->
        Rejuv.Experiment.run_reboot ~workload:Rejuv.Scenario.Jboss ~strategy
          ~vm_count
          ~vm_mem_bytes:(Simkit.Units.gib 1)
          ())
      Rejuv.Strategy.all
  in
  pf "pre = suspend/save/shutdown; post = resume/restore/boot@.";
  List.iter describe runs;

  (* What a client with an open ssh session experiences. *)
  pf "@.TCP session survival (ssh client with a 60 s timeout):@.";
  List.iter
    (fun (run : Rejuv.Experiment.reboot_run) ->
      let survives =
        Netsim.Tcp.survives ~outage_s:run.downtime_mean_s
          ~client_timeout_s:60.0 ()
      in
      pf "  %-16s outage %6.1f s -> session %s@."
        (Rejuv.Strategy.name run.strategy)
        run.downtime_mean_s
        (if survives then "survives" else "dies");
      if Rejuv.Strategy.restarts_services run.strategy then
        pf "  %-16s (services were shut down: sessions lost regardless)@." "")
    runs;

  (* Availability under the paper's Section 5.3 maintenance schedule. *)
  pf "@.Availability (weekly OS rejuvenation, VMM rejuvenation every 4 weeks):@.";
  let vmm_downtimes =
    List.map
      (fun (r : Rejuv.Experiment.reboot_run) -> (r.strategy, r.downtime_mean_s))
      runs
  in
  List.iter
    (fun (s, a) ->
      pf "  %-16s %a (%d nines)@." (Rejuv.Strategy.name s)
        Rejuv.Availability.pp_percent a (Rejuv.Availability.nines a))
    (Rejuv.Experiment.availability_table ~vmm_downtimes ())
