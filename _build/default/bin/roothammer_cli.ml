(* Command-line driver: run individual paper experiments, optionally
   exporting the data as CSV. `roothammer --help` lists commands. *)

open Cmdliner

let pf = Format.printf

(* --- common options -------------------------------------------------------- *)

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log VMM lifecycle events")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the data as CSV to $(docv)")

let write_csv path ~header rows =
  let oc = open_out path in
  output_string oc (String.concat "," header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  pf "wrote %s@." path

let maybe_csv csv ~header rows =
  Option.iter (fun path -> write_csv path ~header rows) csv

let workload_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "ssh" -> Ok Rejuv.Scenario.Ssh
    | "jboss" -> Ok Rejuv.Scenario.Jboss
    | _ -> Error (`Msg "workload must be ssh or jboss")
  in
  let print ppf w = Format.fprintf ppf "%s" (Rejuv.Scenario.workload_name w) in
  Arg.(
    value
    & opt (conv (parse, print)) Rejuv.Scenario.Ssh
    & info [ "workload" ] ~doc:"Service in each VM: ssh or jboss")

let strategy_arg =
  let parse s =
    match Rejuv.Strategy.of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg "strategy must be warm, saved or cold")
  in
  Arg.(
    value
    & opt (conv (parse, Rejuv.Strategy.pp)) Rejuv.Strategy.Warm
    & info [ "strategy" ] ~doc:"Reboot strategy: warm, saved or cold")

let cmd name ~doc term = Cmd.v (Cmd.info name ~doc) term

(* --- figure commands -------------------------------------------------------- *)

let print_task_times rows ~x_label =
  pf "%-6s %12s %12s %12s %12s %12s %12s@." x_label "onmem-susp" "onmem-res"
    "xen-save" "xen-restore" "shutdown" "boot";
  List.iter
    (fun (r : Rejuv.Experiment.task_times) ->
      pf "%-6d %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f@." r.x
        r.onmem_suspend_s r.onmem_resume_s r.xen_save_s r.xen_restore_s
        r.shutdown_s r.boot_s)
    rows

let task_times_csv rows =
  List.map
    (fun (r : Rejuv.Experiment.task_times) ->
      [
        string_of_int r.x;
        Printf.sprintf "%.3f" r.onmem_suspend_s;
        Printf.sprintf "%.3f" r.onmem_resume_s;
        Printf.sprintf "%.2f" r.xen_save_s;
        Printf.sprintf "%.2f" r.xen_restore_s;
        Printf.sprintf "%.2f" r.shutdown_s;
        Printf.sprintf "%.2f" r.boot_s;
      ])
    rows

let task_times_header x =
  [ x; "onmem_suspend_s"; "onmem_resume_s"; "xen_save_s"; "xen_restore_s";
    "shutdown_s"; "boot_s" ]

let fig4_cmd =
  let run verbose csv =
    setup_logs verbose;
    let rows = Rejuv.Experiment.fig4 () in
    print_task_times rows ~x_label:"GiB";
    maybe_csv csv ~header:(task_times_header "mem_gib") (task_times_csv rows)
  in
  cmd "fig4" ~doc:"Task times vs memory size of one VM"
    Term.(const run $ verbose_arg $ csv_arg)

let fig5_cmd =
  let run verbose csv =
    setup_logs verbose;
    let rows = Rejuv.Experiment.fig5 () in
    print_task_times rows ~x_label:"VMs";
    maybe_csv csv ~header:(task_times_header "vm_count") (task_times_csv rows)
  in
  cmd "fig5" ~doc:"Task times vs number of VMs"
    Term.(const run $ verbose_arg $ csv_arg)

let reload_cmd =
  let run verbose =
    setup_logs verbose;
    let r = Rejuv.Experiment.quick_reload_effect () in
    pf "quick reload:   %6.1f s (paper: 11 s)@." r.quick_reload_s;
    pf "hardware reset: %6.1f s (paper: 59 s)@." r.hardware_reset_s
  in
  cmd "reload" ~doc:"Section 5.2: effect of quick reload"
    Term.(const run $ verbose_arg)

let fig6_cmd =
  let run verbose workload csv =
    setup_logs verbose;
    let rows = Rejuv.Experiment.fig6 ~workload () in
    pf "%-6s %10s %10s %10s@." "VMs" "warm" "saved" "cold";
    List.iter
      (fun (r : Rejuv.Experiment.fig6_row) ->
        pf "%-6d %10.1f %10.1f %10.1f@." r.n r.warm_downtime_s
          r.saved_downtime_s r.cold_downtime_s)
      rows;
    maybe_csv csv
      ~header:[ "vm_count"; "warm_s"; "saved_s"; "cold_s" ]
      (List.map
         (fun (r : Rejuv.Experiment.fig6_row) ->
           [
             string_of_int r.n;
             Printf.sprintf "%.1f" r.warm_downtime_s;
             Printf.sprintf "%.1f" r.saved_downtime_s;
             Printf.sprintf "%.1f" r.cold_downtime_s;
           ])
         rows)
  in
  cmd "fig6" ~doc:"Downtime of networked services"
    Term.(const run $ verbose_arg $ workload_arg $ csv_arg)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's operation timeline as a Chrome trace \
           (chrome://tracing, ui.perfetto.dev) to $(docv)")

let fig7_cmd =
  let run verbose strategy csv trace =
    setup_logs verbose;
    let r = Rejuv.Experiment.fig7 ~strategy () in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc r.Rejuv.Experiment.chrome_trace_json;
        close_out oc;
        pf "wrote %s@." path)
      trace;
    pf "# %a; reboot command at t=%.0f s@." Rejuv.Strategy.pp r.f7_strategy
      r.reboot_command_at;
    (match (r.web_down_at, r.web_up_at) with
    | Some d, Some u -> pf "# web server down %.1f .. %.1f s@." d u
    | _ -> ());
    List.iter
      (fun (l, a, b) -> pf "# span %-28s %8.1f .. %8.1f@." l a b)
      r.f7_spans;
    List.iter (fun (t, v) -> pf "%8.1f %10.1f@." t v) r.throughput;
    maybe_csv csv ~header:[ "time_s"; "req_per_s" ]
      (List.map
         (fun (t, v) ->
           [ Printf.sprintf "%.2f" t; Printf.sprintf "%.1f" v ])
         r.throughput)
  in
  cmd "fig7" ~doc:"Throughput timeline during the reboot"
    Term.(const run $ verbose_arg $ strategy_arg $ csv_arg $ trace_arg)

let fig8_cmd =
  let run verbose strategy =
    setup_logs verbose;
    let file = Rejuv.Experiment.fig8_file ~strategy () in
    let web = Rejuv.Experiment.fig8_web ~strategy () in
    pf
      "file read (MiB/s): before %.0f/%.0f after %.0f/%.0f  degradation %.0f%%@."
      file.first_before file.second_before file.first_after file.second_after
      (100.0 *. file.degradation);
    pf
      "web (req/s):       before %.0f/%.0f after %.0f/%.0f  degradation %.0f%%@."
      web.first_before web.second_before web.first_after web.second_after
      (100.0 *. web.degradation)
  in
  cmd "fig8" ~doc:"Throughput before/after the reboot"
    Term.(const run $ verbose_arg $ strategy_arg)

let fits_cmd =
  let run verbose =
    setup_logs verbose;
    pf "%a" Rejuv.Downtime_model.pp (Rejuv.Experiment.section_5_6_fits ())
  in
  cmd "fits" ~doc:"Section 5.6: fitted downtime model"
    Term.(const run $ verbose_arg)

let avail_cmd =
  let run verbose =
    setup_logs verbose;
    let os_downtime = Rejuv.Experiment.run_os_rejuvenation () in
    pf "OS rejuvenation downtime: %.1f s (paper: 33.6 s)@." os_downtime;
    let fig6 =
      Rejuv.Experiment.fig6 ~vm_counts:[ 11 ] ~workload:Rejuv.Scenario.Jboss ()
    in
    let row = List.hd fig6 in
    let table =
      Rejuv.Experiment.availability_table ~os_downtime_s:os_downtime
        ~vmm_downtimes:
          [
            (Rejuv.Strategy.Warm, row.warm_downtime_s);
            (Rejuv.Strategy.Cold, row.cold_downtime_s);
            (Rejuv.Strategy.Saved, row.saved_downtime_s);
          ]
        ()
    in
    List.iter
      (fun (s, a) ->
        pf "%-16s %a (%d nines)@." (Rejuv.Strategy.name s)
          Rejuv.Availability.pp_percent a
          (Rejuv.Availability.nines a))
      table
  in
  cmd "avail" ~doc:"Section 5.3: availability" Term.(const run $ verbose_arg)

let fig9_cmd =
  let run verbose csv =
    setup_logs verbose;
    let p = Rejuv.Cluster.paper_params () in
    let horizon = 2400.0 in
    let all = ref [] in
    let show name tl =
      pf "# %s@." name;
      List.iter
        (fun (t, v) ->
          all := [ name; Printf.sprintf "%.0f" t; Printf.sprintf "%.2f" v ]
                 :: !all;
          pf "%8.0f %8.2f@." t v)
        tl;
      pf "# lost capacity over %.0f s: %.1f host-seconds@." horizon
        (Rejuv.Cluster.lost_capacity p tl ~horizon_s:horizon)
    in
    show "warm" (Rejuv.Cluster.warm_timeline p ~reboot_at:600.0);
    show "cold" (Rejuv.Cluster.cold_timeline p ~reboot_at:600.0);
    show "migration" (Rejuv.Cluster.migration_timeline p ~migrate_at:600.0);
    maybe_csv csv ~header:[ "scheme"; "time_s"; "throughput" ] (List.rev !all)
  in
  cmd "fig9" ~doc:"Cluster throughput model"
    Term.(const run $ verbose_arg $ csv_arg)

let migrate_cmd =
  let mem_arg =
    Arg.(value & opt int 1 & info [ "mem-gib" ] ~doc:"VM memory in GiB")
  in
  let dirty_arg =
    Arg.(
      value & opt float 20.0
      & info [ "dirty-mib" ] ~doc:"Dirty rate while running, MiB/s")
  in
  let run verbose mem_gib dirty_mib =
    setup_logs verbose;
    let p =
      Rejuv.Migration.plan
        ~mem_bytes:(Simkit.Units.gib mem_gib)
        ~dirty_bytes_per_s:(dirty_mib *. 1048576.0)
        ()
    in
    pf "pre-copy rounds:@.";
    List.iteri
      (fun i (bytes, duration) ->
        pf "  round %2d: %8.1f MiB in %6.2f s@." (i + 1)
          (Simkit.Units.bytes_to_mib bytes)
          duration)
      p.Rejuv.Migration.rounds;
    pf "stop-and-copy: %.1f MiB, blackout %.2f s@."
      (Simkit.Units.bytes_to_mib p.Rejuv.Migration.stop_copy_bytes)
      p.Rejuv.Migration.downtime_s;
    pf "total migration time: %.1f s@." p.Rejuv.Migration.total_s
  in
  cmd "migrate" ~doc:"Pre-copy live migration plan (Section 6)"
    Term.(const run $ verbose_arg $ mem_arg $ dirty_arg)

let schedule_cmd =
  let duration_arg =
    Arg.(
      value & opt float 42.0
      & info [ "duration" ] ~doc:"Rejuvenation outage length, seconds")
  in
  let run verbose duration =
    setup_logs verbose;
    (* A diurnal request-rate forecast, hour resolution. *)
    let profile =
      List.init 24 (fun h ->
          let load =
            if h < 7 then 80.0
            else if h < 9 then 400.0
            else if h < 18 then 900.0
            else if h < 22 then 500.0
            else 150.0
          in
          (float_of_int h *. 3600.0, load))
    in
    let start, cost =
      Rejuv.Policy.Load.best_window profile ~duration
        ~horizon:(24.0 *. 3600.0)
    in
    pf "best %.0f s rejuvenation window starts at %02d:%02d (displaces %.0f requests)@."
      duration
      (int_of_float (start /. 3600.0))
      (int_of_float (Float.rem start 3600.0 /. 60.0))
      cost;
    pf "midday placement would displace %.0f@."
      (Rejuv.Policy.Load.cost profile ~start:(12.0 *. 3600.0) ~duration)
  in
  cmd "schedule" ~doc:"Load-aware placement of the rejuvenation window"
    Term.(const run $ verbose_arg $ duration_arg)

let cluster_cmd =
  let hosts_arg =
    Arg.(value & opt int 4 & info [ "hosts" ] ~doc:"Cluster size")
  in
  let run verbose hosts strategy =
    setup_logs verbose;
    let c =
      Rejuv.Cluster_sim.create ~hosts ~vms_per_host:3
        ~vm_mem_bytes:(Simkit.Units.gib 1) ~workload:Rejuv.Scenario.Ssh ()
    in
    Rejuv.Cluster_sim.start c;
    pf "%d hosts up; rolling %s under 100 req/s...@." hosts
      (Rejuv.Strategy.name strategy);
    let r = Rejuv.Cluster_sim.rolling_rejuvenation c ~strategy () in
    pf "rolling cycle: %.1f s; per-host %s@."
      r.Rejuv.Cluster_sim.total_elapsed_s
      (String.concat " "
         (List.map
            (fun o -> Printf.sprintf "%.0fs" o)
            r.Rejuv.Cluster_sim.per_host_outage_s));
    pf "requests lost: %d of %d (%.1f %%)@." r.Rejuv.Cluster_sim.lost
      r.Rejuv.Cluster_sim.offered
      (100.0 *. r.Rejuv.Cluster_sim.loss_ratio)
  in
  cmd "cluster" ~doc:"Rolling rejuvenation across a simulated cluster"
    Term.(const run $ verbose_arg $ hosts_arg $ strategy_arg)

let report_cmd =
  let n_arg =
    Arg.(value & opt int 11 & info [ "n"; "vm-count" ] ~doc:"Number of VMs")
  in
  let run verbose n =
    setup_logs verbose;
    let r = Rejuv.Report.run ~vm_count:n () in
    pf "%a" Rejuv.Report.pp r;
    if not (Rejuv.Report.all_hold r) then exit 1
  in
  cmd "report" ~doc:"One-page paper-vs-measured reproduction report"
    Term.(const run $ verbose_arg $ n_arg)

let default = Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "roothammer" ~version:Rejuv.Roothammer.version
      ~doc:"Warm-VM reboot experiments (Kourai & Chiba, DSN 2007)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig4_cmd; fig5_cmd; reload_cmd; fig6_cmd; fig7_cmd; fig8_cmd;
            fits_cmd; avail_cmd; fig9_cmd; migrate_cmd; schedule_cmd;
            cluster_cmd; report_cmd;
          ]))
