(* Cross-module invariants checked under randomized drivers: memory
   conservation through random rejuvenation sequences, trace exporter
   well-formedness, and resource behaviour under churn. *)
open Helpers
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Engine = Simkit.Engine
module Trace = Simkit.Trace

let gib = Simkit.Units.gib

let p2m_ok d = Xenvmm.P2m.check_invariants (Domain.p2m d) = Ok ()

(* Drive a random sequence of operations (create, destroy, balloon,
   warm reboot) and verify memory bookkeeping never drifts. *)
let prop_memory_conserved_under_churn =
  qtest ~count:25 "machine memory conserved under random lifecycle churn"
    QCheck.(list_of_size (Gen.int_range 1 12) (int_range 0 4))
    (fun ops ->
      let engine = Engine.create () in
      let host = Hw.Host.create engine in
      let vmm = Vmm.create host in
      let ok = ref true in
      run_task engine (Vmm.power_on vmm);
      let kernels = ref [] in
      let counter = ref 0 in
      let create () =
        incr counter;
        let r = ref None in
        Vmm.create_domain vmm
          ~name:(Printf.sprintf "vm%d" !counter)
          ~mem_bytes:(gib 1) (fun x -> r := Some x);
        Engine.run engine;
        match !r with
        | Some (Ok d) ->
          let k = Guest.Kernel.create vmm d () in
          run_task engine (Guest.Kernel.boot k);
          kernels := k :: !kernels
        | _ -> ()
      in
      let destroy () =
        match !kernels with
        | [] -> ()
        | k :: rest ->
          kernels := rest;
          run_task engine (Guest.Kernel.shutdown k);
          run_task engine (Vmm.destroy_domain vmm (Guest.Kernel.domain k))
      in
      let balloon () =
        match !kernels with
        | [] -> ()
        | k :: _ -> ignore (Guest.Kernel.balloon k ~delta_bytes:(-1048576))
      in
      let warm_reboot () =
        run_task engine (Vmm.shutdown_dom0 vmm);
        run_task engine (Vmm.suspend_all_on_memory vmm);
        let r = ref None in
        Vmm.quick_reload vmm (fun x -> r := Some x);
        Engine.run engine;
        if !r <> Some (Ok ()) then ok := false;
        run_task engine (Vmm.boot_dom0 vmm);
        List.iter
          (fun k ->
            let res = ref None in
            Vmm.resume_domain_on_memory vmm (Guest.Kernel.domain k)
              (fun x -> res := Some x);
            Engine.run engine;
            if !res <> Some (Ok ()) then ok := false)
          !kernels
      in
      List.iter
        (fun op ->
          match op with
          | 0 | 3 -> create ()
          | 1 -> destroy ()
          | 2 -> balloon ()
          | _ -> warm_reboot ())
        ops;
      let memory = host.Hw.Host.memory in
      let frames_ok =
        Hw.Frame.check_invariants (Hw.Memory.frames memory) = Ok ()
      in
      let live_footprint =
        List.fold_left
          (fun acc d ->
            acc
            + Xenvmm.P2m.mapped_bytes (Domain.p2m d)
            + Hw.Frame.extents_bytes (Domain.p2m_frames d)
            + (match Domain.exec_state d with
              | Some es -> Hw.Frame.extents_bytes es.Domain.state_frames
              | None -> 0))
          0
          ((match Vmm.dom0 vmm with Some d -> [ d ] | None -> [])
          @ Vmm.domus vmm)
      in
      let conserved =
        Hw.Memory.free_bytes memory + live_footprint
        = Hw.Memory.total_bytes memory
      in
      !ok && frames_ok && conserved
      && List.for_all (fun k -> p2m_ok (Guest.Kernel.domain k)) !kernels)

(* --- trace exporters ------------------------------------------------------ *)

let sample_trace () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let s = Trace.begin_span tr "boot \"dom0\"" in
  ignore
    (Engine.schedule e ~delay:2.5 (fun () ->
         Trace.end_span tr s;
         Trace.instant tr "mark,with comma"));
  Engine.run e;
  tr

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_chrome_json_shape () =
  let json = Trace.to_chrome_json (sample_trace ()) in
  check_true "array" (String.length json > 2 && json.[0] = '[');
  check_true "closes" (json.[String.length json - 1] = ']');
  check_true "span event" (contains ~needle:{|"ph":"X"|} json);
  check_true "instant event" (contains ~needle:{|"ph":"i"|} json);
  check_true "quotes escaped" (contains ~needle:{|boot \"dom0\"|} json)

let test_csv_shape () =
  let csv = Trace.to_csv (sample_trace ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
    check_true "header" (header = "kind,label,start_s,stop_s");
    check_int "two rows" 2 (List.length rows);
    check_true "comma label quoted"
      (List.exists
         (fun r -> String.length r > 0 && String.contains r '"')
         rows)
  | [] -> Alcotest.fail "empty csv")

let test_empty_trace_exports () =
  let e = Engine.create () in
  let tr = Trace.create e in
  check_true "empty json" (Trace.to_chrome_json tr = "[]");
  check_true "header only" (String.trim (Trace.to_csv tr) = "kind,label,start_s,stop_s")

(* --- resource churn ------------------------------------------------------- *)

let prop_resource_random_cancel_consistent =
  qtest ~count:100 "resource stays consistent under random cancels"
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (float_range 0.5 5.0) bool))
    (fun specs ->
      let e = Engine.create () in
      let r = Simkit.Resource.create e ~name:"r" ~capacity:1.0 in
      let completions = ref 0 in
      let expected = ref 0 in
      List.iter
        (fun (work, cancel_it) ->
          let job = Simkit.Resource.submit r ~work (fun () -> incr completions) in
          if cancel_it then
            ignore
              (Engine.schedule e ~delay:0.1 (fun () ->
                   Simkit.Resource.cancel r job))
          else incr expected)
        specs;
      Engine.run e;
      (* Cancels fire at t=0.1, before any 0.5+-work job can finish, so
         exactly the uncancelled jobs complete. *)
      !completions = !expected && Simkit.Resource.active_jobs r = 0)

let suite =
  ( "invariants",
    [
      prop_memory_conserved_under_churn;
      Alcotest.test_case "chrome trace json" `Quick test_chrome_json_shape;
      Alcotest.test_case "trace csv" `Quick test_csv_shape;
      Alcotest.test_case "empty trace" `Quick test_empty_trace_exports;
      prop_resource_random_cancel_consistent;
    ] )
