open Helpers
module Tcp = Netsim.Tcp

let test_retransmit_schedule () =
  let cfg = { Tcp.rto_initial_s = 1.0; rto_max_s = 8.0; max_retries = 6 } in
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff capped"
    [ 1.0; 3.0; 7.0; 15.0; 23.0; 31.0 ]
    (Tcp.retransmit_offsets cfg)

let test_give_up () =
  let cfg = { Tcp.rto_initial_s = 1.0; rto_max_s = 8.0; max_retries = 6 } in
  check_float "last retry + capped wait" 39.0 (Tcp.give_up_after cfg)

let test_default_window_generous () =
  (* Linux-like defaults give up after roughly 15 minutes. *)
  let w = Tcp.give_up_after Tcp.default in
  check_in_band "~13-16 min" ~lo:700.0 ~hi:1100.0 w

let test_short_outage_survives () =
  check_true "survives" (Tcp.survives ~outage_s:42.0 ())

let test_very_long_outage_dies () =
  check_false "stack gives up" (Tcp.survives ~outage_s:2000.0 ())

let test_client_timeout () =
  (* The paper's observation: with a 60 s client timeout, the ssh
     session survives the warm-VM reboot (42 s) but not the saved-VM
     reboot (429 s). *)
  check_true "warm survives"
    (Tcp.survives ~outage_s:42.0 ~client_timeout_s:60.0 ());
  check_false "saved times out"
    (Tcp.survives ~outage_s:429.0 ~client_timeout_s:60.0 ());
  (* Without the client timeout both survive the stack's window. *)
  check_true "saved survives without client timeout"
    (Tcp.survives ~outage_s:429.0 ())

let test_zero_outage () =
  check_true "trivial" (Tcp.survives ~outage_s:0.0 ());
  check_true "negative rejected"
    (try ignore (Tcp.survives ~outage_s:(-1.0) ()); false
     with Invalid_argument _ -> true)

let test_first_retransmit_after () =
  let cfg = { Tcp.rto_initial_s = 1.0; rto_max_s = 8.0; max_retries = 6 } in
  (* Outage 5 s: next retry at offset 7, so 2 s after recovery. *)
  (match Tcp.first_retransmit_after ~config:cfg ~outage_s:5.0 () with
  | Some d -> check_float "post-recovery latency" 2.0 d
  | None -> Alcotest.fail "expected survival");
  check_true "dead session yields None"
    (Tcp.first_retransmit_after ~config:cfg ~outage_s:100.0 () = None)

let prop_longer_outages_never_help =
  qtest "survival is monotone in outage length"
    QCheck.(pair (float_range 0.0 1500.0) (float_range 0.0 1500.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      (* If the long outage survives, the short one must too. *)
      (not (Tcp.survives ~outage_s:hi ())) || Tcp.survives ~outage_s:lo ())

let prop_offsets_increasing =
  qtest "retransmit offsets strictly increase"
    QCheck.(pair (float_range 0.1 5.0) (int_range 1 20))
    (fun (rto, retries) ->
      let cfg =
        { Tcp.rto_initial_s = rto; rto_max_s = rto *. 16.0;
          max_retries = retries }
      in
      let offsets = Tcp.retransmit_offsets cfg in
      List.length offsets = retries
      &&
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      increasing offsets)

let suite =
  ( "tcp",
    [
      Alcotest.test_case "retransmit schedule" `Quick test_retransmit_schedule;
      Alcotest.test_case "give up" `Quick test_give_up;
      Alcotest.test_case "default window" `Quick test_default_window_generous;
      Alcotest.test_case "short outage survives" `Quick
        test_short_outage_survives;
      Alcotest.test_case "long outage dies" `Quick test_very_long_outage_dies;
      Alcotest.test_case "client timeout (paper scenario)" `Quick
        test_client_timeout;
      Alcotest.test_case "zero outage" `Quick test_zero_outage;
      Alcotest.test_case "first retransmit after" `Quick
        test_first_retransmit_after;
      prop_longer_outages_never_help;
      prop_offsets_increasing;
    ] )
