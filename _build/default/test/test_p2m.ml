open Helpers
module P2m = Xenvmm.P2m
module Frame = Hw.Frame

let ext first count = { Frame.first; count }

let test_empty () =
  let t = P2m.create () in
  check_int "pages" 0 (P2m.pages t);
  check_int "bytes" 0 (P2m.mapped_bytes t);
  check_true "lookup" (P2m.lookup t ~pfn:0 = None);
  check_true "invariants" (P2m.check_invariants t = Ok ())

let test_add_and_lookup () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 1000 10);
  check_int "pages" 10 (P2m.pages t);
  check_true "first" (P2m.lookup t ~pfn:0 = Some 1000);
  check_true "middle" (P2m.lookup t ~pfn:5 = Some 1005);
  check_true "last" (P2m.lookup t ~pfn:9 = Some 1009);
  check_true "past end" (P2m.lookup t ~pfn:10 = None)

let test_multiple_extents () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 500 4);
  P2m.add_extent t ~pfn_first:4 ~mfns:(ext 100 4);
  check_int "pages" 8 (P2m.pages t);
  check_true "from first" (P2m.lookup t ~pfn:3 = Some 503);
  check_true "from second" (P2m.lookup t ~pfn:4 = Some 100);
  check_true "invariants" (P2m.check_invariants t = Ok ());
  check_int "two machine extents" 2 (List.length (P2m.machine_extents t))

let test_overlap_rejected () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:10 ~mfns:(ext 0 10);
  List.iter
    (fun pfn ->
      check_true
        (Printf.sprintf "overlap at %d" pfn)
        (try
           P2m.add_extent t ~pfn_first:pfn ~mfns:(ext 100 5);
           false
         with Invalid_argument _ -> true))
    [ 10; 15; 19; 6 ];
  (* Adjacent, non-overlapping is fine. *)
  P2m.add_extent t ~pfn_first:20 ~mfns:(ext 100 5);
  P2m.add_extent t ~pfn_first:5 ~mfns:(ext 200 5);
  check_true "invariants" (P2m.check_invariants t = Ok ())

let test_table_bytes () =
  (* 8 bytes per page: 2 MiB of table per GiB of memory. *)
  let t = P2m.create () in
  let pages_per_gib = Simkit.Units.gib 1 / Simkit.Units.page_bytes in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 0 pages_per_gib);
  check_int "2 MiB per GiB" (Simkit.Units.mib 2) (P2m.table_bytes t)

let test_remove_range_exact () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 1000 10);
  let released = P2m.remove_range t ~pfn_first:0 ~count:10 in
  check_int "released frames" 10 (Frame.extents_frames released);
  check_int "empty" 0 (P2m.pages t)

let test_remove_range_partial () =
  (* Ballooning down: remove the tail of a run. *)
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 1000 10);
  let released = P2m.remove_range t ~pfn_first:6 ~count:4 in
  check_int "released" 4 (Frame.extents_frames released);
  (match released with
  | [ e ] -> check_int "right frames" 1006 e.Frame.first
  | _ -> Alcotest.fail "expected one extent");
  check_int "remaining" 6 (P2m.pages t);
  check_true "kept head" (P2m.lookup t ~pfn:5 = Some 1005);
  check_true "removed tail" (P2m.lookup t ~pfn:6 = None);
  check_true "invariants" (P2m.check_invariants t = Ok ())

let test_remove_range_middle () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 1000 10);
  let released = P2m.remove_range t ~pfn_first:3 ~count:4 in
  check_int "released" 4 (Frame.extents_frames released);
  check_true "head" (P2m.lookup t ~pfn:2 = Some 1002);
  check_true "hole" (P2m.lookup t ~pfn:4 = None);
  check_true "tail" (P2m.lookup t ~pfn:8 = Some 1008);
  check_int "pages" 6 (P2m.pages t);
  check_true "invariants" (P2m.check_invariants t = Ok ())

let test_remove_unmapped_rejected () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 1000 5);
  check_true "raises"
    (try ignore (P2m.remove_range t ~pfn_first:3 ~count:5); false
     with Invalid_argument _ -> true);
  check_int "unchanged" 5 (P2m.pages t)

let test_remove_all () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 10 5);
  P2m.add_extent t ~pfn_first:5 ~mfns:(ext 100 5);
  let released = P2m.remove_all t in
  check_int "all released" 10 (Frame.extents_frames released);
  check_int "empty" 0 (P2m.pages t)

let test_fold () =
  let t = P2m.create () in
  P2m.add_extent t ~pfn_first:0 ~mfns:(ext 10 5);
  P2m.add_extent t ~pfn_first:5 ~mfns:(ext 20 3);
  let total =
    P2m.fold t ~init:0 ~f:(fun acc ~pfn_first:_ ~mfns -> acc + mfns.Frame.count)
  in
  check_int "fold sums" 8 total

let prop_lookup_consistent =
  qtest ~count:100 "lookup agrees with construction"
    QCheck.(list_of_size (Gen.int_range 1 10) (int_range 1 16))
    (fun sizes ->
      let t = P2m.create () in
      (* Build runs back-to-back in PFN space, machine extents spaced
         out to stay disjoint. *)
      let _ =
        List.fold_left
          (fun (pfn, mfn) count ->
            P2m.add_extent t ~pfn_first:pfn ~mfns:(ext mfn count);
            (pfn + count, mfn + count + 7))
          (0, 0) sizes
      in
      let total = List.fold_left ( + ) 0 sizes in
      P2m.check_invariants t = Ok ()
      && P2m.pages t = total
      && List.for_all (fun pfn -> P2m.lookup t ~pfn <> None)
           (List.init total Fun.id)
      && P2m.lookup t ~pfn:total = None)

let suite =
  ( "p2m",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add and lookup" `Quick test_add_and_lookup;
      Alcotest.test_case "multiple extents" `Quick test_multiple_extents;
      Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
      Alcotest.test_case "table bytes (2MiB/GiB)" `Quick test_table_bytes;
      Alcotest.test_case "remove exact" `Quick test_remove_range_exact;
      Alcotest.test_case "remove partial" `Quick test_remove_range_partial;
      Alcotest.test_case "remove middle" `Quick test_remove_range_middle;
      Alcotest.test_case "remove unmapped" `Quick test_remove_unmapped_rejected;
      Alcotest.test_case "remove all" `Quick test_remove_all;
      Alcotest.test_case "fold" `Quick test_fold;
      prop_lookup_consistent;
    ] )
