open Helpers
module Xenstore = Xenvmm.Xenstore

let test_read_write () =
  let s = Xenstore.create () in
  check_true "missing" (Xenstore.read s ~path:"/vm/1/name" = None);
  Xenstore.write s ~path:"/vm/1/name" "vm01";
  check_true "present" (Xenstore.read s ~path:"/vm/1/name" = Some "vm01");
  Xenstore.write s ~path:"/vm/1/name" "vm01b";
  check_true "overwritten" (Xenstore.read s ~path:"/vm/1/name" = Some "vm01b");
  check_int "one entry" 1 (Xenstore.entries s)

let test_rm_subtree () =
  let s = Xenstore.create () in
  Xenstore.write s ~path:"/vm/1/name" "a";
  Xenstore.write s ~path:"/vm/1/memory" "b";
  Xenstore.write s ~path:"/vm/2/name" "c";
  Xenstore.rm s ~path:"/vm/1";
  check_true "gone" (Xenstore.read s ~path:"/vm/1/name" = None);
  check_true "sibling kept" (Xenstore.read s ~path:"/vm/2/name" = Some "c")

let test_directory () =
  let s = Xenstore.create () in
  Xenstore.write s ~path:"/vm/1/name" "a";
  Xenstore.write s ~path:"/vm/2/name" "b";
  Xenstore.write s ~path:"/vm/2/memory" "c";
  Alcotest.(check (list string)) "children" [ "1"; "2" ]
    (Xenstore.directory s ~path:"/vm");
  Alcotest.(check (list string)) "leaves" [ "memory"; "name" ]
    (Xenstore.directory s ~path:"/vm/2")

let test_watch () =
  let s = Xenstore.create () in
  let seen = ref [] in
  Xenstore.watch s ~path:"/vm/1" (fun p -> seen := p :: !seen);
  Xenstore.write s ~path:"/vm/1/state" "running";
  Xenstore.write s ~path:"/vm/2/state" "running";
  Xenstore.rm s ~path:"/vm/1";
  Alcotest.(check (list string))
    "only watched prefix" [ "/vm/1/state"; "/vm/1" ]
    (List.rev !seen)

let test_transactions_counted () =
  let s = Xenstore.create () in
  Xenstore.write s ~path:"/a" "1";
  ignore (Xenstore.read s ~path:"/a");
  Xenstore.rm s ~path:"/a";
  ignore (Xenstore.directory s ~path:"/");
  check_int "four transactions" 4 (Xenstore.transactions s)

let test_leak_per_transaction () =
  (* The changeset-8640 bug: memory grows with every transaction. *)
  let s = Xenstore.create ~leak_per_transaction_bytes:4096 () in
  let before = Xenstore.memory_bytes s in
  for i = 1 to 100 do
    Xenstore.write s ~path:"/spam" (string_of_int i)
  done;
  let grown = Xenstore.memory_bytes s - before in
  check_true "leaked at least 400 KiB" (grown >= 100 * 4096)

let test_io_slowdown_under_pressure () =
  let s =
    Xenstore.create ~leak_per_transaction_bytes:(1024 * 1024)
      ~memory_budget_bytes:(8 * 1024 * 1024) ()
  in
  check_float "healthy" 1.0 (Xenstore.io_slowdown s);
  for _ = 1 to 10 do
    Xenstore.write s ~path:"/x" "y"
  done;
  check_true "degraded past budget" (Xenstore.io_slowdown s > 1.5)

let test_not_restartable () =
  (* The paper's point: xenstored cannot be restarted without rebooting
     dom0 (and thus, without warm-VM reboot, the whole VMM). *)
  check_false "not restartable" Xenstore.restartable

let suite =
  ( "xenstore",
    [
      Alcotest.test_case "read/write" `Quick test_read_write;
      Alcotest.test_case "rm subtree" `Quick test_rm_subtree;
      Alcotest.test_case "directory" `Quick test_directory;
      Alcotest.test_case "watch" `Quick test_watch;
      Alcotest.test_case "transactions counted" `Quick test_transactions_counted;
      Alcotest.test_case "leak per transaction" `Quick test_leak_per_transaction;
      Alcotest.test_case "io slowdown" `Quick test_io_slowdown_under_pressure;
      Alcotest.test_case "not restartable" `Quick test_not_restartable;
    ] )
