open Helpers
module Fs = Guest.Filesystem
module Cache = Guest.Page_cache
module Engine = Simkit.Engine

let mib = Simkit.Units.mib

let make ?(cache_mib = 256) () =
  let e = Engine.create () in
  let disk =
    Hw.Disk.create e ~read_mib_per_s:88.0 ~write_mib_per_s:85.0 ~seek_ms:4.0 ()
  in
  let cache = Cache.create ~capacity_bytes:(mib cache_mib) () in
  let fs = Fs.create e ~disk ~cache () in
  (e, fs)

let read_duration e fs file ?access () =
  task_duration e (fun k -> Fs.read fs file ?access k)

let test_create_file () =
  let _e, fs = make () in
  let f = Fs.create_file fs ~name:"data" ~bytes:(mib 1) () in
  check_int "size" (mib 1) (Fs.file_bytes f);
  check_true "name" (Fs.file_name f = "data");
  check_int "listed" 1 (List.length (Fs.files fs))

let test_cold_read_hits_disk () =
  let e, fs = make () in
  let f = Fs.create_file fs ~bytes:(mib 88) () in
  let d = read_duration e fs f () in
  (* 88 MiB at 88 MiB/s sequential + one seek. *)
  check_close ~tolerance:0.02 "disk speed" 1.004 d;
  check_float "fully cached after" 1.0 (Fs.cached_fraction fs f)

let test_warm_read_hits_memory () =
  let e, fs = make () in
  let f = Fs.create_file fs ~bytes:(mib 95) () in
  Fs.warm_file fs f;
  check_float "resident" 1.0 (Fs.cached_fraction fs f);
  let d = read_duration e fs f () in
  (* 95 MiB at 950 MiB/s. *)
  check_close ~tolerance:0.02 "memory speed" 0.1 d

let test_second_read_faster () =
  let e, fs = make () in
  let f = Fs.create_file fs ~bytes:(mib 32) () in
  let first = read_duration e fs f () in
  let second = read_duration e fs f () in
  check_true "second read ~10x faster" (second < first /. 5.0)

let test_partial_cache_mix () =
  let e, fs = make () in
  let f = Fs.create_file fs ~bytes:(mib 10) () in
  (* Cache the first half via a range read. *)
  run_task e (fun k -> Fs.read_range fs f ~offset:0 ~bytes:(mib 5) k);
  check_close ~tolerance:0.02 "half resident" 0.5 (Fs.cached_fraction fs f);
  let d = read_duration e fs f () in
  let expected = (5.0 /. 950.0) +. (5.0 /. 88.0) +. 0.004 in
  check_close ~tolerance:0.05 "mixed speed" expected d

let test_eviction_under_pressure () =
  let e, fs = make ~cache_mib:8 () in
  let f1 = Fs.create_file fs ~bytes:(mib 8) () in
  let f2 = Fs.create_file fs ~bytes:(mib 8) () in
  run_task e (fun k -> Fs.read fs f1 k);
  run_task e (fun k -> Fs.read fs f2 k);
  (* f2 displaced f1. *)
  check_true "f1 evicted" (Fs.cached_fraction fs f1 < 0.1);
  check_float "f2 resident" 1.0 (Fs.cached_fraction fs f2)

let test_read_range_bounds () =
  let _e, fs = make () in
  let f = Fs.create_file fs ~bytes:4096 () in
  check_true "negative offset"
    (try Fs.read_range fs f ~offset:(-1) ~bytes:1 (fun () -> ()); false
     with Invalid_argument _ -> true);
  check_true "past end"
    (try Fs.read_range fs f ~offset:0 ~bytes:8192 (fun () -> ()); false
     with Invalid_argument _ -> true)

let test_zero_byte_range () =
  let e, fs = make () in
  let f = Fs.create_file fs ~bytes:4096 () in
  check_float "instant" 0.0
    (task_duration e (fun k -> Fs.read_range fs f ~offset:0 ~bytes:0 k))

let test_random_access_slower_than_sequential () =
  let e, fs = make () in
  let f1 = Fs.create_file fs ~bytes:(mib 64) () in
  let f2 = Fs.create_file fs ~bytes:(mib 64) () in
  let seq = read_duration e fs f1 ~access:Fs.Sequential () in
  let rnd = read_duration e fs f2 ~access:Fs.Random () in
  check_true "penalty applies" (rnd > seq *. 1.3)

let test_analytic_times () =
  let _e, fs = make () in
  let f = Fs.create_file fs ~bytes:(mib 88) () in
  check_close ~tolerance:0.02 "uncached" 1.004 (Fs.uncached_read_time fs f);
  check_close ~tolerance:0.02 "cached" (88.0 /. 950.0)
    (Fs.cached_read_time fs f)

let test_invalid_create () =
  let _e, fs = make () in
  check_true "empty file rejected"
    (try ignore (Fs.create_file fs ~bytes:0 ()); false
     with Invalid_argument _ -> true)

let suite =
  ( "filesystem",
    [
      Alcotest.test_case "create file" `Quick test_create_file;
      Alcotest.test_case "cold read from disk" `Quick test_cold_read_hits_disk;
      Alcotest.test_case "warm read from memory" `Quick
        test_warm_read_hits_memory;
      Alcotest.test_case "second read faster" `Quick test_second_read_faster;
      Alcotest.test_case "partial cache mix" `Quick test_partial_cache_mix;
      Alcotest.test_case "eviction under pressure" `Quick
        test_eviction_under_pressure;
      Alcotest.test_case "range bounds" `Quick test_read_range_bounds;
      Alcotest.test_case "zero-byte range" `Quick test_zero_byte_range;
      Alcotest.test_case "random slower than sequential" `Quick
        test_random_access_slower_than_sequential;
      Alcotest.test_case "analytic times" `Quick test_analytic_times;
      Alcotest.test_case "invalid create" `Quick test_invalid_create;
    ] )
