open Helpers
module Engine = Simkit.Engine
module Resource = Simkit.Resource

let make ?(capacity = 1.0) () =
  let e = Engine.create () in
  (e, Resource.create e ~name:"r" ~capacity)

let test_single_job_duration () =
  let e, r = make () in
  let done_at = ref nan in
  ignore (Resource.submit r ~work:5.0 (fun () -> done_at := Engine.now e));
  Engine.run e;
  check_float "work/capacity" 5.0 !done_at

let test_capacity_scales () =
  let e, r = make ~capacity:2.0 () in
  let done_at = ref nan in
  ignore (Resource.submit r ~work:5.0 (fun () -> done_at := Engine.now e));
  Engine.run e;
  check_float "half the time" 2.5 !done_at

let test_processor_sharing_two_equal_jobs () =
  let e, r = make () in
  let t1 = ref nan and t2 = ref nan in
  ignore (Resource.submit r ~work:3.0 (fun () -> t1 := Engine.now e));
  ignore (Resource.submit r ~work:3.0 (fun () -> t2 := Engine.now e));
  Engine.run e;
  (* Both share the capacity, so both finish at 6. *)
  check_float "job1" 6.0 !t1;
  check_float "job2" 6.0 !t2

let test_linear_contention () =
  (* n equal jobs of work W on unit capacity all complete at n*W —
     the property behind the paper's boot(n) = 3.4n + ... *)
  List.iter
    (fun n ->
      let e, r = make () in
      let finish = ref nan in
      for _ = 1 to n do
        ignore (Resource.submit r ~work:3.4 (fun () -> finish := Engine.now e))
      done;
      Engine.run e;
      check_float
        (Printf.sprintf "n=%d" n)
        (3.4 *. float_of_int n)
        !finish)
    [ 1; 2; 5; 11 ]

let test_shorter_job_finishes_first () =
  let e, r = make () in
  let short = ref nan and long = ref nan in
  ignore (Resource.submit r ~work:1.0 (fun () -> short := Engine.now e));
  ignore (Resource.submit r ~work:10.0 (fun () -> long := Engine.now e));
  Engine.run e;
  (* Shared until the short one finishes at t=2 (each got rate 1/2);
     the long one then runs alone: 10 - 1 = 9 remaining, done at 11. *)
  check_float "short" 2.0 !short;
  check_float "long" 11.0 !long

let test_staggered_arrival () =
  let e, r = make () in
  let t1 = ref nan and t2 = ref nan in
  ignore (Resource.submit r ~work:4.0 (fun () -> t1 := Engine.now e));
  ignore
    (Engine.schedule e ~delay:2.0 (fun () ->
         ignore (Resource.submit r ~work:4.0 (fun () -> t2 := Engine.now e))));
  Engine.run e;
  (* Job1 alone for 2 s (2 done), then shares: 2 remaining at rate 1/2
     -> finishes at 6. Job2: 2 done by then, runs alone after t=6,
     finishes at 8. *)
  check_float "job1" 6.0 !t1;
  check_float "job2" 8.0 !t2

let test_weights () =
  let e, r = make () in
  let heavy = ref nan and light = ref nan in
  ignore
    (Resource.submit r ~work:3.0 ~weight:3.0 (fun () -> heavy := Engine.now e));
  ignore
    (Resource.submit r ~work:1.0 ~weight:1.0 (fun () -> light := Engine.now e));
  Engine.run e;
  (* Rates 3/4 and 1/4: both need 4 seconds. *)
  check_float "heavy" 4.0 !heavy;
  check_float "light" 4.0 !light

let test_zero_work_completes () =
  let e, r = make () in
  let fired = ref false in
  ignore (Resource.submit r ~work:0.0 (fun () -> fired := true));
  Engine.run e;
  check_true "completed" !fired;
  check_float "no time passed" 0.0 (Engine.now e)

let test_cancel () =
  let e, r = make () in
  let fired = ref false and other = ref nan in
  let j = Resource.submit r ~work:5.0 (fun () -> fired := true) in
  ignore (Resource.submit r ~work:5.0 (fun () -> other := Engine.now e));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> Resource.cancel r j));
  Engine.run e;
  check_false "cancelled never fires" !fired;
  (* Other job: shared for 1 s (0.5 done), then alone: finishes at 5.5. *)
  check_float "other speeds up" 5.5 !other

let test_set_capacity_repaces () =
  let e, r = make () in
  let done_at = ref nan in
  ignore (Resource.submit r ~work:10.0 (fun () -> done_at := Engine.now e));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> Resource.set_capacity r 5.0));
  Engine.run e;
  (* 5 units in the first 5 s, then 5 units at rate 5 -> 1 more second. *)
  check_float "re-paced" 6.0 !done_at

let test_completion_allows_submit_in_callback () =
  let e, r = make () in
  let second_done = ref nan in
  ignore
    (Resource.submit r ~work:1.0 (fun () ->
         ignore
           (Resource.submit r ~work:2.0 (fun () ->
                second_done := Engine.now e))));
  Engine.run e;
  check_float "chained" 3.0 !second_done

let test_accounting () =
  let e, r = make () in
  ignore (Resource.submit r ~work:2.0 (fun () -> ()));
  ignore (Resource.submit r ~work:2.0 (fun () -> ()));
  Engine.run e;
  check_float ~eps:1e-6 "work done" 4.0 (Resource.total_work_done r);
  check_float ~eps:1e-6 "busy time" 4.0 (Resource.busy_time r);
  check_int "no active jobs" 0 (Resource.active_jobs r)

let test_busy_time_with_gaps () =
  let e, r = make () in
  ignore (Resource.submit r ~work:1.0 (fun () -> ()));
  ignore
    (Engine.schedule e ~delay:10.0 (fun () ->
         ignore (Resource.submit r ~work:1.0 (fun () -> ()))));
  Engine.run e;
  check_float ~eps:1e-6 "busy excludes idle gap" 2.0 (Resource.busy_time r)

let test_invalid_args () =
  let e = Engine.create () in
  check_true "bad capacity"
    (try ignore (Resource.create e ~name:"x" ~capacity:0.0); false
     with Invalid_argument _ -> true);
  let r = Resource.create e ~name:"x" ~capacity:1.0 in
  check_true "bad weight"
    (try ignore (Resource.submit r ~work:1.0 ~weight:0.0 (fun () -> ())); false
     with Invalid_argument _ -> true)

let prop_conservation =
  qtest "PS conserves work: finish time = total work on unit capacity"
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.1 10.0))
    (fun works ->
      let e, r = make () in
      let last = ref 0.0 in
      List.iter
        (fun w -> ignore (Resource.submit r ~work:w (fun () -> last := Engine.now e)))
        works;
      Engine.run e;
      let total = List.fold_left ( +. ) 0.0 works in
      Float.abs (!last -. total) < 1e-6)

let prop_completion_order =
  qtest "equal-weight jobs complete in order of work"
    QCheck.(list_of_size (Gen.int_range 2 8) (float_range 0.1 10.0))
    (fun works ->
      let e, r = make () in
      let order = ref [] in
      List.iteri
        (fun i w ->
          ignore (Resource.submit r ~work:w (fun () -> order := (i, w) :: !order)))
        works;
      Engine.run e;
      let completed = List.rev !order in
      let sorted_by_work =
        List.stable_sort (fun (_, w1) (_, w2) -> Float.compare w1 w2) completed
      in
      List.map snd completed = List.map snd sorted_by_work)

let suite =
  ( "resource",
    [
      Alcotest.test_case "single job duration" `Quick test_single_job_duration;
      Alcotest.test_case "capacity scales" `Quick test_capacity_scales;
      Alcotest.test_case "two equal jobs share" `Quick
        test_processor_sharing_two_equal_jobs;
      Alcotest.test_case "linear contention" `Quick test_linear_contention;
      Alcotest.test_case "shorter finishes first" `Quick
        test_shorter_job_finishes_first;
      Alcotest.test_case "staggered arrival" `Quick test_staggered_arrival;
      Alcotest.test_case "weights" `Quick test_weights;
      Alcotest.test_case "zero work" `Quick test_zero_work_completes;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "set capacity" `Quick test_set_capacity_repaces;
      Alcotest.test_case "submit in callback" `Quick
        test_completion_allows_submit_in_callback;
      Alcotest.test_case "accounting" `Quick test_accounting;
      Alcotest.test_case "busy time with gaps" `Quick test_busy_time_with_gaps;
      Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
      prop_conservation;
      prop_completion_order;
    ] )
