test/test_failure_injection.ml: Alcotest Helpers Hw List Printf Simkit Xenvmm
