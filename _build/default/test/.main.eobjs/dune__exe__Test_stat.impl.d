test/test_stat.ml: Alcotest Float Gen Helpers List QCheck Simkit
