test/test_cluster_sim.ml: Alcotest Helpers List Netsim Printf Rejuv Simkit
