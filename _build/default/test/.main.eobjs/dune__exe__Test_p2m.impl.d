test/test_p2m.ml: Alcotest Fun Gen Helpers Hw List Printf QCheck Simkit Xenvmm
