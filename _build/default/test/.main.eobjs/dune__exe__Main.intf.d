test/main.mli:
