test/test_xenstore.ml: Alcotest Helpers List Xenvmm
