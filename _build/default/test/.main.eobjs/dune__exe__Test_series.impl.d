test/test_series.ml: Alcotest Float Gen Helpers List QCheck Simkit
