test/test_engine.ml: Alcotest Gen Helpers List QCheck Simkit
