test/test_units.ml: Alcotest Format Helpers Simkit
