test/test_resource.ml: Alcotest Float Gen Helpers List Printf QCheck Simkit
