test/test_guest.ml: Alcotest Guest Helpers Hw List Printf Simkit Xenvmm
