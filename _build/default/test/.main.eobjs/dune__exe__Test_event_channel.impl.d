test/test_event_channel.ml: Alcotest Helpers List Simkit Xenvmm
