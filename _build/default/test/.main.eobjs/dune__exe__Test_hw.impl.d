test/test_hw.ml: Alcotest Helpers Hw Simkit
