test/test_misc.ml: Alcotest Format Fun Helpers Hw List QCheck Rejuv Simkit String Xenvmm
