test/test_process.ml: Alcotest Float Gen Helpers List QCheck Simkit
