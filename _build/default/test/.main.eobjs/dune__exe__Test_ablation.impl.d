test/test_ablation.ml: Alcotest Float Gen Helpers List Netsim Option QCheck Rejuv Simkit Xenvmm
