test/test_trace.ml: Alcotest Helpers List Simkit
