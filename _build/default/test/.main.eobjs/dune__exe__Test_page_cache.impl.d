test/test_page_cache.ml: Alcotest Gen Guest Helpers List QCheck Simkit
