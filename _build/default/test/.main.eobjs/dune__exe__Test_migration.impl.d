test/test_migration.ml: Alcotest Guest Helpers Hw List Netsim Printf Rejuv Simkit Xenvmm
