test/test_rng.ml: Alcotest Helpers List QCheck Simkit
