test/test_vmm_heap.ml: Alcotest Gen Helpers List QCheck Xenvmm
