test/test_invariants.ml: Alcotest Gen Guest Helpers Hw List Printf QCheck Simkit String Xenvmm
