test/test_vmm.ml: Alcotest Helpers Hw List Simkit Xenvmm
