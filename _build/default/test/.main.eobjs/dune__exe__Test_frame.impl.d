test/test_frame.ml: Alcotest Array Gen Helpers Hw List Option QCheck Simkit
