test/test_xexec.ml: Alcotest Guest Helpers Hw Printf Simkit Xenvmm
