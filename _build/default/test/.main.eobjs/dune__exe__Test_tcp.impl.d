test/test_tcp.ml: Alcotest Float Helpers List Netsim QCheck
