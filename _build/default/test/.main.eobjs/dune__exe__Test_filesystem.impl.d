test/test_filesystem.ml: Alcotest Guest Helpers Hw List Simkit
