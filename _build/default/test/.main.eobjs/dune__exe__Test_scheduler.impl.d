test/test_scheduler.ml: Alcotest Float Gen Guest Helpers Hw List Printf QCheck Simkit Xenvmm
