test/helpers.ml: Alcotest Float QCheck QCheck_alcotest Simkit
