test/test_domain.ml: Alcotest Helpers List Printf Simkit Xenvmm
