test/test_workloads.ml: Alcotest Helpers List Netsim Simkit
