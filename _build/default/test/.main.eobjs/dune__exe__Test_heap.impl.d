test/test_heap.ml: Alcotest Float Helpers List QCheck Simkit Stdlib
