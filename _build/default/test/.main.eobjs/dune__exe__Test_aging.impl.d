test/test_aging.ml: Alcotest Helpers Hw List Simkit Xenvmm
