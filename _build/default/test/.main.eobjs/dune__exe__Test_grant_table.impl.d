test/test_grant_table.ml: Alcotest Guest Helpers Hw List QCheck Simkit Xenvmm
