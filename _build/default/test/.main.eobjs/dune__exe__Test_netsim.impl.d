test/test_netsim.ml: Alcotest Float Helpers List Netsim Simkit
