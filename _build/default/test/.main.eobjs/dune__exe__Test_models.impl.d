test/test_models.ml: Alcotest Float Helpers Hw List QCheck Rejuv Simkit Xenvmm
