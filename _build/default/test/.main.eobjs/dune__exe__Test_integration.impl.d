test/test_integration.ml: Alcotest Float Guest Helpers List Netsim Printf Rejuv Simkit Xenvmm
