open Helpers
module Engine = Simkit.Engine
module Process = Simkit.Process
module Resource = Simkit.Resource

let test_now_is_immediate () =
  let e = Engine.create () in
  let fired = ref false in
  Process.now (fun () -> fired := true);
  check_true "sync" !fired;
  check_float "no time" 0.0 (Engine.now e)

let test_delay () =
  let e = Engine.create () in
  check_float "delay" 2.5 (task_duration e (Process.delay e 2.5))

let test_seq_adds_durations () =
  let e = Engine.create () in
  let task =
    Process.seq [ Process.delay e 1.0; Process.delay e 2.0; Process.delay e 3.0 ]
  in
  check_float "sum" 6.0 (task_duration e task)

let test_seq_empty () =
  let e = Engine.create () in
  check_float "empty seq" 0.0 (task_duration e (Process.seq []))

let test_seq_order () =
  let e = Engine.create () in
  let log = ref [] in
  let step name duration k =
    log := (name ^ "-start") :: !log;
    Process.delay e duration (fun () ->
        log := (name ^ "-end") :: !log;
        k ())
  in
  run_task e (Process.seq [ step "a" 1.0; step "b" 1.0 ]);
  Alcotest.(check (list string))
    "sequential" [ "a-start"; "a-end"; "b-start"; "b-end" ]
    (List.rev !log)

let test_par_takes_max () =
  let e = Engine.create () in
  let task =
    Process.par [ Process.delay e 1.0; Process.delay e 5.0; Process.delay e 3.0 ]
  in
  check_float "max" 5.0 (task_duration e task)

let test_par_empty () =
  let e = Engine.create () in
  check_float "empty par" 0.0 (task_duration e (Process.par []))

let test_par_completes_once () =
  let e = Engine.create () in
  let completions = ref 0 in
  Process.par [ Process.delay e 1.0; Process.delay e 2.0 ] (fun () ->
      incr completions);
  Engine.run e;
  check_int "exactly once" 1 !completions

let test_map_par () =
  let e = Engine.create () in
  let task = Process.map_par (fun d -> Process.delay e d) [ 2.0; 4.0 ] in
  check_float "max of mapped" 4.0 (task_duration e task)

let test_on_resource () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"r" ~capacity:2.0 in
  check_float "resource work" 3.0
    (task_duration e (Process.on_resource r ~work:6.0 ()))

let test_wrap () =
  let e = Engine.create () in
  let log = ref [] in
  let task =
    Process.wrap
      ~before:(fun () -> log := "before" :: !log)
      ~after:(fun () -> log := "after" :: !log)
      (Process.delay e 1.0)
  in
  run_task e task;
  Alcotest.(check (list string)) "order" [ "before"; "after" ] (List.rev !log)

let test_nested_composition () =
  let e = Engine.create () in
  (* seq [1; par [2; seq [1; 1]]; 1] = 1 + max(2, 2) + 1 = 4 *)
  let task =
    Process.seq
      [
        Process.delay e 1.0;
        Process.par
          [ Process.delay e 2.0;
            Process.seq [ Process.delay e 1.0; Process.delay e 1.0 ] ];
        Process.delay e 1.0;
      ]
  in
  check_float "nested" 4.0 (task_duration e task)

let prop_seq_sums =
  qtest "seq of delays sums durations"
    QCheck.(list_of_size (Gen.int_range 0 10) (float_range 0.0 5.0))
    (fun durations ->
      let e = Engine.create () in
      let task = Process.seq (List.map (Process.delay e) durations) in
      let total = List.fold_left ( +. ) 0.0 durations in
      Float.abs (task_duration e task -. total) < 1e-6)

let prop_par_maxes =
  qtest "par of delays takes the max"
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.0 5.0))
    (fun durations ->
      let e = Engine.create () in
      let task = Process.par (List.map (Process.delay e) durations) in
      let expected = List.fold_left Float.max 0.0 durations in
      Float.abs (task_duration e task -. expected) < 1e-6)

let suite =
  ( "process",
    [
      Alcotest.test_case "now" `Quick test_now_is_immediate;
      Alcotest.test_case "delay" `Quick test_delay;
      Alcotest.test_case "seq durations" `Quick test_seq_adds_durations;
      Alcotest.test_case "seq empty" `Quick test_seq_empty;
      Alcotest.test_case "seq order" `Quick test_seq_order;
      Alcotest.test_case "par max" `Quick test_par_takes_max;
      Alcotest.test_case "par empty" `Quick test_par_empty;
      Alcotest.test_case "par completes once" `Quick test_par_completes_once;
      Alcotest.test_case "map_par" `Quick test_map_par;
      Alcotest.test_case "on_resource" `Quick test_on_resource;
      Alcotest.test_case "wrap" `Quick test_wrap;
      Alcotest.test_case "nested composition" `Quick test_nested_composition;
      prop_seq_sums;
      prop_par_maxes;
    ] )
