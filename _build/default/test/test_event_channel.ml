open Helpers
module Ec = Xenvmm.Event_channel
module Engine = Simkit.Engine

let test_alloc_and_status () =
  let t = Ec.create () in
  let p = Ec.alloc_unbound t ~domid:1 in
  check_true "unbound" (Ec.status t p = Ec.Unbound);
  check_true "unknown port closed" (Ec.status t 9999 = Ec.Closed)

let test_bind_and_notify () =
  let e = Engine.create () in
  let t = Ec.create () in
  let p = Ec.alloc_unbound t ~domid:1 in
  let fired = ref false in
  Ec.bind t p ~handler:(fun () -> fired := true);
  check_true "bound" (Ec.status t p = Ec.Bound);
  check_true "notify accepted" (Ec.notify t e p);
  check_false "async delivery" !fired;
  Engine.run e;
  check_true "delivered" !fired

let test_notify_unbound () =
  let e = Engine.create () in
  let t = Ec.create () in
  let p = Ec.alloc_unbound t ~domid:1 in
  check_false "unbound rejected" (Ec.notify t e p);
  check_false "unknown rejected" (Ec.notify t e 42)

let test_close () =
  let e = Engine.create () in
  let t = Ec.create () in
  let p = Ec.alloc_unbound t ~domid:1 in
  Ec.bind t p ~handler:(fun () -> ());
  Ec.close t p;
  check_true "closed" (Ec.status t p = Ec.Closed);
  check_false "notify after close" (Ec.notify t e p);
  check_true "bind after close raises"
    (try Ec.bind t p ~handler:(fun () -> ()); false
     with Invalid_argument _ -> true)

let test_ports_of () =
  let t = Ec.create () in
  let p1 = Ec.alloc_unbound t ~domid:1 in
  let _p2 = Ec.alloc_unbound t ~domid:2 in
  let p3 = Ec.alloc_unbound t ~domid:1 in
  Alcotest.(check (list int)) "dom1 ports" [ p1; p3 ] (Ec.ports_of t ~domid:1)

let test_close_all_of () =
  let t = Ec.create () in
  let p1 = Ec.alloc_unbound t ~domid:1 in
  let p2 = Ec.alloc_unbound t ~domid:2 in
  Ec.close_all_of t ~domid:1;
  check_true "dom1 closed" (Ec.status t p1 = Ec.Closed);
  check_true "dom2 untouched" (Ec.status t p2 = Ec.Unbound)

let test_snapshot_restore () =
  (* The suspend/resume path: snapshot channel state, restore into a
     fresh VMM instance; bound channels come back unbound awaiting the
     guest's resume handler. *)
  let t = Ec.create () in
  let p1 = Ec.alloc_unbound t ~domid:1 in
  let p2 = Ec.alloc_unbound t ~domid:1 in
  Ec.bind t p1 ~handler:(fun () -> ());
  let snap = Ec.snapshot_of t ~domid:1 in
  check_int "two ports" 2 (List.length snap);
  let fresh = Ec.create () in
  Ec.restore_snapshot fresh ~domid:1 snap;
  check_true "bound restored as unbound" (Ec.status fresh p1 = Ec.Unbound);
  check_true "unbound stays unbound" (Ec.status fresh p2 = Ec.Unbound);
  (* Fresh allocations must not collide with restored ports. *)
  let p3 = Ec.alloc_unbound fresh ~domid:2 in
  check_true "no collision" (p3 <> p1 && p3 <> p2)

let test_restore_closed_state () =
  let t = Ec.create () in
  let p = Ec.alloc_unbound t ~domid:1 in
  Ec.close t p;
  let snap = Ec.snapshot_of t ~domid:1 in
  let fresh = Ec.create () in
  Ec.restore_snapshot fresh ~domid:1 snap;
  check_true "closed stays closed" (Ec.status fresh p = Ec.Closed)

let suite =
  ( "event_channel",
    [
      Alcotest.test_case "alloc and status" `Quick test_alloc_and_status;
      Alcotest.test_case "bind and notify" `Quick test_bind_and_notify;
      Alcotest.test_case "notify unbound" `Quick test_notify_unbound;
      Alcotest.test_case "close" `Quick test_close;
      Alcotest.test_case "ports_of" `Quick test_ports_of;
      Alcotest.test_case "close_all_of" `Quick test_close_all_of;
      Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
      Alcotest.test_case "restore closed" `Quick test_restore_closed_state;
    ] )
