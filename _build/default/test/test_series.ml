open Helpers
module Series = Simkit.Series

let test_basic () =
  let s = Series.create ~name:"tput" () in
  check_true "name" (Series.name s = "tput");
  check_int "empty" 0 (Series.length s);
  Series.add s ~time:1.0 10.0;
  Series.add s ~time:2.0 20.0;
  check_int "two" 2 (Series.length s);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "to_list" [ (1.0, 10.0); (2.0, 20.0) ] (Series.to_list s);
  check_true "last" (Series.last s = Some (2.0, 20.0))

let test_values_and_extremes () =
  let s = Series.create () in
  check_true "min empty" (Series.min_value s = None);
  List.iter (fun (t, v) -> Series.add s ~time:t v)
    [ (0.0, 5.0); (1.0, 1.0); (2.0, 9.0) ];
  Alcotest.(check (list (float 1e-9))) "values" [ 5.0; 1.0; 9.0 ] (Series.values s);
  check_true "min" (Series.min_value s = Some 1.0);
  check_true "max" (Series.max_value s = Some 9.0)

let test_between () =
  let s = Series.create () in
  List.iter (fun t -> Series.add s ~time:t t) [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  let w = Series.between s ~lo:1.0 ~hi:3.0 in
  check_int "window size" 3 (List.length w)

let test_counter_total () =
  let c = Series.Counter.create () in
  check_int "empty" 0 (Series.Counter.total c);
  List.iter (fun t -> Series.Counter.record c ~time:t) [ 0.1; 0.2; 5.0 ];
  check_int "three" 3 (Series.Counter.total c)

let test_counter_rate_series () =
  let c = Series.Counter.create () in
  (* 4 events in [0,1), 2 in [1,2). *)
  List.iter (fun t -> Series.Counter.record c ~time:t)
    [ 0.1; 0.2; 0.3; 0.9; 1.1; 1.5 ];
  let rates = Series.Counter.rate_series c ~window:1.0 () in
  (match rates with
  | (t1, r1) :: (t2, r2) :: _ ->
    check_float "w1 end" 1.0 t1;
    check_float "w1 rate" 4.0 r1;
    check_float "w2 end" 2.0 t2;
    check_float "w2 rate" 2.0 r2
  | _ -> Alcotest.fail "expected two windows");
  check_int "window count" 2 (List.length rates)

let test_counter_rate_series_until () =
  let c = Series.Counter.create () in
  Series.Counter.record c ~time:0.5;
  let rates = Series.Counter.rate_series c ~window:1.0 ~until:3.0 () in
  check_int "padded windows" 3 (List.length rates);
  let last_rate = snd (List.nth rates 2) in
  check_float "empty tail window" 0.0 last_rate

let test_counter_rate_between () =
  let c = Series.Counter.create () in
  List.iter (fun t -> Series.Counter.record c ~time:t) [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "rate over [1,4]" (4.0 /. 3.0)
    (Series.Counter.rate_between c ~lo:1.0 ~hi:4.0);
  check_float "rate over empty region" 0.0
    (Series.Counter.rate_between c ~lo:10.0 ~hi:20.0)

let test_counter_invalid () =
  let c = Series.Counter.create () in
  check_true "bad window"
    (try ignore (Series.Counter.rate_series c ~window:0.0 ()); false
     with Invalid_argument _ -> true);
  check_true "bad interval"
    (try ignore (Series.Counter.rate_between c ~lo:2.0 ~hi:1.0); false
     with Invalid_argument _ -> true)

let prop_counter_conserves_events =
  qtest "rate series buckets conserve the event count"
    QCheck.(list_of_size (Gen.int_range 0 100) (float_range 0.0 50.0))
    (fun times ->
      let c = Series.Counter.create () in
      List.iter (fun t -> Series.Counter.record c ~time:t) times;
      let rates = Series.Counter.rate_series c ~window:1.0 ~until:51.0 () in
      let counted =
        List.fold_left (fun acc (_, r) -> acc +. r) 0.0 rates
      in
      Float.abs (counted -. float_of_int (List.length times)) < 1e-6)

let suite =
  ( "series",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "values and extremes" `Quick test_values_and_extremes;
      Alcotest.test_case "between" `Quick test_between;
      Alcotest.test_case "counter total" `Quick test_counter_total;
      Alcotest.test_case "counter rate series" `Quick test_counter_rate_series;
      Alcotest.test_case "counter rate until" `Quick
        test_counter_rate_series_until;
      Alcotest.test_case "counter rate between" `Quick test_counter_rate_between;
      Alcotest.test_case "counter invalid args" `Quick test_counter_invalid;
      prop_counter_conserves_events;
    ] )
