open Helpers
module Vmm = Xenvmm.Vmm
module Aging = Xenvmm.Aging
module Engine = Simkit.Engine

let gib = Simkit.Units.gib

(* The error-path injector schedules events forever, so runs here must
   be bounded — an unbounded [Engine.run] would never drain. *)
let booted ?config () =
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create host in
  let aging = Aging.attach ?config vmm in
  let flag = ref false in
  Vmm.power_on vmm (fun () -> flag := true);
  run_until engine ~flag ~deadline:200.0;
  (engine, vmm, aging)

let create_destroy engine vmm =
  let d = ref None in
  Vmm.create_domain vmm ~name:"churn" ~mem_bytes:(gib 1) (fun r ->
      d := Some r);
  Engine.run engine;
  match !d with
  | Some (Ok dom) -> run_task engine (Vmm.destroy_domain vmm dom)
  | _ -> Alcotest.fail "create failed"

let test_no_aging_config () =
  let engine, vmm, aging = booted ~config:Aging.no_aging () in
  create_destroy engine vmm;
  check_int "no leak" 0 (Aging.leaked_since_boot aging);
  check_true "no forecast" (Aging.predict_exhaustion aging = None)

let test_domain_reboot_leak () =
  (* Changeset 9392: every domain destroy loses heap. *)
  let engine, vmm, aging =
    booted
      ~config:{ Aging.xen_3_0_bugs with error_path_mean_interval_s = infinity }
      ()
  in
  for _ = 1 to 5 do create_destroy engine vmm done;
  check_int "5 x 64 KiB" (5 * 64 * 1024) (Aging.leaked_since_boot aging)

let test_error_path_leaks_over_time () =
  let engine, vmm, aging =
    booted
      ~config:
        {
          Aging.no_aging with
          leak_per_error_path_bytes = 16384;
          error_path_mean_interval_s = 100.0;
        }
      ()
  in
  ignore vmm;
  Engine.run ~until:(Engine.now engine +. 5000.0) engine;
  (* ~50 error paths expected; accept a broad band. *)
  let leaked = Aging.leaked_since_boot aging in
  check_in_band "stochastic leak total"
    ~lo:(10.0 *. 16384.0) ~hi:(150.0 *. 16384.0)
    (float_of_int leaked)

let test_xenstore_leak_wired () =
  let engine, vmm, _aging =
    booted
      ~config:{ Aging.no_aging with xenstore_leak_per_txn_bytes = 4096 }
      ()
  in
  ignore engine;
  match Vmm.xenstore vmm with
  | None -> Alcotest.fail "xenstore should be up"
  | Some store ->
    let before = Xenvmm.Xenstore.memory_bytes store in
    for i = 1 to 50 do
      Xenvmm.Xenstore.write store ~path:"/t" (string_of_int i)
    done;
    check_true "transactions leak"
      (Xenvmm.Xenstore.memory_bytes store - before >= 50 * 4096)

let test_prediction_converges () =
  let engine, vmm, aging = booted ~config:Aging.no_aging () in
  (* Deterministic 1 MiB leak every 100 s: with a 16 MiB heap minus the
     dom0 charge, exhaustion sits a bit under 1600 s of leaking. *)
  let heap = Vmm.heap vmm in
  for _ = 1 to 6 do
    Engine.run ~until:(Engine.now engine +. 100.0) engine;
    Xenvmm.Vmm_heap.leak heap ~bytes:(1024 * 1024);
    Aging.sample aging
  done;
  match Aging.predict_exhaustion aging with
  | None -> Alcotest.fail "expected forecast"
  | Some at ->
    let elapsed_start = Engine.now engine -. 600.0 in
    check_in_band "forecast in plausible window"
      ~lo:(elapsed_start +. 1000.0)
      ~hi:(elapsed_start +. 2200.0)
      at

let test_reboot_resets_history () =
  let engine, vmm, aging = booted ~config:Aging.no_aging () in
  Xenvmm.Vmm_heap.leak (Vmm.heap vmm) ~bytes:(8 * 1024 * 1024);
  Aging.sample aging;
  check_true "leaked" (Aging.leaked_since_boot aging > 0);
  run_task engine (Vmm.shutdown_dom0 vmm);
  let r = ref None in
  Vmm.quick_reload vmm (fun x -> r := Some x);
  Engine.run engine;
  check_true "reloaded" (!r = Some (Ok ()));
  check_int "rejuvenated" 0 (Aging.leaked_since_boot aging);
  check_true "history restarted" (List.length (Aging.heap_history aging) <= 1)

let test_stop_halts_injector () =
  let engine, _vmm, aging =
    booted
      ~config:
        {
          Aging.no_aging with
          leak_per_error_path_bytes = 1024;
          error_path_mean_interval_s = 10.0;
        }
      ()
  in
  Aging.stop aging;
  let before = Aging.leaked_since_boot aging in
  Engine.run ~until:(Engine.now engine +. 1000.0) engine;
  check_int "no further leaks" before (Aging.leaked_since_boot aging)

let suite =
  ( "aging",
    [
      Alcotest.test_case "no aging" `Quick test_no_aging_config;
      Alcotest.test_case "domain reboot leak (cs 9392)" `Quick
        test_domain_reboot_leak;
      Alcotest.test_case "error path leak (cs 11752)" `Quick
        test_error_path_leaks_over_time;
      Alcotest.test_case "xenstore leak (cs 8640)" `Quick
        test_xenstore_leak_wired;
      Alcotest.test_case "prediction converges" `Quick test_prediction_converges;
      Alcotest.test_case "reboot resets history" `Quick
        test_reboot_resets_history;
      Alcotest.test_case "stop halts injector" `Quick test_stop_halts_injector;
    ] )
