(* Shared test utilities. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let check_close ?(tolerance = 0.05) msg expected actual =
  (* Relative tolerance, for calibration-band checks. *)
  let bound = Float.abs expected *. tolerance in
  if Float.abs (expected -. actual) > bound then
    Alcotest.failf "%s: expected %.3f (+/-%.0f%%), got %.3f" msg expected
      (tolerance *. 100.0) actual

let check_in_band msg ~lo ~hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: expected within [%.3f, %.3f], got %.3f" msg lo hi
      actual

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_int msg a b = Alcotest.(check int) msg a b

let qtest ?(count = 200) name arbitrary law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary law)

(* Drive the engine until the flag becomes true; fail the test if the
   event queue drains or the deadline passes first. *)
let run_until engine ~flag ~deadline =
  Simkit.Engine.run ~until:deadline engine;
  if not !flag then Alcotest.failf "did not complete by t=%.1f" deadline

let run_task engine task =
  let flag = ref false in
  task (fun () -> flag := true);
  Simkit.Engine.run engine;
  if not !flag then Alcotest.fail "task did not complete"

(* Duration of a CPS task under an otherwise idle engine. *)
let task_duration engine task =
  let t0 = Simkit.Engine.now engine in
  run_task engine task;
  Simkit.Engine.now engine -. t0
