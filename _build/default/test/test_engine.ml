open Helpers
module Engine = Simkit.Engine

let test_clock_starts_at_zero () =
  let e = Engine.create () in
  check_float "t=0" 0.0 (Engine.now e)

let test_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock advanced" 3.0 (Engine.now e)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired_at = ref nan in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         ignore
           (Engine.schedule e ~delay:2.0 (fun () ->
                fired_at := Engine.now e))));
  Engine.run e;
  check_float "nested at 3" 3.0 !fired_at

let test_zero_delay_runs_after_pending_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:0.0 (fun () -> log := "inner" :: !log))));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "second" :: !log));
  Engine.run e;
  Alcotest.(check (list string))
    "zero-delay after same-time pending" [ "outer"; "second"; "inner" ]
    (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check_false "cancelled" !fired

let test_cancel_twice_is_noop () =
  let e = Engine.create () in
  let h = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  Engine.cancel e h;
  Engine.cancel e h;
  Engine.run e

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Engine.run ~until:5.0 e;
  check_int "five fired" 5 !count;
  check_float "clock at limit" 5.0 (Engine.now e);
  Engine.run e;
  check_int "rest fired" 10 !count

let test_run_until_exact_boundary () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> fired := true));
  Engine.run ~until:5.0 e;
  check_true "boundary inclusive" !fired

let test_run_until_advances_clock_when_idle () =
  let e = Engine.create () in
  Engine.run ~until:42.0 e;
  check_float "idle clock advance" 42.0 (Engine.now e)

let test_run_until_skips_cancelled_head () =
  (* A cancelled event before the limit must not cause an event beyond
     the limit to run (regression test for head-skipping). *)
  let e = Engine.create () in
  let late = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:10.0 (fun () -> late := true));
  Engine.cancel e h;
  Engine.run ~until:5.0 e;
  check_false "late not fired" !late;
  check_float "clock at limit" 5.0 (Engine.now e)

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  check_true "raises"
    (try
       ignore (Engine.schedule_at e ~time:1.0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_negative_delay_rejected () =
  let e = Engine.create () in
  check_true "raises"
    (try
       ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_events_processed () =
  let e = Engine.create () in
  for i = 1 to 7 do
    ignore (Engine.schedule e ~delay:(float_of_int i) (fun () -> ()))
  done;
  Engine.run e;
  check_int "processed" 7 (Engine.events_processed e)

let test_step () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr count));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr count));
  check_true "step 1" (Engine.step e);
  check_int "one fired" 1 !count;
  check_true "step 2" (Engine.step e);
  check_false "exhausted" (Engine.step e)

let prop_monotonic_clock =
  qtest "clock is monotonic across random schedules"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule e ~delay:d (fun () ->
                 times := Engine.now e :: !times)))
        delays;
      Engine.run e;
      let observed = List.rev !times in
      let rec monotonic = function
        | a :: (b :: _ as rest) -> a <= b && monotonic rest
        | _ -> true
      in
      monotonic observed)

let suite =
  ( "engine",
    [
      Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
      Alcotest.test_case "schedule order" `Quick test_schedule_order;
      Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
      Alcotest.test_case "zero delay ordering" `Quick
        test_zero_delay_runs_after_pending_same_time;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "cancel twice" `Quick test_cancel_twice_is_noop;
      Alcotest.test_case "run until" `Quick test_run_until;
      Alcotest.test_case "run until boundary" `Quick test_run_until_exact_boundary;
      Alcotest.test_case "run until idle clock" `Quick
        test_run_until_advances_clock_when_idle;
      Alcotest.test_case "run until skips cancelled head" `Quick
        test_run_until_skips_cancelled_head;
      Alcotest.test_case "past schedule rejected" `Quick
        test_schedule_in_past_rejected;
      Alcotest.test_case "negative delay rejected" `Quick
        test_negative_delay_rejected;
      Alcotest.test_case "events processed" `Quick test_events_processed;
      Alcotest.test_case "step" `Quick test_step;
      prop_monotonic_clock;
    ] )
