(* Sampler and open-loop Poisson generator. *)
open Helpers
module Engine = Simkit.Engine
module Sampler = Simkit.Sampler
module Poisson = Netsim.Poisson

let test_sampler_records_gauge () =
  let e = Engine.create () in
  let value = ref 1.0 in
  let s = Sampler.start e ~interval_s:1.0 ~gauge:(fun () -> !value) () in
  ignore (Engine.schedule e ~delay:4.5 (fun () -> value := 2.0));
  Engine.run ~until:10.0 e;
  Sampler.stop s;
  check_false "stopped" (Sampler.is_running s);
  let early = Sampler.samples_between s ~lo:0.0 ~hi:4.0 in
  let late = Sampler.samples_between s ~lo:5.0 ~hi:10.0 in
  check_true "early all 1.0" (List.for_all (fun v -> v = 1.0) early);
  check_true "late all 2.0" (List.for_all (fun v -> v = 2.0) late);
  check_int "5 early samples" 5 (List.length early)

let test_sampler_mean () =
  let e = Engine.create () in
  let s =
    Sampler.start e ~interval_s:1.0 ~gauge:(fun () -> Engine.now e) ()
  in
  Engine.run ~until:4.0 e;
  Sampler.stop s;
  (* Samples at 0,1,2,3,4 -> mean 2. *)
  check_float ~eps:1e-9 "mean" 2.0 (Sampler.mean_between s ~lo:0.0 ~hi:4.0);
  check_true "empty window raises"
    (try ignore (Sampler.mean_between s ~lo:100.0 ~hi:200.0); false
     with Invalid_argument _ -> true)

let test_sampler_stop_halts () =
  let e = Engine.create () in
  let count = ref 0 in
  let s =
    Sampler.start e ~interval_s:1.0 ~gauge:(fun () -> incr count; 0.0) ()
  in
  ignore (Engine.schedule e ~delay:3.5 (fun () -> Sampler.stop s));
  Engine.run e;
  (* Engine drains because the sampler stops rescheduling. *)
  check_int "four gauge reads" 4 !count

let test_poisson_rate () =
  let e = Engine.create () in
  let rng = Simkit.Rng.create 7 in
  let gen =
    Poisson.create e ~rate_per_s:50.0 ~rng ~request:(fun k -> k true) ()
  in
  Poisson.start gen;
  ignore (Engine.schedule e ~delay:100.0 (fun () -> Poisson.stop gen));
  Engine.run ~until:101.0 e;
  (* ~5000 arrivals expected. *)
  check_in_band "arrival count" ~lo:4600.0 ~hi:5400.0
    (float_of_int (Poisson.offered gen));
  check_int "all succeeded" (Poisson.offered gen) (Poisson.succeeded gen);
  check_float "no loss" 0.0 (Poisson.loss_ratio gen)

let test_poisson_counts_losses_during_outage () =
  let e = Engine.create () in
  let rng = Simkit.Rng.create 11 in
  let up = ref true in
  let gen =
    Poisson.create e ~rate_per_s:20.0 ~rng ~request:(fun k -> k !up) ()
  in
  Poisson.start gen;
  ignore (Engine.schedule e ~delay:50.0 (fun () -> up := false));
  ignore (Engine.schedule e ~delay:92.0 (fun () -> up := true));
  ignore (Engine.schedule e ~delay:150.0 (fun () -> Poisson.stop gen));
  Engine.run ~until:151.0 e;
  (* A 42 s outage at 20 req/s loses ~840 requests. *)
  check_in_band "lost during outage" ~lo:700.0 ~hi:1000.0
    (float_of_int (Poisson.lost gen));
  check_int "losses localized to the window"
    (Poisson.lost gen)
    (Poisson.lost_between gen ~lo:50.0 ~hi:92.0);
  check_in_band "loss ratio ~28%" ~lo:0.2 ~hi:0.36 (Poisson.loss_ratio gen)

let test_poisson_open_loop_independence () =
  (* Open loop: the arrival count does not depend on response latency. *)
  let count_with latency =
    let e = Engine.create () in
    let rng = Simkit.Rng.create 13 in
    let gen =
      Poisson.create e ~rate_per_s:10.0 ~rng
        ~request:(fun k ->
          ignore (Engine.schedule e ~delay:latency (fun () -> k true)))
        ()
    in
    Poisson.start gen;
    ignore (Engine.schedule e ~delay:100.0 (fun () -> Poisson.stop gen));
    Engine.run ~until:102.0 e;
    Poisson.offered gen
  in
  check_int "same offered load" (count_with 0.001) (count_with 2.0)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "sampler records gauge" `Quick
        test_sampler_records_gauge;
      Alcotest.test_case "sampler mean" `Quick test_sampler_mean;
      Alcotest.test_case "sampler stop" `Quick test_sampler_stop_halts;
      Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
      Alcotest.test_case "poisson losses in outage" `Quick
        test_poisson_counts_losses_during_outage;
      Alcotest.test_case "poisson open loop" `Quick
        test_poisson_open_loop_independence;
    ] )
