open Helpers
module Frame = Hw.Frame

let test_create () =
  let t = Frame.create ~total_frames:100 in
  check_int "total" 100 (Frame.total_frames t);
  check_int "all free" 100 (Frame.free_frames t);
  check_int "none used" 0 (Frame.used_frames t)

let test_of_bytes () =
  let t = Frame.of_bytes ~total_bytes:(Simkit.Units.mib 1) in
  check_int "256 pages per MiB" 256 (Frame.total_frames t)

let test_alloc_basic () =
  let t = Frame.create ~total_frames:100 in
  match Frame.alloc t ~frames:10 with
  | Some [ { Frame.first = 0; count = 10 } ] ->
    check_int "free" 90 (Frame.free_frames t);
    check_true "invariants" (Frame.check_invariants t = Ok ())
  | _ -> Alcotest.fail "expected one extent at 0"

let test_alloc_all () =
  let t = Frame.create ~total_frames:64 in
  check_true "all" (Frame.alloc t ~frames:64 <> None);
  check_int "none free" 0 (Frame.free_frames t);
  check_true "next alloc fails" (Frame.alloc t ~frames:1 = None)

let test_alloc_too_much () =
  let t = Frame.create ~total_frames:10 in
  check_true "refused" (Frame.alloc t ~frames:11 = None);
  check_int "unchanged" 10 (Frame.free_frames t)

let test_free_coalesces () =
  let t = Frame.create ~total_frames:100 in
  let a = Option.get (Frame.alloc t ~frames:30) in
  let b = Option.get (Frame.alloc t ~frames:30) in
  Frame.free t a;
  Frame.free t b;
  check_int "all free again" 100 (Frame.free_frames t);
  check_true "invariants" (Frame.check_invariants t = Ok ());
  (* Everything coalesced back: a full-size alloc must succeed as one
     extent. *)
  match Frame.alloc t ~frames:100 with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "expected single coalesced extent"

let test_double_free_detected () =
  let t = Frame.create ~total_frames:100 in
  let a = Option.get (Frame.alloc t ~frames:10) in
  Frame.free t a;
  check_true "double free raises"
    (try Frame.free t a; false with Invalid_argument _ -> true)

let test_free_out_of_range () =
  let t = Frame.create ~total_frames:100 in
  check_true "raises"
    (try Frame.free t [ { Frame.first = 90; count = 20 } ]; false
     with Invalid_argument _ -> true)

let test_fragmented_alloc () =
  let t = Frame.create ~total_frames:100 in
  let a = Option.get (Frame.alloc t ~frames:20) in
  let _b = Option.get (Frame.alloc t ~frames:20) in
  let c = Option.get (Frame.alloc t ~frames:20) in
  Frame.free t a;
  Frame.free t c;
  (* Free: [0,20) and [40,60) and [60,100) coalesced to [40,100). *)
  match Frame.alloc t ~frames:70 with
  | Some extents ->
    check_int "covers request" 70 (Frame.extents_frames extents);
    check_true "multiple extents" (List.length extents > 1);
    check_true "invariants" (Frame.check_invariants t = Ok ())
  | None -> Alcotest.fail "fragmented alloc should succeed"

let test_reserve () =
  let t = Frame.create ~total_frames:100 in
  (match Frame.reserve t { Frame.first = 50; count = 10 } with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check_int "free" 90 (Frame.free_frames t);
  check_false "middle not free" (Frame.is_free t ~mfn:55);
  check_true "left free" (Frame.is_free t ~mfn:49);
  check_true "right free" (Frame.is_free t ~mfn:60);
  check_true "invariants" (Frame.check_invariants t = Ok ())

let test_reserve_conflict () =
  let t = Frame.create ~total_frames:100 in
  let _a = Option.get (Frame.alloc t ~frames:10) in
  (* Frames [0,10) are taken. *)
  check_true "overlap refused"
    (match Frame.reserve t { Frame.first = 5; count = 10 } with
     | Error _ -> true
     | Ok () -> false);
  check_int "state unchanged" 90 (Frame.free_frames t)

let test_reserve_out_of_range () =
  let t = Frame.create ~total_frames:100 in
  check_true "beyond end"
    (match Frame.reserve t { Frame.first = 95; count = 10 } with
     | Error _ -> true
     | Ok () -> false)

let test_reserve_then_free_roundtrip () =
  let t = Frame.create ~total_frames:100 in
  let e = { Frame.first = 30; count = 40 } in
  (match Frame.reserve t e with Ok () -> () | Error m -> Alcotest.fail m);
  Frame.free t [ e ];
  check_int "restored" 100 (Frame.free_frames t);
  check_true "invariants" (Frame.check_invariants t = Ok ())

let test_extent_helpers () =
  let e = { Frame.first = 0; count = 2 } in
  check_int "extent bytes" 8192 (Frame.extent_bytes e);
  check_int "list bytes" 16384 (Frame.extents_bytes [ e; e ]);
  check_int "list frames" 4 (Frame.extents_frames [ e; e ])

(* Random interleaving of allocs and frees preserves every invariant. *)
let prop_random_ops =
  qtest ~count:100 "random alloc/free keeps invariants"
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 20))
    (fun sizes ->
      let t = Frame.create ~total_frames:256 in
      let live = ref [] in
      let ok = ref true in
      List.iteri
        (fun i size ->
          if i mod 3 = 2 && !live <> [] then begin
            (* Free the oldest live allocation. *)
            match List.rev !live with
            | oldest :: _ ->
              Frame.free t oldest;
              live := List.filter (fun x -> x != oldest) !live
            | [] -> ()
          end
          else
            match Frame.alloc t ~frames:size with
            | Some extents -> live := extents :: !live
            | None -> ();
          if Frame.check_invariants t <> Ok () then ok := false)
        sizes;
      !ok
      && Frame.free_frames t
         = 256 - List.fold_left (fun a e -> a + Frame.extents_frames e) 0 !live)

let prop_alloc_disjoint =
  qtest ~count:100 "successive allocations are disjoint"
    QCheck.(list_of_size (Gen.int_range 2 10) (int_range 1 20))
    (fun sizes ->
      let t = Frame.create ~total_frames:1024 in
      let all =
        List.filter_map (fun s -> Frame.alloc t ~frames:s) sizes |> List.concat
      in
      let marks = Array.make 1024 false in
      let ok = ref true in
      List.iter
        (fun e ->
          for i = e.Frame.first to e.Frame.first + e.Frame.count - 1 do
            if marks.(i) then ok := false;
            marks.(i) <- true
          done)
        all;
      !ok)

let suite =
  ( "frame",
    [
      Alcotest.test_case "create" `Quick test_create;
      Alcotest.test_case "of_bytes" `Quick test_of_bytes;
      Alcotest.test_case "alloc basic" `Quick test_alloc_basic;
      Alcotest.test_case "alloc all" `Quick test_alloc_all;
      Alcotest.test_case "alloc too much" `Quick test_alloc_too_much;
      Alcotest.test_case "free coalesces" `Quick test_free_coalesces;
      Alcotest.test_case "double free" `Quick test_double_free_detected;
      Alcotest.test_case "free out of range" `Quick test_free_out_of_range;
      Alcotest.test_case "fragmented alloc" `Quick test_fragmented_alloc;
      Alcotest.test_case "reserve" `Quick test_reserve;
      Alcotest.test_case "reserve conflict" `Quick test_reserve_conflict;
      Alcotest.test_case "reserve out of range" `Quick test_reserve_out_of_range;
      Alcotest.test_case "reserve/free roundtrip" `Quick
        test_reserve_then_free_roundtrip;
      Alcotest.test_case "extent helpers" `Quick test_extent_helpers;
      prop_random_ops;
      prop_alloc_disjoint;
    ] )
