open Helpers
module Rng = Simkit.Rng

let test_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.bits64 a = Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_true "different seeds differ" (Rng.bits64 a <> Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let va = Rng.bits64 a in
  let vb = Rng.bits64 b in
  check_true "copy continues identically" (va = vb);
  ignore (Rng.bits64 a);
  let va2 = Rng.bits64 a and vb2 = Rng.bits64 b in
  check_true "streams diverge after unequal draws" (va2 <> vb2)

let test_split_independent () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let p = List.init 20 (fun _ -> Rng.bits64 parent) in
  let c = List.init 20 (fun _ -> Rng.bits64 child) in
  check_true "split streams differ" (p <> c)

let test_int_range () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_true "0 <= v" (v >= 0);
    check_true "v < 17" (v < 17)
  done

let test_int_bound_one () =
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    check_int "always 0" 0 (Rng.int r 1)
  done

let test_int_invalid () =
  let r = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_uniform_range () =
  let r = Rng.create 13 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform r in
    check_true "0 <= u < 1" (u >= 0.0 && u < 1.0)
  done

let test_uniform_mean () =
  let r = Rng.create 17 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.uniform r
  done;
  check_in_band "mean near 0.5" ~lo:0.48 ~hi:0.52 (!total /. float_of_int n)

let test_exponential_mean () =
  let r = Rng.create 23 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r ~mean:5.0
  done;
  check_in_band "mean near 5" ~lo:4.7 ~hi:5.3 (!total /. float_of_int n)

let test_exponential_positive () =
  let r = Rng.create 29 in
  for _ = 1 to 1000 do
    check_true "positive" (Rng.exponential r ~mean:1.0 >= 0.0)
  done

let test_bool_balance () =
  let r = Rng.create 31 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  check_in_band "roughly balanced" ~lo:4700.0 ~hi:5300.0 (float_of_int !trues)

let prop_int_in_range =
  qtest "int stays in range"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let suite =
  ( "rng",
    [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "split" `Quick test_split_independent;
      Alcotest.test_case "int range" `Quick test_int_range;
      Alcotest.test_case "int bound one" `Quick test_int_bound_one;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "uniform range" `Quick test_uniform_range;
      Alcotest.test_case "uniform mean" `Quick test_uniform_mean;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
      Alcotest.test_case "bool balance" `Quick test_bool_balance;
      prop_int_in_range;
    ] )
