open Helpers
module Domain = Xenvmm.Domain

let make () =
  Domain.create ~id:1 ~name:"vm01" ~kind:Domain.DomU
    ~mem_bytes:(Simkit.Units.gib 1)

let test_initial_state () =
  let d = make () in
  check_true "created" (Domain.state d = Domain.Created);
  check_int "id" 1 (Domain.id d);
  check_true "domu" (Domain.is_domu d);
  check_int "mem" (Simkit.Units.gib 1) (Domain.mem_bytes d);
  check_true "no exec state" (Domain.exec_state d = None)

let test_lifecycle_happy_path () =
  let d = make () in
  List.iter (Domain.set_state d)
    [ Domain.Booting; Domain.Running; Domain.Suspending; Domain.Suspended;
      Domain.Resuming; Domain.Running; Domain.Shutting_down; Domain.Halted;
      Domain.Booting; Domain.Running ]

let test_save_path () =
  let d = make () in
  List.iter (Domain.set_state d)
    [ Domain.Booting; Domain.Running; Domain.Saving; Domain.Saved_to_disk;
      Domain.Resuming; Domain.Running ]

let test_illegal_transitions () =
  let attempt from to_ =
    let d = make () in
    (* Drive to [from] through a legal path where needed. *)
    (match from with
    | Domain.Created -> ()
    | Domain.Running ->
      Domain.set_state d Domain.Booting;
      Domain.set_state d Domain.Running
    | Domain.Suspended ->
      Domain.set_state d Domain.Booting;
      Domain.set_state d Domain.Running;
      Domain.set_state d Domain.Suspending;
      Domain.set_state d Domain.Suspended
    | _ -> Alcotest.fail "unsupported test setup");
    check_true
      (Printf.sprintf "%s -> %s rejected" (Domain.state_name from)
         (Domain.state_name to_))
      (try Domain.set_state d to_; false with Invalid_argument _ -> true)
  in
  attempt Domain.Created Domain.Running;
  attempt Domain.Created Domain.Suspended;
  attempt Domain.Running Domain.Resuming;
  attempt Domain.Suspended Domain.Running;
  attempt Domain.Suspended Domain.Shutting_down

let test_crash_from_anywhere () =
  let d = make () in
  Domain.set_state d Domain.Crashed;
  let d2 = make () in
  Domain.set_state d2 Domain.Booting;
  Domain.set_state d2 Domain.Crashed;
  Domain.set_state d2 Domain.Booting

let test_observers () =
  let d = make () in
  let log = ref [] in
  Domain.on_state_change d (fun s -> log := Domain.state_name s :: !log);
  Domain.set_state d Domain.Booting;
  Domain.set_state d Domain.Running;
  Alcotest.(check (list string)) "notified" [ "booting"; "running" ]
    (List.rev !log)

let test_devices () =
  let d = make () in
  Domain.attach_device d "vbd";
  Domain.attach_device d "vif";
  Domain.attach_device d "vbd";
  check_int "no duplicates" 2 (List.length (Domain.devices d));
  Domain.detach_device d "vbd";
  Alcotest.(check (list string)) "one left" [ "vif" ] (Domain.devices d);
  let had = Domain.detach_all_devices d in
  Alcotest.(check (list string)) "returned" [ "vif" ] had;
  check_int "empty" 0 (List.length (Domain.devices d))

let test_handlers_default_immediate () =
  let d = make () in
  let fired = ref false in
  Domain.suspend_handler d (fun () -> fired := true);
  check_true "default suspend handler immediate" !fired;
  fired := false;
  Domain.resume_handler d (fun () -> fired := true);
  check_true "default resume handler immediate" !fired

let test_handlers_replaceable () =
  let d = make () in
  let called = ref 0 in
  Domain.set_suspend_handler d (fun k -> incr called; k ());
  Domain.suspend_handler d (fun () -> ());
  check_int "custom handler" 1 !called

let test_bad_create () =
  check_true "zero memory rejected"
    (try
       ignore (Domain.create ~id:0 ~name:"x" ~kind:Domain.DomU ~mem_bytes:0);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "domain",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "lifecycle happy path" `Quick test_lifecycle_happy_path;
      Alcotest.test_case "save path" `Quick test_save_path;
      Alcotest.test_case "illegal transitions" `Quick test_illegal_transitions;
      Alcotest.test_case "crash from anywhere" `Quick test_crash_from_anywhere;
      Alcotest.test_case "observers" `Quick test_observers;
      Alcotest.test_case "devices" `Quick test_devices;
      Alcotest.test_case "default handlers" `Quick
        test_handlers_default_immediate;
      Alcotest.test_case "handlers replaceable" `Quick test_handlers_replaceable;
      Alcotest.test_case "bad create" `Quick test_bad_create;
    ] )
