open Helpers
module Heap = Xenvmm.Vmm_heap

let test_default_capacity () =
  (* Xen 3.0's 16 MiB hypervisor heap. *)
  check_int "16 MiB" (16 * 1024 * 1024) Heap.default_capacity_bytes;
  let h = Heap.create () in
  check_int "capacity" Heap.default_capacity_bytes (Heap.capacity_bytes h)

let test_alloc_free () =
  let h = Heap.create ~capacity_bytes:1000 () in
  let a = Heap.alloc_exn h ~tag:"domain/vm1" ~bytes:300 in
  check_int "used" 300 (Heap.used_bytes h);
  check_int "free" 700 (Heap.free_bytes h);
  Heap.free h a;
  check_int "restored" 0 (Heap.used_bytes h)

let test_out_of_memory () =
  let h = Heap.create ~capacity_bytes:100 () in
  check_true "refused" (Heap.alloc h ~tag:"x" ~bytes:101 = Error `Out_of_memory);
  check_int "no effect" 0 (Heap.used_bytes h);
  let _ = Heap.alloc_exn h ~tag:"x" ~bytes:100 in
  check_true "full" (Heap.exhausted h)

let test_double_free () =
  let h = Heap.create ~capacity_bytes:100 () in
  let a = Heap.alloc_exn h ~tag:"x" ~bytes:10 in
  Heap.free h a;
  check_true "raises" (try Heap.free h a; false with Invalid_argument _ -> true)

let test_leak_accumulates () =
  let h = Heap.create ~capacity_bytes:1000 () in
  Heap.leak h ~bytes:100;
  Heap.leak h ~bytes:200;
  check_int "leaked" 300 (Heap.leaked_bytes h);
  check_int "counted as used" 300 (Heap.used_bytes h);
  check_int "free shrinks" 700 (Heap.free_bytes h)

let test_leak_clamps () =
  let h = Heap.create ~capacity_bytes:100 () in
  Heap.leak h ~bytes:1000;
  check_int "clamped" 100 (Heap.leaked_bytes h);
  check_true "exhausted" (Heap.exhausted h)

let test_exhaustion_callback_fires_once () =
  let h = Heap.create ~capacity_bytes:100 () in
  let fired = ref 0 in
  Heap.on_exhaustion h (fun () -> incr fired);
  Heap.leak h ~bytes:60;
  check_int "not yet" 0 !fired;
  Heap.leak h ~bytes:40;
  check_int "fired" 1 !fired;
  Heap.leak h ~bytes:10;
  check_int "not again while exhausted" 1 !fired

let test_exhaustion_rearms_after_free () =
  let h = Heap.create ~capacity_bytes:100 () in
  let fired = ref 0 in
  Heap.on_exhaustion h (fun () -> incr fired);
  let a = Heap.alloc_exn h ~tag:"x" ~bytes:100 in
  check_int "first" 1 !fired;
  Heap.free h a;
  let _ = Heap.alloc_exn h ~tag:"x" ~bytes:100 in
  check_int "re-armed" 2 !fired

let test_usage_by_tag () =
  let h = Heap.create ~capacity_bytes:1000 () in
  let _a = Heap.alloc_exn h ~tag:"domain/vm1" ~bytes:100 in
  let b = Heap.alloc_exn h ~tag:"domain/vm2" ~bytes:200 in
  let _c = Heap.alloc_exn h ~tag:"domain/vm1" ~bytes:50 in
  Alcotest.(check (list (pair string int)))
    "tags" [ ("domain/vm1", 150); ("domain/vm2", 200) ]
    (Heap.usage_by_tag h);
  Heap.free h b;
  Alcotest.(check (list (pair string int)))
    "tag removed at zero" [ ("domain/vm1", 150) ]
    (Heap.usage_by_tag h)

let test_allocation_bytes () =
  let h = Heap.create ~capacity_bytes:100 () in
  let a = Heap.alloc_exn h ~tag:"x" ~bytes:42 in
  check_int "size" 42 (Heap.allocation_bytes a)

let prop_accounting =
  qtest "used + free = capacity under random alloc/leak"
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 500))
    (fun sizes ->
      let h = Heap.create ~capacity_bytes:4096 () in
      List.iteri
        (fun i bytes ->
          if i mod 2 = 0 then ignore (Heap.alloc h ~tag:"t" ~bytes)
          else Heap.leak h ~bytes)
        sizes;
      Heap.used_bytes h + Heap.free_bytes h = Heap.capacity_bytes h
      && Heap.free_bytes h >= 0)

let suite =
  ( "vmm_heap",
    [
      Alcotest.test_case "default capacity" `Quick test_default_capacity;
      Alcotest.test_case "alloc/free" `Quick test_alloc_free;
      Alcotest.test_case "out of memory" `Quick test_out_of_memory;
      Alcotest.test_case "double free" `Quick test_double_free;
      Alcotest.test_case "leak accumulates" `Quick test_leak_accumulates;
      Alcotest.test_case "leak clamps" `Quick test_leak_clamps;
      Alcotest.test_case "exhaustion once" `Quick
        test_exhaustion_callback_fires_once;
      Alcotest.test_case "exhaustion re-arms" `Quick
        test_exhaustion_rearms_after_free;
      Alcotest.test_case "usage by tag" `Quick test_usage_by_tag;
      Alcotest.test_case "allocation bytes" `Quick test_allocation_bytes;
      prop_accounting;
    ] )
