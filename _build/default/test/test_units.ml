open Helpers
module Units = Simkit.Units

let test_sizes () =
  check_int "kib" 2048 (Units.kib 2);
  check_int "mib" 1048576 (Units.mib 1);
  check_int "gib" 1073741824 (Units.gib 1);
  check_int "page" 4096 Units.page_bytes

let test_conversions () =
  check_float "bytes_to_gib" 1.0 (Units.bytes_to_gib (Units.gib 1));
  check_float "bytes_to_mib" 512.0 (Units.bytes_to_mib (Units.mib 512));
  check_float "fractional gib" 0.5 (Units.bytes_to_gib (Units.mib 512))

let test_pages () =
  check_int "exact" 256 (Units.pages_of_bytes (Units.mib 1));
  check_int "rounds up" 1 (Units.pages_of_bytes 1);
  check_int "rounds up partial" 2 (Units.pages_of_bytes 4097);
  check_int "zero" 0 (Units.pages_of_bytes 0)

let test_pp () =
  let s v = Format.asprintf "%a" Units.pp_bytes v in
  check_true "GiB" (s (Units.gib 2) = "2.0 GiB");
  check_true "MiB" (s (Units.mib 3) = "3.0 MiB");
  check_true "KiB" (s (Units.kib 4) = "4.0 KiB");
  check_true "B" (s 123 = "123 B");
  let d v = Format.asprintf "%a" Units.pp_seconds v in
  check_true "seconds" (d 42.04 = "42.0 s");
  check_true "millis" (d 0.083 = "83 ms")

let test_time_helpers () =
  check_float "minutes" 120.0 (Units.minutes 2.0);
  check_float "hours" 7200.0 (Units.hours 2.0);
  check_float "days" 86400.0 (Units.days 1.0);
  check_float "weeks" 604800.0 (Units.weeks 1.0)

let suite =
  ( "units",
    [
      Alcotest.test_case "sizes" `Quick test_sizes;
      Alcotest.test_case "conversions" `Quick test_conversions;
      Alcotest.test_case "page rounding" `Quick test_pages;
      Alcotest.test_case "pretty printing" `Quick test_pp;
      Alcotest.test_case "time helpers" `Quick test_time_helpers;
    ] )
