(* Prober, httperf, balancer and link models. *)
open Helpers
module Engine = Simkit.Engine
module Prober = Netsim.Prober
module Httperf = Netsim.Httperf
module Balancer = Netsim.Balancer
module Link = Netsim.Link

(* --- prober -------------------------------------------------------------- *)

let test_prober_measures_outage () =
  let e = Engine.create () in
  let up = ref true in
  let p = Prober.create e ~interval_s:0.1 ~is_up:(fun () -> !up) () in
  Prober.start p;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> up := false));
  ignore (Engine.schedule e ~delay:52.0 (fun () -> up := true));
  ignore (Engine.schedule e ~delay:80.0 (fun () -> Prober.stop p));
  Engine.run e;
  (match Prober.downtimes p with
  | [ d ] -> check_in_band "42 s outage" ~lo:41.8 ~hi:42.3 d
  | l -> Alcotest.failf "expected one outage, got %d" (List.length l));
  check_true "longest" (Prober.longest_outage p <> None)

let test_prober_multiple_outages () =
  let e = Engine.create () in
  let up = ref true in
  let p = Prober.create e ~interval_s:0.1 ~is_up:(fun () -> !up) () in
  Prober.start p;
  let set v at = ignore (Engine.schedule e ~delay:at (fun () -> up := v)) in
  set false 5.0; set true 10.0; set false 20.0; set true 40.0;
  ignore (Engine.schedule e ~delay:50.0 (fun () -> Prober.stop p));
  Engine.run e;
  check_int "two outages" 2 (List.length (Prober.outages p));
  check_in_band "total ~25" ~lo:24.5 ~hi:25.6 (Prober.total_downtime p);
  (match Prober.longest_outage p with
  | Some l -> check_in_band "longest ~20" ~lo:19.5 ~hi:20.5 l
  | None -> Alcotest.fail "expected outages")

let test_prober_in_progress_outage () =
  let e = Engine.create () in
  let p = Prober.create e ~interval_s:0.1 ~is_up:(fun () -> false) () in
  Prober.start p;
  ignore (Engine.schedule e ~delay:5.0 (fun () -> Prober.stop p));
  Engine.run e;
  check_int "not completed" 0 (List.length (Prober.outages p));
  check_true "tracked as in progress" (Prober.currently_down_since p <> None)

let test_prober_never_down () =
  let e = Engine.create () in
  let p = Prober.create e ~is_up:(fun () -> true) () in
  Prober.start p;
  ignore (Engine.schedule e ~delay:5.0 (fun () -> Prober.stop p));
  Engine.run e;
  check_int "clean" 0 (List.length (Prober.outages p));
  check_float "zero downtime" 0.0 (Prober.total_downtime p)

(* --- httperf ------------------------------------------------------------- *)

let test_httperf_closed_loop_throughput () =
  let e = Engine.create () in
  (* Each request takes exactly 0.1 s; 4 connections => 40 req/s. *)
  let request k = ignore (Engine.schedule e ~delay:0.1 (fun () -> k true)) in
  let load = Httperf.create e ~connections:4 ~request () in
  Httperf.start load;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> Httperf.stop load));
  Engine.run e;
  check_in_band "about 400 completions" ~lo:395.0 ~hi:405.0
    (float_of_int (Httperf.completed load));
  check_in_band "rate" ~lo:38.0 ~hi:42.0
    (Httperf.throughput_between load ~lo:1.0 ~hi:9.0)

let test_httperf_retries_after_failure () =
  let e = Engine.create () in
  let server_up = ref false in
  let request k =
    if !server_up then ignore (Engine.schedule e ~delay:0.1 (fun () -> k true))
    else k false
  in
  let load = Httperf.create e ~connections:1 ~retry_backoff_s:0.5 ~request () in
  Httperf.start load;
  ignore (Engine.schedule e ~delay:5.0 (fun () -> server_up := true));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> Httperf.stop load));
  Engine.run e;
  check_true "failures recorded" (Httperf.failed load > 5);
  check_true "recovered" (Httperf.completed load > 40)

let test_httperf_window_throughput () =
  let e = Engine.create () in
  let request k = ignore (Engine.schedule e ~delay:0.05 (fun () -> k true)) in
  let load = Httperf.create e ~connections:1 ~request () in
  Httperf.start load;
  ignore (Engine.schedule e ~delay:10.0 (fun () -> Httperf.stop load));
  Engine.run e;
  let windows = Httperf.mean_window_throughput load ~every:50 in
  check_true "has windows" (windows <> []);
  List.iter
    (fun (_, rate) -> check_in_band "20 req/s" ~lo:19.0 ~hi:21.0 rate)
    windows

(* --- balancer ------------------------------------------------------------ *)

let test_balancer_capacity () =
  let e = Engine.create () in
  let b = Balancer.create e () in
  let h1 = Balancer.add_host b ~name:"h1" ~capacity:100.0 in
  let _h2 = Balancer.add_host b ~name:"h2" ~capacity:100.0 in
  check_float "full" 200.0 (Balancer.total_throughput b);
  Balancer.set_down h1;
  check_float "one down" 100.0 (Balancer.total_throughput b);
  Balancer.set_up h1;
  Balancer.set_degraded h1 ~factor:0.31;
  check_float "degraded" 131.0 (Balancer.total_throughput b);
  Balancer.set_up h1;
  check_float "recovered resets factor" 200.0 (Balancer.total_throughput b)

let test_balancer_sampling () =
  let e = Engine.create () in
  let b = Balancer.create e () in
  let h = Balancer.add_host b ~name:"h" ~capacity:10.0 in
  let series = Balancer.start_sampling b ~interval_s:1.0 in
  ignore (Engine.schedule e ~delay:4.5 (fun () -> Balancer.set_down h));
  ignore (Engine.schedule e ~delay:8.5 (fun () -> Balancer.set_up h));
  ignore (Engine.schedule e ~delay:12.0 (fun () -> Balancer.stop_sampling b));
  Engine.run e;
  let at time =
    match
      List.find_opt (fun (t, _) -> Float.abs (t -. time) < 0.01)
        (Simkit.Series.to_list series)
    with
    | Some (_, v) -> v
    | None -> Alcotest.failf "no sample at %.1f" time
  in
  check_float "before" 10.0 (at 3.0);
  check_float "during" 0.0 (at 6.0);
  check_float "after" 10.0 (at 10.0)

(* --- link ---------------------------------------------------------------- *)

let test_link_latency_and_bandwidth () =
  let e = Engine.create () in
  let link = Link.create e ~latency_ms:10.0 ~gbit_per_s:1.0 () in
  let d =
    task_duration e (fun k -> Link.send link ~bytes:12_500_000 k)
  in
  (* 12.5 MB at 125 MB/s = 0.1 s + 10 ms latency. *)
  check_close ~tolerance:0.01 "wire + latency" 0.11 d

let test_link_round_trip () =
  let e = Engine.create () in
  let link = Link.create e ~latency_ms:5.0 ~gbit_per_s:1.0 () in
  let d =
    task_duration e (fun k ->
        Link.round_trip link ~request_bytes:0 ~response_bytes:0 k)
  in
  check_close ~tolerance:0.01 "two latencies" 0.01 d

let test_link_sharing () =
  let e = Engine.create () in
  let link = Link.create e ~latency_ms:0.0 ~gbit_per_s:1.0 () in
  let t1 = ref nan and t2 = ref nan in
  Link.send link ~bytes:62_500_000 (fun () -> t1 := Engine.now e);
  Link.send link ~bytes:62_500_000 (fun () -> t2 := Engine.now e);
  Engine.run e;
  (* Two 0.5 s transfers sharing the wire both land at ~1 s. *)
  check_close ~tolerance:0.01 "shared" 1.0 !t1;
  check_close ~tolerance:0.01 "shared" 1.0 !t2

let suite =
  ( "netsim",
    [
      Alcotest.test_case "prober measures outage" `Quick
        test_prober_measures_outage;
      Alcotest.test_case "prober multiple outages" `Quick
        test_prober_multiple_outages;
      Alcotest.test_case "prober in-progress outage" `Quick
        test_prober_in_progress_outage;
      Alcotest.test_case "prober never down" `Quick test_prober_never_down;
      Alcotest.test_case "httperf closed loop" `Quick
        test_httperf_closed_loop_throughput;
      Alcotest.test_case "httperf retries" `Quick
        test_httperf_retries_after_failure;
      Alcotest.test_case "httperf windows" `Quick test_httperf_window_throughput;
      Alcotest.test_case "balancer capacity" `Quick test_balancer_capacity;
      Alcotest.test_case "balancer sampling" `Quick test_balancer_sampling;
      Alcotest.test_case "link latency+bandwidth" `Quick
        test_link_latency_and_bandwidth;
      Alcotest.test_case "link round trip" `Quick test_link_round_trip;
      Alcotest.test_case "link sharing" `Quick test_link_sharing;
    ] )
